#include "workload/workload.h"

#include <algorithm>

namespace smdb {

WorkloadGenerator::WorkloadGenerator(WorkloadSpec spec,
                                     std::vector<RecordId> table,
                                     uint16_t num_nodes,
                                     uint16_t record_data_size)
    : spec_(spec),
      table_(std::move(table)),
      num_nodes_(num_nodes),
      record_data_size_(record_data_size),
      rng_(spec.seed) {}

RecordId WorkloadGenerator::PickRecord(NodeId node) {
  if (spec_.shared_fraction >= 1.0 || rng_.Bernoulli(spec_.shared_fraction)) {
    size_t idx = spec_.zipf_theta > 0.0
                     ? rng_.Zipf(table_.size(), spec_.zipf_theta)
                     : rng_.Uniform(table_.size());
    return table_[idx];
  }
  // Partitioned pick: this node's slice of the table.
  size_t per_node = table_.size() / num_nodes_;
  if (per_node == 0) return table_[rng_.Uniform(table_.size())];
  size_t base = per_node * node;
  return table_[base + rng_.Uniform(per_node)];
}

std::vector<uint8_t> WorkloadGenerator::RandomValue() {
  std::vector<uint8_t> v(record_data_size_);
  for (auto& b : v) b = static_cast<uint8_t>(rng_.Next());
  return v;
}

std::vector<std::vector<TxnScript>> WorkloadGenerator::Generate() {
  std::vector<std::vector<TxnScript>> out(num_nodes_);
  for (NodeId n = 0; n < num_nodes_; ++n) {
    for (size_t t = 0; t < spec_.txns_per_node; ++t) {
      TxnScript script;
      for (size_t o = 0; o < spec_.ops_per_txn; ++o) {
        double roll = rng_.NextDouble();
        if (roll < spec_.index_op_ratio) {
          double kind = rng_.NextDouble();
          if (kind < 0.5) {
            // Fresh keys keep inserts mostly duplicate-free.
            uint64_t key = (next_key_++ % spec_.index_key_space) + 1;
            script.ops.push_back(Op::IndexInsert(key, PickRecord(n)));
          } else if (kind < 0.75) {
            uint64_t key = rng_.Range(1, spec_.index_key_space);
            script.ops.push_back(Op::IndexDelete(key));
          } else {
            uint64_t key = rng_.Range(1, spec_.index_key_space);
            script.ops.push_back(Op::IndexLookup(key));
          }
        } else if (roll < spec_.index_op_ratio + spec_.dirty_read_ratio) {
          script.ops.push_back(Op::DirtyRead(PickRecord(n)));
        } else if (rng_.Bernoulli(spec_.write_ratio)) {
          script.ops.push_back(Op::Update(PickRecord(n), RandomValue()));
        } else {
          script.ops.push_back(Op::Read(PickRecord(n)));
        }
      }
      script.ops.push_back(rng_.Bernoulli(spec_.voluntary_abort_ratio)
                               ? Op::Abort()
                               : Op::Commit());
      out[n].push_back(std::move(script));
    }
  }
  return out;
}

WorkloadSpec SampleWorkloadSpec(Rng& rng) {
  WorkloadSpec spec;
  spec.txns_per_node = rng.Range(4, 16);
  spec.ops_per_txn = rng.Range(2, 8);
  spec.write_ratio = 0.3 + 0.6 * rng.NextDouble();
  spec.index_op_ratio = rng.Bernoulli(0.5) ? 0.3 * rng.NextDouble() : 0.0;
  spec.dirty_read_ratio = rng.Bernoulli(0.25) ? 0.05 : 0.0;
  spec.zipf_theta = rng.Bernoulli(0.3) ? 0.9 : 0.0;
  spec.shared_fraction = rng.Bernoulli(0.75) ? 1.0 : 0.5;
  spec.voluntary_abort_ratio = rng.Bernoulli(0.3) ? 0.1 : 0.0;
  spec.index_key_space = 256;
  spec.seed = rng.Next();
  return spec;
}

std::vector<CrashPlan> SampleCrashPlans(Rng& rng, uint16_t num_nodes,
                                        uint64_t horizon, size_t max_plans) {
  std::vector<CrashPlan> plans(rng.Range(1, max_plans));
  for (CrashPlan& plan : plans) {
    // 5/4 of the horizon: some plans intentionally land past workload
    // drain and must be reported as skipped, not silently dropped.
    plan.at_step = rng.Range(1, horizon + horizon / 4);
    if (rng.Bernoulli(0.08)) {
      // Whole-machine failure: every node in one plan.
      for (NodeId n = 0; n < num_nodes; ++n) plan.nodes.push_back(n);
    } else {
      uint64_t width = rng.Range(1, std::max<uint64_t>(1, num_nodes / 2));
      for (uint64_t i = 0; i < width; ++i) {
        // Sampling with replacement: duplicates are legal input (the
        // harness dedupes) and keep that path exercised.
        plan.nodes.push_back(static_cast<NodeId>(rng.Uniform(num_nodes)));
      }
    }
    plan.restart_after = rng.Bernoulli(0.5);
  }
  return plans;
}

}  // namespace smdb
