#include "workload/harness.h"

#include <algorithm>

#include "core/on_demand.h"

namespace smdb {

Harness::Harness(HarnessConfig config)
    : config_(std::move(config)), rng_(config_.seed) {}

Harness::~Harness() = default;

Status Harness::Setup() {
  if (setup_done_) return Status::Ok();
  db_ = std::make_unique<Database>(config_.db);
  checker_ = std::make_unique<IfaChecker>(db_.get());
  db_->txn().AddObserver(checker_.get());

  SMDB_ASSIGN_OR_RETURN(table_, db_->CreateTable(config_.num_records));
  checker_->RegisterTable(table_);
  SMDB_RETURN_IF_ERROR(db_->Checkpoint(0));

  WorkloadGenerator gen(config_.workload, table_,
                        config_.db.machine.num_nodes,
                        config_.db.record_data_size);
  auto scripts = gen.Generate();
  exec_ = std::make_unique<SystemExecutor>(&db_->txn(), &db_->machine(),
                                           config_.seed ^ 0x5eed,
                                           config_.exec);
  exec_->set_profiler(db_->profiler_ptr());
  exec_->set_tracer(db_->tracer_ptr());
  for (NodeId n = 0; n < config_.db.machine.num_nodes; ++n) {
    for (auto& s : scripts[n]) exec_->executor(n).Enqueue(std::move(s));
  }
  setup_done_ = true;
  return Status::Ok();
}

Status Harness::StealFlushOne() {
  auto dirty = db_->buffers().DirtyPages();
  if (dirty.empty()) return Status::Ok();
  PageId page = dirty[rng_.Uniform(dirty.size())];
  auto alive = db_->machine().AliveNodes();
  if (alive.empty()) return Status::Ok();  // no node left to run the daemon
  NodeId node = alive[rng_.Uniform(alive.size())];
  Status s = db_->buffers().FlushPage(node, page);
  // A flush blocked by a crashed updater's unforced tail, or by a page
  // whose lines died with a node, is expected; the steal daemon just skips.
  if (s.IsNodeFailed() || s.IsLineLost()) return Status::Ok();
  return s;
}

Result<HarnessReport> Harness::Run() {
  SMDB_RETURN_IF_ERROR(Setup());
  HarnessReport report;

  size_t next_crash = 0;
  std::sort(config_.crashes.begin(), config_.crashes.end(),
            [](const CrashPlan& a, const CrashPlan& b) {
              return a.at_step < b.at_step;
            });

  while (exec_->steps() < config_.max_steps) {
    // Crash injection before the next step.
    while (next_crash < config_.crashes.size() &&
           exec_->steps() >= config_.crashes[next_crash].at_step) {
      const CrashPlan& plan = config_.crashes[next_crash];
      size_t plan_index = next_crash;
      ++next_crash;
      // Deduplicate the plan's node set (crashing a node twice in one plan
      // is meaningless and must not reach OnCrash/Crash twice) and drop
      // nodes that are already dead.
      std::vector<NodeId> to_crash;
      for (NodeId n : plan.nodes) {
        if (db_->machine().NodeAlive(n) &&
            std::find(to_crash.begin(), to_crash.end(), n) ==
                to_crash.end()) {
          to_crash.push_back(n);
        }
      }
      if (to_crash.empty()) {
        report.skipped_crashes.push_back(
            {plan_index, plan, SkippedCrash::Reason::kTargetsAlreadyDead});
        continue;
      }
      size_t fired = report.recoveries.size();
      if (fired < config_.recovery_thread_overrides.size()) {
        db_->SetRecoveryThreads(config_.recovery_thread_overrides[fired]);
      }
      for (NodeId n : to_crash) exec_->executor(n).OnCrash();
      SMDB_ASSIGN_OR_RETURN(RecoveryOutcome outcome, db_->Crash(to_crash));
      if (config_.drain_recovery_immediately) {
        SMDB_RETURN_IF_ERROR(db_->DrainRecovery());
      }
      report.recoveries.push_back(outcome);
      if (config_.capture_digests) {
        report.digests.push_back(ComputeStateDigest(*db_));
      }
      // While obligations are still pending the oracle would read
      // unrecovered state; the final (post-drain) VerifyAll covers the run.
      if (config_.verify && !db_->RecoveringActive()) {
        Status v = checker_->VerifyAll();
        if (!v.ok()) {
          report.verify_status = v;
          // The remaining schedule never ran; record it so triage can tell
          // which crashes this failing run actually contains.
          for (size_t i = next_crash; i < config_.crashes.size(); ++i) {
            report.skipped_crashes.push_back(
                {i, config_.crashes[i], SkippedCrash::Reason::kNeverReached});
          }
          FillReport(&report);
          return report;
        }
      }
      // A whole-machine failure already rebooted every node as part of
      // recovery; restarting again would be a double restart.
      if (plan.restart_after && !outcome.whole_machine_restart) {
        db_->RestartNodes(to_crash);
      }
    }

    if (exec_->execution_threads() <= 1 && !db_->profiler().enabled()) {
      // Classic path: one step, then the per-step daemons — byte-for-byte
      // the pre-sharding behaviour. A profiled width-1 run routes through
      // RunBatches instead so reject attribution sees the same canonical
      // batch plan as every other width (execution stays sequential and
      // bit-identical when steal_flush_prob is 0).
      if (!exec_->StepOnce()) break;

      if (config_.pump_recovery_per_step > 0 && db_->RecoveringActive()) {
        SMDB_ASSIGN_OR_RETURN(
            int swept, db_->PumpRecovery(config_.pump_recovery_per_step));
        (void)swept;
      }
      if (config_.steal_flush_prob > 0.0 &&
          rng_.Bernoulli(config_.steal_flush_prob)) {
        // The daemon pauses while Recovering: a steal flush could overwrite
        // a stable image that pending lazy redo still needs to load from.
        // (The Bernoulli draw stays unconditional so the rng stream matches
        // runs without the pause.)
        if (!db_->RecoveringActive()) SMDB_RETURN_IF_ERROR(StealFlushOne());
      }
    } else {
      // Sharded path: run up to the next schedule barrier (crash plan,
      // checkpoint multiple, max_steps) as footprint-disjoint batches, then
      // replay the per-step daemons in step order. The harness rng draws
      // the identical sequence either way; only steal-flush timing is
      // batch-granular.
      uint64_t budget = config_.max_steps - exec_->steps();
      if (next_crash < config_.crashes.size()) {
        budget = std::min(budget,
                          config_.crashes[next_crash].at_step - exec_->steps());
      }
      if (config_.checkpoint_every_steps > 0) {
        uint64_t n = config_.checkpoint_every_steps;
        budget = std::min(budget, n - (exec_->steps() % n));
      }
      if (config_.pump_recovery_per_step > 0 && db_->RecoveringActive()) {
        // The sweeper must interleave with every step while Recovering.
        budget = 1;
      }
      uint64_t executed = exec_->RunBatches(budget);
      if (executed == 0) break;
      for (uint64_t i = 0; i < executed; ++i) {
        if (config_.pump_recovery_per_step > 0 && db_->RecoveringActive()) {
          SMDB_ASSIGN_OR_RETURN(
              int swept, db_->PumpRecovery(config_.pump_recovery_per_step));
          (void)swept;
        }
        if (config_.steal_flush_prob > 0.0 &&
            rng_.Bernoulli(config_.steal_flush_prob)) {
          if (!db_->RecoveringActive()) SMDB_RETURN_IF_ERROR(StealFlushOne());
        }
      }
    }
    if (config_.checkpoint_every_steps > 0 &&
        exec_->steps() % config_.checkpoint_every_steps == 0) {
      auto alive = db_->machine().AliveNodes();
      if (!alive.empty()) {
        SMDB_RETURN_IF_ERROR(db_->Checkpoint(alive[0]));
      }
    }
  }

  // Plans scheduled past the workload's drain point (or past max_steps)
  // silently never fire; record them so "survived N crashes" is honest.
  for (; next_crash < config_.crashes.size(); ++next_crash) {
    report.skipped_crashes.push_back({next_crash, config_.crashes[next_crash],
                                      SkippedCrash::Reason::kNeverReached});
  }

  // The workload drained; discharge whatever the traffic never touched so
  // the end state is fully recovered before verification and digests.
  SMDB_RETURN_IF_ERROR(db_->DrainRecovery());

  if (config_.verify) {
    report.verify_status = checker_->VerifyAll();
  }
  if (config_.capture_digests) {
    // Final end-of-run digest. Note: only digests up to and including the
    // first parallelised recovery are comparable against a serial run —
    // CLR/log placement after that point is performer-dependent
    // (performance state) and can steer later forces and the *next*
    // recovery differently. The differential tests therefore override one
    // recovery at a time and compare that recovery's digest.
    report.digests.push_back(ComputeStateDigest(*db_));
  }

  FillReport(&report);
  return report;
}

void Harness::FillReport(HarnessReport* report) {
  report->exec = exec_->TotalStats();
  report->machine = db_->machine().stats();
  report->logs = db_->log().stats();
  report->txns = db_->txn().stats();
  report->locks = db_->locks().stats();
  report->btree = db_->index().stats();
  if (db_->group_commit() != nullptr) {
    report->gc = db_->group_commit()->stats();
  }
  report->disk_reads = db_->stable_db().reads();
  report->disk_writes = db_->stable_db().writes();
  report->steps = exec_->steps();
  report->total_time_ns = db_->machine().GlobalTime();
  report->latency = db_->observatory().Snapshot();
  report->shard = exec_->shard_stats();
  if (db_->on_demand() != nullptr) {
    report->sweep_batches = db_->on_demand()->stats().sweep_batches;
    report->sweep_batched_records =
        db_->on_demand()->stats().sweep_batched_records;
  }
  report->profile = db_->profiler().Snapshot();
}

}  // namespace smdb
