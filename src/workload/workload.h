#ifndef SMDB_WORKLOAD_WORKLOAD_H_
#define SMDB_WORKLOAD_WORKLOAD_H_

#include <vector>

#include "common/rng.h"
#include "common/types.h"
#include "txn/executor.h"

namespace smdb {

/// A crash injected at a global executor step.
struct CrashPlan {
  uint64_t at_step = 0;
  std::vector<NodeId> nodes;
  /// Bring the crashed nodes back (cold) right after recovery.
  bool restart_after = false;
};

/// Parameters of a synthetic transaction workload. Defaults give a mixed
/// read/update workload over a shared table — the access pattern whose
/// cache-line sharing produces the paper's failure effects.
struct WorkloadSpec {
  size_t txns_per_node = 20;
  size_t ops_per_txn = 8;
  /// Fraction of record ops that are updates (the rest are locked reads).
  double write_ratio = 0.5;
  /// Fraction of ops that are index operations (insert/delete/lookup mix).
  double index_op_ratio = 0.0;
  /// Fraction of ops that are *dirty* reads (browse isolation, H_wr).
  double dirty_read_ratio = 0.0;
  /// Zipfian skew over the record space (0 = uniform).
  double zipf_theta = 0.0;
  /// Fraction of each transaction's record picks drawn from the whole
  /// (node-shared) table; the rest come from a per-node partition. 1.0 =
  /// fully shared (maximum inter-node line sharing).
  double shared_fraction = 1.0;
  /// Fraction of transactions that end in a voluntary abort.
  double voluntary_abort_ratio = 0.0;
  /// Key space for index operations.
  uint64_t index_key_space = 4096;
  uint64_t seed = 1234;
};

/// Generates per-node transaction scripts over a heap table (and index).
class WorkloadGenerator {
 public:
  WorkloadGenerator(WorkloadSpec spec, std::vector<RecordId> table,
                    uint16_t num_nodes, uint16_t record_data_size);

  /// scripts[n] is the queue for node n.
  std::vector<std::vector<TxnScript>> Generate();

 private:
  RecordId PickRecord(NodeId node);
  std::vector<uint8_t> RandomValue();

  WorkloadSpec spec_;
  std::vector<RecordId> table_;
  uint16_t num_nodes_;
  uint16_t record_data_size_;
  Rng rng_;
  uint64_t next_key_ = 1;
};

// Randomization hooks (crash-schedule fuzzer) ---------------------------

/// Samples a small randomized workload spec from `rng`: mixed sizes,
/// write/index/dirty-read ratios, skew, sharing, and voluntary aborts.
/// The spec's own seed is drawn from `rng`, so equal Rng states produce
/// bit-identical workloads.
WorkloadSpec SampleWorkloadSpec(Rng& rng);

/// Samples a randomized crash schedule for a machine of `num_nodes`:
/// 1..max_plans plans with random step offsets over ~1.25x `horizon`
/// (deliberately including steps past workload drain), random node sets
/// (occasionally every node — a whole-machine failure — and occasionally
/// duplicated ids, which the harness must dedupe), and random
/// crash-with-restart choices.
std::vector<CrashPlan> SampleCrashPlans(Rng& rng, uint16_t num_nodes,
                                        uint64_t horizon,
                                        size_t max_plans = 4);

/// Builds the two-transactions-one-cache-line scenario of section 3.1 /
/// figure 2: records r1 and r2 share a cache line; t_x (node x) updates r1,
/// t_y (node y) updates r2, and both stay active. Returns the two scripts.
struct FalseSharingScenario {
  RecordId r1;
  RecordId r2;
  TxnScript tx;  // for node x: update r1, no commit (stays active)
  TxnScript ty;  // for node y: update r2, no commit
};

}  // namespace smdb

#endif  // SMDB_WORKLOAD_WORKLOAD_H_
