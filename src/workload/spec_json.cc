#include "workload/spec_json.h"

namespace smdb {

json::Value ToJson(const WorkloadSpec& spec) {
  json::Value v = json::Value::Object();
  v.Set("txns_per_node", json::Value::Uint(spec.txns_per_node));
  v.Set("ops_per_txn", json::Value::Uint(spec.ops_per_txn));
  v.Set("write_ratio", json::Value::Double(spec.write_ratio));
  v.Set("index_op_ratio", json::Value::Double(spec.index_op_ratio));
  v.Set("dirty_read_ratio", json::Value::Double(spec.dirty_read_ratio));
  v.Set("zipf_theta", json::Value::Double(spec.zipf_theta));
  v.Set("shared_fraction", json::Value::Double(spec.shared_fraction));
  v.Set("voluntary_abort_ratio",
        json::Value::Double(spec.voluntary_abort_ratio));
  v.Set("index_key_space", json::Value::Uint(spec.index_key_space));
  v.Set("seed", json::Value::Uint(spec.seed));
  return v;
}

Result<WorkloadSpec> WorkloadSpecFromJson(const json::Value& v) {
  if (!v.is_object()) {
    return Status::InvalidArgument("workload spec: expected object");
  }
  WorkloadSpec defaults;
  WorkloadSpec spec;
  spec.txns_per_node = v.GetUint("txns_per_node", defaults.txns_per_node);
  spec.ops_per_txn = v.GetUint("ops_per_txn", defaults.ops_per_txn);
  spec.write_ratio = v.GetDouble("write_ratio", defaults.write_ratio);
  spec.index_op_ratio = v.GetDouble("index_op_ratio", defaults.index_op_ratio);
  spec.dirty_read_ratio =
      v.GetDouble("dirty_read_ratio", defaults.dirty_read_ratio);
  spec.zipf_theta = v.GetDouble("zipf_theta", defaults.zipf_theta);
  spec.shared_fraction =
      v.GetDouble("shared_fraction", defaults.shared_fraction);
  spec.voluntary_abort_ratio =
      v.GetDouble("voluntary_abort_ratio", defaults.voluntary_abort_ratio);
  spec.index_key_space = v.GetUint("index_key_space", defaults.index_key_space);
  spec.seed = v.GetUint("seed", defaults.seed);
  return spec;
}

json::Value ToJson(const CrashPlan& plan) {
  json::Value v = json::Value::Object();
  v.Set("at_step", json::Value::Uint(plan.at_step));
  json::Value nodes = json::Value::Array();
  for (NodeId n : plan.nodes) nodes.Append(json::Value::Uint(n));
  v.Set("nodes", std::move(nodes));
  v.Set("restart_after", json::Value::Bool(plan.restart_after));
  return v;
}

Result<CrashPlan> CrashPlanFromJson(const json::Value& v) {
  if (!v.is_object()) {
    return Status::InvalidArgument("crash plan: expected object");
  }
  CrashPlan plan;
  plan.at_step = v.GetUint("at_step", 0);
  plan.restart_after = v.GetBool("restart_after", false);
  const json::Value* nodes = v.Find("nodes");
  if (nodes == nullptr || !nodes->is_array() || nodes->array().empty()) {
    return Status::InvalidArgument("crash plan: missing/empty nodes array");
  }
  for (const json::Value& n : nodes->array()) {
    plan.nodes.push_back(static_cast<NodeId>(n.AsUint()));
  }
  return plan;
}

json::Value ToJson(const std::vector<CrashPlan>& plans) {
  json::Value v = json::Value::Array();
  for (const CrashPlan& plan : plans) v.Append(ToJson(plan));
  return v;
}

Result<std::vector<CrashPlan>> CrashPlansFromJson(const json::Value& v) {
  if (!v.is_array()) {
    return Status::InvalidArgument("crash plans: expected array");
  }
  std::vector<CrashPlan> plans;
  for (const json::Value& p : v.array()) {
    SMDB_ASSIGN_OR_RETURN(CrashPlan plan, CrashPlanFromJson(p));
    plans.push_back(std::move(plan));
  }
  return plans;
}

}  // namespace smdb
