#ifndef SMDB_WORKLOAD_SPEC_JSON_H_
#define SMDB_WORKLOAD_SPEC_JSON_H_

#include <vector>

#include "common/json.h"
#include "workload/workload.h"

namespace smdb {

/// JSON round-trips for workload specs and crash plans. These are the
/// building blocks of the fuzzer's replay files: a replay must rebuild the
/// exact HarnessConfig (including 64-bit seeds, which the json layer keeps
/// integral) so a recorded failure re-executes bit-identically.

json::Value ToJson(const WorkloadSpec& spec);
Result<WorkloadSpec> WorkloadSpecFromJson(const json::Value& v);

json::Value ToJson(const CrashPlan& plan);
Result<CrashPlan> CrashPlanFromJson(const json::Value& v);

json::Value ToJson(const std::vector<CrashPlan>& plans);
Result<std::vector<CrashPlan>> CrashPlansFromJson(const json::Value& v);

}  // namespace smdb

#endif  // SMDB_WORKLOAD_SPEC_JSON_H_
