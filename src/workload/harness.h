#ifndef SMDB_WORKLOAD_HARNESS_H_
#define SMDB_WORKLOAD_HARNESS_H_

#include <memory>
#include <vector>

#include "core/database.h"
#include "core/ifa_checker.h"
#include "core/recovery.h"
#include "core/state_digest.h"
#include "txn/executor.h"
#include "workload/workload.h"

namespace smdb {

struct HarnessConfig {
  DatabaseConfig db;
  /// Execution sharding: width 1 (default) is the classic single-threaded
  /// dispatch loop, bit-for-bit; width N > 1 batches footprint-disjoint
  /// steps of the same seeded schedule across the ThreadPool. Steal-flush
  /// daemon timing is then batch-granular (the differential width matrix
  /// runs with steal_flush_prob = 0, where the final state is provably
  /// width-invariant).
  ExecutionConfig exec;
  WorkloadSpec workload;
  size_t num_records = 256;
  std::vector<CrashPlan> crashes;
  /// Probability per step that the steal daemon flushes one dirty page.
  double steal_flush_prob = 0.0;
  /// Take a checkpoint every N steps (0 = only the initial one).
  uint64_t checkpoint_every_steps = 0;
  uint64_t max_steps = 10'000'000;
  /// Verify IFA (oracle comparison) after every recovery and at the end.
  bool verify = true;
  uint64_t seed = 99;
  /// Snapshot a StateDigest right after each recovery (before verification
  /// and any node restart) into HarnessReport::digests. The differential
  /// parallel-recovery oracle compares these across thread counts.
  bool capture_digests = false;
  /// On-demand recovery only: drain every lazy obligation right after the
  /// crash-time prefix returns, before digests, verification, and restart.
  /// Collapses the Recovering window to nothing — the run becomes
  /// step-by-step comparable with an eager run (the differential tests'
  /// mode). Off = obligations discharge on first touch / via the sweeper.
  bool drain_recovery_immediately = false;
  /// On-demand recovery only: background-sweeper budget — discharge up to
  /// this many pending objects after every workload step while the
  /// Recovering state is active (0 = no sweeping; first touch and the
  /// final drain do all the work).
  int pump_recovery_per_step = 0;
  /// Element i overrides recovery_threads for the i-th *fired* recovery
  /// (skipped crash plans don't consume an entry). Recoveries beyond the
  /// vector keep the config's value. Lets the equivalence tests parallelise
  /// exactly one recovery of a multi-crash schedule while every other
  /// recovery stays serial, so earlier digests are comparable one by one.
  std::vector<uint32_t> recovery_thread_overrides;
};

/// A crash plan that never fired, and why. The fuzzer needs this to tell
/// "the protocol survived this crash" apart from "the crash never happened".
struct SkippedCrash {
  enum class Reason : uint8_t {
    /// Every node the plan names was already dead when it came due.
    kTargetsAlreadyDead,
    /// The workload drained (or max_steps hit) before the plan's step.
    kNeverReached,
  };
  /// Index into the (sorted-by-step) crash plan list.
  size_t plan_index = 0;
  CrashPlan plan;
  Reason reason = Reason::kNeverReached;
};

struct HarnessReport {
  ExecutorStats exec;
  std::vector<RecoveryOutcome> recoveries;
  /// One digest per fired recovery when capture_digests is set (index i
  /// matches recoveries[i]), plus one final end-of-run digest.
  std::vector<StateDigest> digests;
  std::vector<SkippedCrash> skipped_crashes;
  MachineStats machine;
  LogStats logs;
  TxnManagerStats txns;
  LockTableStats locks;
  BTreeStats btree;
  /// Zero when the group-commit pipeline is off.
  GroupCommitPipeline::Stats gc;
  /// Observatory snapshot; enabled=false (and otherwise empty) unless
  /// DatabaseConfig::obs.enabled was set.
  LatencyReport latency;
  /// Batch-occupancy counters from the sharded executor (all zero on the
  /// classic width-1 unprofiled path).
  SystemExecutor::ShardStats shard;
  /// On-demand sweeper parallel-batch counters (zero when on_demand is off
  /// or the sweeper never batched).
  uint64_t sweep_batches = 0;
  uint64_t sweep_batched_records = 0;
  /// Profiler snapshot; enabled=false (and otherwise empty) unless
  /// DatabaseConfig::profiler.enabled was set.
  ProfilerReport profile;
  uint64_t disk_reads = 0;
  uint64_t disk_writes = 0;
  uint64_t steps = 0;
  SimTime total_time_ns = 0;
  Status verify_status;

  /// Committed transactions per simulated second.
  double throughput_tps() const {
    return total_time_ns == 0
               ? 0.0
               : double(exec.committed) * 1e9 / double(total_time_ns);
  }
  /// Surviving-node transactions aborted by recovery across all crashes
  /// (the paper's "unnecessary aborts"; 0 under IFA).
  uint64_t unnecessary_aborts() const {
    uint64_t n = 0;
    for (const auto& r : recoveries) n += r.forced_aborts.size();
    return n;
  }
};

/// End-to-end driver: builds a Database, registers the IFA oracle, runs a
/// generated workload under a deterministic interleaving, injects crashes
/// per plan, runs recovery, verifies IFA, and aggregates every subsystem's
/// statistics. All experiments and most integration tests go through here.
class Harness {
 public:
  explicit Harness(HarnessConfig config);
  ~Harness();

  /// Builds the database and enqueues the workload (idempotent; Run calls
  /// it if needed).
  Status Setup();

  Result<HarnessReport> Run();

  Database& db() { return *db_; }
  IfaChecker& checker() { return *checker_; }
  SystemExecutor& executor() { return *exec_; }
  const std::vector<RecordId>& table() const { return table_; }

 private:
  Status StealFlushOne();
  /// Copies every subsystem's statistics into the report. Called on both
  /// the normal exit and the verification-failure exit, so a failing run
  /// still carries full diagnostics.
  void FillReport(HarnessReport* report);

  HarnessConfig config_;
  std::unique_ptr<Database> db_;
  std::unique_ptr<IfaChecker> checker_;
  std::unique_ptr<SystemExecutor> exec_;
  std::vector<RecordId> table_;
  Rng rng_;
  bool setup_done_ = false;
};

}  // namespace smdb

#endif  // SMDB_WORKLOAD_HARNESS_H_
