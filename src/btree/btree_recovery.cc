#include <algorithm>
#include <cstring>

#include "btree/btree.h"
#include "db/page_layout.h"
#include "sim/machine.h"

namespace smdb {

Status BTree::RedoIndexOp(NodeId node, const IndexOpPayload& op,
                          uint16_t tag) {
  std::vector<PageId> path;
  SMDB_RETURN_IF_ERROR(DescendToLeaf(node, op.key, &path));
  PageId leaf = path.back();
  auto slot_or =
      FindEntrySlot(node, leaf, op.key, /*include_tombstones=*/true);

  if (op.op == IndexOpPayload::Op::kInsert) {
    // Eager replay never finds a leaf full (replay occupancy is bounded by
    // the leaf's historical occupancy), but on-demand recovery can: new
    // post-crash traffic may refill the leaf before the deferred redo of
    // this record arrives. Mirror the runtime insert path — split and retry
    // on the leaf that should now hold the key.
    auto free_slot = [&]() -> Result<uint32_t> {
      auto s = FindFreeSlot(node, leaf);
      if (s.ok() || !s.status().IsNotFound()) return s;
      SMDB_ASSIGN_OR_RETURN(leaf, SplitForInsert(node, path, op.key));
      return FindFreeSlot(node, leaf);
    };
    uint32_t slot;
    if (slot_or.ok()) {
      SMDB_ASSIGN_OR_RETURN(LeafEntry e, ReadLeafEntry(node, leaf, *slot_or));
      if (e.usn >= op.usn) return Status::Ok();  // already reflected
      if (e.state == LeafEntryState::kTombstone && e.tag != kTagNone) {
        // An uncommitted tombstone is undo information; mirror the runtime
        // rule and take a fresh slot for the re-insert.
        SMDB_ASSIGN_OR_RETURN(slot, free_slot());
      } else {
        slot = *slot_or;
      }
    } else if (slot_or.status().IsNotFound()) {
      SMDB_ASSIGN_OR_RETURN(slot, free_slot());
    } else {
      return slot_or.status();
    }
    LeafEntry e;
    e.key = op.key;
    e.rid = op.value;
    e.state = LeafEntryState::kLive;
    e.tag = tag;
    e.usn = op.usn;
    SMDB_RETURN_IF_ERROR(WriteLeafEntry(node, leaf, slot, e));
  } else {
    if (!slot_or.ok()) {
      if (slot_or.status().IsNotFound()) return Status::Ok();
      return slot_or.status();
    }
    SMDB_ASSIGN_OR_RETURN(LeafEntry e, ReadLeafEntry(node, leaf, *slot_or));
    if (e.usn >= op.usn) return Status::Ok();
    if (op.is_clr) {
      // Compensation delete (undo of an insert, or a delete of the same
      // transaction's own insert): physical removal.
      LeafEntry empty;
      SMDB_RETURN_IF_ERROR(WriteLeafEntry(node, leaf, *slot_or, empty));
    } else {
      e.state = LeafEntryState::kTombstone;
      e.tag = tag;
      e.usn = op.usn;
      SMDB_RETURN_IF_ERROR(WriteLeafEntry(node, leaf, *slot_or, e));
    }
  }
  Addr base = BaseOf(leaf);
  SMDB_RETURN_IF_ERROR(
      machine_->Write(node, base + PageLayout::kPageLsnOffset, &op.usn, 8));
  buffers_->MarkDirty(leaf);
  return Status::Ok();
}

std::vector<BTree::EntryRef> BTree::EntriesInLine(LineAddr line) const {
  std::vector<EntryRef> out;
  Addr addr = machine_->AddrOfLine(line);
  auto page = buffers_->ResolveAddr(addr);
  if (!page.has_value() || !OwnsPage(*page)) return out;
  Addr base = BaseOf(*page);
  uint32_t line_index =
      static_cast<uint32_t>((addr - base) / machine_line_size_);
  if (line_index == 0) return out;  // header line holds no entries

  // Only leaf pages hold entries; check via a snooped header read.
  uint8_t hdr[32];
  if (!machine_->SnoopRead(base, hdr, sizeof(hdr)).ok()) return out;
  if (hdr[16] == 0) return out;  // internal page

  uint32_t per_line = leaf_entries_per_line();
  uint32_t first = (line_index - 1) * per_line;
  std::vector<uint8_t> buf(machine_line_size_);
  if (!machine_->SnoopRead(addr, buf.data(), buf.size()).ok()) return out;
  for (uint32_t i = 0; i < per_line; ++i) {
    uint32_t slot = first + i;
    if (slot >= leaf_capacity()) break;
    const uint8_t* p = buf.data() + i * kLeafEntryBytes;
    LeafEntry e;
    std::memcpy(&e.key, p, 8);
    std::memcpy(&e.rid.page, p + 8, 4);
    std::memcpy(&e.rid.slot, p + 12, 2);
    e.state = static_cast<LeafEntryState>(p[14]);
    std::memcpy(&e.tag, p + 16, 2);
    std::memcpy(&e.usn, p + 18, 8);
    if (e.state == LeafEntryState::kFree) continue;
    out.push_back(EntryRef{*page, static_cast<uint16_t>(slot), e});
  }
  return out;
}

Result<std::vector<BTree::EntryRef>> BTree::CollectEntries(
    bool include_tombstones) const {
  std::vector<EntryRef> out;
  for (PageId page : page_list_) {
    uint8_t hdr[32];
    SMDB_RETURN_IF_ERROR(machine_->SnoopRead(BaseOf(page), hdr, sizeof(hdr)));
    if (hdr[16] == 0) continue;  // internal
    uint32_t lines = page_size_ / machine_line_size_;
    LineAddr first = machine_->LineOf(BaseOf(page));
    for (uint32_t li = 1; li < lines; ++li) {
      for (auto& ref : EntriesInLine(first + li)) {
        if (ref.entry.state == LeafEntryState::kTombstone &&
            !include_tombstones) {
          continue;
        }
        out.push_back(ref);
      }
    }
  }
  return out;
}

Status BTree::RemoveEntryAt(NodeId node, PageId leaf, uint16_t slot) {
  Addr base = BaseOf(leaf);
  LineAddr header_line = machine_->LineOf(base);
  LineAddr entry_line = machine_->LineOf(LeafEntryAddr(base, slot));
  SMDB_RETURN_IF_ERROR(machine_->GetLine(node, header_line));
  Status st = machine_->GetLine(node, entry_line);
  if (!st.ok()) {
    machine_->ReleaseLine(node, header_line);
    return st;
  }
  SMDB_ASSIGN_OR_RETURN(LeafEntry e, ReadLeafEntry(node, leaf, slot));
  uint64_t usn = usn_->Next();
  LeafEntry empty;
  Status s = WriteLeafEntry(node, leaf, slot, empty);
  if (s.ok()) {
    s = machine_->Write(node, base + PageLayout::kPageLsnOffset, &usn, 8);
  }
  if (s.ok()) {
    IndexOpPayload p;
    p.tree_id = tree_id_;
    p.op = IndexOpPayload::Op::kDelete;
    p.key = e.key;
    p.value = e.rid;
    p.usn = usn;
    s = LogIndexOp(node, kInvalidTxn, p, nullptr, {entry_line, header_line},
                   /*is_clr=*/true);
  }
  machine_->ReleaseLine(node, entry_line);
  machine_->ReleaseLine(node, header_line);
  SMDB_RETURN_IF_ERROR(s);
  buffers_->MarkDirty(leaf);
  return Status::Ok();
}

Status BTree::UnmarkEntryAt(NodeId node, PageId leaf, uint16_t slot) {
  Addr base = BaseOf(leaf);
  LineAddr header_line = machine_->LineOf(base);
  LineAddr entry_line = machine_->LineOf(LeafEntryAddr(base, slot));
  SMDB_RETURN_IF_ERROR(machine_->GetLine(node, header_line));
  Status st = machine_->GetLine(node, entry_line);
  if (!st.ok()) {
    machine_->ReleaseLine(node, header_line);
    return st;
  }
  SMDB_ASSIGN_OR_RETURN(LeafEntry e, ReadLeafEntry(node, leaf, slot));
  uint64_t usn = usn_->Next();
  e.state = LeafEntryState::kLive;
  e.tag = kTagNone;
  e.usn = usn;
  Status s = WriteLeafEntry(node, leaf, slot, e);
  if (s.ok()) {
    s = machine_->Write(node, base + PageLayout::kPageLsnOffset, &usn, 8);
  }
  if (s.ok()) {
    IndexOpPayload p;
    p.tree_id = tree_id_;
    p.op = IndexOpPayload::Op::kInsert;
    p.key = e.key;
    p.value = e.rid;
    p.usn = usn;
    s = LogIndexOp(node, kInvalidTxn, p, nullptr, {entry_line, header_line},
                   /*is_clr=*/true);
  }
  machine_->ReleaseLine(node, entry_line);
  machine_->ReleaseLine(node, header_line);
  SMDB_RETURN_IF_ERROR(s);
  buffers_->MarkDirty(leaf);
  return Status::Ok();
}

Result<std::optional<LeafEntry>> BTree::GetEntry(NodeId node, uint64_t key) {
  std::vector<PageId> path;
  SMDB_RETURN_IF_ERROR(DescendToLeaf(node, key, &path));
  auto slot_or =
      FindEntrySlot(node, path.back(), key, /*include_tombstones=*/true);
  if (!slot_or.ok()) {
    if (slot_or.status().IsNotFound()) return std::optional<LeafEntry>{};
    return slot_or.status();
  }
  SMDB_ASSIGN_OR_RETURN(LeafEntry e,
                        ReadLeafEntry(node, path.back(), *slot_or));
  return std::optional<LeafEntry>{e};
}

Result<std::vector<BTree::EntryRef>> BTree::EntriesForKey(NodeId node,
                                                          uint64_t key) {
  std::vector<PageId> path;
  SMDB_RETURN_IF_ERROR(DescendToLeaf(node, key, &path));
  PageId leaf = path.back();
  std::vector<EntryRef> out;
  for (uint32_t slot = 0; slot < leaf_capacity(); ++slot) {
    SMDB_ASSIGN_OR_RETURN(LeafEntry e, ReadLeafEntry(node, leaf, slot));
    if (e.state == LeafEntryState::kFree || e.key != key) continue;
    out.push_back(EntryRef{leaf, static_cast<uint16_t>(slot), e});
  }
  return out;
}

Status BTree::CheckStructure(NodeId node) {
  // Walk the tree from the root checking that every leaf entry's key routes
  // to the leaf that holds it, and that leaves are reachable via the chain.
  SMDB_ASSIGN_OR_RETURN(auto entries, CollectEntries(true));
  for (const auto& ref : entries) {
    std::vector<PageId> path;
    SMDB_RETURN_IF_ERROR(DescendToLeaf(node, ref.entry.key, &path));
    if (path.back() != ref.leaf) {
      return Status::Corruption("key routes to wrong leaf");
    }
  }
  // No duplicate live keys.
  std::vector<uint64_t> keys;
  for (const auto& ref : entries) {
    if (ref.entry.state == LeafEntryState::kLive) {
      keys.push_back(ref.entry.key);
    }
  }
  std::sort(keys.begin(), keys.end());
  if (std::adjacent_find(keys.begin(), keys.end()) != keys.end()) {
    return Status::Corruption("duplicate live key");
  }
  return Status::Ok();
}

}  // namespace smdb
