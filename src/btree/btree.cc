#include "btree/btree.h"

#include <algorithm>
#include <cassert>
#include <cstring>

#include "db/page_layout.h"
#include "sim/machine.h"

namespace smdb {

BTree::BTree(Machine* machine, BufferManager* buffers, LogManager* log,
             WalTable* wal_table, UsnSource* usn, LbmPolicy* lbm,
             uint32_t tree_id, bool early_commit_structural)
    : machine_(machine),
      buffers_(buffers),
      log_(log),
      wal_table_(wal_table),
      usn_(usn),
      lbm_(lbm),
      tree_id_(tree_id),
      early_commit_structural_(early_commit_structural),
      machine_line_size_(machine->line_size()),
      page_size_(buffers->page_size()) {}

uint32_t BTree::leaf_capacity() const {
  return (page_size_ / machine_line_size_ - 1) * leaf_entries_per_line();
}

uint32_t BTree::internal_capacity() const {
  return (page_size_ / machine_line_size_ - 1) * internal_entries_per_line();
}

Addr BTree::LeafEntryAddr(Addr base, uint32_t slot) const {
  uint32_t per_line = leaf_entries_per_line();
  uint32_t line = 1 + slot / per_line;
  return base + static_cast<Addr>(line) * machine_line_size_ +
         (slot % per_line) * kLeafEntryBytes;
}

Addr BTree::InternalEntryAddr(Addr base, uint32_t idx) const {
  uint32_t per_line = internal_entries_per_line();
  uint32_t line = 1 + idx / per_line;
  return base + static_cast<Addr>(line) * machine_line_size_ +
         (idx % per_line) * kInternalEntryBytes;
}

Addr BTree::BaseOf(PageId page) const {
  auto base = buffers_->BaseOf(page);
  assert(base.ok());
  return *base;
}

LineAddr BTree::HeaderLineOf(PageId page) const {
  return machine_->LineOf(BaseOf(page));
}

Result<BTree::PageHeader> BTree::ReadHeader(NodeId node, PageId page) const {
  uint8_t buf[32];
  SMDB_RETURN_IF_ERROR(machine_->Read(node, BaseOf(page), buf, sizeof(buf)));
  PageHeader h;
  std::memcpy(&h.page_id, buf + 4, 4);
  std::memcpy(&h.page_lsn, buf + 8, 8);
  h.is_leaf = buf[16] != 0;
  h.level = buf[17];
  std::memcpy(&h.nkeys, buf + 18, 2);
  std::memcpy(&h.next_leaf, buf + 20, 4);
  std::memcpy(&h.first_child, buf + 24, 4);
  std::memcpy(&h.tree_id, buf + 28, 4);
  return h;
}

Status BTree::WriteHeader(NodeId node, PageId page, const PageHeader& h) {
  uint8_t buf[32];
  std::memset(buf, 0, sizeof(buf));
  uint32_t magic = PageLayout::kMagic;
  std::memcpy(buf, &magic, 4);
  std::memcpy(buf + 4, &h.page_id, 4);
  std::memcpy(buf + 8, &h.page_lsn, 8);
  buf[16] = h.is_leaf ? 1 : 0;
  buf[17] = h.level;
  std::memcpy(buf + 18, &h.nkeys, 2);
  std::memcpy(buf + 20, &h.next_leaf, 4);
  std::memcpy(buf + 24, &h.first_child, 4);
  std::memcpy(buf + 28, &h.tree_id, 4);
  return machine_->Write(node, BaseOf(page), buf, sizeof(buf));
}

Result<LeafEntry> BTree::ReadLeafEntry(NodeId node, PageId page,
                                       uint32_t slot) const {
  uint8_t buf[kLeafEntryBytes];
  SMDB_RETURN_IF_ERROR(machine_->Read(node, LeafEntryAddr(BaseOf(page), slot),
                                      buf, sizeof(buf)));
  LeafEntry e;
  std::memcpy(&e.key, buf, 8);
  std::memcpy(&e.rid.page, buf + 8, 4);
  std::memcpy(&e.rid.slot, buf + 12, 2);
  e.state = static_cast<LeafEntryState>(buf[14]);
  std::memcpy(&e.tag, buf + 16, 2);
  std::memcpy(&e.usn, buf + 18, 8);
  return e;
}

Status BTree::WriteLeafEntry(NodeId node, PageId page, uint32_t slot,
                             const LeafEntry& e) {
  uint8_t buf[kLeafEntryBytes];
  std::memset(buf, 0, sizeof(buf));
  std::memcpy(buf, &e.key, 8);
  std::memcpy(buf + 8, &e.rid.page, 4);
  std::memcpy(buf + 12, &e.rid.slot, 2);
  buf[14] = static_cast<uint8_t>(e.state);
  std::memcpy(buf + 16, &e.tag, 2);
  std::memcpy(buf + 18, &e.usn, 8);
  return machine_->Write(node, LeafEntryAddr(BaseOf(page), slot), buf,
                         sizeof(buf));
}

Result<PageId> BTree::AllocatePage(NodeId node, bool is_leaf, uint8_t level) {
  // Format the header into the initial image so the stable copy written at
  // creation is already a well-formed (empty) tree page: a reloaded page
  // must never decode as garbage, even under the early-commit ablation.
  // The page_id field is stamped after allocation (it is diagnostic only).
  std::vector<uint8_t> image(page_size_, 0);
  {
    uint32_t magic = PageLayout::kMagic;
    std::memcpy(image.data(), &magic, 4);
    image[16] = is_leaf ? 1 : 0;
    image[17] = level;
    std::memcpy(image.data() + 28, &tree_id_, 4);
  }
  SMDB_ASSIGN_OR_RETURN(PageId page, buffers_->CreatePage(node, image));
  pages_.insert(page);
  page_list_.push_back(page);
  PageHeader h;
  h.page_id = page;
  h.is_leaf = is_leaf;
  h.level = level;
  h.tree_id = tree_id_;
  SMDB_RETURN_IF_ERROR(WriteHeader(node, page, h));
  return page;
}

Status BTree::Init(NodeId node) {
  SMDB_ASSIGN_OR_RETURN(PageId root, AllocatePage(node, /*is_leaf=*/true, 0));
  root_ = root;
  leftmost_leaf_ = root;
  // The root allocation is itself a structural change; commit it early so
  // the catalog state is durable.
  return EarlyCommitStructural(node, {root}, "create root");
}

Status BTree::DescendToLeaf(NodeId node, uint64_t key,
                            std::vector<PageId>* path) {
  path->clear();
  PageId page = root_;
  for (int depth = 0; depth < 64; ++depth) {
    if (!pages_.contains(page)) {
      return Status::Corruption("descent reached a non-tree page");
    }
    path->push_back(page);
    SMDB_ASSIGN_OR_RETURN(PageHeader h, ReadHeader(node, page));
    if (h.is_leaf) return Status::Ok();
    Addr base = BaseOf(page);
    PageId child = h.first_child;
    for (uint32_t i = 0; i < h.nkeys; ++i) {
      uint8_t buf[kInternalEntryBytes];
      SMDB_RETURN_IF_ERROR(
          machine_->Read(node, InternalEntryAddr(base, i), buf, sizeof(buf)));
      uint64_t sep;
      std::memcpy(&sep, buf, 8);
      if (key < sep) break;
      std::memcpy(&child, buf + 8, 4);
    }
    page = child;
  }
  return Status::Corruption("B-tree deeper than 64 levels");
}

Result<uint32_t> BTree::FindEntrySlot(NodeId node, PageId leaf, uint64_t key,
                                      bool include_tombstones) const {
  // A key may briefly have both a live entry and a tombstone (a
  // transaction re-inserting a key it logically deleted allocates a fresh
  // slot rather than destroying the tombstone's committed before-image).
  // Live entries take precedence.
  uint32_t cap = leaf_capacity();
  uint32_t tomb_slot = cap;  // sentinel
  for (uint32_t slot = 0; slot < cap; ++slot) {
    SMDB_ASSIGN_OR_RETURN(LeafEntry e, ReadLeafEntry(node, leaf, slot));
    if (e.state == LeafEntryState::kFree || e.key != key) continue;
    if (e.state == LeafEntryState::kLive) return slot;
    if (tomb_slot == cap) tomb_slot = slot;
  }
  if (include_tombstones && tomb_slot != cap) return tomb_slot;
  return Status::NotFound("key not in leaf");
}

Result<uint32_t> BTree::FindFreeSlot(NodeId node, PageId leaf) {
  uint32_t cap = leaf_capacity();
  for (uint32_t slot = 0; slot < cap; ++slot) {
    SMDB_ASSIGN_OR_RETURN(LeafEntry e, ReadLeafEntry(node, leaf, slot));
    if (e.state == LeafEntryState::kFree) return slot;
  }
  // Full: purge tombstones whose deleting transaction has committed (their
  // tag is null) — the space became reusable at that commit.
  uint32_t freed = 0;
  for (uint32_t slot = 0; slot < cap; ++slot) {
    SMDB_ASSIGN_OR_RETURN(LeafEntry e, ReadLeafEntry(node, leaf, slot));
    if (e.state == LeafEntryState::kTombstone && e.tag == kTagNone) {
      LeafEntry empty;
      SMDB_RETURN_IF_ERROR(WriteLeafEntry(node, leaf, slot, empty));
      ++freed;
      ++stats_.purged_tombstones;
    }
  }
  if (freed == 0) return Status::NotFound("leaf full");
  for (uint32_t slot = 0; slot < cap; ++slot) {
    SMDB_ASSIGN_OR_RETURN(LeafEntry e, ReadLeafEntry(node, leaf, slot));
    if (e.state == LeafEntryState::kFree) return slot;
  }
  return Status::NotFound("leaf full");
}

Status BTree::EarlyCommitStructural(NodeId node,
                                    const std::vector<PageId>& pages,
                                    const std::string& description) {
  if (!early_commit_structural_) {
    if (force_structural_pages_) {
      // Reboot semantics: no structural log records exist, so the stable DB
      // itself must stay self-consistent — flush the touched pages now. The
      // old leaf comes first in `pages`, and FlushPage's WAL gate forces the
      // log records covering the entries that moved to the new right
      // sibling before any page image lands.
      std::vector<PageId> unique_pages;
      for (PageId p : pages) {
        if (std::find(unique_pages.begin(), unique_pages.end(), p) ==
            unique_pages.end()) {
          unique_pages.push_back(p);
        }
      }
      for (PageId p : unique_pages) {
        buffers_->MarkDirty(p);
        SMDB_RETURN_IF_ERROR(buffers_->FlushPage(node, p));
      }
      ++stats_.early_commits;
      return Status::Ok();
    }
    // Ablation baseline: the structural change stays volatile. Crash
    // experiments show the resulting IFA violations.
    return Status::Ok();
  }
  // Nested top-level action: stamp the touched pages, capture their
  // post-change images as physical redo information, and force the log.
  // One log force — no page flushes — makes the new structure durable
  // before any other transaction can use it.
  StructuralPayload payload;
  payload.tree_id = tree_id_;
  payload.new_page = pages.empty() ? kInvalidPage : pages.back();
  payload.description = description;
  payload.usn = usn_->Next();
  std::vector<PageId> unique_pages;
  for (PageId p : pages) {
    if (std::find(unique_pages.begin(), unique_pages.end(), p) ==
        unique_pages.end()) {
      unique_pages.push_back(p);
    }
  }
  for (PageId p : unique_pages) {
    Addr base = BaseOf(p);
    SMDB_RETURN_IF_ERROR(machine_->Write(
        node, base + PageLayout::kPageLsnOffset, &payload.usn, 8));
    std::vector<uint8_t> image(page_size_);
    SMDB_RETURN_IF_ERROR(machine_->SnoopRead(base, image.data(),
                                             image.size()));
    payload.page_images.emplace_back(p, std::move(image));
    buffers_->MarkDirty(p);
  }
  LogRecord rec;
  rec.type = LogRecordType::kStructural;
  rec.txn = kInvalidTxn;  // nested top-level action, independent of any txn
  rec.payload = std::move(payload);
  log_->Append(node, std::move(rec));
  SMDB_RETURN_IF_ERROR(log_->Force(node, node));
  ++stats_.early_commits;
  return Status::Ok();
}

Status BTree::LogIndexOp(NodeId node, TxnId txn, IndexOpPayload payload,
                         Lsn* chain, const std::vector<LineAddr>& lines,
                         bool is_clr) {
  payload.is_clr = is_clr;
  LogRecord rec;
  rec.type = LogRecordType::kIndexOp;
  rec.txn = txn;
  rec.prev_lsn = chain != nullptr ? *chain : kInvalidLsn;
  rec.payload = payload;
  Lsn lsn = log_->Append(node, std::move(rec));
  if (chain != nullptr) *chain = lsn;
  return lbm_->OnUpdateLogged(node, lsn, lines);
}

Result<std::optional<RecordId>> BTree::Lookup(NodeId node, uint64_t key) {
  ++stats_.lookups;
  std::vector<PageId> path;
  SMDB_RETURN_IF_ERROR(DescendToLeaf(node, key, &path));
  auto slot = FindEntrySlot(node, path.back(), key,
                            /*include_tombstones=*/false);
  if (!slot.ok()) {
    if (slot.status().IsNotFound()) return std::optional<RecordId>{};
    return slot.status();
  }
  SMDB_ASSIGN_OR_RETURN(LeafEntry e, ReadLeafEntry(node, path.back(), *slot));
  return std::optional<RecordId>{e.rid};
}

Status BTree::Insert(NodeId node, TxnId txn, uint64_t key, RecordId value,
                     uint16_t tag, Lsn* chain) {
  std::vector<PageId> path;
  SMDB_RETURN_IF_ERROR(DescendToLeaf(node, key, &path));
  PageId leaf = path.back();

  // Reuse a tombstoned entry for the same key only if the delete has
  // committed (tag cleared): an uncommitted tombstone is the undo
  // information for that delete and must stay intact, so a re-insert by
  // the same transaction takes a fresh slot.
  auto existing = FindEntrySlot(node, leaf, key, /*include_tombstones=*/true);
  bool need_fresh_slot = true;
  uint32_t slot = 0;
  if (existing.ok()) {
    SMDB_ASSIGN_OR_RETURN(LeafEntry e, ReadLeafEntry(node, leaf, *existing));
    if (e.state == LeafEntryState::kLive) {
      return Status::InvalidArgument("duplicate key");
    }
    if (e.tag == kTagNone) {
      slot = *existing;
      need_fresh_slot = false;
    }
  } else if (!existing.status().IsNotFound()) {
    return existing.status();
  }
  if (need_fresh_slot) {
    auto free_slot = FindFreeSlot(node, leaf);
    if (!free_slot.ok() && free_slot.status().IsNotFound()) {
      SMDB_ASSIGN_OR_RETURN(leaf, SplitForInsert(node, path, key));
      SMDB_ASSIGN_OR_RETURN(slot, FindFreeSlot(node, leaf));
    } else if (!free_slot.ok()) {
      return free_slot.status();
    } else {
      slot = *free_slot;
    }
  }

  Addr base = BaseOf(leaf);
  LineAddr header_line = machine_->LineOf(base);
  LineAddr entry_line = machine_->LineOf(LeafEntryAddr(base, slot));
  SMDB_RETURN_IF_ERROR(machine_->GetLine(node, header_line));
  Status st = machine_->GetLine(node, entry_line);
  if (!st.ok()) {
    machine_->ReleaseLine(node, header_line);
    return st;
  }

  uint64_t usn = usn_->Next();
  LeafEntry e;
  e.key = key;
  e.rid = value;
  e.state = LeafEntryState::kLive;
  e.tag = tag;
  e.usn = usn;
  Status s = WriteLeafEntry(node, leaf, slot, e);
  if (s.ok()) {
    s = machine_->Write(node, base + PageLayout::kPageLsnOffset, &usn, 8);
  }
  if (s.ok()) {
    IndexOpPayload p;
    p.tree_id = tree_id_;
    p.op = IndexOpPayload::Op::kInsert;
    p.key = key;
    p.value = value;
    p.usn = usn;
    s = LogIndexOp(node, txn, p, chain, {entry_line, header_line},
                   /*is_clr=*/false);
  }
  machine_->ReleaseLine(node, entry_line);
  machine_->ReleaseLine(node, header_line);
  SMDB_RETURN_IF_ERROR(s);
  wal_table_->NoteUpdate(leaf, node, log_->last_lsn(node));
  buffers_->MarkDirty(leaf);
  ++stats_.inserts;
  return Status::Ok();
}

Status BTree::Delete(NodeId node, TxnId txn, uint64_t key, uint16_t tag,
                     Lsn* chain) {
  std::vector<PageId> path;
  SMDB_RETURN_IF_ERROR(DescendToLeaf(node, key, &path));
  PageId leaf = path.back();
  auto slot_or = FindEntrySlot(node, leaf, key, /*include_tombstones=*/false);
  if (!slot_or.ok()) return slot_or.status();
  uint32_t slot = *slot_or;

  Addr base = BaseOf(leaf);
  LineAddr header_line = machine_->LineOf(base);
  LineAddr entry_line = machine_->LineOf(LeafEntryAddr(base, slot));
  SMDB_RETURN_IF_ERROR(machine_->GetLine(node, header_line));
  Status st = machine_->GetLine(node, entry_line);
  if (!st.ok()) {
    machine_->ReleaseLine(node, header_line);
    return st;
  }

  SMDB_ASSIGN_OR_RETURN(LeafEntry e, ReadLeafEntry(node, leaf, slot));
  uint64_t usn = usn_->Next();
  RecordId old_rid = e.rid;
  // Deleting the transaction's *own* uncommitted insert: the entry was
  // never visible as committed, so a tombstone (whose recovery undo is an
  // unmarking) would be wrong — unmarking must only ever resurrect
  // committed data. Remove the entry physically and log it as a redo-only
  // compensation: annulment then leaves (correctly) nothing behind.
  bool own_uncommitted = e.state == LeafEntryState::kLive &&
                         e.tag != kTagNone && e.tag == tag;
  Status s;
  if (own_uncommitted) {
    LeafEntry empty;
    s = WriteLeafEntry(node, leaf, slot, empty);
  } else {
    e.state = LeafEntryState::kTombstone;
    e.tag = tag;
    e.usn = usn;
    s = WriteLeafEntry(node, leaf, slot, e);
  }
  if (s.ok()) {
    s = machine_->Write(node, base + PageLayout::kPageLsnOffset, &usn, 8);
  }
  if (s.ok()) {
    IndexOpPayload p;
    p.tree_id = tree_id_;
    p.op = IndexOpPayload::Op::kDelete;
    p.key = key;
    p.value = old_rid;
    p.usn = usn;
    s = LogIndexOp(node, txn, p, chain, {entry_line, header_line},
                   /*is_clr=*/own_uncommitted);
  }
  machine_->ReleaseLine(node, entry_line);
  machine_->ReleaseLine(node, header_line);
  SMDB_RETURN_IF_ERROR(s);
  wal_table_->NoteUpdate(leaf, node, log_->last_lsn(node));
  buffers_->MarkDirty(leaf);
  ++stats_.deletes;
  return Status::Ok();
}

Result<PageId> BTree::SplitForInsert(NodeId node, std::vector<PageId>& path,
                                     uint64_t key) {
  PageId leaf = path.back();
  // Gather all occupied entries and sort by key to compute the separator.
  uint32_t cap = leaf_capacity();
  std::vector<LeafEntry> entries;
  for (uint32_t slot = 0; slot < cap; ++slot) {
    SMDB_ASSIGN_OR_RETURN(LeafEntry e, ReadLeafEntry(node, leaf, slot));
    if (e.state != LeafEntryState::kFree) entries.push_back(e);
  }
  std::sort(entries.begin(), entries.end(),
            [](const LeafEntry& a, const LeafEntry& b) {
              return a.key < b.key;
            });
  size_t half = entries.size() / 2;
  uint64_t sep = entries[half].key;

  SMDB_ASSIGN_OR_RETURN(PageHeader old_h, ReadHeader(node, leaf));
  SMDB_ASSIGN_OR_RETURN(PageId right, AllocatePage(node, true, 0));

  // Rewrite the old leaf compactly with the lower half, fill the new leaf
  // with the upper half.
  uint32_t li = 0, ri = 0;
  for (size_t i = 0; i < entries.size(); ++i) {
    if (entries[i].key < sep) {
      SMDB_RETURN_IF_ERROR(WriteLeafEntry(node, leaf, li++, entries[i]));
    } else {
      SMDB_RETURN_IF_ERROR(WriteLeafEntry(node, right, ri++, entries[i]));
    }
  }
  LeafEntry empty;
  for (uint32_t slot = li; slot < cap; ++slot) {
    SMDB_RETURN_IF_ERROR(WriteLeafEntry(node, leaf, slot, empty));
  }

  PageHeader right_h;
  right_h.page_id = right;
  right_h.is_leaf = true;
  right_h.tree_id = tree_id_;
  right_h.next_leaf = old_h.next_leaf;
  SMDB_RETURN_IF_ERROR(WriteHeader(node, right, right_h));
  old_h.next_leaf = right;
  SMDB_RETURN_IF_ERROR(WriteHeader(node, leaf, old_h));

  SMDB_RETURN_IF_ERROR(
      InsertIntoParent(node, path, path.size() >= 2 ? path.size() - 2 : 0,
                       sep, right));
  ++stats_.splits;
  std::vector<PageId> touched = {leaf, right};
  for (size_t i = 0; i + 1 < path.size(); ++i) touched.push_back(path[i]);
  touched.push_back(root_);
  SMDB_RETURN_IF_ERROR(EarlyCommitStructural(node, touched, "leaf split"));
  return key < sep ? leaf : right;
}

Status BTree::InsertIntoParent(NodeId node, std::vector<PageId>& path,
                               size_t parent_index, uint64_t sep_key,
                               PageId right_child) {
  if (path.size() == 1) {
    // Split of the root: create a new root.
    SMDB_ASSIGN_OR_RETURN(PageHeader child_h, ReadHeader(node, path[0]));
    SMDB_ASSIGN_OR_RETURN(
        PageId new_root,
        AllocatePage(node, false, static_cast<uint8_t>(child_h.level + 1)));
    PageHeader h;
    h.page_id = new_root;
    h.is_leaf = false;
    h.level = static_cast<uint8_t>(child_h.level + 1);
    h.nkeys = 1;
    h.first_child = path[0];
    h.tree_id = tree_id_;
    SMDB_RETURN_IF_ERROR(WriteHeader(node, new_root, h));
    uint8_t buf[kInternalEntryBytes];
    std::memcpy(buf, &sep_key, 8);
    std::memcpy(buf + 8, &right_child, 4);
    SMDB_RETURN_IF_ERROR(machine_->Write(
        node, InternalEntryAddr(BaseOf(new_root), 0), buf, sizeof(buf)));
    root_ = new_root;
    return Status::Ok();
  }

  PageId parent = path[parent_index];
  SMDB_ASSIGN_OR_RETURN(PageHeader h, ReadHeader(node, parent));
  if (h.nkeys >= internal_capacity()) {
    return Status::NotSupported(
        "internal-node split beyond capacity (increase page size)");
  }
  // Find insert position (keys kept sorted in internal nodes).
  Addr base = BaseOf(parent);
  uint32_t pos = 0;
  for (; pos < h.nkeys; ++pos) {
    uint8_t buf[kInternalEntryBytes];
    SMDB_RETURN_IF_ERROR(
        machine_->Read(node, InternalEntryAddr(base, pos), buf, sizeof(buf)));
    uint64_t k;
    std::memcpy(&k, buf, 8);
    if (sep_key < k) break;
  }
  // Shift entries right.
  for (uint32_t i = h.nkeys; i > pos; --i) {
    uint8_t buf[kInternalEntryBytes];
    SMDB_RETURN_IF_ERROR(machine_->Read(node, InternalEntryAddr(base, i - 1),
                                        buf, sizeof(buf)));
    SMDB_RETURN_IF_ERROR(
        machine_->Write(node, InternalEntryAddr(base, i), buf, sizeof(buf)));
  }
  uint8_t buf[kInternalEntryBytes];
  std::memcpy(buf, &sep_key, 8);
  std::memcpy(buf + 8, &right_child, 4);
  SMDB_RETURN_IF_ERROR(
      machine_->Write(node, InternalEntryAddr(base, pos), buf, sizeof(buf)));
  h.nkeys++;
  return WriteHeader(node, parent, h);
}

Status BTree::ClearTag(NodeId node, uint64_t key) {
  // A key may have both a live entry and the transaction's own tombstone;
  // commit clears the tags of every entry carrying the key.
  std::vector<PageId> path;
  SMDB_RETURN_IF_ERROR(DescendToLeaf(node, key, &path));
  PageId leaf = path.back();
  uint32_t cap = leaf_capacity();
  bool found = false;
  for (uint32_t slot = 0; slot < cap; ++slot) {
    SMDB_ASSIGN_OR_RETURN(LeafEntry e, ReadLeafEntry(node, leaf, slot));
    if (e.state == LeafEntryState::kFree || e.key != key) continue;
    found = true;
    if (e.tag == kTagNone) continue;
    Addr addr = LeafEntryAddr(BaseOf(leaf), slot);
    LineAddr line = machine_->LineOf(addr);
    SMDB_RETURN_IF_ERROR(machine_->GetLine(node, line));
    uint16_t tag = kTagNone;
    Status s = machine_->Write(node, addr + 16, &tag, 2);
    machine_->ReleaseLine(node, line);
    SMDB_RETURN_IF_ERROR(s);
  }
  return found ? Status::Ok() : Status::NotFound("no entry for key");
}

Status BTree::UndoInsert(NodeId node, TxnId txn, uint64_t key, Lsn* chain,
                         bool log_clr) {
  std::vector<PageId> path;
  SMDB_RETURN_IF_ERROR(DescendToLeaf(node, key, &path));
  PageId leaf = path.back();
  // Remove the *live* entry for the key (FindEntrySlot prefers live over a
  // cohabiting tombstone, whose fate belongs to UndoDelete).
  auto slot_or = FindEntrySlot(node, leaf, key, /*include_tombstones=*/false);
  if (!slot_or.ok()) {
    if (!slot_or.status().IsNotFound()) return slot_or.status();
    // Nothing to undo (the insert never became visible anywhere).
    return Status::Ok();
  }
  Addr base = BaseOf(leaf);
  LineAddr header_line = machine_->LineOf(base);
  LineAddr entry_line = machine_->LineOf(LeafEntryAddr(base, *slot_or));
  SMDB_RETURN_IF_ERROR(machine_->GetLine(node, header_line));
  Status st = machine_->GetLine(node, entry_line);
  if (!st.ok()) {
    machine_->ReleaseLine(node, header_line);
    return st;
  }
  uint64_t usn = usn_->Next();
  LeafEntry empty;
  Status s = WriteLeafEntry(node, leaf, *slot_or, empty);
  if (s.ok()) {
    s = machine_->Write(node, base + PageLayout::kPageLsnOffset, &usn, 8);
  }
  if (s.ok() && log_clr) {
    IndexOpPayload p;
    p.tree_id = tree_id_;
    p.op = IndexOpPayload::Op::kDelete;  // compensation for the insert
    p.key = key;
    p.usn = usn;
    s = LogIndexOp(node, txn, p, chain, {entry_line, header_line},
                   /*is_clr=*/true);
  }
  machine_->ReleaseLine(node, entry_line);
  machine_->ReleaseLine(node, header_line);
  SMDB_RETURN_IF_ERROR(s);
  wal_table_->NoteUpdate(leaf, node, log_->last_lsn(node));
  buffers_->MarkDirty(leaf);
  return Status::Ok();
}

Status BTree::UndoDelete(NodeId node, TxnId txn, uint64_t key, Lsn* chain,
                         bool log_clr) {
  std::vector<PageId> path;
  SMDB_RETURN_IF_ERROR(DescendToLeaf(node, key, &path));
  PageId leaf = path.back();
  // Unmark specifically the tombstoned entry (a live entry for the same
  // key may coexist while its inserting transaction is active).
  uint32_t cap = leaf_capacity();
  uint32_t found = cap;
  for (uint32_t slot = 0; slot < cap && found == cap; ++slot) {
    SMDB_ASSIGN_OR_RETURN(LeafEntry e, ReadLeafEntry(node, leaf, slot));
    if (e.state == LeafEntryState::kTombstone && e.key == key) found = slot;
  }
  if (found == cap) return Status::NotFound("no tombstone for key");
  Result<uint32_t> slot_or = found;
  Addr base = BaseOf(leaf);
  LineAddr header_line = machine_->LineOf(base);
  LineAddr entry_line = machine_->LineOf(LeafEntryAddr(base, *slot_or));
  SMDB_RETURN_IF_ERROR(machine_->GetLine(node, header_line));
  Status st = machine_->GetLine(node, entry_line);
  if (!st.ok()) {
    machine_->ReleaseLine(node, header_line);
    return st;
  }
  SMDB_ASSIGN_OR_RETURN(LeafEntry e, ReadLeafEntry(node, leaf, *slot_or));
  uint64_t usn = usn_->Next();
  e.state = LeafEntryState::kLive;  // "unmark" the logically deleted record
  e.tag = kTagNone;
  e.usn = usn;
  Status s = WriteLeafEntry(node, leaf, *slot_or, e);
  if (s.ok()) {
    s = machine_->Write(node, base + PageLayout::kPageLsnOffset, &usn, 8);
  }
  if (s.ok() && log_clr) {
    IndexOpPayload p;
    p.tree_id = tree_id_;
    p.op = IndexOpPayload::Op::kInsert;  // compensation for the delete
    p.key = key;
    p.value = e.rid;
    p.usn = usn;
    s = LogIndexOp(node, txn, p, chain, {entry_line, header_line},
                   /*is_clr=*/true);
  }
  machine_->ReleaseLine(node, entry_line);
  machine_->ReleaseLine(node, header_line);
  SMDB_RETURN_IF_ERROR(s);
  wal_table_->NoteUpdate(leaf, node, log_->last_lsn(node));
  buffers_->MarkDirty(leaf);
  return Status::Ok();
}

Result<LineAddr> BTree::LineOfKey(NodeId node, uint64_t key) {
  std::vector<PageId> path;
  SMDB_RETURN_IF_ERROR(DescendToLeaf(node, key, &path));
  SMDB_ASSIGN_OR_RETURN(
      uint32_t slot,
      FindEntrySlot(node, path.back(), key, /*include_tombstones=*/true));
  return machine_->LineOf(LeafEntryAddr(BaseOf(path.back()), slot));
}

}  // namespace smdb
