#ifndef SMDB_BTREE_BTREE_H_
#define SMDB_BTREE_BTREE_H_

#include <optional>
#include <unordered_set>
#include <vector>

#include "common/status.h"
#include "common/types.h"
#include "core/lbm_policy.h"
#include "core/protocol.h"
#include "db/buffer_manager.h"
#include "db/wal_table.h"
#include "wal/log_manager.h"

namespace smdb {

class Machine;

/// Entry state within a leaf.
enum class LeafEntryState : uint8_t {
  kFree = 0,
  kLive = 1,
  /// Logically deleted (section 4.2.1): the record is only *marked* deleted
  /// so that (a) the freed space is not reused before the deleting
  /// transaction commits, and (b) the undo of an uncommitted delete — which
  /// may have migrated to another node — is a mere unmarking.
  kTombstone = 2,
};

/// Decoded leaf entry.
struct LeafEntry {
  uint64_t key = 0;
  RecordId rid;
  LeafEntryState state = LeafEntryState::kFree;
  /// Undo tag (kTagNone or TagForNode(n)), stored in the same cache line as
  /// the entry, per the Tagging Rule.
  uint16_t tag = 0;
  uint64_t usn = 0;
};

struct BTreeStats {
  uint64_t inserts = 0;
  uint64_t deletes = 0;
  uint64_t lookups = 0;
  uint64_t splits = 0;
  /// Early commits of structural changes (Table 1 row 1): each is a log
  /// force plus flushes of the affected pages.
  uint64_t early_commits = 0;
  uint64_t purged_tombstones = 0;

  void Reset() { *this = BTreeStats(); }
};

/// A B+-tree stored in shared memory, keyed by uint64 with RecordId values
/// (records live only in leaves). Non-structural updates (insert, logical
/// delete) follow the record recovery protocols: performed under line
/// locks, logged logically before the line can migrate, and undo-tagged.
/// Structural changes (page splits, allocation) are committed early as
/// nested top-level actions: logged, forced, and the affected pages flushed
/// before the new space is visible to any other transaction.
///
/// Leaf pages use unsorted slot arrays (lookup scans the leaf) so that
/// undo of an insert never moves other entries between cache lines.
///
/// Page layout — header line: magic u32 @0, page_id u32 @4, page_lsn u64
/// @8, is_leaf u8 @16, level u8 @17, nkeys u16 @18 (internal only),
/// next_leaf u32 @20, first_child u32 @24, tree_id u32 @28.
/// Leaf entry (26 B, never spans lines): key u64 @0, rid_page u32 @8,
/// rid_slot u16 @12, state u8 @14, pad u8 @15, tag u16 @16, usn u64 @18.
/// Internal entry (12 B): key u64 @0, child u32 @8.
class BTree {
 public:
  BTree(Machine* machine, BufferManager* buffers, LogManager* log,
        WalTable* wal_table, UsnSource* usn, LbmPolicy* lbm, uint32_t tree_id,
        bool early_commit_structural);

  /// Creates the root leaf. `node` pays the cost.
  Status Init(NodeId node);

  uint32_t tree_id() const { return tree_id_; }

  /// Reboot-semantics escape hatch for the `early_commit_structural = false`
  /// ablation: RebootAll discards every volatile page and reloads stable
  /// images, so a split that exists only in memory leaves the reloaded tree
  /// with torn routing (a parent pointing at a page whose stable image is
  /// still the freshly-allocated blank). When set, structural changes are
  /// made durable by flushing the touched pages at split time instead of
  /// logging them — the stable DB stays self-consistent, which is exactly
  /// the contract a whole-reboot restart relies on.
  void set_force_structural_pages(bool on) { force_structural_pages_ = on; }

  PageId root_page() const { return root_; }
  const std::vector<PageId>& pages() const { return page_list_; }
  bool OwnsPage(PageId page) const { return pages_.contains(page); }
  BTreeStats& stats() { return stats_; }

  // ----------------------------------------------------------------------
  // Transactional operations (caller holds the key lock; `chain` is the
  // transaction's log-record chain).

  /// Looks up `key`; returns its RecordId if a live entry exists.
  Result<std::optional<RecordId>> Lookup(NodeId node, uint64_t key);

  /// Inserts key -> value. InvalidArgument if a live entry already exists.
  /// `tag` is the undo tag to stamp (kTagNone when tagging is disabled).
  Status Insert(NodeId node, TxnId txn, uint64_t key, RecordId value,
                uint16_t tag, Lsn* chain);

  /// Logically deletes `key` (marks the entry). NotFound if no live entry.
  Status Delete(NodeId node, TxnId txn, uint64_t key, uint16_t tag,
                Lsn* chain);

  // ----------------------------------------------------------------------
  // Commit / abort support.

  /// Clears the undo tag of `key`'s entry (commit path).
  Status ClearTag(NodeId node, uint64_t key);

  /// Physically removes an uncommitted insert (abort/recovery undo).
  /// When `log_clr` is set a redo-only compensation record is logged.
  Status UndoInsert(NodeId node, TxnId txn, uint64_t key, Lsn* chain,
                    bool log_clr);

  /// Unmarks an uncommitted logical delete (abort/recovery undo).
  Status UndoDelete(NodeId node, TxnId txn, uint64_t key, Lsn* chain,
                    bool log_clr);

  /// Slot-precise undo for the restart tag scan (a key may have both a
  /// live entry and a tombstone; the scan resolves each entry
  /// individually). Both log redo-only compensation records.
  Status RemoveEntryAt(NodeId node, PageId leaf, uint16_t slot);
  Status UnmarkEntryAt(NodeId node, PageId leaf, uint16_t slot);

  // ----------------------------------------------------------------------
  // Restart recovery support (implemented in btree_recovery.cc).

  /// Idempotently re-applies a logged index operation (redo pass). `tag` is
  /// the undo tag to restore (TagForNode of the owner if the owning
  /// transaction is still active, else kTagNone).
  Status RedoIndexOp(NodeId node, const IndexOpPayload& op, uint16_t tag);

  struct EntryRef {
    PageId leaf = kInvalidPage;
    uint16_t slot = 0;
    LeafEntry entry;
  };

  /// Entries whose bytes live in cache line `line` (tag-scan support).
  std::vector<EntryRef> EntriesInLine(LineAddr line) const;

  /// All entries in the tree, via snooping (verification; no cost).
  /// Lost lines fail with LineLost.
  Result<std::vector<EntryRef>> CollectEntries(bool include_tombstones) const;

  /// Structural validation: every reachable page is well formed, internal
  /// separators route correctly, and leaf chain order is consistent.
  Status CheckStructure(NodeId node);

  /// The cache line holding `key`'s entry, if the entry exists (tests).
  Result<LineAddr> LineOfKey(NodeId node, uint64_t key);

  /// Current entry for `key` (live or tombstoned), if any. Coherent read.
  Result<std::optional<LeafEntry>> GetEntry(NodeId node, uint64_t key);

  /// Every non-free entry for `key` (a key can carry both a live entry and
  /// a tombstone). Coherent reads; used by on-demand recovery's per-key tag
  /// discharge, which must resolve each entry individually like the full
  /// tag scan does.
  Result<std::vector<EntryRef>> EntriesForKey(NodeId node, uint64_t key);

 private:
  friend class BTreeRecoveryAccess;

  static constexpr uint32_t kLeafEntryBytes = 26;
  static constexpr uint32_t kInternalEntryBytes = 12;

  struct PageHeader {
    PageId page_id = kInvalidPage;
    uint64_t page_lsn = 0;
    bool is_leaf = true;
    uint8_t level = 0;
    uint16_t nkeys = 0;
    PageId next_leaf = kInvalidPage;
    PageId first_child = kInvalidPage;
    uint32_t tree_id = 0;
  };

  uint32_t leaf_entries_per_line() const {
    return machine_line_size_ / kLeafEntryBytes;
  }
  uint32_t leaf_capacity() const;
  uint32_t internal_entries_per_line() const {
    return machine_line_size_ / kInternalEntryBytes;
  }
  uint32_t internal_capacity() const;

  Addr LeafEntryAddr(Addr base, uint32_t slot) const;
  Addr InternalEntryAddr(Addr base, uint32_t idx) const;

  Result<PageHeader> ReadHeader(NodeId node, PageId page) const;
  Status WriteHeader(NodeId node, PageId page, const PageHeader& h);
  Result<LeafEntry> ReadLeafEntry(NodeId node, PageId page,
                                  uint32_t slot) const;
  Status WriteLeafEntry(NodeId node, PageId page, uint32_t slot,
                        const LeafEntry& e);

  /// Descends from the root to the leaf that should contain `key`,
  /// recording the path (page ids, root first).
  Status DescendToLeaf(NodeId node, uint64_t key, std::vector<PageId>* path);

  /// Finds `key`'s entry slot in `leaf` (live or tombstone). Returns slot
  /// or NotFound.
  Result<uint32_t> FindEntrySlot(NodeId node, PageId leaf, uint64_t key,
                                 bool include_tombstones) const;

  /// Finds a free slot; purges committed tombstones if needed. NotFound if
  /// the leaf is genuinely full.
  Result<uint32_t> FindFreeSlot(NodeId node, PageId leaf);

  /// Splits `leaf` (and parents as needed) as an early-committed nested
  /// top-level action, then returns the leaf that should now hold `key`.
  Result<PageId> SplitForInsert(NodeId node, std::vector<PageId>& path,
                                uint64_t key);

  /// Allocates and formats a new page. Part of a structural change.
  Result<PageId> AllocatePage(NodeId node, bool is_leaf, uint8_t level);

  /// Inserts (sep_key, right_child) into the internal `parent` (splitting
  /// upward as needed; may create a new root).
  Status InsertIntoParent(NodeId node, std::vector<PageId>& path,
                          size_t parent_index, uint64_t sep_key,
                          PageId right_child);

  /// Finalises a structural change: structural log record, force, flush of
  /// affected pages (the nested-top-level-action early commit).
  Status EarlyCommitStructural(NodeId node, const std::vector<PageId>& pages,
                               const std::string& description);

  /// Writes an index-op log record and runs the LBM hook for the touched
  /// lines.
  Status LogIndexOp(NodeId node, TxnId txn, IndexOpPayload payload,
                    Lsn* chain, const std::vector<LineAddr>& lines,
                    bool is_clr);

  Addr BaseOf(PageId page) const;
  LineAddr HeaderLineOf(PageId page) const;

  Machine* machine_;
  BufferManager* buffers_;
  LogManager* log_;
  WalTable* wal_table_;
  UsnSource* usn_;
  LbmPolicy* lbm_;
  uint32_t tree_id_;
  bool early_commit_structural_;
  bool force_structural_pages_ = false;
  uint32_t machine_line_size_;
  uint32_t page_size_;

  PageId root_ = kInvalidPage;
  PageId leftmost_leaf_ = kInvalidPage;
  std::unordered_set<PageId> pages_;
  std::vector<PageId> page_list_;
  BTreeStats stats_;
};

}  // namespace smdb

#endif  // SMDB_BTREE_BTREE_H_
