#include "os/disk_map.h"

#include <algorithm>
#include <cstring>

#include "sim/machine.h"

namespace smdb {

DiskMap::DiskMap(Machine* machine, LogManager* log, uint32_t map_id,
                 uint32_t blocks)
    : machine_(machine), log_(log), map_id_(map_id), blocks_(blocks) {
  base_ = machine_->AllocShared(static_cast<size_t>(blocks_) * kEntryBytes);
  stable_snapshot_.assign(static_cast<size_t>(blocks_) * kEntryBytes, 0);
}

LineAddr DiskMap::EntryLine(uint32_t block) const {
  return machine_->LineOf(EntryAddr(block));
}

DiskMap::Entry DiskMap::DecodeEntry(const uint8_t* buf) const {
  Entry e;
  e.state = static_cast<BlockState>(buf[0]);
  e.tag = buf[1];
  std::memcpy(&e.usn, buf + 4, 4);
  return e;
}

Result<DiskMap::Entry> DiskMap::ReadEntry(NodeId node,
                                          uint32_t block) const {
  uint8_t buf[kEntryBytes];
  SMDB_RETURN_IF_ERROR(
      machine_->Read(node, EntryAddr(block), buf, sizeof(buf)));
  return DecodeEntry(buf);
}

Status DiskMap::WriteEntry(NodeId node, uint32_t block, const Entry& e) {
  uint8_t buf[kEntryBytes] = {0};
  buf[0] = static_cast<uint8_t>(e.state);
  buf[1] = e.tag;
  std::memcpy(buf + 4, &e.usn, 4);
  return machine_->Write(node, EntryAddr(block), buf, sizeof(buf));
}

Status DiskMap::LogOp(NodeId node, uint32_t block, OsOpPayload::Op op,
                      uint64_t usn) {
  LogRecord rec;
  rec.type = LogRecordType::kOsOp;
  rec.txn = kInvalidTxn;
  rec.payload = OsOpPayload{map_id_, block, op, usn};
  log_->Append(node, std::move(rec));
  return Status::Ok();
}

Result<uint32_t> DiskMap::Allocate(NodeId node) {
  for (uint32_t block = 0; block < blocks_; ++block) {
    SMDB_ASSIGN_OR_RETURN(Entry e, ReadEntry(node, block));
    if (e.state != BlockState::kFree) continue;
    LineAddr line = EntryLine(block);
    SMDB_RETURN_IF_ERROR(machine_->GetLine(node, line));
    // Re-check under the line lock (another node may have raced here).
    auto cur = ReadEntry(node, block);
    if (!cur.ok() || cur->state != BlockState::kFree) {
      machine_->ReleaseLine(node, line);
      continue;
    }
    Entry next;
    next.state = BlockState::kProvisional;
    next.tag = static_cast<uint8_t>(node + 1);
    next.usn = static_cast<uint32_t>(next_usn_++);
    Status s = WriteEntry(node, block, next);
    // Log before the line can migrate: Volatile LBM for the map.
    if (s.ok()) s = LogOp(node, block, OsOpPayload::Op::kAllocate, next.usn);
    machine_->ReleaseLine(node, line);
    SMDB_RETURN_IF_ERROR(s);
    ++stats_.allocations;
    return block;
  }
  return Status::NotFound("disk map full");
}

Status DiskMap::Confirm(NodeId node, uint32_t block) {
  LineAddr line = EntryLine(block);
  SMDB_RETURN_IF_ERROR(machine_->GetLine(node, line));
  auto cur = ReadEntry(node, block);
  Status s = cur.ok() ? Status::Ok() : cur.status();
  if (s.ok() && cur->state != BlockState::kProvisional) {
    s = Status::InvalidArgument("block not provisional");
  }
  if (s.ok()) {
    Entry next = *cur;
    next.state = BlockState::kAllocated;
    next.tag = 0;
    next.usn = static_cast<uint32_t>(next_usn_++);
    s = WriteEntry(node, block, next);
    if (s.ok()) s = LogOp(node, block, OsOpPayload::Op::kConfirm, next.usn);
  }
  machine_->ReleaseLine(node, line);
  SMDB_RETURN_IF_ERROR(s);
  // A confirm is a durability point for the allocation's *intent*: force
  // the log so the confirm survives even this node's crash.
  SMDB_RETURN_IF_ERROR(log_->Force(node, node));
  ++stats_.confirms;
  return Status::Ok();
}

Status DiskMap::Free(NodeId node, uint32_t block) {
  LineAddr line = EntryLine(block);
  SMDB_RETURN_IF_ERROR(machine_->GetLine(node, line));
  auto cur = ReadEntry(node, block);
  Status s = cur.ok() ? Status::Ok() : cur.status();
  if (s.ok() && cur->state == BlockState::kFree) {
    s = Status::InvalidArgument("double free");
  }
  if (s.ok()) {
    Entry next;
    next.state = BlockState::kFree;
    next.tag = 0;
    next.usn = static_cast<uint32_t>(next_usn_++);
    s = WriteEntry(node, block, next);
    if (s.ok()) s = LogOp(node, block, OsOpPayload::Op::kFree, next.usn);
  }
  machine_->ReleaseLine(node, line);
  SMDB_RETURN_IF_ERROR(s);
  ++stats_.frees;
  return Status::Ok();
}

Result<BlockState> DiskMap::StateOf(uint32_t block) const {
  uint8_t buf[kEntryBytes];
  SMDB_RETURN_IF_ERROR(
      machine_->SnoopRead(EntryAddr(block), buf, sizeof(buf)));
  return DecodeEntry(buf).state;
}

Status DiskMap::CheckpointToStable(NodeId node) {
  SMDB_RETURN_IF_ERROR(machine_->SnoopRead(base_, stable_snapshot_.data(),
                                           stable_snapshot_.size()));
  machine_->Tick(node, machine_->config().timing.disk_write_ns);
  return Status::Ok();
}

Status DiskMap::RecoverAfterCrash(NodeId performer,
                                  const std::set<NodeId>& crashed) {
  // 1. Re-install lost lines from the stable snapshot.
  size_t line_size = machine_->line_size();
  size_t total = static_cast<size_t>(blocks_) * kEntryBytes;
  for (size_t off = 0; off < total; off += line_size) {
    LineAddr line = machine_->LineOf(base_ + off);
    if (!machine_->IsLineLost(line)) continue;
    size_t chunk = std::min(line_size, total - off);
    machine_->InstallToMemory(base_ + off, stable_snapshot_.data() + off,
                              chunk);
  }
  // 2. Redo logged operations (survivors' full logs, crashed nodes' stable
  // logs) in USN order, guarded per block.
  std::vector<std::pair<OsOpPayload, NodeId>> ops;
  for (NodeId n = 0; n < machine_->num_nodes(); ++n) {
    auto visit = [&](const LogRecord& rec) {
      if (rec.type != LogRecordType::kOsOp) return;
      if (rec.os_op().map_id != map_id_) return;
      ops.emplace_back(rec.os_op(), rec.node);
    };
    if (machine_->NodeAlive(n)) {
      log_->ForEachAll(n, visit);
    } else {
      log_->ForEachStable(n, visit);
    }
  }
  std::sort(ops.begin(), ops.end(), [](const auto& a, const auto& b) {
    return a.first.usn < b.first.usn;
  });
  for (const auto& [op, logger] : ops) {
    SMDB_ASSIGN_OR_RETURN(Entry e, ReadEntry(performer, op.block));
    if (e.usn >= op.usn) continue;
    Entry next;
    next.usn = static_cast<uint32_t>(op.usn);
    switch (op.op) {
      case OsOpPayload::Op::kAllocate:
        next.state = BlockState::kProvisional;
        // Allocations are always logged by the allocating node.
        next.tag = static_cast<uint8_t>(logger + 1);
        break;
      case OsOpPayload::Op::kConfirm:
        next.state = BlockState::kAllocated;
        next.tag = 0;
        break;
      case OsOpPayload::Op::kFree:
        next.state = BlockState::kFree;
        next.tag = 0;
        break;
    }
    SMDB_RETURN_IF_ERROR(WriteEntry(performer, op.block, next));
    ++stats_.recovered_redo;
  }
  // next_usn_ must stay ahead of everything replayed.
  for (const auto& [op, logger] : ops) {
    (void)logger;
    next_usn_ = std::max(next_usn_, op.usn + 1);
  }
  // 3. Roll back provisional allocations of crashed nodes (their confirm
  // can never arrive) — and of replayed allocations whose allocator
  // crashed: a provisional block with no surviving owner is reclaimed.
  for (uint32_t block = 0; block < blocks_; ++block) {
    SMDB_ASSIGN_OR_RETURN(Entry e, ReadEntry(performer, block));
    if (e.state != BlockState::kProvisional) continue;
    bool owner_dead = e.tag == 0 ||
                      crashed.contains(static_cast<NodeId>(e.tag - 1)) ||
                      !machine_->NodeAlive(static_cast<NodeId>(e.tag - 1));
    if (!owner_dead) continue;
    Entry next;
    next.state = BlockState::kFree;
    next.usn = static_cast<uint32_t>(next_usn_++);
    SMDB_RETURN_IF_ERROR(WriteEntry(performer, block, next));
    ++stats_.recovered_rollbacks;
  }
  return Status::Ok();
}

Status DiskMap::Verify() const {
  for (uint32_t block = 0; block < blocks_; ++block) {
    uint8_t buf[kEntryBytes];
    SMDB_RETURN_IF_ERROR(
        machine_->SnoopRead(EntryAddr(block), buf, sizeof(buf)));
    Entry e = DecodeEntry(buf);
    if (e.state != BlockState::kFree &&
        e.state != BlockState::kProvisional &&
        e.state != BlockState::kAllocated) {
      return Status::Corruption("invalid block state");
    }
    if (e.state == BlockState::kProvisional) {
      if (e.tag == 0 || !machine_->NodeAlive(static_cast<NodeId>(e.tag - 1))) {
        return Status::Corruption("provisional block with dead owner");
      }
    }
  }
  return Status::Ok();
}

}  // namespace smdb
