#ifndef SMDB_OS_DISK_MAP_H_
#define SMDB_OS_DISK_MAP_H_

#include <optional>
#include <set>
#include <vector>

#include "common/status.h"
#include "common/types.h"
#include "wal/log_manager.h"

namespace smdb {

class Machine;

/// State of one disk block in the map.
enum class BlockState : uint8_t {
  kFree = 0,
  /// Allocated but not yet confirmed: if the allocating node crashes, the
  /// block is reclaimed (the OS analogue of an uncommitted update).
  kProvisional = 1,
  kAllocated = 2,
};

struct DiskMapStats {
  uint64_t allocations = 0;
  uint64_t confirms = 0;
  uint64_t frees = 0;
  uint64_t recovered_redo = 0;
  uint64_t recovered_rollbacks = 0;
};

/// A recoverable shared-memory disk-allocation map — the section 9
/// suggestion that the paper's recovery techniques apply to operating
/// system structures ("maps used to catalog disk usage") so that "the
/// crash of one node does not necessarily affect the integrity of the
/// process management information on other nodes".
///
/// The bitmap lives in shared memory (and therefore migrates between the
/// nodes that allocate from it); every operation is logged to the invoking
/// node's volatile log *inside the line-lock critical section* (Volatile
/// LBM), and each block records an undo tag (the allocating node) while
/// provisional. RecoverAfterCrash applies the paper's recipe:
///   1. re-install lost map lines from the stable snapshot,
///   2. redo surviving/stable logged operations in USN order, and
///   3. roll back provisional allocations tagged with crashed nodes.
///
/// Block entry layout (8 bytes, packed 16 per 128-byte line):
/// state u8 @0, tag u8 @1 (node + 1; 0 = none), pad u16, usn u32 @4.
class DiskMap {
 public:
  /// `blocks` must be a multiple of the entries-per-line count.
  DiskMap(Machine* machine, LogManager* log, uint32_t map_id,
          uint32_t blocks);

  uint32_t map_id() const { return map_id_; }
  uint32_t blocks() const { return blocks_; }

  /// Allocates a free block provisionally for `node`. NotFound if full.
  Result<uint32_t> Allocate(NodeId node);

  /// Confirms a provisional allocation (makes it crash-durable in intent;
  /// the block now survives its allocator's crash).
  Status Confirm(NodeId node, uint32_t block);

  /// Frees an allocated (or provisional) block.
  Status Free(NodeId node, uint32_t block);

  Result<BlockState> StateOf(uint32_t block) const;

  /// Writes the current map contents to the stable snapshot (the map's
  /// disk-resident copy; cheap stand-in for a real bitmap page write).
  Status CheckpointToStable(NodeId node);

  /// Restores integrity after the given nodes crashed (the machine must
  /// already reflect the crashes). Performed by `performer`.
  Status RecoverAfterCrash(NodeId performer,
                           const std::set<NodeId>& crashed);

  /// Consistency check: every block decodes to a valid state and no
  /// provisional block is tagged with a dead node.
  Status Verify() const;

  DiskMapStats& stats() { return stats_; }

 private:
  static constexpr uint32_t kEntryBytes = 8;

  Addr EntryAddr(uint32_t block) const {
    return base_ + static_cast<Addr>(block) * kEntryBytes;
  }
  LineAddr EntryLine(uint32_t block) const;

  struct Entry {
    BlockState state = BlockState::kFree;
    uint8_t tag = 0;  // node + 1 while provisional
    uint32_t usn = 0;
  };
  Result<Entry> ReadEntry(NodeId node, uint32_t block) const;
  Status WriteEntry(NodeId node, uint32_t block, const Entry& e);
  Entry DecodeEntry(const uint8_t* buf) const;

  Status LogOp(NodeId node, uint32_t block, OsOpPayload::Op op,
               uint64_t usn);

  Machine* machine_;
  LogManager* log_;
  uint32_t map_id_;
  uint32_t blocks_;
  Addr base_ = 0;
  uint64_t next_usn_ = 1;
  std::vector<uint8_t> stable_snapshot_;
  DiskMapStats stats_;
};

}  // namespace smdb

#endif  // SMDB_OS_DISK_MAP_H_
