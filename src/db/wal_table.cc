#include "db/wal_table.h"

namespace smdb {

void WalTable::NoteUpdate(PageId page, NodeId node, Lsn lsn) {
  std::lock_guard<std::mutex> lk(mu_);
  auto& row = rows_[page];
  if (row.empty()) row.assign(num_nodes_, kInvalidLsn);
  row[node] = lsn;
}

std::vector<std::pair<NodeId, Lsn>> WalTable::Requirements(
    PageId page) const {
  std::vector<std::pair<NodeId, Lsn>> out;
  std::lock_guard<std::mutex> lk(mu_);
  auto it = rows_.find(page);
  if (it == rows_.end()) return out;
  for (NodeId n = 0; n < num_nodes_; ++n) {
    if (it->second[n] != kInvalidLsn) out.emplace_back(n, it->second[n]);
  }
  return out;
}

void WalTable::ClearPage(PageId page) {
  std::lock_guard<std::mutex> lk(mu_);
  rows_.erase(page);
}

void WalTable::OnNodeCrash(NodeId node) {
  std::lock_guard<std::mutex> lk(mu_);
  for (auto& [page, row] : rows_) {
    (void)page;
    if (!row.empty()) row[node] = kInvalidLsn;
  }
}

}  // namespace smdb
