#ifndef SMDB_DB_BUFFER_MANAGER_H_
#define SMDB_DB_BUFFER_MANAGER_H_

#include <map>
#include <mutex>
#include <optional>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "common/atomic_util.h"

#include "common/status.h"
#include "common/types.h"
#include "db/wal_table.h"
#include "storage/stable_db.h"
#include "wal/log_manager.h"

namespace smdb {

class Machine;

/// Manages database pages resident in shared memory under a
/// **no-force/steal** policy (section 2):
///   * no-force — committing a transaction does not flush its pages; redo
///     may therefore be needed for committed transactions at restart.
///   * steal — a dirty page holding uncommitted updates may be flushed
///     before commit (StealFlush); WAL guarantees the undo information is
///     stable first, so undo may be needed at restart.
///
/// Pages live permanently in shared memory (memory *is* the buffer pool in
/// an SM machine); the stable database on disk is their durable home. The
/// flush path enforces the write-ahead rule with the shared-memory
/// (page, LSN) table of section 6.
class BufferManager {
 public:
  BufferManager(Machine* machine, StableDb* stable_db, LogManager* log,
                WalTable* wal_table);

  /// Creates a page: allocates its shared-memory frame, installs `initial`
  /// and writes it to the stable database. `node` pays the I/O.
  Result<PageId> CreatePage(NodeId node, const std::vector<uint8_t>& initial);

  /// Shared-memory base address of `page`.
  Result<Addr> BaseOf(PageId page) const;

  /// Page whose frame covers `addr`, if any.
  std::optional<PageId> ResolveAddr(Addr addr) const;

  void MarkDirty(PageId page) {
    std::lock_guard<std::mutex> lk(mu_);
    dirty_.insert(page);
  }
  bool IsDirty(PageId page) const {
    std::lock_guard<std::mutex> lk(mu_);
    return dirty_.contains(page);
  }
  std::vector<PageId> DirtyPages() const;

  /// Flushes `page` to the stable database, first forcing every log the WAL
  /// table requires. Used both by checkpoints and by steal flushes.
  Status FlushPage(NodeId node, PageId page);

  /// Flushes every dirty page (checkpoint path).
  Status FlushAllDirty(NodeId node);

  /// Reads the current stable (disk) image of `page`.
  Status ReadStableImage(NodeId node, PageId page, std::vector<uint8_t>* out);

  /// Re-installs the stable image of `page` into memory wholesale (Redo All
  /// and whole-machine restart paths).
  Status ReinstallPage(NodeId node, PageId page);

  /// Re-installs from the stable image only those lines of `page` that were
  /// lost in a crash, preserving surviving lines (Selective Redo path).
  /// Returns the number of lines re-installed.
  Result<int> ReinstallLostLines(NodeId node, PageId page);

  void ForEachPage(
      const std::function<void(PageId, Addr)>& fn) const;

  uint32_t page_size() const { return stable_db_->page_size(); }
  uint64_t steal_flushes() const { return AtomicLoad(steal_flushes_); }
  uint64_t wal_gate_forces() const { return AtomicLoad(wal_gate_forces_); }

 private:
  Machine* machine_;
  StableDb* stable_db_;
  LogManager* log_;
  WalTable* wal_table_;

  /// Guards frames_/by_addr_/dirty_: B-tree splits create pages and
  /// transaction steps mark pages dirty from concurrent execution workers.
  /// Never held across I/O (disk writes, log forces).
  mutable std::mutex mu_;
  std::unordered_map<PageId, Addr> frames_;
  std::map<Addr, PageId> by_addr_;  // frame base -> page, for ResolveAddr
  std::unordered_set<PageId> dirty_;
  uint64_t steal_flushes_ = 0;
  uint64_t wal_gate_forces_ = 0;
};

}  // namespace smdb

#endif  // SMDB_DB_BUFFER_MANAGER_H_
