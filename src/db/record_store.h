#ifndef SMDB_DB_RECORD_STORE_H_
#define SMDB_DB_RECORD_STORE_H_

#include <unordered_set>
#include <vector>

#include "common/status.h"
#include "common/types.h"
#include "db/buffer_manager.h"
#include "db/page_layout.h"

namespace smdb {

class Machine;

/// Fixed-size-record heap storage over shared-memory pages.
///
/// RecordStore provides raw coherent slot access and the addressing the
/// recovery protocols need (slot <-> line resolution, undo-tag scans). It
/// performs no locking and no logging itself: the update *protocol*
/// (record lock, line locks on the Page-LSN line and the record line,
/// in-place write, LBM logging — sections 5.1 and 6) is orchestrated by the
/// transaction layer.
class RecordStore {
 public:
  RecordStore(Machine* machine, BufferManager* buffers, PageLayout layout);

  /// Creates `nrecords` zero-initialised records, allocating pages as
  /// needed, and returns their ids in order.
  Result<std::vector<RecordId>> CreateTable(NodeId node, size_t nrecords);

  const PageLayout& layout() const { return layout_; }

  /// True if `page` belongs to this record store.
  bool OwnsPage(PageId page) const { return pages_.contains(page); }
  const std::vector<PageId>& pages() const { return page_list_; }

  // ----------------------------------------------------------------------
  // Addressing.

  Addr SlotAddr(RecordId rid) const;
  LineAddr SlotLine(RecordId rid) const;
  LineAddr HeaderLine(PageId page) const;

  /// Record ids whose slots live in cache line `line` (empty if the line is
  /// not a data line of one of this store's pages).
  std::vector<RecordId> SlotsInLine(LineAddr line) const;

  // ----------------------------------------------------------------------
  // Coherent access (charged to `node`).

  Result<SlotImage> ReadSlot(NodeId node, RecordId rid) const;
  Status WriteSlot(NodeId node, RecordId rid, const SlotImage& img);

  /// Reads a slot via snooping: no cost, no state change (verification
  /// oracles). Fails with LineLost if the slot's line has no surviving
  /// copy.
  Result<SlotImage> SnoopSlot(RecordId rid) const;

  /// Writes only the undo tag field of a slot (used when commit clears the
  /// tags of the transaction's records).
  Status WriteTag(NodeId node, RecordId rid, uint16_t tag);

  /// Updates the Page-LSN in the page's first cache line.
  Status WritePageLsn(NodeId node, PageId page, uint64_t usn);

  /// Reads a slot from a stable page image previously fetched from disk.
  SlotImage DecodeStableSlot(const std::vector<uint8_t>& page_image,
                             uint16_t slot) const {
    return layout_.DecodeSlot(page_image, slot);
  }

 private:
  Machine* machine_;
  BufferManager* buffers_;
  PageLayout layout_;
  std::unordered_set<PageId> pages_;
  std::vector<PageId> page_list_;
};

}  // namespace smdb

#endif  // SMDB_DB_RECORD_STORE_H_
