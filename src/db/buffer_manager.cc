#include "db/buffer_manager.h"

#include "sim/machine.h"

namespace smdb {

BufferManager::BufferManager(Machine* machine, StableDb* stable_db,
                             LogManager* log, WalTable* wal_table)
    : machine_(machine),
      stable_db_(stable_db),
      log_(log),
      wal_table_(wal_table) {}

Result<PageId> BufferManager::CreatePage(NodeId node,
                                         const std::vector<uint8_t>& initial) {
  if (initial.size() != page_size()) {
    return Status::InvalidArgument("initial image has wrong size");
  }
  PageId page = stable_db_->AllocatePageId();
  Addr base = machine_->AllocShared(page_size());
  machine_->InstallToMemory(base, initial.data(), initial.size());
  SMDB_RETURN_IF_ERROR(stable_db_->WritePage(node, page, initial));
  {
    std::lock_guard<std::mutex> lk(mu_);
    frames_[page] = base;
    by_addr_[base] = page;
  }
  return page;
}

Result<Addr> BufferManager::BaseOf(PageId page) const {
  std::lock_guard<std::mutex> lk(mu_);
  auto it = frames_.find(page);
  if (it == frames_.end()) return Status::NotFound("unknown page");
  return it->second;
}

std::optional<PageId> BufferManager::ResolveAddr(Addr addr) const {
  std::lock_guard<std::mutex> lk(mu_);
  auto it = by_addr_.upper_bound(addr);
  if (it == by_addr_.begin()) return std::nullopt;
  --it;
  if (addr < it->first + page_size()) return it->second;
  return std::nullopt;
}

std::vector<PageId> BufferManager::DirtyPages() const {
  std::lock_guard<std::mutex> lk(mu_);
  return {dirty_.begin(), dirty_.end()};
}

Status BufferManager::FlushPage(NodeId node, PageId page) {
  Addr base;
  {
    std::lock_guard<std::mutex> lk(mu_);
    auto it = frames_.find(page);
    if (it == frames_.end()) return Status::NotFound("unknown page");
    base = it->second;
  }

  // WAL gate (section 6): every node that updated this page must have its
  // log stable through its last update LSN for the page.
  for (const auto& [n, lsn] : wal_table_->Requirements(page)) {
    if (!log_->IsStable(n, lsn)) {
      if (!machine_->NodeAlive(n)) {
        // The updates covered by the missing log records died with the
        // node; flushing would persist unrecoverable uncommitted state.
        return Status::NodeFailed("WAL gate: updater crashed with tail");
      }
      SMDB_RETURN_IF_ERROR(log_->Force(node, n));
      AtomicInc(wal_gate_forces_);
    }
  }

  std::vector<uint8_t> image(page_size());
  SMDB_RETURN_IF_ERROR(machine_->SnoopRead(base, image.data(), image.size()));
  SMDB_RETURN_IF_ERROR(stable_db_->WritePage(node, page, image));
  {
    std::lock_guard<std::mutex> lk(mu_);
    if (dirty_.erase(page) > 0) AtomicInc(steal_flushes_);
  }
  wal_table_->ClearPage(page);
  return Status::Ok();
}

Status BufferManager::FlushAllDirty(NodeId node) {
  for (PageId page : DirtyPages()) {
    SMDB_RETURN_IF_ERROR(FlushPage(node, page));
  }
  return Status::Ok();
}

Status BufferManager::ReadStableImage(NodeId node, PageId page,
                                      std::vector<uint8_t>* out) {
  return stable_db_->ReadPage(node, page, out);
}

Status BufferManager::ReinstallPage(NodeId node, PageId page) {
  Addr base;
  {
    std::lock_guard<std::mutex> lk(mu_);
    auto it = frames_.find(page);
    if (it == frames_.end()) return Status::NotFound("unknown page");
    base = it->second;
  }
  std::vector<uint8_t> image;
  SMDB_RETURN_IF_ERROR(stable_db_->ReadPage(node, page, &image));
  machine_->InstallToMemory(base, image.data(), image.size());
  return Status::Ok();
}

Result<int> BufferManager::ReinstallLostLines(NodeId node, PageId page) {
  Addr base;
  {
    std::lock_guard<std::mutex> lk(mu_);
    auto it = frames_.find(page);
    if (it == frames_.end()) return Status::NotFound("unknown page");
    base = it->second;
  }
  uint32_t line_size = machine_->line_size();
  uint32_t lines = page_size() / line_size;

  // First check whether any line is lost, to avoid a disk read otherwise.
  bool any_lost = false;
  for (uint32_t i = 0; i < lines && !any_lost; ++i) {
    any_lost = machine_->IsLineLost(machine_->LineOf(base) + i);
  }
  if (!any_lost) return 0;

  std::vector<uint8_t> image;
  SMDB_RETURN_IF_ERROR(stable_db_->ReadPage(node, page, &image));
  int installed = 0;
  for (uint32_t i = 0; i < lines; ++i) {
    LineAddr line = machine_->LineOf(base) + i;
    if (!machine_->IsLineLost(line)) continue;
    machine_->InstallToMemory(base + static_cast<Addr>(i) * line_size,
                              image.data() + i * line_size, line_size);
    ++installed;
  }
  return installed;
}

void BufferManager::ForEachPage(
    const std::function<void(PageId, Addr)>& fn) const {
  for (const auto& [page, base] : frames_) fn(page, base);
}

}  // namespace smdb
