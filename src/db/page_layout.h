#ifndef SMDB_DB_PAGE_LAYOUT_H_
#define SMDB_DB_PAGE_LAYOUT_H_

#include <cstdint>
#include <vector>

#include "common/types.h"

namespace smdb {

/// Undo-tag value meaning "not active" (section 4.1.2: "once the data is no
/// longer active, the node ID is assigned a null value"). An active record
/// updated by a transaction on node n carries tag n + 1.
inline constexpr uint16_t kTagNone = 0;

constexpr uint16_t TagForNode(NodeId node) {
  return static_cast<uint16_t>(node + 1);
}
constexpr NodeId NodeOfTag(uint16_t tag) {
  return static_cast<NodeId>(tag - 1);
}

/// Decoded image of one record slot.
struct SlotImage {
  /// USN of the update that produced this version (0 = initial).
  uint64_t usn = 0;
  /// Undo tag: kTagNone, or TagForNode(n) while an active transaction on
  /// node n has updated the record. Stored *in the same cache line* as the
  /// record, per the paper's Tagging Rule.
  uint16_t tag = kTagNone;
  std::vector<uint8_t> data;
};

/// Fixed-size-record slotted page layout.
///
/// Line 0 is the page header (the Page-LSN lives in the first cache line,
/// matching the convention in section 6). Record slots are packed into the
/// remaining lines and never span a line boundary. Packing multiple records
/// per cache line is the default — it is precisely the space-efficient
/// choice that creates the paper's recovery hazards.
///
/// Header layout (byte offsets): magic u32 @0, page_id u32 @4,
/// page_lsn u64 @8, nslots u16 @16, record_data_size u16 @18.
///
/// Slot layout: usn u64 @0, tag u16 @8, data @10.
class PageLayout {
 public:
  static constexpr uint32_t kMagic = 0x534D4442;  // "SMDB"
  static constexpr uint32_t kSlotHeaderBytes = 10;
  static constexpr uint32_t kPageLsnOffset = 8;

  PageLayout(uint32_t page_size, uint32_t line_size,
             uint16_t record_data_size);

  uint32_t page_size() const { return page_size_; }
  uint32_t line_size() const { return line_size_; }
  uint16_t record_data_size() const { return record_data_size_; }
  uint32_t slot_bytes() const { return kSlotHeaderBytes + record_data_size_; }
  uint16_t slots_per_line() const { return slots_per_line_; }
  uint16_t slots_per_page() const { return slots_per_page_; }
  uint32_t lines_per_page() const { return page_size_ / line_size_; }

  /// Byte offset of slot `slot` within its page.
  uint32_t SlotOffset(uint16_t slot) const;

  /// Index of the line (within the page) that contains `slot`.
  uint32_t LineIndexOfSlot(uint16_t slot) const {
    return 1 + slot / slots_per_line_;
  }

  /// Slot indices contained in page line `line_index` (0 = header line,
  /// which holds none).
  std::vector<uint16_t> SlotsInLineIndex(uint32_t line_index) const;

  /// Builds a freshly formatted page image (all slots zeroed, tag none).
  std::vector<uint8_t> FormatPage(PageId page) const;

  /// Decodes slot `slot` from a full page image.
  SlotImage DecodeSlot(const std::vector<uint8_t>& page_image,
                       uint16_t slot) const;

  /// Encodes `img` into `buf` (which must hold slot_bytes()).
  void EncodeSlot(const SlotImage& img, uint8_t* buf) const;

  /// Decodes a slot from a raw slot-sized buffer.
  SlotImage DecodeSlotBuf(const uint8_t* buf) const;

  /// Reads the Page-LSN from a page image.
  static uint64_t PageLsnOf(const std::vector<uint8_t>& page_image);

 private:
  uint32_t page_size_;
  uint32_t line_size_;
  uint16_t record_data_size_;
  uint16_t slots_per_line_;
  uint16_t slots_per_page_;
};

}  // namespace smdb

#endif  // SMDB_DB_PAGE_LAYOUT_H_
