#include "db/record_store.h"

#include <cassert>

#include "sim/machine.h"

namespace smdb {

RecordStore::RecordStore(Machine* machine, BufferManager* buffers,
                         PageLayout layout)
    : machine_(machine), buffers_(buffers), layout_(layout) {}

Result<std::vector<RecordId>> RecordStore::CreateTable(NodeId node,
                                                       size_t nrecords) {
  std::vector<RecordId> rids;
  rids.reserve(nrecords);
  size_t remaining = nrecords;
  while (remaining > 0) {
    // Format a fresh page; CreatePage assigns the id, so format with a
    // placeholder and patch after allocation (the id in the header is
    // diagnostic only).
    std::vector<uint8_t> image = layout_.FormatPage(0);
    SMDB_ASSIGN_OR_RETURN(PageId page, buffers_->CreatePage(node, image));
    pages_.insert(page);
    page_list_.push_back(page);
    uint16_t in_page = static_cast<uint16_t>(
        std::min<size_t>(remaining, layout_.slots_per_page()));
    for (uint16_t s = 0; s < in_page; ++s) {
      rids.push_back(RecordId{page, s});
    }
    remaining -= in_page;
  }
  return rids;
}

Addr RecordStore::SlotAddr(RecordId rid) const {
  auto base = buffers_->BaseOf(rid.page);
  assert(base.ok());
  return *base + layout_.SlotOffset(rid.slot);
}

LineAddr RecordStore::SlotLine(RecordId rid) const {
  return machine_->LineOf(SlotAddr(rid));
}

LineAddr RecordStore::HeaderLine(PageId page) const {
  auto base = buffers_->BaseOf(page);
  assert(base.ok());
  return machine_->LineOf(*base);
}

std::vector<RecordId> RecordStore::SlotsInLine(LineAddr line) const {
  std::vector<RecordId> out;
  Addr addr = machine_->AddrOfLine(line);
  auto page = buffers_->ResolveAddr(addr);
  if (!page.has_value() || !OwnsPage(*page)) return out;
  auto base = buffers_->BaseOf(*page);
  assert(base.ok());
  uint32_t line_index =
      static_cast<uint32_t>((addr - *base) / layout_.line_size());
  for (uint16_t slot : layout_.SlotsInLineIndex(line_index)) {
    out.push_back(RecordId{*page, slot});
  }
  return out;
}

Result<SlotImage> RecordStore::ReadSlot(NodeId node, RecordId rid) const {
  std::vector<uint8_t> buf(layout_.slot_bytes());
  SMDB_RETURN_IF_ERROR(
      machine_->Read(node, SlotAddr(rid), buf.data(), buf.size()));
  return layout_.DecodeSlotBuf(buf.data());
}

Result<SlotImage> RecordStore::SnoopSlot(RecordId rid) const {
  std::vector<uint8_t> buf(layout_.slot_bytes());
  SMDB_RETURN_IF_ERROR(
      machine_->SnoopRead(SlotAddr(rid), buf.data(), buf.size()));
  return layout_.DecodeSlotBuf(buf.data());
}

Status RecordStore::WriteSlot(NodeId node, RecordId rid,
                              const SlotImage& img) {
  std::vector<uint8_t> buf(layout_.slot_bytes());
  layout_.EncodeSlot(img, buf.data());
  return machine_->Write(node, SlotAddr(rid), buf.data(), buf.size());
}

Status RecordStore::WriteTag(NodeId node, RecordId rid, uint16_t tag) {
  // Tag field sits at offset 8 within the slot.
  return machine_->Write(node, SlotAddr(rid) + 8, &tag, sizeof(tag));
}

Status RecordStore::WritePageLsn(NodeId node, PageId page, uint64_t usn) {
  auto base = buffers_->BaseOf(page);
  if (!base.ok()) return base.status();
  return machine_->Write(node, *base + PageLayout::kPageLsnOffset, &usn,
                         sizeof(usn));
}

}  // namespace smdb
