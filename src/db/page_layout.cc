#include "db/page_layout.h"

#include <cassert>
#include <cstring>

namespace smdb {

PageLayout::PageLayout(uint32_t page_size, uint32_t line_size,
                       uint16_t record_data_size)
    : page_size_(page_size),
      line_size_(line_size),
      record_data_size_(record_data_size) {
  assert(page_size_ % line_size_ == 0);
  assert(slot_bytes() <= line_size_);
  slots_per_line_ = static_cast<uint16_t>(line_size_ / slot_bytes());
  slots_per_page_ =
      static_cast<uint16_t>((lines_per_page() - 1) * slots_per_line_);
}

uint32_t PageLayout::SlotOffset(uint16_t slot) const {
  assert(slot < slots_per_page_);
  uint32_t line = LineIndexOfSlot(slot);
  uint32_t within = slot % slots_per_line_;
  return line * line_size_ + within * slot_bytes();
}

std::vector<uint16_t> PageLayout::SlotsInLineIndex(uint32_t line_index) const {
  std::vector<uint16_t> out;
  if (line_index == 0 || line_index >= lines_per_page()) return out;
  uint16_t first = static_cast<uint16_t>((line_index - 1) * slots_per_line_);
  for (uint16_t i = 0; i < slots_per_line_ && first + i < slots_per_page_;
       ++i) {
    out.push_back(static_cast<uint16_t>(first + i));
  }
  return out;
}

std::vector<uint8_t> PageLayout::FormatPage(PageId page) const {
  std::vector<uint8_t> img(page_size_, 0);
  uint32_t magic = kMagic;
  std::memcpy(img.data(), &magic, 4);
  std::memcpy(img.data() + 4, &page, 4);
  uint64_t page_lsn = 0;
  std::memcpy(img.data() + kPageLsnOffset, &page_lsn, 8);
  uint16_t nslots = slots_per_page_;
  std::memcpy(img.data() + 16, &nslots, 2);
  uint16_t rds = record_data_size_;
  std::memcpy(img.data() + 18, &rds, 2);
  return img;
}

SlotImage PageLayout::DecodeSlot(const std::vector<uint8_t>& page_image,
                                 uint16_t slot) const {
  assert(page_image.size() == page_size_);
  return DecodeSlotBuf(page_image.data() + SlotOffset(slot));
}

void PageLayout::EncodeSlot(const SlotImage& img, uint8_t* buf) const {
  assert(img.data.size() == record_data_size_);
  std::memcpy(buf, &img.usn, 8);
  std::memcpy(buf + 8, &img.tag, 2);
  std::memcpy(buf + 10, img.data.data(), record_data_size_);
}

SlotImage PageLayout::DecodeSlotBuf(const uint8_t* buf) const {
  SlotImage img;
  std::memcpy(&img.usn, buf, 8);
  std::memcpy(&img.tag, buf + 8, 2);
  img.data.assign(buf + 10, buf + 10 + record_data_size_);
  return img;
}

uint64_t PageLayout::PageLsnOf(const std::vector<uint8_t>& page_image) {
  uint64_t v = 0;
  std::memcpy(&v, page_image.data() + kPageLsnOffset, 8);
  return v;
}

}  // namespace smdb
