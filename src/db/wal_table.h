#ifndef SMDB_DB_WAL_TABLE_H_
#define SMDB_DB_WAL_TABLE_H_

#include <mutex>
#include <unordered_map>
#include <utility>
#include <vector>

#include "common/types.h"

namespace smdb {

/// The shared-memory (page, LSN) table of section 6, used to enforce WAL
/// under the Volatile LBM policy: "Each updating node remembers an LSN equal
/// to its last update to page p. Page p can be written to the StableDB only
/// after all nodes which have updated p have forced their logs up to this
/// LSN."
///
/// Each node writes only its own column, so the table itself poses no
/// recovery problem: a crashed node's column is simply reinitialised
/// (OnNodeCrash) — its relevant log records were either forced (and the gate
/// satisfied) or lost with the updates they covered.
class WalTable {
 public:
  explicit WalTable(uint16_t num_nodes) : num_nodes_(num_nodes) {}

  /// Records that `node` updated `page` with a log record at `lsn`.
  void NoteUpdate(PageId page, NodeId node, Lsn lsn);

  /// (node, lsn) pairs that must be stable before `page` may be flushed.
  std::vector<std::pair<NodeId, Lsn>> Requirements(PageId page) const;

  /// Clears all requirements for `page` (after a successful flush).
  void ClearPage(PageId page);

  /// Reinitialises `node`'s column after its crash.
  void OnNodeCrash(NodeId node);

 private:
  uint16_t num_nodes_;
  /// Guards rows_: concurrent transaction steps note updates to distinct
  /// pages (and may race on the map structure even when the pages differ).
  mutable std::mutex mu_;
  std::unordered_map<PageId, std::vector<Lsn>> rows_;
};

}  // namespace smdb

#endif  // SMDB_DB_WAL_TABLE_H_
