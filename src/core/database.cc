#include "core/database.h"

#include "core/on_demand.h"
#include "core/recovery_manager.h"
#include "db/page_layout.h"
#include "wal/checkpoint.h"

namespace smdb {

Database::Database(DatabaseConfig config) : config_(config) {
  tracer_ = std::make_unique<TraceRecorder>(config_.machine.num_nodes,
                                            config_.trace.capacity_per_node);
  tracer_->set_enabled(config_.trace.enabled);
  observatory_ =
      std::make_unique<Observatory>(config_.machine.num_nodes, config_.obs);
  profiler_ = std::make_unique<Profiler>(config_.profiler);
  machine_ = std::make_unique<Machine>(config_.machine);
  machine_->set_tracer(tracer_.get());
  machine_->set_observatory(observatory_.get());
  machine_->set_profiler(profiler_.get());
  db_disk_ = std::make_unique<Disk>(machine_.get(), config_.page_size);
  stable_db_ = std::make_unique<StableDb>(db_disk_.get());
  stable_log_ = std::make_unique<StableLogStore>(config_.machine.num_nodes);
  log_ = std::make_unique<LogManager>(machine_.get(), stable_log_.get());
  log_->set_tracer(tracer_.get());
  log_->set_profiler(profiler_.get());
  if (config_.recovery.group_commit) {
    group_commit_ = std::make_unique<GroupCommitPipeline>(
        machine_.get(), log_.get(), config_.recovery.group_commit_window_ns,
        config_.recovery.group_commit_max_batch);
    group_commit_->set_tracer(tracer_.get());
    group_commit_->set_observatory(observatory_.get());
  }
  wal_table_ = std::make_unique<WalTable>(config_.machine.num_nodes);
  buffers_ = std::make_unique<BufferManager>(machine_.get(), stable_db_.get(),
                                             log_.get(), wal_table_.get());
  records_ = std::make_unique<RecordStore>(
      machine_.get(), buffers_.get(),
      PageLayout(config_.page_size, config_.machine.line_size,
                 config_.record_data_size));
  // Read-lock logging is a per-protocol choice (Table 1 row 2).
  LockTableConfig lt = config_.lock_table;
  lt.log_lock_ops = config_.recovery.log_lock_ops;
  locks_ = std::make_unique<LockTable>(machine_.get(), log_.get(), lt);
  locks_->set_tracer(tracer_.get());
  locks_->set_observatory(observatory_.get());
  locks_->set_profiler(profiler_.get());
  lbm_ = LbmPolicy::Create(config_.recovery.lbm, machine_.get(), log_.get(),
                           group_commit_.get());
  if (config_.recovery.restart == RestartKind::kAbortDependents) {
    deps_ = std::make_unique<DependencyTracker>(machine_.get());
  }
  index_ = std::make_unique<BTree>(
      machine_.get(), buffers_.get(), log_.get(), wal_table_.get(), &usn_,
      lbm_.get(), /*tree_id=*/1, config_.recovery.early_commit_structural);
  // Under RebootAll the restart discards every volatile page and reloads
  // stable images; with the early-commit ablation a split would otherwise
  // exist only in memory and the reloaded tree comes back torn. Reboot
  // semantics require a self-consistent stable DB, so splits flush their
  // pages instead of logging.
  index_->set_force_structural_pages(
      !config_.recovery.early_commit_structural &&
      config_.recovery.restart == RestartKind::kRebootAll);
  txn_ = std::make_unique<TxnManager>(
      machine_.get(), log_.get(), locks_.get(), records_.get(), index_.get(),
      wal_table_.get(), buffers_.get(), lbm_.get(), &usn_, deps_.get(),
      config_.recovery);
  txn_->SetGroupCommit(group_commit_.get());
  txn_->set_tracer(tracer_.get());
  txn_->set_observatory(observatory_.get());
  txn_->set_profiler(profiler_.get());
  recovery_ = std::make_unique<RecoveryManager>(this);
  if (config_.recovery.on_demand) {
    on_demand_ = std::make_unique<OnDemandRecovery>(this);
    // First-touch hooks: every transactional access to an object discharges
    // that object's pending recovery obligations first. No-ops outside the
    // Recovering window.
    txn_->SetRecoveryTouch(
        [this](NodeId node, RecordId rid) {
          return on_demand_->TouchRecord(node, rid);
        },
        [this](NodeId node, uint32_t tree_id, uint64_t key) {
          return on_demand_->TouchKey(node, tree_id, key);
        });
  }

  // A node crash destroys the node's volatile log tail and resets its
  // column of the WAL (page, LSN) table.
  machine_->AddCrashHook([this](const CrashEvent& ev) {
    log_->OnNodeCrash(ev.node);
    if (group_commit_ != nullptr) group_commit_->OnNodeCrash(ev.node);
    wal_table_->OnNodeCrash(ev.node);
  });

  Status s = index_->Init(/*node=*/0);
  (void)s;  // only fails on misconfiguration; surfaced by first use
}

Database::~Database() = default;

Result<std::vector<RecordId>> Database::CreateTable(size_t nrecords,
                                                    NodeId node) {
  return records_->CreateTable(node, nrecords);
}

Status Database::Checkpoint(NodeId coordinator) {
  // A checkpoint flushes dirty pages and truncates stable logs — both
  // unsound while lazy obligations still reference those logs and pages.
  // Finish the recovery first.
  SMDB_RETURN_IF_ERROR(DrainRecovery());
  std::vector<std::vector<TxnId>> active(config_.machine.num_nodes);
  for (Transaction* t : txn_->ActiveAll()) {
    active[t->node()].push_back(t->id);
  }
  SMDB_RETURN_IF_ERROR(TakeCheckpoint(machine_.get(), log_.get(),
                                      buffers_.get(), active, coordinator));
  // Reclaim stable log space: everything before both the checkpoint and
  // the oldest active transaction's first record is no longer needed (the
  // flushed stable database covers older history, including what the
  // committed-value reconstructor might ask for).
  for (NodeId n = 0; n < config_.machine.num_nodes; ++n) {
    if (!machine_->NodeAlive(n)) continue;
    Lsn safe = log_->checkpoint_lsn(n);
    if (safe == kInvalidLsn) continue;
    --safe;  // keep the checkpoint record itself
    for (Transaction* t : txn_->ActiveOn(n)) {
      if (t->first_lsn != kInvalidLsn && t->first_lsn <= safe) {
        safe = t->first_lsn - 1;
      }
    }
    log_->TruncateThrough(n, safe);
  }
  return Status::Ok();
}

Result<RecoveryOutcome> Database::Crash(const std::vector<NodeId>& crashed) {
  for (NodeId n : crashed) machine_->CrashNode(n);
  // The availability clock for this crash starts before pending-commit
  // resolution: commits resolved at crash time are acknowledgements during
  // the outage window.
  SMDB_OBS(observatory_.get(),
           OnRecoveryStart(crashed, machine_->GlobalTime()));
  // Pending group commits whose records turn out durable are committed —
  // resolve them before recovery classifies transactions, so restart never
  // undoes a durably-committed transaction nor acknowledges an annulled one.
  SMDB_RETURN_IF_ERROR(txn_->ResolvePendingCommits());
  Result<RecoveryOutcome> out = [&] {
    // Attribute the eager crash-time recovery prefix (and everything it
    // nests: WAL reads, coherence traffic, index repair) to the recovery
    // phase tree.
    ProfRoot root(profiler_.get(), ProfPhase::kRecovery);
    return recovery_->Run(crashed);
  }();
  if (out.ok()) {
    SMDB_OBS(observatory_.get(), OnRecoveryEnd(machine_->GlobalTime()));
  }
  return out;
}

void Database::RestartNodes(const std::vector<NodeId>& nodes) {
  for (NodeId n : nodes) machine_->RestartNode(n);
}

bool Database::RecoveringActive() const {
  return on_demand_ != nullptr && on_demand_->active();
}

Result<int> Database::PumpRecovery(int max_objects) {
  if (on_demand_ == nullptr) return 0;
  return on_demand_->SweepStep(max_objects);
}

Status Database::DrainRecovery() {
  if (on_demand_ == nullptr) return Status::Ok();
  return on_demand_->DrainAll();
}

}  // namespace smdb
