#include "core/database.h"
#include "core/recovery_manager.h"

namespace smdb {

// RebootAll: what happens to an SM database *without* independent node
// failures (sections 1, 3.3, 9): a single node crash takes the whole
// machine down. Every volatile byte is lost, every active transaction —
// crashed node or not — aborts, and the system restarts from stable
// storage (repeating history, then undo).
Status RecoveryManager::RunRebootAll(Ctx& ctx) {
  Machine& m = db_->machine();
  ctx.out.whole_machine_restart = true;

  // Every surviving-node active transaction is an unnecessary abort. Their
  // volatile logs die in the reboot, so the undo pass must treat their
  // stolen updates like any other dead uncommitted work: nothing stays
  // preserved.
  for (Transaction* t : ctx.surviving_active) {
    ctx.out.forced_aborts.push_back(t->id);
    ctx.uncommitted_ids.insert(t->id);
  }
  ctx.out.preserved.clear();
  ctx.preserved_ids.clear();

  // Transactions whose abort record exists only in a (formerly) live node's
  // volatile tail lose that tail — and the CLRs before it — in the reboot.
  // Repeating history will replay their stable-logged updates, so they must
  // rejoin the undo set.
  ctx.uncommitted_ids.insert(ctx.volatile_finished.begin(),
                             ctx.volatile_finished.end());

  // BuildContext already ran the "begun in a stable log but neither
  // committed nor aborted there" analysis over every node, which is exactly
  // the coverage a whole-machine restart needs (every volatile log dies in
  // the reboot).

  // The machine goes down and comes back: all caches, memories and
  // volatile log tails are gone; every node pays the reboot penalty.
  SMDB_RETURN_IF_ERROR(TimedPhase(ctx, RecoveryPhase::kReboot, [&] {
    m.RebootAll();
    for (NodeId n = 0; n < m.num_nodes(); ++n) {
      db_->log().OnNodeCrash(n);
      if (db_->group_commit() != nullptr) db_->group_commit()->OnNodeCrash(n);
      db_->wal_table().OnNodeCrash(n);
      m.Tick(n, m.config().timing.reboot_ns);
    }
    return Status::Ok();
  }));

  // Classic restart from stable storage: reload pages, repeat history from
  // the stable logs, undo every uncommitted transaction.
  SMDB_RETURN_IF_ERROR(TimedPhase(ctx, RecoveryPhase::kReload, [&] {
    auto reload = [&](const std::vector<PageId>& pages) -> Status {
      for (PageId p : pages) {
        SMDB_RETURN_IF_ERROR(
            db_->buffers().ReinstallPage(ctx.NextSurvivor(), p));
        ++ctx.out.pages_reloaded;
      }
      return Status::Ok();
    };
    SMDB_RETURN_IF_ERROR(reload(db_->records().pages()));
    return reload(db_->index().pages());
  }));

  SMDB_RETURN_IF_ERROR(TimedPhase(ctx, RecoveryPhase::kRedo,
                                  [&] { return ReplayLogsWithGuard(ctx); }));

  // Undo uncommitted work from the stable logs (the pass scans every
  // node's stable log, and nothing is preserved here).
  SMDB_RETURN_IF_ERROR(TimedPhase(
      ctx, RecoveryPhase::kUndo, [&] { return UndoCrashedFromStableLogs(ctx); }));

  // The lock space is volatile: it was destroyed wholesale. Clear the lost
  // lines; there are no surviving transactions whose locks need rebuilding.
  ctx.out.lcb_lines_cleared = db_->locks().ClearLostLines();

  // Abort all previously-active transactions.
  for (Transaction* t : ctx.surviving_active) {
    db_->txn().MarkCrashAnnulled(t);
  }
  return Status::Ok();
}

// AbortDependents: the "overkill" alternative of section 3.3 — ensure
// failure atomicity by aborting every transaction that is dependent on the
// memory of a remote node, instead of recovering precisely. Crashed
// transactions are handled with the Selective Redo machinery; the
// difference is the forced aborts of surviving dependents.
Status RecoveryManager::RunAbortDependents(Ctx& ctx) {
  DependencyTracker* deps = db_->deps();
  if (deps == nullptr) {
    return Status::InvalidArgument(
        "AbortDependents requires the dependency tracker");
  }
  // Snapshot the dependents before recovery mutates tracker state.
  std::set<TxnId> dependents = deps->Dependent();

  SMDB_RETURN_IF_ERROR(RunSelectiveRedo(ctx));

  for (Transaction* t : ctx.surviving_active) {
    if (!dependents.contains(t->id)) continue;
    // A dependent whose pending group commit became durable mid-recovery
    // (a recovery-pass force covered it) is committed — its log decides —
    // and cannot be aborted anymore.
    if (db_->txn().TryFinishDurablePendingCommit(t)) continue;
    // A normal abort: the transaction's node is alive and its volatile log
    // intact — but the abort is unnecessary, which is the point.
    SMDB_RETURN_IF_ERROR(db_->txn().Abort(t));
    ctx.out.forced_aborts.push_back(t->id);
  }
  // Forced aborts are no longer "preserved".
  std::vector<TxnId> kept;
  for (TxnId t : ctx.out.preserved) {
    if (!dependents.contains(t)) kept.push_back(t);
  }
  ctx.out.preserved = std::move(kept);
  return Status::Ok();
}

}  // namespace smdb
