#include "core/ifa_checker.h"

#include <sstream>

#include "core/database.h"

namespace smdb {
namespace {

std::string Hex(const std::vector<uint8_t>& v, size_t max = 8) {
  static const char* kDigits = "0123456789abcdef";
  std::string out;
  for (size_t i = 0; i < v.size() && i < max; ++i) {
    out.push_back(kDigits[v[i] >> 4]);
    out.push_back(kDigits[v[i] & 0xF]);
  }
  if (v.size() > max) out += "..";
  return out;
}

}  // namespace

void IfaChecker::RegisterTable(const std::vector<RecordId>& rids) {
  size_t sz = db_->config().record_data_size;
  for (RecordId rid : rids) {
    committed_[rid] = std::vector<uint8_t>(sz, 0);
  }
}

void IfaChecker::OnUpdate(TxnId txn, RecordId rid,
                          const std::vector<uint8_t>& value) {
  std::lock_guard<std::mutex> lk(mu_);
  pending_[txn].records[rid] = value;
}

void IfaChecker::OnIndexInsert(TxnId txn, uint32_t /*tree*/, uint64_t key,
                               RecordId rid) {
  std::lock_guard<std::mutex> lk(mu_);
  pending_[txn].index_ops.push_back(IdxOp{true, key, rid});
}

void IfaChecker::OnIndexDelete(TxnId txn, uint32_t /*tree*/, uint64_t key) {
  std::lock_guard<std::mutex> lk(mu_);
  pending_[txn].index_ops.push_back(IdxOp{false, key, {}});
}

void IfaChecker::OnCommit(TxnId txn) {
  std::lock_guard<std::mutex> lk(mu_);
  auto it = pending_.find(txn);
  if (it == pending_.end()) return;
  for (auto& [rid, value] : it->second.records) {
    committed_[rid] = value;
  }
  for (const IdxOp& op : it->second.index_ops) {
    if (op.insert) {
      committed_index_[op.key] = op.rid;
    } else {
      committed_index_.erase(op.key);
    }
  }
  pending_.erase(it);
}

void IfaChecker::OnAbort(TxnId txn) {
  std::lock_guard<std::mutex> lk(mu_);
  pending_.erase(txn);
}

Status IfaChecker::Fail(Violation v) {
  Status s = Status::Corruption(v.detail);
  last_violation_ = std::move(v);
  return s;
}

Status IfaChecker::VerifyRecords() {
  last_violation_.reset();
  // Expected = committed overlaid with surviving active transactions'
  // pending updates (strict 2PL: at most one active writer per record).
  std::map<RecordId, std::pair<TxnId, const std::vector<uint8_t>*>> overlay;
  for (Transaction* t : db_->txn().ActiveAll()) {
    auto it = pending_.find(t->id);
    if (it == pending_.end()) continue;
    for (const auto& [rid, value] : it->second.records) {
      overlay[rid] = {t->id, &value};
    }
  }
  for (const auto& [rid, committed_value] : committed_) {
    const std::vector<uint8_t>* expected = &committed_value;
    auto ov = overlay.find(rid);
    if (ov != overlay.end()) expected = ov->second.second;
    auto actual = db_->records().SnoopSlot(rid);
    if (!actual.ok()) {
      return Fail({Violation::Kind::kRecord, rid, 0,
                   "record " + ToString(rid) +
                       " unreadable: " + actual.status().ToString()});
    }
    if (actual->data != *expected) {
      std::ostringstream os;
      os << "IFA violation at " << ToString(rid) << ": expected "
         << Hex(*expected) << " got " << Hex(actual->data)
         << (ov != overlay.end() ? " (pending txn value)" : " (committed)");
      return Fail({Violation::Kind::kRecord, rid, 0, os.str()});
    }
  }
  return Status::Ok();
}

Status IfaChecker::VerifyIndex() {
  last_violation_.reset();
  // Expected visible state: committed entries adjusted by surviving active
  // transactions' pending operations (in op order).
  std::map<uint64_t, RecordId> expect_live = committed_index_;
  std::map<uint64_t, bool> pending_tombstone;  // key -> must appear deleted
  for (Transaction* t : db_->txn().ActiveAll()) {
    auto it = pending_.find(t->id);
    if (it == pending_.end()) continue;
    std::set<uint64_t> own_inserts;  // uncommitted inserts by this txn
    for (const IdxOp& op : it->second.index_ops) {
      if (op.insert) {
        expect_live[op.key] = op.rid;
        pending_tombstone.erase(op.key);
        own_inserts.insert(op.key);
      } else if (own_inserts.erase(op.key) > 0) {
        // Delete of the transaction's own uncommitted insert: the entry is
        // removed physically — no tombstone expected.
        expect_live.erase(op.key);
      } else {
        expect_live.erase(op.key);
        pending_tombstone[op.key] = true;
      }
    }
  }

  auto entries_or = db_->index().CollectEntries(/*include_tombstones=*/true);
  if (!entries_or.ok()) {
    return Fail({Violation::Kind::kIndex, {}, 0,
                 "index unreadable: " + entries_or.status().ToString()});
  }
  // A key may legitimately have a live entry plus a (residual, committed
  // or pending) tombstone; only duplicate *live* entries are corruption.
  std::map<uint64_t, std::pair<bool, RecordId>> actual;  // key -> (live, rid)
  for (const auto& ref : *entries_or) {
    bool live = ref.entry.state == LeafEntryState::kLive;
    auto [it, inserted] = actual.emplace(ref.entry.key,
                                         std::make_pair(live, ref.entry.rid));
    if (!inserted) {
      if (live && it->second.first) {
        return Fail({Violation::Kind::kIndex, {}, ref.entry.key,
                     "duplicate live index entry for key " +
                         std::to_string(ref.entry.key)});
      }
      if (live) it->second = {true, ref.entry.rid};
    }
  }

  for (const auto& [key, rid] : expect_live) {
    auto it = actual.find(key);
    if (it == actual.end() || !it->second.first) {
      return Fail({Violation::Kind::kIndex, {}, key,
                   "index missing live key " + std::to_string(key)});
    }
    if (!(it->second.second == rid)) {
      return Fail({Violation::Kind::kIndex, {}, key,
                   "index key " + std::to_string(key) +
                       " maps to wrong record"});
    }
  }
  for (const auto& [key, _] : pending_tombstone) {
    auto it = actual.find(key);
    if (it == actual.end() || it->second.first) {
      return Fail({Violation::Kind::kIndex, {}, key,
                   "pending delete of key " + std::to_string(key) +
                       " not visible as tombstone"});
    }
  }
  for (const auto& [key, state] : actual) {
    if (state.first && !expect_live.contains(key)) {
      return Fail({Violation::Kind::kIndex, {}, key,
                   "index has unexpected live key " + std::to_string(key)});
    }
  }
  return Status::Ok();
}

Status IfaChecker::VerifyLocks() {
  last_violation_.reset();
  // No lock may be held or awaited by a finished or crash-annulled
  // transaction.
  int lost = 0;
  for (const Lcb& lcb : db_->locks().SnapshotAll(&lost)) {
    auto check = [&](const std::vector<LockEntry>& list,
                     const char* what) -> Status {
      for (const auto& e : list) {
        Transaction* t = db_->txn().Find(e.txn);
        if (t == nullptr || t->state != TxnState::kActive) {
          return Fail({Violation::Kind::kLock, {}, lcb.name,
                       std::string("lock table has a ") + what +
                           " entry for a non-active transaction"});
        }
      }
      return Status::Ok();
    };
    SMDB_RETURN_IF_ERROR(check(lcb.holders, "holder"));
    SMDB_RETURN_IF_ERROR(check(lcb.waiters, "waiter"));
  }
  if (lost > 0) {
    return Fail({Violation::Kind::kLock, {}, 0,
                 "lock table still has lost LCB lines"});
  }
  // Every surviving active transaction still holds its granted locks.
  auto survivors = db_->machine().AliveNodes();
  if (survivors.empty()) return Status::Ok();
  NodeId probe = survivors[0];
  for (Transaction* t : db_->txn().ActiveAll()) {
    for (uint64_t name : t->granted_locks) {
      auto mode = db_->locks().HeldMode(probe, t->id, name);
      if (!mode.ok()) return mode.status();
      if (*mode == LockMode::kNone) {
        return Fail({Violation::Kind::kLock, {}, name,
                     "surviving active transaction lost a granted lock"});
      }
    }
  }
  return Status::Ok();
}

Status IfaChecker::VerifyAll() {
  SMDB_RETURN_IF_ERROR(VerifyRecords());
  SMDB_RETURN_IF_ERROR(VerifyIndex());
  return VerifyLocks();
}

}  // namespace smdb
