#include "core/database.h"
#include "core/recovery_manager.h"

namespace smdb {

// Selective Redo (section 4.1.2):
//   1. Each surviving node performs redo only for those updates that were
//      exclusively resident on a crashed node: an update needs no redo if
//      it reached the stable database or if its line is still cached on a
//      surviving node. Implementation: re-install the *lost* lines from the
//      stable database, then replay logs with the USN guard — the guard
//      hits exactly the paper's two no-redo conditions (the stable image
//      satisfies "propagated", a surviving cache line satisfies "resident").
//   2. Each surviving node undoes the updates of crash-annulled
//      transactions found via the undo tags stored in each record's cache
//      line, installing last committed values from stable store.
Status RecoveryManager::RunSelectiveRedo(Ctx& ctx) {
  // Step 0: re-materialise lost lines from the stable database (the probe —
  // ProbeLine, i.e. "cache miss with I/O disabled" — is what decides
  // lost-ness inside ReinstallLostLines).
  SMDB_RETURN_IF_ERROR(TimedPhase(ctx, RecoveryPhase::kReload, [&] {
    auto reinstall = [&](const std::vector<PageId>& pages) -> Status {
      for (PageId p : pages) {
        SMDB_ASSIGN_OR_RETURN(
            int n, db_->buffers().ReinstallLostLines(ctx.NextSurvivor(), p));
        if (n > 0) {
          ctx.out.lines_reinstalled += n;
          ++ctx.out.pages_reloaded;
        }
      }
      return Status::Ok();
    };
    SMDB_RETURN_IF_ERROR(reinstall(db_->records().pages()));
    return reinstall(db_->index().pages());
  }));

  // Step 1: selective redo.
  SMDB_RETURN_IF_ERROR(TimedPhase(ctx, RecoveryPhase::kRedo,
                                  [&] { return ReplayLogsWithGuard(ctx); }));

  // Step 2a: undo stolen/stable-logged uncommitted work of crashed nodes.
  SMDB_RETURN_IF_ERROR(TimedPhase(
      ctx, RecoveryPhase::kUndo, [&] { return UndoCrashedFromStableLogs(ctx); }));

  // Step 2b: tag-scan undo of crashed transactions' updates that migrated
  // to surviving caches (no stable log record exists for these).
  SMDB_RETURN_IF_ERROR(TimedPhase(ctx, RecoveryPhase::kTagScan,
                                  [&] { return TagScanUndo(ctx); }));

  // Lock space recovery (section 4.2.2).
  return TimedPhase(ctx, RecoveryPhase::kLockRebuild,
                    [&] { return RecoverLockTable(ctx); });
}

}  // namespace smdb
