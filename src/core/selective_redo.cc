#include "core/database.h"
#include "core/on_demand.h"
#include "core/recovery_manager.h"

namespace smdb {

// Selective Redo (section 4.1.2):
//   1. Each surviving node performs redo only for those updates that were
//      exclusively resident on a crashed node: an update needs no redo if
//      it reached the stable database or if its line is still cached on a
//      surviving node. Implementation: re-install the *lost* lines from the
//      stable database, then replay logs with the USN guard — the guard
//      hits exactly the paper's two no-redo conditions (the stable image
//      satisfies "propagated", a surviving cache line satisfies "resident").
//   2. Each surviving node undoes the updates of crash-annulled
//      transactions found via the undo tags stored in each record's cache
//      line, installing last committed values from stable store.
//
// With on-demand recovery, only the eager prefix runs here: index lost-line
// reinstall + structural redo and the lock-table rebuild. Heap lost lines,
// entry-level redo/undo, and the tag scan are handed to OnDemandRecovery
// for per-object discharge (the deferred tag work is guarded by a
// crash-time USN cutoff so post-crash traffic's tags are never touched).
Status RecoveryManager::RunSelectiveRedo(Ctx& ctx) {
  OnDemandRecovery* od = db_->on_demand();
  // Lazy only when Selective Redo is the *configured* protocol:
  // AbortDependents delegates here and must stay eager — it aborts
  // dependent survivors right after this returns, which requires a fully
  // recovered state, not a Recovering window.
  const bool lazy = od != nullptr && db_->config().recovery.restart ==
                                         RestartKind::kSelectiveRedo;

  // Step 0: re-materialise lost lines from the stable database (the probe —
  // ProbeLine, i.e. "cache miss with I/O disabled" — is what decides
  // lost-ness inside ReinstallLostLines). On-demand defers the heap pages.
  SMDB_RETURN_IF_ERROR(TimedPhase(ctx, RecoveryPhase::kReload, [&] {
    const int lines_per_page = static_cast<int>(
        db_->buffers().page_size() / db_->machine().line_size());
    auto reinstall = [&](const std::vector<PageId>& pages) -> Status {
      for (PageId p : pages) {
        SMDB_ASSIGN_OR_RETURN(
            int n, db_->buffers().ReinstallLostLines(ctx.NextSurvivor(), p));
        if (n > 0) {
          ctx.out.lines_reinstalled += n;
          ++ctx.out.pages_reloaded;
          // A partial reinstall splices stable-image lines into surviving
          // ones; the page's surviving Page-LSN no longer describes every
          // line, so structural redo must not skip on it (see Ctx).
          if (n < lines_per_page) ctx.spliced_pages.insert(p);
        }
      }
      return Status::Ok();
    };
    if (!lazy) SMDB_RETURN_IF_ERROR(reinstall(db_->records().pages()));
    return reinstall(db_->index().pages());
  }));

  if (!lazy) {
    // Step 1: selective redo.
    SMDB_RETURN_IF_ERROR(TimedPhase(
        ctx, RecoveryPhase::kRedo, [&] { return ReplayLogsWithGuard(ctx); }));

    // Step 2a: undo stolen/stable-logged uncommitted work of crashed nodes.
    SMDB_RETURN_IF_ERROR(TimedPhase(ctx, RecoveryPhase::kUndo, [&] {
      return UndoCrashedFromStableLogs(ctx);
    }));

    // Step 2b: tag-scan undo of crashed transactions' updates that migrated
    // to surviving caches (no stable log record exists for these).
    SMDB_RETURN_IF_ERROR(TimedPhase(ctx, RecoveryPhase::kTagScan,
                                    [&] { return TagScanUndo(ctx); }));

    // Lock space recovery (section 4.2.2).
    return TimedPhase(ctx, RecoveryPhase::kLockRebuild,
                      [&] { return RecoverLockTable(ctx); });
  }

  // On-demand eager prefix: structural redo now, everything entry-level
  // stashed for lazy discharge.
  ctx.lazy = true;
  std::vector<LogRecord> records;
  SMDB_RETURN_IF_ERROR(TimedPhase(ctx, RecoveryPhase::kRedo, [&] {
    SMDB_RETURN_IF_ERROR(CollectRedoRecords(ctx, &records));
    return ApplyRedoRecords(ctx, records);  // structural only (ctx.lazy)
  }));
  UndoWork undo;
  SMDB_RETURN_IF_ERROR(TimedPhase(
      ctx, RecoveryPhase::kUndo, [&] { return CollectUndoWork(ctx, &undo); }));
  // Lock rebuild in the prefix (see RunRedoAll for why this is safe).
  SMDB_RETURN_IF_ERROR(TimedPhase(ctx, RecoveryPhase::kLockRebuild,
                                  [&] { return RecoverLockTable(ctx); }));
  return od->Activate(ctx, std::move(records), std::move(undo));
}

}  // namespace smdb
