#ifndef SMDB_CORE_RECOVERY_H_
#define SMDB_CORE_RECOVERY_H_

#include <array>
#include <cstddef>
#include <string>
#include <vector>

#include "common/types.h"

namespace smdb {

/// Phases of the restart procedure, in pipeline order. Every scheme runs a
/// subset: Redo All skips the tag scan, Selective Redo skips the reload,
/// RebootAll adds the whole-machine reboot. Phase durations are recorded
/// per recovery in RecoveryOutcome::phase_ns and emitted as trace spans.
enum class RecoveryPhase : uint8_t {
  kLogAnalysis = 0,  ///< context build: scan logs, classify transactions
  kReboot,           ///< RebootAll's whole-machine restart step
  kReload,           ///< stable-page reload / lost-line reinstall
  kRedo,             ///< USN-guarded replay of reachable logs
  kUndo,             ///< undo of dead uncommitted work from stable logs
  kTagScan,          ///< Selective Redo's cache sweep over undo tags
  kLockRebuild,      ///< lock-table recovery (clear, drop, rebuild)
};
inline constexpr size_t kNumRecoveryPhases = 7;

/// Stable human-readable phase name (also the trace span label).
const char* RecoveryPhaseName(RecoveryPhase phase);

/// What restart recovery did, and what it cost. The benches for the
/// recovery-time (R1) and abort-avoidance (A1) experiments read these
/// fields directly.
struct RecoveryOutcome {
  /// The node set this recovery was run for (deduplicated). Triage tools —
  /// notably the crash-schedule fuzzer — use it to correlate an outcome
  /// with the crash plan that fired it.
  std::vector<NodeId> crashed_nodes;
  /// Active transactions on crashed nodes whose effects were undone (the
  /// "all effects ... will be undone" half of IFA).
  std::vector<TxnId> annulled;
  /// Active transactions on surviving nodes that kept running (the "no
  /// effects ... will be undone" half of IFA).
  std::vector<TxnId> preserved;
  /// Surviving-node transactions aborted anyway — zero for the IFA
  /// protocols, nonzero for the baselines. These are the paper's
  /// "unnecessary transaction aborts".
  std::vector<TxnId> forced_aborts;

  uint64_t redo_applied = 0;
  uint64_t redo_skipped = 0;   // Selective Redo's no-redo conditions hit
  uint64_t undo_applied = 0;
  uint64_t pages_reloaded = 0;
  uint64_t lines_reinstalled = 0;
  uint64_t lcb_lines_cleared = 0;
  uint64_t lcbs_rebuilt = 0;
  uint64_t locks_dropped = 0;
  uint64_t tags_scanned = 0;   // cache lines visited by the tag scan
  uint64_t tag_undos = 0;      // undos performed from undo tags

  /// Simulated wall-clock of the restart procedure (global-time delta).
  SimTime recovery_time_ns = 0;
  /// Per-phase global-time deltas (indexed by RecoveryPhase); phases the
  /// scheme did not run stay 0. Sums to <= recovery_time_ns (coordinator
  /// glue between phases is not attributed to any phase).
  std::array<SimTime, kNumRecoveryPhases> phase_ns{};
  bool whole_machine_restart = false;

  std::string ToString() const;
};

}  // namespace smdb

#endif  // SMDB_CORE_RECOVERY_H_
