#ifndef SMDB_CORE_DEPENDENCY_TRACKER_H_
#define SMDB_CORE_DEPENDENCY_TRACKER_H_

#include <mutex>
#include <set>
#include <unordered_map>

#include "common/types.h"
#include "sim/events.h"

namespace smdb {

class Machine;

/// Tracks which active transactions have become "dependent on the memory of
/// a remote node" — the condition under which the overkill baseline of
/// section 3.3 aborts a transaction when any node crashes.
///
/// A transaction becomes dependent when:
///  * a cache line containing one of its uncommitted updates is invalidated
///    or downgraded away from its node (the update now lives, possibly
///    solely, on another node), or
///  * it updates a cache line that already contains another active
///    transaction's uncommitted update (its own update now cohabits a line
///    whose fate is tied to other nodes).
///
/// This is bookkeeping a real system would not need for the IFA protocols;
/// it exists to implement and quantify the AbortDependents baseline.
class DependencyTracker {
 public:
  explicit DependencyTracker(Machine* machine);

  /// Transaction `txn` (on TxnNode(txn)) wrote uncommitted data in `line`.
  void OnTxnUpdate(TxnId txn, LineAddr line);

  /// Transaction finished (commit or abort); forget its state.
  void OnTxnEnd(TxnId txn);

  /// Currently-dependent active transactions. Snapshot under the latch;
  /// callers (crash handling) run at quiescent points but the copy keeps the
  /// contract simple.
  std::set<TxnId> Dependent() const {
    std::lock_guard<std::mutex> lk(mu_);
    return dependent_;
  }

  bool IsDependent(TxnId txn) const {
    std::lock_guard<std::mutex> lk(mu_);
    return dependent_.contains(txn);
  }

 private:
  void OnCoherence(const CoherenceEvent& ev);

  /// Guards all three maps: coherence hooks and update notifications arrive
  /// from concurrent execution workers.
  mutable std::mutex mu_;
  /// line -> active transactions with uncommitted updates in it.
  std::unordered_map<LineAddr, std::set<TxnId>> line_txns_;
  /// txn -> lines it updated (for cleanup).
  std::unordered_map<TxnId, std::set<LineAddr>> txn_lines_;
  std::set<TxnId> dependent_;
};

}  // namespace smdb

#endif  // SMDB_CORE_DEPENDENCY_TRACKER_H_
