#ifndef SMDB_CORE_STABLE_STATE_H_
#define SMDB_CORE_STABLE_STATE_H_

#include <set>
#include <unordered_map>
#include <vector>

#include "common/status.h"
#include "common/types.h"
#include "db/buffer_manager.h"
#include "db/record_store.h"
#include "wal/log_manager.h"

namespace smdb {

class Machine;

/// Reconstructs the *last committed value* of a record from stable store —
/// the primitive Selective Redo's tag-based undo relies on: "Given our
/// assumption of the WAL protocol, the last committed value of these
/// records will necessarily be in stable store — either in the stable log,
/// or in the stable database" (section 4.1.2).
///
/// Algorithm: start from the stable database image of the record's page,
/// then replay, in USN order, all update records for the record from every
/// node's reachable log (full logs of surviving nodes, stable logs of
/// crashed ones), skipping the updates of transactions named in
/// `uncommitted` (active transactions, whether crashed or surviving) except
/// their redo-only CLRs. Strict 2PL guarantees at most one active
/// transaction per record, so the skipped updates are always a suffix and
/// the result is exactly the last committed value.
class StableStateReconstructor {
 public:
  StableStateReconstructor(Machine* machine, LogManager* log,
                           BufferManager* buffers, RecordStore* records,
                           std::set<TxnId> uncommitted);

  /// Last committed value (and its USN) of `rid`. `performer` pays for the
  /// stable-database page reads (cached across calls).
  Result<SlotImage> CommittedValue(NodeId performer, RecordId rid);

 private:
  const std::vector<uint8_t>* PageImage(NodeId performer, PageId page);

  Machine* machine_;
  LogManager* log_;
  BufferManager* buffers_;
  RecordStore* records_;
  std::set<TxnId> uncommitted_;
  std::unordered_map<PageId, std::vector<uint8_t>> page_cache_;
  /// rid -> update records for it, lazily indexed on first use.
  bool indexed_ = false;
  std::unordered_map<RecordId, std::vector<LogRecord>> by_record_;

  void BuildIndex();
};

}  // namespace smdb

#endif  // SMDB_CORE_STABLE_STATE_H_
