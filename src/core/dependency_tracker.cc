#include "core/dependency_tracker.h"

#include "sim/machine.h"

namespace smdb {

DependencyTracker::DependencyTracker(Machine* machine) {
  machine->AddCoherenceHook(
      [this](const CoherenceEvent& ev) { OnCoherence(ev); });
}

void DependencyTracker::OnTxnUpdate(TxnId txn, LineAddr line) {
  std::lock_guard<std::mutex> lk(mu_);
  auto& txns = line_txns_[line];
  // Cohabiting a line with another active transaction's update makes both
  // transactions dependent: whichever node ends up holding the line, the
  // other's update rides along.
  for (TxnId other : txns) {
    if (other != txn) {
      dependent_.insert(other);
      dependent_.insert(txn);
    }
  }
  txns.insert(txn);
  txn_lines_[txn].insert(line);
}

void DependencyTracker::OnTxnEnd(TxnId txn) {
  std::lock_guard<std::mutex> lk(mu_);
  auto it = txn_lines_.find(txn);
  if (it != txn_lines_.end()) {
    for (LineAddr line : it->second) {
      auto lt = line_txns_.find(line);
      if (lt != line_txns_.end()) {
        lt->second.erase(txn);
        if (lt->second.empty()) line_txns_.erase(lt);
      }
    }
    txn_lines_.erase(it);
  }
  dependent_.erase(txn);
}

void DependencyTracker::OnCoherence(const CoherenceEvent& ev) {
  std::lock_guard<std::mutex> lk(mu_);
  auto it = line_txns_.find(ev.line);
  if (it == line_txns_.end()) return;
  for (TxnId txn : it->second) {
    // An update made on `from`'s node is leaving that node's cache.
    if (TxnNode(txn) == ev.from) dependent_.insert(txn);
  }
}

}  // namespace smdb
