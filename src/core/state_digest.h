#ifndef SMDB_CORE_STATE_DIGEST_H_
#define SMDB_CORE_STATE_DIGEST_H_

#include <cstdint>
#include <string>

namespace smdb {

class Database;

/// Deterministic hash of the logical machine state recovery is responsible
/// for — the differential oracle for the parallel recovery pipeline: after
/// restart recovery, an N-thread run must produce the same digest as the
/// serial run on the same crash schedule.
///
/// Covered (one FNV-1a sub-hash per component):
///  * heap   — coherent contents of every heap page, line by line, with an
///             explicit marker for lost lines (slot data, USNs, undo tags
///             and Page-LSNs are all in these bytes);
///  * index  — the same over the B+-tree's pages;
///  * stable — the durable page bytes on the shared disks;
///  * locks  — the logical lock table (every LCB's holders and waiters,
///             plus the lost-LCB count);
///  * txns   — the transaction table's verdicts (id, state).
///
/// Deliberately excluded: cache residency, per-node clocks, log contents
/// and statistics. Those are *performance* state — which node's cache holds
/// a line, how long recovery took, whose log a compensation record landed
/// on — and legitimately differ between worker-stream assignments while the
/// recovered database state is identical.
struct StateDigest {
  uint64_t heap = 0;
  uint64_t index = 0;
  uint64_t stable = 0;
  uint64_t locks = 0;
  uint64_t txns = 0;

  /// Single combined hash over the five components.
  uint64_t Combined() const;
  std::string ToString() const;

  friend bool operator==(const StateDigest&, const StateDigest&) = default;
};

/// Computes the digest by snooping — no simulated cost, no state change.
StateDigest ComputeStateDigest(Database& db);

}  // namespace smdb

#endif  // SMDB_CORE_STATE_DIGEST_H_
