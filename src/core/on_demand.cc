#include "core/on_demand.h"

#include <algorithm>

#include "core/database.h"
#include "core/stable_state.h"

namespace smdb {

namespace {

uint64_t UsnOf(const LogRecord& rec) {
  return rec.type == LogRecordType::kUpdate ? rec.update().usn
                                            : rec.index_op().usn;
}

}  // namespace

OnDemandRecovery::OnDemandRecovery(Database* db) : db_(db) {}

OnDemandRecovery::~OnDemandRecovery() = default;

void OnDemandRecovery::Reset() {
  active_ = false;
  tagged_ = false;
  in_discharge_ = false;
  ctx_ = RecoveryManager::Ctx{};
  redo_.clear();
  redo_done_.clear();
  undo_ = RecoveryManager::UndoWork{};
  undo_done_.clear();
  records_.clear();
  keys_.clear();
  sweep_order_.clear();
  sweep_rids_.clear();
  sweep_keys_.clear();
  sweep_pos_ = 0;
  pending_pages_.clear();
  discharged_rids_.clear();
  discharged_keys_.clear();
  seeded_rids_.clear();
  seeded_keys_.clear();
  eng_ = TxnManager::UndoEngagement{};
  usn_owner_.clear();
  reconstructor_.reset();
  stats_ = Stats{};
}

Status OnDemandRecovery::Activate(const RecoveryManager::Ctx& ctx,
                                  std::vector<LogRecord> entry_redo,
                                  RecoveryManager::UndoWork undo) {
  Reset();
  ctx_ = ctx;
  // The context outlives crash-time recovery; transaction pointers do not.
  ctx_.crashed_active.clear();
  ctx_.surviving_active.clear();
  ctx_.lazy = true;
  // Everything minted after this instant is post-crash traffic: the
  // deferred tag handling must not classify (let alone undo) those tags.
  ctx_.tag_scan_usn_cutoff = db_->usn().current();
  restart_ = db_->config().recovery.restart;
  tagged_ = db_->config().recovery.undo_tagging() &&
            restart_ == RestartKind::kSelectiveRedo;

  redo_ = std::move(entry_redo);
  undo_ = std::move(undo);
  redo_done_.assign(redo_.size(), false);
  undo_done_.assign(undo_.to_undo.size(), false);

  for (size_t i = 0; i < redo_.size(); ++i) {
    const LogRecord& rec = redo_[i];
    if (rec.type == LogRecordType::kStructural) {
      redo_done_[i] = true;  // applied in the eager prefix
      continue;
    }
    if (rec.type == LogRecordType::kUpdate) {
      records_[rec.update().rid].redo.push_back(i);
    } else {
      keys_[{rec.index_op().tree_id, rec.index_op().key}].redo.push_back(i);
    }
  }
  for (size_t i = 0; i < undo_.to_undo.size(); ++i) {
    const LogRecord& rec = undo_.to_undo[i];
    if (rec.type == LogRecordType::kUpdate) {
      records_[rec.update().rid].undo.push_back(i);
    } else {
      keys_[{rec.index_op().tree_id, rec.index_op().key}].undo.push_back(i);
    }
  }

  // Heap pages load lazily; index pages were reloaded in the eager prefix
  // (redo, undo, and every new transaction descend the tree).
  for (PageId p : db_->records().pages()) pending_pages_.insert(p);

  if (tagged_) {
    // Stable-log USN owner map + committed-value reconstructor for the
    // per-object tag discharge (the full deferred scan rebuilds its own).
    for (NodeId n = 0; n < db_->machine().num_nodes(); ++n) {
      db_->log().ForEachStable(n, [&](const LogRecord& rec) {
        if (rec.type == LogRecordType::kUpdate) {
          usn_owner_[rec.update().usn] = rec.txn;
        } else if (rec.type == LogRecordType::kIndexOp) {
          usn_owner_[rec.index_op().usn] = rec.txn;
        }
      });
    }
    reconstructor_ = std::make_unique<StableStateReconstructor>(
        &db_->machine(), &db_->log(), &db_->buffers(), &db_->records(),
        ctx_.uncommitted_ids);
  }

  // Sweep order: objects by their smallest pending-obligation USN, so the
  // background drain follows the global log order.
  auto min_usn = [&](const Pending& p) {
    uint64_t lo = UINT64_MAX;
    if (!p.redo.empty()) lo = std::min(lo, UsnOf(redo_[p.redo.front()]));
    if (!p.undo.empty()) {
      lo = std::min(lo, UsnOf(undo_.to_undo[p.undo.back()]));
    }
    return lo;
  };
  for (const auto& [rid, p] : records_) {
    sweep_rids_.push_back(rid);
    sweep_order_.push_back({min_usn(p), {false, sweep_rids_.size() - 1}});
  }
  for (const auto& [key, p] : keys_) {
    sweep_keys_.push_back(key);
    sweep_order_.push_back({min_usn(p), {true, sweep_keys_.size() - 1}});
  }
  std::sort(sweep_order_.begin(), sweep_order_.end());

  stats_.objects_total = records_.size() + keys_.size();
  active_ = true;
  return Status::Ok();
}

bool OnDemandRecovery::StaleCommittedTag(uint64_t usn, NodeId tagged) const {
  auto it = usn_owner_.find(usn);
  if (it != usn_owner_.end()) {
    return !ctx_.uncommitted_ids.contains(it->second);
  }
  // Same truncation argument as the eager tag scan: at or below the tagged
  // node's reclaim high-water mark the record's transaction finished (the
  // commit beat the tag-clear); above it the record only ever existed in
  // the lost volatile tail — uncommitted.
  return usn <= db_->log().max_truncated_usn(tagged);
}

void OnDemandRecovery::CountDischarge(Via via) {
  switch (via) {
    case Via::kTouch: ++stats_.first_touch_discharges; break;
    case Via::kSweep: ++stats_.sweep_discharges; break;
    case Via::kDrain: ++stats_.drain_discharges; break;
  }
}

Status OnDemandRecovery::EnsureHeapPage(NodeId performer, PageId page) {
  auto it = pending_pages_.find(page);
  if (it == pending_pages_.end()) return Status::Ok();
  if (restart_ == RestartKind::kRedoAll) {
    // Redo All discarded every line; bring back the full stable image.
    SMDB_RETURN_IF_ERROR(db_->buffers().ReinstallPage(performer, page));
  } else {
    // Selective Redo re-materialises only the lines actually lost.
    SMDB_ASSIGN_OR_RETURN(
        int n, db_->buffers().ReinstallLostLines(performer, page));
    (void)n;
  }
  pending_pages_.erase(it);
  ++stats_.pages_loaded_lazily;
  return Status::Ok();
}

Status OnDemandRecovery::TouchRecord(NodeId performer, RecordId rid) {
  if (!active_ || in_discharge_) return Status::Ok();
  if (discharged_rids_.contains(rid)) return Status::Ok();
  return DischargeRecord(performer, rid, Via::kTouch);
}

Status OnDemandRecovery::TouchKey(NodeId performer, uint32_t tree_id,
                                  uint64_t key) {
  if (!active_ || in_discharge_) return Status::Ok();
  KeyId id{tree_id, key};
  if (discharged_keys_.contains(id)) return Status::Ok();
  return DischargeKey(performer, id, Via::kTouch);
}

Status OnDemandRecovery::DischargeRecord(NodeId performer, RecordId rid,
                                         Via via) {
  in_discharge_ = true;
  Status s = [&]() -> Status {
    SMDB_RETURN_IF_ERROR(EnsureHeapPage(performer, rid.page));
    auto it = records_.find(rid);
    if (it != records_.end()) {
      for (size_t i : it->second.redo) {
        if (redo_done_[i]) continue;
        SMDB_RETURN_IF_ERROR(
            db_->recovery().ApplyRedoUpdate(ctx_, performer, redo_[i]));
        redo_done_[i] = true;
      }
      // Engagement seeding right before the object's first undo — the same
      // resume-the-CLR-chain discipline as the eager pass (see
      // UndoCrashedFromStableLogs), just per object.
      if (!it->second.undo.empty() && seeded_rids_.insert(rid).second) {
        SMDB_ASSIGN_OR_RETURN(SlotImage cur,
                              db_->records().ReadSlot(performer, rid));
        auto c = undo_.clr_slots.find(cur.usn);
        if (c != undo_.clr_slots.end() && c->second.second == rid) {
          eng_.records[rid] = c->second.first;
        }
      }
      for (size_t i : it->second.undo) {
        if (undo_done_[i]) continue;
        SMDB_RETURN_IF_ERROR(
            db_->txn().ApplyUndoUpdate(performer, undo_.to_undo[i], &eng_));
        undo_done_[i] = true;
      }
      records_.erase(it);
    }
    // Even a record with no logged obligations can carry a dead node's tag
    // (a purely volatile update that migrated to a surviving cache).
    if (tagged_) SMDB_RETURN_IF_ERROR(DischargeRecordTag(performer, rid));
    return Status::Ok();
  }();
  in_discharge_ = false;
  SMDB_RETURN_IF_ERROR(s);
  discharged_rids_.insert(rid);
  CountDischarge(via);
  return Status::Ok();
}

Status OnDemandRecovery::DischargeKey(NodeId performer, KeyId key, Via via) {
  in_discharge_ = true;
  Status s = [&]() -> Status {
    auto it = keys_.find(key);
    if (it != keys_.end()) {
      for (size_t i : it->second.redo) {
        if (redo_done_[i]) continue;
        SMDB_RETURN_IF_ERROR(
            db_->recovery().ApplyRedoIndexOp(ctx_, performer, redo_[i]));
        redo_done_[i] = true;
      }
      if (!it->second.undo.empty() && seeded_keys_.insert(key).second) {
        SMDB_ASSIGN_OR_RETURN(auto entry,
                              db_->index().GetEntry(performer, key.second));
        if (entry.has_value()) {
          auto c = undo_.clr_keys.find(entry->usn);
          if (c != undo_.clr_keys.end() && c->second.second == key) {
            eng_.keys[key] = c->second.first;
          }
        }
      }
      for (size_t i : it->second.undo) {
        if (undo_done_[i]) continue;
        SMDB_RETURN_IF_ERROR(
            db_->txn().ApplyUndoIndexOp(performer, undo_.to_undo[i], &eng_));
        undo_done_[i] = true;
      }
      keys_.erase(it);
    }
    if (tagged_) SMDB_RETURN_IF_ERROR(DischargeKeyTag(performer, key));
    return Status::Ok();
  }();
  in_discharge_ = false;
  SMDB_RETURN_IF_ERROR(s);
  discharged_keys_.insert(key);
  CountDischarge(via);
  return Status::Ok();
}

Status OnDemandRecovery::DischargeRecordTag(NodeId performer, RecordId rid) {
  RecordStore& rs = db_->records();
  Machine& m = db_->machine();
  SMDB_ASSIGN_OR_RETURN(SlotImage img, rs.ReadSlot(performer, rid));
  if (img.tag == kTagNone) return Status::Ok();
  NodeId tagged = NodeOfTag(img.tag);
  if (!ctx_.dead_set.contains(tagged)) return Status::Ok();
  if (img.usn > ctx_.tag_scan_usn_cutoff) return Status::Ok();
  if (StaleCommittedTag(img.usn, tagged)) {
    // Commit happened; only the tag-clear was lost. Clear it now.
    LineAddr line = rs.SlotLine(rid);
    SMDB_RETURN_IF_ERROR(m.GetLine(performer, line));
    Status st = rs.WriteTag(performer, rid, kTagNone);
    m.ReleaseLine(performer, line);
    return st;
  }
  // Undo: install the last committed value (from stable store).
  SMDB_ASSIGN_OR_RETURN(SlotImage committed,
                        reconstructor_->CommittedValue(performer, rid));
  LineAddr header_line = rs.HeaderLine(rid.page);
  LineAddr record_line = rs.SlotLine(rid);
  SMDB_RETURN_IF_ERROR(m.GetLine(performer, header_line));
  Status st = m.GetLine(performer, record_line);
  if (!st.ok()) {
    m.ReleaseLine(performer, header_line);
    return st;
  }
  uint64_t usn = db_->usn().Next();
  SlotImage img2;
  img2.usn = usn;
  img2.tag = kTagNone;
  img2.data = committed.data;
  Status w = rs.WriteSlot(performer, rid, img2);
  if (w.ok()) w = rs.WritePageLsn(performer, rid.page, usn);
  m.ReleaseLine(performer, record_line);
  m.ReleaseLine(performer, header_line);
  SMDB_RETURN_IF_ERROR(w);
  db_->buffers().MarkDirty(rid.page);
  return Status::Ok();
}

Status OnDemandRecovery::DischargeKeyTag(NodeId performer, KeyId key) {
  BTree& index = db_->index();
  // Snapshot first, then resolve each entry — a key can carry both a live
  // entry and a tombstone, with independent fates (same as the full scan).
  SMDB_ASSIGN_OR_RETURN(auto refs, index.EntriesForKey(performer, key.second));
  for (const auto& ref : refs) {
    if (ref.entry.tag == kTagNone) continue;
    NodeId tagged = NodeOfTag(ref.entry.tag);
    if (!ctx_.dead_set.contains(tagged)) continue;
    if (ref.entry.usn > ctx_.tag_scan_usn_cutoff) continue;
    if (StaleCommittedTag(ref.entry.usn, tagged)) {
      SMDB_RETURN_IF_ERROR(index.ClearTag(performer, key.second));
    } else if (ref.entry.state == LeafEntryState::kLive) {
      // Undo of an uncommitted insert: physical removal.
      SMDB_RETURN_IF_ERROR(index.RemoveEntryAt(performer, ref.leaf, ref.slot));
    } else {
      // Undo of an uncommitted logical delete: unmark.
      SMDB_RETURN_IF_ERROR(index.UnmarkEntryAt(performer, ref.leaf, ref.slot));
    }
  }
  return Status::Ok();
}

Result<int> OnDemandRecovery::SweepStep(int max_objects) {
  if (!active_) return 0;
  RecoveryManager& rm = db_->recovery();
  ThreadPool* pool = ctx_.threads > 1 ? rm.pool_.get() : nullptr;
  Profiler* prof = db_->profiler_ptr();
  const bool profiled = prof != nullptr && prof->enabled();
  // Attribute a solo (off-pool) discharge: per-reason counter + trace
  // instant, before the discharge runs so the performer's clock still
  // reads its pre-discharge value.
  auto count_solo = [&](SweeperSoloReason r, NodeId performer) {
    if (!profiled) return;
    prof->CountSweeperSolo(r);
    SMDB_TRACE(db_->tracer_ptr(),
               {.kind = TraceEventKind::kSweepSolo,
                .node = performer,
                .ts = db_->machine().NodeClock(performer),
                .label = SweeperSoloReasonName(r)});
  };
  int done = 0;
  while (done < max_objects && sweep_pos_ < sweep_order_.size()) {
    if (pool == nullptr) {
      auto [usn, which] = sweep_order_[sweep_pos_++];
      (void)usn;
      if (!which.first) {
        RecordId rid = sweep_rids_[which.second];
        if (discharged_rids_.contains(rid)) continue;  // first touch beat us
        NodeId performer = ctx_.NextSurvivor();
        count_solo(SweeperSoloReason::kSerialSweep, performer);
        ProfRoot root(prof, ProfPhase::kSweep);
        SMDB_RETURN_IF_ERROR(DischargeRecord(performer, rid, Via::kSweep));
      } else {
        KeyId key = sweep_keys_[which.second];
        if (discharged_keys_.contains(key)) continue;
        NodeId performer = ctx_.NextSurvivor();
        count_solo(SweeperSoloReason::kSerialSweep, performer);
        ProfRoot root(prof, ProfPhase::kSweep);
        SMDB_RETURN_IF_ERROR(DischargeKey(performer, key, Via::kSweep));
      }
      ++done;
      continue;
    }

    // Pool-backed sweep: gather a maximal run (in sweep order) of heap
    // records that provably need only USN-guarded redo applies — no undo
    // obligations (those allocate CLR USNs), no dead-node tag, page already
    // loaded — on pairwise-distinct pages, so the batch members' line
    // footprints are disjoint. Performers are drawn at plan time, in sweep
    // order, keeping the round-robin sequence identical to the serial
    // sweeper; USN-allocating work always runs solo, in order, so the
    // global USN stream (and every digest) is width-invariant.
    struct PlannedSweep {
      RecordId rid;
      NodeId performer;
      std::vector<size_t> redo;  // indices into redo_, disjoint per member
    };
    std::vector<PlannedSweep> batch;
    std::set<PageId> batch_pages;
    bool solo_next = false;
    while (done + static_cast<int>(batch.size()) < max_objects &&
           sweep_pos_ < sweep_order_.size()) {
      auto [usn, which] = sweep_order_[sweep_pos_];
      (void)usn;
      if (which.first) {
        solo_next = true;  // index keys descend the tree: solo
        break;
      }
      RecordId rid = sweep_rids_[which.second];
      if (discharged_rids_.contains(rid)) {
        ++sweep_pos_;
        continue;
      }
      bool clean = !pending_pages_.contains(rid.page);
      auto it = records_.find(rid);
      if (clean && it != records_.end() && !it->second.undo.empty()) {
        clean = false;
      }
      if (clean && tagged_) {
        // Host-side snoop is sound here: the page is loaded, and nothing
        // can touch a still-pending object between plan and apply.
        auto img = db_->records().SnoopSlot(rid);
        if (!img.ok() || img->tag != kTagNone) clean = false;
      }
      if (!clean) {
        solo_next = true;
        break;
      }
      if (batch_pages.contains(rid.page)) break;  // flush, then new batch
      PlannedSweep ps;
      ps.rid = rid;
      ps.performer = ctx_.NextSurvivor();
      if (it != records_.end()) ps.redo = it->second.redo;
      batch_pages.insert(rid.page);
      batch.push_back(std::move(ps));
      ++sweep_pos_;
    }

    if (batch.size() == 1) {
      // No parallelism to exploit; the planned performer keeps the
      // round-robin stream identical either way.
      count_solo(SweeperSoloReason::kLoneRecord, batch[0].performer);
      ProfRoot root(prof, ProfPhase::kSweep);
      SMDB_RETURN_IF_ERROR(
          DischargeRecord(batch[0].performer, batch[0].rid, Via::kSweep));
      ++done;
    } else if (!batch.empty()) {
      in_discharge_ = true;
      std::vector<Status> st(batch.size());
      pool->ParallelFor(batch.size(), [&](size_t gi) {
        const PlannedSweep& ps = batch[gi];
        for (size_t i : ps.redo) {
          if (redo_done_[i]) continue;
          Status s = rm.ApplyRedoUpdate(ctx_, ps.performer, redo_[i]);
          if (!s.ok()) {
            st[gi] = s;
            return;
          }
          redo_done_[i] = true;
        }
      });
      in_discharge_ = false;
      for (const Status& s : st) SMDB_RETURN_IF_ERROR(s);
      ++stats_.sweep_batches;
      stats_.sweep_batched_records += batch.size();
      for (const PlannedSweep& ps : batch) {
        records_.erase(ps.rid);
        discharged_rids_.insert(ps.rid);
        CountDischarge(Via::kSweep);
        ++done;
      }
    }

    if (solo_next && done < max_objects &&
        sweep_pos_ < sweep_order_.size()) {
      auto [usn, which] = sweep_order_[sweep_pos_++];
      (void)usn;
      if (!which.first) {
        RecordId rid = sweep_rids_[which.second];
        if (!discharged_rids_.contains(rid)) {
          NodeId performer = ctx_.NextSurvivor();
          if (profiled) {
            // Re-derive the planner's disqualification, in its check order:
            // page image pending, CLR-allocating undo work, dead-node tag.
            SweeperSoloReason r = SweeperSoloReason::kTagDischarge;
            if (pending_pages_.contains(rid.page)) {
              r = SweeperSoloReason::kPageLoad;
            } else if (auto it = records_.find(rid);
                       it != records_.end() && !it->second.undo.empty()) {
              r = SweeperSoloReason::kUndoObligation;
            }
            count_solo(r, performer);
          }
          ProfRoot root(prof, ProfPhase::kSweep);
          SMDB_RETURN_IF_ERROR(DischargeRecord(performer, rid, Via::kSweep));
          ++done;
        }
      } else {
        KeyId key = sweep_keys_[which.second];
        if (!discharged_keys_.contains(key)) {
          NodeId performer = ctx_.NextSurvivor();
          count_solo(SweeperSoloReason::kIndexDescent, performer);
          ProfRoot root(prof, ProfPhase::kSweep);
          SMDB_RETURN_IF_ERROR(DischargeKey(performer, key, Via::kSweep));
          ++done;
        }
      }
    }
  }
  if (sweep_pos_ >= sweep_order_.size() && pending_objects() == 0) {
    SMDB_RETURN_IF_ERROR(FinishResidual());
  }
  return done;
}

Status OnDemandRecovery::FinishResidual() {
  in_discharge_ = true;
  Status s = [&]() -> Status {
    // Pages no pending object referenced still need their stable images
    // back before anything (verification, checkpoints) reads them.
    for (PageId p : db_->records().pages()) {
      SMDB_RETURN_IF_ERROR(EnsureHeapPage(ctx_.NextSurvivor(), p));
    }
    // Tags on objects that never had logged obligations (purely volatile
    // migrated updates) are only found by the full scan.
    if (tagged_) SMDB_RETURN_IF_ERROR(db_->recovery().TagScanUndo(ctx_));
    return Status::Ok();
  }();
  in_discharge_ = false;
  SMDB_RETURN_IF_ERROR(s);
  Deactivate();
  return Status::Ok();
}

Status OnDemandRecovery::DrainAll() {
  if (!active_) return Status::Ok();
  RecoveryManager& rm = db_->recovery();
  const size_t remaining = records_.size() + keys_.size();
  in_discharge_ = true;
  Status s = [&]() -> Status {
    // 1. Remaining heap pages, in table order (the eager reload order).
    for (PageId p : db_->records().pages()) {
      SMDB_RETURN_IF_ERROR(EnsureHeapPage(ctx_.NextSurvivor(), p));
    }
    // 2. Remaining entry-level redo, global USN order — the cross-object
    // order matters (page LSNs, logical index ops), exactly as in the
    // eager replay.
    for (size_t i = 0; i < redo_.size(); ++i) {
      if (redo_done_[i]) continue;
      const LogRecord& rec = redo_[i];
      NodeId performer = rm.RedoPerformer(ctx_, rec);
      if (rec.type == LogRecordType::kUpdate) {
        SMDB_RETURN_IF_ERROR(rm.ApplyRedoUpdate(ctx_, performer, rec));
      } else {
        SMDB_RETURN_IF_ERROR(rm.ApplyRedoIndexOp(ctx_, performer, rec));
      }
      redo_done_[i] = true;
    }
    // 3. Remaining undo: engagement seeding first (first occurrence per
    // object over the reverse-USN list), then the applies in the same
    // order — the eager pass's exact discipline.
    for (size_t i = 0; i < undo_.to_undo.size(); ++i) {
      if (undo_done_[i]) continue;
      const LogRecord& rec = undo_.to_undo[i];
      if (rec.type == LogRecordType::kUpdate) {
        RecordId rid = rec.update().rid;
        if (!seeded_rids_.insert(rid).second) continue;
        SMDB_ASSIGN_OR_RETURN(
            SlotImage cur,
            db_->records().ReadSlot(rm.UndoPerformer(ctx_, rec), rid));
        auto c = undo_.clr_slots.find(cur.usn);
        if (c != undo_.clr_slots.end() && c->second.second == rid) {
          eng_.records[rid] = c->second.first;
        }
      } else {
        const IndexOpPayload& op = rec.index_op();
        KeyId key{op.tree_id, op.key};
        if (!seeded_keys_.insert(key).second) continue;
        SMDB_ASSIGN_OR_RETURN(
            auto entry,
            db_->index().GetEntry(rm.UndoPerformer(ctx_, rec), op.key));
        if (!entry.has_value()) continue;
        auto c = undo_.clr_keys.find(entry->usn);
        if (c != undo_.clr_keys.end() && c->second.second == key) {
          eng_.keys[key] = c->second.first;
        }
      }
    }
    for (size_t i = 0; i < undo_.to_undo.size(); ++i) {
      if (undo_done_[i]) continue;
      const LogRecord& rec = undo_.to_undo[i];
      NodeId performer = rm.UndoPerformer(ctx_, rec);
      if (rec.type == LogRecordType::kUpdate) {
        SMDB_RETURN_IF_ERROR(db_->txn().ApplyUndoUpdate(performer, rec, &eng_));
      } else {
        SMDB_RETURN_IF_ERROR(
            db_->txn().ApplyUndoIndexOp(performer, rec, &eng_));
      }
      undo_done_[i] = true;
    }
    // 4. Deferred tag scan (post-crash tags excluded by the USN cutoff).
    if (tagged_) SMDB_RETURN_IF_ERROR(rm.TagScanUndo(ctx_));
    return Status::Ok();
  }();
  in_discharge_ = false;
  SMDB_RETURN_IF_ERROR(s);
  stats_.drain_discharges += remaining;
  records_.clear();
  keys_.clear();
  Deactivate();
  return Status::Ok();
}

void OnDemandRecovery::Deactivate() {
  active_ = false;
  SMDB_OBS(db_->observatory_ptr(),
           OnRecoveryDrained(db_->machine().GlobalTime()));
}

}  // namespace smdb
