#ifndef SMDB_CORE_IFA_CHECKER_H_
#define SMDB_CORE_IFA_CHECKER_H_

#include <map>
#include <mutex>
#include <optional>
#include <string>
#include <vector>

#include "common/status.h"
#include "common/types.h"
#include "txn/transaction.h"

namespace smdb {

class Database;

/// Ground-truth oracle for Isolated Failure Atomicity.
///
/// The checker observes every transaction's operations (as a TxnObserver)
/// and maintains, outside the simulated machine, the committed state plus
/// each active transaction's pending effects. After any crash + recovery —
/// or at any quiescent point — Verify* compares the machine-visible
/// database against what IFA demands:
///   * every record holds its last committed value, unless a *surviving*
///     active transaction updated it, in which case it must hold that
///     transaction's value (no lost surviving updates — IFA half 2);
///   * no crashed transaction's value is visible anywhere (all crashed
///     effects undone — IFA half 1);
///   * the index shows exactly the committed entries adjusted by surviving
///     active transactions' pending inserts/logical deletes;
///   * crashed transactions hold no locks; surviving active transactions
///     still hold all their 2PL locks.
class IfaChecker : public TxnObserver {
 public:
  explicit IfaChecker(Database* db) : db_(db) {}

  /// Registers the heap table (records start zero-filled and committed).
  void RegisterTable(const std::vector<RecordId>& rids);

  // TxnObserver --------------------------------------------------------
  void OnUpdate(TxnId txn, RecordId rid,
                const std::vector<uint8_t>& value) override;
  void OnIndexInsert(TxnId txn, uint32_t tree, uint64_t key,
                     RecordId rid) override;
  void OnIndexDelete(TxnId txn, uint32_t tree, uint64_t key) override;
  void OnCommit(TxnId txn) override;
  void OnAbort(TxnId txn) override;

  // Verification -------------------------------------------------------
  Status VerifyRecords();
  Status VerifyIndex();
  Status VerifyLocks();
  Status VerifyAll();

  /// Structured description of the first check that failed, so forensic
  /// reports can target the offending object (log chain, lock state)
  /// without parsing the Corruption message. `rid` is set for kRecord,
  /// `key` for kIndex; kLock violations carry only the detail string.
  struct Violation {
    enum class Kind : uint8_t { kRecord, kIndex, kLock };
    Kind kind = Kind::kRecord;
    RecordId rid;
    uint64_t key = 0;
    std::string detail;
  };

  /// The violation behind the most recent failed Verify* call; nullopt
  /// after a clean pass (each Verify* clears it on entry).
  const std::optional<Violation>& last_violation() const {
    return last_violation_;
  }

  size_t committed_records() const { return committed_.size(); }

 private:
  struct IdxOp {
    bool insert = false;
    uint64_t key = 0;
    RecordId rid;
  };
  struct Pending {
    std::map<RecordId, std::vector<uint8_t>> records;
    std::vector<IdxOp> index_ops;
  };

  /// Records the violation and returns the matching Corruption status.
  Status Fail(Violation v);

  /// Guards committed_/committed_index_/pending_: observer callbacks arrive
  /// from concurrent execution workers. Commutes with footprint-disjoint
  /// batching — 2PL keeps concurrent committers' record sets disjoint, and
  /// the executor admits at most one index-touching pick per batch, so
  /// committed_index_ mutations never race on a key. Verify* runs at
  /// quiescent points only.
  mutable std::mutex mu_;
  Database* db_;
  std::map<RecordId, std::vector<uint8_t>> committed_;
  std::map<uint64_t, RecordId> committed_index_;
  std::map<TxnId, Pending> pending_;
  std::optional<Violation> last_violation_;
};

}  // namespace smdb

#endif  // SMDB_CORE_IFA_CHECKER_H_
