#include "core/recovery_manager.h"

#include <algorithm>
#include <sstream>
#include <unordered_map>

#include "common/atomic_util.h"
#include "core/database.h"
#include "core/on_demand.h"
#include "core/stable_state.h"
#include "db/page_layout.h"
#include "obs/trace.h"

namespace smdb {

const char* RecoveryPhaseName(RecoveryPhase phase) {
  switch (phase) {
    case RecoveryPhase::kLogAnalysis: return "log_analysis";
    case RecoveryPhase::kReboot: return "reboot";
    case RecoveryPhase::kReload: return "reload";
    case RecoveryPhase::kRedo: return "redo";
    case RecoveryPhase::kUndo: return "undo";
    case RecoveryPhase::kTagScan: return "tag_scan";
    case RecoveryPhase::kLockRebuild: return "lock_rebuild";
  }
  return "unknown";
}

std::string RecoveryOutcome::ToString() const {
  std::ostringstream os;
  os << "crashed=[";
  for (size_t i = 0; i < crashed_nodes.size(); ++i) {
    if (i > 0) os << ",";
    os << crashed_nodes[i];
  }
  os << "] annulled=" << annulled.size() << " preserved=" << preserved.size()
     << " forced_aborts=" << forced_aborts.size()
     << " redo_applied=" << redo_applied << " redo_skipped=" << redo_skipped
     << " undo_applied=" << undo_applied
     << " pages_reloaded=" << pages_reloaded
     << " lines_reinstalled=" << lines_reinstalled
     << " lcb_lines_cleared=" << lcb_lines_cleared
     << " lcbs_rebuilt=" << lcbs_rebuilt << " locks_dropped=" << locks_dropped
     << " tags_scanned=" << tags_scanned << " tag_undos=" << tag_undos
     << " recovery_time_ns=" << recovery_time_ns;
  for (size_t i = 0; i < kNumRecoveryPhases; ++i) {
    if (phase_ns[i] == 0) continue;
    os << " " << RecoveryPhaseName(static_cast<RecoveryPhase>(i))
       << "_ns=" << phase_ns[i];
  }
  os << (whole_machine_restart ? " WHOLE-MACHINE-RESTART" : "");
  return os.str();
}

RecoveryManager::RecoveryManager(Database* db) : db_(db) {}

namespace {

/// splitmix64 finaliser: spreads index keys across worker streams.
uint64_t Mix64(uint64_t x) {
  x ^= x >> 33;
  x *= 0xff51afd7ed558ccdULL;
  x ^= x >> 33;
  x *= 0xc4ceb9fe1a85ec53ULL;
  x ^= x >> 33;
  return x;
}

uint64_t KeyPartition(const IndexOpPayload& op) {
  return Mix64(op.key ^ (uint64_t{op.tree_id} << 32));
}

/// Pins worker stream i to survivors[i % survivors]: with W <= survivors
/// each stream owns a distinct node clock; with W > survivors the extra
/// streams share performers (the simulator has no more parallelism to
/// give, but determinism is preserved).
void PinStreams(std::vector<NodeId>* streams, uint32_t threads,
                const std::vector<NodeId>& survivors) {
  streams->clear();
  for (uint32_t i = 0; i < threads; ++i) {
    streams->push_back(survivors[i % survivors.size()]);
  }
}

}  // namespace

void RecoveryManager::ForEachNodeParallel(
    const Ctx& ctx, const std::function<void(NodeId)>& fn) {
  const uint16_t n = db_->machine().num_nodes();
  if (ctx.threads <= 1 || pool_ == nullptr) {
    for (NodeId i = 0; i < n; ++i) fn(i);
    return;
  }
  pool_->ParallelFor(n, [&](size_t i) { fn(static_cast<NodeId>(i)); });
}

NodeId RecoveryManager::RedoPerformer(Ctx& ctx, const LogRecord& rec) {
  if (ctx.threads <= 1) {
    // Legacy serial rule: a surviving node replays its own records.
    return db_->machine().NodeAlive(rec.node) ? rec.node : ctx.NextSurvivor();
  }
  if (rec.type == LogRecordType::kUpdate) {
    return ctx.StreamPerformer(rec.update().rid.page);
  }
  return ctx.StreamPerformer(KeyPartition(rec.index_op()));
}

NodeId RecoveryManager::UndoPerformer(Ctx& ctx, const LogRecord& rec) {
  if (ctx.threads <= 1) return ctx.NextSurvivor();
  if (rec.type == LogRecordType::kUpdate) {
    return ctx.StreamPerformer(rec.update().rid.page);
  }
  return ctx.StreamPerformer(KeyPartition(rec.index_op()));
}

bool RecoveryManager::CommittedInStableLog(TxnId txn) const {
  bool committed = false;
  db_->log().ForEachStable(TxnNode(txn), [&](const LogRecord& rec) {
    if (rec.txn == txn && rec.type == LogRecordType::kCommit) {
      committed = true;
    }
  });
  return committed;
}

Status RecoveryManager::BuildContext(const std::vector<NodeId>& crashed,
                                     Ctx* ctx) {
  ctx->crashed = crashed;
  ctx->crashed_set.insert(crashed.begin(), crashed.end());
  for (NodeId n = 0; n < db_->machine().num_nodes(); ++n) {
    if (db_->machine().NodeAlive(n)) {
      ctx->survivors.push_back(n);
    } else {
      // Includes nodes still down from earlier crashes, not just the new
      // ones: their stale tags and residual log records are equally live.
      ctx->dead_set.insert(n);
    }
  }
  // survivors may be empty (every node failed); Run falls back to a
  // whole-machine restart in that case.
  // In a real system the crashed nodes' active transactions are identified
  // from the (recovered) lock table and the stable logs; the TxnManager's
  // transaction table stands in for that analysis here.
  for (NodeId c : ctx->crashed) {
    for (Transaction* t : db_->txn().ActiveOn(c)) {
      ctx->crashed_active.push_back(t);
      ctx->crashed_active_ids.insert(t->id);
      ctx->out.annulled.push_back(t->id);
    }
  }
  for (Transaction* t : db_->txn().ActiveAll()) {
    ctx->uncommitted_ids.insert(t->id);
    if (!ctx->crashed_set.contains(t->node())) {
      ctx->surviving_active.push_back(t);
      ctx->preserved_ids.insert(t->id);
      ctx->out.preserved.push_back(t->id);
    }
  }
  // Transactions visible in any stable log without a commit *or abort*
  // record are uncommitted too (e.g. an abort whose CLRs died with the
  // volatile tail). A stable Abort record implies the CLRs are stable as
  // well (log forces move the whole tail), so such transactions are fully
  // handled by the repeating-history redo pass. Every node's stable log is
  // scanned — not just the newly-crashed ones' — because a steal flush can
  // strand an uncommitted update in the stable database long after its
  // transaction's node crashed (or crashed and restarted), and the
  // compensations a previous recovery wrote for it are themselves volatile
  // until flushed or forced.
  // The per-node log analysis fans out over the pool when recovery_threads
  // > 1 — each task reads one node's logs into its own slot (host-side
  // only), and the final set unions are sequential and order-independent,
  // so the classification is identical to the serial scan.
  const uint16_t num_nodes = db_->machine().num_nodes();
  std::vector<std::set<TxnId>> node_volatile_finished(num_nodes);
  std::vector<std::set<TxnId>> node_uncommitted(num_nodes);
  ForEachNodeParallel(*ctx, [&](NodeId c) {
    std::set<TxnId> begun, finished;
    db_->log().ForEachStable(c, [&](const LogRecord& rec) {
      if (rec.txn == kInvalidTxn) return;
      if (rec.type == LogRecordType::kCommit ||
          rec.type == LogRecordType::kAbort) {
        finished.insert(rec.txn);
      } else {
        begun.insert(rec.txn);
      }
    });
    std::set<TxnId> tail_finished;
    if (db_->machine().NodeAlive(c)) {
      // A live node's volatile tail is intact and authoritative: an abort
      // record there means the rollback already ran on this node's own log.
      // (A volatile-only *commit* is a pending group commit — unacknowledged
      // by construction, and excluding it from the uncommitted set here is
      // right: its node is alive, nothing needs redoing or undoing, and it
      // completes when its batch is forced after recovery.) Without
      // this, a normally-aborted transaction whose pre-abort updates were
      // forced stable would be re-flagged and re-undone on every recovery.
      // RebootAll destroys these tails, so the exclusions are recorded in
      // volatile_finished and revoked there.
      db_->log().ForEachAll(c, [&](const LogRecord& rec) {
        if (rec.type == LogRecordType::kCommit ||
            rec.type == LogRecordType::kAbort) {
          tail_finished.insert(rec.txn);
        }
      });
    }
    for (TxnId t : begun) {
      if (finished.contains(t)) continue;
      if (tail_finished.contains(t)) {
        node_volatile_finished[c].insert(t);
      } else {
        node_uncommitted[c].insert(t);
      }
    }
  });
  for (NodeId c = 0; c < num_nodes; ++c) {
    ctx->volatile_finished.insert(node_volatile_finished[c].begin(),
                                  node_volatile_finished[c].end());
    ctx->uncommitted_ids.insert(node_uncommitted[c].begin(),
                                node_uncommitted[c].end());
  }
  return Status::Ok();
}

Status RecoveryManager::TimedPhase(Ctx& ctx, RecoveryPhase phase,
                                   const std::function<Status()>& body) {
  Machine& m = db_->machine();
  const SimTime t0 = m.GlobalTime();
  Status s = body();
  const SimTime dt = m.GlobalTime() - t0;
  ctx.out.phase_ns[static_cast<size_t>(phase)] += dt;
  if (!ctx.survivors.empty()) {
    SMDB_TRACE(db_->tracer_ptr(),
               {.kind = TraceEventKind::kRecoveryPhase,
                .node = ctx.survivors.front(),
                .ts = t0,
                .dur = dt,
                .label = RecoveryPhaseName(phase)});
  }
  return s;
}

Status RecoveryManager::ApplyRedoUpdate(Ctx& ctx, NodeId performer,
                                        const LogRecord& rec) {
  const UpdatePayload& u = rec.update();
  RecordStore& rs = db_->records();
  SMDB_ASSIGN_OR_RETURN(SlotImage cur, rs.ReadSlot(performer, u.rid));
  // Atomic: the on-demand sweeper batches disjoint-page redo applies onto
  // pool threads, which share these counters.
  if (cur.usn >= u.usn) {
    AtomicInc(ctx.out.redo_skipped);
    return Status::Ok();
  }
  AtomicInc(ctx.out.redo_applied);
  uint16_t tag = kTagNone;
  if (!u.is_clr && db_->config().recovery.undo_tagging() &&
      ctx.uncommitted_ids.contains(rec.txn)) {
    tag = TagForNode(TxnNode(rec.txn));
  }
  SlotImage img;
  img.usn = u.usn;
  img.tag = tag;
  img.data = u.after;
  Machine& m = db_->machine();
  LineAddr header_line = rs.HeaderLine(u.rid.page);
  LineAddr record_line = rs.SlotLine(u.rid);
  SMDB_RETURN_IF_ERROR(m.GetLine(performer, header_line));
  Status st = m.GetLine(performer, record_line);
  if (!st.ok()) {
    m.ReleaseLine(performer, header_line);
    return st;
  }
  Status s = rs.WriteSlot(performer, u.rid, img);
  if (s.ok()) s = rs.WritePageLsn(performer, u.rid.page, u.usn);
  m.ReleaseLine(performer, record_line);
  m.ReleaseLine(performer, header_line);
  SMDB_RETURN_IF_ERROR(s);
  // The redone update's log record lives on rec.node; if that node was not
  // lost in the crash, the WAL gate must still cover it before any future
  // flush. Keyed on the crash-time dead set, not current liveness: lazy
  // discharge can run after the node restarted, and a restart does not
  // resurrect the lost volatile tail.
  if (!ctx.dead_set.contains(rec.node)) {
    db_->wal_table().NoteUpdate(u.rid.page, rec.node, rec.lsn);
  }
  db_->buffers().MarkDirty(u.rid.page);
  return Status::Ok();
}

Status RecoveryManager::ApplyRedoIndexOp(Ctx& ctx, NodeId performer,
                                         const LogRecord& rec) {
  const IndexOpPayload& op = rec.index_op();
  uint16_t tag = kTagNone;
  if (!op.is_clr && db_->config().recovery.undo_tagging() &&
      ctx.uncommitted_ids.contains(rec.txn)) {
    tag = TagForNode(TxnNode(rec.txn));
  }
  // RedoIndexOp is internally USN-guarded; count its effect by probing.
  SMDB_ASSIGN_OR_RETURN(auto before, db_->index().GetEntry(performer, op.key));
  bool would_apply = !before.has_value() || before->usn < op.usn;
  SMDB_RETURN_IF_ERROR(db_->index().RedoIndexOp(performer, op, tag));
  if (would_apply) {
    ++ctx.out.redo_applied;
  } else {
    ++ctx.out.redo_skipped;
  }
  return Status::Ok();
}

Status RecoveryManager::ApplyRedoStructural(Ctx& ctx, NodeId performer,
                                            const LogRecord& rec) {
  const StructuralPayload& sp = rec.structural();
  (void)performer;
  for (const auto& [page, image] : sp.page_images) {
    auto base = db_->buffers().BaseOf(page);
    if (!base.ok()) return base.status();
    uint64_t cur_lsn = 0;
    Status s = db_->machine().SnoopRead(
        *base + PageLayout::kPageLsnOffset, &cur_lsn, 8);
    // A spliced page's surviving Page-LSN vouches only for the lines that
    // survived — a reinstalled pre-split entry line can hide behind a
    // post-split header. Install the image unconditionally; the sorted
    // entry-level replay re-applies anything newer.
    if (s.ok() && cur_lsn >= sp.usn && !ctx.spliced_pages.contains(page)) {
      ++ctx.out.redo_skipped;
      continue;  // this or a later state is already in place
    }
    // Header lost or pre-change state: install the post-change image.
    // Sorted replay re-applies any higher-USN entry updates afterwards.
    db_->machine().InstallToMemory(*base, image.data(), image.size());
    db_->buffers().MarkDirty(page);
    ++ctx.out.redo_applied;
  }
  return Status::Ok();
}

Status RecoveryManager::ReplayLogsWithGuard(Ctx& ctx) {
  std::vector<LogRecord> records;
  SMDB_RETURN_IF_ERROR(CollectRedoRecords(ctx, &records));
  return ApplyRedoRecords(ctx, records);
}

Status RecoveryManager::CollectRedoRecords(Ctx& ctx,
                                           std::vector<LogRecord>* out) {
  Machine& m = db_->machine();
  // Gather the redo-relevant records from every reachable log, then apply
  // them in global USN order. Record updates are order-free under the USN
  // guard (each carries the full after-image), but logical index operations
  // are not: a delete replayed before the insert it follows would be
  // dropped. Strict 2PL makes USN order consistent with the original
  // execution order on every object, so a single sorted pass repeats
  // history exactly.
  // The collection is partitioned by log: one task per node-log, each
  // filling its own slot (log scans are pure host-side reads — the
  // simulator is never touched from pool threads). Each node's log is
  // USN-monotone in LSN order, so the slots are pre-sorted runs and the
  // global sort below is effectively the deterministic k-way merge of the
  // per-node streams; its result is independent of scan scheduling.
  std::vector<std::vector<LogRecord>> per_node(m.num_nodes());
  ForEachNodeParallel(ctx, [&](NodeId n) {
    Lsn start = db_->log().checkpoint_lsn(n);
    auto visit = [&](const LogRecord& rec) {
      if (rec.lsn <= start && start != kInvalidLsn) return;
      if (rec.type == LogRecordType::kUpdate ||
          rec.type == LogRecordType::kIndexOp ||
          rec.type == LogRecordType::kStructural) {
        per_node[n].push_back(rec);
      }
    };
    if (m.NodeAlive(n)) {
      db_->log().ForEachAll(n, visit);
    } else {
      db_->log().ForEachStable(n, visit);
    }
  });
  std::vector<LogRecord>& records = *out;
  {
    size_t total = 0;
    for (const auto& v : per_node) total += v.size();
    records.reserve(total);
    for (auto& v : per_node) {
      records.insert(records.end(), v.begin(), v.end());
    }
  }
  auto usn_of = [](const LogRecord& rec) {
    switch (rec.type) {
      case LogRecordType::kUpdate: return rec.update().usn;
      case LogRecordType::kIndexOp: return rec.index_op().usn;
      default: return rec.structural().usn;
    }
  };
  // USNs are globally unique, so this order is total and deterministic.
  std::sort(records.begin(), records.end(),
            [&](const LogRecord& a, const LogRecord& b) {
              return usn_of(a) < usn_of(b);
            });
  return Status::Ok();
}

Status RecoveryManager::ApplyRedoRecords(Ctx& ctx,
                                         const std::vector<LogRecord>& records) {
  // Structural changes first: index redo descends the tree, so the tree's
  // routing structure must be re-established before any entry-level record
  // is replayed (a reloaded pre-split root routes into garbage). The
  // Page-LSN and entry-USN guards make the two-phase order equivalent to a
  // strict USN-ordered replay.
  for (const LogRecord& rec : records) {
    if (rec.type != LogRecordType::kStructural) continue;
    SMDB_RETURN_IF_ERROR(ApplyRedoStructural(ctx, ctx.NextSurvivor(), rec));
  }
  // On-demand prefix: entry-level records are discharged lazily (first
  // touch or sweep), in this same global-USN order for whatever remains at
  // drain time.
  if (ctx.lazy) return Status::Ok();
  // Entry-level replay stays in global USN order regardless of thread
  // count (the partitioned streams change *who* performs each record, not
  // *when*): same-page records replay in USN order by construction, and the
  // applied/skipped decisions — which depend only on coherent page state,
  // not on the performer — are identical across worker counts.
  for (const LogRecord& rec : records) {
    if (rec.type == LogRecordType::kStructural) continue;
    NodeId performer = RedoPerformer(ctx, rec);
    if (rec.type == LogRecordType::kUpdate) {
      SMDB_RETURN_IF_ERROR(ApplyRedoUpdate(ctx, performer, rec));
    } else {
      SMDB_RETURN_IF_ERROR(ApplyRedoIndexOp(ctx, performer, rec));
    }
  }
  return Status::Ok();
}

Status RecoveryManager::UndoCrashedFromStableLogs(Ctx& ctx) {
  UndoWork work;
  SMDB_RETURN_IF_ERROR(CollectUndoWork(ctx, &work));
  const std::vector<LogRecord>& to_undo = work.to_undo;
  const auto& clr_slots = work.clr_slots;
  const auto& clr_keys = work.clr_keys;

  // A previous recovery's compensation chain for one of these transactions
  // can be split across several performers' logs (the undo pass round-robins
  // survivors), so a later crash can lose its tail while the redo pass
  // replays its surviving prefix. That leaves the object at an intermediate
  // CLR state whose USN matches no original record — which the engagement
  // guard would misread as "legitimately overwritten" and strand the object
  // mid-rollback. Pre-seed the engagement map: if an object's current USN
  // was produced by a CLR of a transaction being undone here, resume that
  // transaction's chain. Re-undoing an already-compensated record is value-
  // safe — the chain re-converges to the oldest before image.
  TxnManager::UndoEngagement eng;
  std::set<RecordId> seeded_rids;
  std::set<std::pair<uint32_t, uint64_t>> seeded_keys;
  for (const LogRecord& rec : to_undo) {
    if (rec.type == LogRecordType::kUpdate) {
      RecordId rid = rec.update().rid;
      if (!seeded_rids.insert(rid).second) continue;
      SMDB_ASSIGN_OR_RETURN(
          SlotImage cur, db_->records().ReadSlot(UndoPerformer(ctx, rec), rid));
      auto it = clr_slots.find(cur.usn);
      if (it != clr_slots.end() && it->second.second == rid) {
        eng.records[rid] = it->second.first;
      }
    } else {
      const IndexOpPayload& op = rec.index_op();
      std::pair<uint32_t, uint64_t> key{op.tree_id, op.key};
      if (!seeded_keys.insert(key).second) continue;
      SMDB_ASSIGN_OR_RETURN(
          auto entry, db_->index().GetEntry(UndoPerformer(ctx, rec), op.key));
      if (!entry.has_value()) continue;
      auto it = clr_keys.find(entry->usn);
      if (it != clr_keys.end() && it->second.second == key) {
        eng.keys[key] = it->second.first;
      }
    }
  }
  // The apply loop keeps the exact reverse-USN global order for every
  // thread count — ApplyUndo* allocates a fresh USN per CLR, so the
  // allocation order (and therefore all recovered page bytes) must be
  // thread-count-invariant. Partitioning changes only the performer, which
  // only affects performance state (clocks, cache residency, CLR log
  // placement).
  for (const LogRecord& rec : to_undo) {
    NodeId performer = UndoPerformer(ctx, rec);
    if (rec.type == LogRecordType::kUpdate) {
      SMDB_RETURN_IF_ERROR(db_->txn().ApplyUndoUpdate(performer, rec, &eng));
    } else {
      SMDB_RETURN_IF_ERROR(db_->txn().ApplyUndoIndexOp(performer, rec, &eng));
    }
    ++ctx.out.undo_applied;
  }
  return Status::Ok();
}

Status RecoveryManager::CollectUndoWork(Ctx& ctx, UndoWork* out) {
  // Collect every non-CLR update/index record of uncommitted dead
  // transactions from every stable log, to undo in reverse USN order.
  // Surviving active transactions are excluded — their (stolen) updates are
  // exactly what IFA preserves. The all-node scan re-derives undo work left
  // over from earlier crashes whose compensations were since lost; the
  // engagement guard in ApplyUndo* turns already-compensated records into
  // no-ops, so re-undoing is safe.
  // Partitioned by stable log: one scan task per node, merged below. The
  // reverse-USN sort restores a single deterministic order (USNs are
  // globally unique), so the undo schedule is identical across thread
  // counts.
  std::vector<std::vector<LogRecord>> undo_per_node(
      db_->machine().num_nodes());
  ForEachNodeParallel(ctx, [&](NodeId c) {
    db_->log().ForEachStable(c, [&](const LogRecord& rec) {
      if (!ctx.uncommitted_ids.contains(rec.txn)) return;
      if (ctx.preserved_ids.contains(rec.txn)) return;
      if (rec.type == LogRecordType::kUpdate && !rec.update().is_clr) {
        undo_per_node[c].push_back(rec);
      } else if (rec.type == LogRecordType::kIndexOp &&
                 !rec.index_op().is_clr) {
        undo_per_node[c].push_back(rec);
      }
    });
  });
  std::vector<LogRecord> to_undo;
  for (auto& v : undo_per_node) {
    to_undo.insert(to_undo.end(), v.begin(), v.end());
  }
  std::sort(to_undo.begin(), to_undo.end(),
            [](const LogRecord& a, const LogRecord& b) {
              uint64_t ua = a.type == LogRecordType::kUpdate
                                ? a.update().usn
                                : a.index_op().usn;
              uint64_t ub = b.type == LogRecordType::kUpdate
                                ? b.update().usn
                                : b.index_op().usn;
              return ua > ub;  // reverse order
            });

  // A previous recovery's compensation chain for one of these transactions
  // can be split across several performers' logs (the undo pass round-robins
  // survivors), so a later crash can lose its tail while the redo pass
  // replays its surviving prefix. That leaves the object at an intermediate
  // CLR state whose USN matches no original record — which the engagement
  // guard would misread as "legitimately overwritten" and strand the object
  // mid-rollback. Pre-seed the engagement map: if an object's current USN
  // was produced by a CLR of a transaction being undone here, resume that
  // transaction's chain. Re-undoing an already-compensated record is value-
  // safe — the chain re-converges to the oldest before image.
  std::set<TxnId> undo_txns;
  for (const LogRecord& rec : to_undo) undo_txns.insert(rec.txn);
  std::map<uint64_t, std::pair<TxnId, RecordId>> clr_slots;
  std::map<uint64_t, std::pair<TxnId, std::pair<uint32_t, uint64_t>>>
      clr_keys;
  Machine& m = db_->machine();
  // Per-node CLR maps filled in parallel, then merged. USNs are globally
  // unique, so the per-node maps are disjoint and the merge order is
  // irrelevant.
  std::vector<std::map<uint64_t, std::pair<TxnId, RecordId>>> node_clr_slots(
      m.num_nodes());
  std::vector<std::map<uint64_t, std::pair<TxnId, std::pair<uint32_t,
                                                            uint64_t>>>>
      node_clr_keys(m.num_nodes());
  ForEachNodeParallel(ctx, [&](NodeId n) {
    auto visit = [&](const LogRecord& rec) {
      if (!undo_txns.contains(rec.txn)) return;
      if (rec.type == LogRecordType::kUpdate && rec.update().is_clr) {
        node_clr_slots[n][rec.update().usn] = {rec.txn, rec.update().rid};
      } else if (rec.type == LogRecordType::kIndexOp &&
                 rec.index_op().is_clr) {
        const IndexOpPayload& op = rec.index_op();
        node_clr_keys[n][op.usn] = {rec.txn, {op.tree_id, op.key}};
      }
    };
    if (m.NodeAlive(n)) {
      db_->log().ForEachAll(n, visit);
    } else {
      db_->log().ForEachStable(n, visit);
    }
  });
  for (NodeId n = 0; n < m.num_nodes(); ++n) {
    clr_slots.merge(node_clr_slots[n]);
    clr_keys.merge(node_clr_keys[n]);
  }
  out->to_undo = std::move(to_undo);
  out->clr_slots = std::move(clr_slots);
  out->clr_keys = std::move(clr_keys);
  return Status::Ok();
}

Status RecoveryManager::TagScanUndo(Ctx& ctx) {
  Machine& m = db_->machine();
  RecordStore& rs = db_->records();
  BTree& index = db_->index();

  StableStateReconstructor reconstructor(&m, &db_->log(), &db_->buffers(),
                                         &rs, ctx.uncommitted_ids);

  // Map USN -> owning txn from every stable log, to distinguish "tag stale
  // because the commit beat the tag-clear" from "uncommitted". Built in
  // parallel (per-node maps over disjoint USNs), merged sequentially.
  std::unordered_map<uint64_t, TxnId> usn_owner;
  std::vector<std::unordered_map<uint64_t, TxnId>> node_owner(m.num_nodes());
  ForEachNodeParallel(ctx, [&](NodeId c) {
    db_->log().ForEachStable(c, [&](const LogRecord& rec) {
      if (rec.type == LogRecordType::kUpdate) {
        node_owner[c][rec.update().usn] = rec.txn;
      } else if (rec.type == LogRecordType::kIndexOp) {
        node_owner[c][rec.index_op().usn] = rec.txn;
      }
    });
  });
  for (NodeId c = 0; c < m.num_nodes(); ++c) usn_owner.merge(node_owner[c]);
  auto stale_committed_tag = [&](uint64_t usn, NodeId tagged) {
    auto it = usn_owner.find(usn);
    if (it != usn_owner.end()) {
      return !ctx.uncommitted_ids.contains(it->second);
    }
    // Not in any stable log. A tagged USN was appended to the tagged node's
    // own log, which is USN-monotone in LSN order: at or below that node's
    // truncation high-water mark, the record was reclaimed by a checkpoint
    // (only finished transactions' records are; the commit beat the
    // tag-clear). Above the mark, it only ever existed in the node's lost
    // volatile tail — uncommitted.
    return usn <= db_->log().max_truncated_usn(tagged);
  };

  // The scan is split into a collect phase and an apply phase. Collection
  // walks each survivor's cache in node order (survivor caches can share
  // replicated lines, so the same record may be found by several scanners —
  // first finder wins, like the legacy interleaved scan). Application then
  // runs in a *canonical* order — heap undos by record id, index undos by
  // (leaf, slot), stale-tag clears last — independent of which survivor
  // found what. That matters because every tag undo allocates a fresh
  // global USN: a canonical apply order makes the USN assignment (and
  // therefore all recovered page bytes) identical for every worker count,
  // which is what the differential oracle checks.
  struct HeapCand {
    RecordId rid;
    uint64_t usn = 0;  // observed at collect time, drives classification
    NodeId found_on = 0;
    bool stale_clear = false;
  };
  struct IdxCand {
    BTree::EntryRef ref;
    NodeId found_on = 0;
    bool stale_clear = false;
  };
  std::vector<HeapCand> heap_cands;
  std::vector<IdxCand> idx_cands;
  std::set<RecordId> seen_rids;
  std::set<std::pair<PageId, uint16_t>> seen_slots;

  for (NodeId s : ctx.survivors) {
    // Snapshot the resident lines first (collection itself reads only).
    std::vector<LineAddr> lines;
    m.cache(s).ForEachLine(
        [&](LineAddr line, const Cache::Entry&) { lines.push_back(line); });
    for (LineAddr line : lines) {
      ++ctx.out.tags_scanned;
      // --- Heap records ---
      for (RecordId rid : rs.SlotsInLine(line)) {
        SMDB_ASSIGN_OR_RETURN(SlotImage img, rs.ReadSlot(s, rid));
        if (img.tag == kTagNone) continue;
        NodeId tagged = NodeOfTag(img.tag);
        if (!ctx.dead_set.contains(tagged)) continue;
        // A tag minted after the crash (usn above the cutoff) belongs to a
        // restarted node's new traffic, not to this recovery (lazy drains
        // only — eager scans run before any restart).
        if (img.usn > ctx.tag_scan_usn_cutoff) continue;
        if (!seen_rids.insert(rid).second) continue;
        HeapCand c;
        c.rid = rid;
        c.usn = img.usn;
        c.found_on = s;
        c.stale_clear = stale_committed_tag(img.usn, tagged);
        heap_cands.push_back(c);
      }
      // --- Index entries ---
      for (const auto& ref : index.EntriesInLine(line)) {
        if (ref.entry.tag == kTagNone) continue;
        NodeId tagged = NodeOfTag(ref.entry.tag);
        if (!ctx.dead_set.contains(tagged)) continue;
        if (ref.entry.usn > ctx.tag_scan_usn_cutoff) continue;
        if (!seen_slots.insert({ref.leaf, ref.slot}).second) continue;
        IdxCand c;
        c.ref = ref;
        c.found_on = s;
        c.stale_clear = stale_committed_tag(ref.entry.usn, tagged);
        idx_cands.push_back(c);
      }
    }
  }

  std::sort(heap_cands.begin(), heap_cands.end(),
            [](const HeapCand& a, const HeapCand& b) { return a.rid < b.rid; });
  std::sort(idx_cands.begin(), idx_cands.end(),
            [](const IdxCand& a, const IdxCand& b) {
              return std::pair{a.ref.leaf, a.ref.slot} <
                     std::pair{b.ref.leaf, b.ref.slot};
            });

  // Serial keeps the finding survivor as performer (the legacy
  // assignment); W > 1 routes each undo to its partition's stream.
  auto heap_performer = [&](const HeapCand& c) {
    return ctx.threads <= 1 ? c.found_on : ctx.StreamPerformer(c.rid.page);
  };
  auto idx_performer = [&](const IdxCand& c) {
    return ctx.threads <= 1 ? c.found_on
                            : ctx.StreamPerformer(Mix64(c.ref.entry.key));
  };

  // Owning transaction of a tagged USN, for the tag-decision trace (and
  // forensics); kInvalidTxn when the record only ever lived in a lost tail.
  auto owner_of = [&](uint64_t usn) {
    auto it = usn_owner.find(usn);
    return it != usn_owner.end() ? it->second : kInvalidTxn;
  };
  for (const HeapCand& c : heap_cands) {
    NodeId p = heap_performer(c);
    const uint64_t rid_enc =
        (static_cast<uint64_t>(c.rid.page) << 16) | c.rid.slot;
    if (c.stale_clear) {
      // Commit happened; only the tag-clear was lost. Clear it now.
      LineAddr line = rs.SlotLine(c.rid);
      SMDB_RETURN_IF_ERROR(m.GetLine(p, line));
      Status st = rs.WriteTag(p, c.rid, kTagNone);
      m.ReleaseLine(p, line);
      SMDB_RETURN_IF_ERROR(st);
      SMDB_TRACE(db_->tracer_ptr(),
                 {.kind = TraceEventKind::kTagDecision,
                  .node = p,
                  .txn = owner_of(c.usn),
                  .ts = m.NodeClock(p),
                  .a = rid_enc,
                  .b = c.usn,
                  .label = "heap-stale"});
      continue;
    }
    // Undo: install the last committed value (from stable store).
    SMDB_ASSIGN_OR_RETURN(SlotImage committed,
                          reconstructor.CommittedValue(p, c.rid));
    LineAddr header_line = rs.HeaderLine(c.rid.page);
    LineAddr record_line = rs.SlotLine(c.rid);
    SMDB_RETURN_IF_ERROR(m.GetLine(p, header_line));
    Status st = m.GetLine(p, record_line);
    if (!st.ok()) {
      m.ReleaseLine(p, header_line);
      return st;
    }
    uint64_t usn = db_->usn().Next();
    SlotImage img2;
    img2.usn = usn;
    img2.tag = kTagNone;
    img2.data = committed.data;
    Status w = rs.WriteSlot(p, c.rid, img2);
    if (w.ok()) w = rs.WritePageLsn(p, c.rid.page, usn);
    m.ReleaseLine(p, record_line);
    m.ReleaseLine(p, header_line);
    SMDB_RETURN_IF_ERROR(w);
    db_->buffers().MarkDirty(c.rid.page);
    ++ctx.out.tag_undos;
    ++ctx.out.undo_applied;
    SMDB_TRACE(db_->tracer_ptr(),
               {.kind = TraceEventKind::kTagDecision,
                .node = p,
                .txn = owner_of(c.usn),
                .ts = m.NodeClock(p),
                .a = rid_enc,
                .b = c.usn,
                .label = "heap-undo"});
  }
  for (const IdxCand& c : idx_cands) {
    NodeId p = idx_performer(c);
    if (c.stale_clear) {
      SMDB_RETURN_IF_ERROR(index.ClearTag(p, c.ref.entry.key));
      SMDB_TRACE(db_->tracer_ptr(),
                 {.kind = TraceEventKind::kTagDecision,
                  .node = p,
                  .txn = owner_of(c.ref.entry.usn),
                  .ts = m.NodeClock(p),
                  .a = c.ref.entry.key,
                  .b = c.ref.entry.usn,
                  .label = "index-stale"});
      continue;
    }
    if (c.ref.entry.state == LeafEntryState::kLive) {
      // Undo of an uncommitted insert: physically remove this entry.
      // RemoveEntryAt blanks the slot in place (no compaction), so the
      // (leaf, slot) references collected above stay valid throughout.
      SMDB_RETURN_IF_ERROR(index.RemoveEntryAt(p, c.ref.leaf, c.ref.slot));
    } else {
      // Undo of an uncommitted logical delete: unmark this entry.
      SMDB_RETURN_IF_ERROR(index.UnmarkEntryAt(p, c.ref.leaf, c.ref.slot));
    }
    ++ctx.out.tag_undos;
    ++ctx.out.undo_applied;
    SMDB_TRACE(db_->tracer_ptr(),
               {.kind = TraceEventKind::kTagDecision,
                .node = p,
                .txn = owner_of(c.ref.entry.usn),
                .ts = m.NodeClock(p),
                .a = c.ref.entry.key,
                .b = c.ref.entry.usn,
                .label = "index-undo"});
  }
  return Status::Ok();
}

Status RecoveryManager::RecoverLockTable(Ctx& ctx) {
  LockTable& locks = db_->locks();
  NodeId performer = ctx.NextSurvivor();

  ctx.out.lcb_lines_cleared = locks.ClearLostLines();

  // 1. Release every lock of every crashed transaction that survived in
  // LCBs on live nodes (IFA lock guarantee 1). Posthumously-resolved group
  // commits (dead node, durable commit record) join the drop set: their
  // transactions are committed but could not release locks through their
  // dead node's log.
  std::set<TxnId> drop_ids = ctx.crashed_active_ids;
  drop_ids.insert(db_->txn().resolved_commit_ids().begin(),
                  db_->txn().resolved_commit_ids().end());
  if (!drop_ids.empty()) {
    SMDB_ASSIGN_OR_RETURN(int dropped,
                          locks.DropTxnLocks(performer, drop_ids));
    ctx.out.locks_dropped = dropped;
  }

  // 2. Rebuild lock state of surviving active transactions whose LCBs were
  // destroyed (IFA lock guarantee 2), by folding each survivor's logical
  // lock-op records — acquisitions (read and write), queued requests and
  // releases — into per-name LCB images.
  if (!db_->config().recovery.log_lock_ops) return Status::Ok();

  std::map<uint64_t, Lcb> folded;
  std::set<TxnId> surviving_ids;
  for (Transaction* t : ctx.surviving_active) surviving_ids.insert(t->id);

  // Collect each survivor's lock-op records in parallel (host-side log
  // reads into per-node slots), then fold sequentially in survivor order —
  // the fold is order-sensitive (acquire/queue/release replay), so only
  // the scans are partitioned.
  std::vector<std::vector<LogRecord>> lock_ops(db_->machine().num_nodes());
  ForEachNodeParallel(ctx, [&](NodeId s) {
    if (ctx.dead_set.contains(s)) return;
    db_->log().ForEachAll(s, [&](const LogRecord& rec) {
      if (rec.type != LogRecordType::kLockOp) return;
      if (!surviving_ids.contains(rec.txn)) return;
      lock_ops[s].push_back(rec);
    });
  });
  for (NodeId s : ctx.survivors) {
    for (const LogRecord& rec : lock_ops[s]) {
      const LockOpPayload& op = rec.lock_op();
      Lcb& lcb = folded[op.lock_name];
      lcb.name = op.lock_name;
      auto erase_txn = [&](std::vector<LockEntry>& list) {
        for (size_t i = 0; i < list.size(); ++i) {
          if (list[i].txn == rec.txn) {
            list.erase(list.begin() + i);
            return;
          }
        }
      };
      switch (op.op) {
        case LockOpPayload::Op::kAcquire:
          erase_txn(lcb.holders);
          erase_txn(lcb.waiters);
          lcb.holders.push_back(LockEntry{rec.txn, op.mode});
          break;
        case LockOpPayload::Op::kQueue:
          erase_txn(lcb.waiters);
          lcb.waiters.push_back(LockEntry{rec.txn, op.mode});
          break;
        case LockOpPayload::Op::kRelease:
          erase_txn(lcb.holders);
          erase_txn(lcb.waiters);
          break;
      }
    }
  }

  for (auto& [name, expected] : folded) {
    if (expected.holders.empty() && expected.waiters.empty()) continue;
    SMDB_ASSIGN_OR_RETURN(Lcb current, locks.GetLcb(performer, name));
    auto same = [](const std::vector<LockEntry>& a,
                   const std::vector<LockEntry>& b) {
      if (a.size() != b.size()) return false;
      for (const auto& e : a) {
        if (std::find(b.begin(), b.end(), e) == b.end()) return false;
      }
      return true;
    };
    if (same(current.holders, expected.holders) &&
        same(current.waiters, expected.waiters)) {
      continue;  // LCB survived intact
    }
    SMDB_RETURN_IF_ERROR(locks.RebuildLcb(performer, expected));
    ++ctx.out.lcbs_rebuilt;
  }
  return Status::Ok();
}

Result<RecoveryOutcome> RecoveryManager::Run(
    const std::vector<NodeId>& crashed) {
  // A crash during the Recovering window supersedes the previous on-demand
  // recovery: its undischarged obligations are re-derived from stable logs
  // and the transaction table by this run (whole-machine reboots and the
  // eager baselines recover everything themselves).
  if (db_->on_demand() != nullptr) db_->on_demand()->Reset();
  Ctx ctx;
  ctx.threads = std::max<uint32_t>(1, db_->config().recovery.recovery_threads);
  if (ctx.threads > 1 &&
      (pool_ == nullptr || pool_->workers() != ctx.threads)) {
    pool_ = std::make_unique<ThreadPool>(ctx.threads);
  }
  Machine& m = db_->machine();
  m.SyncClocks();
  SimTime t0 = m.GlobalTime();
  // BuildContext performs no machine operations — its log scans are pure
  // host-side reads — so timing it as the analysis phase costs nothing and
  // changes nothing (dt is 0 in simulated time, but the span marks where
  // analysis sits in the recovery timeline).
  SMDB_RETURN_IF_ERROR(TimedPhase(
      ctx, RecoveryPhase::kLogAnalysis,
      [&] { return BuildContext(crashed, &ctx); }));
  ctx.out.crashed_nodes = ctx.crashed;

  Status s;
  if (ctx.survivors.empty()) {
    // Every node failed: there is no survivor left to run the distributed
    // recovery schemes, so this is a whole-machine crash regardless of the
    // configured protocol. The machine reboots and restarts from stable
    // storage. All active transactions were on crashed nodes, so they are
    // annulled (not "unnecessarily aborted") and IFA holds trivially.
    for (NodeId n = 0; n < m.num_nodes(); ++n) ctx.survivors.push_back(n);
    PinStreams(&ctx.streams, ctx.threads, ctx.survivors);
    s = RunRebootAll(ctx);
  } else {
    PinStreams(&ctx.streams, ctx.threads, ctx.survivors);
    switch (db_->config().recovery.restart) {
      case RestartKind::kRedoAll:
        s = RunRedoAll(ctx);
        break;
      case RestartKind::kSelectiveRedo:
        s = RunSelectiveRedo(ctx);
        break;
      case RestartKind::kRebootAll:
        s = RunRebootAll(ctx);
        break;
      case RestartKind::kAbortDependents:
        s = RunAbortDependents(ctx);
        break;
    }
  }
  SMDB_RETURN_IF_ERROR(s);

  // Parallel transactions (section 9): the crash of any participant node
  // aborts the entire transaction. Crashed branches were handled by the
  // scheme above; surviving branches roll back normally on their intact
  // logs. These aborts are required by atomicity — they are not counted as
  // "unnecessary".
  std::set<TxnId> sibling_aborts;
  for (Transaction* t : ctx.crashed_active) {
    const std::vector<TxnId>* group = db_->txn().GroupOf(t->id);
    if (group == nullptr) continue;
    for (TxnId sib : *group) {
      Transaction* st = db_->txn().Find(sib);
      if (st != nullptr && st->state == TxnState::kActive &&
          !ctx.crashed_set.contains(st->node())) {
        sibling_aborts.insert(sib);
      }
    }
  }
  // Under on-demand recovery the sibling rollbacks would interleave their
  // first-touch discharges (and the fresh USNs those allocate) between the
  // eager prefix and the lazy remainder — a different allocation order than
  // the eager pass, which runs these aborts after *all* recovery undo.
  // Crashed parallel groups are rare; drain first so the rollback runs on
  // fully recovered state in the eager order and stays digest-identical.
  if (!sibling_aborts.empty() && db_->on_demand() != nullptr) {
    SMDB_RETURN_IF_ERROR(db_->on_demand()->DrainAll());
  }
  for (TxnId sib : sibling_aborts) {
    SMDB_RETURN_IF_ERROR(db_->txn().Abort(db_->txn().Find(sib)));
    ctx.out.annulled.push_back(sib);
  }
  if (!sibling_aborts.empty()) {
    std::vector<TxnId> kept;
    for (TxnId t : ctx.out.preserved) {
      if (!sibling_aborts.contains(t)) kept.push_back(t);
    }
    ctx.out.preserved = std::move(kept);
  }

  // Annul the crashed transactions (their effects are undone now).
  for (Transaction* t : ctx.crashed_active) {
    db_->txn().MarkCrashAnnulled(t);
  }

  m.SyncClocks();
  ctx.out.recovery_time_ns = m.GlobalTime() - t0;
  // Whole-recovery envelope span (the per-phase spans nest inside it in
  // the Chrome trace view). survivors is never empty here: the
  // whole-machine-restart path repopulates it with every node.
  SMDB_TRACE(db_->tracer_ptr(),
             {.kind = TraceEventKind::kRecoveryPhase,
              .node = ctx.survivors.front(),
              .ts = t0,
              .dur = ctx.out.recovery_time_ns,
              .label = "recovery"});
  return ctx.out;
}

}  // namespace smdb
