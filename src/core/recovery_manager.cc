#include "core/recovery_manager.h"

#include <algorithm>
#include <sstream>
#include <unordered_map>

#include "core/database.h"
#include "core/stable_state.h"
#include "db/page_layout.h"

namespace smdb {

std::string RecoveryOutcome::ToString() const {
  std::ostringstream os;
  os << "crashed=[";
  for (size_t i = 0; i < crashed_nodes.size(); ++i) {
    if (i > 0) os << ",";
    os << crashed_nodes[i];
  }
  os << "] annulled=" << annulled.size() << " preserved=" << preserved.size()
     << " forced_aborts=" << forced_aborts.size()
     << " redo_applied=" << redo_applied << " redo_skipped=" << redo_skipped
     << " undo_applied=" << undo_applied
     << " pages_reloaded=" << pages_reloaded
     << " lines_reinstalled=" << lines_reinstalled
     << " lcb_lines_cleared=" << lcb_lines_cleared
     << " lcbs_rebuilt=" << lcbs_rebuilt << " locks_dropped=" << locks_dropped
     << " tags_scanned=" << tags_scanned << " tag_undos=" << tag_undos
     << " recovery_time_ns=" << recovery_time_ns
     << (whole_machine_restart ? " WHOLE-MACHINE-RESTART" : "");
  return os.str();
}

RecoveryManager::RecoveryManager(Database* db) : db_(db) {}

bool RecoveryManager::CommittedInStableLog(TxnId txn) const {
  bool committed = false;
  db_->log().ForEachStable(TxnNode(txn), [&](const LogRecord& rec) {
    if (rec.txn == txn && rec.type == LogRecordType::kCommit) {
      committed = true;
    }
  });
  return committed;
}

Status RecoveryManager::BuildContext(const std::vector<NodeId>& crashed,
                                     Ctx* ctx) {
  ctx->crashed = crashed;
  ctx->crashed_set.insert(crashed.begin(), crashed.end());
  for (NodeId n = 0; n < db_->machine().num_nodes(); ++n) {
    if (db_->machine().NodeAlive(n)) {
      ctx->survivors.push_back(n);
    } else {
      // Includes nodes still down from earlier crashes, not just the new
      // ones: their stale tags and residual log records are equally live.
      ctx->dead_set.insert(n);
    }
  }
  // survivors may be empty (every node failed); Run falls back to a
  // whole-machine restart in that case.
  // In a real system the crashed nodes' active transactions are identified
  // from the (recovered) lock table and the stable logs; the TxnManager's
  // transaction table stands in for that analysis here.
  for (NodeId c : ctx->crashed) {
    for (Transaction* t : db_->txn().ActiveOn(c)) {
      ctx->crashed_active.push_back(t);
      ctx->crashed_active_ids.insert(t->id);
      ctx->out.annulled.push_back(t->id);
    }
  }
  for (Transaction* t : db_->txn().ActiveAll()) {
    ctx->uncommitted_ids.insert(t->id);
    if (!ctx->crashed_set.contains(t->node())) {
      ctx->surviving_active.push_back(t);
      ctx->preserved_ids.insert(t->id);
      ctx->out.preserved.push_back(t->id);
    }
  }
  // Transactions visible in any stable log without a commit *or abort*
  // record are uncommitted too (e.g. an abort whose CLRs died with the
  // volatile tail). A stable Abort record implies the CLRs are stable as
  // well (log forces move the whole tail), so such transactions are fully
  // handled by the repeating-history redo pass. Every node's stable log is
  // scanned — not just the newly-crashed ones' — because a steal flush can
  // strand an uncommitted update in the stable database long after its
  // transaction's node crashed (or crashed and restarted), and the
  // compensations a previous recovery wrote for it are themselves volatile
  // until flushed or forced.
  for (NodeId c = 0; c < db_->machine().num_nodes(); ++c) {
    std::set<TxnId> begun, finished;
    db_->log().ForEachStable(c, [&](const LogRecord& rec) {
      if (rec.txn == kInvalidTxn) return;
      if (rec.type == LogRecordType::kCommit ||
          rec.type == LogRecordType::kAbort) {
        finished.insert(rec.txn);
      } else {
        begun.insert(rec.txn);
      }
    });
    std::set<TxnId> tail_finished;
    if (db_->machine().NodeAlive(c)) {
      // A live node's volatile tail is intact and authoritative: an abort
      // record there means the rollback already ran on this node's own log
      // (commits always force, so only aborts can be volatile-only). Without
      // this, a normally-aborted transaction whose pre-abort updates were
      // forced stable would be re-flagged and re-undone on every recovery.
      // RebootAll destroys these tails, so the exclusions are recorded in
      // volatile_finished and revoked there.
      db_->log().ForEachAll(c, [&](const LogRecord& rec) {
        if (rec.type == LogRecordType::kCommit ||
            rec.type == LogRecordType::kAbort) {
          tail_finished.insert(rec.txn);
        }
      });
    }
    for (TxnId t : begun) {
      if (finished.contains(t)) continue;
      if (tail_finished.contains(t)) {
        ctx->volatile_finished.insert(t);
      } else {
        ctx->uncommitted_ids.insert(t);
      }
    }
  }
  return Status::Ok();
}

Status RecoveryManager::ApplyRedoUpdate(Ctx& ctx, NodeId performer,
                                        const LogRecord& rec) {
  const UpdatePayload& u = rec.update();
  RecordStore& rs = db_->records();
  SMDB_ASSIGN_OR_RETURN(SlotImage cur, rs.ReadSlot(performer, u.rid));
  if (cur.usn >= u.usn) {
    ++ctx.out.redo_skipped;
    return Status::Ok();
  }
  ++ctx.out.redo_applied;
  uint16_t tag = kTagNone;
  if (!u.is_clr && db_->config().recovery.undo_tagging() &&
      ctx.uncommitted_ids.contains(rec.txn)) {
    tag = TagForNode(TxnNode(rec.txn));
  }
  SlotImage img;
  img.usn = u.usn;
  img.tag = tag;
  img.data = u.after;
  Machine& m = db_->machine();
  LineAddr header_line = rs.HeaderLine(u.rid.page);
  LineAddr record_line = rs.SlotLine(u.rid);
  SMDB_RETURN_IF_ERROR(m.GetLine(performer, header_line));
  Status st = m.GetLine(performer, record_line);
  if (!st.ok()) {
    m.ReleaseLine(performer, header_line);
    return st;
  }
  Status s = rs.WriteSlot(performer, u.rid, img);
  if (s.ok()) s = rs.WritePageLsn(performer, u.rid.page, u.usn);
  m.ReleaseLine(performer, record_line);
  m.ReleaseLine(performer, header_line);
  SMDB_RETURN_IF_ERROR(s);
  // The redone update's log record lives on rec.node; if that node
  // survives, the WAL gate must still cover it before any future flush.
  if (m.NodeAlive(rec.node)) {
    db_->wal_table().NoteUpdate(u.rid.page, rec.node, rec.lsn);
  }
  db_->buffers().MarkDirty(u.rid.page);
  return Status::Ok();
}

Status RecoveryManager::ApplyRedoIndexOp(Ctx& ctx, NodeId performer,
                                         const LogRecord& rec) {
  const IndexOpPayload& op = rec.index_op();
  uint16_t tag = kTagNone;
  if (!op.is_clr && db_->config().recovery.undo_tagging() &&
      ctx.uncommitted_ids.contains(rec.txn)) {
    tag = TagForNode(TxnNode(rec.txn));
  }
  // RedoIndexOp is internally USN-guarded; count its effect by probing.
  SMDB_ASSIGN_OR_RETURN(auto before, db_->index().GetEntry(performer, op.key));
  bool would_apply = !before.has_value() || before->usn < op.usn;
  SMDB_RETURN_IF_ERROR(db_->index().RedoIndexOp(performer, op, tag));
  if (would_apply) {
    ++ctx.out.redo_applied;
  } else {
    ++ctx.out.redo_skipped;
  }
  return Status::Ok();
}

Status RecoveryManager::ApplyRedoStructural(Ctx& ctx, NodeId performer,
                                            const LogRecord& rec) {
  const StructuralPayload& sp = rec.structural();
  (void)performer;
  for (const auto& [page, image] : sp.page_images) {
    auto base = db_->buffers().BaseOf(page);
    if (!base.ok()) return base.status();
    uint64_t cur_lsn = 0;
    Status s = db_->machine().SnoopRead(
        *base + PageLayout::kPageLsnOffset, &cur_lsn, 8);
    if (s.ok() && cur_lsn >= sp.usn) {
      ++ctx.out.redo_skipped;
      continue;  // this or a later state is already in place
    }
    // Header lost or pre-change state: install the post-change image.
    // Sorted replay re-applies any higher-USN entry updates afterwards.
    db_->machine().InstallToMemory(*base, image.data(), image.size());
    db_->buffers().MarkDirty(page);
    ++ctx.out.redo_applied;
  }
  return Status::Ok();
}

Status RecoveryManager::ReplayLogsWithGuard(Ctx& ctx) {
  Machine& m = db_->machine();
  // Gather the redo-relevant records from every reachable log, then apply
  // them in global USN order. Record updates are order-free under the USN
  // guard (each carries the full after-image), but logical index operations
  // are not: a delete replayed before the insert it follows would be
  // dropped. Strict 2PL makes USN order consistent with the original
  // execution order on every object, so a single sorted pass repeats
  // history exactly.
  std::vector<LogRecord> records;
  for (NodeId n = 0; n < m.num_nodes(); ++n) {
    Lsn start = db_->log().checkpoint_lsn(n);
    auto visit = [&](const LogRecord& rec) {
      if (rec.lsn <= start && start != kInvalidLsn) return;
      if (rec.type == LogRecordType::kUpdate ||
          rec.type == LogRecordType::kIndexOp ||
          rec.type == LogRecordType::kStructural) {
        records.push_back(rec);
      }
    };
    if (m.NodeAlive(n)) {
      db_->log().ForEachAll(n, visit);
    } else {
      db_->log().ForEachStable(n, visit);
    }
  }
  auto usn_of = [](const LogRecord& rec) {
    switch (rec.type) {
      case LogRecordType::kUpdate: return rec.update().usn;
      case LogRecordType::kIndexOp: return rec.index_op().usn;
      default: return rec.structural().usn;
    }
  };
  std::sort(records.begin(), records.end(),
            [&](const LogRecord& a, const LogRecord& b) {
              return usn_of(a) < usn_of(b);
            });
  // Structural changes first: index redo descends the tree, so the tree's
  // routing structure must be re-established before any entry-level record
  // is replayed (a reloaded pre-split root routes into garbage). The
  // Page-LSN and entry-USN guards make the two-phase order equivalent to a
  // strict USN-ordered replay.
  for (const LogRecord& rec : records) {
    if (rec.type != LogRecordType::kStructural) continue;
    SMDB_RETURN_IF_ERROR(ApplyRedoStructural(ctx, ctx.NextSurvivor(), rec));
  }
  for (const LogRecord& rec : records) {
    if (rec.type == LogRecordType::kStructural) continue;
    NodeId performer = m.NodeAlive(rec.node) ? rec.node : ctx.NextSurvivor();
    if (rec.type == LogRecordType::kUpdate) {
      SMDB_RETURN_IF_ERROR(ApplyRedoUpdate(ctx, performer, rec));
    } else {
      SMDB_RETURN_IF_ERROR(ApplyRedoIndexOp(ctx, performer, rec));
    }
  }
  return Status::Ok();
}

Status RecoveryManager::UndoCrashedFromStableLogs(Ctx& ctx) {
  // Collect every non-CLR update/index record of uncommitted dead
  // transactions from every stable log, and undo in reverse USN order.
  // Surviving active transactions are excluded — their (stolen) updates are
  // exactly what IFA preserves. The all-node scan re-derives undo work left
  // over from earlier crashes whose compensations were since lost; the
  // engagement guard in ApplyUndo* turns already-compensated records into
  // no-ops, so re-undoing is safe.
  std::vector<LogRecord> to_undo;
  for (NodeId c = 0; c < db_->machine().num_nodes(); ++c) {
    db_->log().ForEachStable(c, [&](const LogRecord& rec) {
      if (!ctx.uncommitted_ids.contains(rec.txn)) return;
      if (ctx.preserved_ids.contains(rec.txn)) return;
      if (rec.type == LogRecordType::kUpdate && !rec.update().is_clr) {
        to_undo.push_back(rec);
      } else if (rec.type == LogRecordType::kIndexOp &&
                 !rec.index_op().is_clr) {
        to_undo.push_back(rec);
      }
    });
  }
  std::sort(to_undo.begin(), to_undo.end(),
            [](const LogRecord& a, const LogRecord& b) {
              uint64_t ua = a.type == LogRecordType::kUpdate
                                ? a.update().usn
                                : a.index_op().usn;
              uint64_t ub = b.type == LogRecordType::kUpdate
                                ? b.update().usn
                                : b.index_op().usn;
              return ua > ub;  // reverse order
            });

  // A previous recovery's compensation chain for one of these transactions
  // can be split across several performers' logs (the undo pass round-robins
  // survivors), so a later crash can lose its tail while the redo pass
  // replays its surviving prefix. That leaves the object at an intermediate
  // CLR state whose USN matches no original record — which the engagement
  // guard would misread as "legitimately overwritten" and strand the object
  // mid-rollback. Pre-seed the engagement map: if an object's current USN
  // was produced by a CLR of a transaction being undone here, resume that
  // transaction's chain. Re-undoing an already-compensated record is value-
  // safe — the chain re-converges to the oldest before image.
  std::set<TxnId> undo_txns;
  for (const LogRecord& rec : to_undo) undo_txns.insert(rec.txn);
  std::map<uint64_t, std::pair<TxnId, RecordId>> clr_slots;
  std::map<uint64_t, std::pair<TxnId, std::pair<uint32_t, uint64_t>>>
      clr_keys;
  Machine& m = db_->machine();
  for (NodeId n = 0; n < m.num_nodes(); ++n) {
    auto visit = [&](const LogRecord& rec) {
      if (!undo_txns.contains(rec.txn)) return;
      if (rec.type == LogRecordType::kUpdate && rec.update().is_clr) {
        clr_slots[rec.update().usn] = {rec.txn, rec.update().rid};
      } else if (rec.type == LogRecordType::kIndexOp &&
                 rec.index_op().is_clr) {
        const IndexOpPayload& op = rec.index_op();
        clr_keys[op.usn] = {rec.txn, {op.tree_id, op.key}};
      }
    };
    if (m.NodeAlive(n)) {
      db_->log().ForEachAll(n, visit);
    } else {
      db_->log().ForEachStable(n, visit);
    }
  }

  TxnManager::UndoEngagement eng;
  std::set<RecordId> seeded_rids;
  std::set<std::pair<uint32_t, uint64_t>> seeded_keys;
  for (const LogRecord& rec : to_undo) {
    if (rec.type == LogRecordType::kUpdate) {
      RecordId rid = rec.update().rid;
      if (!seeded_rids.insert(rid).second) continue;
      SMDB_ASSIGN_OR_RETURN(SlotImage cur,
                            db_->records().ReadSlot(ctx.NextSurvivor(), rid));
      auto it = clr_slots.find(cur.usn);
      if (it != clr_slots.end() && it->second.second == rid) {
        eng.records[rid] = it->second.first;
      }
    } else {
      const IndexOpPayload& op = rec.index_op();
      std::pair<uint32_t, uint64_t> key{op.tree_id, op.key};
      if (!seeded_keys.insert(key).second) continue;
      SMDB_ASSIGN_OR_RETURN(auto entry,
                            db_->index().GetEntry(ctx.NextSurvivor(), op.key));
      if (!entry.has_value()) continue;
      auto it = clr_keys.find(entry->usn);
      if (it != clr_keys.end() && it->second.second == key) {
        eng.keys[key] = it->second.first;
      }
    }
  }
  for (const LogRecord& rec : to_undo) {
    NodeId performer = ctx.NextSurvivor();
    if (rec.type == LogRecordType::kUpdate) {
      SMDB_RETURN_IF_ERROR(db_->txn().ApplyUndoUpdate(performer, rec, &eng));
    } else {
      SMDB_RETURN_IF_ERROR(db_->txn().ApplyUndoIndexOp(performer, rec, &eng));
    }
    ++ctx.out.undo_applied;
  }
  return Status::Ok();
}

Status RecoveryManager::TagScanUndo(Ctx& ctx) {
  Machine& m = db_->machine();
  RecordStore& rs = db_->records();
  BTree& index = db_->index();

  StableStateReconstructor reconstructor(&m, &db_->log(), &db_->buffers(),
                                         &rs, ctx.uncommitted_ids);

  // Map USN -> owning txn from every stable log, to distinguish "tag stale
  // because the commit beat the tag-clear" from "uncommitted".
  std::unordered_map<uint64_t, TxnId> usn_owner;
  for (NodeId c = 0; c < m.num_nodes(); ++c) {
    db_->log().ForEachStable(c, [&](const LogRecord& rec) {
      if (rec.type == LogRecordType::kUpdate) {
        usn_owner[rec.update().usn] = rec.txn;
      } else if (rec.type == LogRecordType::kIndexOp) {
        usn_owner[rec.index_op().usn] = rec.txn;
      }
    });
  }
  auto stale_committed_tag = [&](uint64_t usn, NodeId tagged) {
    auto it = usn_owner.find(usn);
    if (it != usn_owner.end()) {
      return !ctx.uncommitted_ids.contains(it->second);
    }
    // Not in any stable log. A tagged USN was appended to the tagged node's
    // own log, which is USN-monotone in LSN order: at or below that node's
    // truncation high-water mark, the record was reclaimed by a checkpoint
    // (only finished transactions' records are; the commit beat the
    // tag-clear). Above the mark, it only ever existed in the node's lost
    // volatile tail — uncommitted.
    return usn <= db_->log().max_truncated_usn(tagged);
  };

  for (NodeId s : ctx.survivors) {
    // Snapshot the resident lines first: undo writes mutate caches.
    std::vector<LineAddr> lines;
    m.cache(s).ForEachLine(
        [&](LineAddr line, const Cache::Entry&) { lines.push_back(line); });
    for (LineAddr line : lines) {
      ++ctx.out.tags_scanned;
      // --- Heap records ---
      for (RecordId rid : rs.SlotsInLine(line)) {
        SMDB_ASSIGN_OR_RETURN(SlotImage img, rs.ReadSlot(s, rid));
        if (img.tag == kTagNone) continue;
        NodeId tagged = NodeOfTag(img.tag);
        if (!ctx.dead_set.contains(tagged)) continue;
        if (stale_committed_tag(img.usn, tagged)) {
          // Commit happened; only the tag-clear was lost. Clear it now.
          SMDB_RETURN_IF_ERROR(m.GetLine(s, line));
          Status st = rs.WriteTag(s, rid, kTagNone);
          m.ReleaseLine(s, line);
          SMDB_RETURN_IF_ERROR(st);
          continue;
        }
        // Undo: install the last committed value (from stable store).
        SMDB_ASSIGN_OR_RETURN(SlotImage committed,
                              reconstructor.CommittedValue(s, rid));
        LineAddr header_line = rs.HeaderLine(rid.page);
        SMDB_RETURN_IF_ERROR(m.GetLine(s, header_line));
        Status st = m.GetLine(s, line);
        if (!st.ok()) {
          m.ReleaseLine(s, header_line);
          return st;
        }
        uint64_t usn = db_->usn().Next();
        SlotImage img2;
        img2.usn = usn;
        img2.tag = kTagNone;
        img2.data = committed.data;
        Status w = rs.WriteSlot(s, rid, img2);
        if (w.ok()) w = rs.WritePageLsn(s, rid.page, usn);
        m.ReleaseLine(s, line);
        m.ReleaseLine(s, header_line);
        SMDB_RETURN_IF_ERROR(w);
        db_->buffers().MarkDirty(rid.page);
        ++ctx.out.tag_undos;
        ++ctx.out.undo_applied;
      }
      // --- Index entries ---
      for (const auto& ref : index.EntriesInLine(line)) {
        if (ref.entry.tag == kTagNone) continue;
        NodeId tagged = NodeOfTag(ref.entry.tag);
        if (!ctx.dead_set.contains(tagged)) continue;
        if (stale_committed_tag(ref.entry.usn, tagged)) {
          SMDB_RETURN_IF_ERROR(index.ClearTag(s, ref.entry.key));
          continue;
        }
        if (ref.entry.state == LeafEntryState::kLive) {
          // Undo of an uncommitted insert: physically remove this entry.
          SMDB_RETURN_IF_ERROR(index.RemoveEntryAt(s, ref.leaf, ref.slot));
        } else {
          // Undo of an uncommitted logical delete: unmark this entry.
          SMDB_RETURN_IF_ERROR(index.UnmarkEntryAt(s, ref.leaf, ref.slot));
        }
        ++ctx.out.tag_undos;
        ++ctx.out.undo_applied;
      }
    }
  }
  return Status::Ok();
}

Status RecoveryManager::RecoverLockTable(Ctx& ctx) {
  LockTable& locks = db_->locks();
  NodeId performer = ctx.NextSurvivor();

  ctx.out.lcb_lines_cleared = locks.ClearLostLines();

  // 1. Release every lock of every crashed transaction that survived in
  // LCBs on live nodes (IFA lock guarantee 1).
  if (!ctx.crashed_active_ids.empty()) {
    SMDB_ASSIGN_OR_RETURN(
        int dropped, locks.DropTxnLocks(performer, ctx.crashed_active_ids));
    ctx.out.locks_dropped = dropped;
  }

  // 2. Rebuild lock state of surviving active transactions whose LCBs were
  // destroyed (IFA lock guarantee 2), by folding each survivor's logical
  // lock-op records — acquisitions (read and write), queued requests and
  // releases — into per-name LCB images.
  if (!db_->config().recovery.log_lock_ops) return Status::Ok();

  std::map<uint64_t, Lcb> folded;
  std::set<TxnId> surviving_ids;
  for (Transaction* t : ctx.surviving_active) surviving_ids.insert(t->id);

  for (NodeId s : ctx.survivors) {
    db_->log().ForEachAll(s, [&](const LogRecord& rec) {
      if (rec.type != LogRecordType::kLockOp) return;
      if (!surviving_ids.contains(rec.txn)) return;
      const LockOpPayload& op = rec.lock_op();
      Lcb& lcb = folded[op.lock_name];
      lcb.name = op.lock_name;
      auto erase_txn = [&](std::vector<LockEntry>& list) {
        for (size_t i = 0; i < list.size(); ++i) {
          if (list[i].txn == rec.txn) {
            list.erase(list.begin() + i);
            return;
          }
        }
      };
      switch (op.op) {
        case LockOpPayload::Op::kAcquire:
          erase_txn(lcb.holders);
          erase_txn(lcb.waiters);
          lcb.holders.push_back(LockEntry{rec.txn, op.mode});
          break;
        case LockOpPayload::Op::kQueue:
          erase_txn(lcb.waiters);
          lcb.waiters.push_back(LockEntry{rec.txn, op.mode});
          break;
        case LockOpPayload::Op::kRelease:
          erase_txn(lcb.holders);
          erase_txn(lcb.waiters);
          break;
      }
    });
  }

  for (auto& [name, expected] : folded) {
    if (expected.holders.empty() && expected.waiters.empty()) continue;
    SMDB_ASSIGN_OR_RETURN(Lcb current, locks.GetLcb(performer, name));
    auto same = [](const std::vector<LockEntry>& a,
                   const std::vector<LockEntry>& b) {
      if (a.size() != b.size()) return false;
      for (const auto& e : a) {
        if (std::find(b.begin(), b.end(), e) == b.end()) return false;
      }
      return true;
    };
    if (same(current.holders, expected.holders) &&
        same(current.waiters, expected.waiters)) {
      continue;  // LCB survived intact
    }
    SMDB_RETURN_IF_ERROR(locks.RebuildLcb(performer, expected));
    ++ctx.out.lcbs_rebuilt;
  }
  return Status::Ok();
}

Result<RecoveryOutcome> RecoveryManager::Run(
    const std::vector<NodeId>& crashed) {
  Ctx ctx;
  SMDB_RETURN_IF_ERROR(BuildContext(crashed, &ctx));
  Machine& m = db_->machine();
  m.SyncClocks();
  SimTime t0 = m.GlobalTime();
  ctx.out.crashed_nodes = ctx.crashed;

  Status s;
  if (ctx.survivors.empty()) {
    // Every node failed: there is no survivor left to run the distributed
    // recovery schemes, so this is a whole-machine crash regardless of the
    // configured protocol. The machine reboots and restarts from stable
    // storage. All active transactions were on crashed nodes, so they are
    // annulled (not "unnecessarily aborted") and IFA holds trivially.
    for (NodeId n = 0; n < m.num_nodes(); ++n) ctx.survivors.push_back(n);
    s = RunRebootAll(ctx);
  } else {
    switch (db_->config().recovery.restart) {
      case RestartKind::kRedoAll:
        s = RunRedoAll(ctx);
        break;
      case RestartKind::kSelectiveRedo:
        s = RunSelectiveRedo(ctx);
        break;
      case RestartKind::kRebootAll:
        s = RunRebootAll(ctx);
        break;
      case RestartKind::kAbortDependents:
        s = RunAbortDependents(ctx);
        break;
    }
  }
  SMDB_RETURN_IF_ERROR(s);

  // Parallel transactions (section 9): the crash of any participant node
  // aborts the entire transaction. Crashed branches were handled by the
  // scheme above; surviving branches roll back normally on their intact
  // logs. These aborts are required by atomicity — they are not counted as
  // "unnecessary".
  std::set<TxnId> sibling_aborts;
  for (Transaction* t : ctx.crashed_active) {
    const std::vector<TxnId>* group = db_->txn().GroupOf(t->id);
    if (group == nullptr) continue;
    for (TxnId sib : *group) {
      Transaction* st = db_->txn().Find(sib);
      if (st != nullptr && st->state == TxnState::kActive &&
          !ctx.crashed_set.contains(st->node())) {
        sibling_aborts.insert(sib);
      }
    }
  }
  for (TxnId sib : sibling_aborts) {
    SMDB_RETURN_IF_ERROR(db_->txn().Abort(db_->txn().Find(sib)));
    ctx.out.annulled.push_back(sib);
  }
  if (!sibling_aborts.empty()) {
    std::vector<TxnId> kept;
    for (TxnId t : ctx.out.preserved) {
      if (!sibling_aborts.contains(t)) kept.push_back(t);
    }
    ctx.out.preserved = std::move(kept);
  }

  // Annul the crashed transactions (their effects are undone now).
  for (Transaction* t : ctx.crashed_active) {
    db_->txn().MarkCrashAnnulled(t);
  }

  m.SyncClocks();
  ctx.out.recovery_time_ns = m.GlobalTime() - t0;
  return ctx.out;
}

}  // namespace smdb
