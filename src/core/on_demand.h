#ifndef SMDB_CORE_ON_DEMAND_H_
#define SMDB_CORE_ON_DEMAND_H_

#include <map>
#include <memory>
#include <set>
#include <utility>
#include <vector>

#include "common/status.h"
#include "common/types.h"
#include "core/recovery_manager.h"
#include "txn/txn_manager.h"

namespace smdb {

class Database;
class StableStateReconstructor;

/// On-demand (instant) restart recovery, after the instant-restart idea:
/// decouple time-to-first-commit from total recovery work. At crash time the
/// IFA schemes run only an eager prefix — analysis, index reload +
/// structural redo, lock-table rebuild — and hand the deferred entry-level
/// obligations (redo records, stable-log undo work, tag discharge) to this
/// driver. The database then serves new transactions immediately:
///
///  * First touch of an unrecovered object (TxnManager's touch hooks fire
///    before any read or write) discharges that object's obligations under
///    its rebuilt lock — heap page load, its redo records in USN order, its
///    undo records in reverse-USN order, and its dead-node tag.
///  * A background sweeper (Database::PumpRecovery) discharges remaining
///    objects in global-USN order.
///  * Database::DrainRecovery applies everything still pending in the exact
///    eager phase order — when it runs before any new traffic, the
///    recovered machine state is bit-identical to the eager pass.
///
/// Obligations are derived from stable logs and the crash-time transaction
/// table only, so a second crash during the Recovering window simply
/// re-derives them: RecoveryManager::Run resets this driver before each
/// recovery.
class OnDemandRecovery {
 public:
  explicit OnDemandRecovery(Database* db);
  ~OnDemandRecovery();

  OnDemandRecovery(const OnDemandRecovery&) = delete;
  OnDemandRecovery& operator=(const OnDemandRecovery&) = delete;

  /// True while deferred obligations exist (the `Recovering` serving state).
  bool active() const { return active_; }

  struct Stats {
    /// Objects (records + index keys) that had deferred obligations.
    uint64_t objects_total = 0;
    uint64_t first_touch_discharges = 0;
    uint64_t sweep_discharges = 0;
    uint64_t drain_discharges = 0;
    uint64_t pages_loaded_lazily = 0;
    /// Pool-backed sweep batches dispatched via ParallelFor
    /// (recovery_threads > 1 only; solo discharges don't count) and the
    /// records they applied. Tests assert these to prove the parallel
    /// path actually ran.
    uint64_t sweep_batches = 0;
    uint64_t sweep_batched_records = 0;
  };
  const Stats& stats() const { return stats_; }

  /// Objects still carrying deferred obligations.
  size_t pending_objects() const { return records_.size() + keys_.size(); }

  /// Drops all pending state. A new recovery supersedes the old one (its
  /// obligations are re-derived from stable storage), so RecoveryManager
  /// calls this at the start of every Run.
  void Reset();

  /// Takes ownership of a crash's deferred obligations and enters the
  /// Recovering state. `entry_redo` is the full collected redo list in
  /// global-USN order (structural records were applied eagerly and are
  /// skipped here); `undo` is the stable-log undo work.
  Status Activate(const RecoveryManager::Ctx& ctx,
                  std::vector<LogRecord> entry_redo,
                  RecoveryManager::UndoWork undo);

  /// First-touch hooks, called by TxnManager before any access to the
  /// object. No-ops when inactive or already discharged.
  Status TouchRecord(NodeId performer, RecordId rid);
  Status TouchKey(NodeId performer, uint32_t tree_id, uint64_t key);

  /// Background sweeper: discharges up to `max_objects` pending objects in
  /// global-USN order; finishes the residual work (unreferenced page loads,
  /// the deferred tag scan) once no objects remain. Returns the number of
  /// objects discharged.
  ///
  /// With recovery_threads > 1 the sweep batches consecutive heap records
  /// that provably need only USN-guarded redo applies — no undo
  /// obligations, no dead-node tag, page already loaded — onto the
  /// RecoveryManager's work-stealing pool, one page per batch member so
  /// their line footprints are disjoint. Anything that allocates USNs or
  /// touches the B+-tree runs solo, in sweep order, so the USN stream (and
  /// therefore every digest) is identical at any width. ParallelFor is the
  /// drain barrier: SweepStep returns only after every batched apply has
  /// retired, so DrainAll/DrainRecovery never observes a half-applied
  /// batch.
  Result<int> SweepStep(int max_objects);

  /// Applies every remaining obligation in the eager phase order (heap
  /// loads, redo in USN order, undo in reverse-USN order, tag scan), then
  /// leaves the Recovering state. Run before any post-crash traffic this
  /// reproduces the eager pass bit for bit.
  Status DrainAll();

 private:
  using KeyId = std::pair<uint32_t, uint64_t>;

  struct Pending {
    std::vector<size_t> redo;  // indices into redo_, USN ascending
    std::vector<size_t> undo;  // indices into undo_.to_undo, USN descending
  };

  /// How a discharge was driven, for stats attribution.
  enum class Via { kTouch, kSweep, kDrain };

  Status EnsureHeapPage(NodeId performer, PageId page);
  Status DischargeRecord(NodeId performer, RecordId rid, Via via);
  Status DischargeKey(NodeId performer, KeyId key, Via via);
  /// Dead-node tag handling for one object (Selective Redo only): classify
  /// via the stable-log owner map and either clear the stale tag or install
  /// the last committed state.
  Status DischargeRecordTag(NodeId performer, RecordId rid);
  Status DischargeKeyTag(NodeId performer, KeyId key);
  bool StaleCommittedTag(uint64_t usn, NodeId tagged) const;
  void CountDischarge(Via via);
  /// Loads still-pending pages and runs the deferred tag scan, then leaves
  /// the Recovering state.
  Status FinishResidual();
  void Deactivate();

  Database* db_;
  bool active_ = false;
  /// Tag discharge applies (undo tagging on and scheme is Selective Redo).
  bool tagged_ = false;
  RestartKind restart_ = RestartKind::kSelectiveRedo;
  /// Reentrancy guard: a discharge must never recurse into the touch hooks.
  bool in_discharge_ = false;

  /// Crash-time recovery context (dead set, uncommitted ids, survivors,
  /// performer state). `lazy` and `tag_scan_usn_cutoff` are pinned here.
  RecoveryManager::Ctx ctx_;

  std::vector<LogRecord> redo_;  // global-USN order, entry-level only
  /// uint8_t, not bool: parallel sweep tasks set disjoint indices from pool
  /// threads, and vector<bool>'s bit packing would make that a data race.
  std::vector<uint8_t> redo_done_;
  RecoveryManager::UndoWork undo_;
  std::vector<uint8_t> undo_done_;

  std::map<RecordId, Pending> records_;
  std::map<KeyId, Pending> keys_;
  /// Sweep order: objects by their smallest pending-obligation USN.
  std::vector<std::pair<uint64_t, std::pair<bool, size_t>>> sweep_order_;
  std::vector<RecordId> sweep_rids_;
  std::vector<KeyId> sweep_keys_;
  size_t sweep_pos_ = 0;

  /// Heap pages not yet (re)loaded. Index pages are always loaded eagerly.
  std::set<PageId> pending_pages_;
  std::set<RecordId> discharged_rids_;
  std::set<KeyId> discharged_keys_;
  std::set<RecordId> seeded_rids_;
  std::set<KeyId> seeded_keys_;
  /// Shared undo-engagement state across per-object discharges (one map
  /// spans the whole undo pass, exactly like the eager pass).
  TxnManager::UndoEngagement eng_;

  /// Tag-classification support (Selective Redo): USN -> owning txn from
  /// every stable log, plus the committed-value reconstructor.
  std::map<uint64_t, TxnId> usn_owner_;
  std::unique_ptr<StableStateReconstructor> reconstructor_;

  Stats stats_;
};

}  // namespace smdb

#endif  // SMDB_CORE_ON_DEMAND_H_
