#include "core/stable_state.h"

#include <algorithm>

#include "sim/machine.h"

namespace smdb {

StableStateReconstructor::StableStateReconstructor(
    Machine* machine, LogManager* log, BufferManager* buffers,
    RecordStore* records, std::set<TxnId> uncommitted)
    : machine_(machine),
      log_(log),
      buffers_(buffers),
      records_(records),
      uncommitted_(std::move(uncommitted)) {}

void StableStateReconstructor::BuildIndex() {
  if (indexed_) return;
  indexed_ = true;
  for (NodeId n = 0; n < machine_->num_nodes(); ++n) {
    auto visit = [&](const LogRecord& rec) {
      if (rec.type != LogRecordType::kUpdate) return;
      by_record_[rec.update().rid].push_back(rec);
    };
    if (machine_->NodeAlive(n)) {
      log_->ForEachAll(n, visit);
    } else {
      log_->ForEachStable(n, visit);
    }
  }
  for (auto& [rid, recs] : by_record_) {
    std::sort(recs.begin(), recs.end(),
              [](const LogRecord& a, const LogRecord& b) {
                return a.update().usn < b.update().usn;
              });
  }
}

const std::vector<uint8_t>* StableStateReconstructor::PageImage(
    NodeId performer, PageId page) {
  auto it = page_cache_.find(page);
  if (it != page_cache_.end()) return &it->second;
  std::vector<uint8_t> image;
  if (!buffers_->ReadStableImage(performer, page, &image).ok()) {
    return nullptr;
  }
  return &page_cache_.emplace(page, std::move(image)).first->second;
}

Result<SlotImage> StableStateReconstructor::CommittedValue(NodeId performer,
                                                           RecordId rid) {
  BuildIndex();
  const std::vector<uint8_t>* image = PageImage(performer, rid.page);
  if (image == nullptr) return Status::IoError("stable page unreadable");
  SlotImage current = records_->DecodeStableSlot(*image, rid.slot);

  // The stable image itself may contain a stolen uncommitted value; detect
  // that and fall back to the producing transaction's logged before image.
  auto it = by_record_.find(rid);
  const std::vector<LogRecord>* recs =
      it == by_record_.end() ? nullptr : &it->second;

  if (recs != nullptr) {
    for (const LogRecord& rec : *recs) {
      const UpdatePayload& u = rec.update();
      if (u.usn <= current.usn) continue;
      if (!u.is_clr && uncommitted_.contains(rec.txn)) continue;
      current.usn = u.usn;
      current.data = u.after;
      current.tag = kTagNone;
    }
    // If the stable image's version was written by an uncommitted
    // transaction (steal) and no later committed value replaced it, rewind
    // to that transaction's before image for this record.
    for (const LogRecord& rec : *recs) {
      const UpdatePayload& u = rec.update();
      if (u.usn == current.usn && !u.is_clr &&
          uncommitted_.contains(rec.txn)) {
        // Find the earliest update of this txn to this record: its before
        // image is the last committed value (2PL: no interleaved writers).
        for (const LogRecord& first : *recs) {
          const UpdatePayload& fu = first.update();
          if (first.txn == rec.txn && !fu.is_clr) {
            SlotImage out;
            out.usn = fu.before_usn;
            out.tag = kTagNone;
            out.data = fu.before;
            return out;
          }
        }
      }
    }
  }
  current.tag = kTagNone;
  return current;
}

}  // namespace smdb
