#include "core/state_digest.h"

#include <algorithm>
#include <sstream>
#include <vector>

#include "core/database.h"

namespace smdb {
namespace {

/// 64-bit FNV-1a. Not cryptographic — just a stable, cheap mixer whose
/// value is identical across runs and platforms for identical input bytes.
class Fnv {
 public:
  void Bytes(const void* p, size_t n) {
    const uint8_t* b = static_cast<const uint8_t*>(p);
    for (size_t i = 0; i < n; ++i) {
      h_ ^= b[i];
      h_ *= 1099511628211ULL;
    }
  }
  void U64(uint64_t v) { Bytes(&v, sizeof(v)); }
  uint64_t hash() const { return h_; }

 private:
  uint64_t h_ = 1469598103934665603ULL;
};

constexpr uint64_t kLostLineMarker = 0xDEADDEADDEADDEADULL;
constexpr uint64_t kMissingPageMarker = 0xAB5E97A6EAB5E97AULL;

/// Hashes the coherent image of `pages`: per line, either the current
/// authoritative bytes (wherever they reside) or a lost-line marker.
uint64_t DigestCoherentPages(Database& db, const std::vector<PageId>& pages) {
  Fnv f;
  const Machine& m = db.machine();
  const uint32_t line_size = db.machine().line_size();
  const uint32_t page_size = db.config().page_size;
  std::vector<uint8_t> buf(line_size);
  for (PageId p : pages) {
    f.U64(p);
    auto base = db.buffers().BaseOf(p);
    if (!base.ok()) {
      f.U64(kMissingPageMarker);
      continue;
    }
    for (uint32_t off = 0; off < page_size; off += line_size) {
      Addr addr = *base + off;
      if (m.IsLineLost(m.LineOf(addr))) {
        f.U64(kLostLineMarker);
        continue;
      }
      if (!m.SnoopRead(addr, buf.data(), line_size).ok()) {
        f.U64(kLostLineMarker);
        continue;
      }
      f.Bytes(buf.data(), line_size);
    }
  }
  return f.hash();
}

uint64_t DigestStablePages(Database& db, const std::vector<PageId>& pages) {
  Fnv f;
  for (PageId p : pages) {
    f.U64(p);
    const std::vector<uint8_t>* bytes = db.stable_db().Peek(p);
    if (bytes == nullptr) {
      f.U64(kMissingPageMarker);
      continue;
    }
    f.Bytes(bytes->data(), bytes->size());
  }
  return f.hash();
}

uint64_t DigestLocks(Database& db) {
  int lost = 0;
  std::vector<Lcb> lcbs = db.locks().SnapshotAll(&lost);
  // Slot placement inside the LCB table is an implementation artifact;
  // hash in name order so only the logical content counts.
  std::sort(lcbs.begin(), lcbs.end(),
            [](const Lcb& a, const Lcb& b) { return a.name < b.name; });
  Fnv f;
  f.U64(static_cast<uint64_t>(lost));
  for (const Lcb& lcb : lcbs) {
    f.U64(lcb.name);
    f.U64(lcb.holders.size());
    for (const LockEntry& e : lcb.holders) {
      f.U64(e.txn);
      f.U64(static_cast<uint64_t>(e.mode));
    }
    f.U64(lcb.waiters.size());
    for (const LockEntry& e : lcb.waiters) {
      f.U64(e.txn);
      f.U64(static_cast<uint64_t>(e.mode));
    }
  }
  return f.hash();
}

uint64_t DigestTxns(Database& db) {
  Fnv f;
  db.txn().ForEachTxn([&](const Transaction& t) {
    f.U64(t.id);
    f.U64(static_cast<uint64_t>(t.state));
  });
  return f.hash();
}

}  // namespace

uint64_t StateDigest::Combined() const {
  Fnv f;
  f.U64(heap);
  f.U64(index);
  f.U64(stable);
  f.U64(locks);
  f.U64(txns);
  return f.hash();
}

std::string StateDigest::ToString() const {
  std::ostringstream os;
  os << std::hex << "heap=" << heap << " index=" << index
     << " stable=" << stable << " locks=" << locks << " txns=" << txns;
  return os.str();
}

StateDigest ComputeStateDigest(Database& db) {
  StateDigest d;
  d.heap = DigestCoherentPages(db, db.records().pages());
  d.index = DigestCoherentPages(db, db.index().pages());
  std::vector<PageId> all = db.records().pages();
  const std::vector<PageId>& idx = db.index().pages();
  all.insert(all.end(), idx.begin(), idx.end());
  d.stable = DigestStablePages(db, all);
  d.locks = DigestLocks(db);
  d.txns = DigestTxns(db);
  return d;
}

}  // namespace smdb
