#include "core/database.h"
#include "core/on_demand.h"
#include "core/recovery_manager.h"

namespace smdb {

// Redo All (section 4.1.2):
//   1. On each surviving node, all cached database records are discarded
//      from volatile memory (this also implicitly undoes any uncommitted
//      updates that migrated to surviving caches — including the crashed
//      transactions' updates, whose volatile undo records are gone).
//   2. The cache of database objects is reconstructed from the stable
//      database plus the redo logs: every update not reflected in the
//      stable database is redone (committed *and* surviving-active work —
//      the no-force policy makes redo of committed transactions necessary,
//      while the steal policy means some undo of crashed transactions from
//      stable logs may still be required).
//
// With on-demand recovery, only the eager prefix runs here: the discard,
// the index reload + structural redo (every later descent needs routing
// intact), and the lock-table rebuild. Heap reload and entry-level
// redo/undo are handed to OnDemandRecovery for per-object discharge.
Status RecoveryManager::RunRedoAll(Ctx& ctx) {
  Machine& m = db_->machine();
  OnDemandRecovery* od = db_->on_demand();
  // Lazy only when Redo All is the *configured* protocol: baselines (and
  // the whole-machine reboot path) delegate into the schemes and must stay
  // eager — their contracts assume a fully recovered state on return.
  const bool lazy =
      od != nullptr && db_->config().recovery.restart == RestartKind::kRedoAll;

  // Step 1: discard every database line (heap pages and index pages) from
  // all caches and volatile memory.
  auto discard_pages = [&](const std::vector<PageId>& pages) -> Status {
    for (PageId p : pages) {
      SMDB_ASSIGN_OR_RETURN(Addr base, db_->buffers().BaseOf(p));
      m.DiscardRange(base, db_->buffers().page_size());
    }
    return Status::Ok();
  };
  SMDB_RETURN_IF_ERROR(discard_pages(db_->records().pages()));
  SMDB_RETURN_IF_ERROR(discard_pages(db_->index().pages()));

  // Step 2a: reload the stable images. On-demand defers the heap pages —
  // index pages always reload now, since structural redo and every
  // subsequent descent depend on the tree's routing.
  SMDB_RETURN_IF_ERROR(TimedPhase(ctx, RecoveryPhase::kReload, [&] {
    auto reload_pages = [&](const std::vector<PageId>& pages) -> Status {
      for (PageId p : pages) {
        SMDB_RETURN_IF_ERROR(
            db_->buffers().ReinstallPage(ctx.NextSurvivor(), p));
        ++ctx.out.pages_reloaded;
      }
      return Status::Ok();
    };
    if (!lazy) SMDB_RETURN_IF_ERROR(reload_pages(db_->records().pages()));
    return reload_pages(db_->index().pages());
  }));

  if (!lazy) {
    // Step 2b: redo from every reachable log.
    SMDB_RETURN_IF_ERROR(TimedPhase(
        ctx, RecoveryPhase::kRedo, [&] { return ReplayLogsWithGuard(ctx); }));

    // Undo uncommitted work of crashed transactions that reached stable
    // store (steal). Purely volatile crashed updates vanished with step 1.
    SMDB_RETURN_IF_ERROR(TimedPhase(ctx, RecoveryPhase::kUndo, [&] {
      return UndoCrashedFromStableLogs(ctx);
    }));

    // Lock space recovery (section 4.2.2).
    return TimedPhase(ctx, RecoveryPhase::kLockRebuild,
                      [&] { return RecoverLockTable(ctx); });
  }

  // On-demand eager prefix: structural redo now, entry-level redo and undo
  // stashed for lazy discharge.
  ctx.lazy = true;
  std::vector<LogRecord> records;
  SMDB_RETURN_IF_ERROR(TimedPhase(ctx, RecoveryPhase::kRedo, [&] {
    SMDB_RETURN_IF_ERROR(CollectRedoRecords(ctx, &records));
    return ApplyRedoRecords(ctx, records);  // structural only (ctx.lazy)
  }));
  UndoWork undo;
  SMDB_RETURN_IF_ERROR(TimedPhase(
      ctx, RecoveryPhase::kUndo, [&] { return CollectUndoWork(ctx, &undo); }));
  // Lock rebuild runs in the prefix — new transactions need a sound lock
  // table before the first lazy discharge. Moving it ahead of undo is
  // safe: undo never touches LCBs, the drop set comes from analysis, and
  // the fold covers only surviving actives' lock-op records.
  SMDB_RETURN_IF_ERROR(TimedPhase(ctx, RecoveryPhase::kLockRebuild,
                                  [&] { return RecoverLockTable(ctx); }));
  return od->Activate(ctx, std::move(records), std::move(undo));
}

}  // namespace smdb
