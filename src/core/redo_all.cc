#include "core/database.h"
#include "core/recovery_manager.h"

namespace smdb {

// Redo All (section 4.1.2):
//   1. On each surviving node, all cached database records are discarded
//      from volatile memory (this also implicitly undoes any uncommitted
//      updates that migrated to surviving caches — including the crashed
//      transactions' updates, whose volatile undo records are gone).
//   2. The cache of database objects is reconstructed from the stable
//      database plus the redo logs: every update not reflected in the
//      stable database is redone (committed *and* surviving-active work —
//      the no-force policy makes redo of committed transactions necessary,
//      while the steal policy means some undo of crashed transactions from
//      stable logs may still be required).
Status RecoveryManager::RunRedoAll(Ctx& ctx) {
  Machine& m = db_->machine();

  // Step 1: discard every database line (heap pages and index pages) from
  // all caches and volatile memory.
  auto discard_pages = [&](const std::vector<PageId>& pages) -> Status {
    for (PageId p : pages) {
      SMDB_ASSIGN_OR_RETURN(Addr base, db_->buffers().BaseOf(p));
      m.DiscardRange(base, db_->buffers().page_size());
    }
    return Status::Ok();
  };
  SMDB_RETURN_IF_ERROR(discard_pages(db_->records().pages()));
  SMDB_RETURN_IF_ERROR(discard_pages(db_->index().pages()));

  // Step 2a: reload the stable images.
  SMDB_RETURN_IF_ERROR(TimedPhase(ctx, RecoveryPhase::kReload, [&] {
    auto reload_pages = [&](const std::vector<PageId>& pages) -> Status {
      for (PageId p : pages) {
        SMDB_RETURN_IF_ERROR(
            db_->buffers().ReinstallPage(ctx.NextSurvivor(), p));
        ++ctx.out.pages_reloaded;
      }
      return Status::Ok();
    };
    SMDB_RETURN_IF_ERROR(reload_pages(db_->records().pages()));
    return reload_pages(db_->index().pages());
  }));

  // Step 2b: redo from every reachable log.
  SMDB_RETURN_IF_ERROR(TimedPhase(ctx, RecoveryPhase::kRedo,
                                  [&] { return ReplayLogsWithGuard(ctx); }));

  // Undo uncommitted work of crashed transactions that reached stable
  // store (steal). Purely volatile crashed updates vanished with step 1.
  SMDB_RETURN_IF_ERROR(TimedPhase(
      ctx, RecoveryPhase::kUndo, [&] { return UndoCrashedFromStableLogs(ctx); }));

  // Lock space recovery (section 4.2.2).
  return TimedPhase(ctx, RecoveryPhase::kLockRebuild,
                    [&] { return RecoverLockTable(ctx); });
}

}  // namespace smdb
