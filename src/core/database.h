#ifndef SMDB_CORE_DATABASE_H_
#define SMDB_CORE_DATABASE_H_

#include <memory>
#include <vector>

#include "btree/btree.h"
#include "common/status.h"
#include "common/types.h"
#include "core/dependency_tracker.h"
#include "core/lbm_policy.h"
#include "core/protocol.h"
#include "core/recovery.h"
#include "db/buffer_manager.h"
#include "db/record_store.h"
#include "db/wal_table.h"
#include "lockmgr/lock_table.h"
#include "obs/observatory.h"
#include "obs/trace.h"
#include "sim/machine.h"
#include "storage/disk.h"
#include "storage/stable_db.h"
#include "storage/stable_log.h"
#include "txn/txn_manager.h"
#include "wal/group_commit.h"
#include "wal/log_manager.h"

namespace smdb {

class OnDemandRecovery;
class RecoveryManager;

/// Top-level configuration of an smdb instance.
struct DatabaseConfig {
  MachineConfig machine;
  uint32_t page_size = 4096;
  /// Bytes of user data per record. With the 10-byte slot header and
  /// 128-byte lines, 22 bytes packs 4 records per cache line — the
  /// space-efficient layout whose sharing hazards the paper studies.
  uint16_t record_data_size = 22;
  LockTableConfig lock_table;
  RecoveryConfig recovery;
  /// Event tracing (off by default; zero overhead when disabled).
  TraceConfig trace;
  /// Latency observatory (off by default; same zero-cost discipline).
  ObsConfig obs;
  /// Execution/recovery profiler (off by default; same discipline).
  ProfilerConfig profiler;
};

/// The assembled shared-memory database system: the simulated multiprocessor
/// (figure 1), stable storage, per-node WAL, buffer manager, record store,
/// shared-memory lock manager, B+-tree index, transaction manager, the
/// configured LBM policy, and the restart recovery machinery.
///
/// This is the public entry point examples and benchmarks use.
class Database {
 public:
  explicit Database(DatabaseConfig config);
  ~Database();

  Database(const Database&) = delete;
  Database& operator=(const Database&) = delete;

  // ----------------------------------------------------------------------
  // Setup.

  /// Creates a heap table of `nrecords` zero-initialised records.
  Result<std::vector<RecordId>> CreateTable(size_t nrecords,
                                            NodeId node = 0);

  /// Takes a machine-wide fuzzy checkpoint.
  Status Checkpoint(NodeId coordinator = 0);

  // ----------------------------------------------------------------------
  // Failure injection.

  /// Crashes the given nodes (destroying their caches, home memories, and
  /// volatile log tails), then runs the configured restart recovery
  /// protocol on the survivors.
  Result<RecoveryOutcome> Crash(const std::vector<NodeId>& crashed);

  /// Brings previously crashed nodes back with cold caches.
  void RestartNodes(const std::vector<NodeId>& nodes);

  // ----------------------------------------------------------------------
  // On-demand (instant) recovery. All three are safe no-ops when
  // recovery.on_demand is off or nothing is pending.

  /// True while a crash's obligations are still being discharged lazily —
  /// the `Recovering` serving state (new transactions run; first touch of
  /// an unrecovered object recovers it).
  bool RecoveringActive() const;

  /// Background sweeper step: discharges up to `max_objects` pending
  /// objects in global-USN order. Returns the number discharged.
  Result<int> PumpRecovery(int max_objects = 1);

  /// Discharges every remaining obligation in the eager phase order and
  /// leaves the Recovering state.
  Status DrainRecovery();

  // ----------------------------------------------------------------------
  // Components.

  Machine& machine() { return *machine_; }
  LogManager& log() { return *log_; }
  StableLogStore& stable_log() { return *stable_log_; }
  StableDb& stable_db() { return *stable_db_; }
  BufferManager& buffers() { return *buffers_; }
  WalTable& wal_table() { return *wal_table_; }
  RecordStore& records() { return *records_; }
  BTree& index() { return *index_; }
  LockTable& locks() { return *locks_; }
  TxnManager& txn() { return *txn_; }
  LbmPolicy& lbm() { return *lbm_; }
  /// Null unless recovery.group_commit is on.
  GroupCommitPipeline* group_commit() { return group_commit_.get(); }
  UsnSource& usn() { return usn_; }
  DependencyTracker* deps() { return deps_.get(); }
  RecoveryManager& recovery() { return *recovery_; }
  /// Null unless recovery.on_demand is on.
  OnDemandRecovery* on_demand() { return on_demand_.get(); }
  /// The event tracer. Always constructed; recording is gated by
  /// DatabaseConfig::trace.enabled (and set_enabled at runtime).
  TraceRecorder& tracer() { return *tracer_; }
  /// Tracer as a pointer, for SMDB_TRACE call sites.
  TraceRecorder* tracer_ptr() { return tracer_.get(); }
  /// The latency observatory. Always constructed; recording is gated by
  /// DatabaseConfig::obs.enabled (and set_enabled at runtime).
  Observatory& observatory() { return *observatory_; }
  /// Observatory as a pointer, for SMDB_OBS call sites.
  Observatory* observatory_ptr() { return observatory_.get(); }
  /// The profiler. Always constructed; recording is gated by
  /// DatabaseConfig::profiler.enabled (and set_enabled at runtime).
  Profiler& profiler() { return *profiler_; }
  /// Profiler as a pointer, for ProfScope/ProfRoot call sites.
  Profiler* profiler_ptr() { return profiler_.get(); }
  const DatabaseConfig& config() const { return config_; }

  /// Worker streams for subsequent restart recoveries (1 = serial). The
  /// knob only affects how recovery work is partitioned, never the
  /// recovered state — the differential tests assert exactly that.
  void SetRecoveryThreads(uint32_t threads) {
    config_.recovery.recovery_threads = threads == 0 ? 1 : threads;
  }

 private:
  DatabaseConfig config_;
  UsnSource usn_;
  std::unique_ptr<TraceRecorder> tracer_;
  std::unique_ptr<Observatory> observatory_;
  std::unique_ptr<Profiler> profiler_;
  std::unique_ptr<Machine> machine_;
  std::unique_ptr<Disk> db_disk_;
  std::unique_ptr<StableDb> stable_db_;
  std::unique_ptr<StableLogStore> stable_log_;
  std::unique_ptr<LogManager> log_;
  std::unique_ptr<GroupCommitPipeline> group_commit_;  // null when off
  std::unique_ptr<WalTable> wal_table_;
  std::unique_ptr<BufferManager> buffers_;
  std::unique_ptr<RecordStore> records_;
  std::unique_ptr<LockTable> locks_;
  std::unique_ptr<LbmPolicy> lbm_;
  std::unique_ptr<DependencyTracker> deps_;
  std::unique_ptr<BTree> index_;
  std::unique_ptr<TxnManager> txn_;
  std::unique_ptr<RecoveryManager> recovery_;
  std::unique_ptr<OnDemandRecovery> on_demand_;  // null when off
};

}  // namespace smdb

#endif  // SMDB_CORE_DATABASE_H_
