#ifndef SMDB_CORE_PROTOCOL_H_
#define SMDB_CORE_PROTOCOL_H_

#include <atomic>
#include <cstdint>
#include <string>

namespace smdb {

/// Logging-Before-Migration policy variants (section 4.1.1 / section 5).
enum class LbmKind : uint8_t {
  /// No LBM at all: plain WAL with per-node logs. Guarantees only FA (via a
  /// whole-machine reboot), not IFA. Baseline.
  kNone,
  /// Volatile LBM: the log record is written into the node-local volatile
  /// log inside the line-lock critical section, i.e. before the updated
  /// line can migrate. Near-zero extra cost (section 5.1).
  kVolatile,
  /// Stable LBM, naive enforcement: force the log on *every* update
  /// ("force the log as part of the update protocol", section 5.2).
  kStableEager,
  /// Stable LBM, migration-triggered enforcement: one "active data" bit per
  /// cache line; the coherency protocol triggers a log force at the latest
  /// possible point — the downgrade or invalidation of an active line
  /// (section 5.2's proposed hardware extension).
  kStableTriggered,
};

/// Restart recovery schemes (section 4.1.2) plus the two non-IFA baselines
/// the paper argues against.
enum class RestartKind : uint8_t {
  /// Survivors discard all cached database lines and redo from their local
  /// logs everything not reflected in the stable database.
  kRedoAll,
  /// Survivors redo only their own updates that were exclusively resident
  /// on crashed nodes; undo of crashed transactions' migrated updates uses
  /// the per-record undo tags.
  kSelectiveRedo,
  /// Baseline: a single node crash reboots the whole machine; every active
  /// transaction aborts (the fate of an SM database without IFA).
  kRebootAll,
  /// Baseline ("overkill" method of section 3.3): nodes survive, but every
  /// transaction dependent on the memory of a remote node is aborted.
  kAbortDependents,
};

/// Complete protocol configuration. The preset factories correspond to the
/// columns of Table 1 plus the two baselines.
struct RecoveryConfig {
  LbmKind lbm = LbmKind::kVolatile;
  RestartKind restart = RestartKind::kSelectiveRedo;
  /// Log read locks and queued requests (Table 1 row 2; required for IFA of
  /// the shared-memory lock table).
  bool log_lock_ops = true;
  /// Commit structural changes (B-tree splits, space allocation) early, as
  /// nested top-level actions (Table 1 row 1; required for IFA).
  bool early_commit_structural = true;

  /// Worker streams for the partitioned parallel recovery pipeline. 1 (the
  /// default) is the serial path with today's exact behaviour. N > 1 runs
  /// restart recovery as N deterministic worker streams: log scans fan out
  /// over a host-side work-stealing thread pool, and the redo/undo passes
  /// partition their work by page (heap) and key (index) so each stream's
  /// line traffic stays disjoint — the simulated recovery time shrinks
  /// accordingly. Orthogonal to protocol identity: FlagName()/presets
  /// ignore it, and the recovered machine state is bit-identical to the
  /// serial run (see tests/recovery_equivalence_test.cc).
  uint32_t recovery_threads = 1;

  /// Group-commit log-force pipeline (off = exact classic behaviour: every
  /// commit and every Stable-LBM eager event forces the log synchronously).
  /// When on, commit records are enqueued and the transaction is
  /// acknowledged only once a covering force lands; Stable-LBM eager
  /// forces degrade to coalescible intents backed by the triggered
  /// policy's migration safety net. Orthogonal to protocol identity:
  /// FlagName()/presets ignore it, and acknowledgement-after-force keeps
  /// every IFA argument intact (see DESIGN.md).
  bool group_commit = false;
  /// Maximum simulated time a pending commit/LBM intent may wait for a
  /// coalescing partner before the pipeline forces anyway.
  uint64_t group_commit_window_ns = 100'000;
  /// Force immediately once a node's volatile tail reaches this many
  /// records, regardless of the window.
  uint32_t group_commit_max_batch = 64;

  /// On-demand (instant) restart recovery, after Sauer & Härder's
  /// instant-restart design. When on, the IFA schemes (Redo All /
  /// Selective Redo with survivors) run only an eager prefix at crash time
  /// — analysis, index reload + structural redo, lock-table rebuild — and
  /// return with the database in a `Recovering` serving state: new
  /// transactions run immediately, the first touch of an unrecovered
  /// object discharges that object's redo/undo obligations under its
  /// rebuilt lock, and a background sweeper drains the rest in global-USN
  /// order (Database::PumpRecovery / DrainRecovery). RebootAll,
  /// AbortDependents and whole-machine restarts stay fully eager.
  /// Orthogonal to protocol identity: FlagName()/presets ignore it, and
  /// when a drain runs before any new traffic the recovered machine state
  /// is bit-identical to the eager pass (tests/on_demand_recovery_test.cc).
  bool on_demand = false;

  /// Fault injection: suppress undo tags even when the restart scheme
  /// depends on them. This breaks IFA by construction (a crashed node's
  /// migrated update survives untagged in a remote cache and never gets
  /// undone) — the crash-schedule fuzzer uses it to prove it detects real
  /// protocol violations. Never set outside fuzzing/tests.
  bool disable_undo_tagging = false;

  /// Undo Tagging (Table 1 row 3): needed by Selective Redo (and by the
  /// abort-dependents baseline, which reuses its undo machinery).
  bool undo_tagging() const {
    return !disable_undo_tagging &&
           (restart == RestartKind::kSelectiveRedo ||
            restart == RestartKind::kAbortDependents);
  }

  /// True if this configuration guarantees IFA. Selective Redo only
  /// qualifies with its undo tags intact (Table 1 row 3).
  bool ensures_ifa() const {
    if (lbm == LbmKind::kNone) return false;
    if (restart == RestartKind::kRedoAll) return true;
    return restart == RestartKind::kSelectiveRedo && undo_tagging();
  }

  std::string Name() const;

  /// Stable flag-style name of the matching preset ("volatile-selective",
  /// "reboot-all", ...); "custom" for non-preset combinations. Used by the
  /// CLI tools and the fuzzer's replay files.
  std::string FlagName() const;

  /// Parses a FlagName back into a preset. Returns false for unknown names.
  static bool FromFlagName(const std::string& name, RecoveryConfig* out);

  // Presets -----------------------------------------------------------

  static RecoveryConfig VolatileSelectiveRedo() {
    return {LbmKind::kVolatile, RestartKind::kSelectiveRedo, true, true};
  }
  static RecoveryConfig VolatileRedoAll() {
    return {LbmKind::kVolatile, RestartKind::kRedoAll, true, true};
  }
  static RecoveryConfig StableEagerRedoAll() {
    return {LbmKind::kStableEager, RestartKind::kRedoAll, true, true};
  }
  static RecoveryConfig StableTriggeredRedoAll() {
    return {LbmKind::kStableTriggered, RestartKind::kRedoAll, true, true};
  }
  static RecoveryConfig StableTriggeredSelectiveRedo() {
    return {LbmKind::kStableTriggered, RestartKind::kSelectiveRedo, true,
            true};
  }
  static RecoveryConfig BaselineRebootAll() {
    return {LbmKind::kNone, RestartKind::kRebootAll, false, false};
  }
  static RecoveryConfig BaselineAbortDependents() {
    return {LbmKind::kVolatile, RestartKind::kAbortDependents, true, true};
  }
};

/// Execution-sharding configuration: how many host worker threads the
/// SystemExecutor spreads per-node transaction steps across. 1 (the
/// default) is the classic single-threaded dispatch loop, bit-for-bit. N >
/// 1 plans batches of footprint-disjoint steps off the same seeded
/// schedule and runs each batch on the work-stealing ThreadPool; the final
/// database state (StateDigest) is width-invariant (see DESIGN.md,
/// "Sharded execution").
struct ExecutionConfig {
  uint32_t execution_threads = 1;
  /// Canonical batch-planning width used whenever the profiler is enabled:
  /// the planner runs at max(execution_threads, profile_plan_width) so
  /// batch composition — and with it every reject-reason count and the
  /// occupancy histogram — is identical at any execution_threads setting.
  /// Execution still uses the configured pool (ParallelFor handles batches
  /// wider than the worker count), and the StateDigest is plan-width
  /// invariant by the schedule-replay construction.
  uint32_t profile_plan_width = 8;
};

/// Source of global update sequence numbers. USNs generalise Page-LSNs:
/// strict 2PL serialises updates to any one record, so USN order is
/// consistent with the update order on every record (and with commit
/// order). In a real SM machine this is a fetch-and-add on a shared
/// counter; the cost is charged by the caller as part of the update
/// protocol.
///
/// Sharded execution replays the serial schedule in batches, and the USNs
/// drawn inside a batch must come out in the batch's serial rank order even
/// though the steps run on different host threads. Spinning for a turn
/// would deadlock on a work-stealing pool (a thread waiting for rank r-1
/// can have rank r-1's task queued behind it), so ranks are *pre-assigned*
/// instead: the planner knows every ranked step allocates exactly one USN
/// (DoUpdate) except the single index-touching step, which it ranks last.
/// BeginRankedBatch(n) charges n single allocations up front; rank r's one
/// allocation returns base + r with no synchronisation at all, and the
/// last-ranked (multi-allocating) step draws from the remaining tail,
/// alone. The resulting sequence is byte-identical to the serial schedule.
class UsnSource {
 public:
  uint64_t Next() {
    if (batch_mode_) {
      Ticket& t = ThisThreadTicket();
      if (t.rank >= 0 && !t.multi && !t.claimed) {
        t.claimed = true;
        return base_ + static_cast<uint64_t>(t.rank);
      }
      // The tail (index step, ranked last) or an unexpected extra
      // allocation: atomic, so a planner miss degrades to a USN-order
      // deviation (caught by the differential digests), never a torn
      // counter.
      return std::atomic_ref<uint64_t>(next_).fetch_add(
          1, std::memory_order_relaxed);
    }
    return next_++;
  }
  uint64_t current() const { return next_ - 1; }

  /// Arms batch mode and pre-charges `ranked_singles` one-USN steps: rank
  /// r in [0, ranked_singles) will be handed base + r. A multi-allocating
  /// step must be ranked `ranked_singles` (the tail) and flagged via
  /// SetThreadRank(rank, /*multi=*/true).
  void BeginRankedBatch(uint32_t ranked_singles) {
    base_ = next_;
    next_ += ranked_singles;
    batch_mode_ = true;
  }
  void EndRankedBatch() { batch_mode_ = false; }

  /// Declares the calling worker's serial rank for the step it is about to
  /// run; rank -1 = unranked (the step allocates no USN). `multi` marks
  /// the tail step that may allocate several USNs.
  void SetThreadRank(int rank, bool multi = false) {
    ThisThreadTicket() = {rank, multi, false};
  }
  void ClearThreadRank() { ThisThreadTicket() = {-1, false, false}; }

 private:
  struct Ticket {
    int rank = -1;
    bool multi = false;
    bool claimed = false;
  };
  static Ticket& ThisThreadTicket() {
    static thread_local Ticket t;
    return t;
  }

  uint64_t next_ = 1;
  uint64_t base_ = 0;
  bool batch_mode_ = false;
};

}  // namespace smdb

#endif  // SMDB_CORE_PROTOCOL_H_
