#include "core/lbm_policy.h"

#include "common/atomic_util.h"
#include "sim/machine.h"
#include "wal/group_commit.h"
#include "wal/log_manager.h"

namespace smdb {

std::string RecoveryConfig::Name() const {
  std::string lbm_name;
  switch (lbm) {
    case LbmKind::kNone: lbm_name = "NoLBM"; break;
    case LbmKind::kVolatile: lbm_name = "VolatileLBM"; break;
    case LbmKind::kStableEager: lbm_name = "StableLBM(eager)"; break;
    case LbmKind::kStableTriggered: lbm_name = "StableLBM(triggered)"; break;
  }
  std::string restart_name;
  switch (restart) {
    case RestartKind::kRedoAll: restart_name = "RedoAll"; break;
    case RestartKind::kSelectiveRedo: restart_name = "SelectiveRedo"; break;
    case RestartKind::kRebootAll: restart_name = "RebootAll"; break;
    case RestartKind::kAbortDependents:
      restart_name = "AbortDependents";
      break;
  }
  return lbm_name + "+" + restart_name +
         (disable_undo_tagging ? "(no-undo-tags!)" : "");
}

namespace {

struct FlagNameEntry {
  const char* name;
  RecoveryConfig config;
};

const FlagNameEntry kFlagNames[] = {
    {"volatile-selective", RecoveryConfig::VolatileSelectiveRedo()},
    {"volatile-redoall", RecoveryConfig::VolatileRedoAll()},
    {"stable-eager", RecoveryConfig::StableEagerRedoAll()},
    {"stable-triggered", RecoveryConfig::StableTriggeredRedoAll()},
    {"stable-triggered-selective",
     RecoveryConfig::StableTriggeredSelectiveRedo()},
    {"reboot-all", RecoveryConfig::BaselineRebootAll()},
    {"abort-dependents", RecoveryConfig::BaselineAbortDependents()},
};

}  // namespace

std::string RecoveryConfig::FlagName() const {
  for (const FlagNameEntry& e : kFlagNames) {
    if (e.config.lbm == lbm && e.config.restart == restart &&
        e.config.log_lock_ops == log_lock_ops &&
        e.config.early_commit_structural == early_commit_structural) {
      return e.name;
    }
  }
  return "custom";
}

bool RecoveryConfig::FromFlagName(const std::string& name,
                                  RecoveryConfig* out) {
  for (const FlagNameEntry& e : kFlagNames) {
    if (name == e.name) {
      *out = e.config;
      return true;
    }
  }
  return false;
}

std::unique_ptr<LbmPolicy> LbmPolicy::Create(LbmKind kind, Machine* machine,
                                             LogManager* log,
                                             GroupCommitPipeline* group_commit) {
  switch (kind) {
    case LbmKind::kNone:
    case LbmKind::kVolatile:
      return std::make_unique<VolatileLbm>(kind);
    case LbmKind::kStableEager:
      if (group_commit != nullptr) {
        return std::make_unique<StableEagerGroupLbm>(machine, log,
                                                     group_commit);
      }
      return std::make_unique<StableEagerLbm>(machine, log);
    case LbmKind::kStableTriggered:
      // The triggered policy already defers forces to migrations; the
      // pipeline only adds commit-record coalescing, which needs no LBM
      // cooperation.
      return std::make_unique<StableTriggeredLbm>(machine, log);
  }
  return nullptr;
}

Status StableEagerLbm::OnUpdateLogged(NodeId node, Lsn /*lsn*/,
                                      const std::vector<LineAddr>& /*lines*/) {
  SMDB_RETURN_IF_ERROR(log_->Force(node, node));
  AtomicInc(log_->stats().lbm_forces);
  return Status::Ok();
}

Status StableEagerGroupLbm::OnUpdateLogged(NodeId node, Lsn lsn,
                                           const std::vector<LineAddr>& lines) {
  // Mark the lines active first: if the pipeline's size bound flushes right
  // here, the force hook clears the fresh marks, which is exactly right (the
  // update is durable). If it doesn't, a premature migration still triggers
  // an immediate force via the inherited coherence hook.
  SMDB_RETURN_IF_ERROR(StableTriggeredLbm::OnUpdateLogged(node, lsn, lines));
  return gc_->NoteLbmIntent(node);
}

StableTriggeredLbm::StableTriggeredLbm(Machine* machine, LogManager* log)
    : machine_(machine), log_(log) {
  machine_->AddCoherenceHook(
      [this](const CoherenceEvent& ev) { OnCoherence(ev); });
  log_->AddForceHook([this](NodeId node) { OnForced(node); });
}

Status StableTriggeredLbm::OnUpdateLogged(NodeId node, Lsn /*lsn*/,
                                          const std::vector<LineAddr>& lines) {
  std::lock_guard<std::mutex> lk(mu_);
  for (LineAddr line : lines) {
    machine_->SetLineActive(line, true);
    auto it = active_by_.find(line);
    if (it != active_by_.end() && it->second != node) {
      active_lines_[it->second].erase(line);
    }
    active_by_[line] = node;
    active_lines_[node].insert(line);
  }
  return Status::Ok();
}

NodeId StableTriggeredLbm::ActiveUpdater(LineAddr line) const {
  std::lock_guard<std::mutex> lk(mu_);
  auto it = active_by_.find(line);
  return it == active_by_.end() ? kInvalidNode : it->second;
}

void StableTriggeredLbm::OnCoherence(const CoherenceEvent& ev) {
  if (!ev.active_bit) return;
  NodeId updater = kInvalidNode;
  {
    std::lock_guard<std::mutex> lk(mu_);
    auto it = active_by_.find(ev.line);
    if (it == active_by_.end()) return;
    updater = it->second;
  }
  if (!machine_->NodeAlive(updater)) return;
  // The departing copy holds uncommitted data whose log records are not yet
  // stable: force the updater's log before the transfer completes. The
  // requesting node (ev.to) stalls for the force, so it pays the latency.
  Status s = log_->Force(ev.to, updater);
  if (s.ok()) AtomicInc(log_->stats().lbm_forces);
}

void StableTriggeredLbm::OnForced(NodeId node) {
  std::lock_guard<std::mutex> lk(mu_);
  auto it = active_lines_.find(node);
  if (it == active_lines_.end()) return;
  for (LineAddr line : it->second) {
    machine_->SetLineActive(line, false);
    active_by_.erase(line);
  }
  it->second.clear();
}

}  // namespace smdb
