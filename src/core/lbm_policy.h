#ifndef SMDB_CORE_LBM_POLICY_H_
#define SMDB_CORE_LBM_POLICY_H_

#include <memory>
#include <mutex>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "common/status.h"
#include "common/types.h"
#include "core/protocol.h"
#include "sim/events.h"

namespace smdb {

class Machine;
class LogManager;
class GroupCommitPipeline;

/// A Logging-Before-Migration policy: guarantees that before a cache line
/// containing an uncommitted update migrates (or replicates) to another
/// node, sufficient log information exists to undo and redo the update.
///
/// The caller (the transaction layer's update protocol) appends the log
/// record *inside* the line-lock critical section and then invokes
/// OnUpdateLogged — at that point the line has not migrated yet, which is
/// what enforces Volatile LBM for free. The Stable variants additionally
/// force the log, either immediately (eager) or when the coherency
/// protocol signals the departure of an active line (triggered).
class LbmPolicy {
 public:
  virtual ~LbmPolicy() = default;

  /// Factory. The triggered policy registers a coherence hook on `machine`
  /// and a force hook on `log`. With a non-null `group_commit`, the eager
  /// policy coalesces: updates register an intent with the pipeline (the
  /// batched force lands within its window) and fall back to migration-
  /// triggered forces for safety, instead of forcing on every update.
  static std::unique_ptr<LbmPolicy> Create(
      LbmKind kind, Machine* machine, LogManager* log,
      GroupCommitPipeline* group_commit = nullptr);

  virtual LbmKind kind() const = 0;

  /// Invoked inside the update critical section, after the log record for
  /// an update performed by `node` (covering the given lines) was appended
  /// at `lsn`.
  virtual Status OnUpdateLogged(NodeId node, Lsn lsn,
                                const std::vector<LineAddr>& lines) = 0;

  /// Node whose unforced update currently keeps `line` active, or
  /// kInvalidNode. The sharded executor asks this at plan time: a step
  /// whose footprint covers an active line may trigger a cross-node log
  /// force of the updater, so the updater's log must not be receiving
  /// concurrent appends in the same batch. Policies without migration
  /// triggers never force cross-node and report kInvalidNode.
  virtual NodeId ActiveUpdater(LineAddr /*line*/) const {
    return kInvalidNode;
  }
};

/// Volatile LBM (also used for the no-LBM baseline, where the volatile log
/// append is plain WAL): nothing beyond the in-critical-section append.
class VolatileLbm : public LbmPolicy {
 public:
  explicit VolatileLbm(LbmKind kind) : kind_(kind) {}
  LbmKind kind() const override { return kind_; }
  Status OnUpdateLogged(NodeId, Lsn, const std::vector<LineAddr>&) override {
    return Status::Ok();
  }

 private:
  LbmKind kind_;
};

/// Stable LBM with a log force on every update.
class StableEagerLbm : public LbmPolicy {
 public:
  StableEagerLbm(Machine* machine, LogManager* log)
      : machine_(machine), log_(log) {}
  LbmKind kind() const override { return LbmKind::kStableEager; }
  Status OnUpdateLogged(NodeId node, Lsn lsn,
                        const std::vector<LineAddr>& lines) override;

 private:
  Machine* machine_;
  LogManager* log_;
};

/// Stable LBM with migration-triggered forces: updated lines are marked
/// "active"; the coherence hook forces the updater's log when an active
/// line is about to be downgraded or invalidated. A successful force clears
/// the active marks of that node's lines.
class StableTriggeredLbm : public LbmPolicy {
 public:
  StableTriggeredLbm(Machine* machine, LogManager* log);
  LbmKind kind() const override { return LbmKind::kStableTriggered; }
  Status OnUpdateLogged(NodeId node, Lsn lsn,
                        const std::vector<LineAddr>& lines) override;
  NodeId ActiveUpdater(LineAddr line) const override;

 private:
  void OnCoherence(const CoherenceEvent& ev);
  void OnForced(NodeId node);

  Machine* machine_;
  LogManager* log_;
  /// Guards the two maps below. Never held across a log force: OnCoherence
  /// copies the updater out first, because Force re-enters this policy
  /// through the force hook (OnForced).
  mutable std::mutex mu_;
  /// line -> node whose unforced update made it active.
  std::unordered_map<LineAddr, NodeId> active_by_;
  /// node -> its active lines (for clearing on force).
  std::unordered_map<NodeId, std::unordered_set<LineAddr>> active_lines_;
};

/// Stable-eager LBM riding the group-commit pipeline: instead of forcing on
/// every update, each update registers an intent (arming the pipeline's
/// coalescing window, so the force lands within window_ns bounded delay)
/// and keeps the triggered policy's migration safety net — if an active
/// line departs before the batched force, the coherence hook forces
/// immediately. Durability-before-migration is therefore preserved exactly;
/// only the *timing* of forces changes, which the simulator's determinism
/// rules allow.
class StableEagerGroupLbm : public StableTriggeredLbm {
 public:
  StableEagerGroupLbm(Machine* machine, LogManager* log,
                      GroupCommitPipeline* gc)
      : StableTriggeredLbm(machine, log), gc_(gc) {}
  LbmKind kind() const override { return LbmKind::kStableEager; }
  Status OnUpdateLogged(NodeId node, Lsn lsn,
                        const std::vector<LineAddr>& lines) override;

 private:
  GroupCommitPipeline* gc_;
};

}  // namespace smdb

#endif  // SMDB_CORE_LBM_POLICY_H_
