#ifndef SMDB_CORE_RECOVERY_MANAGER_H_
#define SMDB_CORE_RECOVERY_MANAGER_H_

#include <functional>
#include <map>
#include <memory>
#include <set>
#include <vector>

#include "common/status.h"
#include "common/thread_pool.h"
#include "common/types.h"
#include "core/recovery.h"
#include "txn/transaction.h"
#include "wal/log_record.h"

namespace smdb {

class Database;

/// Orchestrates restart recovery after one or more node crashes, running
/// whichever scheme the database's RecoveryConfig selects:
///
///  * Redo All (section 4.1.2): discard all cached DB lines, reload the
///    stable images, redo from every reachable log, undo crashed
///    uncommitted work from stable logs, recover the lock table.
///  * Selective Redo: re-install only lost lines, redo only what neither
///    survived in a cache nor reached the stable database, undo migrated
///    crashed updates via the per-record undo tags, recover the lock table.
///  * RebootAll / AbortDependents baselines.
///
/// Neither IFA scheme ever consults a crashed node's volatile log (it no
/// longer exists); everything comes from stable storage, surviving caches,
/// surviving volatile logs, and the undo tags.
class RecoveryManager {
 public:
  explicit RecoveryManager(Database* db);

  /// Runs restart recovery for the given crashed set (the machine must
  /// already reflect the crashes). Returns what was done.
  Result<RecoveryOutcome> Run(const std::vector<NodeId>& crashed);

 private:
  friend class OnDemandRecovery;
  struct Ctx {
    std::vector<NodeId> crashed;
    std::vector<NodeId> survivors;
    std::set<NodeId> crashed_set;
    /// Every node that is down right now: the newly-crashed set plus any
    /// node still dead from an earlier, unrestarted crash. Stale undo tags
    /// and residual uncommitted log records can reference either kind.
    std::set<NodeId> dead_set;
    std::vector<Transaction*> crashed_active;
    std::vector<Transaction*> surviving_active;
    std::set<TxnId> crashed_active_ids;
    /// Surviving active transactions, whose effects recovery must preserve
    /// (never undo) — the IFA guarantee.
    std::set<TxnId> preserved_ids;
    /// Every transaction whose updates must not count as committed during
    /// reconstruction: all currently-active transactions plus transactions
    /// that appear in any stable log without a commit or abort record.
    std::set<TxnId> uncommitted_ids;
    /// Transactions begun in a stable log whose only finish record (an
    /// abort; commits always force) lives in a live node's volatile tail.
    /// Their rollback already ran, so node-granular schemes leave them
    /// alone — but RebootAll destroys that tail and must re-undo them.
    std::set<TxnId> volatile_finished;
    RecoveryOutcome out;
    size_t rr = 0;

    /// Pages whose lost-line reinstall spliced stable-image lines into a
    /// partially *surviving* page. Such a page can pair a post-split header
    /// (surviving Page-LSN) with pre-split entry lines (reinstalled), so
    /// the structural redo guard must not trust its Page-LSN: entries a
    /// split moved away exist only in the structural page image, and
    /// skipping it would resurrect them as duplicate live keys.
    std::set<PageId> spliced_pages;

    /// Set while collecting the on-demand (instant-recovery) eager prefix:
    /// entry-level redo and the stable-log undo are deferred to lazy
    /// per-object discharge instead of applied here.
    bool lazy = false;
    /// Tag-scan guard for lazy discharge: a tag whose entry USN exceeds
    /// the cutoff was written by post-crash traffic (a restarted node's
    /// new transactions) and is not this recovery's business. UINT64_MAX
    /// (no-op) for eager passes; OnDemandRecovery pins it to the
    /// crash-time USN so the deferred tag scan stays sound.
    uint64_t tag_scan_usn_cutoff = UINT64_MAX;

    /// recovery_threads from the database config, clamped to >= 1. 1 is
    /// the serial pipeline (today's exact performer assignment); W > 1
    /// runs W deterministic worker streams.
    uint32_t threads = 1;
    /// Worker stream -> pinned surviving performer (threads > 1 only).
    /// Partitioning work so that all records of one page (and all index
    /// ops of one key range) land on one stream keeps each stream's line
    /// traffic disjoint: line-lock grant chains and header-line transfers
    /// stop serialising the survivors' clocks, which is where the
    /// parallel recovery speedup comes from.
    std::vector<NodeId> streams;

    NodeId NextSurvivor() {
      NodeId n = survivors[rr % survivors.size()];
      ++rr;
      return n;
    }

    /// Performer of the stream owning `partition` (threads > 1).
    NodeId StreamPerformer(uint64_t partition) const {
      return streams[partition % streams.size()];
    }
  };

  Status BuildContext(const std::vector<NodeId>& crashed, Ctx* ctx);

  /// Runs `body` as one timed recovery phase: accumulates the global-time
  /// delta into ctx.out.phase_ns[phase] and emits a kRecoveryPhase trace
  /// span on the coordinator survivor's track. Pure accounting — it adds
  /// no Ticks, so timing semantics are identical with tracing off.
  Status TimedPhase(Ctx& ctx, RecoveryPhase phase,
                    const std::function<Status()>& body);

  // Shared passes -------------------------------------------------------

  /// Redo pass: replays update/index records (lsn > checkpoint) from every
  /// survivor's full log and every crashed node's stable log, guarded by
  /// USN comparison (idempotent, order-free).
  Status ReplayLogsWithGuard(Ctx& ctx);

  /// Collect half of the redo pass: every redo-relevant record (lsn >
  /// checkpoint) from every reachable log, sorted by global USN. Pure
  /// host-side log reads.
  Status CollectRedoRecords(Ctx& ctx, std::vector<LogRecord>* out);
  /// Apply half: structural records first (via NextSurvivor), then
  /// entry-level records in the list's (USN) order. With ctx.lazy set the
  /// entry-level half is skipped — OnDemandRecovery owns those records.
  Status ApplyRedoRecords(Ctx& ctx, const std::vector<LogRecord>& records);

  /// Stable-log undo obligations, split out so the on-demand path can
  /// stash them and discharge per object.
  struct UndoWork {
    /// Non-CLR records of uncommitted dead transactions, reverse-USN order.
    std::vector<LogRecord> to_undo;
    /// CLR maps for engagement pre-seeding (see UndoCrashedFromStableLogs).
    std::map<uint64_t, std::pair<TxnId, RecordId>> clr_slots;
    std::map<uint64_t, std::pair<TxnId, std::pair<uint32_t, uint64_t>>>
        clr_keys;
  };
  /// Collect half of the undo pass (pure host-side log reads).
  Status CollectUndoWork(Ctx& ctx, UndoWork* out);

  /// Undoes uncommitted dead work found in *any* stable log — stolen
  /// updates and pre-crash aborts whose CLRs were lost. The scan must cover
  /// every node, not just the newly-crashed ones: a steal flush can place an
  /// uncommitted update in the stable database, and if the compensation a
  /// previous recovery wrote for it is later lost with *its* performer's
  /// cache and volatile log, the stale value resurrects on reload. Each
  /// recovery therefore re-derives all pending undo from the stable logs;
  /// the USN engagement guard keeps the pass idempotent.
  Status UndoCrashedFromStableLogs(Ctx& ctx);

  /// Selective Redo's tag scan: each survivor sweeps its cache for records
  /// and index entries tagged with a dead node and undoes them using
  /// last committed values from stable store.
  Status TagScanUndo(Ctx& ctx);

  /// Lock-table recovery: clear lost LCB lines, drop crashed transactions'
  /// locks, rebuild LCBs of surviving active transactions from surviving
  /// logs (including *read* locks, which is why they are logged).
  Status RecoverLockTable(Ctx& ctx);

  Status ApplyRedoUpdate(Ctx& ctx, NodeId performer, const LogRecord& rec);
  Status ApplyRedoIndexOp(Ctx& ctx, NodeId performer, const LogRecord& rec);
  /// Re-applies an early-committed structural change from its physical
  /// page images (guarded by the Page-LSN).
  Status ApplyRedoStructural(Ctx& ctx, NodeId performer,
                             const LogRecord& rec);

  // Schemes --------------------------------------------------------------

  Status RunRedoAll(Ctx& ctx);          // redo_all.cc
  Status RunSelectiveRedo(Ctx& ctx);    // selective_redo.cc
  Status RunRebootAll(Ctx& ctx);        // baselines.cc
  Status RunAbortDependents(Ctx& ctx);  // baselines.cc

  /// True if `txn` has a commit record in its node's stable log.
  bool CommittedInStableLog(TxnId txn) const;

  // Parallel pipeline support --------------------------------------------

  /// Runs fn(0..num_nodes-1): inline when serial, fanned out over the
  /// work-stealing pool when ctx.threads > 1. Only safe for host-side log
  /// scans into per-node slots — the simulator itself is sequential and is
  /// never touched from pool threads.
  void ForEachNodeParallel(const Ctx& ctx,
                           const std::function<void(NodeId)>& fn);

  /// Redo-pass performer: serial keeps the legacy rule (the record's own
  /// node if alive, else round-robin); W > 1 partitions heap updates by
  /// page and index ops by key so same-page records stay on one stream.
  NodeId RedoPerformer(Ctx& ctx, const LogRecord& rec);

  /// Undo-pass performer: serial round-robin, or the partition's stream.
  NodeId UndoPerformer(Ctx& ctx, const LogRecord& rec);

  Database* db_;
  std::unique_ptr<ThreadPool> pool_;
};

}  // namespace smdb

#endif  // SMDB_CORE_RECOVERY_MANAGER_H_
