#include "common/thread_pool.h"

namespace smdb {

ThreadPool::ThreadPool(unsigned workers) {
  if (workers < 1) workers = 1;
  queues_.reserve(workers);
  for (unsigned i = 0; i < workers; ++i) {
    queues_.push_back(std::make_unique<Queue>());
  }
  threads_.reserve(workers - 1);
  for (unsigned i = 1; i < workers; ++i) {
    threads_.emplace_back([this, i] { WorkerLoop(i); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lk(mu_);
    stop_ = true;
  }
  work_cv_.notify_all();
  for (std::thread& t : threads_) t.join();
}

bool ThreadPool::FindTask(size_t slot, uint64_t gen, size_t* out) {
  {
    Queue& own = *queues_[slot];
    std::lock_guard<std::mutex> lk(own.mu);
    if (!own.items.empty() && own.items.back().gen == gen) {
      *out = own.items.back().index;
      own.items.pop_back();
      return true;
    }
  }
  // Steal from the front of the other queues (oldest first, so a stolen
  // chunk is far from where the owner is working).
  for (size_t k = 1; k < queues_.size(); ++k) {
    Queue& victim = *queues_[(slot + k) % queues_.size()];
    std::lock_guard<std::mutex> lk(victim.mu);
    if (!victim.items.empty() && victim.items.front().gen == gen) {
      *out = victim.items.front().index;
      victim.items.pop_front();
      return true;
    }
  }
  return false;
}

void ThreadPool::Drain(size_t slot, uint64_t gen,
                       const std::function<void(size_t)>* fn) {
  // fn is dereferenced only after FindTask succeeds: a generation-`gen`
  // item still being queued proves that generation's ParallelFor has not
  // returned, so the function object it points to is alive.
  size_t task = 0;
  while (FindTask(slot, gen, &task)) {
    (*fn)(task);
    std::lock_guard<std::mutex> lk(mu_);
    if (--pending_ == 0) done_cv_.notify_all();
  }
}

void ThreadPool::WorkerLoop(size_t slot) {
  uint64_t seen = 0;
  for (;;) {
    const std::function<void(size_t)>* job = nullptr;
    {
      std::unique_lock<std::mutex> lk(mu_);
      work_cv_.wait(lk, [&] { return stop_ || generation_ != seen; });
      if (stop_) return;
      seen = generation_;
      job = job_;
    }
    Drain(slot, seen, job);
  }
}

void ThreadPool::ParallelFor(size_t n, const std::function<void(size_t)>& fn) {
  if (n == 0) return;
  if (queues_.size() <= 1 || n == 1) {
    for (size_t i = 0; i < n; ++i) fn(i);
    return;
  }
  // The caller is the only writer of generation_, so this unlocked read of
  // its own last write is safe. Items are tagged and enqueued before the
  // generation becomes visible: workers woken by the bump find their work
  // already queued, while stragglers from the previous generation skip the
  // new tags (see Item).
  const uint64_t gen = generation_ + 1;
  // Distribute round-robin across the slots; stealing rebalances at run
  // time, so the initial placement only matters for locality.
  for (size_t i = 0; i < n; ++i) {
    Queue& q = *queues_[i % queues_.size()];
    std::lock_guard<std::mutex> lk(q.mu);
    q.items.push_back(Item{gen, i});
  }
  {
    std::lock_guard<std::mutex> lk(mu_);
    job_ = &fn;
    pending_ = n;
    generation_ = gen;
  }
  work_cv_.notify_all();
  Drain(0, gen, &fn);
  std::unique_lock<std::mutex> lk(mu_);
  done_cv_.wait(lk, [&] { return pending_ == 0; });
}

}  // namespace smdb
