#include "common/json.h"

#include <cctype>
#include <cmath>
#include <cstdio>
#include <cstdlib>

namespace smdb {
namespace json {

const std::string& Value::EmptyString() {
  static const std::string kEmpty;
  return kEmpty;
}

void Value::Set(const std::string& key, Value v) {
  for (auto& [k, existing] : obj_) {
    if (k == key) {
      existing = std::move(v);
      return;
    }
  }
  obj_.emplace_back(key, std::move(v));
}

const Value* Value::Find(const std::string& key) const {
  for (const auto& [k, v] : obj_) {
    if (k == key) return &v;
  }
  return nullptr;
}

uint64_t Value::AsUint(uint64_t def) const {
  switch (type_) {
    case Type::kUint:
      return uint_;
    case Type::kDouble:
      return double_ < 0 ? def : static_cast<uint64_t>(double_);
    default:
      return def;
  }
}

double Value::AsDouble(double def) const {
  switch (type_) {
    case Type::kUint:
      return static_cast<double>(uint_);
    case Type::kDouble:
      return double_;
    default:
      return def;
  }
}

bool Value::GetBool(const std::string& key, bool def) const {
  const Value* v = Find(key);
  return v == nullptr ? def : v->AsBool(def);
}

uint64_t Value::GetUint(const std::string& key, uint64_t def) const {
  const Value* v = Find(key);
  return v == nullptr ? def : v->AsUint(def);
}

double Value::GetDouble(const std::string& key, double def) const {
  const Value* v = Find(key);
  return v == nullptr ? def : v->AsDouble(def);
}

std::string Value::GetString(const std::string& key,
                             const std::string& def) const {
  const Value* v = Find(key);
  return v == nullptr ? def : v->AsString(def);
}

namespace {

void EscapeTo(const std::string& s, std::string* out) {
  out->push_back('"');
  for (char c : s) {
    switch (c) {
      case '"': *out += "\\\""; break;
      case '\\': *out += "\\\\"; break;
      case '\n': *out += "\\n"; break;
      case '\r': *out += "\\r"; break;
      case '\t': *out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          *out += buf;
        } else {
          out->push_back(c);
        }
    }
  }
  out->push_back('"');
}

void Newline(std::string* out, int indent, int depth) {
  if (indent <= 0) return;
  out->push_back('\n');
  out->append(static_cast<size_t>(indent) * depth, ' ');
}

}  // namespace

void Value::DumpTo(std::string* out, int indent, int depth) const {
  char buf[32];
  switch (type_) {
    case Type::kNull:
      *out += "null";
      break;
    case Type::kBool:
      *out += bool_ ? "true" : "false";
      break;
    case Type::kUint:
      std::snprintf(buf, sizeof buf, "%llu",
                    static_cast<unsigned long long>(uint_));
      *out += buf;
      break;
    case Type::kDouble:
      std::snprintf(buf, sizeof buf, "%.17g", double_);
      *out += buf;
      break;
    case Type::kString:
      EscapeTo(str_, out);
      break;
    case Type::kArray: {
      out->push_back('[');
      for (size_t i = 0; i < arr_.size(); ++i) {
        if (i > 0) out->push_back(',');
        Newline(out, indent, depth + 1);
        arr_[i].DumpTo(out, indent, depth + 1);
      }
      if (!arr_.empty()) Newline(out, indent, depth);
      out->push_back(']');
      break;
    }
    case Type::kObject: {
      out->push_back('{');
      for (size_t i = 0; i < obj_.size(); ++i) {
        if (i > 0) out->push_back(',');
        Newline(out, indent, depth + 1);
        EscapeTo(obj_[i].first, out);
        out->push_back(':');
        if (indent > 0) out->push_back(' ');
        obj_[i].second.DumpTo(out, indent, depth + 1);
      }
      if (!obj_.empty()) Newline(out, indent, depth);
      out->push_back('}');
      break;
    }
  }
}

std::string Value::Dump(int indent) const {
  std::string out;
  DumpTo(&out, indent, 0);
  if (indent > 0) out.push_back('\n');
  return out;
}

namespace {

/// Recursive-descent parser over the serialized subset above (which is all
/// of JSON except exponent-free integer fidelity: digit-only tokens become
/// kUint, anything with '.', 'e', or '-' becomes kDouble).
class Parser {
 public:
  explicit Parser(const std::string& text) : s_(text) {}

  Result<Value> Parse() {
    Value v;
    SMDB_RETURN_IF_ERROR(ParseValue(&v, 0));
    SkipWs();
    if (pos_ != s_.size()) return Err("trailing characters");
    return v;
  }

 private:
  static constexpr int kMaxDepth = 64;

  Status Err(const std::string& what) const {
    return Status::InvalidArgument("json parse error at offset " +
                                   std::to_string(pos_) + ": " + what);
  }

  void SkipWs() {
    while (pos_ < s_.size() && std::isspace(static_cast<unsigned char>(s_[pos_]))) {
      ++pos_;
    }
  }

  bool Consume(char c) {
    SkipWs();
    if (pos_ < s_.size() && s_[pos_] == c) {
      ++pos_;
      return true;
    }
    return false;
  }

  Status ParseValue(Value* out, int depth) {
    if (depth > kMaxDepth) return Err("nesting too deep");
    SkipWs();
    if (pos_ >= s_.size()) return Err("unexpected end of input");
    char c = s_[pos_];
    if (c == '{') return ParseObject(out, depth);
    if (c == '[') return ParseArray(out, depth);
    if (c == '"') return ParseString(out);
    if (c == 't' || c == 'f') return ParseBool(out);
    if (c == 'n') return ParseNull(out);
    return ParseNumber(out);
  }

  Status ParseObject(Value* out, int depth) {
    ++pos_;  // '{'
    *out = Value::Object();
    if (Consume('}')) return Status::Ok();
    while (true) {
      SkipWs();
      Value key;
      if (pos_ >= s_.size() || s_[pos_] != '"') return Err("expected key");
      SMDB_RETURN_IF_ERROR(ParseString(&key));
      if (!Consume(':')) return Err("expected ':'");
      Value val;
      SMDB_RETURN_IF_ERROR(ParseValue(&val, depth + 1));
      out->Set(key.AsString(), std::move(val));
      if (Consume('}')) return Status::Ok();
      if (!Consume(',')) return Err("expected ',' or '}'");
    }
  }

  Status ParseArray(Value* out, int depth) {
    ++pos_;  // '['
    *out = Value::Array();
    if (Consume(']')) return Status::Ok();
    while (true) {
      Value val;
      SMDB_RETURN_IF_ERROR(ParseValue(&val, depth + 1));
      out->Append(std::move(val));
      if (Consume(']')) return Status::Ok();
      if (!Consume(',')) return Err("expected ',' or ']'");
    }
  }

  Status ParseString(Value* out) {
    ++pos_;  // '"'
    std::string s;
    while (pos_ < s_.size() && s_[pos_] != '"') {
      char c = s_[pos_++];
      if (c != '\\') {
        s.push_back(c);
        continue;
      }
      if (pos_ >= s_.size()) return Err("bad escape");
      char e = s_[pos_++];
      switch (e) {
        case '"': s.push_back('"'); break;
        case '\\': s.push_back('\\'); break;
        case '/': s.push_back('/'); break;
        case 'n': s.push_back('\n'); break;
        case 'r': s.push_back('\r'); break;
        case 't': s.push_back('\t'); break;
        case 'b': s.push_back('\b'); break;
        case 'f': s.push_back('\f'); break;
        case 'u': {
          if (pos_ + 4 > s_.size()) return Err("bad \\u escape");
          unsigned code = 0;
          for (int i = 0; i < 4; ++i) {
            char h = s_[pos_++];
            code <<= 4;
            if (h >= '0' && h <= '9') code |= unsigned(h - '0');
            else if (h >= 'a' && h <= 'f') code |= unsigned(h - 'a' + 10);
            else if (h >= 'A' && h <= 'F') code |= unsigned(h - 'A' + 10);
            else return Err("bad \\u escape");
          }
          // Only the Latin-1 range is emitted by our writer.
          s.push_back(static_cast<char>(code & 0xFF));
          break;
        }
        default:
          return Err("bad escape");
      }
    }
    if (pos_ >= s_.size()) return Err("unterminated string");
    ++pos_;  // closing '"'
    *out = Value::Str(std::move(s));
    return Status::Ok();
  }

  Status ParseBool(Value* out) {
    if (s_.compare(pos_, 4, "true") == 0) {
      pos_ += 4;
      *out = Value::Bool(true);
      return Status::Ok();
    }
    if (s_.compare(pos_, 5, "false") == 0) {
      pos_ += 5;
      *out = Value::Bool(false);
      return Status::Ok();
    }
    return Err("bad literal");
  }

  Status ParseNull(Value* out) {
    if (s_.compare(pos_, 4, "null") == 0) {
      pos_ += 4;
      *out = Value::Null();
      return Status::Ok();
    }
    return Err("bad literal");
  }

  Status ParseNumber(Value* out) {
    size_t start = pos_;
    bool integral = true;
    if (pos_ < s_.size() && s_[pos_] == '-') {
      integral = false;
      ++pos_;
    }
    while (pos_ < s_.size()) {
      char c = s_[pos_];
      if (std::isdigit(static_cast<unsigned char>(c))) {
        ++pos_;
      } else if (c == '.' || c == 'e' || c == 'E' || c == '+' || c == '-') {
        integral = false;
        ++pos_;
      } else {
        break;
      }
    }
    if (pos_ == start) return Err("expected number");
    std::string tok = s_.substr(start, pos_ - start);
    if (integral) {
      *out = Value::Uint(std::strtoull(tok.c_str(), nullptr, 10));
    } else {
      *out = Value::Double(std::strtod(tok.c_str(), nullptr));
    }
    return Status::Ok();
  }

  const std::string& s_;
  size_t pos_ = 0;
};

}  // namespace

Result<Value> Value::Parse(const std::string& text) {
  return Parser(text).Parse();
}

}  // namespace json
}  // namespace smdb
