#ifndef SMDB_COMMON_ATOMIC_UTIL_H_
#define SMDB_COMMON_ATOMIC_UTIL_H_

#include <atomic>
#include <cstdint>

namespace smdb {

/// Relaxed increment of a plain counter field through std::atomic_ref.
///
/// The simulator's stats structs keep plain uint64_t members so that
/// single-threaded readers (metrics registries, digests, tests) see them as
/// ordinary fields, while the sharded execution path bumps them from worker
/// threads without data races. Counters are pure sums, so relaxed ordering
/// is sufficient and the final totals are schedule-invariant.
inline void AtomicInc(uint64_t& counter, uint64_t delta = 1) {
  std::atomic_ref<uint64_t>(counter).fetch_add(delta,
                                               std::memory_order_relaxed);
}

/// AtomicInc that also returns the post-increment value (sequence number
/// allocation where the caller needs its ticket).
inline uint64_t AtomicIncFetch(uint64_t& counter, uint64_t delta = 1) {
  return std::atomic_ref<uint64_t>(counter).fetch_add(
             delta, std::memory_order_relaxed) +
         delta;
}

/// Relaxed racy-read of a plain counter that workers may be bumping.
inline uint64_t AtomicLoad(const uint64_t& counter) {
  return std::atomic_ref<const uint64_t>(counter).load(
      std::memory_order_relaxed);
}

/// Monotonic clock advance: counter = max(counter, floor) + delta, applied
/// atomically. Used for the per-node simulated clocks, whose jump-to-max
/// semantics (line-lock hand-offs) must stay race-free under sharded
/// execution.
inline uint64_t AtomicAdvance(uint64_t& counter, uint64_t floor,
                              uint64_t delta) {
  std::atomic_ref<uint64_t> ref(counter);
  uint64_t cur = ref.load(std::memory_order_relaxed);
  while (true) {
    uint64_t next = (cur > floor ? cur : floor) + delta;
    if (ref.compare_exchange_weak(cur, next, std::memory_order_relaxed)) {
      return next;
    }
  }
}

}  // namespace smdb

#endif  // SMDB_COMMON_ATOMIC_UTIL_H_
