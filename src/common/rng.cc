#include "common/rng.h"

#include <cmath>

namespace smdb {
namespace {

uint64_t SplitMix64(uint64_t& x) {
  x += 0x9E3779B97f4A7C15ULL;
  uint64_t z = x;
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
  return z ^ (z >> 31);
}

uint64_t Rotl(uint64_t x, int k) { return (x << k) | (x >> (64 - k)); }

double Zeta(uint64_t n, double theta) {
  double sum = 0.0;
  for (uint64_t i = 1; i <= n; ++i) sum += 1.0 / std::pow(double(i), theta);
  return sum;
}

}  // namespace

Rng::Rng(uint64_t seed) {
  uint64_t x = seed;
  for (auto& s : s_) s = SplitMix64(x);
}

uint64_t Rng::Next() {
  uint64_t result = Rotl(s_[1] * 5, 7) * 9;
  uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = Rotl(s_[3], 45);
  return result;
}

uint64_t Rng::Uniform(uint64_t bound) { return Next() % bound; }

uint64_t Rng::Range(uint64_t lo, uint64_t hi) {
  return lo + Uniform(hi - lo + 1);
}

bool Rng::Bernoulli(double p) { return NextDouble() < p; }

double Rng::NextDouble() {
  return double(Next() >> 11) * (1.0 / 9007199254740992.0);
}

uint64_t Rng::Zipf(uint64_t n, double theta) {
  if (n <= 1) return 0;
  if (theta <= 0.0) return Uniform(n);
  if (n != zipf_n_ || theta != zipf_theta_) {
    zipf_n_ = n;
    zipf_theta_ = theta;
    zipf_zetan_ = Zeta(n, theta);
    zipf_alpha_ = 1.0 / (1.0 - theta);
    double zeta2 = Zeta(2, theta);
    zipf_eta_ = (1.0 - std::pow(2.0 / double(n), 1.0 - theta)) /
                (1.0 - zeta2 / zipf_zetan_);
  }
  double u = NextDouble();
  double uz = u * zipf_zetan_;
  if (uz < 1.0) return 0;
  if (uz < 1.0 + std::pow(0.5, zipf_theta_)) return 1;
  return static_cast<uint64_t>(
      double(n) * std::pow(zipf_eta_ * u - zipf_eta_ + 1.0, zipf_alpha_));
}

}  // namespace smdb
