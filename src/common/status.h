#ifndef SMDB_COMMON_STATUS_H_
#define SMDB_COMMON_STATUS_H_

#include <cassert>
#include <optional>
#include <string>
#include <utility>

namespace smdb {

/// Error-handling vocabulary for the library (RocksDB-style). The library
/// does not use exceptions; every fallible operation returns a Status or a
/// Result<T>.
class Status {
 public:
  enum class Code : uint8_t {
    kOk = 0,
    kNotFound,
    kCorruption,       // on-disk or in-memory structure is inconsistent
    kInvalidArgument,
    kBusy,             // lock conflict; request queued, poll for the grant
    kTryAgain,         // transient capacity rejection; re-issue the request
    kDeadlock,         // transaction chosen as deadlock victim
    kNodeFailed,       // operation issued on/against a crashed node
    kLineLost,         // referenced cache line has no surviving copy
    kAborted,          // transaction has been aborted
    kNotSupported,
    kIoError,
  };

  Status() : code_(Code::kOk) {}

  static Status Ok() { return Status(); }
  static Status NotFound(std::string msg = "") {
    return Status(Code::kNotFound, std::move(msg));
  }
  static Status Corruption(std::string msg = "") {
    return Status(Code::kCorruption, std::move(msg));
  }
  static Status InvalidArgument(std::string msg = "") {
    return Status(Code::kInvalidArgument, std::move(msg));
  }
  static Status Busy(std::string msg = "") {
    return Status(Code::kBusy, std::move(msg));
  }
  static Status TryAgain(std::string msg = "") {
    return Status(Code::kTryAgain, std::move(msg));
  }
  static Status Deadlock(std::string msg = "") {
    return Status(Code::kDeadlock, std::move(msg));
  }
  static Status NodeFailed(std::string msg = "") {
    return Status(Code::kNodeFailed, std::move(msg));
  }
  static Status LineLost(std::string msg = "") {
    return Status(Code::kLineLost, std::move(msg));
  }
  static Status Aborted(std::string msg = "") {
    return Status(Code::kAborted, std::move(msg));
  }
  static Status NotSupported(std::string msg = "") {
    return Status(Code::kNotSupported, std::move(msg));
  }
  static Status IoError(std::string msg = "") {
    return Status(Code::kIoError, std::move(msg));
  }

  bool ok() const { return code_ == Code::kOk; }
  bool IsNotFound() const { return code_ == Code::kNotFound; }
  bool IsBusy() const { return code_ == Code::kBusy; }
  bool IsTryAgain() const { return code_ == Code::kTryAgain; }
  bool IsDeadlock() const { return code_ == Code::kDeadlock; }
  bool IsLineLost() const { return code_ == Code::kLineLost; }
  bool IsAborted() const { return code_ == Code::kAborted; }
  bool IsNodeFailed() const { return code_ == Code::kNodeFailed; }

  Code code() const { return code_; }
  const std::string& message() const { return msg_; }

  /// Human-readable "code: message" string.
  std::string ToString() const;

 private:
  Status(Code code, std::string msg) : code_(code), msg_(std::move(msg)) {}

  Code code_;
  std::string msg_;
};

/// A value-or-Status pair. Mirrors absl::StatusOr in spirit.
template <typename T>
class Result {
 public:
  Result(T value) : value_(std::move(value)) {}            // NOLINT
  Result(Status status) : status_(std::move(status)) {     // NOLINT
    assert(!status_.ok());
  }

  bool ok() const { return status_.ok(); }
  const Status& status() const { return status_; }

  T& value() & {
    assert(ok());
    return *value_;
  }
  const T& value() const& {
    assert(ok());
    return *value_;
  }
  T&& value() && {
    assert(ok());
    return std::move(*value_);
  }

  T& operator*() { return value(); }
  const T& operator*() const { return value(); }
  T* operator->() { return &value(); }
  const T* operator->() const { return &value(); }

 private:
  Status status_;
  std::optional<T> value_;
};

/// Propagates a non-OK Status to the caller.
#define SMDB_RETURN_IF_ERROR(expr)            \
  do {                                        \
    ::smdb::Status _st = (expr);              \
    if (!_st.ok()) return _st;                \
  } while (0)

/// Evaluates a Result<T> expression; on error returns the Status, otherwise
/// assigns the value to `lhs`.
#define SMDB_ASSIGN_OR_RETURN(lhs, expr)      \
  auto SMDB_CONCAT_(_res, __LINE__) = (expr); \
  if (!SMDB_CONCAT_(_res, __LINE__).ok())     \
    return SMDB_CONCAT_(_res, __LINE__).status(); \
  lhs = std::move(SMDB_CONCAT_(_res, __LINE__)).value()

#define SMDB_CONCAT_INNER_(a, b) a##b
#define SMDB_CONCAT_(a, b) SMDB_CONCAT_INNER_(a, b)

}  // namespace smdb

#endif  // SMDB_COMMON_STATUS_H_
