#include "common/status.h"

#include "common/types.h"

namespace smdb {
namespace {

const char* CodeName(Status::Code code) {
  switch (code) {
    case Status::Code::kOk: return "OK";
    case Status::Code::kNotFound: return "NotFound";
    case Status::Code::kCorruption: return "Corruption";
    case Status::Code::kInvalidArgument: return "InvalidArgument";
    case Status::Code::kBusy: return "Busy";
    case Status::Code::kTryAgain: return "TryAgain";
    case Status::Code::kDeadlock: return "Deadlock";
    case Status::Code::kNodeFailed: return "NodeFailed";
    case Status::Code::kLineLost: return "LineLost";
    case Status::Code::kAborted: return "Aborted";
    case Status::Code::kNotSupported: return "NotSupported";
    case Status::Code::kIoError: return "IoError";
  }
  return "Unknown";
}

}  // namespace

std::string Status::ToString() const {
  std::string out = CodeName(code_);
  if (!msg_.empty()) {
    out += ": ";
    out += msg_;
  }
  return out;
}

std::string ToString(const RecordId& rid) {
  return "p" + std::to_string(rid.page) + ".s" + std::to_string(rid.slot);
}

}  // namespace smdb
