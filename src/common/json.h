#ifndef SMDB_COMMON_JSON_H_
#define SMDB_COMMON_JSON_H_

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "common/status.h"

namespace smdb {
namespace json {

/// Minimal JSON document model for the fuzzer's replay files and other
/// config serialization. Deliberately tiny: ordered objects, arrays,
/// strings, bools, null, and numbers. Integers are kept as uint64_t so
/// 64-bit RNG seeds round-trip bit-exactly (a double would silently lose
/// precision above 2^53 and break deterministic replay).
class Value {
 public:
  enum class Type : uint8_t {
    kNull,
    kBool,
    kUint,
    kDouble,
    kString,
    kArray,
    kObject,
  };

  Value() = default;

  static Value Null() { return Value(); }
  static Value Bool(bool b) {
    Value v;
    v.type_ = Type::kBool;
    v.bool_ = b;
    return v;
  }
  static Value Uint(uint64_t u) {
    Value v;
    v.type_ = Type::kUint;
    v.uint_ = u;
    return v;
  }
  static Value Double(double d) {
    Value v;
    v.type_ = Type::kDouble;
    v.double_ = d;
    return v;
  }
  static Value Str(std::string s) {
    Value v;
    v.type_ = Type::kString;
    v.str_ = std::move(s);
    return v;
  }
  static Value Array() {
    Value v;
    v.type_ = Type::kArray;
    return v;
  }
  static Value Object() {
    Value v;
    v.type_ = Type::kObject;
    return v;
  }

  Type type() const { return type_; }
  bool is_object() const { return type_ == Type::kObject; }
  bool is_array() const { return type_ == Type::kArray; }

  // Builders ------------------------------------------------------------

  /// Appends to an array value.
  void Append(Value v) { arr_.push_back(std::move(v)); }
  /// Sets (or replaces) a key of an object value.
  void Set(const std::string& key, Value v);

  // Accessors -----------------------------------------------------------

  /// Object member lookup; nullptr if absent or not an object.
  const Value* Find(const std::string& key) const;

  const std::vector<Value>& array() const { return arr_; }
  const std::vector<std::pair<std::string, Value>>& members() const {
    return obj_;
  }

  /// Loose scalar readers with defaults (numbers convert between the two
  /// numeric representations).
  bool AsBool(bool def = false) const {
    return type_ == Type::kBool ? bool_ : def;
  }
  uint64_t AsUint(uint64_t def = 0) const;
  double AsDouble(double def = 0.0) const;
  const std::string& AsString(const std::string& def = EmptyString()) const {
    return type_ == Type::kString ? str_ : def;
  }

  /// Convenience: object member as scalar with default.
  bool GetBool(const std::string& key, bool def = false) const;
  uint64_t GetUint(const std::string& key, uint64_t def = 0) const;
  double GetDouble(const std::string& key, double def = 0.0) const;
  std::string GetString(const std::string& key,
                        const std::string& def = "") const;

  // Serialization -------------------------------------------------------

  /// Serializes; indent > 0 pretty-prints with that many spaces per level.
  std::string Dump(int indent = 0) const;

  static Result<Value> Parse(const std::string& text);

 private:
  static const std::string& EmptyString();
  void DumpTo(std::string* out, int indent, int depth) const;

  Type type_ = Type::kNull;
  bool bool_ = false;
  uint64_t uint_ = 0;
  double double_ = 0.0;
  std::string str_;
  std::vector<Value> arr_;
  std::vector<std::pair<std::string, Value>> obj_;
};

}  // namespace json
}  // namespace smdb

#endif  // SMDB_COMMON_JSON_H_
