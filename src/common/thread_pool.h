#ifndef SMDB_COMMON_THREAD_POOL_H_
#define SMDB_COMMON_THREAD_POOL_H_

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <functional>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

namespace smdb {

/// Small work-stealing thread pool for host-side recovery work (per-node
/// log scans, partition planning). The simulator itself stays sequential —
/// the pool only ever runs pure host-memory reads that touch disjoint or
/// private state.
///
/// Design: one deque per worker slot, each guarded by its own mutex. A
/// worker drains its own deque from the back and, when empty, steals from
/// the other slots' fronts. The caller participates as slot 0, so a pool
/// constructed with `workers` runs up to `workers` tasks concurrently while
/// spawning only `workers - 1` threads. With `workers <= 1` (or n <= 1)
/// ParallelFor degenerates to an inline loop on the calling thread —
/// bit-identical to not having a pool at all.
class ThreadPool {
 public:
  /// Spawns `workers - 1` background threads (0 for workers <= 1).
  explicit ThreadPool(unsigned workers);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  unsigned workers() const { return static_cast<unsigned>(queues_.size()); }

  /// Runs fn(0) .. fn(n-1), blocking until all complete. Tasks may execute
  /// on any worker in any order: fn must only touch disjoint or
  /// thread-private state. Not reentrant (fn must not call ParallelFor on
  /// the same pool).
  void ParallelFor(size_t n, const std::function<void(size_t)>& fn);

 private:
  /// Queue items carry the generation that enqueued them: a straggler
  /// worker that is still draining generation g when the caller starts
  /// generation g+1 must not pop the new items — it would run them
  /// through its stale job pointer, which dangles once the previous
  /// ParallelFor's `fn` goes out of scope.
  struct Item {
    uint64_t gen;
    size_t index;
  };
  struct Queue {
    std::mutex mu;
    std::deque<Item> items;
  };

  void WorkerLoop(size_t slot);
  /// Pops a generation-`gen` task from the slot's own back, else steals
  /// from the other fronts. Items of other generations are left in place.
  bool FindTask(size_t slot, uint64_t gen, size_t* out);
  void Drain(size_t slot, uint64_t gen, const std::function<void(size_t)>* fn);

  std::vector<std::unique_ptr<Queue>> queues_;
  std::vector<std::thread> threads_;

  std::mutex mu_;
  std::condition_variable work_cv_;   // workers wait for a new generation
  std::condition_variable done_cv_;   // caller waits for pending_ == 0
  const std::function<void(size_t)>* job_ = nullptr;
  uint64_t generation_ = 0;
  size_t pending_ = 0;
  bool stop_ = false;
};

}  // namespace smdb

#endif  // SMDB_COMMON_THREAD_POOL_H_
