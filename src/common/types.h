#ifndef SMDB_COMMON_TYPES_H_
#define SMDB_COMMON_TYPES_H_

#include <cstdint>
#include <functional>
#include <limits>
#include <string>

namespace smdb {

/// Identifier of a node (processor/memory pair) in the shared memory machine.
using NodeId = uint16_t;
inline constexpr NodeId kInvalidNode = std::numeric_limits<NodeId>::max();

/// Byte address in the simulated shared physical address space.
using Addr = uint64_t;

/// Index of a cache line in the shared address space (Addr / line_size).
using LineAddr = uint64_t;
inline constexpr LineAddr kInvalidLine = std::numeric_limits<LineAddr>::max();

/// Log sequence number within one node's log. LSNs are per-node monotonic;
/// a globally unique log position is the pair (NodeId, Lsn).
using Lsn = uint64_t;
inline constexpr Lsn kInvalidLsn = 0;

/// Identifier of a disk page in the stable database.
using PageId = uint32_t;
inline constexpr PageId kInvalidPage = std::numeric_limits<PageId>::max();

/// Transaction identifier. The node that executes the transaction is encoded
/// in the top 16 bits (the paper notes that "the transaction ID also encodes
/// the node ID", which the Volatile LBM policy exploits for undo tagging).
using TxnId = uint64_t;
inline constexpr TxnId kInvalidTxn = 0;

/// Builds a TxnId that encodes the executing node.
constexpr TxnId MakeTxnId(NodeId node, uint64_t seq) {
  return (static_cast<uint64_t>(node) << 48) | (seq & 0xFFFFFFFFFFFFULL);
}

/// Extracts the executing node from a TxnId.
constexpr NodeId TxnNode(TxnId txn) {
  return static_cast<NodeId>(txn >> 48);
}

/// Extracts the per-node sequence number from a TxnId.
constexpr uint64_t TxnSeq(TxnId txn) { return txn & 0xFFFFFFFFFFFFULL; }

/// Simulated time, in nanoseconds. The simulator charges costs to per-node
/// clocks; there is no wall-clock time anywhere in the library.
using SimTime = uint64_t;

/// Identifier of a record: (page, slot) pair.
struct RecordId {
  PageId page = kInvalidPage;
  uint16_t slot = 0;

  friend bool operator==(const RecordId&, const RecordId&) = default;
  friend auto operator<=>(const RecordId&, const RecordId&) = default;
};

/// Returns "p<page>.s<slot>" for diagnostics.
std::string ToString(const RecordId& rid);

}  // namespace smdb

template <>
struct std::hash<smdb::RecordId> {
  size_t operator()(const smdb::RecordId& r) const noexcept {
    return std::hash<uint64_t>()((static_cast<uint64_t>(r.page) << 16) |
                                 r.slot);
  }
};

#endif  // SMDB_COMMON_TYPES_H_
