#ifndef SMDB_COMMON_RNG_H_
#define SMDB_COMMON_RNG_H_

#include <cstddef>
#include <cstdint>
#include <utility>
#include <vector>

namespace smdb {

/// Deterministic pseudo-random number generator (xoshiro256**). Every source
/// of randomness in the simulator and the workloads flows through a seeded
/// Rng so that any run — including any crash/recovery interleaving — is
/// exactly reproducible from its seed.
class Rng {
 public:
  explicit Rng(uint64_t seed);

  /// Uniform 64-bit value.
  uint64_t Next();

  /// Uniform value in [0, bound). bound must be > 0.
  uint64_t Uniform(uint64_t bound);

  /// Uniform value in [lo, hi]. Requires lo <= hi.
  uint64_t Range(uint64_t lo, uint64_t hi);

  /// Returns true with probability p (0 <= p <= 1).
  bool Bernoulli(double p);

  /// Uniform double in [0, 1).
  double NextDouble();

  /// Zipfian-distributed value in [0, n) with skew theta (0 = uniform-ish,
  /// typical database benchmarks use ~0.99). Used by workload generators to
  /// model hot records.
  uint64_t Zipf(uint64_t n, double theta);

  /// In-place Fisher-Yates shuffle.
  template <typename T>
  void Shuffle(std::vector<T>& v) {
    for (size_t i = v.size(); i > 1; --i) {
      size_t j = Uniform(i);
      std::swap(v[i - 1], v[j]);
    }
  }

 private:
  uint64_t s_[4];
  // Cached Zipf parameters (recomputed when n/theta change).
  uint64_t zipf_n_ = 0;
  double zipf_theta_ = -1.0;
  double zipf_zetan_ = 0.0;
  double zipf_alpha_ = 0.0;
  double zipf_eta_ = 0.0;
};

}  // namespace smdb

#endif  // SMDB_COMMON_RNG_H_
