#include "wal/group_commit.h"

#include <algorithm>

#include "obs/observatory.h"
#include "obs/trace.h"
#include "sim/machine.h"
#include "wal/log_manager.h"

namespace smdb {

GroupCommitPipeline::GroupCommitPipeline(Machine* machine, LogManager* log,
                                         SimTime window_ns, uint32_t max_batch)
    : machine_(machine),
      log_(log),
      window_ns_(window_ns),
      max_batch_(std::max<uint32_t>(1, max_batch)),
      nodes_(machine->num_nodes()) {
  log_->AddForceHook([this](NodeId node) { OnForced(node); });
}

void GroupCommitPipeline::ArmDeadline(NodeState* ns, SimTime now) {
  if (ns->deadline_armed) return;  // the oldest demand owns the deadline
  ns->deadline_armed = true;
  ns->deadline_at = now + window_ns_;
}

Status GroupCommitPipeline::MaybeSizeFlush(NodeId node) {
  if (log_->TailSize(node) < max_batch_) return Status::Ok();
  return FlushNow(node, /*size_bound=*/true);
}

Status GroupCommitPipeline::FlushNow(NodeId node, bool size_bound) {
  NodeState& ns = nodes_[node];
  bool intent = ns.has_intent;
  if (size_bound) {
    ++stats_.size_flushes;
  } else {
    ++stats_.deadline_flushes;
  }
  SMDB_TRACE(tracer_, {.kind = TraceEventKind::kGroupCommitFlush,
                       .node = node,
                       .ts = machine_->NodeClock(node),
                       .a = ns.commits.size(),
                       .label = size_bound ? "size" : "deadline"});
  SMDB_RETURN_IF_ERROR(log_->Force(node, node));
  // A pipeline flush that covered an eager-LBM intent is a Stable-LBM
  // force for accounting purposes (it replaces what would have been one
  // force per update under the classic eager policy).
  if (intent) ++log_->stats().lbm_forces;
  return Status::Ok();
}

Status GroupCommitPipeline::EnqueueCommit(NodeId node, TxnId txn, Lsn lsn) {
  NodeState& ns = nodes_[node];
  SimTime now = machine_->NodeClock(node);
  ns.commits.push_back(PendingCommit{txn, lsn, now});
  ++stats_.enqueued_commits;
  SMDB_OBS(obs_, OnGcEnqueued(node, ns.commits.size(), now));
  SMDB_TRACE(tracer_, {.kind = TraceEventKind::kForceIntent,
                       .node = node,
                       .txn = txn,
                       .ts = now,
                       .a = lsn,
                       .label = "commit"});
  ArmDeadline(&ns, now);
  return MaybeSizeFlush(node);
}

Status GroupCommitPipeline::NoteLbmIntent(NodeId node) {
  NodeState& ns = nodes_[node];
  ++stats_.lbm_intents;
  if (!ns.has_intent) {
    ns.has_intent = true;
    SMDB_TRACE(tracer_, {.kind = TraceEventKind::kForceIntent,
                         .node = node,
                         .ts = machine_->NodeClock(node),
                         .label = "lbm"});
    ArmDeadline(&ns, machine_->NodeClock(node));
  }
  return MaybeSizeFlush(node);
}

Status GroupCommitPipeline::Poll(NodeId node) {
  NodeState& ns = nodes_[node];
  if (ns.deadline_armed && machine_->NodeClock(node) >= ns.deadline_at) {
    return FlushNow(node, /*size_bound=*/false);
  }
  machine_->Tick(node, machine_->config().timing.group_commit_poll_ns);
  return Status::Ok();
}

Lsn GroupCommitPipeline::PendingCommitLsn(TxnId txn) const {
  for (const NodeState& ns : nodes_) {
    for (const PendingCommit& pc : ns.commits) {
      if (pc.txn == txn) return pc.lsn;
    }
  }
  return kInvalidLsn;
}

void GroupCommitPipeline::DropCommit(TxnId txn) {
  for (NodeState& ns : nodes_) {
    for (size_t i = 0; i < ns.commits.size(); ++i) {
      if (ns.commits[i].txn == txn) {
        ns.commits.erase(ns.commits.begin() + i);
        return;
      }
    }
  }
}

void GroupCommitPipeline::OnNodeCrash(NodeId node) {
  NodeState& ns = nodes_[node];
  ns.has_intent = false;
  ns.deadline_armed = false;
  std::vector<PendingCommit> kept;
  for (const PendingCommit& pc : ns.commits) {
    // A durable-but-unacknowledged commit record survived the crash in the
    // stable log; ResolvePendingCommits completes its transaction. The
    // rest died with the volatile tail and will be annulled.
    if (log_->IsStable(node, pc.lsn)) kept.push_back(pc);
  }
  ns.commits = std::move(kept);
}

std::vector<std::pair<NodeId, GroupCommitPipeline::PendingCommit>>
GroupCommitPipeline::PendingCommits() const {
  std::vector<std::pair<NodeId, PendingCommit>> out;
  for (NodeId n = 0; n < static_cast<NodeId>(nodes_.size()); ++n) {
    for (const PendingCommit& pc : nodes_[n].commits) out.emplace_back(n, pc);
  }
  return out;
}

void GroupCommitPipeline::OnForced(NodeId node) {
  NodeState& ns = nodes_[node];
  // The force moved the node's whole tail: every pending commit record and
  // every intent is durable now. Commits stay queued until their waiters
  // poll (acknowledgement is separate from durability); the window no
  // longer applies to anything.
  ns.has_intent = false;
  ns.deadline_armed = false;
  if (obs_ != nullptr && obs_->enabled()) {
    const SimTime now = machine_->NodeClock(node);
    for (PendingCommit& pc : ns.commits) {
      if (pc.residency_recorded) continue;
      pc.residency_recorded = true;
      obs_->OnGcResidency(node, now >= pc.enqueued_at ? now - pc.enqueued_at
                                                      : 0,
                          now);
    }
  }
}

}  // namespace smdb
