#ifndef SMDB_WAL_LOG_RECORD_H_
#define SMDB_WAL_LOG_RECORD_H_

#include <cstdint>
#include <string>
#include <variant>
#include <vector>

#include "common/types.h"

namespace smdb {

/// Lock modes used by the shared-memory lock manager and logged in logical
/// lock-operation records. Shared requests are compatible with each other;
/// exclusive conflicts with everything (section 2).
enum class LockMode : uint8_t {
  kNone = 0,
  kShared = 1,
  kExclusive = 2,
};

inline bool Compatible(LockMode held, LockMode requested) {
  if (held == LockMode::kNone) return true;
  return held == LockMode::kShared && requested == LockMode::kShared;
}

inline const char* ToString(LockMode m) {
  switch (m) {
    case LockMode::kNone: return "N";
    case LockMode::kShared: return "S";
    case LockMode::kExclusive: return "X";
  }
  return "?";
}

/// Physiological update record for a heap record: carries both the before
/// image (the undo information) and the after image (the redo information).
/// The paper logs these separately (an undo record on the first update, a
/// redo record on every update); combining them in one physical record is
/// equivalent and standard.
struct UpdatePayload {
  RecordId rid;
  /// Global update sequence number stamped on the record version this
  /// update produced. USNs generalise the Page-LSN: updates to one record
  /// are totally ordered (strict 2PL serialises them), so "this update is
  /// reflected in a given copy" is exactly "copy.usn >= usn".
  uint64_t usn = 0;
  /// USN of the version the before image corresponds to.
  uint64_t before_usn = 0;
  std::vector<uint8_t> before;
  std::vector<uint8_t> after;
  /// Compensation (redo-only) record written while rolling back; never
  /// undone (ARIES-style CLR).
  bool is_clr = false;
};

/// Logical lock-operation record (section 4.2.2). To ensure IFA for the
/// shared-memory lock table, *both read and write* lock acquisitions are
/// logged, as well as queued (waiting) requests and releases, so that LCBs
/// destroyed with a crashed node can be reconstructed from surviving logs.
struct LockOpPayload {
  enum class Op : uint8_t { kAcquire, kQueue, kRelease };
  uint64_t lock_name = 0;
  LockMode mode = LockMode::kNone;
  Op op = Op::kAcquire;
};

/// Logical index-operation record for non-structural B+-tree updates
/// (section 4.2.1): inserts and (logical) deletes of leaf entries.
struct IndexOpPayload {
  enum class Op : uint8_t { kInsert, kDelete };
  uint32_t tree_id = 0;
  Op op = Op::kInsert;
  uint64_t key = 0;
  RecordId value;  // payload of the entry (insert) / entry being deleted
  uint64_t usn = 0;
  bool is_clr = false;
};

/// Record of an early-committed structural change (section 4.2): a B+-tree
/// page split or page allocation, performed as a nested top-level action
/// and forced to stable storage before any other transaction may use the
/// new space. Carries the full post-change images of the touched pages
/// (physical redo): replaying the record re-establishes the structure, so
/// the early commit costs one log force rather than page flushes.
struct StructuralPayload {
  uint32_t tree_id = 0;
  PageId new_page = kInvalidPage;
  std::string description;
  /// USN stamped on the change; page images carry it as their Page-LSN.
  uint64_t usn = 0;
  /// (page, post-change image) pairs for physical redo.
  std::vector<std::pair<PageId, std::vector<uint8_t>>> page_images;
};

/// Logical record for operations on recoverable *operating system*
/// structures in shared memory (section 9's closing suggestion): e.g. a
/// disk-allocation map. OS operations are not transactional; allocations
/// are provisional until confirmed, and confirms/frees are definitive.
struct OsOpPayload {
  enum class Op : uint8_t { kAllocate, kConfirm, kFree };
  uint32_t map_id = 0;
  uint32_t block = 0;
  Op op = Op::kAllocate;
  uint64_t usn = 0;
};

struct BeginPayload {};
struct CommitPayload {};
struct AbortPayload {};

/// Per-node fuzzy checkpoint record: replay of this node's log may start at
/// the checkpoint; everything older is reflected in the stable database.
struct CheckpointPayload {
  std::vector<TxnId> active_txns;
};

enum class LogRecordType : uint8_t {
  kBegin,
  kUpdate,
  kLockOp,
  kIndexOp,
  kStructural,
  kCommit,
  kAbort,
  kCheckpoint,
  kOsOp,
};

/// One entry in a node's log. LSNs are assigned by the node's LogManager;
/// prev_lsn chains all records of one transaction (for rollback).
struct LogRecord {
  LogRecordType type = LogRecordType::kBegin;
  Lsn lsn = kInvalidLsn;
  Lsn prev_lsn = kInvalidLsn;
  TxnId txn = kInvalidTxn;
  NodeId node = kInvalidNode;
  std::variant<BeginPayload, UpdatePayload, LockOpPayload, IndexOpPayload,
               StructuralPayload, CommitPayload, AbortPayload,
               CheckpointPayload, OsOpPayload>
      payload;

  const UpdatePayload& update() const {
    return std::get<UpdatePayload>(payload);
  }
  const LockOpPayload& lock_op() const {
    return std::get<LockOpPayload>(payload);
  }
  const IndexOpPayload& index_op() const {
    return std::get<IndexOpPayload>(payload);
  }
  const CheckpointPayload& checkpoint() const {
    return std::get<CheckpointPayload>(payload);
  }
  const StructuralPayload& structural() const {
    return std::get<StructuralPayload>(payload);
  }
  const OsOpPayload& os_op() const { return std::get<OsOpPayload>(payload); }

  /// Short human-readable form for tracing and tests.
  std::string ToString() const;
};

}  // namespace smdb

#endif  // SMDB_WAL_LOG_RECORD_H_
