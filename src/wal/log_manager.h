#ifndef SMDB_WAL_LOG_MANAGER_H_
#define SMDB_WAL_LOG_MANAGER_H_

#include <deque>
#include <functional>
#include <vector>

#include "common/status.h"
#include "common/types.h"
#include "storage/stable_log.h"
#include "wal/log_record.h"

namespace smdb {

class Machine;

/// Statistics for the logging subsystem, used by the Table 1 and
/// log-force-frequency experiments.
struct LogStats {
  uint64_t appends = 0;
  uint64_t forces = 0;
  uint64_t forced_records = 0;
  uint64_t truncated_records = 0;
  /// Forces attributable to the Stable LBM policy (in excess of the commit
  /// forces every protocol performs). Incremented by the LBM policies.
  uint64_t lbm_forces = 0;

  void Reset() { *this = LogStats(); }
};

/// Per-node write-ahead logs with volatile in-cache tails.
///
/// Each node maintains a log whose updates happen in the node's cache
/// (volatile); the tail is destroyed if the node crashes. Forcing moves the
/// tail to the node's stream in the StableLogStore on a shared disk. Log
/// lines never migrate (the paper's alignment assumption), so no other
/// node's crash can damage a log tail.
class LogManager {
 public:
  LogManager(Machine* machine, StableLogStore* stable);

  /// Appends `rec` to `node`'s volatile log tail; assigns and returns its
  /// LSN. Charges the volatile write cost to `node`.
  Lsn Append(NodeId node, LogRecord rec);

  /// Forces `node`'s entire volatile tail to stable storage. `requestor`
  /// pays the I/O cost (it may differ from `node`, e.g. when the WAL page-
  /// flush gate forces another node's log, section 6).
  Status Force(NodeId requestor, NodeId node);

  /// True if `node`'s log is stable through `lsn`.
  bool IsStable(NodeId node, Lsn lsn) const;

  Lsn stable_lsn(NodeId node) const { return stable_->LastLsn(node); }
  Lsn last_lsn(NodeId node) const { return next_lsn_[node] - 1; }

  /// Destroys `node`'s volatile tail (crash injection path; Database wires
  /// this to the machine's crash hook).
  void OnNodeCrash(NodeId node);

  /// Iterates `node`'s durable records in LSN order.
  void ForEachStable(NodeId node,
                     const std::function<void(const LogRecord&)>& fn) const;

  /// Iterates `node`'s full log — durable prefix then volatile tail. Only
  /// meaningful for surviving nodes (a crashed node's tail is empty).
  void ForEachAll(NodeId node,
                  const std::function<void(const LogRecord&)>& fn) const;

  /// Volatile tail size (diagnostics/tests).
  size_t TailSize(NodeId node) const { return tails_[node].size(); }

  /// Replay start position management (set by checkpoints).
  void SetCheckpointLsn(NodeId node, Lsn lsn) { checkpoint_lsn_[node] = lsn; }
  Lsn checkpoint_lsn(NodeId node) const { return checkpoint_lsn_[node]; }

  /// Reclaims `node`'s stable log prefix through `lsn`. Callers must keep
  /// the safe point behind both the checkpoint and the oldest active
  /// transaction's first record. Returns # records dropped.
  size_t TruncateThrough(NodeId node, Lsn lsn) {
    // Remember the highest update/index-op USN dropped from this node's
    // log. A node's log is USN-monotone in LSN order, so recovery can tell
    // a checkpoint-truncated record (usn at or below this mark: its
    // transaction had finished, the stable database covers it) from one
    // that only ever existed in a lost volatile tail (above the mark).
    ForEachStable(node, [&](const LogRecord& rec) {
      if (rec.lsn > lsn) return;
      uint64_t usn = 0;
      if (rec.type == LogRecordType::kUpdate) {
        usn = rec.update().usn;
      } else if (rec.type == LogRecordType::kIndexOp) {
        usn = rec.index_op().usn;
      } else if (rec.type == LogRecordType::kStructural) {
        usn = rec.structural().usn;
      }
      if (usn > max_truncated_usn_[node]) max_truncated_usn_[node] = usn;
    });
    size_t n = stable_->Truncate(node, lsn);
    stats_.truncated_records += n;
    return n;
  }

  /// Highest USN ever truncated from `node`'s stable log (0 if none).
  uint64_t max_truncated_usn(NodeId node) const {
    return max_truncated_usn_[node];
  }

  /// Hook fired after a successful force of `node`'s log (the Stable LBM
  /// triggered policy uses it to clear its active-line bookkeeping).
  void AddForceHook(std::function<void(NodeId)> hook) {
    force_hooks_.push_back(std::move(hook));
  }

  LogStats& stats() { return stats_; }
  const LogStats& stats() const { return stats_; }
  StableLogStore& stable_store() { return *stable_; }

 private:
  Machine* machine_;
  StableLogStore* stable_;
  std::vector<std::deque<LogRecord>> tails_;
  std::vector<Lsn> next_lsn_;
  std::vector<Lsn> checkpoint_lsn_;
  std::vector<uint64_t> max_truncated_usn_;
  std::vector<std::function<void(NodeId)>> force_hooks_;
  LogStats stats_;
};

}  // namespace smdb

#endif  // SMDB_WAL_LOG_MANAGER_H_
