#ifndef SMDB_WAL_LOG_MANAGER_H_
#define SMDB_WAL_LOG_MANAGER_H_

#include <cstddef>
#include <deque>
#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <utility>
#include <vector>

#include "common/atomic_util.h"

#include "common/status.h"
#include "common/types.h"
#include "obs/histogram.h"
#include "obs/profiler.h"
#include "storage/stable_log.h"
#include "wal/log_record.h"

namespace smdb {

class Machine;
class TraceRecorder;

/// Statistics for the logging subsystem, used by the Table 1 and
/// log-force-frequency experiments.
struct LogStats {
  /// Batch-size histogram buckets for forces: 1, 2, 3-4, 5-8, 9-16, 17-32,
  /// 33-64, 65+ records per force. The group-commit experiments read the
  /// mass shifting rightwards as the coalescing window grows.
  static constexpr size_t kBatchBuckets = 8;

  uint64_t appends = 0;
  /// Forces that actually wrote records. A force of an empty tail is a
  /// no-op (no I/O is issued), so forces <= forced_records always holds.
  uint64_t forces = 0;
  /// Records made durable, counted once per force from the batch actually
  /// written.
  uint64_t forced_records = 0;
  uint64_t truncated_records = 0;
  /// Forces attributable to the Stable LBM policy (in excess of the commit
  /// forces every protocol performs). Incremented by the LBM policies.
  uint64_t lbm_forces = 0;
  /// Per-force batch sizes, on the shared obs histogram (one bucketing
  /// implementation). The classic 1/2/3-4/.../65+ buckets are derived
  /// views: every boundary is below Histogram::kSubBuckets, where buckets
  /// are unit-width, so the derived counts are exact.
  Histogram force_batches;

  /// Bucket index for a force of `n` records (n >= 1).
  static size_t BatchBucket(size_t n) {
    size_t b = 0;
    for (size_t upper = 1; b + 1 < kBatchBuckets && n > upper; ++b) {
      upper *= 2;
    }
    return b;
  }
  static const char* BatchBucketLabel(size_t bucket) {
    static const char* kLabels[kBatchBuckets] = {"1",     "2",     "3-4",
                                                 "5-8",   "9-16",  "17-32",
                                                 "33-64", "65+"};
    return kLabels[bucket];
  }
  /// Inclusive batch-size range of a classic bucket ({65, UINT64_MAX} for
  /// the last).
  static std::pair<uint64_t, uint64_t> BatchBucketRange(size_t bucket) {
    if (bucket == 0) return {1, 1};
    if (bucket + 1 >= kBatchBuckets) return {(1ULL << (kBatchBuckets - 2)) + 1,
                                             ~0ULL};
    return {(1ULL << (bucket - 1)) + 1, 1ULL << bucket};
  }
  /// Force count in the classic bucket `bucket` (the historical
  /// force_batch_hist[] view).
  uint64_t force_batch_bucket(size_t bucket) const {
    auto [lo, hi] = BatchBucketRange(bucket);
    return force_batches.CountInRange(lo, hi);
  }
  uint64_t max_force_batch() const { return force_batches.max(); }

  void Reset() { *this = LogStats(); }

  /// One-line human-readable dump. Derived from ForEachCounter, so it
  /// covers exactly the visited field set.
  std::string ToString() const;
};

/// Visits every LogStats field as ("name", value) in declaration order,
/// with one entry per histogram bucket ("force_batch_3-4", ...). ToString
/// and the obs MetricsRegistry both derive from this list (obs_test
/// asserts the two stay in sync).
template <typename Fn>
void ForEachCounter(const LogStats& s, Fn&& fn) {
  fn("appends", s.appends);
  fn("forces", s.forces);
  fn("forced_records", s.forced_records);
  fn("truncated_records", s.truncated_records);
  fn("lbm_forces", s.lbm_forces);
  for (size_t b = 0; b < LogStats::kBatchBuckets; ++b) {
    fn(std::string("force_batch_") + LogStats::BatchBucketLabel(b),
       s.force_batch_bucket(b));
  }
  fn("max_force_batch", s.max_force_batch());
}

/// Per-node write-ahead logs with volatile in-cache tails.
///
/// Thread safety: every log is guarded by its own node mutex, so sharded
/// execution can append to different nodes' logs concurrently, and a
/// cross-node force (WAL gate, triggered LBM, lock-grant logging during a
/// remote commit's waiter promotion) serialises against the owner's
/// appends. Force hooks fire *outside* the node latch — the triggered LBM
/// policy takes its own mutex and may force further logs, and holding the
/// node latch across that would invert the lbm->log lock order.
///
/// Each node maintains a log whose updates happen in the node's cache
/// (volatile); the tail is destroyed if the node crashes. Forcing moves the
/// tail to the node's stream in the StableLogStore on a shared disk. Log
/// lines never migrate (the paper's alignment assumption), so no other
/// node's crash can damage a log tail.
class LogManager {
 public:
  LogManager(Machine* machine, StableLogStore* stable);

  /// Appends `rec` to `node`'s volatile log tail; assigns and returns its
  /// LSN. Charges the volatile write cost to `node`.
  Lsn Append(NodeId node, LogRecord rec);

  /// Forces `node`'s entire volatile tail to stable storage. `requestor`
  /// pays the I/O cost (it may differ from `node`, e.g. when the WAL page-
  /// flush gate forces another node's log, section 6). Forcing an empty
  /// tail issues no I/O and counts no force — but force hooks still fire,
  /// so observers (triggered LBM, the group-commit pipeline) always see a
  /// consistent "everything appended so far is durable" signal.
  Status Force(NodeId requestor, NodeId node);

  /// Removes the record at `lsn` from `node`'s volatile tail (a withdrawn
  /// group commit: the transaction aborts before its commit record was
  /// forced). No-op if the record already left the tail. The resulting LSN
  /// gap is harmless — redo is USN-guarded and every recovery scan is
  /// keyed by transaction and record type, never by LSN contiguity.
  void AnnulVolatile(NodeId node, Lsn lsn);

  /// True if `node`'s log is stable through `lsn`.
  bool IsStable(NodeId node, Lsn lsn) const;

  Lsn stable_lsn(NodeId node) const { return stable_->LastLsn(node); }
  Lsn last_lsn(NodeId node) const { return AtomicLoad(next_lsn_[node]) - 1; }

  /// Destroys `node`'s volatile tail (crash injection path; Database wires
  /// this to the machine's crash hook).
  void OnNodeCrash(NodeId node);

  /// Iterates `node`'s durable records in LSN order.
  void ForEachStable(NodeId node,
                     const std::function<void(const LogRecord&)>& fn) const;

  /// Iterates `node`'s full log — durable prefix then volatile tail. Only
  /// meaningful for surviving nodes (a crashed node's tail is empty).
  void ForEachAll(NodeId node,
                  const std::function<void(const LogRecord&)>& fn) const;

  /// Volatile tail size (diagnostics/tests).
  size_t TailSize(NodeId node) const {
    std::lock_guard<std::mutex> lk(node_mu_[node]);
    return tails_[node].size();
  }

  /// Replay start position management (set by checkpoints).
  void SetCheckpointLsn(NodeId node, Lsn lsn) { checkpoint_lsn_[node] = lsn; }
  Lsn checkpoint_lsn(NodeId node) const { return checkpoint_lsn_[node]; }

  /// Reclaims `node`'s stable log prefix through `lsn`. Callers must keep
  /// the safe point behind both the checkpoint and the oldest active
  /// transaction's first record. Returns # records dropped.
  size_t TruncateThrough(NodeId node, Lsn lsn) {
    // Remember the highest update/index-op USN dropped from this node's
    // log. A node's log is USN-monotone in LSN order, so recovery can tell
    // a checkpoint-truncated record (usn at or below this mark: its
    // transaction had finished, the stable database covers it) from one
    // that only ever existed in a lost volatile tail (above the mark).
    ForEachStable(node, [&](const LogRecord& rec) {
      if (rec.lsn > lsn) return;
      uint64_t usn = 0;
      if (rec.type == LogRecordType::kUpdate) {
        usn = rec.update().usn;
      } else if (rec.type == LogRecordType::kIndexOp) {
        usn = rec.index_op().usn;
      } else if (rec.type == LogRecordType::kStructural) {
        usn = rec.structural().usn;
      }
      if (usn > max_truncated_usn_[node]) max_truncated_usn_[node] = usn;
    });
    size_t n = stable_->Truncate(node, lsn);
    AtomicInc(stats_.truncated_records, n);
    return n;
  }

  /// Highest USN ever truncated from `node`'s stable log (0 if none).
  uint64_t max_truncated_usn(NodeId node) const {
    return max_truncated_usn_[node];
  }

  /// Hook fired after a successful force of `node`'s log (the Stable LBM
  /// triggered policy uses it to clear its active-line bookkeeping).
  void AddForceHook(std::function<void(NodeId)> hook) {
    force_hooks_.push_back(std::move(hook));
  }

  LogStats& stats() { return stats_; }
  const LogStats& stats() const { return stats_; }
  StableLogStore& stable_store() { return *stable_; }

  /// Optional event tracer (owned by Database); null = no tracing.
  void set_tracer(TraceRecorder* tracer) { tracer_ = tracer; }
  /// Optional profiler (owned by Database); null = none. Append/Force sim
  /// time is attributed to the wal_append / wal_force phases.
  void set_profiler(Profiler* prof) { prof_ = prof; }

 private:
  Machine* machine_;
  TraceRecorder* tracer_ = nullptr;
  Profiler* prof_ = nullptr;
  StableLogStore* stable_;
  /// One latch per node log (tail + next LSN + that node's stable stream).
  std::unique_ptr<std::mutex[]> node_mu_;
  /// Guards the force-batch histogram (forces of distinct logs race).
  std::mutex hist_mu_;
  std::vector<std::deque<LogRecord>> tails_;
  std::vector<Lsn> next_lsn_;
  std::vector<Lsn> checkpoint_lsn_;
  std::vector<uint64_t> max_truncated_usn_;
  std::vector<std::function<void(NodeId)>> force_hooks_;
  LogStats stats_;
};

}  // namespace smdb

#endif  // SMDB_WAL_LOG_MANAGER_H_
