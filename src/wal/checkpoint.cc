#include "wal/checkpoint.h"

#include "db/buffer_manager.h"
#include "sim/machine.h"
#include "wal/log_manager.h"
#include "wal/log_record.h"

namespace smdb {

Status TakeCheckpoint(Machine* machine, LogManager* log,
                      BufferManager* buffers,
                      const std::vector<std::vector<TxnId>>& active_per_node,
                      NodeId coordinator) {
  // 1. Force all logs so the flush pass never trips the WAL gate.
  for (NodeId n = 0; n < machine->num_nodes(); ++n) {
    if (!machine->NodeAlive(n)) continue;
    SMDB_RETURN_IF_ERROR(log->Force(coordinator, n));
  }
  // 2. Flush every dirty page.
  SMDB_RETURN_IF_ERROR(buffers->FlushAllDirty(coordinator));
  // 3. Per-node checkpoint records.
  for (NodeId n = 0; n < machine->num_nodes(); ++n) {
    if (!machine->NodeAlive(n)) continue;
    LogRecord rec;
    rec.type = LogRecordType::kCheckpoint;
    rec.txn = kInvalidTxn;
    CheckpointPayload payload;
    if (n < active_per_node.size()) payload.active_txns = active_per_node[n];
    rec.payload = std::move(payload);
    Lsn lsn = log->Append(n, std::move(rec));
    SMDB_RETURN_IF_ERROR(log->Force(coordinator, n));
    log->SetCheckpointLsn(n, lsn);
  }
  // A checkpoint is a natural barrier: align the simulated clocks so the
  // coordinator's I/O time does not appear as phantom lock-wait skew.
  machine->SyncClocks();
  return Status::Ok();
}

}  // namespace smdb
