#ifndef SMDB_WAL_CHECKPOINT_H_
#define SMDB_WAL_CHECKPOINT_H_

#include <vector>

#include "common/status.h"
#include "common/types.h"

namespace smdb {

class Machine;
class LogManager;
class BufferManager;

/// Takes a machine-wide checkpoint:
///  1. forces every live node's log (satisfying every WAL requirement),
///  2. flushes all dirty pages to the stable database,
///  3. appends and forces a checkpoint record on each live node's log,
///     recording that node's active transactions, and
///  4. advances every node's replay start position.
///
/// `active_per_node[n]` lists the active transactions of node n;
/// `coordinator` pays the flush I/O. After a checkpoint, restart recovery
/// replays each node's log only from its checkpoint record.
Status TakeCheckpoint(Machine* machine, LogManager* log,
                      BufferManager* buffers,
                      const std::vector<std::vector<TxnId>>& active_per_node,
                      NodeId coordinator);

}  // namespace smdb

#endif  // SMDB_WAL_CHECKPOINT_H_
