#include "wal/log_record.h"

#include <sstream>

namespace smdb {
namespace {

const char* TypeName(LogRecordType t) {
  switch (t) {
    case LogRecordType::kBegin: return "BEGIN";
    case LogRecordType::kUpdate: return "UPDATE";
    case LogRecordType::kLockOp: return "LOCKOP";
    case LogRecordType::kIndexOp: return "INDEXOP";
    case LogRecordType::kStructural: return "STRUCTURAL";
    case LogRecordType::kCommit: return "COMMIT";
    case LogRecordType::kAbort: return "ABORT";
    case LogRecordType::kCheckpoint: return "CHECKPOINT";
    case LogRecordType::kOsOp: return "OSOP";
  }
  return "?";
}

}  // namespace

std::string LogRecord::ToString() const {
  std::ostringstream os;
  os << "[n" << node << " lsn=" << lsn << " txn=" << TxnSeq(txn) << "@n"
     << TxnNode(txn) << " " << TypeName(type);
  if (type == LogRecordType::kUpdate) {
    const auto& u = update();
    os << " rid=" << smdb::ToString(u.rid) << " usn=" << u.usn
       << (u.is_clr ? " CLR" : "");
  } else if (type == LogRecordType::kLockOp) {
    const auto& l = lock_op();
    os << " name=" << l.lock_name << " mode=" << smdb::ToString(l.mode)
       << " op=" << static_cast<int>(l.op);
  } else if (type == LogRecordType::kIndexOp) {
    const auto& i = index_op();
    os << " tree=" << i.tree_id
       << (i.op == IndexOpPayload::Op::kInsert ? " ins " : " del ")
       << "key=" << i.key << " usn=" << i.usn << (i.is_clr ? " CLR" : "");
  }
  os << "]";
  return os.str();
}

}  // namespace smdb
