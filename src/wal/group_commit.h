#ifndef SMDB_WAL_GROUP_COMMIT_H_
#define SMDB_WAL_GROUP_COMMIT_H_

#include <utility>
#include <vector>

#include "common/status.h"
#include "common/types.h"

namespace smdb {

class Machine;
class LogManager;
class TraceRecorder;
class Observatory;

/// Per-node flush-coalescing layer in front of LogManager::Force.
///
/// Two kinds of force demand flow through the pipeline:
///   - commit forces: TxnManager appends the commit record, enqueues it
///     here, and acknowledges the transaction only once a covering force
///     has landed (the caller polls). A crash between enqueue and flush
///     annuls the transaction — it was never acknowledged, so IFA holds by
///     construction.
///   - Stable-LBM intents: the eager policy's per-update forces degrade to
///     a per-node "this tail wants stability soon" mark. Any force of the
///     node's log covers every intent (a force moves the whole tail), and
///     the triggered policy's migration hook remains the synchronous
///     safety net, so the Stable-LBM invariant is never weakened.
///
/// A node's demands are merged into one batched force when the first of
/// three bounds trips: the coalescing window expires (sim time since the
/// oldest un-covered demand), the volatile tail reaches max_batch records,
/// or an external force (WAL flush gate, checkpoint, migration trigger)
/// happens to land first and covers everything for free.
///
/// The pipeline never initiates I/O on its own thread — there is none; it
/// is driven by the deterministic simulator through EnqueueCommit /
/// NoteLbmIntent / Poll, so crash points remain exactly the executor-step
/// boundaries the fuzzer explores.
class GroupCommitPipeline {
 public:
  struct PendingCommit {
    TxnId txn = kInvalidTxn;
    Lsn lsn = kInvalidLsn;
    /// Node clock when the commit was enqueued (diagnostics).
    SimTime enqueued_at = 0;
    /// Queue residency already reported to the observatory (a force moves
    /// the whole tail, so later forces see the entry again).
    bool residency_recorded = false;
  };

  struct Stats {
    uint64_t enqueued_commits = 0;
    uint64_t lbm_intents = 0;
    uint64_t deadline_flushes = 0;
    uint64_t size_flushes = 0;

    void Reset() { *this = Stats(); }

    /// Visits every field as ("name", value) — the metrics registry's
    /// source of truth for this struct.
    template <typename Fn>
    void ForEachCounter(Fn&& fn) const {
      fn("enqueued_commits", enqueued_commits);
      fn("lbm_intents", lbm_intents);
      fn("deadline_flushes", deadline_flushes);
      fn("size_flushes", size_flushes);
    }
  };

  /// Registers a force hook on `log` to observe covering forces.
  GroupCommitPipeline(Machine* machine, LogManager* log, SimTime window_ns,
                      uint32_t max_batch);

  /// Registers `txn`'s commit record (already appended at `lsn`) as
  /// pending. May flush immediately when the size bound is already met.
  /// The caller must check LogManager::IsStable afterwards: the commit may
  /// be durable at once (size flush or an earlier force already covered
  /// the LSN).
  Status EnqueueCommit(NodeId node, TxnId txn, Lsn lsn);

  /// Marks `node`'s tail as wanting stability (Stable-LBM eager demand).
  /// May flush immediately when the size bound is already met.
  Status NoteLbmIntent(NodeId node);

  /// One waiter poll: forces when the oldest un-covered demand has aged
  /// past the window, otherwise charges the poll cost to `node`'s clock.
  Status Poll(NodeId node);

  /// LSN of `txn`'s pending commit record, or kInvalidLsn if none.
  Lsn PendingCommitLsn(TxnId txn) const;

  /// Removes `txn`'s pending entry (acknowledged, withdrawn by an abort,
  /// or crash-annulled). No-op if absent.
  void DropCommit(TxnId txn);

  /// Crash path: the node's volatile tail is gone, so every pending commit
  /// whose record had not reached stable storage is dropped (the
  /// transaction will be annulled by recovery). Durable-but-unacknowledged
  /// entries are kept for TxnManager::ResolvePendingCommits.
  void OnNodeCrash(NodeId node);

  /// Snapshot of every pending commit (crash-time resolution).
  std::vector<std::pair<NodeId, PendingCommit>> PendingCommits() const;

  size_t PendingCount(NodeId node) const { return nodes_[node].commits.size(); }
  const Stats& stats() const { return stats_; }

  /// Optional event tracer (owned by Database); null = no tracing.
  void set_tracer(TraceRecorder* tracer) { tracer_ = tracer; }
  /// Optional latency observatory (owned by Database); null = none. The
  /// pipeline feeds it queue depths and enqueue->force residencies.
  void set_observatory(Observatory* obs) { obs_ = obs; }

 private:
  struct NodeState {
    std::vector<PendingCommit> commits;
    /// An eager-LBM intent is un-covered (any force clears it).
    bool has_intent = false;
    /// Window deadline of the oldest un-covered demand; meaningless unless
    /// armed.
    bool deadline_armed = false;
    SimTime deadline_at = 0;
  };

  void ArmDeadline(NodeState* ns, SimTime now);
  /// Forces if the tail already holds >= max_batch records.
  Status MaybeSizeFlush(NodeId node);
  Status FlushNow(NodeId node, bool size_bound);
  /// Force-hook observer: any force of `node` covers every pending demand.
  void OnForced(NodeId node);

  Machine* machine_;
  LogManager* log_;
  TraceRecorder* tracer_ = nullptr;
  Observatory* obs_ = nullptr;
  SimTime window_ns_;
  uint32_t max_batch_;
  std::vector<NodeState> nodes_;
  Stats stats_;
};

}  // namespace smdb

#endif  // SMDB_WAL_GROUP_COMMIT_H_
