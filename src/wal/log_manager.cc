#include "wal/log_manager.h"

#include <sstream>

#include "obs/trace.h"
#include "sim/machine.h"

namespace smdb {

std::string LogStats::ToString() const {
  std::ostringstream os;
  bool first = true;
  ForEachCounter(*this, [&](const auto& name, uint64_t value) {
    if (!first) os << " ";
    os << name << "=" << value;
    first = false;
  });
  return os.str();
}

LogManager::LogManager(Machine* machine, StableLogStore* stable)
    : machine_(machine), stable_(stable) {
  uint16_t n = machine_->num_nodes();
  node_mu_ = std::make_unique<std::mutex[]>(n);
  tails_.resize(n);
  next_lsn_.assign(n, 1);
  checkpoint_lsn_.assign(n, kInvalidLsn);
  max_truncated_usn_.assign(n, 0);
}

Lsn LogManager::Append(NodeId node, LogRecord rec) {
  ProfScope wal_append(prof_, ProfPhase::kWalAppend);
  const TxnId txn = rec.txn;
  Lsn lsn;
  {
    std::lock_guard<std::mutex> lk(node_mu_[node]);
    lsn = std::atomic_ref<Lsn>(next_lsn_[node])
              .fetch_add(1, std::memory_order_relaxed);
    rec.lsn = lsn;
    rec.node = node;
    tails_[node].push_back(std::move(rec));
  }
  AtomicInc(stats_.appends);
  machine_->Tick(node, machine_->config().timing.volatile_log_write_ns);
  SMDB_TRACE(tracer_, {.kind = TraceEventKind::kLogAppend,
                       .node = node,
                       .txn = txn,
                       .ts = machine_->NodeClock(node),
                       .a = lsn});
  return lsn;
}

Status LogManager::Force(NodeId requestor, NodeId node) {
  ProfScope wal_force(prof_, ProfPhase::kWalForce);
  if (!machine_->NodeAlive(node)) {
    // The tail died with the node; only the already-stable prefix exists.
    return Status::NodeFailed("cannot force log of crashed node");
  }
  {
    std::lock_guard<std::mutex> lk(node_mu_[node]);
    auto& tail = tails_[node];
    if (!tail.empty()) {
      const size_t batch_size = tail.size();
      AtomicInc(stats_.forces);
      AtomicInc(stats_.forced_records, batch_size);
      {
        std::lock_guard<std::mutex> hlk(hist_mu_);
        stats_.force_batches.Record(batch_size);
      }
      const auto& timing = machine_->config().timing;
      machine_->Tick(requestor, machine_->config().nvram_log
                                    ? timing.nvram_force_ns
                                    : timing.log_force_ns);
      std::vector<LogRecord> batch(tail.begin(), tail.end());
      tail.clear();
      stable_->Append(node, std::move(batch));
      SMDB_TRACE(tracer_, {.kind = TraceEventKind::kLogForce,
                           .node = node,
                           .peer = requestor,
                           .ts = machine_->NodeClock(requestor),
                           .a = batch_size,
                           .b = stable_->LastLsn(node)});
    }
  }
  // Hooks fire even for the empty no-op force: observers learn "this log
  // is stable through its last append", which is just as true.
  for (const auto& hook : force_hooks_) hook(node);
  return Status::Ok();
}

void LogManager::AnnulVolatile(NodeId node, Lsn lsn) {
  std::lock_guard<std::mutex> lk(node_mu_[node]);
  auto& tail = tails_[node];
  for (auto it = tail.begin(); it != tail.end(); ++it) {
    if (it->lsn == lsn) {
      tail.erase(it);
      return;
    }
  }
}

bool LogManager::IsStable(NodeId node, Lsn lsn) const {
  if (lsn == kInvalidLsn) return true;
  return stable_->LastLsn(node) >= lsn;
}

void LogManager::OnNodeCrash(NodeId node) {
  std::lock_guard<std::mutex> lk(node_mu_[node]);
  tails_[node].clear();
}

void LogManager::ForEachStable(
    NodeId node, const std::function<void(const LogRecord&)>& fn) const {
  for (const auto& rec : stable_->Records(node)) fn(rec);
}

void LogManager::ForEachAll(
    NodeId node, const std::function<void(const LogRecord&)>& fn) const {
  std::lock_guard<std::mutex> lk(node_mu_[node]);
  ForEachStable(node, fn);
  for (const auto& rec : tails_[node]) fn(rec);
}

}  // namespace smdb
