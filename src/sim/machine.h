#ifndef SMDB_SIM_MACHINE_H_
#define SMDB_SIM_MACHINE_H_

#include <cstdint>
#include <cstring>
#include <mutex>
#include <unordered_map>
#include <vector>

#include "common/atomic_util.h"
#include "common/status.h"
#include "common/types.h"
#include "obs/profiler.h"
#include "sim/cache.h"
#include "sim/config.h"
#include "sim/directory.h"
#include "sim/events.h"
#include "sim/line_lock.h"
#include "sim/stats.h"

namespace smdb {

class TraceRecorder;
class Observatory;

/// Deterministic functional + timing simulator of a cache-coherent shared
/// memory multiprocessor with independent node failures — the substrate the
/// paper assumes (Stanford FLASH-style fault containment, KSR-1 line locks).
///
/// Model:
///  * A single shared physical address space, divided into cache lines
///    (default 128 bytes, as on the KSR-1 and FLASH).
///  * Each node has a cache; home memory is distributed across nodes
///    (interleaved by line, or pinned by AllocLocal).
///  * A directory-based write-invalidate protocol (write-broadcast is also
///    available) keeps the caches coherent; every access charges simulated
///    time to the issuing node's clock.
///  * CrashNode destroys the node's cache and home memory, then performs the
///    FLASH-style low-level recovery step: the directory is restored to a
///    state consistent with the surviving caches. A line with no surviving
///    valid copy becomes "lost": referencing it returns an invalid flag
///    (Status::LineLost) — exactly the probe primitive Selective Redo needs.
///
/// All operations are sequential and deterministic; concurrency across nodes
/// is modelled by the per-node clocks and by the caller-controlled
/// interleaving of transaction steps (see txn/executor.h).
class Machine {
 public:
  explicit Machine(MachineConfig config);

  Machine(const Machine&) = delete;
  Machine& operator=(const Machine&) = delete;

  // ---------------------------------------------------------------------
  // Address space.

  /// Allocates `bytes` of shared memory with line-interleaved home nodes.
  /// Returns the (line-aligned) starting address.
  Addr AllocShared(size_t bytes);

  /// Allocates `bytes` homed entirely on `node` (used for structures that
  /// must die with the node, per the paper's memory-alignment assumption for
  /// local logs).
  Addr AllocLocal(NodeId node, size_t bytes);

  LineAddr LineOf(Addr addr) const { return addr / config_.line_size; }
  Addr AddrOfLine(LineAddr line) const {
    return static_cast<Addr>(line) * config_.line_size;
  }
  NodeId HomeOf(LineAddr line) const;

  // ---------------------------------------------------------------------
  // Coherent memory operations, executed by `node`. May span lines.

  Status Read(NodeId node, Addr addr, void* out, size_t len);
  Status Write(NodeId node, Addr addr, const void* data, size_t len);

  template <typename T>
  Result<T> ReadValue(NodeId node, Addr addr) {
    T v{};
    Status s = Read(node, addr, &v, sizeof(T));
    if (!s.ok()) return s;
    return v;
  }
  template <typename T>
  Status WriteValue(NodeId node, Addr addr, T v) {
    return Write(node, addr, &v, sizeof(T));
  }

  // ---------------------------------------------------------------------
  // Line locks (KSR-1 getline/releaseline, section 5.1).

  /// Acquires the line lock on `line`, bringing it exclusive into `node`'s
  /// cache. Charges the queueing delay and transfer cost to the node clock.
  Status GetLine(NodeId node, LineAddr line);

  /// Releases a previously acquired line lock.
  void ReleaseLine(NodeId node, LineAddr line);

  bool LineLockHeldBy(LineAddr line, NodeId node) const {
    return line_locks_.HeldBy(line, node);
  }

  // ---------------------------------------------------------------------
  // Non-coherent (DMA-style) access, used by the simulated I/O subsystem.

  /// Installs fresh contents directly into home memory (e.g. a disk read).
  /// Drops any cached copies and clears the `lost` flag.
  void InstallToMemory(Addr addr, const void* data, size_t len);

  /// Reads the current coherent contents without changing any state (used
  /// by disk writes to gather page contents, and by verification oracles).
  /// Fails with LineLost if a covered line has no surviving copy.
  Status SnoopRead(Addr addr, void* out, size_t len) const;

  // ---------------------------------------------------------------------
  // The per-line "active data" bit (Stable LBM trigger, section 5.2).

  void SetLineActive(LineAddr line, bool active);
  bool LineActive(LineAddr line) const;

  // ---------------------------------------------------------------------
  // Failure injection and recovery support.

  /// Crashes `node`: destroys its cache and home memory, releases its line
  /// locks, restores the directory (FLASH low-level recovery), marks lines
  /// with no surviving copy as lost, then fires crash hooks.
  void CrashNode(NodeId node);

  /// Brings a crashed node back with a cold cache. Its home memory stays
  /// lost until software re-materialises it.
  void RestartNode(NodeId node);

  /// Whole-machine failure (the fate of an SM database without independent
  /// node failures): every volatile byte is destroyed.
  void RebootAll();

  bool NodeAlive(NodeId node) const { return alive_[node]; }
  std::vector<NodeId> AliveNodes() const;

  /// True if a valid copy of `line` exists on a surviving node — the
  /// "temporarily disable cache-miss I/O and probe" primitive used by
  /// Selective Redo's no-redo test.
  bool ProbeLine(LineAddr line) const;

  /// True if the line has been marked lost by a crash.
  bool IsLineLost(LineAddr line) const;

  /// Drops all cached copies of `line` everywhere and invalidates the home
  /// memory copy (Redo All step 1: "discard all cached database records").
  void DiscardLine(LineAddr line);
  void DiscardRange(Addr addr, size_t len);

  /// Read-only view of a node's cache, for Selective Redo's sequential
  /// cache scan.
  const Cache& cache(NodeId node) const { return caches_[node]; }

  /// Read-only directory entry (diagnostics/tests).
  const DirEntry* FindLine(LineAddr line) const {
    return directory_.Find(line);
  }

  // ---------------------------------------------------------------------
  // Simulated time.

  SimTime NodeClock(NodeId node) const { return AtomicLoad(clocks_[node]); }
  /// Charges `ns` of simulated time to `node`. Single choke point for all
  /// sim time, so the profiler's phase attribution hooks here: any charge
  /// landing while a profiler root scope is open on the current thread is
  /// credited to the innermost phase path.
  void Tick(NodeId node, SimTime ns) {
    SMDB_PROF_TICK(prof_, ns);
    AtomicInc(clocks_[node], ns);
  }
  /// Synchronises all live node clocks to the maximum (a barrier; used at
  /// the start and end of restart recovery).
  void SyncClocks();
  /// max over live nodes' clocks.
  SimTime GlobalTime() const;

  // ---------------------------------------------------------------------
  // Hooks and statistics.

  void AddCoherenceHook(CoherenceHook hook) {
    coherence_hooks_.push_back(std::move(hook));
  }
  void AddCrashHook(CrashHook hook) { crash_hooks_.push_back(std::move(hook)); }

  MachineStats& stats() { return stats_; }
  const MachineStats& stats() const { return stats_; }
  const MachineConfig& config() const { return config_; }
  uint16_t num_nodes() const { return config_.num_nodes; }
  uint32_t line_size() const { return config_.line_size; }

  /// Optional event tracer (owned by Database); null = no tracing. The
  /// machine emits coherence-action and crash events through it.
  void set_tracer(TraceRecorder* tracer) { tracer_ = tracer; }

  /// Optional latency observatory (owned by Database); null = none. The
  /// machine emits node down/up transitions through it.
  void set_observatory(Observatory* obs) { obs_ = obs; }

  /// Optional profiler (owned by Database); null = none. Tick charges and
  /// coherence miss-service phases route through it.
  void set_profiler(Profiler* prof) { prof_ = prof; }

 private:
  /// Makes `line` valid in `node`'s cache for reading; performs coherence
  /// transitions and charges costs. On success *data points at the node's
  /// cached copy.
  Status ReadLine(NodeId node, LineAddr line, const std::vector<uint8_t>** data);

  /// Makes `node` the exclusive holder of `line` with current contents
  /// (write-invalidate) and returns a mutable pointer to the cached copy.
  /// Under write-broadcast, WriteSpan updates all copies instead.
  Status AcquireExclusive(NodeId node, LineAddr line, bool for_line_lock);

  /// Applies a write of [offset, offset+len) within `line`.
  Status WriteSpan(NodeId node, LineAddr line, uint32_t offset,
                   const uint8_t* data, size_t len);

  /// Returns a pointer to the authoritative current bytes of `line`, or
  /// nullptr if the line is lost.
  const std::vector<uint8_t>* CurrentData(const DirEntry& e, LineAddr line) const;

  void FireCoherence(CoherenceEvent::Kind kind, LineAddr line, NodeId from,
                     NodeId to, bool active_bit);

  DirEntry& Entry(LineAddr line) {
    return directory_.GetOrCreate(line, HomeOf(line), config_.line_size);
  }

  MachineConfig config_;
  Directory directory_;
  std::vector<Cache> caches_;
  std::vector<bool> alive_;
  std::vector<SimTime> clocks_;
  LineLockTable line_locks_;
  MachineStats stats_;
  TraceRecorder* tracer_ = nullptr;
  Observatory* obs_ = nullptr;
  Profiler* prof_ = nullptr;

  std::mutex alloc_mu_;  // guards next_addr_ (B-tree splits allocate
                         // pages from a worker thread mid-batch)
  Addr next_addr_ = 0;
  std::unordered_map<LineAddr, NodeId> home_override_;

  std::vector<CoherenceHook> coherence_hooks_;
  std::vector<CrashHook> crash_hooks_;
};

}  // namespace smdb

#endif  // SMDB_SIM_MACHINE_H_
