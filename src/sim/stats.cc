#include "sim/stats.h"

#include <sstream>

namespace smdb {

std::string MachineStats::ToString() const {
  std::ostringstream os;
  os << "reads=" << reads << " writes=" << writes
     << " local_hits=" << local_hits
     << " remote_transfers=" << remote_transfers
     << " memory_fetches=" << memory_fetches << "\n"
     << "invalidations=" << invalidations << " downgrades=" << downgrades
     << " broadcast_updates=" << broadcast_updates
     << " migrations=" << migrations << " replications=" << replications
     << "\n"
     << "line_lock_acquires=" << line_lock_acquires
     << " line_lock_wait_ns=" << line_lock_wait_ns
     << " line_lock_total_ns=" << line_lock_total_ns << "\n"
     << "node_crashes=" << node_crashes << " lines_lost=" << lines_lost
     << " lost_line_references=" << lost_line_references;
  return os.str();
}

}  // namespace smdb
