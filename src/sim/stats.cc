#include "sim/stats.h"

#include <sstream>

namespace smdb {

std::string MachineStats::ToString() const {
  std::ostringstream os;
  size_t i = 0;
  ForEachCounter(*this, [&](const char* name, uint64_t value) {
    if (i > 0) os << (i % 5 == 0 ? "\n" : " ");
    os << name << "=" << value;
    ++i;
  });
  return os.str();
}

}  // namespace smdb
