#include "sim/directory.h"

namespace smdb {

DirEntry& Directory::GetOrCreate(LineAddr line, NodeId home,
                                 uint32_t line_size) {
  std::lock_guard<std::mutex> lk(mu_);
  auto [it, inserted] = entries_.try_emplace(line);
  if (inserted) {
    it->second.home = home;
    it->second.mem_data.assign(line_size, 0);
    it->second.mem_valid = true;  // zero-filled fresh memory is "current"
  }
  return it->second;
}

DirEntry* Directory::Find(LineAddr line) {
  std::lock_guard<std::mutex> lk(mu_);
  auto it = entries_.find(line);
  return it == entries_.end() ? nullptr : &it->second;
}

const DirEntry* Directory::Find(LineAddr line) const {
  std::lock_guard<std::mutex> lk(mu_);
  auto it = entries_.find(line);
  return it == entries_.end() ? nullptr : &it->second;
}

void Directory::ForEach(
    const std::function<void(LineAddr, DirEntry&)>& fn) {
  for (auto& [addr, entry] : entries_) fn(addr, entry);
}

}  // namespace smdb
