#ifndef SMDB_SIM_DIRECTORY_H_
#define SMDB_SIM_DIRECTORY_H_

#include <cstdint>
#include <functional>
#include <mutex>
#include <unordered_map>
#include <vector>

#include "common/types.h"
#include "sim/cache.h"

namespace smdb {

/// Directory entry for one cache line: who caches it, whether the home
/// memory copy is current, and the failure-related flags.
struct DirEntry {
  /// Node whose (distributed) main memory is the home of this line.
  NodeId home = kInvalidNode;
  /// Bitmask of nodes holding a valid cached copy.
  uint64_t sharers = 0;
  /// Node holding the line exclusively (kInvalidNode unless exactly one
  /// cached copy exists in Exclusive state).
  NodeId owner = kInvalidNode;
  /// True if the home memory copy matches the most recent write.
  bool mem_valid = false;
  /// Contents of the home memory copy (possibly stale when !mem_valid).
  std::vector<uint8_t> mem_data;
  /// True if no valid copy survived a crash: references return an invalid
  /// flag until software re-materialises the line.
  bool lost = false;
  /// The "active data" bit the paper proposes adding per cache line to
  /// trigger Stable LBM log forces on migration (section 5.2).
  bool active_bit = false;
  /// Last node to write this line; used for the sharing-pattern statistics.
  NodeId last_writer = kInvalidNode;

  bool cached_anywhere() const { return sharers != 0; }
  bool cached_by(NodeId n) const { return (sharers >> n) & 1; }
  int num_sharers() const { return __builtin_popcountll(sharers); }
};

/// The machine-wide cache directory. In hardware this is distributed among
/// the memory controllers; here it is a single map, which is equivalent for
/// a functional + timing simulation.
///
/// Thread safety: the map *structure* is latched so sharded execution can
/// look up / create entries for different lines concurrently. Returned
/// DirEntry references stay valid across inserts (unordered_map never
/// relocates elements); concurrent mutation of the *same* entry is
/// excluded by the executor's footprint-disjoint batching, not by this
/// latch. ForEach is reserved for quiescent points (recovery, digests).
class Directory {
 public:
  /// Returns the entry for `line`, creating it with the given home node if
  /// absent.
  DirEntry& GetOrCreate(LineAddr line, NodeId home, uint32_t line_size);

  /// Returns the entry for `line` or nullptr.
  DirEntry* Find(LineAddr line);
  const DirEntry* Find(LineAddr line) const;

  /// Iterates over all known lines.
  void ForEach(const std::function<void(LineAddr, DirEntry&)>& fn);

  size_t size() const { return entries_.size(); }

 private:
  mutable std::mutex mu_;  // guards entries_'s structure only
  std::unordered_map<LineAddr, DirEntry> entries_;
};

}  // namespace smdb

#endif  // SMDB_SIM_DIRECTORY_H_
