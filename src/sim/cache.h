#ifndef SMDB_SIM_CACHE_H_
#define SMDB_SIM_CACHE_H_

#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <unordered_map>
#include <vector>

#include "common/types.h"

namespace smdb {

/// Validity state of a line in one node's cache. kExclusive covers both the
/// MESI E and M states: the node holds the only cached copy and may write it
/// without a coherence action. Whether the home memory copy is also current
/// is tracked by the directory (`mem_valid`), not here.
enum class LineState : uint8_t {
  kInvalid = 0,
  kShared,
  kExclusive,
};

/// One node's cache: a map from line address to (state, data). The Machine
/// performs all state transitions; Cache is plain storage plus scan support.
///
/// Selective Redo's restart step ("each surviving node will perform a
/// sequential search of all cache lines") is served by ForEachLine.
class Cache {
 public:
  struct Entry {
    LineState state = LineState::kInvalid;
    std::vector<uint8_t> data;
  };

  explicit Cache(uint32_t line_size)
      : line_size_(line_size), mu_(std::make_unique<std::mutex>()) {}

  /// Returns the entry for `line`, or nullptr if not cached.
  Entry* Find(LineAddr line);
  const Entry* Find(LineAddr line) const;

  /// Inserts or replaces the entry for `line`.
  Entry& Insert(LineAddr line, LineState state,
                const std::vector<uint8_t>& data);

  /// Drops `line` from the cache (no writeback; the simulator's caller is
  /// responsible for preserving data if needed).
  void Erase(LineAddr line);

  /// Destroys the entire cache contents (used by crash injection and by the
  /// Redo All recovery scheme's "discard all cached database records" step).
  void Clear();

  /// Number of resident lines.
  size_t size() const { return lines_.size(); }

  /// Sequential scan over all resident lines.
  void ForEachLine(
      const std::function<void(LineAddr, const Entry&)>& fn) const;

  uint32_t line_size() const { return line_size_; }

 private:
  uint32_t line_size_;
  /// Guards lines_'s structure: sharded execution invalidates lines in a
  /// remote node's cache while that node inserts others. Entry references
  /// stay valid across inserts; same-entry mutation is excluded by the
  /// executor's footprint-disjoint batching. ForEachLine/size are reserved
  /// for quiescent points. unique_ptr keeps Cache movable (Machine stores
  /// caches in a vector).
  std::unique_ptr<std::mutex> mu_;
  std::unordered_map<LineAddr, Entry> lines_;
};

}  // namespace smdb

#endif  // SMDB_SIM_CACHE_H_
