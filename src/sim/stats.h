#ifndef SMDB_SIM_STATS_H_
#define SMDB_SIM_STATS_H_

#include <cstdint>
#include <string>

#include "common/types.h"

namespace smdb {

/// Event counters collected by the machine. All counters are cumulative
/// since construction (or the last Reset()).
struct MachineStats {
  // Memory traffic.
  uint64_t reads = 0;
  uint64_t writes = 0;
  uint64_t local_hits = 0;
  uint64_t remote_transfers = 0;   // cache-to-cache line fetches
  uint64_t memory_fetches = 0;     // fetches served by home memory

  // Coherence actions.
  uint64_t invalidations = 0;      // copies invalidated by remote writes
  uint64_t downgrades = 0;         // E->S transitions caused by remote reads
  uint64_t broadcast_updates = 0;  // write-broadcast remote-copy updates

  // Sharing patterns (section 3.2 of the paper).
  uint64_t migrations = 0;         // ww sharing: exclusive ownership moved
  uint64_t replications = 0;       // wr sharing: line became multi-copy

  // Line locks (section 5.1).
  uint64_t line_lock_acquires = 0;
  SimTime line_lock_wait_ns = 0;   // total queueing delay
  SimTime line_lock_total_ns = 0;  // total acquisition latency incl. grant

  // Failures.
  uint64_t node_crashes = 0;
  uint64_t lines_lost = 0;         // lines with no surviving copy
  uint64_t lost_line_references = 0;
  LineAddr last_lost_reference = kInvalidLine;  // diagnostics

  void Reset() { *this = MachineStats(); }

  /// Multi-line human-readable dump. Derived from ForEachCounter, so it
  /// covers exactly the visited field set.
  std::string ToString() const;
};

/// Visits every MachineStats field as ("name", value) in declaration
/// order. ToString and the obs MetricsRegistry both derive from this one
/// list, so a field added here shows up in the human dump and the JSON
/// snapshot together (obs_test asserts the two stay in sync).
template <typename Fn>
void ForEachCounter(const MachineStats& s, Fn&& fn) {
  fn("reads", s.reads);
  fn("writes", s.writes);
  fn("local_hits", s.local_hits);
  fn("remote_transfers", s.remote_transfers);
  fn("memory_fetches", s.memory_fetches);
  fn("invalidations", s.invalidations);
  fn("downgrades", s.downgrades);
  fn("broadcast_updates", s.broadcast_updates);
  fn("migrations", s.migrations);
  fn("replications", s.replications);
  fn("line_lock_acquires", s.line_lock_acquires);
  fn("line_lock_wait_ns", s.line_lock_wait_ns);
  fn("line_lock_total_ns", s.line_lock_total_ns);
  fn("node_crashes", s.node_crashes);
  fn("lines_lost", s.lines_lost);
  fn("lost_line_references", s.lost_line_references);
  // Diagnostics: raw line address (kInvalidLine when no reference was ever
  // lost). Kept in the visited set so it can't silently drop out of dumps.
  fn("last_lost_reference", static_cast<uint64_t>(s.last_lost_reference));
}

}  // namespace smdb

#endif  // SMDB_SIM_STATS_H_
