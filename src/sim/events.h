#ifndef SMDB_SIM_EVENTS_H_
#define SMDB_SIM_EVENTS_H_

#include <functional>

#include "common/types.h"

namespace smdb {

/// A coherence state change that removes or weakens a node's copy of a line.
///
/// These are exactly the transitions the paper identifies (section 5.2) as
/// the latest possible enforcement points for the Stable LBM policy:
///  - kInvalidate: the node's copy is invalidated because another node wrote
///    the line (ww sharing; after this, undo AND redo information held only
///    in the departing node's log would be needed if either node crashed).
///  - kDowngrade: the node's exclusive copy is downgraded to shared because
///    another node read the line (wr sharing; undo information must be
///    stable before this completes).
///
/// Hooks run *before* the transfer completes, so a Stable LBM implementation
/// may force logs from inside the hook — modelling the proposed
/// one-active-bit-per-line extension to the coherency protocol.
struct CoherenceEvent {
  enum class Kind : uint8_t { kInvalidate, kDowngrade };

  Kind kind;
  LineAddr line = kInvalidLine;
  /// Node losing (or downgrading) its copy.
  NodeId from = kInvalidNode;
  /// Node whose access triggered the transition.
  NodeId to = kInvalidNode;
  /// Value of the line's "active data" bit (set by the database when the
  /// line holds uncommitted data whose log records are not yet stable).
  bool active_bit = false;
};

using CoherenceHook = std::function<void(const CoherenceEvent&)>;

/// Notification that a node has crashed (fired after the node's cache and
/// home memory contents have been destroyed and the directory restored).
struct CrashEvent {
  NodeId node = kInvalidNode;
};

using CrashHook = std::function<void(const CrashEvent&)>;

}  // namespace smdb

#endif  // SMDB_SIM_EVENTS_H_
