#include "sim/cache.h"

namespace smdb {

Cache::Entry* Cache::Find(LineAddr line) {
  std::lock_guard<std::mutex> lk(*mu_);
  auto it = lines_.find(line);
  return it == lines_.end() ? nullptr : &it->second;
}

const Cache::Entry* Cache::Find(LineAddr line) const {
  std::lock_guard<std::mutex> lk(*mu_);
  auto it = lines_.find(line);
  return it == lines_.end() ? nullptr : &it->second;
}

Cache::Entry& Cache::Insert(LineAddr line, LineState state,
                            const std::vector<uint8_t>& data) {
  std::lock_guard<std::mutex> lk(*mu_);
  Entry& e = lines_[line];
  e.state = state;
  e.data = data;
  e.data.resize(line_size_, 0);
  return e;
}

void Cache::Erase(LineAddr line) {
  std::lock_guard<std::mutex> lk(*mu_);
  lines_.erase(line);
}

void Cache::Clear() { lines_.clear(); }

void Cache::ForEachLine(
    const std::function<void(LineAddr, const Entry&)>& fn) const {
  for (const auto& [addr, entry] : lines_) fn(addr, entry);
}

}  // namespace smdb
