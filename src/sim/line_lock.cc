#include "sim/line_lock.h"

#include <algorithm>

namespace smdb {

SimTime LineLockTable::Acquire(LineAddr line, NodeId node, SimTime now) {
  std::lock_guard<std::mutex> lk(mu_);
  LockState& st = locks_[line];
  SimTime grant = std::max(now, st.free_at);
  st.holder = node;
  // Until released, the lock is logically unavailable; free_at is updated on
  // Release. Setting it to the grant time keeps back-to-back acquisitions by
  // distinct nodes strictly ordered even if the holder never releases (which
  // would be a bug the tests catch via HeldBy).
  st.free_at = grant;
  return grant;
}

void LineLockTable::Release(LineAddr line, NodeId node, SimTime now) {
  std::lock_guard<std::mutex> lk(mu_);
  auto it = locks_.find(line);
  if (it == locks_.end() || it->second.holder != node) return;
  it->second.holder = kInvalidNode;
  it->second.free_at = std::max(it->second.free_at, now);
}

bool LineLockTable::HeldBy(LineAddr line, NodeId node) const {
  std::lock_guard<std::mutex> lk(mu_);
  auto it = locks_.find(line);
  return it != locks_.end() && it->second.holder == node;
}

std::vector<LineAddr> LineLockTable::ReleaseAllHeldBy(NodeId node,
                                                      SimTime now) {
  std::lock_guard<std::mutex> lk(mu_);
  std::vector<LineAddr> released;
  for (auto& [line, st] : locks_) {
    if (st.holder == node) {
      st.holder = kInvalidNode;
      st.free_at = std::max(st.free_at, now);
      released.push_back(line);
    }
  }
  return released;
}

}  // namespace smdb
