#ifndef SMDB_SIM_CONFIG_H_
#define SMDB_SIM_CONFIG_H_

#include <cstdint>

#include "common/types.h"

namespace smdb {

/// Which hardware cache coherency protocol the machine implements.
///
/// The paper assumes write-invalidate throughout (KSR-1, FLASH) but notes
/// (footnote 2, section 7) that the results also apply to write-broadcast,
/// where migration never leaves a single copy and restart recovery is
/// undo-only — making Selective Redo the natural choice.
enum class CoherenceKind : uint8_t {
  kWriteInvalidate,
  kWriteBroadcast,
};

/// Simulated-time cost model, in nanoseconds. The constants are calibrated
/// so that the line-lock latencies of the paper's section 5.1 reproduce in
/// shape: < 10 us to acquire under low contention, < 40 us mean with 32
/// processors contending for the same line (KSR-1 measurements from the
/// authors' prototype lock manager).
struct TimingModel {
  /// Local cache hit (read or write of a line already held validly).
  SimTime cache_hit_ns = 50;
  /// Cache-to-cache transfer of a line from a remote node. Calibrated so a
  /// 32-way line-lock handoff chain lands inside the paper's <40us band.
  SimTime remote_transfer_ns = 800;
  /// Fetch of a line from (home) memory.
  SimTime memory_access_ns = 600;
  /// Cost of the getline grant itself once the line is available locally.
  SimTime line_lock_grant_ns = 200;
  /// Generic CPU bookkeeping cost charged per simulator operation.
  SimTime cpu_op_ns = 20;
  /// Writing one log record into the node-local volatile log.
  SimTime volatile_log_write_ns = 150;
  /// Forcing the volatile log tail to a shared stable-storage disk.
  SimTime log_force_ns = 400'000;
  /// Forcing to non-volatile RAM instead of disk (section 7 discusses that
  /// NVRAM could make Stable LBM practical). Used when `nvram_log` is set.
  SimTime nvram_force_ns = 2'000;
  /// One poll of a pending group commit (deadline check while waiting for
  /// the coalescing window). Coarser than cpu_op_ns so a full window costs
  /// a bounded number of executor steps.
  SimTime group_commit_poll_ns = 5'000;
  /// Random page read / write on a shared disk.
  SimTime disk_read_ns = 5'000'000;
  SimTime disk_write_ns = 5'000'000;
  /// Whole-machine reboot penalty (OS + DBMS restart), paid by every node
  /// when the system lacks independent node failures (RebootAll baseline).
  SimTime reboot_ns = 50'000'000;
};

/// Static configuration of the simulated multiprocessor.
struct MachineConfig {
  /// Number of processor/memory nodes. At most 64 (sharer sets are bitmasks).
  uint16_t num_nodes = 4;
  /// Unit of coherency, in bytes. 128 on the KSR-1/KSR-2 and FLASH.
  uint32_t line_size = 128;
  CoherenceKind coherence = CoherenceKind::kWriteInvalidate;
  TimingModel timing;
  /// When true, log forces pay `nvram_force_ns` instead of `log_force_ns`.
  bool nvram_log = false;

  uint32_t lines_per_page(uint32_t page_size) const {
    return page_size / line_size;
  }
};

inline constexpr uint16_t kMaxNodes = 64;

}  // namespace smdb

#endif  // SMDB_SIM_CONFIG_H_
