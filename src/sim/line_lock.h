#ifndef SMDB_SIM_LINE_LOCK_H_
#define SMDB_SIM_LINE_LOCK_H_

#include <cstdint>
#include <mutex>
#include <unordered_map>
#include <vector>

#include "common/types.h"

namespace smdb {

/// State of the (cache) line locks, the KSR-1 primitive (`gsp`/`rsp`,
/// renamed getline/releaseline by the paper) that holds a line in a
/// mutually-exclusive state in the local cache until released.
///
/// In this deterministic simulator, critical sections protected by line
/// locks execute atomically (they are short by construction — exactly the
/// property the paper exploits), so the lock's job is timing: it serialises
/// holders and charges queueing delay, reproducing the contention behaviour
/// measured on the KSR-1 in section 5.1.
class LineLockTable {
 public:
  struct LockState {
    NodeId holder = kInvalidNode;
    /// Simulated time at which the previous holder released the lock.
    SimTime free_at = 0;
  };

  /// Records an acquisition by `node` whose local clock reads `now`.
  /// Returns the simulated time at which the lock is granted (>= now).
  SimTime Acquire(LineAddr line, NodeId node, SimTime now);

  /// Records a release at simulated time `now`.
  void Release(LineAddr line, NodeId node, SimTime now);

  /// True if `node` currently holds the line lock on `line`.
  bool HeldBy(LineAddr line, NodeId node) const;

  /// Releases every lock held by `node` (hardware does this implicitly when
  /// a node fails and its requests are flushed). Returns the released lines.
  std::vector<LineAddr> ReleaseAllHeldBy(NodeId node, SimTime now);

 private:
  mutable std::mutex mu_;
  std::unordered_map<LineAddr, LockState> locks_;
};

}  // namespace smdb

#endif  // SMDB_SIM_LINE_LOCK_H_
