#include "sim/machine.h"

#include <algorithm>
#include <cassert>

#include "obs/observatory.h"
#include "obs/trace.h"

namespace smdb {

Machine::Machine(MachineConfig config) : config_(config) {
  assert(config_.num_nodes > 0 && config_.num_nodes <= kMaxNodes);
  caches_.reserve(config_.num_nodes);
  for (uint16_t i = 0; i < config_.num_nodes; ++i) {
    caches_.emplace_back(config_.line_size);
  }
  alive_.assign(config_.num_nodes, true);
  clocks_.assign(config_.num_nodes, 0);
}

Addr Machine::AllocShared(size_t bytes) {
  std::lock_guard<std::mutex> lk(alloc_mu_);
  Addr start = next_addr_;
  size_t lines = (bytes + config_.line_size - 1) / config_.line_size;
  next_addr_ += lines * config_.line_size;
  return start;
}

Addr Machine::AllocLocal(NodeId node, size_t bytes) {
  std::lock_guard<std::mutex> lk(alloc_mu_);
  Addr start = next_addr_;
  size_t lines = (bytes + config_.line_size - 1) / config_.line_size;
  for (size_t i = 0; i < lines; ++i) {
    home_override_[LineOf(start) + i] = node;
  }
  next_addr_ += lines * config_.line_size;
  return start;
}

NodeId Machine::HomeOf(LineAddr line) const {
  auto it = home_override_.find(line);
  if (it != home_override_.end()) return it->second;
  return static_cast<NodeId>(line % config_.num_nodes);
}

const std::vector<uint8_t>* Machine::CurrentData(const DirEntry& e,
                                                 LineAddr line) const {
  if (e.lost) return nullptr;
  // Prefer a cached copy (owner first, then any sharer).
  if (e.owner != kInvalidNode) {
    const Cache::Entry* ce = caches_[e.owner].Find(line);
    assert(ce != nullptr);
    return &ce->data;
  }
  if (e.sharers != 0) {
    NodeId n = static_cast<NodeId>(__builtin_ctzll(e.sharers));
    const Cache::Entry* ce = caches_[n].Find(line);
    assert(ce != nullptr);
    return &ce->data;
  }
  if (e.mem_valid) return &e.mem_data;
  return nullptr;
}

void Machine::FireCoherence(CoherenceEvent::Kind kind, LineAddr line,
                            NodeId from, NodeId to, bool active_bit) {
  if (coherence_hooks_.empty()) return;
  CoherenceEvent ev{kind, line, from, to, active_bit};
  for (const auto& hook : coherence_hooks_) hook(ev);
}

Status Machine::ReadLine(NodeId node, LineAddr line,
                         const std::vector<uint8_t>** data) {
  if (!alive_[node]) return Status::NodeFailed("read from crashed node");
  DirEntry& e = Entry(line);
  if (e.lost) {
    AtomicInc(stats_.lost_line_references);
    std::atomic_ref<LineAddr>(stats_.last_lost_reference)
        .store(line, std::memory_order_relaxed);
    return Status::LineLost("read of lost line");
  }
  Cache& cache = caches_[node];
  if (e.cached_by(node)) {
    AtomicInc(stats_.local_hits);
    Tick(node, config_.timing.cache_hit_ns);
    *data = &cache.Find(line)->data;
    return Status::Ok();
  }
  // Miss. Find the current data. The whole miss service (downgrades,
  // remote transfers, memory fetches) is coherence traffic for the
  // profiler's phase accounting.
  ProfScope coherence(prof_, ProfPhase::kCoherence);
  if (e.owner != kInvalidNode && e.owner != node) {
    // Exclusive at a remote cache: downgrade it to shared (wr sharing —
    // history H_wr). The hook fires before the transfer completes so Stable
    // LBM can force the departing node's log.
    FireCoherence(CoherenceEvent::Kind::kDowngrade, line, e.owner, node,
                  e.active_bit);
    SMDB_TRACE(tracer_, {.kind = TraceEventKind::kDowngrade,
                         .node = node,
                         .peer = e.owner,
                         .ts = NodeClock(node),
                         .a = line});
    Cache::Entry* owner_entry = caches_[e.owner].Find(line);
    assert(owner_entry != nullptr);
    owner_entry->state = LineState::kShared;
    cache.Insert(line, LineState::kShared, owner_entry->data);
    e.owner = kInvalidNode;
    e.sharers |= (1ULL << node);
    AtomicInc(stats_.downgrades);
    AtomicInc(stats_.remote_transfers);
    if (e.last_writer != kInvalidNode && e.last_writer != node) {
      AtomicInc(stats_.replications);
      SMDB_TRACE(tracer_, {.kind = TraceEventKind::kReplication,
                           .node = node,
                           .peer = e.last_writer,
                           .ts = NodeClock(node),
                           .a = line});
    }
    Tick(node, config_.timing.remote_transfer_ns);
  } else if (e.sharers != 0) {
    // Shared at one or more remote caches: copy from one of them.
    const std::vector<uint8_t>* src = CurrentData(e, line);
    assert(src != nullptr);
    cache.Insert(line, LineState::kShared, *src);
    e.sharers |= (1ULL << node);
    AtomicInc(stats_.remote_transfers);
    if (e.last_writer != kInvalidNode && e.last_writer != node) {
      AtomicInc(stats_.replications);
      SMDB_TRACE(tracer_, {.kind = TraceEventKind::kReplication,
                           .node = node,
                           .peer = e.last_writer,
                           .ts = NodeClock(node),
                           .a = line});
    }
    Tick(node, config_.timing.remote_transfer_ns);
  } else if (e.mem_valid) {
    cache.Insert(line, LineState::kShared, e.mem_data);
    e.sharers |= (1ULL << node);
    AtomicInc(stats_.memory_fetches);
    Tick(node, config_.timing.memory_access_ns);
  } else {
    // No cached copy and stale/absent memory: only reachable after a crash,
    // and such lines are flagged lost during low-level recovery.
    AtomicInc(stats_.lost_line_references);
    std::atomic_ref<LineAddr>(stats_.last_lost_reference)
        .store(line, std::memory_order_relaxed);
    return Status::LineLost("no valid copy");
  }
  *data = &cache.Find(line)->data;
  return Status::Ok();
}

Status Machine::AcquireExclusive(NodeId node, LineAddr line,
                                 bool for_line_lock) {
  if (!alive_[node]) return Status::NodeFailed("access from crashed node");
  DirEntry& e = Entry(line);
  if (e.lost) {
    AtomicInc(stats_.lost_line_references);
    std::atomic_ref<LineAddr>(stats_.last_lost_reference)
        .store(line, std::memory_order_relaxed);
    return Status::LineLost("exclusive request for lost line");
  }
  Cache& cache = caches_[node];
  Cache::Entry* mine = cache.Find(line);
  if (mine != nullptr && mine->state == LineState::kExclusive) {
    Tick(node, config_.timing.cache_hit_ns);
    return Status::Ok();  // already exclusive here
  }

  // Fetch current data if we do not hold a valid copy. From here on
  // (fetch, invalidations, migration) is coherence miss service.
  ProfScope coherence(prof_, ProfPhase::kCoherence);
  std::vector<uint8_t> data;
  SimTime cost = 0;
  if (mine != nullptr) {
    data = mine->data;
    cost = config_.timing.cache_hit_ns;
  } else {
    const std::vector<uint8_t>* src = CurrentData(e, line);
    if (src == nullptr) {
      AtomicInc(stats_.lost_line_references);
    std::atomic_ref<LineAddr>(stats_.last_lost_reference)
        .store(line, std::memory_order_relaxed);
      return Status::LineLost("no valid copy");
    }
    data = *src;
    if (e.sharers != 0 || e.owner != kInvalidNode) {
      cost = config_.timing.remote_transfer_ns;
      AtomicInc(stats_.remote_transfers);
    } else {
      cost = config_.timing.memory_access_ns;
      AtomicInc(stats_.memory_fetches);
    }
  }

  // Invalidate every other copy (write-invalidate semantics; getline does
  // this under either coherence protocol since it needs mutual exclusion).
  uint64_t others = e.sharers & ~(1ULL << node);
  bool migrated = false;
  while (others != 0) {
    NodeId s = static_cast<NodeId>(__builtin_ctzll(others));
    others &= others - 1;
    FireCoherence(CoherenceEvent::Kind::kInvalidate, line, s, node,
                  e.active_bit);
    SMDB_TRACE(tracer_, {.kind = TraceEventKind::kInvalidation,
                         .node = node,
                         .peer = s,
                         .ts = NodeClock(node),
                         .a = line});
    caches_[s].Erase(line);
    AtomicInc(stats_.invalidations);
    if (e.last_writer == s && s != node) migrated = true;
    Tick(node, config_.timing.cpu_op_ns);
  }
  if (e.last_writer != kInvalidNode && e.last_writer != node &&
      !for_line_lock) {
    migrated = true;  // dirty data now held solely by a different node
  }
  if (migrated) {
    AtomicInc(stats_.migrations);
    SMDB_TRACE(tracer_, {.kind = TraceEventKind::kMigration,
                         .node = node,
                         .peer = e.last_writer,
                         .ts = NodeClock(node),
                         .a = line});
  }

  cache.Insert(line, LineState::kExclusive, data);
  e.sharers = (1ULL << node);
  e.owner = node;
  Tick(node, cost);
  return Status::Ok();
}

Status Machine::WriteSpan(NodeId node, LineAddr line, uint32_t offset,
                          const uint8_t* data, size_t len) {
  DirEntry& e = Entry(line);
  if (config_.coherence == CoherenceKind::kWriteBroadcast &&
      !e.cached_by(node) && !e.lost) {
    // A broadcast machine first obtains a valid copy (shared), then updates
    // every copy in place; no invalidation ever occurs.
    const std::vector<uint8_t>* unused = nullptr;
    SMDB_RETURN_IF_ERROR(ReadLine(node, line, &unused));
  }
  if (config_.coherence == CoherenceKind::kWriteBroadcast &&
      e.cached_by(node)) {
    // Write-broadcast: update every valid copy in place; all stay valid.
    if (e.lost) {
      AtomicInc(stats_.lost_line_references);
    std::atomic_ref<LineAddr>(stats_.last_lost_reference)
        .store(line, std::memory_order_relaxed);
      return Status::LineLost("write to lost line");
    }
    uint64_t sharers = e.sharers;
    while (sharers != 0) {
      NodeId s = static_cast<NodeId>(__builtin_ctzll(sharers));
      sharers &= sharers - 1;
      Cache::Entry* ce = caches_[s].Find(line);
      assert(ce != nullptr);
      std::memcpy(ce->data.data() + offset, data, len);
      if (s != node) {
        AtomicInc(stats_.broadcast_updates);
        Tick(node, config_.timing.cpu_op_ns);
      }
    }
    e.owner = (e.num_sharers() == 1) ? node : kInvalidNode;
    e.mem_valid = false;
    e.last_writer = node;
    Tick(node, config_.timing.cache_hit_ns);
    return Status::Ok();
  }
  // Write-invalidate path (also the write-broadcast path when the writer
  // holds no copy yet: it must first fetch the line).
  SMDB_RETURN_IF_ERROR(AcquireExclusive(node, line, /*for_line_lock=*/false));
  Cache::Entry* ce = caches_[node].Find(line);
  std::memcpy(ce->data.data() + offset, data, len);
  e.mem_valid = false;
  e.last_writer = node;
  if (config_.coherence == CoherenceKind::kWriteBroadcast) {
    // After the initial fetch the writer holds the only copy; subsequent
    // broadcast writes take the in-place path above.
    e.owner = node;
  }
  return Status::Ok();
}

Status Machine::Read(NodeId node, Addr addr, void* out, size_t len) {
  uint8_t* dst = static_cast<uint8_t*>(out);
  AtomicInc(stats_.reads);
  while (len > 0) {
    LineAddr line = LineOf(addr);
    uint32_t offset = static_cast<uint32_t>(addr % config_.line_size);
    size_t chunk = std::min<size_t>(len, config_.line_size - offset);
    const std::vector<uint8_t>* data = nullptr;
    SMDB_RETURN_IF_ERROR(ReadLine(node, line, &data));
    std::memcpy(dst, data->data() + offset, chunk);
    dst += chunk;
    addr += chunk;
    len -= chunk;
  }
  return Status::Ok();
}

Status Machine::Write(NodeId node, Addr addr, const void* data, size_t len) {
  const uint8_t* src = static_cast<const uint8_t*>(data);
  AtomicInc(stats_.writes);
  while (len > 0) {
    LineAddr line = LineOf(addr);
    uint32_t offset = static_cast<uint32_t>(addr % config_.line_size);
    size_t chunk = std::min<size_t>(len, config_.line_size - offset);
    SMDB_RETURN_IF_ERROR(WriteSpan(node, line, offset, src, chunk));
    src += chunk;
    addr += chunk;
    len -= chunk;
  }
  return Status::Ok();
}

Status Machine::GetLine(NodeId node, LineAddr line) {
  if (!alive_[node]) return Status::NodeFailed("getline from crashed node");
  DirEntry& e = Entry(line);
  if (e.lost) {
    AtomicInc(stats_.lost_line_references);
    std::atomic_ref<LineAddr>(stats_.last_lost_reference)
        .store(line, std::memory_order_relaxed);
    return Status::LineLost("getline on lost line");
  }
  SimTime now = NodeClock(node);
  SimTime grant = line_locks_.Acquire(line, node, now);
  SimTime wait = grant - now;
  AtomicAdvance(clocks_[node], grant, 0);
  // Under write-invalidate the grant brings the line exclusive into the
  // local cache (the KSR-1 semantics). A write-broadcast machine has no
  // exclusive state: the lock itself provides the mutual exclusion and the
  // grant merely ensures a valid local copy, leaving other sharers valid.
  bool local_exclusive = e.owner == node;
  Status s;
  if (config_.coherence == CoherenceKind::kWriteBroadcast) {
    const std::vector<uint8_t>* data = nullptr;
    s = ReadLine(node, line, &data);
  } else {
    s = AcquireExclusive(node, line, /*for_line_lock=*/true);
  }
  if (!s.ok()) {
    line_locks_.Release(line, node, NodeClock(node));
    return s;
  }
  SimTime grant_cost = local_exclusive
                           ? config_.timing.line_lock_grant_ns
                           : config_.timing.line_lock_grant_ns;
  Tick(node, grant_cost);
  AtomicInc(stats_.line_lock_acquires);
  AtomicInc(stats_.line_lock_wait_ns, wait);
  AtomicInc(stats_.line_lock_total_ns, NodeClock(node) - now);
  return Status::Ok();
}

void Machine::ReleaseLine(NodeId node, LineAddr line) {
  line_locks_.Release(line, node, NodeClock(node));
  Tick(node, config_.timing.cpu_op_ns);
}

void Machine::InstallToMemory(Addr addr, const void* data, size_t len) {
  const uint8_t* src = static_cast<const uint8_t*>(data);
  while (len > 0) {
    LineAddr line = LineOf(addr);
    uint32_t offset = static_cast<uint32_t>(addr % config_.line_size);
    size_t chunk = std::min<size_t>(len, config_.line_size - offset);
    DirEntry& e = Entry(line);
    // Drop every cached copy: DMA bypasses the caches, and the install is
    // the new authoritative version.
    uint64_t sharers = e.sharers;
    while (sharers != 0) {
      NodeId s = static_cast<NodeId>(__builtin_ctzll(sharers));
      sharers &= sharers - 1;
      caches_[s].Erase(line);
    }
    e.sharers = 0;
    e.owner = kInvalidNode;
    if (e.mem_data.size() != config_.line_size) {
      e.mem_data.assign(config_.line_size, 0);
    }
    std::memcpy(e.mem_data.data() + offset, src, chunk);
    e.mem_valid = true;
    e.lost = false;
    e.last_writer = kInvalidNode;
    e.active_bit = false;
    src += chunk;
    addr += chunk;
    len -= chunk;
  }
}

Status Machine::SnoopRead(Addr addr, void* out, size_t len) const {
  uint8_t* dst = static_cast<uint8_t*>(out);
  while (len > 0) {
    LineAddr line = addr / config_.line_size;
    uint32_t offset = static_cast<uint32_t>(addr % config_.line_size);
    size_t chunk = std::min<size_t>(len, config_.line_size - offset);
    const DirEntry* e = directory_.Find(line);
    if (e == nullptr) {
      std::memset(dst, 0, chunk);  // never-touched memory reads as zero
    } else {
      const std::vector<uint8_t>* data = CurrentData(*e, line);
      if (data == nullptr) return Status::LineLost("snoop of lost line");
      std::memcpy(dst, data->data() + offset, chunk);
    }
    dst += chunk;
    addr += chunk;
    len -= chunk;
  }
  return Status::Ok();
}

void Machine::SetLineActive(LineAddr line, bool active) {
  Entry(line).active_bit = active;
}

bool Machine::LineActive(LineAddr line) const {
  const DirEntry* e = directory_.Find(line);
  return e != nullptr && e->active_bit;
}

void Machine::CrashNode(NodeId node) {
  assert(node < config_.num_nodes);
  if (!alive_[node]) return;
  alive_[node] = false;
  ++stats_.node_crashes;

  // Hardware flushes outstanding requests of the failed node, releasing any
  // line locks it held.
  line_locks_.ReleaseAllHeldBy(node, clocks_[node]);

  // Destroy the node's cache and home memory; restore the directory to a
  // state consistent with the surviving caches (FLASH low-level recovery).
  caches_[node].Clear();
  directory_.ForEach([&](LineAddr line, DirEntry& e) {
    (void)line;
    if (e.cached_by(node)) {
      e.sharers &= ~(1ULL << node);
      if (e.owner == node) e.owner = kInvalidNode;
    }
    if (e.home == node) {
      e.mem_valid = false;
      std::fill(e.mem_data.begin(), e.mem_data.end(), 0);
    }
    bool home_alive = e.home < config_.num_nodes && alive_[e.home];
    if (!e.lost && e.sharers == 0 && !(e.mem_valid && home_alive)) {
      e.lost = true;
      ++stats_.lines_lost;
    }
  });

  SMDB_TRACE(tracer_, {.kind = TraceEventKind::kCrash,
                       .node = node,
                       .ts = clocks_[node]});
  SMDB_OBS(obs_, OnNodeDown(node, clocks_[node]));
  CrashEvent ev{node};
  for (const auto& hook : crash_hooks_) hook(ev);
}

void Machine::RestartNode(NodeId node) {
  assert(node < config_.num_nodes);
  if (alive_[node]) return;
  alive_[node] = true;
  caches_[node].Clear();
  clocks_[node] = GlobalTime();
  SMDB_OBS(obs_, OnNodeUp(node, clocks_[node]));
}

void Machine::RebootAll() {
  SimTime t = GlobalTime();
  for (uint16_t n = 0; n < config_.num_nodes; ++n) {
    if (alive_[n]) SMDB_OBS(obs_, OnNodeDown(n, t));
  }
  for (uint16_t n = 0; n < config_.num_nodes; ++n) {
    caches_[n].Clear();
    alive_[n] = true;
    clocks_[n] = t;
    SMDB_OBS(obs_, OnNodeUp(n, t));
  }
  directory_.ForEach([&](LineAddr line, DirEntry& e) {
    (void)line;
    e.sharers = 0;
    e.owner = kInvalidNode;
    e.mem_valid = false;
    std::fill(e.mem_data.begin(), e.mem_data.end(), 0);
    if (!e.lost) {
      e.lost = true;
      ++stats_.lines_lost;
    }
    e.active_bit = false;
    e.last_writer = kInvalidNode;
  });
}

std::vector<NodeId> Machine::AliveNodes() const {
  std::vector<NodeId> out;
  for (uint16_t n = 0; n < config_.num_nodes; ++n) {
    if (alive_[n]) out.push_back(n);
  }
  return out;
}

bool Machine::ProbeLine(LineAddr line) const {
  const DirEntry* e = directory_.Find(line);
  if (e == nullptr) return false;
  if (e->lost) return false;
  if (e->sharers != 0) return true;
  return e->mem_valid && e->home < config_.num_nodes && alive_[e->home];
}

bool Machine::IsLineLost(LineAddr line) const {
  const DirEntry* e = directory_.Find(line);
  return e != nullptr && e->lost;
}

void Machine::DiscardLine(LineAddr line) {
  DirEntry* e = directory_.Find(line);
  if (e == nullptr) return;
  uint64_t sharers = e->sharers;
  while (sharers != 0) {
    NodeId s = static_cast<NodeId>(__builtin_ctzll(sharers));
    sharers &= sharers - 1;
    caches_[s].Erase(line);
  }
  e->sharers = 0;
  e->owner = kInvalidNode;
  e->mem_valid = false;
  e->lost = true;
  e->active_bit = false;
  e->last_writer = kInvalidNode;
}

void Machine::DiscardRange(Addr addr, size_t len) {
  LineAddr first = LineOf(addr);
  LineAddr last = LineOf(addr + len - 1);
  for (LineAddr l = first; l <= last; ++l) DiscardLine(l);
}

void Machine::SyncClocks() {
  SimTime t = GlobalTime();
  for (uint16_t n = 0; n < config_.num_nodes; ++n) {
    if (alive_[n]) clocks_[n] = t;
  }
}

SimTime Machine::GlobalTime() const {
  SimTime t = 0;
  for (uint16_t n = 0; n < config_.num_nodes; ++n) {
    if (alive_[n]) t = std::max(t, clocks_[n]);
  }
  return t;
}

}  // namespace smdb
