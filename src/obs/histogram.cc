#include "obs/histogram.h"

#include <bit>
#include <cmath>
#include <cstdio>

namespace smdb {

size_t Histogram::CountsIndex(uint64_t value) {
  if (value < kSubBuckets) return static_cast<size_t>(value);
  // bucket = number of doublings beyond the exact range; the value's top
  // set bit is at position >= kSubBucketBits here.
  const uint32_t msb = 63 - static_cast<uint32_t>(std::countl_zero(value));
  const uint32_t bucket = msb - (kSubBucketBits - 1);  // >= 1
  const uint64_t sub = value >> bucket;  // in [kSubBucketHalf, kSubBuckets)
  return kSubBuckets + size_t{bucket - 1} * kSubBucketHalf +
         static_cast<size_t>(sub - kSubBucketHalf);
}

uint64_t Histogram::LowestEquivalent(size_t index) {
  if (index < kSubBuckets) return index;
  const size_t rel = index - kSubBuckets;
  const uint32_t bucket = static_cast<uint32_t>(rel / kSubBucketHalf) + 1;
  const uint64_t sub = kSubBucketHalf + rel % kSubBucketHalf;
  return sub << bucket;
}

uint64_t Histogram::HighestEquivalent(size_t index) {
  if (index < kSubBuckets) return index;
  const size_t rel = index - kSubBuckets;
  const uint32_t bucket = static_cast<uint32_t>(rel / kSubBucketHalf) + 1;
  const uint64_t sub = kSubBucketHalf + rel % kSubBucketHalf;
  return ((sub + 1) << bucket) - 1;
}

void Histogram::RecordN(uint64_t value, uint64_t count) {
  if (count == 0) return;
  if (counts_.empty()) counts_.assign(kNumCounts, 0);
  counts_[CountsIndex(value)] += count;
  count_ += count;
  sum_ += value * count;
  if (value < min_) min_ = value;
  if (value > max_) max_ = value;
}

void Histogram::Merge(const Histogram& other) {
  if (other.count_ == 0) return;
  if (counts_.empty()) counts_.assign(kNumCounts, 0);
  for (size_t i = 0; i < kNumCounts; ++i) counts_[i] += other.counts_[i];
  count_ += other.count_;
  sum_ += other.sum_;
  if (other.min_ < min_) min_ = other.min_;
  if (other.max_ > max_) max_ = other.max_;
}

uint64_t Histogram::ValueAtPercentile(double pct) const {
  if (count_ == 0) return 0;
  if (pct < 0.0) pct = 0.0;
  if (pct > 100.0) pct = 100.0;
  uint64_t target =
      static_cast<uint64_t>(std::ceil(pct / 100.0 * double(count_)));
  if (target == 0) target = 1;
  uint64_t cum = 0;
  for (size_t i = 0; i < counts_.size(); ++i) {
    cum += counts_[i];
    if (cum >= target) {
      // Never report past the tracked exact maximum (the last bucket's
      // highest-equivalent can exceed it).
      const uint64_t rep = HighestEquivalent(i);
      return rep > max_ ? max_ : rep;
    }
  }
  return max_;
}

uint64_t Histogram::CountInRange(uint64_t lo, uint64_t hi) const {
  if (count_ == 0 || hi < lo) return 0;
  uint64_t total = 0;
  for (size_t i = CountsIndex(lo); i < counts_.size(); ++i) {
    if (LowestEquivalent(i) > hi) break;
    if (counts_[i] == 0) continue;
    if (LowestEquivalent(i) >= lo && HighestEquivalent(i) <= hi) {
      total += counts_[i];
    }
  }
  return total;
}

void Histogram::ForEachNonZero(
    const std::function<void(uint64_t, uint64_t, uint64_t)>& fn) const {
  for (size_t i = 0; i < counts_.size(); ++i) {
    if (counts_[i] != 0) {
      fn(LowestEquivalent(i), HighestEquivalent(i), counts_[i]);
    }
  }
}

json::Value Histogram::SummaryJson() const {
  json::Value obj = json::Value::Object();
  obj.Set("count", json::Value::Uint(count_));
  obj.Set("min", json::Value::Uint(min()));
  obj.Set("max", json::Value::Uint(max_));
  obj.Set("sum", json::Value::Uint(sum_));
  obj.Set("mean", json::Value::Double(Mean()));
  obj.Set("p50", json::Value::Uint(P50()));
  obj.Set("p90", json::Value::Uint(P90()));
  obj.Set("p99", json::Value::Uint(P99()));
  obj.Set("p999", json::Value::Uint(P999()));
  return obj;
}

json::Value Histogram::ToJson() const {
  json::Value obj = SummaryJson();
  json::Value lo = json::Value::Array();
  json::Value hi = json::Value::Array();
  json::Value cnt = json::Value::Array();
  ForEachNonZero([&](uint64_t l, uint64_t h, uint64_t c) {
    lo.Append(json::Value::Uint(l));
    hi.Append(json::Value::Uint(h));
    cnt.Append(json::Value::Uint(c));
  });
  obj.Set("bucket_lo", std::move(lo));
  obj.Set("bucket_hi", std::move(hi));
  obj.Set("bucket_count", std::move(cnt));
  return obj;
}

namespace {
std::string FmtWithUnit(double v, const char* unit, int prec) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f%s", prec, v, unit);
  return buf;
}
}  // namespace

std::string FormatSimTime(uint64_t ns) {
  if (ns < 1'000) return FmtWithUnit(double(ns), "ns", 0);
  if (ns < 1'000'000) return FmtWithUnit(double(ns) / 1e3, "us", 2);
  if (ns < 1'000'000'000) return FmtWithUnit(double(ns) / 1e6, "ms", 2);
  return FmtWithUnit(double(ns) / 1e9, "s", 2);
}

std::string FormatSimTimeUs(uint64_t ns) {
  return FmtWithUnit(double(ns) / 1e3, "us", 2);
}

std::string FormatSimTimeMs(uint64_t ns) {
  return FmtWithUnit(double(ns) / 1e6, "ms", 2);
}

}  // namespace smdb
