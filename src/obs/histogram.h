#ifndef SMDB_OBS_HISTOGRAM_H_
#define SMDB_OBS_HISTOGRAM_H_

#include <cstddef>
#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "common/json.h"

namespace smdb {

/// Mergeable log-bucketed histogram (HdrHistogram-style fixed layout).
///
/// The bucket layout is a pure function of the value — never of the insert
/// order, the thread that recorded, or the histogram's history — so per-node
/// or per-thread histograms merge by bucket-wise addition: any merge order
/// (and any work partitioning) yields bit-identical counts and therefore
/// bit-identical percentiles. That is the property the latency observatory
/// leans on for its thread-width-invariance guarantee.
///
/// Layout: values below kSubBuckets (128) are exact (unit-width buckets);
/// above that, each power-of-two range splits into kSubBuckets/2 buckets,
/// giving a worst-case relative resolution of 1/64 (~1.6%). The full
/// uint64_t range is representable; storage is one flat count array
/// (~30 KB), allocated lazily on first Record so an empty histogram costs a
/// pointer.
class Histogram {
 public:
  static constexpr uint32_t kSubBucketBits = 7;
  static constexpr uint32_t kSubBuckets = 1u << kSubBucketBits;       // 128
  static constexpr uint32_t kSubBucketHalf = kSubBuckets / 2;         // 64
  /// Power-of-two ranges beyond the first exact bucket: values up to 2^63.
  static constexpr uint32_t kBucketRanges = 64 - kSubBucketBits;      // 57
  static constexpr size_t kNumCounts =
      kSubBuckets + size_t{kBucketRanges} * kSubBucketHalf;           // 3776

  /// Index of the count bucket holding `value`.
  static size_t CountsIndex(uint64_t value);
  /// Smallest value mapping to the bucket at `index`.
  static uint64_t LowestEquivalent(size_t index);
  /// Largest value mapping to the bucket at `index` (the deterministic
  /// representative reported by percentiles).
  static uint64_t HighestEquivalent(size_t index);

  void Record(uint64_t value) { RecordN(value, 1); }
  void RecordN(uint64_t value, uint64_t count);

  /// Bucket-wise addition; commutative and associative by construction.
  void Merge(const Histogram& other);

  void Reset() { *this = Histogram(); }

  uint64_t count() const { return count_; }
  bool empty() const { return count_ == 0; }
  /// Exact tracked extremes and total (not bucket-quantised).
  uint64_t min() const { return count_ == 0 ? 0 : min_; }
  uint64_t max() const { return max_; }
  uint64_t sum() const { return sum_; }
  double Mean() const {
    return count_ == 0 ? 0.0 : double(sum_) / double(count_);
  }

  /// Value at percentile `pct` (0..100): the highest-equivalent value of the
  /// first bucket whose cumulative count reaches ceil(pct/100 * count).
  /// Deterministic for a given bucket state; 0 on an empty histogram.
  uint64_t ValueAtPercentile(double pct) const;
  uint64_t P50() const { return ValueAtPercentile(50.0); }
  uint64_t P90() const { return ValueAtPercentile(90.0); }
  uint64_t P99() const { return ValueAtPercentile(99.0); }
  uint64_t P999() const { return ValueAtPercentile(99.9); }

  /// Total count over buckets entirely inside [lo, hi] (inclusive). Exact
  /// whenever lo/hi fall on bucket boundaries — in particular for any
  /// bounds below kSubBuckets, where buckets are unit-width.
  uint64_t CountInRange(uint64_t lo, uint64_t hi) const;

  /// Visits every non-empty bucket in ascending value order as
  /// (lowest_equivalent, highest_equivalent, count).
  void ForEachNonZero(
      const std::function<void(uint64_t, uint64_t, uint64_t)>& fn) const;

  /// Compact summary object: count, min, max, mean, sum, p50/p90/p99/p99.9.
  json::Value SummaryJson() const;
  /// Summary plus the non-empty buckets as parallel columns
  /// ("bucket_lo"/"bucket_hi"/"bucket_count").
  json::Value ToJson() const;

  friend bool operator==(const Histogram& a, const Histogram& b) {
    return a.count_ == b.count_ && a.sum_ == b.sum_ && a.min_ == b.min_ &&
           a.max_ == b.max_ && a.counts_ == b.counts_;
  }

 private:
  uint64_t count_ = 0;
  uint64_t sum_ = 0;
  uint64_t min_ = ~0ULL;
  uint64_t max_ = 0;
  std::vector<uint64_t> counts_;  ///< empty until first Record
};

/// Adaptive sim-duration formatting shared by the benches and the CLI
/// report ("875ns", "12.34us", "5.67ms", "1.20s").
std::string FormatSimTime(uint64_t ns);
/// Fixed-unit variants (the historical bench_util formats).
std::string FormatSimTimeUs(uint64_t ns);
std::string FormatSimTimeMs(uint64_t ns);

}  // namespace smdb

#endif  // SMDB_OBS_HISTOGRAM_H_
