#include "obs/observatory.h"

#include <algorithm>

namespace smdb {

Observatory::Observatory(uint16_t num_nodes, ObsConfig config)
    : enabled_(config.enabled),
      config_(config),
      series_(config.window_ns),
      node_states_(num_nodes) {}

void Observatory::Transition(NodeId node, NodeServiceState state,
                             SimTime ts) {
  if (node >= node_states_.size()) return;
  NodeState& ns = node_states_[node];
  if (ns.state == state) return;
  ns.state = state;
  transitions_.push_back(NodeStateTransition{ts, node, state});
}

bool Observatory::InCrashShadow(SimTime ts) const {
  for (const CrashRecord& c : crashes_) {
    if (c.open) return true;  // recovery running right now
    if (ts >= c.crash_ts &&
        ts <= c.recovery_end_ts + config_.crash_influence_ns) {
      return true;
    }
  }
  return false;
}

void Observatory::OnTxnBegin(NodeId node, TxnId txn, SimTime ts) {
  (void)node;
  std::lock_guard<std::mutex> lk(mu_);
  open_txns_.insert(txn);
  series_.OnBegin(ts);
  series_.NoteInflight(ts, open_txns_.size());
}

void Observatory::OnCommit(NodeId node, TxnId txn, SimTime ts,
                           SimTime latency) {
  std::lock_guard<std::mutex> lk(mu_);
  // Fire once per transaction even if several completion paths run
  // (normal finish, crash-time resolution of a durable pending commit).
  if (open_txns_.erase(txn) == 0) return;
  pending_waits_.erase(pending_waits_.lower_bound({txn, 0}),
                       pending_waits_.upper_bound({txn, ~0ULL}));
  commit_latency_.Record(latency);
  if (InCrashShadow(ts)) {
    commit_through_crash_.Record(latency);
  } else {
    commit_steady_.Record(latency);
  }
  series_.OnCommit(ts);
  series_.NoteInflight(ts, open_txns_.size());
  for (CrashRecord& c : crashes_) {
    if (!c.saw_commit) {
      c.saw_commit = true;
      c.first_commit_ts = ts;
    }
  }
  if (node < node_states_.size()) {
    NodeState& ns = node_states_[node];
    if (ns.awaiting_first_commit) {
      ns.awaiting_first_commit = false;
      if (ns.crash_index < crashes_.size()) {
        crashes_[ns.crash_index].node_ttfc.push_back(
            NodeTtfc{node, ns.restart_ts, ts, true});
      }
    }
  }
}

void Observatory::OnAbort(NodeId node, TxnId txn, SimTime ts,
                          SimTime latency) {
  (void)node;
  std::lock_guard<std::mutex> lk(mu_);
  if (open_txns_.erase(txn) == 0) return;
  pending_waits_.erase(pending_waits_.lower_bound({txn, 0}),
                       pending_waits_.upper_bound({txn, ~0ULL}));
  abort_latency_.Record(latency);
  series_.OnAbort(ts);
  series_.NoteInflight(ts, open_txns_.size());
}

void Observatory::OnLockQueued(TxnId txn, uint64_t name, SimTime ts) {
  std::lock_guard<std::mutex> lk(mu_);
  pending_waits_.emplace(std::pair<TxnId, uint64_t>{txn, name}, ts);
}

void Observatory::OnLockGranted(TxnId txn, uint64_t name, SimTime ts) {
  std::lock_guard<std::mutex> lk(mu_);
  auto it = pending_waits_.find({txn, name});
  if (it == pending_waits_.end()) return;  // granted without queueing
  const SimTime wait = ts >= it->second ? ts - it->second : 0;
  pending_waits_.erase(it);
  lock_wait_.Record(wait);
  LockContentionEntry& e = contention_[name];
  e.name = name;
  ++e.waits;
  e.total_wait_ns += wait;
  if (wait > e.max_wait_ns) e.max_wait_ns = wait;
}

void Observatory::OnGcEnqueued(NodeId node, uint64_t queue_depth,
                               SimTime ts) {
  (void)node;
  std::lock_guard<std::mutex> lk(mu_);
  series_.NoteGcDepth(ts, queue_depth);
}

void Observatory::OnGcResidency(NodeId node, SimTime residency, SimTime ts) {
  (void)node;
  (void)ts;
  std::lock_guard<std::mutex> lk(mu_);
  gc_residency_.Record(residency);
}

void Observatory::OnNodeDown(NodeId node, SimTime ts) {
  std::lock_guard<std::mutex> lk(mu_);
  Transition(node, NodeServiceState::kDown, ts);
}

void Observatory::OnNodeUp(NodeId node, SimTime ts) {
  std::lock_guard<std::mutex> lk(mu_);
  const bool in_recovery = !crashes_.empty() && crashes_.back().open;
  Transition(node,
             in_recovery ? NodeServiceState::kRecovering
                         : NodeServiceState::kServing,
             ts);
  if (node < node_states_.size()) {
    NodeState& ns = node_states_[node];
    ns.awaiting_first_commit = true;
    ns.restart_ts = ts;
    // Attribute the pending TTFC to the most recent crash that took this
    // node down (RestartNodes runs after the recovery pass; RebootAll
    // during one).
    ns.crash_index = crashes_.size();  // sentinel: no owning crash
    for (size_t i = crashes_.size(); i-- > 0;) {
      const std::vector<NodeId>& nodes = crashes_[i].nodes;
      if (std::find(nodes.begin(), nodes.end(), node) != nodes.end()) {
        ns.crash_index = i;
        break;
      }
    }
  }
}

void Observatory::OnRecoveryStart(const std::vector<NodeId>& crashed,
                                  SimTime ts) {
  std::lock_guard<std::mutex> lk(mu_);
  CrashRecord rec;
  rec.crash_ts = ts;
  rec.nodes = crashed;
  crashes_.push_back(std::move(rec));
  // Survivors stall while the synchronous recovery pass runs.
  for (NodeId n = 0; n < node_states_.size(); ++n) {
    if (node_states_[n].state == NodeServiceState::kServing) {
      Transition(n, NodeServiceState::kRecovering, ts);
    }
  }
}

void Observatory::OnRecoveryEnd(SimTime ts) {
  std::lock_guard<std::mutex> lk(mu_);
  if (!crashes_.empty() && crashes_.back().open) {
    crashes_.back().open = false;
    crashes_.back().recovery_end_ts = ts;
  }
  for (NodeId n = 0; n < node_states_.size(); ++n) {
    if (node_states_[n].state == NodeServiceState::kRecovering) {
      Transition(n, NodeServiceState::kServing, ts);
    }
  }
}

void Observatory::OnRecoveryDrained(SimTime ts) {
  std::lock_guard<std::mutex> lk(mu_);
  if (!crashes_.empty()) crashes_.back().drain_end_ts = ts;
}

LatencyReport Observatory::Snapshot() const {
  std::lock_guard<std::mutex> lk(mu_);
  LatencyReport rep;
  rep.enabled = enabled_;
  if (!enabled_) return rep;
  rep.window_ns = series_.window_ns();
  rep.commit_latency = commit_latency_;
  rep.abort_latency = abort_latency_;
  rep.lock_wait = lock_wait_;
  rep.gc_residency = gc_residency_;
  rep.commit_steady = commit_steady_;
  rep.commit_through_crash = commit_through_crash_;
  rep.series = series_;
  rep.node_states = transitions_;

  for (const CrashRecord& c : crashes_) {
    CrashAvailability ca;
    ca.crash_ts = c.crash_ts;
    ca.nodes = c.nodes;
    ca.recovery_end_ts = c.recovery_end_ts;
    ca.drain_end_ts = c.drain_end_ts;
    ca.saw_commit_after = c.saw_commit;
    ca.first_commit_ts = c.first_commit_ts;
    ca.node_ttfc = c.node_ttfc;
    ComputeThroughputTrough(series_, &ca);
    rep.availability.crashes.push_back(std::move(ca));
  }
  // Restarted nodes that never committed again still show up, explicitly
  // uncommitted.
  for (NodeId n = 0; n < node_states_.size(); ++n) {
    const NodeState& ns = node_states_[n];
    if (ns.awaiting_first_commit && ns.crash_index < crashes_.size()) {
      rep.availability.crashes[ns.crash_index].node_ttfc.push_back(
          NodeTtfc{n, ns.restart_ts, 0, false});
    }
  }

  rep.top_contended.reserve(contention_.size());
  for (const auto& [name, entry] : contention_) {
    rep.top_contended.push_back(entry);
  }
  // Rank by total wait, ties by name — both deterministic.
  std::stable_sort(rep.top_contended.begin(), rep.top_contended.end(),
                   [](const LockContentionEntry& a,
                      const LockContentionEntry& b) {
                     if (a.total_wait_ns != b.total_wait_ns) {
                       return a.total_wait_ns > b.total_wait_ns;
                     }
                     return a.name < b.name;
                   });
  if (rep.top_contended.size() > config_.top_contended) {
    rep.top_contended.resize(config_.top_contended);
  }
  return rep;
}

json::Value LatencyReport::ToJson() const {
  json::Value obj = json::Value::Object();
  obj.Set("enabled", json::Value::Bool(enabled));
  if (!enabled) return obj;
  obj.Set("window_ns", json::Value::Uint(window_ns));

  json::Value lat = json::Value::Object();
  lat.Set("commit", commit_latency.ToJson());
  lat.Set("abort", abort_latency.ToJson());
  lat.Set("lock_wait", lock_wait.ToJson());
  lat.Set("gc_residency", gc_residency.ToJson());
  lat.Set("commit_steady", commit_steady.SummaryJson());
  lat.Set("commit_through_crash", commit_through_crash.SummaryJson());
  obj.Set("latency", std::move(lat));

  obj.Set("series", series.ToJson());

  json::Value states = json::Value::Array();
  for (const NodeStateTransition& t : node_states) {
    json::Value e = json::Value::Object();
    e.Set("ts_ns", json::Value::Uint(t.ts));
    e.Set("node", json::Value::Uint(t.node));
    e.Set("state", json::Value::Str(NodeServiceStateName(t.state)));
    states.Append(std::move(e));
  }
  obj.Set("node_state_transitions", std::move(states));

  obj.Set("availability", availability.ToJson());

  json::Value cont = json::Value::Array();
  for (const LockContentionEntry& e : top_contended) {
    json::Value o = json::Value::Object();
    o.Set("name", json::Value::Uint(e.name));
    o.Set("waits", json::Value::Uint(e.waits));
    o.Set("total_wait_ns", json::Value::Uint(e.total_wait_ns));
    o.Set("max_wait_ns", json::Value::Uint(e.max_wait_ns));
    o.Set("mean_wait_ns", json::Value::Double(e.mean_wait_ns()));
    cont.Append(std::move(o));
  }
  obj.Set("lock_contention", std::move(cont));
  return obj;
}

}  // namespace smdb
