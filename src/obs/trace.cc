#include "obs/trace.h"

#include <algorithm>

namespace smdb {

const char* TraceEventKindName(TraceEventKind kind) {
  switch (kind) {
    case TraceEventKind::kMigration: return "migration";
    case TraceEventKind::kReplication: return "replication";
    case TraceEventKind::kInvalidation: return "invalidation";
    case TraceEventKind::kDowngrade: return "downgrade";
    case TraceEventKind::kLogAppend: return "log_append";
    case TraceEventKind::kForceIntent: return "force_intent";
    case TraceEventKind::kLogForce: return "log_force";
    case TraceEventKind::kGroupCommitFlush: return "group_commit_flush";
    case TraceEventKind::kTxnBegin: return "txn_begin";
    case TraceEventKind::kTxnCommitWait: return "txn_commit_wait";
    case TraceEventKind::kTxnCommit: return "txn_commit";
    case TraceEventKind::kTxnAbort: return "txn_abort";
    case TraceEventKind::kLockAcquire: return "lock_acquire";
    case TraceEventKind::kLockRelease: return "lock_release";
    case TraceEventKind::kCrash: return "crash";
    case TraceEventKind::kRecoveryPhase: return "recovery_phase";
    case TraceEventKind::kTagDecision: return "tag_decision";
    case TraceEventKind::kBatchReject: return "batch_reject";
    case TraceEventKind::kSweepSolo: return "sweep_solo";
  }
  return "unknown";
}

TraceRecorder::TraceRecorder(uint16_t num_nodes, uint32_t capacity_per_node)
    : capacity_(capacity_per_node == 0 ? 1 : capacity_per_node),
      rings_(num_nodes == 0 ? 1 : num_nodes) {}

void TraceRecorder::Record(TraceEvent ev) {
  std::lock_guard<std::mutex> lk(mu_);
  Ring& ring = rings_[ev.node < rings_.size() ? ev.node : 0];
  ev.seq = seq_++;
  ++ring.recorded;
  if (ring.buf.size() < capacity_) {
    ring.buf.push_back(ev);
    return;
  }
  ring.buf[ring.next] = ev;
  ring.next = (ring.next + 1) % ring.buf.size();
  ++ring.dropped;
}

uint64_t TraceRecorder::dropped(NodeId node) const {
  std::lock_guard<std::mutex> lk(mu_);
  return node < rings_.size() ? rings_[node].dropped : 0;
}

uint64_t TraceRecorder::total_dropped() const {
  std::lock_guard<std::mutex> lk(mu_);
  uint64_t total = 0;
  for (const Ring& r : rings_) total += r.dropped;
  return total;
}

uint64_t TraceRecorder::total_recorded() const {
  std::lock_guard<std::mutex> lk(mu_);
  uint64_t total = 0;
  for (const Ring& r : rings_) total += r.recorded;
  return total;
}

std::vector<TraceEvent> TraceRecorder::EventsLocked(NodeId node) const {
  std::vector<TraceEvent> out;
  if (node >= rings_.size()) return out;
  const Ring& ring = rings_[node];
  out.reserve(ring.buf.size());
  // Oldest-first: the overwrite cursor points at the oldest entry once the
  // ring has wrapped.
  for (size_t i = 0; i < ring.buf.size(); ++i) {
    out.push_back(ring.buf[(ring.next + i) % ring.buf.size()]);
  }
  return out;
}

std::vector<TraceEvent> TraceRecorder::Events(NodeId node) const {
  std::lock_guard<std::mutex> lk(mu_);
  return EventsLocked(node);
}

std::vector<TraceEvent> TraceRecorder::AllEvents() const {
  std::lock_guard<std::mutex> lk(mu_);
  std::vector<TraceEvent> out;
  for (NodeId n = 0; n < rings_.size(); ++n) {
    std::vector<TraceEvent> evs = EventsLocked(n);
    out.insert(out.end(), evs.begin(), evs.end());
  }
  std::sort(out.begin(), out.end(),
            [](const TraceEvent& a, const TraceEvent& b) {
              return a.seq < b.seq;
            });
  return out;
}

std::vector<TraceEvent> TraceRecorder::Tail(NodeId node, size_t n) const {
  std::vector<TraceEvent> evs = Events(node);
  if (evs.size() > n) evs.erase(evs.begin(), evs.end() - n);
  return evs;
}

json::Value TraceEventJson(const TraceEvent& ev) {
  json::Value o = json::Value::Object();
  o.Set("kind", json::Value::Str(TraceEventKindName(ev.kind)));
  o.Set("node", json::Value::Uint(ev.node));
  o.Set("ts", json::Value::Uint(ev.ts));
  if (ev.dur != 0) o.Set("dur", json::Value::Uint(ev.dur));
  if (ev.peer != kInvalidNode) o.Set("peer", json::Value::Uint(ev.peer));
  if (ev.txn != kInvalidTxn) o.Set("txn", json::Value::Uint(ev.txn));
  if (ev.a != 0) o.Set("a", json::Value::Uint(ev.a));
  if (ev.b != 0) o.Set("b", json::Value::Uint(ev.b));
  if (ev.label != nullptr) o.Set("label", json::Value::Str(ev.label));
  o.Set("seq", json::Value::Uint(ev.seq));
  return o;
}

json::Value TraceRecorder::ToJson() const {
  json::Value doc = json::Value::Object();
  json::Value events = json::Value::Array();
  for (const TraceEvent& ev : AllEvents()) events.Append(TraceEventJson(ev));
  doc.Set("events", std::move(events));
  json::Value drops = json::Value::Array();
  {
    std::lock_guard<std::mutex> lk(mu_);
    for (const Ring& r : rings_) drops.Append(json::Value::Uint(r.dropped));
  }
  doc.Set("dropped", std::move(drops));
  doc.Set("recorded", json::Value::Uint(total_recorded()));
  return doc;
}

json::Value TraceRecorder::ChromeTraceJson() const {
  json::Value doc = json::Value::Object();
  json::Value events = json::Value::Array();
  // One named track per node. pid 0 is "the machine"; tid = node id.
  for (NodeId n = 0; n < rings_.size(); ++n) {
    json::Value meta = json::Value::Object();
    meta.Set("name", json::Value::Str("thread_name"));
    meta.Set("ph", json::Value::Str("M"));
    meta.Set("pid", json::Value::Uint(0));
    meta.Set("tid", json::Value::Uint(n));
    json::Value args = json::Value::Object();
    args.Set("name", json::Value::Str("node " + std::to_string(n)));
    meta.Set("args", std::move(args));
    events.Append(std::move(meta));
  }
  for (const TraceEvent& ev : AllEvents()) {
    json::Value e = json::Value::Object();
    // Recovery phases render as spans named by the phase alone ("redo",
    // "tag_scan", the "recovery" envelope) so the timeline reads directly;
    // other labelled events keep kind:label names ("log_force:commit").
    const bool is_phase = ev.kind == TraceEventKind::kRecoveryPhase;
    std::string name = is_phase && ev.label != nullptr
                           ? ev.label
                           : TraceEventKindName(ev.kind);
    if (!is_phase && ev.label != nullptr) name += std::string(":") + ev.label;
    e.Set("name", json::Value::Str(name));
    e.Set("cat", json::Value::Str(TraceEventKindName(ev.kind)));
    e.Set("ph", json::Value::Str(is_phase || ev.dur != 0 ? "X" : "i"));
    e.Set("pid", json::Value::Uint(0));
    e.Set("tid", json::Value::Uint(ev.node));
    // Chrome trace timestamps are microseconds; sim time is nanoseconds.
    e.Set("ts", json::Value::Double(static_cast<double>(ev.ts) / 1e3));
    if (is_phase || ev.dur != 0) {
      e.Set("dur", json::Value::Double(static_cast<double>(ev.dur) / 1e3));
    } else {
      e.Set("s", json::Value::Str("t"));
    }
    json::Value args = json::Value::Object();
    if (ev.peer != kInvalidNode) args.Set("peer", json::Value::Uint(ev.peer));
    if (ev.txn != kInvalidTxn) args.Set("txn", json::Value::Uint(ev.txn));
    if (ev.a != 0) args.Set("a", json::Value::Uint(ev.a));
    if (ev.b != 0) args.Set("b", json::Value::Uint(ev.b));
    e.Set("args", std::move(args));
    events.Append(std::move(e));
  }
  doc.Set("traceEvents", std::move(events));
  doc.Set("displayTimeUnit", json::Value::Str("ms"));
  return doc;
}

}  // namespace smdb
