#ifndef SMDB_OBS_TRACE_H_
#define SMDB_OBS_TRACE_H_

#include <cstdint>
#include <mutex>
#include <string>
#include <vector>

#include "common/json.h"
#include "common/types.h"

namespace smdb {

/// Typed trace events. One enum for every instrumented site so a single
/// ring-buffer entry stays POD-sized; the payload fields `a`/`b` are
/// interpreted per kind (documented on each enumerator).
enum class TraceEventKind : uint8_t {
  // Coherence actions (sim/machine.cc). a = line address.
  kMigration,     ///< dirty line moved to the requesting cache; peer = old owner
  kReplication,   ///< line copied into the requesting cache; peer = source
  kInvalidation,  ///< sharer copy invalidated; node = writer, peer = sharer
  kDowngrade,     ///< exclusive copy downgraded to shared; peer = old owner

  // WAL actions (wal/log_manager.cc, wal/group_commit.cc).
  kLogAppend,         ///< record appended to the volatile tail; a = lsn
  kForceIntent,       ///< force requested/armed; label = "commit"|"lbm", a = lsn
  kLogForce,          ///< batched force to stable storage; peer = requestor,
                      ///< a = batch size, b = last stable lsn
  kGroupCommitFlush,  ///< pipeline flushed a node's queue; a = pending
                      ///< commits, label = "size"|"deadline"|"direct"

  // Transaction lifecycle (txn/txn_manager.cc). txn = transaction id.
  kTxnBegin,       ///< a = begin-record lsn
  kTxnCommitWait,  ///< commit parked pending a group force; a = commit lsn
  kTxnCommit,      ///< commit finished; label = "resolved" for crash-time
                   ///< completion of a durable pending commit
  kTxnAbort,       ///< abort finished; label = "annulled" for crash annulment

  // Lock manager (lockmgr/lock_table.cc). a = lock name, b = mode.
  kLockAcquire,  ///< lock granted; label = "poll" when granted from the queue
  kLockRelease,  ///< lock released

  // Failures and recovery (sim/machine.cc, core/recovery_manager.cc).
  kCrash,          ///< node crashed
  kRecoveryPhase,  ///< span: label = phase name, dur = phase sim-time
  kTagDecision,    ///< tag-scan verdict; label = "heap-undo"|"heap-stale"|
                   ///< "index-undo"|"index-stale", a = rid/key, txn = owner

  // Profiler events (txn/executor.cc, core/on_demand.cc).
  kBatchReject,  ///< a pick executed solo; label = BatchRejectReasonName
  kSweepSolo,    ///< a sweeper discharge ran solo; label = SweeperSoloReasonName
};

/// Number of enumerators — smdb_trace_check builds its known-kind set by
/// iterating [0, kNumTraceEventKinds). Keep in sync with the enum tail.
inline constexpr size_t kNumTraceEventKinds =
    static_cast<size_t>(TraceEventKind::kSweepSolo) + 1;

/// Human-readable name of a kind (stable; used in exported JSON).
const char* TraceEventKindName(TraceEventKind kind);

/// One trace entry. POD so the per-node rings are flat arrays; `label`
/// must point at a string with static storage duration (phase names,
/// decision labels) — the recorder never copies or frees it.
struct TraceEvent {
  TraceEventKind kind = TraceEventKind::kCrash;
  NodeId node = 0;            ///< ring / Chrome-trace track the event lands on
  NodeId peer = kInvalidNode; ///< other party, when the action has one
  TxnId txn = kInvalidTxn;
  SimTime ts = 0;   ///< sim-ns at emission
  SimTime dur = 0;  ///< sim-ns span length; 0 = instant
  uint64_t a = 0;
  uint64_t b = 0;
  const char* label = nullptr;
  uint64_t seq = 0;  ///< recorder-assigned global emission order
};

/// Tracing knobs, carried in DatabaseConfig.
struct TraceConfig {
  /// Runtime switch. Off (the default) leaves only a pointer + bool test
  /// at every emission site; build with -DSMDB_TRACE_DISABLED (CMake
  /// option SMDB_DISABLE_TRACING) to compile the sites out entirely.
  bool enabled = false;
  /// Ring capacity per node; oldest events are dropped (and counted) once
  /// a node's ring is full.
  uint32_t capacity_per_node = 4096;
};

/// Per-node fixed-capacity ring buffers of TraceEvents with drop-oldest
/// overflow. Thread-safe: Record takes a mutex, but the sim's emission
/// sites all run on the recovery coordinator / harness thread, so for a
/// fixed seed the recorded sequence (including the global `seq` order) is
/// deterministic at any recovery_threads / --jobs setting.
class TraceRecorder {
 public:
  TraceRecorder(uint16_t num_nodes, uint32_t capacity_per_node);

  bool enabled() const { return enabled_; }
  void set_enabled(bool on) { enabled_ = on; }
  uint16_t num_nodes() const { return static_cast<uint16_t>(rings_.size()); }
  uint32_t capacity_per_node() const { return capacity_; }

  /// Records one event (assigns its global seq). Out-of-range nodes are
  /// clamped to ring 0 rather than dropped so misrouted events stay
  /// visible in the export.
  void Record(TraceEvent ev);

  /// Events dropped from one node's ring / across all rings.
  uint64_t dropped(NodeId node) const;
  uint64_t total_dropped() const;
  /// Events ever recorded (including since-dropped ones).
  uint64_t total_recorded() const;

  /// One node's surviving events, oldest first.
  std::vector<TraceEvent> Events(NodeId node) const;
  /// All surviving events merged in global emission (seq) order.
  std::vector<TraceEvent> AllEvents() const;
  /// The last `n` surviving events of one node, oldest first.
  std::vector<TraceEvent> Tail(NodeId node, size_t n) const;

  /// Plain JSON export: {"events": [...], "dropped": [...], "recorded": N}.
  json::Value ToJson() const;
  /// Chrome trace-event export (load at chrome://tracing or ui.perfetto.dev):
  /// one track (tid) per node, "X" complete events for spans, "i" instants.
  json::Value ChromeTraceJson() const;
  std::string ToChromeTrace(int indent = 1) const {
    return ChromeTraceJson().Dump(indent);
  }

 private:
  struct Ring {
    std::vector<TraceEvent> buf;  ///< size = capacity once full
    size_t next = 0;              ///< overwrite cursor once full
    uint64_t recorded = 0;
    uint64_t dropped = 0;
  };

  std::vector<TraceEvent> EventsLocked(NodeId node) const;

  mutable std::mutex mu_;
  bool enabled_ = false;
  uint32_t capacity_;
  std::vector<Ring> rings_;
  uint64_t seq_ = 0;
};

/// Serializes one event as a JSON object (shared by ToJson and the
/// forensic reports).
json::Value TraceEventJson(const TraceEvent& ev);

}  // namespace smdb

/// Emission macro: compiles to nothing under SMDB_DISABLE_TRACING, else a
/// null + enabled check ahead of the Record call. `tracer_expr` must
/// evaluate to a TraceRecorder*.
#ifdef SMDB_TRACE_DISABLED
#define SMDB_TRACE(tracer_expr, ...) ((void)0)
#else
#define SMDB_TRACE(tracer_expr, ...)                              \
  do {                                                            \
    ::smdb::TraceRecorder* smdb_trace_rec = (tracer_expr);        \
    if (smdb_trace_rec != nullptr && smdb_trace_rec->enabled()) { \
      smdb_trace_rec->Record(__VA_ARGS__);                        \
    }                                                             \
  } while (0)
#endif

#endif  // SMDB_OBS_TRACE_H_
