#ifndef SMDB_OBS_PROFILER_H_
#define SMDB_OBS_PROFILER_H_

#include <array>
#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "common/json.h"
#include "common/types.h"
#include "obs/histogram.h"

namespace smdb {

struct HarnessReport;

/// Why a drawn pick executed alone instead of joining a multi-pick batch.
/// One reason is attributed per solo step (and per serial-gated step), so
/// for any profiled run the per-reason counts sum exactly to
/// ShardStats::solo_steps — the invariant smdb_profile_check and the
/// obs_test matrix pin. The taxonomy maps one-to-one onto the actual
/// rejection points in SystemExecutor::RunBatches / NodeExecutor::Peek.
enum class BatchRejectReason : uint8_t {
  // Serial gates: batching bypassed for the whole run regardless of width.
  kSerialGatedGroupCommit,  ///< commit pipeline coalesces forces on poll order
  kSerialGatedOnDemand,     ///< first-touch recovery hooks have no footprint

  // Exclusive picks (Peek/PlanPick could not prove the step batchable).
  kPollLock,              ///< step polls a queued lock
  kPollCommit,            ///< step polls a pending group commit
  kRestart,               ///< txn annulled underneath the script: restart
  kAbortOp,               ///< rollback walks the log
  kLockNotGrantable,      ///< Predict: would queue / spin / deadlock-abort
  kInvalidArg,            ///< malformed op ends in HandleAbort
  kWaiterPromotion,       ///< commit releases a lock with waiters (cross-node
                          ///< promotion log append)
  kStableTriggeredIndex,  ///< index op under ST-LBM: unknown forced logs
  kStableTriggeredClearTag,  ///< commit-time ClearTag under ST-LBM
  kLostLine,              ///< footprint touches a lost line (error path)

  // Batch-dynamic conflicts (the pick was batchable but collided with the
  // open batch, closing it; attributed when the closed batch had size 1).
  kRecordFootprintCollision,  ///< slot/header line already in the batch
  kLockStripeCollision,       ///< LCB probe-window line already in the batch
  kIndexDescentCollision,     ///< second index-descending pick (token held)
  kForcedLogCollision,        ///< ST-LBM third-party force targets a member
  kPerNodeCap,                ///< ≤1-pick-per-node rule
  kSuccessorExclusive,        ///< next draw was exclusive and closed the batch

  // Structural closes and barriers.
  kTerminalClose,    ///< pick may idle its executor: ready set would change
  kIndexTokenClose,  ///< index token must be the batch's last member
  kBudgetBarrier,    ///< crash / checkpoint / max_steps schedule barrier
  kDrained,          ///< every live executor went idle mid-batch
  kUnclassified,     ///< fallback; must stay zero in practice
};
inline constexpr size_t kNumBatchRejectReasons =
    static_cast<size_t>(BatchRejectReason::kUnclassified) + 1;
const char* BatchRejectReasonName(BatchRejectReason r);

/// Why an on-demand sweeper discharge ran solo (off the ThreadPool batch
/// path). `sweeper.solo.<reason>` in the metrics snapshot.
enum class SweeperSoloReason : uint8_t {
  kIndexDescent,    ///< index-key obligation descends the B+-tree
  kPageLoad,        ///< page image still pending: lazy load first
  kUndoObligation,  ///< undo work allocates CLR USNs: strict order
  kTagDischarge,    ///< slot carries a dead node's tag
  kLoneRecord,      ///< clean record but no batch partner
  kSerialSweep,     ///< recovery_threads == 1: the whole sweep is serial
};
inline constexpr size_t kNumSweeperSoloReasons =
    static_cast<size_t>(SweeperSoloReason::kSerialSweep) + 1;
const char* SweeperSoloReasonName(SweeperSoloReason r);

/// Hierarchical sim-time phases. Roots (kStep, kSweep, kRecovery) open a
/// coordinator-thread attribution window; the others nest inside it.
enum class ProfPhase : uint8_t {
  kStep,      ///< one solo / serial executor step
  kSweep,     ///< one solo sweeper discharge
  kRecovery,  ///< the eager crash-time recovery prefix
  kLockWait,
  kCoherence,
  kWalAppend,
  kWalForce,
  kIndexDescent,
  kApply,
};
const char* ProfPhaseName(ProfPhase p);

struct ProfilerConfig {
  /// Runtime switch. When on, the SystemExecutor additionally pins its
  /// batch planner at a canonical width (max(execution_threads, 8)) so
  /// reason counts and occupancy are comparable across widths; the
  /// StateDigest is plan-width-invariant by the schedule-replay
  /// construction, so enabling the profiler never changes the final state.
  bool enabled = false;
};

/// One collapsed-stack bucket: total sim-ns of Machine::Tick charges that
/// landed while this exact phase path was innermost, how many Tick calls
/// those were, and how many times the path was entered.
struct ProfPhaseCell {
  SimTime ns = 0;
  uint64_t ticks = 0;
  uint64_t samples = 0;
};

/// Copyable end-of-run snapshot (rides in HarnessReport::profile).
struct ProfilerReport {
  bool enabled = false;
  std::array<uint64_t, kNumBatchRejectReasons> reject{};
  std::array<uint64_t, kNumSweeperSoloReasons> sweeper_solo{};
  /// Steps per dispatched batch (1 = solo) / distinct footprint lines per
  /// batch, at the *planning* width (canonical ≥8 when profiling).
  Histogram batch_occupancy;
  Histogram batch_footprint_lines;
  /// Keyed by semicolon-joined phase path ("step;apply;wal_append").
  std::map<std::string, ProfPhaseCell> phases;

  uint64_t reject_total() const;
  uint64_t sweeper_solo_total() const;
  json::Value ToJson() const;
  /// flamegraph.pl-compatible collapsed stacks: "stack ns\n" per bucket.
  std::string ToCollapsed() const;
};

/// The execution/recovery profiler: conflict-reason attribution for the
/// sharded executor and the on-demand sweeper, plus exact sim-time cost
/// accounting. Time attribution piggybacks on Machine::Tick — every
/// simulated-time charge that lands while a root scope is open on the
/// current thread is credited to the innermost phase path, so there is no
/// clock sampling, no self-time reconstruction, and (because roots only
/// open on the coordinator's solo/serial paths) no cross-thread traffic.
/// Pool workers see a thread_local depth of zero and skip in one branch.
class Profiler {
 public:
  explicit Profiler(ProfilerConfig cfg = {}) : enabled_(cfg.enabled) {}

  Profiler(const Profiler&) = delete;
  Profiler& operator=(const Profiler&) = delete;

  bool enabled() const {
#ifdef SMDB_PROFILER_DISABLED
    return false;
#else
    return enabled_;
#endif
  }
  void set_enabled(bool on) { enabled_ = on; }

  /// True when a root scope is open on the *current thread* — the gate
  /// every emission site checks first (thread-local, no sharing).
  static bool InScope() { return tl_depth_ > 0; }

  // -- Conflict attribution (coordinator thread only) ---------------------
  void CountReject(BatchRejectReason r) {
    ++reject_[static_cast<size_t>(r)];
  }
  void CountSweeperSolo(SweeperSoloReason r) {
    ++sweeper_solo_[static_cast<size_t>(r)];
  }
  void RecordBatch(uint64_t occupancy, uint64_t footprint_lines) {
    occupancy_.Record(occupancy);
    footprint_.Record(footprint_lines);
  }

  // -- Sim-time attribution (use ProfRoot / ProfScope, not these) ---------
  void OnTick(SimTime ns) {
    if (cur_ != nullptr) {
      cur_->ns += ns;
      ++cur_->ticks;
    }
  }
  void BeginRoot(ProfPhase root);
  void EndRoot();
  void Enter(ProfPhase phase);
  void Exit();

  ProfilerReport Snapshot() const;
  void Reset();

 private:
  static thread_local uint32_t tl_depth_;

  bool enabled_ = false;
  std::array<uint64_t, kNumBatchRejectReasons> reject_{};
  std::array<uint64_t, kNumSweeperSoloReasons> sweeper_solo_{};
  Histogram occupancy_;
  Histogram footprint_;
  std::map<std::string, ProfPhaseCell> cells_;
  std::string path_;
  std::vector<size_t> frames_;  ///< path_ lengths to restore on Exit
  ProfPhaseCell* cur_ = nullptr;
};

/// RAII attribution window for one coordinator-path unit of work (a solo
/// step, a sweeper discharge, the recovery prefix). No-ops when the
/// profiler is null/disabled or a root is already open on this thread.
class ProfRoot {
 public:
#ifdef SMDB_PROFILER_DISABLED
  ProfRoot(Profiler*, ProfPhase) {}
#else
  ProfRoot(Profiler* p, ProfPhase root) {
    if (p != nullptr && p->enabled() && !Profiler::InScope()) {
      p_ = p;
      p->BeginRoot(root);
    }
  }
  ~ProfRoot() {
    if (p_ != nullptr) p_->EndRoot();
  }

 private:
  Profiler* p_ = nullptr;
#endif
  ProfRoot(const ProfRoot&) = delete;
  ProfRoot& operator=(const ProfRoot&) = delete;
};

/// RAII nested phase. Engages only inside an open root on this thread, so
/// pool workers pay exactly one thread-local branch.
class ProfScope {
 public:
#ifdef SMDB_PROFILER_DISABLED
  ProfScope(Profiler*, ProfPhase) {}
#else
  ProfScope(Profiler* p, ProfPhase phase) {
    if (Profiler::InScope() && p != nullptr) {
      p_ = p;
      p->Enter(phase);
    }
  }
  ~ProfScope() {
    if (p_ != nullptr) p_->Exit();
  }

 private:
  Profiler* p_ = nullptr;
#endif
  ProfScope(const ProfScope&) = delete;
  ProfScope& operator=(const ProfScope&) = delete;
};

/// Assembles the standalone profile document `smdb_run --profile-out` and
/// bench_throughput write (and smdb_profile_check validates): the profiler
/// snapshot plus the executor/sweeper occupancy counters it is gated on.
json::Value ProfileJsonFromReport(const HarnessReport& report);

}  // namespace smdb

/// Tick hook (sim/machine.h): attributes a sim-time charge to the current
/// phase path. Compiled out under SMDB_PROFILER_DISABLED; otherwise one
/// thread-local branch when no root is open.
#ifdef SMDB_PROFILER_DISABLED
#define SMDB_PROF_TICK(prof_expr, ns) ((void)0)
#else
#define SMDB_PROF_TICK(prof_expr, ns)               \
  do {                                              \
    if (::smdb::Profiler::InScope()) {              \
      ::smdb::Profiler* smdb_prof_p = (prof_expr);  \
      if (smdb_prof_p != nullptr) {                 \
        smdb_prof_p->OnTick(ns);                    \
      }                                             \
    }                                               \
  } while (0)
#endif

#endif  // SMDB_OBS_PROFILER_H_
