#ifndef SMDB_OBS_FORENSICS_H_
#define SMDB_OBS_FORENSICS_H_

#include <cstddef>

#include "common/json.h"

namespace smdb {

class Database;
class IfaChecker;

/// Builds a bounded crash-forensics report for a failed IFA verification:
/// the checker's structured violation, the last `last_n` trace events per
/// node (plus per-node drop counts), the offending object's log-record
/// chain gathered from every reachable log, the lock state of the object's
/// lock name, and any tag-scan decisions recorded for it. Everything is
/// read via snooping / host-side log walks — no simulated cost — so it is
/// safe to call on an already-failed run. With no recorded violation the
/// report still carries the trace tails (the violation field is null).
json::Value BuildForensicReport(Database& db, const IfaChecker* checker,
                                size_t last_n);

}  // namespace smdb

#endif  // SMDB_OBS_FORENSICS_H_
