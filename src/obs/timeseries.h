#ifndef SMDB_OBS_TIMESERIES_H_
#define SMDB_OBS_TIMESERIES_H_

#include <cstddef>
#include <cstdint>
#include <vector>

#include "common/json.h"
#include "common/types.h"

namespace smdb {

/// Service state of one node as the availability timeline sees it.
/// kDown = crashed and not yet restarted; kRecovering = participating in a
/// restart-recovery pass (survivors stall while the synchronous recovery
/// runs, and rebooted/restarted nodes stay here until the pass completes);
/// kServing = accepting and committing work.
enum class NodeServiceState : uint8_t { kServing, kDown, kRecovering };

const char* NodeServiceStateName(NodeServiceState state);

/// One node-state change, in emission order.
struct NodeStateTransition {
  SimTime ts = 0;
  NodeId node = kInvalidNode;
  NodeServiceState state = NodeServiceState::kServing;
};

/// Sim-time windowed sampler: every recorded event lands in the window
/// floor(ts / window_ns). Windows are dense from 0 through the last
/// recorded event, so quiet stretches show up as explicit empty windows
/// (the shape of a throughput trough, not a gap in the x-axis).
class TimeSeries {
 public:
  /// Growth cap: a corrupt timestamp must not allocate unbounded windows;
  /// events past the cap land in the last window.
  static constexpr size_t kMaxWindows = 1u << 20;

  struct Window {
    uint64_t begins = 0;
    uint64_t commits = 0;
    uint64_t aborts = 0;
    uint64_t max_inflight = 0;
    uint64_t max_gc_depth = 0;
  };

  explicit TimeSeries(SimTime window_ns = 50'000)
      : window_ns_(window_ns == 0 ? 1 : window_ns) {}

  SimTime window_ns() const { return window_ns_; }
  size_t WindowIndex(SimTime ts) const {
    size_t idx = static_cast<size_t>(ts / window_ns_);
    return idx >= kMaxWindows ? kMaxWindows - 1 : idx;
  }
  SimTime WindowStart(size_t index) const { return index * window_ns_; }

  void OnBegin(SimTime ts) { ++At(ts).begins; }
  void OnCommit(SimTime ts) { ++At(ts).commits; }
  void OnAbort(SimTime ts) { ++At(ts).aborts; }
  void NoteInflight(SimTime ts, uint64_t inflight) {
    Window& w = At(ts);
    if (inflight > w.max_inflight) w.max_inflight = inflight;
  }
  void NoteGcDepth(SimTime ts, uint64_t depth) {
    Window& w = At(ts);
    if (depth > w.max_gc_depth) w.max_gc_depth = depth;
  }

  const std::vector<Window>& windows() const { return windows_; }

  /// Committed transactions per simulated second in window `index`.
  double Tps(size_t index) const {
    return index >= windows_.size()
               ? 0.0
               : double(windows_[index].commits) * 1e9 / double(window_ns_);
  }

  /// Columnar export: parallel arrays keyed "window_start_ns", "commits",
  /// "aborts", "begins", "max_inflight", "max_gc_depth", "tps".
  json::Value ToJson() const;

 private:
  Window& At(SimTime ts) {
    size_t idx = WindowIndex(ts);
    if (idx >= windows_.size()) windows_.resize(idx + 1);
    return windows_[idx];
  }

  SimTime window_ns_;
  std::vector<Window> windows_;
};

/// Time-to-first-commit of one restarted node.
struct NodeTtfc {
  NodeId node = kInvalidNode;
  SimTime restart_ts = 0;
  SimTime first_commit_ts = 0;
  /// False while the node has not committed since its restart.
  bool committed = false;

  SimTime ttfc_ns() const {
    return !committed || first_commit_ts < restart_ts
               ? 0
               : first_commit_ts - restart_ts;
  }
};

/// Availability metrics derived for one crash: how fast commits resumed and
/// how deep/wide the throughput trough was.
struct CrashAvailability {
  SimTime crash_ts = 0;
  std::vector<NodeId> nodes;
  SimTime recovery_end_ts = 0;
  /// On-demand recovery only: when the last lazy obligation was discharged
  /// (first touch, sweeper, or drain). 0 when recovery was fully eager —
  /// the eager pass leaves nothing pending. recovery_end_ts then marks just
  /// the eager crash-time prefix, so (drain_end_ts - recovery_end_ts) is
  /// the span the database served traffic while still Recovering.
  SimTime drain_end_ts = 0;

  /// First commit acknowledged anywhere after the crash fired. Resolved
  /// pending commits (crash-time group-commit resolution) count — they are
  /// real acknowledgements during the outage window.
  bool saw_commit_after = false;
  SimTime first_commit_ts = 0;
  SimTime ttfc_ns() const {
    return !saw_commit_after || first_commit_ts < crash_ts
               ? 0
               : first_commit_ts - crash_ts;
  }

  /// Per crashed-and-restarted node: restart -> first commit on that node.
  std::vector<NodeTtfc> node_ttfc;

  /// Throughput trough, from the windowed commit series: steady state is
  /// the mean rate over the pre-crash windows; the trough is the run of
  /// windows from the crash whose rate stays below half of steady.
  double steady_tps = 0.0;
  double trough_tps = 0.0;  ///< minimum rate inside the trough
  uint64_t trough_windows = 0;
  SimTime trough_duration_ns = 0;
  double depth_pct = 0.0;  ///< (1 - trough/steady) * 100

  json::Value ToJson() const;
};

struct AvailabilityReport {
  std::vector<CrashAvailability> crashes;
  json::Value ToJson() const;
};

/// Fills the trough fields of `ca` from the commit-rate series: steady rate
/// from the windows before the crash (falling back to the whole-series mean
/// when the crash is at t=0), then the below-half-steady run starting at
/// the crash window.
void ComputeThroughputTrough(const TimeSeries& series, CrashAvailability* ca);

}  // namespace smdb

#endif  // SMDB_OBS_TIMESERIES_H_
