#ifndef SMDB_OBS_OBSERVATORY_H_
#define SMDB_OBS_OBSERVATORY_H_

#include <cstdint>
#include <map>
#include <mutex>
#include <set>
#include <vector>

#include "common/json.h"
#include "common/types.h"
#include "obs/histogram.h"
#include "obs/timeseries.h"

namespace smdb {

/// Latency-observatory knobs, carried in DatabaseConfig.
struct ObsConfig {
  /// Runtime switch; off leaves only a pointer + bool test at every
  /// emission site (the SMDB_TRACE discipline). The observatory makes no
  /// machine operations, so digests and replay bytes are identical either
  /// way.
  bool enabled = false;
  /// Time-series sampling window, in sim-ns.
  SimTime window_ns = 50'000;
  /// Commits up to this long after a recovery completes still count as
  /// "through-crash" for the split p99 (the post-restart warm-up tail).
  SimTime crash_influence_ns = 200'000;
  /// Lock-contention profile size (top-N keys by total wait time).
  uint32_t top_contended = 8;
};

/// One contended lock, aggregated over the run.
struct LockContentionEntry {
  uint64_t name = 0;  ///< lock name (record/page/index key hash)
  uint64_t waits = 0;
  SimTime total_wait_ns = 0;
  SimTime max_wait_ns = 0;

  double mean_wait_ns() const {
    return waits == 0 ? 0.0 : double(total_wait_ns) / double(waits);
  }
};

/// Snapshot of everything the observatory measured, carried in
/// HarnessReport. Copyable; all fields are value types.
struct LatencyReport {
  bool enabled = false;
  SimTime window_ns = 0;

  Histogram commit_latency;  ///< begin -> commit acknowledged
  Histogram abort_latency;   ///< begin -> abort finished
  Histogram lock_wait;       ///< queued -> granted, per wait
  Histogram gc_residency;    ///< group-commit enqueue -> covering force

  /// Commit latency split by crash proximity: a commit is through-crash
  /// when it lands during a recovery or within crash_influence_ns after
  /// one; everything else is steady-state.
  Histogram commit_steady;
  Histogram commit_through_crash;

  TimeSeries series;
  std::vector<NodeStateTransition> node_states;
  AvailabilityReport availability;
  std::vector<LockContentionEntry> top_contended;

  json::Value ToJson() const;
};

/// Aggregates latency, throughput, and availability signals from the
/// instrumented subsystems. Emission sites may fire from concurrent
/// execution workers; a single latch serialises them. Every aggregate is
/// order-insensitive (histogram buckets, ts-keyed series windows, keyed
/// maps), so for a fixed seed the snapshot is deterministic at any
/// recovery / executor thread width.
class Observatory {
 public:
  Observatory(uint16_t num_nodes, ObsConfig config);

  bool enabled() const { return enabled_; }
  void set_enabled(bool on) { enabled_ = on; }
  const ObsConfig& config() const { return config_; }

  // ---- Emission sites (route through SMDB_OBS) -------------------------

  void OnTxnBegin(NodeId node, TxnId txn, SimTime ts);
  /// `latency` = ts - begin_ts, computed by the caller from the stamped
  /// transaction. Fires once per transaction (duplicate ids are ignored).
  void OnCommit(NodeId node, TxnId txn, SimTime ts, SimTime latency);
  void OnAbort(NodeId node, TxnId txn, SimTime ts, SimTime latency);

  void OnLockQueued(TxnId txn, uint64_t name, SimTime ts);
  void OnLockGranted(TxnId txn, uint64_t name, SimTime ts);

  void OnGcEnqueued(NodeId node, uint64_t queue_depth, SimTime ts);
  void OnGcResidency(NodeId node, SimTime residency, SimTime ts);

  void OnNodeDown(NodeId node, SimTime ts);
  void OnNodeUp(NodeId node, SimTime ts);
  /// A crash-recovery pass starts: surviving nodes stall (-> recovering)
  /// and a new crash record opens. Fired before crash-time pending-commit
  /// resolution so resolved commits count as through-crash.
  void OnRecoveryStart(const std::vector<NodeId>& crashed, SimTime ts);
  void OnRecoveryEnd(SimTime ts);
  /// On-demand recovery: the last lazy obligation of the most recent crash
  /// was discharged (Recovering -> fully recovered). No-op when no crash
  /// record is open for draining.
  void OnRecoveryDrained(SimTime ts);

  // ---- Export ----------------------------------------------------------

  /// Builds the full report: copies the histograms/series, derives the
  /// availability timeline (TTFC + trough per crash), and ranks the
  /// contention profile. Cheap no-op shell when disabled.
  LatencyReport Snapshot() const;
  json::Value ToJson() const { return Snapshot().ToJson(); }

 private:
  struct CrashRecord {
    SimTime crash_ts = 0;
    std::vector<NodeId> nodes;
    SimTime recovery_end_ts = 0;
    SimTime drain_end_ts = 0;  ///< on-demand: last lazy obligation gone
    bool open = true;  ///< recovery still running
    bool saw_commit = false;
    SimTime first_commit_ts = 0;
    std::vector<NodeTtfc> node_ttfc;
  };

  struct NodeState {
    NodeServiceState state = NodeServiceState::kServing;
    bool awaiting_first_commit = false;
    SimTime restart_ts = 0;
    /// Crash record the pending TTFC belongs to (index into crashes_).
    size_t crash_index = 0;
  };

  void Transition(NodeId node, NodeServiceState state, SimTime ts);
  bool InCrashShadow(SimTime ts) const;

  bool enabled_;
  ObsConfig config_;

  /// Guards every mutable aggregate below. Held only for the duration of
  /// one emission (no I/O, no callbacks), so it is leaf-level in the
  /// system's lock order.
  mutable std::mutex mu_;

  Histogram commit_latency_;
  Histogram abort_latency_;
  Histogram lock_wait_;
  Histogram gc_residency_;
  Histogram commit_steady_;
  Histogram commit_through_crash_;

  TimeSeries series_;
  std::vector<NodeStateTransition> transitions_;
  std::vector<NodeState> node_states_;
  std::vector<CrashRecord> crashes_;

  /// Transactions begun and not yet finished; size = in-flight count.
  std::set<TxnId> open_txns_;
  /// (txn, lock name) -> queue timestamp for waits not yet granted.
  /// Ordered so clearing a transaction's entries is a range scan.
  std::map<std::pair<TxnId, uint64_t>, SimTime> pending_waits_;
  /// Lock name -> aggregate wait profile. Ordered for deterministic
  /// ranking ties.
  std::map<uint64_t, LockContentionEntry> contention_;
};

}  // namespace smdb

/// Emission macro, mirroring SMDB_TRACE: `obs_expr` must evaluate to an
/// Observatory*; `...` is a method call on it. Compiles out under
/// SMDB_OBS_DISABLED, else costs a null + enabled test when off.
#ifdef SMDB_OBS_DISABLED
#define SMDB_OBS(obs_expr, ...) ((void)0)
#else
#define SMDB_OBS(obs_expr, ...)                          \
  do {                                                   \
    ::smdb::Observatory* smdb_obs_ptr = (obs_expr);      \
    if (smdb_obs_ptr != nullptr && smdb_obs_ptr->enabled()) { \
      smdb_obs_ptr->__VA_ARGS__;                         \
    }                                                    \
  } while (0)
#endif

#endif  // SMDB_OBS_OBSERVATORY_H_
