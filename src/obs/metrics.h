#ifndef SMDB_OBS_METRICS_H_
#define SMDB_OBS_METRICS_H_

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "common/json.h"

namespace smdb {

struct HarnessReport;
class TraceRecorder;

/// One flat, ordered name -> value snapshot unifying every subsystem's
/// counters: machine/coherence stats, WAL and group-commit stats, txn,
/// lock-table, B+-tree and executor counters, per-recovery outcome gauges
/// (including the per-phase durations), and tracer accounting. Names are
/// dot-prefixed by subsystem ("machine.reads", "wal.forces",
/// "recovery.0.phase.redo_ns", ...). The registry is what --stats-json
/// writes and what benches emit next to their BENCH_*.json rows.
class MetricsRegistry {
 public:
  /// Appends a counter. Names are not deduplicated — callers own prefixing.
  void Add(const std::string& name, uint64_t value) {
    entries_.emplace_back(name, json::Value::Uint(value));
  }
  void AddDouble(const std::string& name, double value) {
    entries_.emplace_back(name, json::Value::Double(value));
  }

  /// Builds the full snapshot from a harness run's report.
  static MetricsRegistry FromReport(const HarnessReport& report);

  /// Appends the tracer's accounting ("trace.recorded", "trace.dropped").
  void AddTrace(const TraceRecorder& tracer);

  /// Insertion-ordered object of every entry.
  json::Value ToJson() const;

  const std::vector<std::pair<std::string, json::Value>>& entries() const {
    return entries_;
  }

 private:
  std::vector<std::pair<std::string, json::Value>> entries_;
};

}  // namespace smdb

#endif  // SMDB_OBS_METRICS_H_
