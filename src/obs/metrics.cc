#include "obs/metrics.h"

#include "core/recovery.h"
#include "obs/trace.h"
#include "workload/harness.h"

namespace smdb {

MetricsRegistry MetricsRegistry::FromReport(const HarnessReport& report) {
  MetricsRegistry reg;
  auto add_prefixed = [&reg](const char* prefix) {
    return [&reg, prefix](const auto& name, uint64_t value) {
      reg.Add(std::string(prefix) + name, value);
    };
  };
  ForEachCounter(report.machine, add_prefixed("machine."));
  ForEachCounter(report.logs, add_prefixed("wal."));
  report.gc.ForEachCounter(add_prefixed("group_commit."));
  report.txns.ForEachCounter(add_prefixed("txn."));
  report.locks.ForEachCounter(add_prefixed("locks."));

  reg.Add("btree.inserts", report.btree.inserts);
  reg.Add("btree.deletes", report.btree.deletes);
  reg.Add("btree.lookups", report.btree.lookups);
  reg.Add("btree.splits", report.btree.splits);
  reg.Add("btree.early_commits", report.btree.early_commits);
  reg.Add("btree.purged_tombstones", report.btree.purged_tombstones);

  reg.Add("exec.committed", report.exec.committed);
  reg.Add("exec.aborted_deadlock", report.exec.aborted_deadlock);
  reg.Add("exec.aborted_other", report.exec.aborted_other);
  reg.Add("exec.retries", report.exec.retries);
  reg.Add("exec.ops_executed", report.exec.ops_executed);
  reg.Add("exec.lock_waits", report.exec.lock_waits);
  reg.Add("exec.commit_waits", report.exec.commit_waits);

  reg.Add("executor.batches", report.shard.batches);
  reg.Add("executor.batched_steps", report.shard.batched_steps);
  reg.Add("executor.solo_steps", report.shard.solo_steps);
  reg.Add("sweeper.batches", report.sweep_batches);
  reg.Add("sweeper.batched_records", report.sweep_batched_records);

  if (report.profile.enabled) {
    for (size_t i = 0; i < kNumBatchRejectReasons; ++i) {
      reg.Add(std::string("executor.reject.") +
                  BatchRejectReasonName(static_cast<BatchRejectReason>(i)),
              report.profile.reject[i]);
    }
    for (size_t i = 0; i < kNumSweeperSoloReasons; ++i) {
      reg.Add(std::string("sweeper.solo.") +
                  SweeperSoloReasonName(static_cast<SweeperSoloReason>(i)),
              report.profile.sweeper_solo[i]);
    }
    auto add_occ = [&reg](const std::string& prefix, const Histogram& h) {
      reg.Add(prefix + ".count", h.count());
      reg.AddDouble(prefix + ".mean", h.Mean());
      reg.Add(prefix + ".p50", h.P50());
      reg.Add(prefix + ".p99", h.P99());
      reg.Add(prefix + ".max", h.max());
    };
    add_occ("executor.occupancy", report.profile.batch_occupancy);
    add_occ("executor.footprint_lines", report.profile.batch_footprint_lines);
  }

  reg.Add("disk.reads", report.disk_reads);
  reg.Add("disk.writes", report.disk_writes);
  reg.Add("run.steps", report.steps);
  reg.Add("run.total_time_ns", report.total_time_ns);
  reg.AddDouble("run.throughput_tps", report.throughput_tps());
  reg.Add("run.unnecessary_aborts", report.unnecessary_aborts());

  if (report.latency.enabled) {
    auto add_hist = [&reg](const std::string& prefix, const Histogram& h) {
      reg.Add(prefix + ".count", h.count());
      reg.AddDouble(prefix + ".mean_ns", h.Mean());
      reg.Add(prefix + ".p50_ns", h.P50());
      reg.Add(prefix + ".p90_ns", h.P90());
      reg.Add(prefix + ".p99_ns", h.P99());
      reg.Add(prefix + ".p999_ns", h.P999());
      reg.Add(prefix + ".max_ns", h.max());
    };
    add_hist("latency.commit", report.latency.commit_latency);
    add_hist("latency.abort", report.latency.abort_latency);
    add_hist("latency.lock_wait", report.latency.lock_wait);
    add_hist("latency.gc_residency", report.latency.gc_residency);
    add_hist("latency.commit_steady", report.latency.commit_steady);
    add_hist("latency.commit_through_crash",
             report.latency.commit_through_crash);

    const auto& crashes = report.latency.availability.crashes;
    reg.Add("availability.crashes", crashes.size());
    for (size_t i = 0; i < crashes.size(); ++i) {
      const CrashAvailability& c = crashes[i];
      const std::string p = "availability." + std::to_string(i) + ".";
      reg.Add(p + "crash_ts_ns", c.crash_ts);
      reg.Add(p + "recovery_end_ts_ns", c.recovery_end_ts);
      reg.Add(p + "ttfc_ns", c.ttfc_ns());
      reg.AddDouble(p + "steady_tps", c.steady_tps);
      reg.AddDouble(p + "trough_depth_pct", c.depth_pct);
      reg.Add(p + "trough_duration_ns", c.trough_duration_ns);
    }

    const auto& contended = report.latency.top_contended;
    reg.Add("locks.contention.count", contended.size());
    for (size_t i = 0; i < contended.size(); ++i) {
      const LockContentionEntry& e = contended[i];
      const std::string p = "locks.contention." + std::to_string(i) + ".";
      reg.Add(p + "name", e.name);
      reg.Add(p + "waits", e.waits);
      reg.Add(p + "total_wait_ns", e.total_wait_ns);
      reg.Add(p + "max_wait_ns", e.max_wait_ns);
    }
  }

  reg.Add("recovery.count", report.recoveries.size());
  for (size_t i = 0; i < report.recoveries.size(); ++i) {
    const RecoveryOutcome& r = report.recoveries[i];
    const std::string p = "recovery." + std::to_string(i) + ".";
    reg.Add(p + "crashed_nodes", r.crashed_nodes.size());
    reg.Add(p + "annulled", r.annulled.size());
    reg.Add(p + "preserved", r.preserved.size());
    reg.Add(p + "forced_aborts", r.forced_aborts.size());
    reg.Add(p + "redo_applied", r.redo_applied);
    reg.Add(p + "redo_skipped", r.redo_skipped);
    reg.Add(p + "undo_applied", r.undo_applied);
    reg.Add(p + "pages_reloaded", r.pages_reloaded);
    reg.Add(p + "lines_reinstalled", r.lines_reinstalled);
    reg.Add(p + "lcb_lines_cleared", r.lcb_lines_cleared);
    reg.Add(p + "lcbs_rebuilt", r.lcbs_rebuilt);
    reg.Add(p + "locks_dropped", r.locks_dropped);
    reg.Add(p + "tags_scanned", r.tags_scanned);
    reg.Add(p + "tag_undos", r.tag_undos);
    reg.Add(p + "recovery_time_ns", r.recovery_time_ns);
    reg.Add(p + "whole_machine_restart", r.whole_machine_restart ? 1 : 0);
    for (size_t ph = 0; ph < kNumRecoveryPhases; ++ph) {
      reg.Add(p + "phase." +
                  RecoveryPhaseName(static_cast<RecoveryPhase>(ph)) + "_ns",
              r.phase_ns[ph]);
    }
  }
  return reg;
}

void MetricsRegistry::AddTrace(const TraceRecorder& tracer) {
  Add("trace.recorded", tracer.total_recorded());
  Add("trace.dropped", tracer.total_dropped());
}

json::Value MetricsRegistry::ToJson() const {
  json::Value obj = json::Value::Object();
  for (const auto& [name, value] : entries_) {
    obj.Set(name, value);
  }
  return obj;
}

}  // namespace smdb
