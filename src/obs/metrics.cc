#include "obs/metrics.h"

#include "core/recovery.h"
#include "obs/trace.h"
#include "workload/harness.h"

namespace smdb {

MetricsRegistry MetricsRegistry::FromReport(const HarnessReport& report) {
  MetricsRegistry reg;
  auto add_prefixed = [&reg](const char* prefix) {
    return [&reg, prefix](const auto& name, uint64_t value) {
      reg.Add(std::string(prefix) + name, value);
    };
  };
  ForEachCounter(report.machine, add_prefixed("machine."));
  ForEachCounter(report.logs, add_prefixed("wal."));
  report.gc.ForEachCounter(add_prefixed("group_commit."));
  report.txns.ForEachCounter(add_prefixed("txn."));
  report.locks.ForEachCounter(add_prefixed("locks."));

  reg.Add("btree.inserts", report.btree.inserts);
  reg.Add("btree.deletes", report.btree.deletes);
  reg.Add("btree.lookups", report.btree.lookups);
  reg.Add("btree.splits", report.btree.splits);
  reg.Add("btree.early_commits", report.btree.early_commits);
  reg.Add("btree.purged_tombstones", report.btree.purged_tombstones);

  reg.Add("exec.committed", report.exec.committed);
  reg.Add("exec.aborted_deadlock", report.exec.aborted_deadlock);
  reg.Add("exec.aborted_other", report.exec.aborted_other);
  reg.Add("exec.retries", report.exec.retries);
  reg.Add("exec.ops_executed", report.exec.ops_executed);
  reg.Add("exec.lock_waits", report.exec.lock_waits);
  reg.Add("exec.commit_waits", report.exec.commit_waits);

  reg.Add("disk.reads", report.disk_reads);
  reg.Add("disk.writes", report.disk_writes);
  reg.Add("run.steps", report.steps);
  reg.Add("run.total_time_ns", report.total_time_ns);
  reg.AddDouble("run.throughput_tps", report.throughput_tps());
  reg.Add("run.unnecessary_aborts", report.unnecessary_aborts());

  reg.Add("recovery.count", report.recoveries.size());
  for (size_t i = 0; i < report.recoveries.size(); ++i) {
    const RecoveryOutcome& r = report.recoveries[i];
    const std::string p = "recovery." + std::to_string(i) + ".";
    reg.Add(p + "crashed_nodes", r.crashed_nodes.size());
    reg.Add(p + "annulled", r.annulled.size());
    reg.Add(p + "preserved", r.preserved.size());
    reg.Add(p + "forced_aborts", r.forced_aborts.size());
    reg.Add(p + "redo_applied", r.redo_applied);
    reg.Add(p + "redo_skipped", r.redo_skipped);
    reg.Add(p + "undo_applied", r.undo_applied);
    reg.Add(p + "pages_reloaded", r.pages_reloaded);
    reg.Add(p + "lines_reinstalled", r.lines_reinstalled);
    reg.Add(p + "lcb_lines_cleared", r.lcb_lines_cleared);
    reg.Add(p + "lcbs_rebuilt", r.lcbs_rebuilt);
    reg.Add(p + "locks_dropped", r.locks_dropped);
    reg.Add(p + "tags_scanned", r.tags_scanned);
    reg.Add(p + "tag_undos", r.tag_undos);
    reg.Add(p + "recovery_time_ns", r.recovery_time_ns);
    reg.Add(p + "whole_machine_restart", r.whole_machine_restart ? 1 : 0);
    for (size_t ph = 0; ph < kNumRecoveryPhases; ++ph) {
      reg.Add(p + "phase." +
                  RecoveryPhaseName(static_cast<RecoveryPhase>(ph)) + "_ns",
              r.phase_ns[ph]);
    }
  }
  return reg;
}

void MetricsRegistry::AddTrace(const TraceRecorder& tracer) {
  Add("trace.recorded", tracer.total_recorded());
  Add("trace.dropped", tracer.total_dropped());
}

json::Value MetricsRegistry::ToJson() const {
  json::Value obj = json::Value::Object();
  for (const auto& [name, value] : entries_) {
    obj.Set(name, value);
  }
  return obj;
}

}  // namespace smdb
