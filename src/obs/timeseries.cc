#include "obs/timeseries.h"

namespace smdb {

const char* NodeServiceStateName(NodeServiceState state) {
  switch (state) {
    case NodeServiceState::kServing:
      return "serving";
    case NodeServiceState::kDown:
      return "down";
    case NodeServiceState::kRecovering:
      return "recovering";
  }
  return "?";
}

json::Value TimeSeries::ToJson() const {
  json::Value obj = json::Value::Object();
  obj.Set("window_ns", json::Value::Uint(window_ns_));
  json::Value start = json::Value::Array();
  json::Value begins = json::Value::Array();
  json::Value commits = json::Value::Array();
  json::Value aborts = json::Value::Array();
  json::Value inflight = json::Value::Array();
  json::Value gc_depth = json::Value::Array();
  json::Value tps = json::Value::Array();
  for (size_t i = 0; i < windows_.size(); ++i) {
    const Window& w = windows_[i];
    start.Append(json::Value::Uint(WindowStart(i)));
    begins.Append(json::Value::Uint(w.begins));
    commits.Append(json::Value::Uint(w.commits));
    aborts.Append(json::Value::Uint(w.aborts));
    inflight.Append(json::Value::Uint(w.max_inflight));
    gc_depth.Append(json::Value::Uint(w.max_gc_depth));
    tps.Append(json::Value::Double(Tps(i)));
  }
  obj.Set("window_start_ns", std::move(start));
  obj.Set("begins", std::move(begins));
  obj.Set("commits", std::move(commits));
  obj.Set("aborts", std::move(aborts));
  obj.Set("max_inflight", std::move(inflight));
  obj.Set("max_gc_depth", std::move(gc_depth));
  obj.Set("tps", std::move(tps));
  return obj;
}

json::Value CrashAvailability::ToJson() const {
  json::Value obj = json::Value::Object();
  obj.Set("crash_ts_ns", json::Value::Uint(crash_ts));
  json::Value crashed = json::Value::Array();
  for (NodeId n : nodes) crashed.Append(json::Value::Uint(n));
  obj.Set("nodes", std::move(crashed));
  obj.Set("recovery_end_ts_ns", json::Value::Uint(recovery_end_ts));
  obj.Set("drain_end_ts_ns", json::Value::Uint(drain_end_ts));
  obj.Set("saw_commit_after", json::Value::Bool(saw_commit_after));
  obj.Set("ttfc_ns", json::Value::Uint(ttfc_ns()));
  json::Value per_node = json::Value::Array();
  for (const NodeTtfc& t : node_ttfc) {
    json::Value e = json::Value::Object();
    e.Set("node", json::Value::Uint(t.node));
    e.Set("restart_ts_ns", json::Value::Uint(t.restart_ts));
    e.Set("committed", json::Value::Bool(t.committed));
    e.Set("ttfc_ns", json::Value::Uint(t.ttfc_ns()));
    per_node.Append(std::move(e));
  }
  obj.Set("node_ttfc", std::move(per_node));
  obj.Set("steady_tps", json::Value::Double(steady_tps));
  obj.Set("trough_tps", json::Value::Double(trough_tps));
  obj.Set("trough_windows", json::Value::Uint(trough_windows));
  obj.Set("trough_duration_ns", json::Value::Uint(trough_duration_ns));
  obj.Set("trough_depth_pct", json::Value::Double(depth_pct));
  return obj;
}

json::Value AvailabilityReport::ToJson() const {
  json::Value arr = json::Value::Array();
  for (const CrashAvailability& c : crashes) arr.Append(c.ToJson());
  json::Value obj = json::Value::Object();
  obj.Set("crashes", std::move(arr));
  return obj;
}

void ComputeThroughputTrough(const TimeSeries& series, CrashAvailability* ca) {
  const std::vector<TimeSeries::Window>& w = series.windows();
  if (w.empty()) return;
  const size_t crash_w = series.WindowIndex(ca->crash_ts);

  // Steady-state rate: mean commits/window strictly before the crash
  // window; whole-series mean when the crash hits at/before the first
  // window boundary.
  uint64_t pre_commits = 0;
  size_t pre_windows = 0;
  for (size_t i = 0; i < w.size() && i < crash_w; ++i) {
    pre_commits += w[i].commits;
    ++pre_windows;
  }
  if (pre_windows == 0) {
    for (const TimeSeries::Window& win : w) pre_commits += win.commits;
    pre_windows = w.size();
  }
  const double steady_cpw = double(pre_commits) / double(pre_windows);
  ca->steady_tps = steady_cpw * 1e9 / double(series.window_ns());
  if (steady_cpw <= 0.0) return;  // nothing committed before the crash

  // The trough: consecutive windows from the crash whose commit rate stays
  // below half of steady. Track the minimum rate inside it.
  const double half = steady_cpw / 2.0;
  uint64_t min_commits = ~0ULL;
  size_t runs = 0;
  for (size_t i = crash_w; i < w.size(); ++i) {
    if (double(w[i].commits) >= half) break;
    if (w[i].commits < min_commits) min_commits = w[i].commits;
    ++runs;
  }
  ca->trough_windows = runs;
  ca->trough_duration_ns = runs * series.window_ns();
  if (runs > 0) {
    ca->trough_tps = double(min_commits) * 1e9 / double(series.window_ns());
    ca->depth_pct = (1.0 - double(min_commits) / steady_cpw) * 100.0;
  }
}

}  // namespace smdb
