#include "obs/profiler.h"

#include <cassert>

#include "workload/harness.h"

namespace smdb {

thread_local uint32_t Profiler::tl_depth_ = 0;

const char* BatchRejectReasonName(BatchRejectReason r) {
  switch (r) {
    case BatchRejectReason::kSerialGatedGroupCommit:
      return "serial-gated-group-commit";
    case BatchRejectReason::kSerialGatedOnDemand:
      return "serial-gated-on-demand";
    case BatchRejectReason::kPollLock:
      return "poll-lock";
    case BatchRejectReason::kPollCommit:
      return "poll-commit";
    case BatchRejectReason::kRestart:
      return "restart";
    case BatchRejectReason::kAbortOp:
      return "abort-op";
    case BatchRejectReason::kLockNotGrantable:
      return "lock-not-grantable";
    case BatchRejectReason::kInvalidArg:
      return "invalid-arg";
    case BatchRejectReason::kWaiterPromotion:
      return "waiter-promotion";
    case BatchRejectReason::kStableTriggeredIndex:
      return "stable-triggered-index";
    case BatchRejectReason::kStableTriggeredClearTag:
      return "stable-triggered-clear-tag";
    case BatchRejectReason::kLostLine:
      return "lost-line";
    case BatchRejectReason::kRecordFootprintCollision:
      return "record-footprint-collision";
    case BatchRejectReason::kLockStripeCollision:
      return "lock-stripe-collision";
    case BatchRejectReason::kIndexDescentCollision:
      return "index-descent-collision";
    case BatchRejectReason::kForcedLogCollision:
      return "forced-log-collision";
    case BatchRejectReason::kPerNodeCap:
      return "per-node-cap";
    case BatchRejectReason::kSuccessorExclusive:
      return "successor-exclusive";
    case BatchRejectReason::kTerminalClose:
      return "terminal-close";
    case BatchRejectReason::kIndexTokenClose:
      return "index-token-close";
    case BatchRejectReason::kBudgetBarrier:
      return "budget-barrier";
    case BatchRejectReason::kDrained:
      return "drained";
    case BatchRejectReason::kUnclassified:
      return "unclassified";
  }
  return "unknown";
}

const char* SweeperSoloReasonName(SweeperSoloReason r) {
  switch (r) {
    case SweeperSoloReason::kIndexDescent:
      return "index-descent";
    case SweeperSoloReason::kPageLoad:
      return "page-load";
    case SweeperSoloReason::kUndoObligation:
      return "undo-obligation";
    case SweeperSoloReason::kTagDischarge:
      return "tag-discharge";
    case SweeperSoloReason::kLoneRecord:
      return "lone-record";
    case SweeperSoloReason::kSerialSweep:
      return "serial-sweep";
  }
  return "unknown";
}

const char* ProfPhaseName(ProfPhase p) {
  switch (p) {
    case ProfPhase::kStep:
      return "step";
    case ProfPhase::kSweep:
      return "sweep";
    case ProfPhase::kRecovery:
      return "recovery";
    case ProfPhase::kLockWait:
      return "lock_wait";
    case ProfPhase::kCoherence:
      return "coherence";
    case ProfPhase::kWalAppend:
      return "wal_append";
    case ProfPhase::kWalForce:
      return "wal_force";
    case ProfPhase::kIndexDescent:
      return "index_descent";
    case ProfPhase::kApply:
      return "apply";
  }
  return "unknown";
}

void Profiler::BeginRoot(ProfPhase root) {
  assert(tl_depth_ == 0);
  tl_depth_ = 1;
  path_.assign(ProfPhaseName(root));
  frames_.clear();
  cur_ = &cells_[path_];
  ++cur_->samples;
}

void Profiler::EndRoot() {
  assert(tl_depth_ == 1);
  tl_depth_ = 0;
  path_.clear();
  frames_.clear();
  cur_ = nullptr;
}

void Profiler::Enter(ProfPhase phase) {
  assert(tl_depth_ >= 1);
  ++tl_depth_;
  frames_.push_back(path_.size());
  path_.push_back(';');
  path_.append(ProfPhaseName(phase));
  cur_ = &cells_[path_];
  ++cur_->samples;
}

void Profiler::Exit() {
  assert(tl_depth_ >= 2 && !frames_.empty());
  path_.resize(frames_.back());
  frames_.pop_back();
  --tl_depth_;
  cur_ = &cells_[path_];
}

ProfilerReport Profiler::Snapshot() const {
  ProfilerReport rep;
  rep.enabled = enabled();
  rep.reject = reject_;
  rep.sweeper_solo = sweeper_solo_;
  rep.batch_occupancy = occupancy_;
  rep.batch_footprint_lines = footprint_;
  rep.phases = cells_;
  return rep;
}

void Profiler::Reset() {
  reject_.fill(0);
  sweeper_solo_.fill(0);
  occupancy_.Reset();
  footprint_.Reset();
  cells_.clear();
  path_.clear();
  frames_.clear();
  cur_ = nullptr;
}

uint64_t ProfilerReport::reject_total() const {
  uint64_t total = 0;
  for (uint64_t c : reject) total += c;
  return total;
}

uint64_t ProfilerReport::sweeper_solo_total() const {
  uint64_t total = 0;
  for (uint64_t c : sweeper_solo) total += c;
  return total;
}

json::Value ProfilerReport::ToJson() const {
  json::Value doc = json::Value::Object();
  doc.Set("enabled", json::Value::Bool(enabled));

  json::Value rej = json::Value::Object();
  for (size_t i = 0; i < kNumBatchRejectReasons; ++i) {
    rej.Set(BatchRejectReasonName(static_cast<BatchRejectReason>(i)),
            json::Value::Uint(reject[i]));
  }
  doc.Set("reject", std::move(rej));
  doc.Set("reject_total", json::Value::Uint(reject_total()));

  json::Value solo = json::Value::Object();
  for (size_t i = 0; i < kNumSweeperSoloReasons; ++i) {
    solo.Set(SweeperSoloReasonName(static_cast<SweeperSoloReason>(i)),
             json::Value::Uint(sweeper_solo[i]));
  }
  doc.Set("sweeper_solo", std::move(solo));
  doc.Set("sweeper_solo_total", json::Value::Uint(sweeper_solo_total()));

  doc.Set("batch_occupancy", batch_occupancy.ToJson());
  doc.Set("batch_footprint_lines", batch_footprint_lines.ToJson());

  json::Value ph = json::Value::Object();
  for (const auto& [path, cell] : phases) {
    json::Value c = json::Value::Object();
    c.Set("ns", json::Value::Uint(cell.ns));
    c.Set("ticks", json::Value::Uint(cell.ticks));
    c.Set("samples", json::Value::Uint(cell.samples));
    ph.Set(path, std::move(c));
  }
  doc.Set("phases", std::move(ph));
  return doc;
}

std::string ProfilerReport::ToCollapsed() const {
  std::string out;
  for (const auto& [path, cell] : phases) {
    out.append(path);
    out.push_back(' ');
    out.append(std::to_string(cell.ns));
    out.push_back('\n');
  }
  return out;
}

json::Value ProfileJsonFromReport(const HarnessReport& report) {
  json::Value doc = json::Value::Object();
  doc.Set("profiler", report.profile.ToJson());

  json::Value ex = json::Value::Object();
  ex.Set("batches", json::Value::Uint(report.shard.batches));
  ex.Set("batched_steps", json::Value::Uint(report.shard.batched_steps));
  ex.Set("solo_steps", json::Value::Uint(report.shard.solo_steps));
  doc.Set("executor", std::move(ex));

  json::Value sw = json::Value::Object();
  sw.Set("batches", json::Value::Uint(report.sweep_batches));
  sw.Set("batched_records", json::Value::Uint(report.sweep_batched_records));
  doc.Set("sweeper", std::move(sw));
  return doc;
}

}  // namespace smdb
