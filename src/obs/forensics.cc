#include "obs/forensics.h"

#include <functional>
#include <set>
#include <vector>

#include "core/database.h"
#include "core/ifa_checker.h"
#include "obs/trace.h"

namespace smdb {
namespace {

constexpr size_t kMaxChainRecords = 64;

json::Value LogRecordJson(const LogRecord& rec) {
  json::Value o = json::Value::Object();
  o.Set("node", json::Value::Uint(rec.node));
  o.Set("lsn", json::Value::Uint(rec.lsn));
  if (rec.prev_lsn != kInvalidLsn) {
    o.Set("prev_lsn", json::Value::Uint(rec.prev_lsn));
  }
  if (rec.txn != kInvalidTxn) o.Set("txn", json::Value::Uint(rec.txn));
  o.Set("desc", json::Value::Str(rec.ToString()));
  return o;
}

json::Value LockEntryJson(const LockEntry& e) {
  json::Value o = json::Value::Object();
  o.Set("txn", json::Value::Uint(e.txn));
  o.Set("mode", json::Value::Str(ToString(e.mode)));
  return o;
}

json::Value ViolationJson(const IfaChecker::Violation& v) {
  json::Value o = json::Value::Object();
  const char* kind = "record";
  if (v.kind == IfaChecker::Violation::Kind::kIndex) kind = "index";
  if (v.kind == IfaChecker::Violation::Kind::kLock) kind = "lock";
  o.Set("kind", json::Value::Str(kind));
  if (v.kind == IfaChecker::Violation::Kind::kRecord) {
    o.Set("rid", json::Value::Str(ToString(v.rid)));
  } else {
    o.Set("key", json::Value::Uint(v.key));
  }
  o.Set("detail", json::Value::Str(v.detail));
  return o;
}

/// Walks every reachable log (full log of live nodes, stable log of dead
/// ones) and keeps the records that touch the violated object, plus the
/// begin/commit/abort records of the transactions that touched it.
json::Value CollectLogChain(Database& db, const IfaChecker::Violation& v) {
  Machine& m = db.machine();
  auto matches = [&](const LogRecord& rec) {
    if (v.kind == IfaChecker::Violation::Kind::kRecord) {
      return rec.type == LogRecordType::kUpdate && rec.update().rid == v.rid;
    }
    if (v.kind == IfaChecker::Violation::Kind::kIndex) {
      return rec.type == LogRecordType::kIndexOp &&
             rec.index_op().key == v.key;
    }
    return rec.type == LogRecordType::kLockOp &&
           rec.lock_op().lock_name == v.key;
  };
  auto for_each_reachable = [&](const std::function<void(const LogRecord&)>&
                                    fn) {
    for (NodeId n = 0; n < m.num_nodes(); ++n) {
      if (m.NodeAlive(n)) {
        db.log().ForEachAll(n, fn);
      } else {
        db.log().ForEachStable(n, fn);
      }
    }
  };
  std::vector<LogRecord> chain;
  std::set<TxnId> touching;
  for_each_reachable([&](const LogRecord& rec) {
    if (matches(rec)) {
      chain.push_back(rec);
      if (rec.txn != kInvalidTxn) touching.insert(rec.txn);
    }
  });
  for_each_reachable([&](const LogRecord& rec) {
    if (!touching.contains(rec.txn)) return;
    if (rec.type == LogRecordType::kBegin ||
        rec.type == LogRecordType::kCommit ||
        rec.type == LogRecordType::kAbort) {
      chain.push_back(rec);
    }
  });
  json::Value obj = json::Value::Object();
  obj.Set("total", json::Value::Uint(chain.size()));
  // Keep the newest records — the crash sits at the end of the history.
  size_t start = chain.size() > kMaxChainRecords
                     ? chain.size() - kMaxChainRecords
                     : 0;
  json::Value arr = json::Value::Array();
  for (size_t i = start; i < chain.size(); ++i) {
    arr.Append(LogRecordJson(chain[i]));
  }
  obj.Set("records", arr);
  return obj;
}

json::Value CollectLockState(Database& db, const IfaChecker::Violation& v) {
  uint64_t name = 0;
  if (v.kind == IfaChecker::Violation::Kind::kRecord) {
    name = RecordLockName(v.rid);
  } else if (v.kind == IfaChecker::Violation::Kind::kIndex) {
    name = KeyLockName(/*tree_id=*/1, v.key);
  } else {
    name = v.key;  // lock violations carry the LCB name directly
  }
  json::Value o = json::Value::Object();
  o.Set("name", json::Value::Uint(name));
  int lost = 0;
  bool found = false;
  for (const Lcb& lcb : db.locks().SnapshotAll(&lost)) {
    if (lcb.name != name) continue;
    found = true;
    json::Value holders = json::Value::Array();
    for (const auto& e : lcb.holders) holders.Append(LockEntryJson(e));
    json::Value waiters = json::Value::Array();
    for (const auto& e : lcb.waiters) waiters.Append(LockEntryJson(e));
    o.Set("holders", holders);
    o.Set("waiters", waiters);
    break;
  }
  o.Set("lcb_present", json::Value::Bool(found));
  o.Set("lost_lcbs", json::Value::Uint(static_cast<uint64_t>(lost)));
  return o;
}

/// The violated object's lock history from the trace. Unlike log records,
/// trace events are host-side state — a simulated crash cannot destroy
/// them — so this is populated even when every log record touching the
/// object died in a volatile tail (the empty-log_chain case, which is the
/// paper's failure mode itself).
json::Value CollectObjectTrace(Database& db, const IfaChecker::Violation& v) {
  uint64_t want = 0;
  if (v.kind == IfaChecker::Violation::Kind::kRecord) {
    want = RecordLockName(v.rid);
  } else if (v.kind == IfaChecker::Violation::Kind::kIndex) {
    want = KeyLockName(/*tree_id=*/1, v.key);
  } else {
    want = v.key;
  }
  json::Value arr = json::Value::Array();
  for (const TraceEvent& ev : db.tracer().AllEvents()) {
    if (ev.kind != TraceEventKind::kLockAcquire &&
        ev.kind != TraceEventKind::kLockRelease) {
      continue;
    }
    if (ev.a != want) continue;
    arr.Append(TraceEventJson(ev));
  }
  return arr;
}

json::Value CollectTagDecisions(Database& db,
                                const IfaChecker::Violation* v) {
  // The object's encoding in TraceEvent::a matches the emission sites in
  // TagScanUndo: (page << 16) | slot for heap records, the key for index
  // entries. A null violation keeps every decision.
  uint64_t want = 0;
  bool filter = false;
  if (v != nullptr && v->kind == IfaChecker::Violation::Kind::kRecord) {
    want = (static_cast<uint64_t>(v->rid.page) << 16) | v->rid.slot;
    filter = true;
  } else if (v != nullptr && v->kind == IfaChecker::Violation::Kind::kIndex) {
    want = v->key;
    filter = true;
  }
  json::Value arr = json::Value::Array();
  for (const TraceEvent& ev : db.tracer().AllEvents()) {
    if (ev.kind != TraceEventKind::kTagDecision) continue;
    if (filter && ev.a != want) continue;
    arr.Append(TraceEventJson(ev));
  }
  return arr;
}

}  // namespace

json::Value BuildForensicReport(Database& db, const IfaChecker* checker,
                                size_t last_n) {
  json::Value report = json::Value::Object();
  const IfaChecker::Violation* v = nullptr;
  if (checker != nullptr && checker->last_violation().has_value()) {
    v = &*checker->last_violation();
  }
  report.Set("violation",
             v != nullptr ? ViolationJson(*v) : json::Value::Null());

  TraceRecorder& tracer = db.tracer();
  json::Value nodes = json::Value::Array();
  for (NodeId n = 0; n < tracer.num_nodes(); ++n) {
    json::Value node = json::Value::Object();
    node.Set("node", json::Value::Uint(n));
    node.Set("alive", json::Value::Bool(db.machine().NodeAlive(n)));
    node.Set("dropped", json::Value::Uint(tracer.dropped(n)));
    json::Value events = json::Value::Array();
    for (const TraceEvent& ev : tracer.Tail(n, last_n)) {
      events.Append(TraceEventJson(ev));
    }
    node.Set("events", events);
    nodes.Append(node);
  }
  report.Set("trace_tails", nodes);

  if (v != nullptr) {
    report.Set("log_chain", CollectLogChain(db, *v));
    report.Set("locks", CollectLockState(db, *v));
    report.Set("object_events", CollectObjectTrace(db, *v));
  }
  report.Set("tag_decisions", CollectTagDecisions(db, v));
  return report;
}

}  // namespace smdb
