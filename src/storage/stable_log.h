#ifndef SMDB_STORAGE_STABLE_LOG_H_
#define SMDB_STORAGE_STABLE_LOG_H_

#include <iterator>
#include <vector>

#include "common/types.h"
#include "wal/log_record.h"

namespace smdb {

/// Durable storage for the per-node logs. Each node owns one append-only
/// stream on a shared disk (figure 1: local logs are volatile in-cache but
/// "can be made stable by writing [them] to one of the shared disks").
/// Contents survive node crashes and whole-machine reboots; any surviving
/// node may read any node's stable log during restart recovery.
class StableLogStore {
 public:
  explicit StableLogStore(uint16_t num_nodes) : streams_(num_nodes) {}

  /// Durably appends `records` to `node`'s stream in one bulk move (one
  /// batched disk write in the model; record order — and therefore LSN
  /// order — is preserved).
  void Append(NodeId node, std::vector<LogRecord> records) {
    auto& s = streams_[node];
    if (s.empty()) {
      s = std::move(records);
      return;
    }
    s.reserve(s.size() + records.size());
    s.insert(s.end(), std::make_move_iterator(records.begin()),
             std::make_move_iterator(records.end()));
  }

  /// All durable records of `node`'s log, in LSN order (the retained
  /// suffix, after any truncation).
  const std::vector<LogRecord>& Records(NodeId node) const {
    return streams_[node];
  }

  /// Discards the archived prefix of `node`'s stream: records with
  /// lsn <= through. LSN numbering is unaffected. Returns # dropped.
  size_t Truncate(NodeId node, Lsn through) {
    auto& s = streams_[node];
    size_t keep = 0;
    while (keep < s.size() && s[keep].lsn <= through) ++keep;
    s.erase(s.begin(), s.begin() + keep);
    return keep;
  }

  /// LSN of the last durable record of `node` (kInvalidLsn if empty).
  Lsn LastLsn(NodeId node) const {
    const auto& s = streams_[node];
    return s.empty() ? kInvalidLsn : s.back().lsn;
  }

  uint16_t num_nodes() const { return static_cast<uint16_t>(streams_.size()); }

 private:
  std::vector<std::vector<LogRecord>> streams_;
};

}  // namespace smdb

#endif  // SMDB_STORAGE_STABLE_LOG_H_
