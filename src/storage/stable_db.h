#ifndef SMDB_STORAGE_STABLE_DB_H_
#define SMDB_STORAGE_STABLE_DB_H_

#include <vector>

#include "common/status.h"
#include "common/types.h"
#include "storage/disk.h"

namespace smdb {

/// The stable database: the durable home of all pages (heap and index),
/// kept on shared disks. With the no-force/steal buffer policy the stable
/// database may be both behind (committed updates not yet propagated) and
/// ahead (stolen uncommitted updates propagated) of the committed state —
/// the combinations restart recovery must handle.
class StableDb {
 public:
  StableDb(Disk* disk) : disk_(disk) {}  // NOLINT: thin adapter

  uint32_t page_size() const { return disk_->page_size(); }

  Status ReadPage(NodeId node, PageId page, std::vector<uint8_t>* out) {
    return disk_->ReadPage(node, page, out);
  }

  Status WritePage(NodeId node, PageId page,
                   const std::vector<uint8_t>& data) {
    return disk_->WritePage(node, page, data);
  }

  bool Exists(PageId page) const { return disk_->Exists(page); }

  /// No-cost read-only view of the durable bytes (digests/oracles).
  const std::vector<uint8_t>* Peek(PageId page) const {
    return disk_->Peek(page);
  }

  /// Allocates a fresh page id.
  PageId AllocatePageId() { return next_page_++; }

  uint64_t reads() const { return disk_->reads(); }
  uint64_t writes() const { return disk_->writes(); }

 private:
  Disk* disk_;
  PageId next_page_ = 1;
};

}  // namespace smdb

#endif  // SMDB_STORAGE_STABLE_DB_H_
