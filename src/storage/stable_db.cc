#include "storage/stable_db.h"

// StableDb is header-only; this translation unit anchors the component in
// the build.
