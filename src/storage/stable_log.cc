#include "storage/stable_log.h"

// StableLogStore is header-only; this translation unit exists so the build
// has a home for future out-of-line members (e.g. segment archiving).
