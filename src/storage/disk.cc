#include "storage/disk.h"

#include "sim/machine.h"

namespace smdb {

Disk::Disk(Machine* machine, uint32_t page_size)
    : machine_(machine), page_size_(page_size) {}

Status Disk::ReadPage(NodeId node, PageId page, std::vector<uint8_t>* out) {
  auto it = pages_.find(page);
  if (it == pages_.end()) {
    return Status::NotFound("page " + std::to_string(page));
  }
  *out = it->second;
  ++reads_;
  machine_->Tick(node, machine_->config().timing.disk_read_ns);
  return Status::Ok();
}

Status Disk::WritePage(NodeId node, PageId page,
                       const std::vector<uint8_t>& data) {
  if (data.size() != page_size_) {
    return Status::InvalidArgument("bad page size");
  }
  pages_[page] = data;
  ++writes_;
  machine_->Tick(node, machine_->config().timing.disk_write_ns);
  return Status::Ok();
}

}  // namespace smdb
