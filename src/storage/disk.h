#ifndef SMDB_STORAGE_DISK_H_
#define SMDB_STORAGE_DISK_H_

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "common/status.h"
#include "common/types.h"

namespace smdb {

class Machine;

/// A shared stable-storage disk. In the paper's system model (figure 1)
/// every node is connected to all disks; contents survive any number of node
/// crashes and whole-machine reboots. I/O costs are charged to the clock of
/// the node that issues the request.
class Disk {
 public:
  Disk(Machine* machine, uint32_t page_size);

  uint32_t page_size() const { return page_size_; }

  /// Reads `page` into `out` (page_size bytes). NotFound if never written.
  Status ReadPage(NodeId node, PageId page, std::vector<uint8_t>* out);

  /// Writes `data` (page_size bytes) to `page`.
  Status WritePage(NodeId node, PageId page, const std::vector<uint8_t>& data);

  bool Exists(PageId page) const { return pages_.contains(page); }

  /// Read-only view of a page's durable bytes — no machine access, no cost
  /// (verification oracles and state digests). nullptr if never written.
  const std::vector<uint8_t>* Peek(PageId page) const {
    auto it = pages_.find(page);
    return it == pages_.end() ? nullptr : &it->second;
  }

  uint64_t reads() const { return reads_; }
  uint64_t writes() const { return writes_; }

 private:
  Machine* machine_;
  uint32_t page_size_;
  std::unordered_map<PageId, std::vector<uint8_t>> pages_;
  uint64_t reads_ = 0;
  uint64_t writes_ = 0;
};

}  // namespace smdb

#endif  // SMDB_STORAGE_DISK_H_
