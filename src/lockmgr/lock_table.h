#ifndef SMDB_LOCKMGR_LOCK_TABLE_H_
#define SMDB_LOCKMGR_LOCK_TABLE_H_

#include <array>
#include <functional>
#include <mutex>
#include <set>
#include <vector>

#include "common/atomic_util.h"

#include "common/status.h"
#include "common/types.h"
#include "lockmgr/lcb.h"
#include "obs/profiler.h"
#include "wal/log_manager.h"

namespace smdb {

class Machine;
class TraceRecorder;
class Observatory;

/// Canonical lock names. Records and index keys share one name space.
constexpr uint64_t RecordLockName(RecordId rid) {
  return (1ULL << 62) | (static_cast<uint64_t>(rid.page) << 16) | rid.slot;
}
constexpr uint64_t KeyLockName(uint32_t tree_id, uint64_t key) {
  return (2ULL << 62) | (static_cast<uint64_t>(tree_id) << 48) |
         (key & 0xFFFFFFFFFFFFULL);
}

struct LockTableConfig {
  uint32_t buckets = 1024;
  /// Store each LCB across two cache lines (holders / waiters split) to
  /// model the partial-loss scenario of section 4.2.2.
  bool two_line_lcb = false;
  /// Log lock operations — including *read* locks and queued requests — as
  /// logical log records (required for IFA; one of the Table 1 overheads).
  bool log_lock_ops = true;
};

struct LockTableStats {
  uint64_t acquires = 0;
  uint64_t queued = 0;
  uint64_t releases = 0;
  uint64_t lock_log_records = 0;
  uint64_t capacity_rejections = 0;

  void Reset() { *this = LockTableStats(); }

  /// Visits every field as ("name", value) — the metrics registry's
  /// source of truth for this struct.
  template <typename Fn>
  void ForEachCounter(Fn&& fn) const {
    fn("acquires", acquires);
    fn("queued", queued);
    fn("releases", releases);
    fn("lock_log_records", lock_log_records);
    fn("capacity_rejections", capacity_rejections);
  }
};

/// Outcome of an Acquire call.
enum class LockResult : uint8_t { kGranted, kQueued };

/// Plan-time prediction of what an Acquire would do, computed entirely by
/// snooping (no machine cost, no state change). The sharded executor uses
/// it to decide whether a step is batchable (predicted grant) and which
/// cache lines the step will touch (probe window + LCB slot lines), so
/// batches stay footprint-disjoint and the parallel run replays the serial
/// schedule exactly.
struct LockPrediction {
  enum class Outcome : uint8_t {
    kGranted,   // Acquire returns kGranted (fresh grant or upgrade)
    kHeld,      // already held at sufficient strength (no LCB write)
    kQueued,    // would queue (or deadlock-check) — not batchable
    kTryAgain,  // capacity rejection — not batchable
    kLost,      // a needed line is lost — not batchable
  };
  Outcome outcome = Outcome::kQueued;
  /// Every LCB-table line the serial Acquire would touch: the probed slot
  /// header lines plus the target slot's full codec span.
  std::vector<LineAddr> lines;
};

/// Shared-memory lock manager ("SM locking", section 4.2.2).
///
/// LCBs live in a hash table in simulated shared memory: a lock request
/// hashes its name to a bucket, probes linearly for a matching or empty LCB
/// slot, and manipulates the LCB inside a critical section implemented with
/// the hardware line lock (section 5.1; this is the authors' prototype
/// design from their KSR-1 lock manager study). Because LCB cache lines
/// migrate between the nodes that touch them, a node crash can destroy lock
/// state belonging to *surviving* transactions — which is why lock
/// operations are logged and the restart procedure rebuilds lost LCBs.
class LockTable {
 public:
  LockTable(Machine* machine, LogManager* log, LockTableConfig config);

  /// Attempts to acquire `name` in `mode` for `txn` running on `node`.
  /// Returns kGranted or kQueued; logs the operation first (when enabled),
  /// chaining via *chain_prev when non-null.
  Result<LockResult> Acquire(NodeId node, TxnId txn, uint64_t name,
                             LockMode mode, Lsn* chain_prev);

  /// Cost-free dry run of Acquire (see LockPrediction). Valid as long as
  /// no step touching the returned lines executes in between.
  LockPrediction Predict(TxnId txn, uint64_t name, LockMode mode) const;

  /// Snooped waiter list of `name` (empty if no LCB / no waiters); lost
  /// lines report `lost`=true. Plan-time only.
  std::vector<LockEntry> SnoopWaiters(uint64_t name, bool* lost) const;

  /// Releases `txn`'s hold on `name` and promotes compatible waiters.
  Status Release(NodeId node, TxnId txn, uint64_t name, Lsn* chain_prev);

  /// Polls whether a previously queued request has been granted; when first
  /// observed granted, logs the acquisition. kGranted/kQueued.
  Result<LockResult> PollGrant(NodeId node, TxnId txn, uint64_t name,
                               LockMode mode, Lsn* chain_prev);

  /// Mode `txn` currently holds on `name` (kNone if none).
  Result<LockMode> HeldMode(NodeId node, TxnId txn, uint64_t name);

  /// Current holders of `name` (used by deadlock detection).
  Result<std::vector<LockEntry>> Holders(NodeId node, uint64_t name);

  /// Full LCB for `name` (empty Lcb if none exists). Coherent read.
  Result<Lcb> GetLcb(NodeId node, uint64_t name);

  // ----------------------------------------------------------------------
  // Restart recovery support (section 4.2.2).

  /// Removes every hold/wait of the given transactions from all surviving
  /// LCBs, promoting waiters. Skips lost LCB lines. Returns # removed.
  Result<int> DropTxnLocks(NodeId node, const std::set<TxnId>& txns);

  /// Rebuilds (overwrites) the LCB for `name` from recovered state. Used by
  /// the restart procedure after reconstructing lock state from the
  /// surviving nodes' logical lock-op log records.
  Status RebuildLcb(NodeId node, const Lcb& lcb);

  /// Re-initialises lost LCB table lines to empty so the slots are usable
  /// again (after the LCBs they held have been rebuilt elsewhere).
  int ClearLostLines();

  /// Enumerates all non-empty LCBs via snooping (no cost; diagnostics,
  /// recovery analysis, and the IFA checker). Lost LCBs are skipped and
  /// counted in *lost_lcbs when non-null.
  std::vector<Lcb> SnapshotAll(int* lost_lcbs = nullptr) const;

  /// Lines of the LCB table region that are currently lost.
  std::vector<LineAddr> LostLines() const;

  const LockTableConfig& config() const { return config_; }
  LockTableStats& stats() { return stats_; }
  const LcbCodec& codec() const { return codec_; }

  /// Optional event tracer (owned by Database); null = no tracing.
  void set_tracer(TraceRecorder* tracer) { tracer_ = tracer; }
  /// Optional latency observatory (owned by Database); null = none. The
  /// lock table feeds it queued->granted wait spans.
  void set_observatory(Observatory* obs) { obs_ = obs; }
  /// Optional profiler (owned by Database); null = none. Acquire/PollGrant
  /// sim time is attributed to the lock_wait phase.
  void set_profiler(Profiler* prof) { prof_ = prof; }

 private:
  /// Finds the slot holding `name`, or the first empty slot when
  /// `create` is true. Returns the slot index or NotFound/Busy.
  Result<uint32_t> FindSlot(NodeId node, uint64_t name, bool create);

  Addr SlotBase(uint32_t slot) const {
    return base_ + static_cast<Addr>(slot) * codec_.bytes();
  }
  LineAddr SlotFirstLine(uint32_t slot) const;

  Result<Lcb> ReadLcb(NodeId node, uint32_t slot);
  Status WriteLcb(NodeId node, uint32_t slot, const Lcb& lcb);

  Status LogLockOp(NodeId node, TxnId txn, uint64_t name, LockMode mode,
                   LockOpPayload::Op op, Lsn* chain_prev);

  /// Promotes compatible waiters to holders in-place. Returns true if the
  /// LCB changed.
  bool PromoteWaiters(Lcb& lcb);

  /// Snooping twin of FindSlot: probes the window without machine cost.
  /// Appends every probed slot-header line to *lines (mirroring the lines
  /// the real FindSlot would touch). Returns the slot, or the sentinel
  /// config_.buckets when the probe fails; *outcome distinguishes
  /// not-found/full/lost.
  uint32_t SnoopFindSlot(uint64_t name, bool create,
                         std::vector<LineAddr>* lines,
                         LockPrediction::Outcome* outcome) const;

  /// Per-bucket latch stripe for `name`. The executor's footprint-disjoint
  /// batching already keeps concurrent steps off the same LCB window; the
  /// stripes are the defence-in-depth serialisation point replacing the
  /// old implicit single-threaded execution (cf. per-bucket latching in
  /// conventional lock managers).
  static constexpr uint32_t kLatchStripes = 64;
  std::mutex& StripeFor(uint64_t name) const;

  Machine* machine_;
  LogManager* log_;
  TraceRecorder* tracer_ = nullptr;
  Observatory* obs_ = nullptr;
  Profiler* prof_ = nullptr;
  LockTableConfig config_;
  LcbCodec codec_;
  Addr base_ = 0;
  mutable std::array<std::mutex, kLatchStripes> stripe_mu_;
  LockTableStats stats_;
};

}  // namespace smdb

#endif  // SMDB_LOCKMGR_LOCK_TABLE_H_
