#ifndef SMDB_LOCKMGR_LCB_H_
#define SMDB_LOCKMGR_LCB_H_

#include <cstdint>
#include <vector>

#include "common/types.h"
#include "wal/log_record.h"

namespace smdb {

/// One entry in an LCB's holder or waiter list: the transaction (whose id
/// encodes its node, which is what the Volatile LBM policy relies on) and
/// the requested/granted mode.
struct LockEntry {
  TxnId txn = kInvalidTxn;
  LockMode mode = LockMode::kNone;

  friend bool operator==(const LockEntry&, const LockEntry&) = default;
};

/// In-memory (decoded) form of a Lock Control Block: the shared data
/// structure of section 4.2.2 storing the current holders and waiters of
/// one database lock.
struct Lcb {
  uint64_t name = 0;  // 0 = empty slot
  std::vector<LockEntry> holders;
  std::vector<LockEntry> waiters;

  bool empty() const { return name == 0; }

  /// Strongest granted mode (kNone if no holders).
  LockMode GrantedMode() const;

  /// True if `mode` can be granted to `txn` now: compatible with all other
  /// holders and (to preserve FIFO fairness) no conflicting earlier waiter.
  bool CanGrant(TxnId txn, LockMode mode) const;

  LockEntry* FindHolder(TxnId txn);
  LockEntry* FindWaiter(TxnId txn);
};

/// Serialises LCBs to/from their shared-memory representation.
///
/// Two layouts are supported, reproducing the design choice discussed in
/// section 4.2.2:
///  * single-line — the whole LCB spans exactly one cache line, so "a node
///    crash will either destroy all or none of a specific LCB";
///  * two-line — holders and waiters live in *different* cache lines, so a
///    crash "could destroy arbitrary segments" of an LCB, and the restart
///    procedure must rebuild the whole LCB from surviving logs.
///
/// Single-line byte layout: name u64 @0, nholders u8 @8, nwaiters u8 @9,
/// then nholders+nwaiters entries of {txn u64, mode u8} each.
/// Two-line layout: line 0 = name u64, nholders u8, holder entries;
/// line 1 = nwaiters u8, waiter entries.
class LcbCodec {
 public:
  LcbCodec(uint32_t line_size, bool two_line);

  uint32_t lines() const { return two_line_ ? 2 : 1; }
  uint32_t bytes() const { return lines() * line_size_; }
  size_t holders_capacity() const { return holders_cap_; }
  size_t waiters_capacity() const { return waiters_cap_; }

  /// Encodes `lcb` into `buf` (bytes() long). Lists must be within
  /// capacity.
  void Encode(const Lcb& lcb, uint8_t* buf) const;

  /// Decodes an LCB from `buf`.
  Lcb Decode(const uint8_t* buf) const;

 private:
  static constexpr uint32_t kEntryBytes = 9;  // txn u64 + mode u8

  uint32_t line_size_;
  bool two_line_;
  size_t holders_cap_;
  size_t waiters_cap_;
};

}  // namespace smdb

#endif  // SMDB_LOCKMGR_LCB_H_
