#include "lockmgr/lock_table.h"

#include <cassert>

#include "obs/observatory.h"
#include "obs/trace.h"
#include "sim/machine.h"

namespace smdb {
namespace {

/// Maximum linear-probe distance. Bounding the probe chain makes lookups
/// correct even after crashed (lost) LCB lines have been re-initialised to
/// empty: a lookup never stops early at an empty slot, it always scans the
/// full window.
constexpr uint32_t kProbeLimit = 32;

uint64_t HashName(uint64_t x) {
  x ^= x >> 33;
  x *= 0xFF51AFD7ED558CCDULL;
  x ^= x >> 33;
  x *= 0xC4CEB9FE1A85EC53ULL;
  x ^= x >> 33;
  return x;
}

}  // namespace

LockTable::LockTable(Machine* machine, LogManager* log,
                     LockTableConfig config)
    : machine_(machine),
      log_(log),
      config_(config),
      codec_(machine->line_size(), config.two_line_lcb) {
  base_ = machine_->AllocShared(static_cast<size_t>(config_.buckets) *
                                codec_.bytes());
}

LineAddr LockTable::SlotFirstLine(uint32_t slot) const {
  return machine_->LineOf(SlotBase(slot));
}

Result<Lcb> LockTable::ReadLcb(NodeId node, uint32_t slot) {
  std::vector<uint8_t> buf(codec_.bytes());
  SMDB_RETURN_IF_ERROR(
      machine_->Read(node, SlotBase(slot), buf.data(), buf.size()));
  return codec_.Decode(buf.data());
}

Status LockTable::WriteLcb(NodeId node, uint32_t slot, const Lcb& lcb) {
  std::vector<uint8_t> buf(codec_.bytes());
  codec_.Encode(lcb, buf.data());
  return machine_->Write(node, SlotBase(slot), buf.data(), buf.size());
}

Result<uint32_t> LockTable::FindSlot(NodeId node, uint64_t name,
                                     bool create) {
  uint32_t h = static_cast<uint32_t>(HashName(name) % config_.buckets);
  uint32_t limit = std::min(kProbeLimit, config_.buckets);
  uint32_t first_empty = config_.buckets;  // sentinel
  for (uint32_t i = 0; i < limit; ++i) {
    uint32_t slot = (h + i) % config_.buckets;
    auto existing = machine_->ReadValue<uint64_t>(node, SlotBase(slot));
    if (!existing.ok()) {
      if (existing.status().IsLineLost()) continue;  // skip, keep probing
      return existing.status();
    }
    if (*existing == name) return slot;
    if (*existing == 0 && first_empty == config_.buckets) first_empty = slot;
  }
  if (create && first_empty != config_.buckets) return first_empty;
  if (create) {
    AtomicInc(stats_.capacity_rejections);
    return Status::TryAgain("lock table probe window full");
  }
  return Status::NotFound("no LCB for name");
}

Status LockTable::LogLockOp(NodeId node, TxnId txn, uint64_t name,
                            LockMode mode, LockOpPayload::Op op,
                            Lsn* chain_prev) {
  if (!config_.log_lock_ops) return Status::Ok();
  LogRecord rec;
  rec.type = LogRecordType::kLockOp;
  rec.txn = txn;
  rec.prev_lsn = chain_prev != nullptr ? *chain_prev : kInvalidLsn;
  rec.payload = LockOpPayload{name, mode, op};
  Lsn lsn = log_->Append(node, std::move(rec));
  if (chain_prev != nullptr) *chain_prev = lsn;
  AtomicInc(stats_.lock_log_records);
  return Status::Ok();
}

bool LockTable::PromoteWaiters(Lcb& lcb) {
  bool changed = false;
  while (!lcb.waiters.empty() &&
         lcb.holders.size() < codec_.holders_capacity()) {
    const LockEntry head = lcb.waiters.front();
    bool ok = true;
    for (const auto& h : lcb.holders) {
      // A waiter may be upgrading a lock it already holds; its own holder
      // entry does not conflict with it.
      if (h.txn == head.txn) continue;
      if (!Compatible(h.mode, head.mode)) {
        ok = false;
        break;
      }
    }
    if (!ok) break;
    LockEntry* mine = lcb.FindHolder(head.txn);
    if (mine != nullptr) {
      mine->mode = head.mode;  // upgrade in place
    } else {
      lcb.holders.push_back(head);
    }
    lcb.waiters.erase(lcb.waiters.begin());
    changed = true;
  }
  return changed;
}

Result<LockResult> LockTable::Acquire(NodeId node, TxnId txn, uint64_t name,
                                      LockMode mode, Lsn* chain_prev) {
  ProfScope lock_wait(prof_, ProfPhase::kLockWait);
  std::lock_guard<std::mutex> latch(StripeFor(name));
  SMDB_ASSIGN_OR_RETURN(uint32_t slot, FindSlot(node, name, /*create=*/true));
  LineAddr l0 = SlotFirstLine(slot);
  SMDB_RETURN_IF_ERROR(machine_->GetLine(node, l0));
  if (codec_.lines() == 2) {
    Status s = machine_->GetLine(node, l0 + 1);
    if (!s.ok()) {
      machine_->ReleaseLine(node, l0);
      return s;
    }
  }
  auto release_lines = [&] {
    if (codec_.lines() == 2) machine_->ReleaseLine(node, l0 + 1);
    machine_->ReleaseLine(node, l0);
  };

  auto lcb_or = ReadLcb(node, slot);
  if (!lcb_or.ok()) {
    release_lines();
    return lcb_or.status();
  }
  Lcb lcb = std::move(*lcb_or);
  if (lcb.empty()) lcb.name = name;

  LockEntry* mine = lcb.FindHolder(txn);
  if (mine != nullptr) {
    if (mine->mode == LockMode::kExclusive || mine->mode == mode) {
      release_lines();  // already held at sufficient strength
      return LockResult::kGranted;
    }
    // Upgrade S -> X: allowed immediately only as the sole holder.
    if (lcb.holders.size() == 1) {
      SMDB_RETURN_IF_ERROR(LogLockOp(node, txn, name, mode,
                                     LockOpPayload::Op::kAcquire, chain_prev));
      mine->mode = LockMode::kExclusive;
      Status s = WriteLcb(node, slot, lcb);
      release_lines();
      if (!s.ok()) return s;
      AtomicInc(stats_.acquires);
      SMDB_TRACE(tracer_, {.kind = TraceEventKind::kLockAcquire,
                           .node = node,
                           .txn = txn,
                           .ts = machine_->NodeClock(node),
                           .a = name,
                           .b = static_cast<uint64_t>(mode),
                           .label = "upgrade"});
      return LockResult::kGranted;
    }
    // Fall through to queueing the upgrade.
  } else if (lcb.CanGrant(txn, mode) &&
             lcb.holders.size() < codec_.holders_capacity()) {
    // The logical log record is written on node `node` *before* the LCB
    // update becomes visible (and thus before the LCB line can migrate):
    // the Volatile LBM policy for the lock table.
    SMDB_RETURN_IF_ERROR(LogLockOp(node, txn, name, mode,
                                   LockOpPayload::Op::kAcquire, chain_prev));
    lcb.holders.push_back(LockEntry{txn, mode});
    Status s = WriteLcb(node, slot, lcb);
    release_lines();
    if (!s.ok()) return s;
    AtomicInc(stats_.acquires);
    SMDB_TRACE(tracer_, {.kind = TraceEventKind::kLockAcquire,
                         .node = node,
                         .txn = txn,
                         .ts = machine_->NodeClock(node),
                         .a = name,
                         .b = static_cast<uint64_t>(mode)});
    return LockResult::kGranted;
  }

  // Conflict: queue the request (also logged, per section 4.2.2).
  if (lcb.FindWaiter(txn) == nullptr) {
    if (lcb.waiters.size() >= codec_.waiters_capacity()) {
      release_lines();
      AtomicInc(stats_.capacity_rejections);
      return Status::TryAgain("LCB waiter list full");
    }
    SMDB_RETURN_IF_ERROR(LogLockOp(node, txn, name, mode,
                                   LockOpPayload::Op::kQueue, chain_prev));
    lcb.waiters.push_back(LockEntry{txn, mode});
    Status s = WriteLcb(node, slot, lcb);
    release_lines();
    if (!s.ok()) return s;
    SMDB_OBS(obs_, OnLockQueued(txn, name, machine_->NodeClock(node)));
  } else {
    release_lines();
  }
  AtomicInc(stats_.queued);
  return LockResult::kQueued;
}

Result<LockResult> LockTable::PollGrant(NodeId node, TxnId txn, uint64_t name,
                                        LockMode mode, Lsn* chain_prev) {
  ProfScope lock_wait(prof_, ProfPhase::kLockWait);
  std::lock_guard<std::mutex> latch(StripeFor(name));
  SMDB_ASSIGN_OR_RETURN(uint32_t slot, FindSlot(node, name, /*create=*/false));
  SMDB_ASSIGN_OR_RETURN(Lcb lcb, ReadLcb(node, slot));
  LockEntry* mine = lcb.FindHolder(txn);
  if (mine == nullptr) return LockResult::kQueued;
  if (mine->mode != mode && mine->mode != LockMode::kExclusive) {
    return LockResult::kQueued;  // upgrade still pending
  }
  // First observation of the promotion: log the acquisition so recovery can
  // redo it if the LCB is destroyed.
  SMDB_RETURN_IF_ERROR(LogLockOp(node, txn, name, mode,
                                 LockOpPayload::Op::kAcquire, chain_prev));
  AtomicInc(stats_.acquires);
  SMDB_TRACE(tracer_, {.kind = TraceEventKind::kLockAcquire,
                       .node = node,
                       .txn = txn,
                       .ts = machine_->NodeClock(node),
                       .a = name,
                       .b = static_cast<uint64_t>(mode),
                       .label = "poll"});
  SMDB_OBS(obs_, OnLockGranted(txn, name, machine_->NodeClock(node)));
  return LockResult::kGranted;
}

Status LockTable::Release(NodeId node, TxnId txn, uint64_t name,
                          Lsn* chain_prev) {
  std::lock_guard<std::mutex> latch(StripeFor(name));
  auto slot_or = FindSlot(node, name, /*create=*/false);
  if (!slot_or.ok()) {
    // Already reclaimed (e.g. restart recovery dropped the lock): release
    // is idempotent.
    if (slot_or.status().IsNotFound()) return Status::Ok();
    return slot_or.status();
  }
  uint32_t slot = *slot_or;
  LineAddr l0 = SlotFirstLine(slot);
  SMDB_RETURN_IF_ERROR(machine_->GetLine(node, l0));
  if (codec_.lines() == 2) {
    Status s = machine_->GetLine(node, l0 + 1);
    if (!s.ok()) {
      machine_->ReleaseLine(node, l0);
      return s;
    }
  }
  auto release_lines = [&] {
    if (codec_.lines() == 2) machine_->ReleaseLine(node, l0 + 1);
    machine_->ReleaseLine(node, l0);
  };

  auto lcb_or = ReadLcb(node, slot);
  if (!lcb_or.ok()) {
    release_lines();
    return lcb_or.status();
  }
  Lcb lcb = std::move(*lcb_or);
  SMDB_RETURN_IF_ERROR(
      LogLockOp(node, txn, name, LockMode::kNone,
                LockOpPayload::Op::kRelease, chain_prev));
  // Remove both held and queued entries: a transaction aborting while an
  // upgrade request is queued is simultaneously a holder and a waiter.
  bool changed = false;
  for (size_t i = 0; i < lcb.holders.size(); ++i) {
    if (lcb.holders[i].txn == txn) {
      lcb.holders.erase(lcb.holders.begin() + i);
      changed = true;
      break;
    }
  }
  for (size_t i = 0; i < lcb.waiters.size(); ++i) {
    if (lcb.waiters[i].txn == txn) {
      lcb.waiters.erase(lcb.waiters.begin() + i);
      changed = true;
      break;
    }
  }
  changed |= PromoteWaiters(lcb);
  if (lcb.holders.empty() && lcb.waiters.empty()) {
    // Reclaim the slot: the space freed by the release is reusable for
    // other lock names (full-window probing makes deletion safe).
    lcb = Lcb{};
    changed = true;
  }
  Status s = changed ? WriteLcb(node, slot, lcb) : Status::Ok();
  release_lines();
  if (!s.ok()) return s;
  AtomicInc(stats_.releases);
  SMDB_TRACE(tracer_, {.kind = TraceEventKind::kLockRelease,
                       .node = node,
                       .txn = txn,
                       .ts = machine_->NodeClock(node),
                       .a = name});
  return Status::Ok();
}

Result<LockMode> LockTable::HeldMode(NodeId node, TxnId txn, uint64_t name) {
  std::lock_guard<std::mutex> latch(StripeFor(name));
  auto slot_or = FindSlot(node, name, /*create=*/false);
  if (!slot_or.ok()) {
    if (slot_or.status().IsNotFound()) return LockMode::kNone;
    return slot_or.status();
  }
  SMDB_ASSIGN_OR_RETURN(Lcb lcb, ReadLcb(node, *slot_or));
  LockEntry* mine = lcb.FindHolder(txn);
  return mine == nullptr ? LockMode::kNone : mine->mode;
}

Result<std::vector<LockEntry>> LockTable::Holders(NodeId node,
                                                  uint64_t name) {
  std::lock_guard<std::mutex> latch(StripeFor(name));
  auto slot_or = FindSlot(node, name, /*create=*/false);
  if (!slot_or.ok()) {
    if (slot_or.status().IsNotFound()) return std::vector<LockEntry>{};
    return slot_or.status();
  }
  SMDB_ASSIGN_OR_RETURN(Lcb lcb, ReadLcb(node, *slot_or));
  return lcb.holders;
}

Result<Lcb> LockTable::GetLcb(NodeId node, uint64_t name) {
  std::lock_guard<std::mutex> latch(StripeFor(name));
  auto slot_or = FindSlot(node, name, /*create=*/false);
  if (!slot_or.ok()) {
    if (slot_or.status().IsNotFound()) return Lcb{};
    return slot_or.status();
  }
  return ReadLcb(node, *slot_or);
}

Result<int> LockTable::DropTxnLocks(NodeId node,
                                    const std::set<TxnId>& txns) {
  int removed = 0;
  for (uint32_t slot = 0; slot < config_.buckets; ++slot) {
    auto name_or = machine_->ReadValue<uint64_t>(node, SlotBase(slot));
    if (!name_or.ok()) {
      if (name_or.status().IsLineLost()) continue;
      return name_or.status();
    }
    if (*name_or == 0) continue;
    auto lcb_or = ReadLcb(node, slot);
    if (!lcb_or.ok()) {
      if (lcb_or.status().IsLineLost()) continue;  // partial two-line loss
      return lcb_or.status();
    }
    Lcb lcb = std::move(*lcb_or);
    bool changed = false;
    auto drop = [&](std::vector<LockEntry>& list) {
      for (size_t i = 0; i < list.size();) {
        if (txns.contains(list[i].txn)) {
          list.erase(list.begin() + i);
          changed = true;
          ++removed;
        } else {
          ++i;
        }
      }
    };
    drop(lcb.holders);
    drop(lcb.waiters);
    changed |= PromoteWaiters(lcb);
    if (lcb.holders.empty() && lcb.waiters.empty() && changed) {
      lcb = Lcb{};  // reclaim the slot
    }
    if (changed) {
      LineAddr l0 = SlotFirstLine(slot);
      SMDB_RETURN_IF_ERROR(machine_->GetLine(node, l0));
      Status s = WriteLcb(node, slot, lcb);
      machine_->ReleaseLine(node, l0);
      SMDB_RETURN_IF_ERROR(s);
    }
  }
  return removed;
}

Status LockTable::RebuildLcb(NodeId node, const Lcb& lcb) {
  SMDB_ASSIGN_OR_RETURN(uint32_t slot,
                        FindSlot(node, lcb.name, /*create=*/true));
  // A waiter may have been promoted just before the crash without the
  // waiting node having observed it yet; promote eagerly so no waiter is
  // stranded (a stranded waiter would never be re-promoted: promotions
  // happen only on releases).
  Lcb fixed = lcb;
  PromoteWaiters(fixed);
  LineAddr l0 = SlotFirstLine(slot);
  SMDB_RETURN_IF_ERROR(machine_->GetLine(node, l0));
  Status s = WriteLcb(node, slot, fixed);
  machine_->ReleaseLine(node, l0);
  return s;
}

int LockTable::ClearLostLines() {
  int cleared = 0;
  std::vector<uint8_t> zeros(machine_->line_size(), 0);
  LineAddr first = machine_->LineOf(base_);
  size_t total_lines = static_cast<size_t>(config_.buckets) * codec_.lines();
  for (size_t i = 0; i < total_lines; ++i) {
    LineAddr line = first + i;
    if (machine_->IsLineLost(line)) {
      machine_->InstallToMemory(machine_->AddrOfLine(line), zeros.data(),
                                zeros.size());
      ++cleared;
    }
  }
  return cleared;
}

std::vector<Lcb> LockTable::SnapshotAll(int* lost_lcbs) const {
  std::vector<Lcb> out;
  int lost = 0;
  std::vector<uint8_t> buf(codec_.bytes());
  for (uint32_t slot = 0; slot < config_.buckets; ++slot) {
    Status s = machine_->SnoopRead(SlotBase(slot), buf.data(), buf.size());
    if (!s.ok()) {
      ++lost;
      continue;
    }
    Lcb lcb = codec_.Decode(buf.data());
    if (!lcb.empty() && (!lcb.holders.empty() || !lcb.waiters.empty())) {
      out.push_back(std::move(lcb));
    }
  }
  if (lost_lcbs != nullptr) *lost_lcbs = lost;
  return out;
}

std::vector<LineAddr> LockTable::LostLines() const {
  std::vector<LineAddr> out;
  LineAddr first = machine_->LineOf(base_);
  size_t total_lines = static_cast<size_t>(config_.buckets) * codec_.lines();
  for (size_t i = 0; i < total_lines; ++i) {
    if (machine_->IsLineLost(first + i)) out.push_back(first + i);
  }
  return out;
}

std::mutex& LockTable::StripeFor(uint64_t name) const {
  return stripe_mu_[HashName(name) % kLatchStripes];
}

uint32_t LockTable::SnoopFindSlot(uint64_t name, bool create,
                                  std::vector<LineAddr>* lines,
                                  LockPrediction::Outcome* outcome) const {
  uint32_t h = static_cast<uint32_t>(HashName(name) % config_.buckets);
  uint32_t limit = std::min(kProbeLimit, config_.buckets);
  uint32_t first_empty = config_.buckets;  // sentinel
  for (uint32_t i = 0; i < limit; ++i) {
    uint32_t slot = (h + i) % config_.buckets;
    uint64_t stored = 0;
    Status s = machine_->SnoopRead(SlotBase(slot), &stored, sizeof(stored));
    if (!s.ok()) continue;  // lost slot header: FindSlot skips it too
    // The real probe's coherent read touches this line, so it belongs to
    // the step's footprint even when the probe moves on.
    lines->push_back(SlotFirstLine(slot));
    if (stored == name) return slot;
    if (stored == 0 && first_empty == config_.buckets) first_empty = slot;
  }
  if (create && first_empty != config_.buckets) return first_empty;
  if (create) *outcome = LockPrediction::Outcome::kTryAgain;
  return config_.buckets;
}

LockPrediction LockTable::Predict(TxnId txn, uint64_t name,
                                  LockMode mode) const {
  LockPrediction p;
  uint32_t slot = SnoopFindSlot(name, /*create=*/true, &p.lines, &p.outcome);
  if (slot == config_.buckets) return p;  // kTryAgain from the probe
  for (uint32_t i = 0; i < codec_.lines(); ++i) {
    p.lines.push_back(SlotFirstLine(slot) + i);
  }
  std::vector<uint8_t> buf(codec_.bytes());
  Status s = machine_->SnoopRead(SlotBase(slot), buf.data(), buf.size());
  if (!s.ok()) {
    p.outcome = LockPrediction::Outcome::kLost;  // partial two-line loss
    return p;
  }
  Lcb lcb = codec_.Decode(buf.data());
  LockEntry* mine = lcb.FindHolder(txn);
  if (mine != nullptr) {
    if (mine->mode == LockMode::kExclusive || mine->mode == mode) {
      p.outcome = LockPrediction::Outcome::kHeld;
    } else if (lcb.holders.size() == 1) {
      p.outcome = LockPrediction::Outcome::kGranted;  // sole-holder upgrade
    } else {
      p.outcome = LockPrediction::Outcome::kQueued;
    }
    return p;
  }
  if (lcb.CanGrant(txn, mode) &&
      lcb.holders.size() < codec_.holders_capacity()) {
    p.outcome = LockPrediction::Outcome::kGranted;
    return p;
  }
  // Conflict or waiter-capacity rejection: either way the step is not
  // batchable, so the coarse kQueued classification is enough.
  p.outcome = LockPrediction::Outcome::kQueued;
  return p;
}

std::vector<LockEntry> LockTable::SnoopWaiters(uint64_t name,
                                               bool* lost) const {
  if (lost != nullptr) *lost = false;
  std::vector<LineAddr> scratch;
  LockPrediction::Outcome oc = LockPrediction::Outcome::kQueued;
  uint32_t slot = SnoopFindSlot(name, /*create=*/false, &scratch, &oc);
  if (slot == config_.buckets) return {};
  std::vector<uint8_t> buf(codec_.bytes());
  if (!machine_->SnoopRead(SlotBase(slot), buf.data(), buf.size()).ok()) {
    if (lost != nullptr) *lost = true;
    return {};
  }
  return codec_.Decode(buf.data()).waiters;
}

}  // namespace smdb
