#include "lockmgr/lcb.h"

#include <cassert>
#include <cstring>

namespace smdb {

LockMode Lcb::GrantedMode() const {
  LockMode m = LockMode::kNone;
  for (const auto& h : holders) {
    if (h.mode == LockMode::kExclusive) return LockMode::kExclusive;
    m = LockMode::kShared;
  }
  return m;
}

bool Lcb::CanGrant(TxnId txn, LockMode mode) const {
  for (const auto& h : holders) {
    if (h.txn == txn) continue;  // self-compatibility handled by caller
    if (!Compatible(h.mode, mode)) return false;
  }
  // FIFO fairness: do not overtake an earlier waiter whose request
  // conflicts with ours (prevents starvation of exclusive requests).
  for (const auto& w : waiters) {
    if (w.txn == txn) break;
    if (!Compatible(w.mode, mode) || !Compatible(mode, w.mode)) return false;
  }
  return true;
}

LockEntry* Lcb::FindHolder(TxnId txn) {
  for (auto& h : holders) {
    if (h.txn == txn) return &h;
  }
  return nullptr;
}

LockEntry* Lcb::FindWaiter(TxnId txn) {
  for (auto& w : waiters) {
    if (w.txn == txn) return &w;
  }
  return nullptr;
}

LcbCodec::LcbCodec(uint32_t line_size, bool two_line)
    : line_size_(line_size), two_line_(two_line) {
  if (two_line_) {
    holders_cap_ = (line_size_ - 9) / kEntryBytes;   // name + count
    waiters_cap_ = (line_size_ - 1) / kEntryBytes;   // count only
  } else {
    size_t entries = (line_size_ - 10) / kEntryBytes;
    holders_cap_ = (entries + 1) / 2;
    waiters_cap_ = entries - holders_cap_;
  }
  assert(holders_cap_ >= 2 && waiters_cap_ >= 2);
}

namespace {

void PutEntries(const std::vector<LockEntry>& list, uint8_t* p) {
  for (const auto& e : list) {
    std::memcpy(p, &e.txn, 8);
    p[8] = static_cast<uint8_t>(e.mode);
    p += 9;
  }
}

std::vector<LockEntry> GetEntries(const uint8_t* p, size_t n) {
  std::vector<LockEntry> out;
  out.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    LockEntry e;
    std::memcpy(&e.txn, p, 8);
    e.mode = static_cast<LockMode>(p[8]);
    out.push_back(e);
    p += 9;
  }
  return out;
}

}  // namespace

void LcbCodec::Encode(const Lcb& lcb, uint8_t* buf) const {
  assert(lcb.holders.size() <= holders_cap_);
  assert(lcb.waiters.size() <= waiters_cap_);
  std::memset(buf, 0, bytes());
  if (two_line_) {
    std::memcpy(buf, &lcb.name, 8);
    buf[8] = static_cast<uint8_t>(lcb.holders.size());
    PutEntries(lcb.holders, buf + 9);
    uint8_t* l2 = buf + line_size_;
    l2[0] = static_cast<uint8_t>(lcb.waiters.size());
    PutEntries(lcb.waiters, l2 + 1);
  } else {
    std::memcpy(buf, &lcb.name, 8);
    buf[8] = static_cast<uint8_t>(lcb.holders.size());
    buf[9] = static_cast<uint8_t>(lcb.waiters.size());
    PutEntries(lcb.holders, buf + 10);
    PutEntries(lcb.waiters, buf + 10 + 9 * lcb.holders.size());
  }
}

Lcb LcbCodec::Decode(const uint8_t* buf) const {
  Lcb lcb;
  std::memcpy(&lcb.name, buf, 8);
  if (lcb.name == 0) return lcb;
  if (two_line_) {
    size_t nh = buf[8];
    lcb.holders = GetEntries(buf + 9, nh);
    const uint8_t* l2 = buf + line_size_;
    size_t nw = l2[0];
    lcb.waiters = GetEntries(l2 + 1, nw);
  } else {
    size_t nh = buf[8];
    size_t nw = buf[9];
    lcb.holders = GetEntries(buf + 10, nh);
    lcb.waiters = GetEntries(buf + 10 + 9 * nh, nw);
  }
  return lcb;
}

}  // namespace smdb
