#ifndef SMDB_TXN_TRANSACTION_H_
#define SMDB_TXN_TRANSACTION_H_

#include <cstdint>
#include <set>
#include <vector>

#include "common/types.h"

namespace smdb {

/// Lifecycle of a transaction.
enum class TxnState : uint8_t {
  kActive,
  kCommitted,
  kAborted,
};

/// Read isolation degrees (section 3.2 cites Gray & Reuter's hierarchy).
/// Updates are always strict-2PL regardless of the read degree.
enum class Isolation : uint8_t {
  /// Degree 3: S locks held to commit (strict 2PL). Default.
  kSerializable,
  /// Degree 2 (cursor stability): the S lock is released as soon as the
  /// read completes — no dirty reads, but non-repeatable ones.
  kCursorStability,
  /// Degree 1/0 (browse/chaos): reads take no lock at all and may observe
  /// uncommitted data. Section 3.2's point: under browse, H_wr arises even
  /// with one object per cache line, so padding can never substitute for
  /// the LBM policies.
  kBrowse,
};

/// Control state of one transaction. In the paper's model this state
/// (registers, stack, transaction table entry) lives on the executing node
/// and is destroyed by that node's crash; the TxnManager emulates that by
/// treating entries for crashed nodes as unreachable control state whose
/// fate is decided by restart recovery.
///
/// Transactions execute entirely on a single node (section 2's workload
/// focus). The node is recoverable from the id: TxnNode(id).
struct Transaction {
  TxnId id = kInvalidTxn;
  TxnState state = TxnState::kActive;
  /// Head of this transaction's log-record chain (in its node's log).
  Lsn last_lsn = kInvalidLsn;
  /// LSN of the Begin record: the log-truncation safe point must not pass
  /// the oldest active transaction's first record.
  Lsn first_lsn = kInvalidLsn;
  /// Monotonic begin stamp; smaller = older (deadlock victim selection).
  uint64_t begin_seq = 0;
  /// Node-clock sim-time at Begin (latency observatory's commit/abort
  /// latency baseline).
  SimTime begin_ts = 0;

  /// Lock names this transaction holds (granted). Strict 2PL: released only
  /// at commit/abort.
  std::set<uint64_t> granted_locks;
  /// Lock names with a queued (waiting) request.
  std::set<uint64_t> queued_locks;

  /// Records updated (for commit-time tag clearing), in first-update order.
  std::vector<RecordId> updated_records;
  /// Index keys touched by insert/delete (tree_id, key), for tag clearing.
  std::vector<std::pair<uint32_t, uint64_t>> index_keys;

  NodeId node() const { return TxnNode(id); }
};

/// Observer of transaction effects; the IFA checker implements this to
/// maintain its ground-truth oracle.
class TxnObserver {
 public:
  virtual ~TxnObserver() = default;
  virtual void OnBegin(TxnId) {}
  virtual void OnUpdate(TxnId, RecordId, const std::vector<uint8_t>&) {}
  virtual void OnIndexInsert(TxnId, uint32_t /*tree*/, uint64_t /*key*/,
                             RecordId) {}
  virtual void OnIndexDelete(TxnId, uint32_t /*tree*/, uint64_t /*key*/) {}
  virtual void OnCommit(TxnId) {}
  /// Covers voluntary aborts, deadlock aborts, baseline-forced aborts and
  /// crash annulment alike: the transaction's effects are gone.
  virtual void OnAbort(TxnId) {}
};

}  // namespace smdb

#endif  // SMDB_TXN_TRANSACTION_H_
