#include "txn/txn_manager.h"

#include <algorithm>
#include <cassert>

#include "db/page_layout.h"
#include "obs/observatory.h"
#include "obs/trace.h"
#include "sim/machine.h"
#include "wal/group_commit.h"

namespace smdb {

TxnManager::TxnManager(Machine* machine, LogManager* log, LockTable* locks,
                       RecordStore* records, BTree* index, WalTable* wal_table,
                       BufferManager* buffers, LbmPolicy* lbm, UsnSource* usn,
                       DependencyTracker* deps, RecoveryConfig config)
    : machine_(machine),
      log_(log),
      locks_(locks),
      records_(records),
      index_(index),
      wal_table_(wal_table),
      buffers_(buffers),
      lbm_(lbm),
      usn_(usn),
      deps_(deps),
      config_(config) {
  next_seq_.assign(machine_->num_nodes(), 0);
}

Transaction* TxnManager::Begin(NodeId node) {
  TxnId id = MakeTxnId(node, ++next_seq_[node]);
  auto txn = std::make_unique<Transaction>();
  txn->id = id;
  txn->begin_seq = AtomicIncFetch(begin_counter_);
  txn->begin_ts = machine_->NodeClock(node);
  Transaction* ptr = txn.get();
  {
    std::lock_guard<std::mutex> lk(txn_mu_);
    txns_[id] = std::move(txn);
  }
  LogRecord rec;
  rec.type = LogRecordType::kBegin;
  rec.txn = id;
  rec.payload = BeginPayload{};
  ptr->last_lsn = log_->Append(node, std::move(rec));
  ptr->first_lsn = ptr->last_lsn;
  AtomicInc(stats_.begins);
  SMDB_TRACE(tracer_, {.kind = TraceEventKind::kTxnBegin,
                       .node = node,
                       .txn = id,
                       .ts = machine_->NodeClock(node),
                       .a = ptr->first_lsn});
  SMDB_OBS(obs_, OnTxnBegin(node, id, ptr->begin_ts));
  for (auto* obs : observers_) obs->OnBegin(id);
  return ptr;
}

Transaction* TxnManager::Find(TxnId id) {
  std::lock_guard<std::mutex> lk(txn_mu_);
  auto it = txns_.find(id);
  return it == txns_.end() ? nullptr : it->second.get();
}

std::vector<Transaction*> TxnManager::ActiveOn(NodeId node) {
  std::vector<Transaction*> out;
  std::lock_guard<std::mutex> lk(txn_mu_);
  for (auto& [id, txn] : txns_) {
    if (txn->state == TxnState::kActive && txn->node() == node) {
      out.push_back(txn.get());
    }
  }
  return out;
}

std::vector<Transaction*> TxnManager::ActiveAll() {
  std::vector<Transaction*> out;
  std::lock_guard<std::mutex> lk(txn_mu_);
  for (auto& [id, txn] : txns_) {
    if (txn->state == TxnState::kActive) out.push_back(txn.get());
  }
  return out;
}

void TxnManager::NotifyCommit(TxnId id) {
  for (auto* obs : observers_) obs->OnCommit(id);
}
void TxnManager::NotifyAbort(TxnId id) {
  for (auto* obs : observers_) obs->OnAbort(id);
}

bool TxnManager::WouldDeadlock(Transaction* txn, uint64_t name) {
  // DFS over the waits-for graph: txn -> holders(name) -> what they wait
  // for -> ... A cycle back to txn means the queue attempt would deadlock.
  std::lock_guard<std::mutex> lk(txn_mu_);
  std::set<TxnId> visited;
  std::vector<uint64_t> frontier = {name};
  while (!frontier.empty()) {
    uint64_t n = frontier.back();
    frontier.pop_back();
    auto holders = locks_->Holders(txn->node(), n);
    if (!holders.ok()) continue;
    for (const auto& h : *holders) {
      if (h.txn == txn->id) return true;
      if (!visited.insert(h.txn).second) continue;
      auto it = waiting_for_.find(h.txn);
      if (it != waiting_for_.end()) frontier.push_back(it->second);
    }
  }
  return false;
}

Status TxnManager::AcquireLock(Transaction* txn, uint64_t name,
                               LockMode mode) {
  if (txn->granted_locks.contains(name)) {
    // Fast path re-acquire; the lock table resolves upgrades.
    if (mode == LockMode::kShared) return Status::Ok();
  }
  auto res_or = locks_->Acquire(txn->node(), txn->id, name, mode,
                                &txn->last_lsn);
  if (!res_or.ok()) {
    if (res_or.status().IsTryAgain()) {
      // Capacity rejection (full waiter list / probe window): the caller
      // must re-issue the acquire. The transaction is logically waiting on
      // `name` even though it holds no queue slot, so register the edge for
      // deadlock detection (a spinner holding other locks can deadlock with
      // a queued waiter).
      if (WouldDeadlock(txn, name)) {
        AtomicInc(stats_.deadlock_aborts);
        return Status::Deadlock("waits-for cycle (while spinning)");
      }
      std::lock_guard<std::mutex> lk(txn_mu_);
      waiting_for_[txn->id] = name;
    }
    return res_or.status();
  }
  LockResult res = *res_or;
  if (res == LockResult::kGranted) {
    txn->granted_locks.insert(name);
    txn->queued_locks.erase(name);
    std::lock_guard<std::mutex> lk(txn_mu_);
    waiting_for_.erase(txn->id);
    return Status::Ok();
  }
  txn->queued_locks.insert(name);
  if (WouldDeadlock(txn, name)) {
    AtomicInc(stats_.deadlock_aborts);
    return Status::Deadlock("waits-for cycle");
  }
  {
    std::lock_guard<std::mutex> lk(txn_mu_);
    waiting_for_[txn->id] = name;
  }
  return Status::Busy("lock queued");
}

Result<LockResult> TxnManager::PollLock(Transaction* txn, uint64_t name,
                                        LockMode mode) {
  SMDB_ASSIGN_OR_RETURN(
      LockResult res,
      locks_->PollGrant(txn->node(), txn->id, name, mode, &txn->last_lsn));
  if (res == LockResult::kGranted) {
    txn->granted_locks.insert(name);
    txn->queued_locks.erase(name);
    std::lock_guard<std::mutex> lk(txn_mu_);
    waiting_for_.erase(txn->id);
  }
  return res;
}

Result<std::vector<uint8_t>> TxnManager::Read(Transaction* txn, RecordId rid,
                                              Isolation isolation) {
  if (isolation == Isolation::kBrowse) {
    AtomicInc(stats_.reads);
    return DirtyRead(txn->node(), rid);
  }
  uint64_t name = RecordLockName(rid);
  bool held_before = txn->granted_locks.contains(name);
  SMDB_RETURN_IF_ERROR(AcquireLock(txn, name, LockMode::kShared));
  if (touch_record_) SMDB_RETURN_IF_ERROR(touch_record_(txn->node(), rid));
  SlotImage img;
  {
    ProfScope apply(prof_, ProfPhase::kApply);
    SMDB_ASSIGN_OR_RETURN(img, records_->ReadSlot(txn->node(), rid));
  }
  AtomicInc(stats_.reads);
  if (isolation == Isolation::kCursorStability && !held_before) {
    // Degree 2: drop the read lock immediately (never a lock the
    // transaction holds for another reason, e.g. an earlier update).
    SMDB_RETURN_IF_ERROR(
        locks_->Release(txn->node(), txn->id, name, &txn->last_lsn));
    txn->granted_locks.erase(name);
  }
  return img.data;
}

Result<std::vector<uint8_t>> TxnManager::DirtyRead(NodeId node, RecordId rid) {
  if (touch_record_) SMDB_RETURN_IF_ERROR(touch_record_(node, rid));
  ProfScope apply(prof_, ProfPhase::kApply);
  SMDB_ASSIGN_OR_RETURN(SlotImage img, records_->ReadSlot(node, rid));
  return img.data;
}

Status TxnManager::DoUpdate(Transaction* txn, RecordId rid,
                            const std::vector<uint8_t>& value, bool is_clr,
                            uint64_t /*expected_usn*/) {
  ProfScope apply(prof_, ProfPhase::kApply);
  NodeId node = txn->node();
  uint16_t tag =
      (config_.undo_tagging() && !is_clr) ? TagForNode(node) : kTagNone;
  PageId page = rid.page;
  LineAddr header_line = records_->HeaderLine(page);
  LineAddr record_line = records_->SlotLine(rid);

  // Ordered-update-logging via line locks (section 6): lock the Page-LSN
  // line and the record line, update in place, log, then release. The log
  // record is written while the lines are pinned locally, which enforces
  // Volatile LBM.
  SMDB_RETURN_IF_ERROR(machine_->GetLine(node, header_line));
  Status st = machine_->GetLine(node, record_line);
  if (!st.ok()) {
    machine_->ReleaseLine(node, header_line);
    return st;
  }

  auto finish = [&](Status s) {
    machine_->ReleaseLine(node, record_line);
    machine_->ReleaseLine(node, header_line);
    return s;
  };

  auto cur_or = records_->ReadSlot(node, rid);
  if (!cur_or.ok()) return finish(cur_or.status());
  SlotImage cur = std::move(*cur_or);

  uint64_t usn = usn_->Next();
  SlotImage img;
  img.usn = usn;
  img.tag = tag;
  img.data = value;
  Status s = records_->WriteSlot(node, rid, img);
  if (s.ok()) s = records_->WritePageLsn(node, page, usn);
  if (!s.ok()) return finish(s);

  LogRecord rec;
  rec.type = LogRecordType::kUpdate;
  rec.txn = txn->id;
  rec.prev_lsn = txn->last_lsn;
  UpdatePayload up;
  up.rid = rid;
  up.usn = usn;
  up.before_usn = cur.usn;
  up.before = cur.data;
  up.after = value;
  up.is_clr = is_clr;
  rec.payload = std::move(up);
  Lsn lsn = log_->Append(node, std::move(rec));
  txn->last_lsn = lsn;
  s = lbm_->OnUpdateLogged(node, lsn, {record_line, header_line});
  if (!s.ok()) return finish(s);

  wal_table_->NoteUpdate(page, node, lsn);
  buffers_->MarkDirty(page);
  if (tag != kTagNone) AtomicInc(stats_.undo_tag_writes);
  if (deps_ != nullptr && !is_clr) deps_->OnTxnUpdate(txn->id, record_line);
  return finish(Status::Ok());
}

Status TxnManager::Update(Transaction* txn, RecordId rid,
                          const std::vector<uint8_t>& value) {
  if (value.size() != records_->layout().record_data_size()) {
    return Status::InvalidArgument("value size != record size");
  }
  SMDB_RETURN_IF_ERROR(AcquireLock(txn, RecordLockName(rid),
                                   LockMode::kExclusive));
  if (touch_record_) SMDB_RETURN_IF_ERROR(touch_record_(txn->node(), rid));
  SMDB_RETURN_IF_ERROR(DoUpdate(txn, rid, value, /*is_clr=*/false, 0));
  txn->updated_records.push_back(rid);
  AtomicInc(stats_.updates);
  for (auto* obs : observers_) obs->OnUpdate(txn->id, rid, value);
  return Status::Ok();
}

Status TxnManager::IndexInsert(Transaction* txn, uint64_t key,
                               RecordId value) {
  SMDB_RETURN_IF_ERROR(AcquireLock(txn, KeyLockName(index_->tree_id(), key),
                                   LockMode::kExclusive));
  if (touch_key_) {
    SMDB_RETURN_IF_ERROR(touch_key_(txn->node(), index_->tree_id(), key));
  }
  uint16_t tag =
      config_.undo_tagging() ? TagForNode(txn->node()) : kTagNone;
  {
    ProfScope descent(prof_, ProfPhase::kIndexDescent);
    SMDB_RETURN_IF_ERROR(index_->Insert(txn->node(), txn->id, key, value,
                                        tag, &txn->last_lsn));
  }
  txn->index_keys.emplace_back(index_->tree_id(), key);
  for (auto* obs : observers_) {
    obs->OnIndexInsert(txn->id, index_->tree_id(), key, value);
  }
  return Status::Ok();
}

Status TxnManager::IndexDelete(Transaction* txn, uint64_t key) {
  SMDB_RETURN_IF_ERROR(AcquireLock(txn, KeyLockName(index_->tree_id(), key),
                                   LockMode::kExclusive));
  if (touch_key_) {
    SMDB_RETURN_IF_ERROR(touch_key_(txn->node(), index_->tree_id(), key));
  }
  uint16_t tag =
      config_.undo_tagging() ? TagForNode(txn->node()) : kTagNone;
  {
    ProfScope descent(prof_, ProfPhase::kIndexDescent);
    SMDB_RETURN_IF_ERROR(
        index_->Delete(txn->node(), txn->id, key, tag, &txn->last_lsn));
  }
  txn->index_keys.emplace_back(index_->tree_id(), key);
  for (auto* obs : observers_) {
    obs->OnIndexDelete(txn->id, index_->tree_id(), key);
  }
  return Status::Ok();
}

Result<std::optional<RecordId>> TxnManager::IndexLookup(Transaction* txn,
                                                        uint64_t key) {
  SMDB_RETURN_IF_ERROR(AcquireLock(txn, KeyLockName(index_->tree_id(), key),
                                   LockMode::kShared));
  if (touch_key_) {
    SMDB_RETURN_IF_ERROR(touch_key_(txn->node(), index_->tree_id(), key));
  }
  ProfScope descent(prof_, ProfPhase::kIndexDescent);
  return index_->Lookup(txn->node(), key);
}

Status TxnManager::Commit(Transaction* txn) {
  return CommitImpl(txn, /*allow_group=*/true);
}

Status TxnManager::CommitImpl(Transaction* txn, bool allow_group) {
  assert(txn->state == TxnState::kActive);
  NodeId node = txn->node();

  // 1. Commit record + force: the durable commit point. With the
  // group-commit pipeline the force is deferred — the record joins the
  // node's pending batch and the transaction stays kActive (holding its
  // locks) until a covering force lands. Acknowledgement strictly after
  // durability preserves IFA: no observer learns of the commit while a
  // crash could still annul it.
  LogRecord rec;
  rec.type = LogRecordType::kCommit;
  rec.txn = txn->id;
  rec.prev_lsn = txn->last_lsn;
  rec.payload = CommitPayload{};
  txn->last_lsn = log_->Append(node, std::move(rec));
  if (allow_group && gc_ != nullptr) {
    SMDB_RETURN_IF_ERROR(gc_->EnqueueCommit(node, txn->id, txn->last_lsn));
    if (!log_->IsStable(node, txn->last_lsn)) {
      SMDB_TRACE(tracer_, {.kind = TraceEventKind::kTxnCommitWait,
                           .node = node,
                           .txn = txn->id,
                           .ts = machine_->NodeClock(node),
                           .a = txn->last_lsn});
      return Status::Busy("commit pending group force");
    }
    // The enqueue itself tripped the size bound (or the record was already
    // covered): complete immediately.
    gc_->DropCommit(txn->id);
    return FinishCommit(txn);
  }
  SMDB_RETURN_IF_ERROR(log_->Force(node, node));
  return FinishCommit(txn);
}

Status TxnManager::PollCommit(Transaction* txn) {
  if (gc_ == nullptr) {
    return Status::InvalidArgument("group commit is not enabled");
  }
  if (txn->state == TxnState::kCommitted) return Status::Ok();
  if (txn->state != TxnState::kActive) {
    return Status::InvalidArgument("polled transaction is not pending");
  }
  NodeId node = txn->node();
  SMDB_RETURN_IF_ERROR(gc_->Poll(node));
  if (!log_->IsStable(node, txn->last_lsn)) {
    return Status::Busy("commit pending group force");
  }
  gc_->DropCommit(txn->id);
  return FinishCommit(txn);
}

Status TxnManager::FinishCommit(Transaction* txn) {
  NodeId node = txn->node();

  // 2. Clear undo tags ("once the data is no longer active, the node ID is
  // assigned a null value"). Safe after the commit point: the restart
  // procedure checks the stable log before undoing a tagged record, so a
  // crash in this window cannot roll back committed data.
  if (config_.undo_tagging()) {
    std::set<RecordId> seen(txn->updated_records.begin(),
                            txn->updated_records.end());
    // During on-demand recovery, discharge each object's lazy obligations
    // before clearing its tag — a tag clear must never race with a pending
    // redo/undo for the same object.
    if (touch_record_) {
      for (RecordId rid : seen) SMDB_RETURN_IF_ERROR(touch_record_(node, rid));
    }
    if (touch_key_) {
      for (const auto& [tree, key] : txn->index_keys) {
        SMDB_RETURN_IF_ERROR(touch_key_(node, tree, key));
      }
    }
    for (RecordId rid : seen) {
      LineAddr line = records_->SlotLine(rid);
      SMDB_RETURN_IF_ERROR(machine_->GetLine(node, line));
      Status s = records_->WriteTag(node, rid, kTagNone);
      machine_->ReleaseLine(node, line);
      SMDB_RETURN_IF_ERROR(s);
    }
    std::set<std::pair<uint32_t, uint64_t>> keys(txn->index_keys.begin(),
                                                 txn->index_keys.end());
    ProfScope descent(prof_, ProfPhase::kIndexDescent);
    for (const auto& [tree, key] : keys) {
      (void)tree;
      Status s = index_->ClearTag(node, key);
      // The entry may have been physically removed already (a delete of
      // this transaction's own insert); nothing to clear then.
      if (!s.ok() && !s.IsNotFound()) return s;
    }
  }

  // 3. Strict 2PL: release all locks only now.
  std::set<uint64_t> names = txn->granted_locks;
  names.insert(txn->queued_locks.begin(), txn->queued_locks.end());
  for (uint64_t name : names) {
    SMDB_RETURN_IF_ERROR(locks_->Release(node, txn->id, name,
                                         &txn->last_lsn));
  }
  txn->granted_locks.clear();
  txn->queued_locks.clear();
  {
    std::lock_guard<std::mutex> lk(txn_mu_);
    waiting_for_.erase(txn->id);
  }

  txn->state = TxnState::kCommitted;
  if (deps_ != nullptr) deps_->OnTxnEnd(txn->id);
  AtomicInc(stats_.commits);
  const SimTime ack_ts = machine_->NodeClock(node);
  SMDB_TRACE(tracer_, {.kind = TraceEventKind::kTxnCommit,
                       .node = node,
                       .txn = txn->id,
                       .ts = ack_ts});
  SMDB_OBS(obs_, OnCommit(node, txn->id, ack_ts,
                          ack_ts >= txn->begin_ts ? ack_ts - txn->begin_ts
                                                  : 0));
  NotifyCommit(txn->id);
  return Status::Ok();
}

Status TxnManager::ResolvePendingCommits() {
  resolved_commit_ids_.clear();
  if (gc_ == nullptr) return Status::Ok();
  for (const auto& [node, pc] : gc_->PendingCommits()) {
    if (!log_->IsStable(node, pc.lsn)) continue;
    Transaction* txn = Find(pc.txn);
    gc_->DropCommit(pc.txn);
    if (txn == nullptr || txn->state != TxnState::kActive) continue;
    // The commit record is durable, so the transaction is committed — its
    // log decides — whether or not its node survived. We cannot run the
    // normal acknowledgement here: the node may be dead, and even on a
    // live node the machine is mid-crash (a line holding one of the
    // transaction's records may have migrated to the crashed node and not
    // be restored yet). Complete the bookkeeping only; RecoverLockTable
    // drops the LCB entries via resolved_commit_ids(), and leftover undo
    // tags are cleared lazily by the tag scan's stale-committed path
    // (identical to a crash landing between a synchronous commit's force
    // and its tag clears).
    txn->granted_locks.clear();
    txn->queued_locks.clear();
    {
      std::lock_guard<std::mutex> lk(txn_mu_);
      waiting_for_.erase(txn->id);
    }
    txn->state = TxnState::kCommitted;
    if (deps_ != nullptr) deps_->OnTxnEnd(txn->id);
    AtomicInc(stats_.commits);
    const SimTime ack_ts = machine_->NodeClock(node);
    SMDB_TRACE(tracer_, {.kind = TraceEventKind::kTxnCommit,
                         .node = node,
                         .txn = txn->id,
                         .ts = ack_ts,
                         .label = "resolved"});
    SMDB_OBS(obs_, OnCommit(node, txn->id, ack_ts,
                            ack_ts >= txn->begin_ts ? ack_ts - txn->begin_ts
                                                    : 0));
    NotifyCommit(txn->id);
    resolved_commit_ids_.insert(txn->id);
  }
  return Status::Ok();
}

bool TxnManager::TryFinishDurablePendingCommit(Transaction* txn) {
  if (gc_ == nullptr || txn->state != TxnState::kActive) return false;
  Lsn lsn = gc_->PendingCommitLsn(txn->id);
  if (lsn == kInvalidLsn) return false;
  if (!log_->IsStable(txn->node(), lsn)) return false;
  gc_->DropCommit(txn->id);
  return FinishCommit(txn).ok();
}

Status TxnManager::ApplyUndoUpdate(NodeId performer, const LogRecord& rec,
                                   UndoEngagement* eng) {
  const UpdatePayload& u = rec.update();
  assert(!u.is_clr);
  SMDB_ASSIGN_OR_RETURN(SlotImage cur, records_->ReadSlot(performer, u.rid));
  auto it = eng->records.find(u.rid);
  bool engaged = it != eng->records.end() && it->second == rec.txn;
  if (cur.usn == u.usn) engaged = true;
  if (!engaged) {
    // Either the update never reached the surviving copy, or a later
    // (committed or compensating) version legitimately overwrote it.
    return Status::Ok();
  }
  eng->records[u.rid] = rec.txn;
  // Install the before image as a compensation update on the performer's
  // log (redo-only; never undone).
  PageId page = u.rid.page;
  LineAddr header_line = records_->HeaderLine(page);
  LineAddr record_line = records_->SlotLine(u.rid);
  SMDB_RETURN_IF_ERROR(machine_->GetLine(performer, header_line));
  Status st = machine_->GetLine(performer, record_line);
  if (!st.ok()) {
    machine_->ReleaseLine(performer, header_line);
    return st;
  }
  uint64_t usn = usn_->Next();
  SlotImage img;
  img.usn = usn;
  img.tag = kTagNone;
  img.data = u.before;
  Status s = records_->WriteSlot(performer, u.rid, img);
  if (s.ok()) s = records_->WritePageLsn(performer, page, usn);
  if (s.ok()) {
    LogRecord clr;
    clr.type = LogRecordType::kUpdate;
    clr.txn = rec.txn;
    UpdatePayload cp;
    cp.rid = u.rid;
    cp.usn = usn;
    cp.before_usn = cur.usn;
    cp.before = cur.data;
    cp.after = u.before;
    cp.is_clr = true;
    clr.payload = std::move(cp);
    Lsn lsn = log_->Append(performer, std::move(clr));
    s = lbm_->OnUpdateLogged(performer, lsn, {record_line, header_line});
    wal_table_->NoteUpdate(page, performer, lsn);
    buffers_->MarkDirty(page);
  }
  machine_->ReleaseLine(performer, record_line);
  machine_->ReleaseLine(performer, header_line);
  return s;
}

Status TxnManager::ApplyUndoIndexOp(NodeId performer, const LogRecord& rec,
                                    UndoEngagement* eng) {
  const IndexOpPayload& op = rec.index_op();
  assert(!op.is_clr);
  SMDB_ASSIGN_OR_RETURN(auto entry, index_->GetEntry(performer, op.key));
  auto mkey = std::make_pair(op.tree_id, op.key);
  auto it = eng->keys.find(mkey);
  bool engaged = it != eng->keys.end() && it->second == rec.txn;
  if (entry.has_value() && entry->usn == op.usn) engaged = true;
  if (!engaged) return Status::Ok();
  eng->keys[mkey] = rec.txn;
  if (op.op == IndexOpPayload::Op::kInsert) {
    return index_->UndoInsert(performer, rec.txn, op.key, nullptr,
                              /*log_clr=*/true);
  }
  if (!entry.has_value()) return Status::Ok();  // nothing left to unmark
  Status s = index_->UndoDelete(performer, rec.txn, op.key, nullptr,
                                /*log_clr=*/true);
  // An engaged chain being *resumed* (recovery re-undo) may land on a delete
  // whose compensation already ran — the entry is live again and there is no
  // tombstone left. Skipping it continues the chain at the next older record.
  if (s.IsNotFound()) return Status::Ok();
  return s;
}

Status TxnManager::Abort(Transaction* txn) {
  assert(txn->state == TxnState::kActive);
  NodeId node = txn->node();

  if (gc_ != nullptr) {
    // Withdraw a pending group commit before undoing anything. Once the
    // commit record is durable the transaction is committed — its log
    // decides — and can no longer abort.
    Lsn pending = gc_->PendingCommitLsn(txn->id);
    if (pending != kInvalidLsn) {
      if (log_->IsStable(node, pending)) {
        return Status::InvalidArgument("cannot abort: commit already durable");
      }
      gc_->DropCommit(txn->id);
      // The withdrawn record leaves an LSN gap and txn->last_lsn keeps
      // pointing at it; both are harmless — redo is USN-guarded and no
      // recovery scan follows prev_lsn chains or requires contiguity.
      log_->AnnulVolatile(node, pending);
    }
  }

  // Collect this transaction's loggable operations from its own (intact)
  // log: durable prefix plus volatile tail.
  std::vector<LogRecord> ops;
  log_->ForEachAll(node, [&](const LogRecord& rec) {
    if (rec.txn != txn->id) return;
    if (rec.type == LogRecordType::kUpdate && !rec.update().is_clr) {
      ops.push_back(rec);
    } else if (rec.type == LogRecordType::kIndexOp &&
               !rec.index_op().is_clr) {
      ops.push_back(rec);
    }
  });
  // During on-demand recovery, discharge lazy obligations on every object
  // this rollback will touch, so the undo's before-images land on fully
  // recovered state.
  for (const LogRecord& rec : ops) {
    if (rec.type == LogRecordType::kUpdate) {
      if (touch_record_) {
        SMDB_RETURN_IF_ERROR(touch_record_(node, rec.update().rid));
      }
    } else if (touch_key_) {
      SMDB_RETURN_IF_ERROR(
          touch_key_(node, rec.index_op().tree_id, rec.index_op().key));
    }
  }
  UndoEngagement eng;
  for (auto it = ops.rbegin(); it != ops.rend(); ++it) {
    if (it->type == LogRecordType::kUpdate) {
      SMDB_RETURN_IF_ERROR(ApplyUndoUpdate(node, *it, &eng));
    } else {
      SMDB_RETURN_IF_ERROR(ApplyUndoIndexOp(node, *it, &eng));
    }
  }

  LogRecord rec;
  rec.type = LogRecordType::kAbort;
  rec.txn = txn->id;
  rec.prev_lsn = txn->last_lsn;
  rec.payload = AbortPayload{};
  txn->last_lsn = log_->Append(node, std::move(rec));

  std::set<uint64_t> names = txn->granted_locks;
  names.insert(txn->queued_locks.begin(), txn->queued_locks.end());
  for (uint64_t name : names) {
    SMDB_RETURN_IF_ERROR(locks_->Release(node, txn->id, name,
                                         &txn->last_lsn));
  }
  txn->granted_locks.clear();
  txn->queued_locks.clear();
  {
    std::lock_guard<std::mutex> lk(txn_mu_);
    waiting_for_.erase(txn->id);
  }

  txn->state = TxnState::kAborted;
  if (deps_ != nullptr) deps_->OnTxnEnd(txn->id);
  AtomicInc(stats_.aborts);
  const SimTime end_ts = machine_->NodeClock(node);
  SMDB_TRACE(tracer_, {.kind = TraceEventKind::kTxnAbort,
                       .node = txn->node(),
                       .txn = txn->id,
                       .ts = end_ts});
  SMDB_OBS(obs_, OnAbort(node, txn->id, end_ts,
                         end_ts >= txn->begin_ts ? end_ts - txn->begin_ts
                                                 : 0));
  NotifyAbort(txn->id);
  return Status::Ok();
}

Result<ParallelTxn*> TxnManager::BeginParallel(
    const std::vector<NodeId>& nodes) {
  if (nodes.empty()) return Status::InvalidArgument("no participant nodes");
  auto ptxn = std::make_unique<ParallelTxn>();
  for (NodeId n : nodes) {
    if (!machine_->NodeAlive(n)) {
      return Status::NodeFailed("participant node is down");
    }
    ptxn->branches.push_back(Begin(n));
  }
  std::vector<TxnId> ids;
  for (Transaction* t : ptxn->branches) ids.push_back(t->id);
  ParallelTxn* out = ptxn.get();
  {
    std::lock_guard<std::mutex> lk(txn_mu_);
    for (TxnId id : ids) groups_[id] = ids;
    parallel_.push_back(std::move(ptxn));
  }
  return out;
}

Status TxnManager::CommitParallel(ParallelTxn* ptxn) {
  // Phase 1: make every branch's updates durable.
  for (Transaction* t : ptxn->branches) {
    SMDB_RETURN_IF_ERROR(log_->Force(t->node(), t->node()));
  }
  // Phase 2: per-branch commits. Atomic with respect to crashes in the
  // simulator's execution model (operations never interleave with crash
  // injection); a real implementation would write a single group-commit
  // record through the coordinator. Always synchronous — the group-wide
  // atomicity argument relies on the per-branch commits being durable
  // within this one crash-atomic operation, so the coalescing pipeline is
  // bypassed here.
  for (Transaction* t : ptxn->branches) {
    SMDB_RETURN_IF_ERROR(CommitImpl(t, /*allow_group=*/false));
  }
  return Status::Ok();
}

Status TxnManager::AbortParallel(ParallelTxn* ptxn) {
  for (Transaction* t : ptxn->branches) {
    if (t->state == TxnState::kActive) {
      SMDB_RETURN_IF_ERROR(Abort(t));
    }
  }
  return Status::Ok();
}

const std::vector<TxnId>* TxnManager::GroupOf(TxnId branch) const {
  std::lock_guard<std::mutex> lk(txn_mu_);
  auto it = groups_.find(branch);
  return it == groups_.end() ? nullptr : &it->second;
}

void TxnManager::MarkCrashAnnulled(Transaction* txn) {
  if (txn->state != TxnState::kActive) return;
  if (gc_ != nullptr) gc_->DropCommit(txn->id);
  txn->state = TxnState::kAborted;
  txn->granted_locks.clear();
  txn->queued_locks.clear();
  {
    std::lock_guard<std::mutex> lk(txn_mu_);
    waiting_for_.erase(txn->id);
  }
  if (deps_ != nullptr) deps_->OnTxnEnd(txn->id);
  const SimTime end_ts = machine_->NodeClock(txn->node());
  SMDB_TRACE(tracer_, {.kind = TraceEventKind::kTxnAbort,
                       .node = txn->node(),
                       .txn = txn->id,
                       .ts = end_ts,
                       .label = "annulled"});
  SMDB_OBS(obs_, OnAbort(txn->node(), txn->id, end_ts,
                         end_ts >= txn->begin_ts ? end_ts - txn->begin_ts
                                                 : 0));
  NotifyAbort(txn->id);
}

}  // namespace smdb
