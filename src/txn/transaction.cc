#include "txn/transaction.h"

// Transaction and TxnObserver are header-only; this translation unit
// anchors the component in the build.
