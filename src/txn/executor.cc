#include "txn/executor.h"

#include <cassert>

#include "sim/machine.h"

namespace smdb {

NodeExecutor::NodeExecutor(TxnManager* tm, NodeId node, int max_retries)
    : tm_(tm), node_(node), max_retries_(max_retries) {}

Status NodeExecutor::ExecuteOp(const Op& op) {
  switch (op.kind) {
    case Op::Kind::kRead:
      return tm_->Read(txn_, op.rid).status();
    case Op::Kind::kUpdate:
      return tm_->Update(txn_, op.rid, op.value);
    case Op::Kind::kDirtyRead:
      return tm_->DirtyRead(node_, op.rid).status();
    case Op::Kind::kIndexInsert: {
      Status s = tm_->IndexInsert(txn_, op.key, op.rid);
      // A duplicate key is a benign no-op for workload purposes.
      if (s.code() == Status::Code::kInvalidArgument) return Status::Ok();
      return s;
    }
    case Op::Kind::kIndexDelete: {
      Status s = tm_->IndexDelete(txn_, op.key);
      if (s.IsNotFound()) return Status::Ok();
      return s;
    }
    case Op::Kind::kIndexLookup:
      return tm_->IndexLookup(txn_, op.key).status();
    case Op::Kind::kCommit:
      return tm_->Commit(txn_);
    case Op::Kind::kAbort:
      return tm_->Abort(txn_);
  }
  return Status::InvalidArgument("unknown op");
}

void NodeExecutor::FinishScript() {
  current_.reset();
  txn_ = nullptr;
  op_index_ = 0;
  retries_ = 0;
  phase_ = Phase::kIdle;
}

void NodeExecutor::HandleAbort(bool deadlock) {
  if (txn_ != nullptr && txn_->state == TxnState::kActive) {
    (void)tm_->Abort(txn_);
  }
  if (deadlock) {
    ++stats_.aborted_deadlock;
  } else {
    ++stats_.aborted_other;
  }
  if (retries_ < max_retries_) {
    // Retry the whole script as a fresh transaction.
    ++retries_;
    ++stats_.retries;
    txn_ = nullptr;
    op_index_ = 0;
    phase_ = Phase::kRunning;
  } else {
    FinishScript();
  }
}

bool NodeExecutor::Step() {
  if (phase_ == Phase::kIdle) {
    if (queue_.empty()) return false;
    current_ = std::move(queue_.front());
    queue_.pop_front();
    txn_ = nullptr;
    op_index_ = 0;
    retries_ = 0;
    phase_ = Phase::kRunning;
  }

  if (phase_ == Phase::kWaitingCommit && txn_ != nullptr &&
      txn_->state == TxnState::kCommitted) {
    // The pending group commit was completed externally (crash-time
    // resolution found its record durable) while we were polling.
    ++stats_.committed;
    FinishScript();
    return true;
  }

  if (txn_ != nullptr && txn_->state != TxnState::kActive) {
    // The transaction was annulled or force-aborted underneath us (crash
    // recovery, baseline protocols). Restart the script as a fresh
    // transaction.
    ++stats_.retries;
    txn_ = nullptr;
    op_index_ = 0;
    phase_ = Phase::kRunning;
  }

  if (txn_ == nullptr) {
    txn_ = tm_->Begin(node_);
  }

  if (phase_ == Phase::kWaitingLock) {
    auto res = tm_->PollLock(txn_, waiting_name_, waiting_mode_);
    if (!res.ok()) {
      HandleAbort(res.status().IsDeadlock());
      return true;
    }
    if (*res == LockResult::kQueued) {
      ++stats_.lock_waits;
      // Re-check for deadlocks that formed after we queued.
      return true;
    }
    phase_ = Phase::kRunning;
    // Fall through and re-execute the pending op (the lock is now held, so
    // it completes without queueing).
  }

  if (phase_ == Phase::kWaitingCommit) {
    Status s = tm_->PollCommit(txn_);
    if (s.ok()) {
      ++stats_.committed;
      FinishScript();
    } else if (s.IsBusy()) {
      ++stats_.commit_waits;
    } else {
      HandleAbort(false);
    }
    return true;
  }

  if (op_index_ >= current_->ops.size()) {
    // Implied commit.
    Status s = tm_->Commit(txn_);
    ++stats_.ops_executed;
    if (s.ok()) {
      ++stats_.committed;
      FinishScript();
    } else if (s.IsBusy()) {
      // Group commit pending: keep the script alive and poll.
      phase_ = Phase::kWaitingCommit;
      ++stats_.commit_waits;
    } else {
      HandleAbort(false);
    }
    return true;
  }

  const Op& op = current_->ops[op_index_];
  Status s = ExecuteOp(op);
  ++stats_.ops_executed;
  if (s.IsTryAgain()) {
    // Transient capacity rejection (e.g. full LCB waiter list): re-issue
    // the same operation on the next step.
    ++stats_.lock_waits;
    return true;
  }
  if (s.ok()) {
    if (op.kind == Op::Kind::kCommit) {
      ++stats_.committed;
      FinishScript();
    } else if (op.kind == Op::Kind::kAbort) {
      ++stats_.aborted_other;
      FinishScript();
    } else {
      ++op_index_;
    }
    return true;
  }
  if (s.IsBusy()) {
    if (op.kind == Op::Kind::kCommit) {
      // Group commit pending (not a lock conflict): poll the pipeline.
      phase_ = Phase::kWaitingCommit;
      ++stats_.commit_waits;
      return true;
    }
    // Lock queued; remember what we wait for and poll on later steps.
    phase_ = Phase::kWaitingLock;
    waiting_name_ = (op.kind == Op::Kind::kIndexInsert ||
                     op.kind == Op::Kind::kIndexDelete ||
                     op.kind == Op::Kind::kIndexLookup)
                        ? KeyLockName(tm_->index()->tree_id(), op.key)
                        : RecordLockName(op.rid);
    waiting_mode_ = (op.kind == Op::Kind::kRead ||
                     op.kind == Op::Kind::kIndexLookup)
                        ? LockMode::kShared
                        : LockMode::kExclusive;
    ++stats_.lock_waits;
    return true;
  }
  HandleAbort(s.IsDeadlock());
  return true;
}

Status NodeExecutor::Quiesce() {
  if (txn_ != nullptr && txn_->state == TxnState::kActive) {
    // A pending group commit whose record an unrelated force already made
    // durable is committed, not abortable — complete it; otherwise roll
    // back (withdrawing any still-volatile pending commit record).
    if (!tm_->TryFinishDurablePendingCommit(txn_)) {
      SMDB_RETURN_IF_ERROR(tm_->Abort(txn_));
    }
  }
  queue_.clear();
  FinishScript();
  return Status::Ok();
}

void NodeExecutor::OnCrash() {
  queue_.clear();
  FinishScript();
}

SystemExecutor::SystemExecutor(TxnManager* tm, Machine* machine,
                               uint64_t seed)
    : tm_(tm), machine_(machine), rng_(seed) {
  for (NodeId n = 0; n < machine_->num_nodes(); ++n) {
    executors_.push_back(std::make_unique<NodeExecutor>(tm_, n));
  }
}

bool SystemExecutor::AllIdle() const {
  for (NodeId n = 0; n < machine_->num_nodes(); ++n) {
    if (machine_->NodeAlive(n) && !executors_[n]->idle()) return false;
  }
  return true;
}

bool SystemExecutor::StepOnce() {
  // Collect live, non-idle nodes and pick one uniformly (seeded): a simple
  // but adversarial-enough interleaving for the crash experiments.
  std::vector<NodeId> ready;
  for (NodeId n = 0; n < machine_->num_nodes(); ++n) {
    if (machine_->NodeAlive(n) && !executors_[n]->idle()) ready.push_back(n);
  }
  if (ready.empty()) return false;
  NodeId pick = ready[rng_.Uniform(ready.size())];
  executors_[pick]->Step();
  ++steps_;
  return true;
}

void SystemExecutor::Run(uint64_t max_steps,
                         const std::function<void(uint64_t)>& on_step) {
  uint64_t executed = 0;
  while (executed < max_steps) {
    if (!StepOnce()) break;
    ++executed;
    if (on_step) on_step(steps_);
  }
}

ExecutorStats SystemExecutor::TotalStats() const {
  ExecutorStats total;
  for (const auto& ex : executors_) {
    total.committed += ex->stats().committed;
    total.aborted_deadlock += ex->stats().aborted_deadlock;
    total.aborted_other += ex->stats().aborted_other;
    total.retries += ex->stats().retries;
    total.ops_executed += ex->stats().ops_executed;
    total.lock_waits += ex->stats().lock_waits;
    total.commit_waits += ex->stats().commit_waits;
  }
  return total;
}

}  // namespace smdb
