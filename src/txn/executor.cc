#include "txn/executor.h"

#include <algorithm>
#include <cassert>
#include <set>

#include "core/lbm_policy.h"
#include "obs/trace.h"
#include "sim/machine.h"

namespace smdb {

NodeExecutor::NodeExecutor(TxnManager* tm, NodeId node, int max_retries)
    : tm_(tm), node_(node), max_retries_(max_retries) {}

Status NodeExecutor::ExecuteOp(const Op& op) {
  switch (op.kind) {
    case Op::Kind::kRead:
      return tm_->Read(txn_, op.rid).status();
    case Op::Kind::kUpdate:
      return tm_->Update(txn_, op.rid, op.value);
    case Op::Kind::kDirtyRead:
      return tm_->DirtyRead(node_, op.rid).status();
    case Op::Kind::kIndexInsert: {
      Status s = tm_->IndexInsert(txn_, op.key, op.rid);
      // A duplicate key is a benign no-op for workload purposes.
      if (s.code() == Status::Code::kInvalidArgument) return Status::Ok();
      return s;
    }
    case Op::Kind::kIndexDelete: {
      Status s = tm_->IndexDelete(txn_, op.key);
      if (s.IsNotFound()) return Status::Ok();
      return s;
    }
    case Op::Kind::kIndexLookup:
      return tm_->IndexLookup(txn_, op.key).status();
    case Op::Kind::kCommit:
      return tm_->Commit(txn_);
    case Op::Kind::kAbort:
      return tm_->Abort(txn_);
  }
  return Status::InvalidArgument("unknown op");
}

void NodeExecutor::FinishScript() {
  current_.reset();
  txn_ = nullptr;
  op_index_ = 0;
  retries_ = 0;
  phase_ = Phase::kIdle;
}

void NodeExecutor::HandleAbort(bool deadlock) {
  if (txn_ != nullptr && txn_->state == TxnState::kActive) {
    (void)tm_->Abort(txn_);
  }
  if (deadlock) {
    ++stats_.aborted_deadlock;
  } else {
    ++stats_.aborted_other;
  }
  if (retries_ < max_retries_) {
    // Retry the whole script as a fresh transaction.
    ++retries_;
    ++stats_.retries;
    txn_ = nullptr;
    op_index_ = 0;
    phase_ = Phase::kRunning;
  } else {
    FinishScript();
  }
}

bool NodeExecutor::Step() {
  if (phase_ == Phase::kIdle) {
    if (queue_.empty()) return false;
    current_ = std::move(queue_.front());
    queue_.pop_front();
    txn_ = nullptr;
    op_index_ = 0;
    retries_ = 0;
    phase_ = Phase::kRunning;
  }

  if (phase_ == Phase::kWaitingCommit && txn_ != nullptr &&
      txn_->state == TxnState::kCommitted) {
    // The pending group commit was completed externally (crash-time
    // resolution found its record durable) while we were polling.
    ++stats_.committed;
    FinishScript();
    return true;
  }

  if (txn_ != nullptr && txn_->state != TxnState::kActive) {
    // The transaction was annulled or force-aborted underneath us (crash
    // recovery, baseline protocols). Restart the script as a fresh
    // transaction.
    ++stats_.retries;
    txn_ = nullptr;
    op_index_ = 0;
    phase_ = Phase::kRunning;
  }

  if (txn_ == nullptr) {
    txn_ = tm_->Begin(node_);
  }

  if (phase_ == Phase::kWaitingLock) {
    auto res = tm_->PollLock(txn_, waiting_name_, waiting_mode_);
    if (!res.ok()) {
      HandleAbort(res.status().IsDeadlock());
      return true;
    }
    if (*res == LockResult::kQueued) {
      ++stats_.lock_waits;
      // Re-check for deadlocks that formed after we queued.
      return true;
    }
    phase_ = Phase::kRunning;
    // Fall through and re-execute the pending op (the lock is now held, so
    // it completes without queueing).
  }

  if (phase_ == Phase::kWaitingCommit) {
    Status s = tm_->PollCommit(txn_);
    if (s.ok()) {
      ++stats_.committed;
      FinishScript();
    } else if (s.IsBusy()) {
      ++stats_.commit_waits;
    } else {
      HandleAbort(false);
    }
    return true;
  }

  if (op_index_ >= current_->ops.size()) {
    // Implied commit.
    Status s = tm_->Commit(txn_);
    ++stats_.ops_executed;
    if (s.ok()) {
      ++stats_.committed;
      FinishScript();
    } else if (s.IsBusy()) {
      // Group commit pending: keep the script alive and poll.
      phase_ = Phase::kWaitingCommit;
      ++stats_.commit_waits;
    } else {
      HandleAbort(false);
    }
    return true;
  }

  const Op& op = current_->ops[op_index_];
  Status s = ExecuteOp(op);
  ++stats_.ops_executed;
  if (s.IsTryAgain()) {
    // Transient capacity rejection (e.g. full LCB waiter list): re-issue
    // the same operation on the next step.
    ++stats_.lock_waits;
    return true;
  }
  if (s.ok()) {
    if (op.kind == Op::Kind::kCommit) {
      ++stats_.committed;
      FinishScript();
    } else if (op.kind == Op::Kind::kAbort) {
      ++stats_.aborted_other;
      FinishScript();
    } else {
      ++op_index_;
    }
    return true;
  }
  if (s.IsBusy()) {
    if (op.kind == Op::Kind::kCommit) {
      // Group commit pending (not a lock conflict): poll the pipeline.
      phase_ = Phase::kWaitingCommit;
      ++stats_.commit_waits;
      return true;
    }
    // Lock queued; remember what we wait for and poll on later steps.
    phase_ = Phase::kWaitingLock;
    waiting_name_ = (op.kind == Op::Kind::kIndexInsert ||
                     op.kind == Op::Kind::kIndexDelete ||
                     op.kind == Op::Kind::kIndexLookup)
                        ? KeyLockName(tm_->index()->tree_id(), op.key)
                        : RecordLockName(op.rid);
    waiting_mode_ = (op.kind == Op::Kind::kRead ||
                     op.kind == Op::Kind::kIndexLookup)
                        ? LockMode::kShared
                        : LockMode::kExclusive;
    ++stats_.lock_waits;
    return true;
  }
  HandleAbort(s.IsDeadlock());
  return true;
}

NodeExecutor::StepPeek NodeExecutor::Peek() const {
  StepPeek p;
  const TxnScript* script = nullptr;
  size_t opi = op_index_;
  size_t queued_after = queue_.size();
  if (phase_ == Phase::kIdle) {
    if (queue_.empty()) return p;  // kNone: Step() would return false
    script = &queue_.front();
    opi = 0;
    --queued_after;
  } else {
    script = &*current_;
  }
  p.txn = txn_;
  p.completion_leaves_idle = queued_after == 0;
  using A = StepPeek::Action;
  // Mirror Step()'s dispatch order exactly.
  if (phase_ == Phase::kWaitingCommit) {
    p.action = A::kPollCommit;
    return p;
  }
  if (txn_ != nullptr && txn_->state != TxnState::kActive) {
    p.action = A::kRestart;
    return p;
  }
  if (phase_ == Phase::kWaitingLock) {
    p.action = A::kPollLock;
    return p;
  }
  if (opi >= script->ops.size()) {
    p.action = A::kImpliedCommit;
    return p;
  }
  p.action = A::kOp;
  p.op = &script->ops[opi];
  return p;
}

Status NodeExecutor::Quiesce() {
  if (txn_ != nullptr && txn_->state == TxnState::kActive) {
    // A pending group commit whose record an unrelated force already made
    // durable is committed, not abortable — complete it; otherwise roll
    // back (withdrawing any still-volatile pending commit record).
    if (!tm_->TryFinishDurablePendingCommit(txn_)) {
      SMDB_RETURN_IF_ERROR(tm_->Abort(txn_));
    }
  }
  queue_.clear();
  FinishScript();
  return Status::Ok();
}

void NodeExecutor::OnCrash() {
  queue_.clear();
  FinishScript();
}

SystemExecutor::SystemExecutor(TxnManager* tm, Machine* machine,
                               uint64_t seed, ExecutionConfig exec)
    : tm_(tm), machine_(machine), rng_(seed), exec_(exec) {
  if (exec_.execution_threads == 0) exec_.execution_threads = 1;
  if (exec_.execution_threads > 1) {
    pool_ = std::make_unique<ThreadPool>(exec_.execution_threads);
  }
  for (NodeId n = 0; n < machine_->num_nodes(); ++n) {
    executors_.push_back(std::make_unique<NodeExecutor>(tm_, n));
  }
}

bool SystemExecutor::AllIdle() const {
  for (NodeId n = 0; n < machine_->num_nodes(); ++n) {
    if (machine_->NodeAlive(n) && !executors_[n]->idle()) return false;
  }
  return true;
}

std::vector<NodeId> SystemExecutor::ReadyNodes() const {
  std::vector<NodeId> ready;
  for (NodeId n = 0; n < machine_->num_nodes(); ++n) {
    if (machine_->NodeAlive(n) && !executors_[n]->idle()) ready.push_back(n);
  }
  return ready;
}

bool SystemExecutor::StepOnce() {
  // Collect live, non-idle nodes and pick one uniformly (seeded): a simple
  // but adversarial-enough interleaving for the crash experiments.
  std::vector<NodeId> ready = ReadyNodes();
  if (ready.empty()) return false;
  NodeId pick = ready[rng_.Uniform(ready.size())];
  {
    ProfRoot root(prof_, ProfPhase::kStep);
    executors_[pick]->Step();
  }
  ++steps_;
  return true;
}

bool SystemExecutor::SerialGated() const {
  // Group commit coalesces forces across nodes on poll order, and
  // on-demand recovery's first-touch hooks can recursively discharge
  // obligations for arbitrary objects mid-operation: neither has a
  // plan-time footprint, so both force serial stepping.
  return tm_->group_commit_attached() || tm_->recovery_touch_set();
}

void SystemExecutor::FinishFootprint(PlannedPick* p) const {
  if (p->cls == PlannedPick::Class::kExclusive) return;
  LbmPolicy* lbm = tm_->lbm();
  for (LineAddr l : p->lines) {
    if (machine_->IsLineLost(l)) {
      // Touching a lost line ends in an error path (HandleAbort and
      // friends) the planner does not model: run it alone.
      p->cls = PlannedPick::Class::kExclusive;
      p->why = BatchRejectReason::kLostLine;
      p->lines.clear();
      p->line_cls.clear();
      p->forced.clear();
      return;
    }
    // Stable-Triggered LBM: migrating an active line forces the *active
    // updater's* log. Record the third-party logs this step may force so
    // batch admission can keep those nodes out of the batch.
    NodeId u = lbm->ActiveUpdater(l);
    if (u != kInvalidNode && u != p->node) p->forced.push_back(u);
  }
}

void SystemExecutor::PlanCommit(const Transaction* txn,
                                PlannedPick* p) const {
  using Outcome = LockPrediction::Outcome;
  if (txn == nullptr) {
    // Begin + commit of an empty script: no locks, no tags, only the own
    // node's log. Free.
    p->cls = PlannedPick::Class::kFree;
    return;
  }
  const RecoveryConfig& rc = tm_->config();
  PlannedPick::Class cls = PlannedPick::Class::kFree;
  if (rc.undo_tagging() && !txn->index_keys.empty()) {
    // Commit-time ClearTag walks the B+-tree: unknown tree lines, so the
    // pick needs the batch's single index token; under Stable-Triggered
    // LBM those unknown lines could force unknown third-party logs.
    if (rc.lbm == LbmKind::kStableTriggered) {
      p->why = BatchRejectReason::kStableTriggeredClearTag;
      return;
    }
    cls = PlannedPick::Class::kIndexToken;
  }
  // Releasing a lock that has waiters promotes them, and the promotion is
  // logged on the *promoted* transaction's node — a cross-node log append
  // the batch cannot license. Snoop every lock the commit will release.
  std::set<uint64_t> names = txn->granted_locks;
  names.insert(txn->queued_locks.begin(), txn->queued_locks.end());
  for (uint64_t name : names) {
    bool lost = false;
    if (!tm_->locks()->SnoopWaiters(name, &lost).empty() || lost) {
      p->why = lost ? BatchRejectReason::kLostLine
                    : BatchRejectReason::kWaiterPromotion;
      return;
    }
    LockPrediction pred =
        tm_->locks()->Predict(txn->id, name, LockMode::kShared);
    if (pred.outcome == Outcome::kLost ||
        pred.outcome == Outcome::kTryAgain) {
      p->why = pred.outcome == Outcome::kLost
                   ? BatchRejectReason::kLostLine
                   : BatchRejectReason::kLockNotGrantable;
      return;
    }
    p->lines.insert(p->lines.end(), pred.lines.begin(), pred.lines.end());
    p->line_cls.insert(p->line_cls.end(), pred.lines.size(),
                       PlannedPick::LineClass::kStripe);
  }
  if (rc.undo_tagging()) {
    // Tag clearing rewrites each updated record's slot line.
    for (RecordId rid : txn->updated_records) {
      p->lines.push_back(tm_->records()->SlotLine(rid));
      p->line_cls.push_back(PlannedPick::LineClass::kRecord);
    }
  }
  p->cls = cls;
}

SystemExecutor::PlannedPick SystemExecutor::PlanPick(NodeId node) const {
  using Outcome = LockPrediction::Outcome;
  PlannedPick p;
  p.node = node;
  NodeExecutor::StepPeek peek = executors_[node]->Peek();
  using A = NodeExecutor::StepPeek::Action;
  p.terminal = peek.completion_leaves_idle;
  switch (peek.action) {
    case A::kNone:
      return p;  // kExclusive (never drawn: ReadyNodes filters idle nodes)
    case A::kPollLock:
      p.why = BatchRejectReason::kPollLock;
      return p;  // kExclusive: polls and restarts run alone
    case A::kPollCommit:
      p.why = BatchRejectReason::kPollCommit;
      return p;
    case A::kRestart:
      p.why = BatchRejectReason::kRestart;
      return p;
    case A::kImpliedCommit:
      PlanCommit(peek.txn, &p);
      FinishFootprint(&p);
      return p;
    case A::kOp:
      break;
  }
  const Op& op = *peek.op;
  const Transaction* txn = peek.txn;
  const TxnId tid = txn != nullptr ? txn->id : kInvalidTxn;
  LockTable* locks = tm_->locks();
  RecordStore* records = tm_->records();

  switch (op.kind) {
    case Op::Kind::kDirtyRead:
      p.cls = PlannedPick::Class::kFree;
      p.terminal = false;  // advances op_index_, never completes the script
      p.lines.push_back(records->SlotLine(op.rid));
      p.line_cls.push_back(PlannedPick::LineClass::kRecord);
      break;
    case Op::Kind::kRead: {
      const uint64_t name = RecordLockName(op.rid);
      if (txn == nullptr || !txn->granted_locks.contains(name)) {
        // (A held lock's shared re-acquire skips the lock table entirely.)
        LockPrediction pred = locks->Predict(tid, name, LockMode::kShared);
        if (pred.outcome != Outcome::kGranted &&
            pred.outcome != Outcome::kHeld) {
          p.why = BatchRejectReason::kLockNotGrantable;
          return p;  // would queue / spin / abort: exclusive
        }
        p.lines = std::move(pred.lines);
        p.line_cls.assign(p.lines.size(), PlannedPick::LineClass::kStripe);
      }
      p.cls = PlannedPick::Class::kFree;
      p.terminal = false;
      p.lines.push_back(records->SlotLine(op.rid));
      p.line_cls.push_back(PlannedPick::LineClass::kRecord);
      break;
    }
    case Op::Kind::kUpdate: {
      if (op.value.size() != records->layout().record_data_size()) {
        p.why = BatchRejectReason::kInvalidArg;
        return p;  // InvalidArgument -> HandleAbort: exclusive
      }
      LockPrediction pred =
          locks->Predict(tid, RecordLockName(op.rid), LockMode::kExclusive);
      if (pred.outcome != Outcome::kGranted &&
          pred.outcome != Outcome::kHeld) {
        p.why = BatchRejectReason::kLockNotGrantable;
        return p;
      }
      p.cls = PlannedPick::Class::kRanked;
      p.ranked = true;  // DoUpdate allocates exactly one USN
      p.terminal = false;
      p.lines = std::move(pred.lines);
      p.line_cls.assign(p.lines.size(), PlannedPick::LineClass::kStripe);
      p.lines.push_back(records->SlotLine(op.rid));
      p.line_cls.push_back(PlannedPick::LineClass::kRecord);
      p.lines.push_back(records->HeaderLine(op.rid.page));
      p.line_cls.push_back(PlannedPick::LineClass::kRecord);
      break;
    }
    case Op::Kind::kIndexInsert:
    case Op::Kind::kIndexDelete:
    case Op::Kind::kIndexLookup: {
      // The tree's internal lines are unknown at plan time. Under
      // Stable-Triggered LBM they could force unknown third-party logs —
      // exclusive. Otherwise the single-token rule (at most one index
      // pick, last in the batch) keeps tree traffic single-threaded.
      if (tm_->config().lbm == LbmKind::kStableTriggered) {
        p.why = BatchRejectReason::kStableTriggeredIndex;
        return p;
      }
      const LockMode mode = op.kind == Op::Kind::kIndexLookup
                                ? LockMode::kShared
                                : LockMode::kExclusive;
      LockPrediction pred = locks->Predict(
          tid, KeyLockName(tm_->index()->tree_id(), op.key), mode);
      if (pred.outcome != Outcome::kGranted &&
          pred.outcome != Outcome::kHeld) {
        p.why = BatchRejectReason::kLockNotGrantable;
        return p;
      }
      p.cls = PlannedPick::Class::kIndexToken;
      p.terminal = false;
      p.multi_usn = op.kind != Op::Kind::kIndexLookup;
      p.lines = std::move(pred.lines);
      p.line_cls.assign(p.lines.size(), PlannedPick::LineClass::kStripe);
      break;
    }
    case Op::Kind::kCommit:
      PlanCommit(txn, &p);
      FinishFootprint(&p);
      return p;
    case Op::Kind::kAbort:
      p.why = BatchRejectReason::kAbortOp;
      return p;  // rollback walks the log: exclusive
  }
  FinishFootprint(&p);
  return p;
}

void SystemExecutor::ExecuteBatch(std::vector<PlannedPick>& batch,
                                  BatchRejectReason solo_reason,
                                  size_t footprint_lines) {
  const bool profiled = prof_ != nullptr && prof_->enabled();
  if (batch.size() == 1) {
    ++shard_stats_.solo_steps;
    if (profiled) {
      prof_->CountReject(solo_reason);
      prof_->RecordBatch(1, footprint_lines);
      SMDB_TRACE(tracer_,
                 {.kind = TraceEventKind::kBatchReject,
                  .node = batch[0].node,
                  .ts = machine_->NodeClock(batch[0].node),
                  .label = BatchRejectReasonName(solo_reason)});
    }
    {
      ProfRoot root(prof_, ProfPhase::kStep);
      executors_[batch[0].node]->Step();
    }
    ++steps_;
    return;
  }
  ++shard_stats_.batches;
  shard_stats_.batched_steps += batch.size();
  if (profiled) prof_->RecordBatch(batch.size(), footprint_lines);
  if (pool_ == nullptr) {
    // Profiled width 1: the planner ran at the canonical profile width but
    // there is no pool — run the members sequentially in draw order. That
    // is exactly the serial schedule, so natural USN allocation already
    // matches the ranked order and no rank window is needed.
    for (const PlannedPick& p : batch) {
      ProfRoot root(prof_, ProfPhase::kStep);
      executors_[p.node]->Step();
    }
    steps_ += batch.size();
    return;
  }
  UsnSource* usn = tm_->usn();
  // USN pre-assignment: ranked singles get their draw-order position in
  // the batch's window; the (single, last) multi-allocating pick draws
  // from the tail. Free picks allocate nothing.
  uint32_t singles = 0;
  std::vector<int> ranks(batch.size(), -1);
  for (size_t i = 0; i < batch.size(); ++i) {
    if (batch[i].ranked) ranks[i] = static_cast<int>(singles++);
  }
  for (size_t i = 0; i < batch.size(); ++i) {
    if (batch[i].multi_usn) ranks[i] = static_cast<int>(singles);
  }
  usn->BeginRankedBatch(singles);
  pool_->ParallelFor(batch.size(), [&](size_t i) {
    const PlannedPick& p = batch[i];
    if (ranks[i] >= 0) {
      usn->SetThreadRank(ranks[i], p.multi_usn);
    } else {
      usn->ClearThreadRank();
    }
    executors_[p.node]->Step();
    usn->ClearThreadRank();
  });
  usn->EndRankedBatch();
  steps_ += batch.size();
}

uint64_t SystemExecutor::RunBatches(uint64_t budget) {
  if (budget == 0) return 0;
  const uint32_t width = exec_.execution_threads;
  const bool profiled = prof_ != nullptr && prof_->enabled();
  if (SerialGated() || (!profiled && (pool_ == nullptr || width <= 1))) {
    // Serial gate (or unprofiled width 1): plain StepOnce loop. Under the
    // profiler every gated step is a solo step with the gate as its
    // reason, keeping the reason-sum == solo_steps invariant; without the
    // profiler the counters stay untouched (pre-profiler behaviour).
    const bool gated = profiled && SerialGated();
    const BatchRejectReason gate =
        tm_->group_commit_attached()
            ? BatchRejectReason::kSerialGatedGroupCommit
            : BatchRejectReason::kSerialGatedOnDemand;
    uint64_t executed = 0;
    while (executed < budget && StepOnce()) {
      ++executed;
      if (gated) {
        ++shard_stats_.solo_steps;
        prof_->CountReject(gate);
      }
    }
    return executed;
  }
  // Under the profiler, *plan* at the canonical width so batch composition
  // (and with it every reason count and occupancy bucket) is identical at
  // any execution_threads setting; the pool still executes with the
  // configured worker count (ParallelFor handles wider batches), and the
  // schedule-replay construction keeps the final state plan-width
  // invariant.
  const uint32_t plan_width =
      profiled ? std::max(width, std::max(1u, exec_.profile_plan_width))
               : width;
  uint64_t executed = 0;
  // A draw that conflicts with the open batch is *stashed*: the rng draw
  // is already consumed, so the node must be the first member of the next
  // batch (every pick admitted before it was non-terminal, so the ready
  // set it was drawn against is still the serial one; it is re-classified
  // fresh after the batch runs).
  std::optional<NodeId> stash;
  std::vector<PlannedPick> batch;
  while (executed < budget || stash.has_value()) {
    batch.clear();
    std::set<LineAddr> batch_lines;
    std::set<NodeId> batch_nodes;
    std::set<NodeId> batch_forced;
    bool has_token = false;
    // Why the batch closed — attributed as the solo reason when it closes
    // at size 1. Every break below names its cause; the full-width close
    // can only happen at size >= 2, so its reason is never consumed.
    BatchRejectReason close = BatchRejectReason::kUnclassified;
    while (true) {
      NodeId pick;
      if (stash.has_value()) {
        pick = *stash;
        stash.reset();
      } else {
        // Never draw past the budget: total draws (executed + open batch)
        // must stay <= budget so the rng stream stays aligned with the
        // serial schedule's one-draw-per-step discipline.
        if (executed + batch.size() >= budget) {
          close = BatchRejectReason::kBudgetBarrier;
          break;
        }
        std::vector<NodeId> ready = ReadyNodes();
        if (ready.empty()) {
          close = BatchRejectReason::kDrained;
          break;
        }
        pick = ready[rng_.Uniform(ready.size())];
      }
      if (batch_nodes.contains(pick)) {
        stash = pick;  // one pick per node per batch
        close = BatchRejectReason::kPerNodeCap;
        break;
      }
      PlannedPick p = PlanPick(pick);
      if (p.cls == PlannedPick::Class::kExclusive) {
        if (batch.empty()) {
          close = p.why;
          batch.push_back(std::move(p));  // runs alone on this thread
        } else {
          stash = pick;
          close = BatchRejectReason::kSuccessorExclusive;
        }
        break;
      }
      if (p.cls == PlannedPick::Class::kIndexToken && has_token) {
        stash = pick;
        close = BatchRejectReason::kIndexDescentCollision;
        break;
      }
      bool conflict = batch_forced.contains(pick);
      if (conflict) close = BatchRejectReason::kForcedLogCollision;
      if (!conflict) {
        for (size_t i = 0; i < p.lines.size(); ++i) {
          if (batch_lines.contains(p.lines[i])) {
            conflict = true;
            close = p.line_cls[i] == PlannedPick::LineClass::kStripe
                        ? BatchRejectReason::kLockStripeCollision
                        : BatchRejectReason::kRecordFootprintCollision;
            break;
          }
        }
      }
      if (!conflict) {
        for (NodeId f : p.forced) {
          if (batch_nodes.contains(f)) {
            conflict = true;
            close = BatchRejectReason::kForcedLogCollision;
            break;
          }
        }
      }
      if (conflict) {
        stash = pick;
        break;
      }
      batch_nodes.insert(pick);
      batch_lines.insert(p.lines.begin(), p.lines.end());
      batch_forced.insert(p.forced.begin(), p.forced.end());
      const bool token = p.cls == PlannedPick::Class::kIndexToken;
      const bool terminal = p.terminal;
      if (token) has_token = true;
      batch.push_back(std::move(p));
      // A token must stay the batch's last member (single-threaded tree
      // traffic + tail USNs); a terminal pick may shrink the ready set, so
      // later draws would diverge from the serial stream.
      if (token || terminal || batch.size() >= plan_width) {
        close = token ? BatchRejectReason::kIndexTokenClose
                      : (terminal ? BatchRejectReason::kTerminalClose
                                  : BatchRejectReason::kUnclassified);
        break;
      }
    }
    if (batch.empty()) break;  // every live executor is idle
    ExecuteBatch(batch, close, batch_lines.size());
    executed += batch.size();
  }
  return executed;
}

void SystemExecutor::Run(uint64_t max_steps,
                         const std::function<void(uint64_t)>& on_step) {
  uint64_t executed = 0;
  while (executed < max_steps) {
    if (!StepOnce()) break;
    ++executed;
    if (on_step) on_step(steps_);
  }
}

ExecutorStats SystemExecutor::TotalStats() const {
  ExecutorStats total;
  for (const auto& ex : executors_) {
    total.committed += ex->stats().committed;
    total.aborted_deadlock += ex->stats().aborted_deadlock;
    total.aborted_other += ex->stats().aborted_other;
    total.retries += ex->stats().retries;
    total.ops_executed += ex->stats().ops_executed;
    total.lock_waits += ex->stats().lock_waits;
    total.commit_waits += ex->stats().commit_waits;
  }
  return total;
}

}  // namespace smdb
