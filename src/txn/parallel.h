#ifndef SMDB_TXN_PARALLEL_H_
#define SMDB_TXN_PARALLEL_H_

#include <vector>

#include "common/types.h"
#include "txn/transaction.h"

namespace smdb {

/// A parallel transaction (section 9): one logical transaction whose work
/// is spread over several nodes, one branch per node. Each branch logs to
/// its own node's log and acquires locks under its own branch id; the
/// group commits and aborts atomically.
///
/// Recovery semantics (the paper's closing remark): "if one of the nodes
/// executing this transaction were to crash, the entire transaction must
/// be aborted" — the crash of any participant annuls every branch, using
/// the single-node machinery (crashed branches via LBM + restart recovery,
/// surviving branches via ordinary rollback on their intact logs).
struct ParallelTxn {
  /// Branch transactions, coordinator first. All active, committed or
  /// aborted together.
  std::vector<Transaction*> branches;

  Transaction* coordinator() const { return branches.front(); }

  /// The branch executing on `node`, or nullptr.
  Transaction* branch(NodeId node) const {
    for (Transaction* t : branches) {
      if (t->node() == node) return t;
    }
    return nullptr;
  }

  bool active() const {
    return coordinator()->state == TxnState::kActive;
  }
};

}  // namespace smdb

#endif  // SMDB_TXN_PARALLEL_H_
