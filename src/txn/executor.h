#ifndef SMDB_TXN_EXECUTOR_H_
#define SMDB_TXN_EXECUTOR_H_

#include <deque>
#include <functional>
#include <optional>
#include <vector>

#include "common/rng.h"
#include "common/status.h"
#include "common/types.h"
#include "txn/transaction.h"
#include "txn/txn_manager.h"

namespace smdb {

/// One operation in a transaction script.
struct Op {
  enum class Kind : uint8_t {
    kRead,
    kUpdate,
    kDirtyRead,
    kIndexInsert,
    kIndexDelete,
    kIndexLookup,
    kCommit,
    kAbort,
  };

  Kind kind = Kind::kCommit;
  RecordId rid;
  std::vector<uint8_t> value;
  uint64_t key = 0;

  static Op Read(RecordId r) { return {Kind::kRead, r, {}, 0}; }
  static Op Update(RecordId r, std::vector<uint8_t> v) {
    return {Kind::kUpdate, r, std::move(v), 0};
  }
  static Op DirtyRead(RecordId r) { return {Kind::kDirtyRead, r, {}, 0}; }
  static Op IndexInsert(uint64_t key, RecordId r) {
    return {Kind::kIndexInsert, r, {}, key};
  }
  static Op IndexDelete(uint64_t key) {
    return {Kind::kIndexDelete, {}, {}, key};
  }
  static Op IndexLookup(uint64_t key) {
    return {Kind::kIndexLookup, {}, {}, key};
  }
  static Op Commit() { return {Kind::kCommit, {}, {}, 0}; }
  static Op Abort() { return {Kind::kAbort, {}, {}, 0}; }
};

/// A transaction's operation list. The final op should be kCommit or
/// kAbort; a trailing commit is implied otherwise.
struct TxnScript {
  std::vector<Op> ops;
};

struct ExecutorStats {
  uint64_t committed = 0;
  uint64_t aborted_deadlock = 0;
  uint64_t aborted_other = 0;
  uint64_t retries = 0;
  uint64_t ops_executed = 0;
  uint64_t lock_waits = 0;
  /// Steps spent polling a pending group commit (Busy from Commit or
  /// PollCommit while the coalescing window is open).
  uint64_t commit_waits = 0;

  void Reset() { *this = ExecutorStats(); }
};

/// Cooperative executor for one node: runs its queue of transaction
/// scripts one operation per Step(). Lock conflicts (Busy) park the
/// executor polling the lock; deadlock aborts roll the script back and
/// retry it (bounded).
class NodeExecutor {
 public:
  NodeExecutor(TxnManager* tm, NodeId node, int max_retries = 8);

  void Enqueue(TxnScript script) { queue_.push_back(std::move(script)); }
  size_t pending() const { return queue_.size() + (current_ ? 1 : 0); }
  bool idle() const { return !current_ && queue_.empty(); }
  NodeId node() const { return node_; }

  /// Executes (at most) one operation. Returns false if idle.
  bool Step();

  /// Aborts the in-flight transaction and drops all queued scripts (used
  /// when this node's executor must stop, e.g. baseline whole-machine
  /// restarts). The in-flight transaction is rolled back via its log.
  Status Quiesce();

  /// Drops in-flight script state without rollback — the node crashed, its
  /// control state is gone; restart recovery owns the transaction's fate.
  void OnCrash();

  /// The transaction currently executing on this node, if any.
  Transaction* current_txn() { return txn_; }

  ExecutorStats& stats() { return stats_; }

 private:
  enum class Phase : uint8_t { kIdle, kRunning, kWaitingLock, kWaitingCommit };

  Status ExecuteOp(const Op& op);
  void FinishScript();
  void HandleAbort(bool deadlock);

  TxnManager* tm_;
  NodeId node_;
  int max_retries_;
  std::deque<TxnScript> queue_;
  std::optional<TxnScript> current_;
  Transaction* txn_ = nullptr;
  size_t op_index_ = 0;
  int retries_ = 0;
  Phase phase_ = Phase::kIdle;
  uint64_t waiting_name_ = 0;
  LockMode waiting_mode_ = LockMode::kNone;
  ExecutorStats stats_;
};

/// Drives all node executors with a deterministic seeded interleaving and
/// invokes a per-step callback (the crash scheduler hook).
class SystemExecutor {
 public:
  SystemExecutor(TxnManager* tm, Machine* machine, uint64_t seed);

  NodeExecutor& executor(NodeId node) { return *executors_[node]; }

  /// Runs until every live node's executor is idle or `max_steps` global
  /// steps have executed. `on_step` (optional) is called after each global
  /// step with the step number.
  void Run(uint64_t max_steps = ~0ULL,
           const std::function<void(uint64_t)>& on_step = nullptr);

  /// Executes exactly one global step (one op on one randomly chosen live,
  /// non-idle node). Returns false if all executors are idle.
  bool StepOnce();

  bool AllIdle() const;
  uint64_t steps() const { return steps_; }

  ExecutorStats TotalStats() const;

 private:
  TxnManager* tm_;
  Machine* machine_;
  Rng rng_;
  std::vector<std::unique_ptr<NodeExecutor>> executors_;
  uint64_t steps_ = 0;
};

}  // namespace smdb

#endif  // SMDB_TXN_EXECUTOR_H_
