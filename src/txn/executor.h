#ifndef SMDB_TXN_EXECUTOR_H_
#define SMDB_TXN_EXECUTOR_H_

#include <deque>
#include <functional>
#include <memory>
#include <optional>
#include <vector>

#include "common/rng.h"
#include "common/status.h"
#include "common/thread_pool.h"
#include "common/types.h"
#include "core/protocol.h"
#include "obs/profiler.h"
#include "txn/transaction.h"
#include "txn/txn_manager.h"

namespace smdb {

class TraceRecorder;

/// One operation in a transaction script.
struct Op {
  enum class Kind : uint8_t {
    kRead,
    kUpdate,
    kDirtyRead,
    kIndexInsert,
    kIndexDelete,
    kIndexLookup,
    kCommit,
    kAbort,
  };

  Kind kind = Kind::kCommit;
  RecordId rid;
  std::vector<uint8_t> value;
  uint64_t key = 0;

  static Op Read(RecordId r) { return {Kind::kRead, r, {}, 0}; }
  static Op Update(RecordId r, std::vector<uint8_t> v) {
    return {Kind::kUpdate, r, std::move(v), 0};
  }
  static Op DirtyRead(RecordId r) { return {Kind::kDirtyRead, r, {}, 0}; }
  static Op IndexInsert(uint64_t key, RecordId r) {
    return {Kind::kIndexInsert, r, {}, key};
  }
  static Op IndexDelete(uint64_t key) {
    return {Kind::kIndexDelete, {}, {}, key};
  }
  static Op IndexLookup(uint64_t key) {
    return {Kind::kIndexLookup, {}, {}, key};
  }
  static Op Commit() { return {Kind::kCommit, {}, {}, 0}; }
  static Op Abort() { return {Kind::kAbort, {}, {}, 0}; }
};

/// A transaction's operation list. The final op should be kCommit or
/// kAbort; a trailing commit is implied otherwise.
struct TxnScript {
  std::vector<Op> ops;
};

struct ExecutorStats {
  uint64_t committed = 0;
  uint64_t aborted_deadlock = 0;
  uint64_t aborted_other = 0;
  uint64_t retries = 0;
  uint64_t ops_executed = 0;
  uint64_t lock_waits = 0;
  /// Steps spent polling a pending group commit (Busy from Commit or
  /// PollCommit while the coalescing window is open).
  uint64_t commit_waits = 0;

  void Reset() { *this = ExecutorStats(); }
};

/// Cooperative executor for one node: runs its queue of transaction
/// scripts one operation per Step(). Lock conflicts (Busy) park the
/// executor polling the lock; deadlock aborts roll the script back and
/// retry it (bounded).
class NodeExecutor {
 public:
  NodeExecutor(TxnManager* tm, NodeId node, int max_retries = 8);

  void Enqueue(TxnScript script) { queue_.push_back(std::move(script)); }
  size_t pending() const { return queue_.size() + (current_ ? 1 : 0); }
  bool idle() const { return !current_ && queue_.empty(); }
  NodeId node() const { return node_; }

  /// Executes (at most) one operation. Returns false if idle.
  bool Step();

  /// Aborts the in-flight transaction and drops all queued scripts (used
  /// when this node's executor must stop, e.g. baseline whole-machine
  /// restarts). The in-flight transaction is rolled back via its log.
  Status Quiesce();

  /// Drops in-flight script state without rollback — the node crashed, its
  /// control state is gone; restart recovery owns the transaction's fate.
  void OnCrash();

  /// The transaction currently executing on this node, if any.
  Transaction* current_txn() { return txn_; }

  ExecutorStats& stats() { return stats_; }

  /// Plan-time preview of what the next Step() would do (no state change,
  /// no machine cost). The sharded SystemExecutor classifies the step from
  /// this — anything it cannot prove batchable runs alone, serially.
  struct StepPeek {
    enum class Action : uint8_t {
      kNone,           ///< idle and queue empty: Step() returns false
      kPollLock,       ///< waiting on a queued lock (PollLock)
      kPollCommit,     ///< waiting on a pending group commit (PollCommit)
      kRestart,        ///< txn annulled underneath us: restart + first op
      kOp,             ///< execute `op` (Begin first when txn is null)
      kImpliedCommit,  ///< past the last op: implicit Commit
    };
    Action action = Action::kNone;
    const Op* op = nullptr;
    /// The in-flight transaction; null = Step() begins a fresh one.
    Transaction* txn = nullptr;
    /// Completing the current script would leave this executor idle (the
    /// ready set shrinks) — such a step must close its batch.
    bool completion_leaves_idle = false;
  };
  StepPeek Peek() const;

 private:
  enum class Phase : uint8_t { kIdle, kRunning, kWaitingLock, kWaitingCommit };

  Status ExecuteOp(const Op& op);
  void FinishScript();
  void HandleAbort(bool deadlock);

  TxnManager* tm_;
  NodeId node_;
  int max_retries_;
  std::deque<TxnScript> queue_;
  std::optional<TxnScript> current_;
  Transaction* txn_ = nullptr;
  size_t op_index_ = 0;
  int retries_ = 0;
  Phase phase_ = Phase::kIdle;
  uint64_t waiting_name_ = 0;
  LockMode waiting_mode_ = LockMode::kNone;
  ExecutorStats stats_;
};

/// Drives all node executors with a deterministic seeded interleaving and
/// invokes a per-step callback (the crash scheduler hook).
///
/// With ExecutionConfig::execution_threads > 1 the executor *shards* that
/// same schedule: it keeps drawing picks from the identical seeded stream,
/// groups consecutive picks whose memory footprints are provably disjoint
/// into a batch (at most one pick per node), and runs the batch on a
/// work-stealing ThreadPool. Any pick it cannot prove batchable — lock
/// conflicts, polls, aborts, structural index work under Stable-Triggered
/// LBM — executes alone on the caller thread, exactly as before. USNs
/// drawn inside a batch are pre-assigned in draw order (UsnSource ranked
/// batches), so the final database state is width-invariant: the
/// differential tests assert digest equality against width 1 for every
/// protocol.
class SystemExecutor {
 public:
  SystemExecutor(TxnManager* tm, Machine* machine, uint64_t seed,
                 ExecutionConfig exec = {});

  NodeExecutor& executor(NodeId node) { return *executors_[node]; }

  /// Runs until every live node's executor is idle or `max_steps` global
  /// steps have executed. `on_step` (optional) is called after each global
  /// step with the step number.
  void Run(uint64_t max_steps = ~0ULL,
           const std::function<void(uint64_t)>& on_step = nullptr);

  /// Executes exactly one global step (one op on one randomly chosen live,
  /// non-idle node). Returns false if all executors are idle.
  bool StepOnce();

  /// Sharded drive: executes up to `budget` global steps of the same
  /// seeded schedule, batching footprint-disjoint picks across the thread
  /// pool. Returns the number of steps executed (< budget only when every
  /// executor went idle). Width 1 (or a serial gate: group commit,
  /// on-demand touch hooks) degenerates to a StepOnce loop.
  uint64_t RunBatches(uint64_t budget);

  /// Width actually used for batching (1 = serial).
  uint32_t execution_threads() const { return exec_.execution_threads; }

  /// Optional profiler: reject-reason attribution + occupancy histograms +
  /// phase roots around solo steps. When enabled, batch *planning* runs at
  /// the canonical profile_plan_width so counts are width-comparable; the
  /// executed schedule (and final state) is unchanged.
  void set_profiler(Profiler* prof) { prof_ = prof; }
  /// Optional tracer for kBatchReject instants on solo steps.
  void set_tracer(TraceRecorder* tracer) { tracer_ = tracer; }

  /// Occupancy accounting for the sharded path (all zero at width 1).
  struct ShardStats {
    uint64_t batches = 0;        ///< multi-pick batches dispatched
    uint64_t batched_steps = 0;  ///< steps run inside multi-pick batches
    uint64_t solo_steps = 0;     ///< steps run alone (exclusive / batch of 1)
  };
  const ShardStats& shard_stats() const { return shard_stats_; }

  bool AllIdle() const;
  uint64_t steps() const { return steps_; }

  ExecutorStats TotalStats() const;

 private:
  /// One planned (drawn but not yet executed) pick.
  struct PlannedPick {
    enum class Class : uint8_t {
      /// Allocates no USN, provably grantable, known footprint.
      kFree,
      /// As kFree but allocates exactly one USN (an update): gets a serial
      /// rank in the UsnSource's pre-assigned batch window.
      kRanked,
      /// Touches the B+-tree (index op or tag-clearing commit): unknown
      /// extra lines inside the tree, so at most one per batch, always the
      /// last member (it draws any USNs it needs from the window's tail).
      kIndexToken,
      /// Cannot be proven batchable: runs alone, serially.
      kExclusive,
    };
    /// Footprint-line provenance, parallel to `lines` — when an incoming
    /// pick's line collides with the open batch, the colliding line's
    /// class names the reject reason (lock-stripe vs record-footprint).
    enum class LineClass : uint8_t {
      kStripe,  ///< LCB probe-window line (lock-table metadata)
      kRecord,  ///< record slot / page-header line
    };
    NodeId node = 0;
    Class cls = Class::kExclusive;
    /// Why a kExclusive pick cannot batch (profiler attribution).
    BatchRejectReason why = BatchRejectReason::kUnclassified;
    /// May complete a script and idle the executor: must close the batch
    /// (later draws would see a changed ready set).
    bool terminal = false;
    /// Every cache line the step may touch (LCB probe windows, slot and
    /// header lines). Batch admission requires pairwise disjointness.
    std::vector<LineAddr> lines;
    /// Class of each entry in `lines` (same order, same length).
    std::vector<LineClass> line_cls;
    /// Third-party nodes whose logs this step may force (Stable-Triggered
    /// LBM migration triggers). Such a node must not itself be executing
    /// in the batch.
    std::vector<NodeId> forced;
    /// True when the step allocates exactly one USN.
    bool ranked = false;
    /// True when the step may allocate several USNs (index structural ops).
    bool multi_usn = false;
  };

  /// Classifies the next step of `node` from snooped state only.
  PlannedPick PlanPick(NodeId node) const;
  /// Commit classification shared by explicit and implied commits.
  void PlanCommit(const Transaction* txn, PlannedPick* p) const;
  /// Lost-line screen + Stable-Triggered forced-log discovery over
  /// p->lines; downgrades to kExclusive when a line is lost.
  void FinishFootprint(PlannedPick* p) const;

  /// Executes one planned batch (size >= 1) and bumps steps_.
  /// `solo_reason` is the close reason attributed when the batch has
  /// exactly one member; `footprint_lines` is the batch's distinct
  /// footprint-line count (occupancy histograms).
  void ExecuteBatch(std::vector<PlannedPick>& batch,
                    BatchRejectReason solo_reason, size_t footprint_lines);

  /// True when batching must be bypassed regardless of width.
  bool SerialGated() const;

  std::vector<NodeId> ReadyNodes() const;

  TxnManager* tm_;
  Machine* machine_;
  Rng rng_;
  ExecutionConfig exec_;
  std::unique_ptr<ThreadPool> pool_;  // null at width 1
  std::vector<std::unique_ptr<NodeExecutor>> executors_;
  uint64_t steps_ = 0;
  ShardStats shard_stats_;
  Profiler* prof_ = nullptr;
  TraceRecorder* tracer_ = nullptr;
};

}  // namespace smdb

#endif  // SMDB_TXN_EXECUTOR_H_
