#ifndef SMDB_TXN_TXN_MANAGER_H_
#define SMDB_TXN_TXN_MANAGER_H_

#include <map>
#include <memory>
#include <mutex>
#include <optional>
#include <set>
#include <vector>

#include "btree/btree.h"
#include "common/atomic_util.h"
#include "common/status.h"
#include "common/types.h"
#include "core/dependency_tracker.h"
#include "core/lbm_policy.h"
#include "core/protocol.h"
#include "db/buffer_manager.h"
#include "db/record_store.h"
#include "lockmgr/lock_table.h"
#include "txn/parallel.h"
#include "txn/transaction.h"
#include "wal/log_manager.h"

namespace smdb {

class Machine;
class GroupCommitPipeline;
class TraceRecorder;
class Observatory;

struct TxnManagerStats {
  uint64_t begins = 0;
  uint64_t commits = 0;
  uint64_t aborts = 0;
  uint64_t deadlock_aborts = 0;
  uint64_t updates = 0;
  uint64_t reads = 0;
  uint64_t undo_tag_writes = 0;  // Table 1 row 3 accounting

  void Reset() { *this = TxnManagerStats(); }

  /// Visits every field as ("name", value) — the metrics registry's
  /// source of truth for this struct.
  template <typename Fn>
  void ForEachCounter(Fn&& fn) const {
    fn("begins", begins);
    fn("commits", commits);
    fn("aborts", aborts);
    fn("deadlock_aborts", deadlock_aborts);
    fn("updates", updates);
    fn("reads", reads);
    fn("undo_tag_writes", undo_tag_writes);
  }
};

/// Transaction manager: begin/commit/abort plus the record and index
/// operations, orchestrating locking (strict 2PL), the line-lock update
/// protocol, logging (via the configured LBM policy), undo tagging, the
/// ordered-update-logging rule and WAL bookkeeping (sections 2, 4, 5, 6).
class TxnManager {
 public:
  TxnManager(Machine* machine, LogManager* log, LockTable* locks,
             RecordStore* records, BTree* index, WalTable* wal_table,
             BufferManager* buffers, LbmPolicy* lbm, UsnSource* usn,
             DependencyTracker* deps, RecoveryConfig config);

  // ----------------------------------------------------------------------
  // Lifecycle.

  Transaction* Begin(NodeId node);

  /// Commits: forces the commit record, clears undo tags, releases locks.
  /// With the group-commit pipeline attached, the commit record is
  /// enqueued instead of forced; Busy means the transaction is *pending* —
  /// appended but not yet durable — and the caller must PollCommit until
  /// Ok (acknowledged) or the transaction is annulled by a crash.
  Status Commit(Transaction* txn);

  /// Polls a pending group commit: forces when the coalescing window has
  /// expired, acknowledges (tags, locks, state, observers) once a covering
  /// force has landed. Ok = committed; Busy = still pending.
  Status PollCommit(Transaction* txn);

  /// Attaches the group-commit pipeline (Database wiring; null = classic
  /// synchronous commit forces).
  void SetGroupCommit(GroupCommitPipeline* gc) { gc_ = gc; }

  /// Crash-time resolution of the pipeline, run after the crash hooks and
  /// before restart recovery classifies transactions: every pending commit
  /// whose covering force landed (by the size bound, the WAL flush gate, a
  /// checkpoint, or an LBM force) is durably committed even though no one
  /// acknowledged it yet. Each gets a lightweight completion (state +
  /// observers; no machine operations — the machine is mid-crash), with
  /// locks dropped by RecoverLockTable via resolved_commit_ids() and
  /// leftover undo tags cleared by the tag scan's stale-committed path.
  Status ResolvePendingCommits();

  /// If `txn` has a pending commit whose record became durable (e.g. a
  /// recovery-pass force covered it mid-recovery), completes the commit
  /// and returns true: the transaction can no longer be aborted.
  bool TryFinishDurablePendingCommit(Transaction* txn);

  /// Transactions completed posthumously by the last ResolvePendingCommits
  /// (dead-node lightweight completions whose surviving LCB entries the
  /// next RecoverLockTable pass must drop).
  const std::set<TxnId>& resolved_commit_ids() const {
    return resolved_commit_ids_;
  }

  /// Rolls back using this node's (intact) log, writing CLRs; releases
  /// locks.
  Status Abort(Transaction* txn);

  // ----------------------------------------------------------------------
  // Parallel transactions (section 9 extension): one logical transaction
  // with a branch per participating node.

  /// Begins a parallel transaction over `nodes` (coordinator first).
  Result<ParallelTxn*> BeginParallel(const std::vector<NodeId>& nodes);

  /// Group commit: every branch's log is forced, then per-branch commit
  /// records are written and forced (atomic in the simulator's execution
  /// model, which never interleaves a crash with a single operation).
  Status CommitParallel(ParallelTxn* ptxn);

  /// Group rollback of all branches.
  Status AbortParallel(ParallelTxn* ptxn);

  /// Sibling branches of `branch` (including itself) if it belongs to a
  /// parallel transaction, else nullptr. Restart recovery uses this to
  /// annul the whole group when one participant's node crashes.
  const std::vector<TxnId>* GroupOf(TxnId branch) const;

  // ----------------------------------------------------------------------
  // Operations. Lock conflicts return Busy (caller polls PollLock);
  // deadlocks return Deadlock (caller must Abort the transaction).

  /// Locked read at the given isolation degree (serializable by default;
  /// cursor stability releases the S lock right after the read; browse
  /// degrades to an unlocked DirtyRead).
  Result<std::vector<uint8_t>> Read(
      Transaction* txn, RecordId rid,
      Isolation isolation = Isolation::kSerializable);
  Status Update(Transaction* txn, RecordId rid,
                const std::vector<uint8_t>& value);

  /// Unlocked read (browse/chaos isolation, section 3.2): may observe
  /// uncommitted data and replicate the line (history H_wr).
  Result<std::vector<uint8_t>> DirtyRead(NodeId node, RecordId rid);

  Status IndexInsert(Transaction* txn, uint64_t key, RecordId value);
  Status IndexDelete(Transaction* txn, uint64_t key);
  Result<std::optional<RecordId>> IndexLookup(Transaction* txn, uint64_t key);

  /// Polls a queued lock; kGranted when the wait is over.
  Result<LockResult> PollLock(Transaction* txn, uint64_t name, LockMode mode);

  // ----------------------------------------------------------------------
  // Tables and recovery interface.

  Transaction* Find(TxnId id);
  std::vector<Transaction*> ActiveOn(NodeId node);
  std::vector<Transaction*> ActiveAll();

  /// Iterates every transaction ever begun, in id order (state digests and
  /// verification oracles; no machine cost).
  void ForEachTxn(const std::function<void(const Transaction&)>& fn) const {
    std::lock_guard<std::mutex> lk(txn_mu_);
    for (const auto& [id, t] : txns_) fn(*t);
  }

  /// Marks a crash-annulled transaction aborted after recovery has undone
  /// its effects (notifies the observer).
  void MarkCrashAnnulled(Transaction* txn);

  /// Tracks which undo chains are engaged during one undo pass. Records
  /// (and index keys) are undone in reverse USN order; a chain engages when
  /// the current version is exactly the one a record's log entry produced
  /// (nothing later exists), and stays engaged for lower-USN entries of the
  /// same transaction (our own CLRs raise the version as we unwind). An
  /// entry that neither matches nor is engaged is skipped: either the
  /// update never reached the surviving copy, or a later transaction
  /// legitimately overwrote it (the victim had already finished).
  struct UndoEngagement {
    std::map<RecordId, TxnId> records;
    std::map<std::pair<uint32_t, uint64_t>, TxnId> keys;
  };

  /// Applies the undo of one update log record (install the before image,
  /// write a CLR on `performer`'s log). Used by Abort and by restart
  /// recovery.
  Status ApplyUndoUpdate(NodeId performer, const LogRecord& rec,
                         UndoEngagement* eng);

  /// Applies the undo of one index-op log record.
  Status ApplyUndoIndexOp(NodeId performer, const LogRecord& rec,
                          UndoEngagement* eng);

  void AddObserver(TxnObserver* obs) { observers_.push_back(obs); }

  /// On-demand recovery's first-touch hooks (Database wiring; unset = no
  /// hooks, zero overhead). When set, every transactional access to a
  /// record / index key calls the hook *before* touching the object, so
  /// lazy recovery can discharge the object's pending obligations first.
  using TouchRecordFn = std::function<Status(NodeId, RecordId)>;
  using TouchKeyFn = std::function<Status(NodeId, uint32_t, uint64_t)>;
  void SetRecoveryTouch(TouchRecordFn rec, TouchKeyFn key) {
    touch_record_ = std::move(rec);
    touch_key_ = std::move(key);
  }

  TxnManagerStats& stats() { return stats_; }
  const RecoveryConfig& config() const { return config_; }

  /// True when the group-commit pipeline is attached (Commit may return
  /// Busy and commits coalesce across nodes — the sharded executor falls
  /// back to serial stepping to keep the pipeline's timing serial).
  bool group_commit_attached() const { return gc_ != nullptr; }
  /// True when on-demand recovery's first-touch hooks are installed (any
  /// operation may recursively discharge recovery obligations — serial
  /// only).
  bool recovery_touch_set() const {
    return static_cast<bool>(touch_record_) || static_cast<bool>(touch_key_);
  }

  /// Optional event tracer (owned by Database); null = no tracing.
  void set_tracer(TraceRecorder* tracer) { tracer_ = tracer; }
  /// Optional latency observatory (owned by Database); null = none.
  void set_observatory(Observatory* obs) { obs_ = obs; }
  /// Optional profiler (owned by Database); null = none. Slot reads and
  /// the update protocol attribute to the apply phase, index traversals
  /// (including commit-time tag clears) to index_descent.
  void set_profiler(Profiler* prof) { prof_ = prof; }
  LbmPolicy* lbm() { return lbm_; }
  UsnSource* usn() { return usn_; }
  RecordStore* records() { return records_; }
  BTree* index() { return index_; }
  LockTable* locks() { return locks_; }

 private:
  /// Acquires `name` in `mode` for `txn`. Busy when queued, Deadlock when
  /// queueing would close a waits-for cycle.
  Status AcquireLock(Transaction* txn, uint64_t name, LockMode mode);

  /// True if txn waiting for `name` would deadlock.
  bool WouldDeadlock(Transaction* txn, uint64_t name);

  /// Appends the commit record; with `allow_group` and a pipeline
  /// attached, enqueues it (Busy until durable), else forces synchronously
  /// and finishes.
  Status CommitImpl(Transaction* txn, bool allow_group);

  /// Acknowledgement half of a commit whose record is already durable:
  /// clears undo tags, releases locks, transitions state, notifies.
  Status FinishCommit(Transaction* txn);

  /// The in-place update protocol of sections 5.1/6: line locks on the
  /// Page-LSN line and the record line, write, log, LBM hook, release.
  Status DoUpdate(Transaction* txn, RecordId rid,
                  const std::vector<uint8_t>& value, bool is_clr,
                  uint64_t expected_usn);

  void NotifyCommit(TxnId id);
  void NotifyAbort(TxnId id);

  Machine* machine_;
  LogManager* log_;
  LockTable* locks_;
  RecordStore* records_;
  BTree* index_;
  WalTable* wal_table_;
  BufferManager* buffers_;
  LbmPolicy* lbm_;
  UsnSource* usn_;
  DependencyTracker* deps_;  // may be null
  GroupCommitPipeline* gc_ = nullptr;  // may be null (group commit off)
  TraceRecorder* tracer_ = nullptr;    // may be null (tracing off)
  Observatory* obs_ = nullptr;         // may be null (observatory off)
  Profiler* prof_ = nullptr;           // may be null (profiler off)
  RecoveryConfig config_;
  std::set<TxnId> resolved_commit_ids_;
  TouchRecordFn touch_record_;  // unset when on-demand recovery is off
  TouchKeyFn touch_key_;

  /// Guards txns_ / waiting_for_ / parallel_ / groups_ structure: Begin
  /// inserts and lock-wait edges are mutated from concurrent execution
  /// workers. Transaction objects themselves are touched only by their own
  /// node's pick (footprint batching admits at most one pick per node), so
  /// the latch covers map structure, never Transaction fields. Ordering:
  /// txn_mu_ may be held across LockTable calls (WouldDeadlock's DFS), so
  /// the lock-table stripe latches nest inside it, never the reverse.
  mutable std::mutex txn_mu_;
  std::map<TxnId, std::unique_ptr<Transaction>> txns_;
  std::map<TxnId, uint64_t> waiting_for_;  // txn -> lock name being awaited
  std::vector<std::unique_ptr<ParallelTxn>> parallel_;
  std::map<TxnId, std::vector<TxnId>> groups_;  // branch -> sibling ids
  std::vector<uint64_t> next_seq_;         // per-node txn sequence numbers
  uint64_t begin_counter_ = 0;             // bumped via AtomicIncFetch
  std::vector<TxnObserver*> observers_;
  TxnManagerStats stats_;
};

}  // namespace smdb

#endif  // SMDB_TXN_TXN_MANAGER_H_
