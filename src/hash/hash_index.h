#ifndef SMDB_HASH_HASH_INDEX_H_
#define SMDB_HASH_HASH_INDEX_H_

#include <optional>
#include <set>
#include <vector>

#include "common/status.h"
#include "common/types.h"
#include "core/lbm_policy.h"
#include "wal/log_manager.h"

namespace smdb {

class Machine;

struct HashIndexStats {
  uint64_t inserts = 0;
  uint64_t deletes = 0;
  uint64_t lookups = 0;
  uint64_t purged_tombstones = 0;
  uint64_t recovered_redo = 0;
  uint64_t recovered_undo = 0;
};

/// A shared-memory hash index — the first entry in section 4.2's list of
/// database management structures ("hash tables, index structures such as
/// B-trees, and tables used for lock management"). Same recovery recipe as
/// the B+-tree's non-structural path:
///  * entries live in shared-memory cache lines (several per line, so they
///    migrate between the nodes that touch them),
///  * every insert/delete is logged logically into the invoking node's
///    volatile log inside the line-lock critical section (Volatile LBM),
///  * deletes are logical (tombstones) so their undo is an unmarking and
///    uncommitted space is never reused,
///  * each active entry carries an undo tag in its own cache line.
///
/// The table is fixed-capacity open addressing with a bounded probe window
/// (full-window scans make slot reclamation safe); committed tombstones
/// are purged lazily when a window fills.
///
/// Entry layout (24 bytes, 5 per 128-byte line): key u64 @0, rid_page u32
/// @8, rid_slot u16 @12, state u8 @14, tag u8 @15, usn u64 @16.
class HashIndex {
 public:
  enum class EntryState : uint8_t {
    kFree = 0,
    kLive = 1,
    kTombstone = 2,
  };

  struct Entry {
    uint64_t key = 0;
    RecordId rid;
    EntryState state = EntryState::kFree;
    uint8_t tag = 0;
    uint64_t usn = 0;
  };

  HashIndex(Machine* machine, LogManager* log, UsnSource* usn,
            LbmPolicy* lbm, uint32_t index_id, uint32_t capacity);

  uint32_t index_id() const { return index_id_; }
  uint32_t capacity() const { return capacity_; }

  /// Inserts key -> rid, tagged for `txn` on `node`. InvalidArgument on a
  /// live duplicate, TryAgain when the probe window is full of live or
  /// uncommitted entries.
  Status Insert(NodeId node, TxnId txn, uint64_t key, RecordId rid,
                uint8_t tag, Lsn* chain);

  /// Logical delete. NotFound if no live entry.
  Status Delete(NodeId node, TxnId txn, uint64_t key, uint8_t tag,
                Lsn* chain);

  Result<std::optional<RecordId>> Lookup(NodeId node, uint64_t key);

  /// Commit support: clear an entry's undo tag.
  Status ClearTag(NodeId node, uint64_t key);

  /// Abort/recovery undo: physically remove an uncommitted insert.
  Status UndoInsert(NodeId node, uint64_t key);
  /// Abort/recovery undo: unmark an uncommitted logical delete.
  Status UndoDelete(NodeId node, uint64_t key);

  /// Writes the current table to its stable snapshot.
  Status CheckpointToStable(NodeId node);

  /// Restores the table after `crashed` nodes failed: re-installs lost
  /// lines from the stable snapshot, redoes logged operations (survivors'
  /// full logs + crashed stable logs, USN order), and undoes entries
  /// tagged by crashed nodes whose transactions are in `uncommitted`.
  Status RecoverAfterCrash(NodeId performer, const std::set<NodeId>& crashed,
                           const std::set<TxnId>& uncommitted);

  /// All non-free entries (snooped; verification).
  Result<std::vector<Entry>> Snapshot() const;

  HashIndexStats& stats() { return stats_; }

 private:
  static constexpr uint32_t kEntryBytes = 24;
  static constexpr uint32_t kProbeWindow = 40;

  Addr SlotAddr(uint32_t slot) const {
    return base_ + static_cast<Addr>(slot) * kEntryBytes;
  }
  LineAddr SlotLine(uint32_t slot) const;
  uint32_t HomeSlot(uint64_t key) const;

  Result<Entry> ReadEntry(NodeId node, uint32_t slot) const;
  Status WriteEntry(NodeId node, uint32_t slot, const Entry& e);
  Entry DecodeEntry(const uint8_t* buf) const;

  /// Finds the slot of `key` (live or tombstoned) within the probe window.
  Result<uint32_t> FindKeySlot(NodeId node, uint64_t key) const;
  /// Finds a free slot, purging committed tombstones if needed.
  Result<uint32_t> FindFreeSlot(NodeId node, uint64_t key);

  Status LogOp(NodeId node, TxnId txn, IndexOpPayload payload, Lsn* chain,
               LineAddr line, bool is_clr);

  Machine* machine_;
  LogManager* log_;
  UsnSource* usn_;
  LbmPolicy* lbm_;
  uint32_t index_id_;
  uint32_t capacity_;
  Addr base_ = 0;
  std::vector<uint8_t> stable_snapshot_;
  HashIndexStats stats_;
};

}  // namespace smdb

#endif  // SMDB_HASH_HASH_INDEX_H_
