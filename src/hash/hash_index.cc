#include "hash/hash_index.h"

#include <algorithm>
#include <cstring>

#include "sim/machine.h"

namespace smdb {
namespace {

uint64_t Mix(uint64_t x) {
  x ^= x >> 33;
  x *= 0xFF51AFD7ED558CCDULL;
  x ^= x >> 29;
  x *= 0xC4CEB9FE1A85EC53ULL;
  x ^= x >> 32;
  return x;
}

}  // namespace

HashIndex::HashIndex(Machine* machine, LogManager* log, UsnSource* usn,
                     LbmPolicy* lbm, uint32_t index_id, uint32_t capacity)
    : machine_(machine),
      log_(log),
      usn_(usn),
      lbm_(lbm),
      index_id_(index_id),
      capacity_(capacity) {
  base_ = machine_->AllocShared(static_cast<size_t>(capacity_) * kEntryBytes);
  stable_snapshot_.assign(static_cast<size_t>(capacity_) * kEntryBytes, 0);
}

LineAddr HashIndex::SlotLine(uint32_t slot) const {
  return machine_->LineOf(SlotAddr(slot));
}

uint32_t HashIndex::HomeSlot(uint64_t key) const {
  return static_cast<uint32_t>(Mix(key) % capacity_);
}

HashIndex::Entry HashIndex::DecodeEntry(const uint8_t* buf) const {
  Entry e;
  std::memcpy(&e.key, buf, 8);
  std::memcpy(&e.rid.page, buf + 8, 4);
  std::memcpy(&e.rid.slot, buf + 12, 2);
  e.state = static_cast<EntryState>(buf[14]);
  e.tag = buf[15];
  std::memcpy(&e.usn, buf + 16, 8);
  return e;
}

Result<HashIndex::Entry> HashIndex::ReadEntry(NodeId node,
                                              uint32_t slot) const {
  uint8_t buf[kEntryBytes];
  SMDB_RETURN_IF_ERROR(
      machine_->Read(node, SlotAddr(slot), buf, sizeof(buf)));
  return DecodeEntry(buf);
}

Status HashIndex::WriteEntry(NodeId node, uint32_t slot, const Entry& e) {
  uint8_t buf[kEntryBytes] = {0};
  std::memcpy(buf, &e.key, 8);
  std::memcpy(buf + 8, &e.rid.page, 4);
  std::memcpy(buf + 12, &e.rid.slot, 2);
  buf[14] = static_cast<uint8_t>(e.state);
  buf[15] = e.tag;
  std::memcpy(buf + 16, &e.usn, 8);
  return machine_->Write(node, SlotAddr(slot), buf, sizeof(buf));
}

Result<uint32_t> HashIndex::FindKeySlot(NodeId node, uint64_t key) const {
  // Live entries take precedence over a cohabiting tombstone (a key can
  // have both while a re-inserting transaction is active).
  uint32_t h = HomeSlot(key);
  uint32_t limit = std::min(kProbeWindow, capacity_);
  uint32_t tomb = capacity_;
  for (uint32_t i = 0; i < limit; ++i) {
    uint32_t slot = (h + i) % capacity_;
    SMDB_ASSIGN_OR_RETURN(Entry e, ReadEntry(node, slot));
    if (e.state == EntryState::kFree || e.key != key) continue;
    if (e.state == EntryState::kLive) return slot;
    if (tomb == capacity_) tomb = slot;
  }
  if (tomb != capacity_) return tomb;
  return Status::NotFound("key not in table");
}

Result<uint32_t> HashIndex::FindFreeSlot(NodeId node, uint64_t key) {
  uint32_t h = HomeSlot(key);
  uint32_t limit = std::min(kProbeWindow, capacity_);
  for (int attempt = 0; attempt < 2; ++attempt) {
    for (uint32_t i = 0; i < limit; ++i) {
      uint32_t slot = (h + i) % capacity_;
      SMDB_ASSIGN_OR_RETURN(Entry e, ReadEntry(node, slot));
      if (e.state == EntryState::kFree) return slot;
    }
    // Window full: purge committed tombstones (their space became
    // reusable when the deleting transactions committed).
    uint32_t freed = 0;
    for (uint32_t i = 0; i < limit; ++i) {
      uint32_t slot = (h + i) % capacity_;
      SMDB_ASSIGN_OR_RETURN(Entry e, ReadEntry(node, slot));
      if (e.state == EntryState::kTombstone && e.tag == 0) {
        SMDB_RETURN_IF_ERROR(WriteEntry(node, slot, Entry{}));
        ++freed;
        ++stats_.purged_tombstones;
      }
    }
    if (freed == 0) break;
  }
  return Status::TryAgain("hash probe window full");
}

Status HashIndex::LogOp(NodeId node, TxnId txn, IndexOpPayload payload,
                        Lsn* chain, LineAddr line, bool is_clr) {
  payload.tree_id = index_id_;
  payload.is_clr = is_clr;
  LogRecord rec;
  rec.type = LogRecordType::kIndexOp;
  rec.txn = txn;
  rec.prev_lsn = chain != nullptr ? *chain : kInvalidLsn;
  rec.payload = payload;
  Lsn lsn = log_->Append(node, std::move(rec));
  if (chain != nullptr) *chain = lsn;
  return lbm_->OnUpdateLogged(node, lsn, {line});
}

Status HashIndex::Insert(NodeId node, TxnId txn, uint64_t key, RecordId rid,
                         uint8_t tag, Lsn* chain) {
  uint32_t slot;
  auto existing = FindKeySlot(node, key);
  if (existing.ok()) {
    SMDB_ASSIGN_OR_RETURN(Entry e, ReadEntry(node, *existing));
    if (e.state == EntryState::kLive) {
      return Status::InvalidArgument("duplicate key");
    }
    if (e.tag == 0) {
      slot = *existing;  // committed tombstone: space is reusable
    } else {
      // Uncommitted tombstone = undo information; re-insert takes a fresh
      // slot so the before-image survives an annulment.
      SMDB_ASSIGN_OR_RETURN(slot, FindFreeSlot(node, key));
    }
  } else if (existing.status().IsNotFound()) {
    SMDB_ASSIGN_OR_RETURN(slot, FindFreeSlot(node, key));
  } else {
    return existing.status();
  }

  LineAddr line = SlotLine(slot);
  SMDB_RETURN_IF_ERROR(machine_->GetLine(node, line));
  Entry e;
  e.key = key;
  e.rid = rid;
  e.state = EntryState::kLive;
  e.tag = tag;
  e.usn = usn_->Next();
  Status s = WriteEntry(node, slot, e);
  if (s.ok()) {
    IndexOpPayload p;
    p.op = IndexOpPayload::Op::kInsert;
    p.key = key;
    p.value = rid;
    p.usn = e.usn;
    s = LogOp(node, txn, p, chain, line, /*is_clr=*/false);
  }
  machine_->ReleaseLine(node, line);
  SMDB_RETURN_IF_ERROR(s);
  ++stats_.inserts;
  return Status::Ok();
}

Status HashIndex::Delete(NodeId node, TxnId txn, uint64_t key, uint8_t tag,
                         Lsn* chain) {
  auto slot_or = FindKeySlot(node, key);
  if (!slot_or.ok()) return slot_or.status();
  SMDB_ASSIGN_OR_RETURN(Entry e, ReadEntry(node, *slot_or));
  if (e.state != EntryState::kLive) return Status::NotFound("not live");

  LineAddr line = SlotLine(*slot_or);
  SMDB_RETURN_IF_ERROR(machine_->GetLine(node, line));
  RecordId old_rid = e.rid;
  // Deleting this transaction's own uncommitted insert removes the entry
  // physically (never-committed data must not become an unmarkable
  // tombstone) and logs a redo-only compensation.
  bool own_uncommitted =
      e.state == EntryState::kLive && e.tag != 0 && e.tag == tag;
  uint64_t usn = usn_->Next();
  Status s;
  if (own_uncommitted) {
    s = WriteEntry(node, *slot_or, Entry{});
  } else {
    e.state = EntryState::kTombstone;
    e.tag = tag;
    e.usn = usn;
    s = WriteEntry(node, *slot_or, e);
  }
  if (s.ok()) {
    IndexOpPayload p;
    p.op = IndexOpPayload::Op::kDelete;
    p.key = key;
    p.value = old_rid;
    p.usn = usn;
    s = LogOp(node, txn, p, chain, line, own_uncommitted);
  }
  machine_->ReleaseLine(node, line);
  SMDB_RETURN_IF_ERROR(s);
  ++stats_.deletes;
  return Status::Ok();
}

Result<std::optional<RecordId>> HashIndex::Lookup(NodeId node, uint64_t key) {
  ++stats_.lookups;
  auto slot_or = FindKeySlot(node, key);
  if (!slot_or.ok()) {
    if (slot_or.status().IsNotFound()) return std::optional<RecordId>{};
    return slot_or.status();
  }
  SMDB_ASSIGN_OR_RETURN(Entry e, ReadEntry(node, *slot_or));
  if (e.state != EntryState::kLive) return std::optional<RecordId>{};
  return std::optional<RecordId>{e.rid};
}

Status HashIndex::ClearTag(NodeId node, uint64_t key) {
  // Clear every entry carrying the key (live entry + own tombstone).
  uint32_t h = HomeSlot(key);
  uint32_t limit = std::min(kProbeWindow, capacity_);
  bool found = false;
  for (uint32_t i = 0; i < limit; ++i) {
    uint32_t slot = (h + i) % capacity_;
    SMDB_ASSIGN_OR_RETURN(Entry e, ReadEntry(node, slot));
    if (e.state == EntryState::kFree || e.key != key) continue;
    found = true;
    if (e.tag == 0) continue;
    LineAddr line = SlotLine(slot);
    SMDB_RETURN_IF_ERROR(machine_->GetLine(node, line));
    uint8_t none = 0;
    Status s = machine_->Write(node, SlotAddr(slot) + 15, &none, 1);
    machine_->ReleaseLine(node, line);
    SMDB_RETURN_IF_ERROR(s);
  }
  return found ? Status::Ok() : Status::NotFound("no entry for key");
}

Status HashIndex::UndoInsert(NodeId node, uint64_t key) {
  auto slot_or = FindKeySlot(node, key);  // prefers the live entry
  if (!slot_or.ok()) {
    if (slot_or.status().IsNotFound()) return Status::Ok();
    return slot_or.status();
  }
  SMDB_ASSIGN_OR_RETURN(Entry e, ReadEntry(node, *slot_or));
  if (e.state != EntryState::kLive) return Status::Ok();  // nothing live
  LineAddr line = SlotLine(*slot_or);
  SMDB_RETURN_IF_ERROR(machine_->GetLine(node, line));
  Status s = WriteEntry(node, *slot_or, Entry{});
  machine_->ReleaseLine(node, line);
  return s;
}

Status HashIndex::UndoDelete(NodeId node, uint64_t key) {
  // Unmark specifically the tombstoned entry.
  uint32_t h = HomeSlot(key);
  uint32_t limit = std::min(kProbeWindow, capacity_);
  for (uint32_t i = 0; i < limit; ++i) {
    uint32_t slot = (h + i) % capacity_;
    SMDB_ASSIGN_OR_RETURN(Entry e, ReadEntry(node, slot));
    if (e.state != EntryState::kTombstone || e.key != key) continue;
    LineAddr line = SlotLine(slot);
    SMDB_RETURN_IF_ERROR(machine_->GetLine(node, line));
    e.state = EntryState::kLive;
    e.tag = 0;
    e.usn = usn_->Next();
    Status s = WriteEntry(node, slot, e);
    machine_->ReleaseLine(node, line);
    return s;
  }
  return Status::NotFound("no tombstone for key");
}

Status HashIndex::CheckpointToStable(NodeId node) {
  SMDB_RETURN_IF_ERROR(machine_->SnoopRead(base_, stable_snapshot_.data(),
                                           stable_snapshot_.size()));
  machine_->Tick(node, machine_->config().timing.disk_write_ns);
  return Status::Ok();
}

Status HashIndex::RecoverAfterCrash(NodeId performer,
                                    const std::set<NodeId>& crashed,
                                    const std::set<TxnId>& uncommitted) {
  // 1. Re-install lost lines from the stable snapshot.
  size_t line_size = machine_->line_size();
  size_t total = static_cast<size_t>(capacity_) * kEntryBytes;
  for (size_t off = 0; off < total; off += line_size) {
    LineAddr line = machine_->LineOf(base_ + off);
    if (!machine_->IsLineLost(line)) continue;
    size_t chunk = std::min(line_size, total - off);
    machine_->InstallToMemory(base_ + off, stable_snapshot_.data() + off,
                              chunk);
  }
  // 2. Redo logged operations in USN order (USN guard per entry).
  std::vector<std::pair<IndexOpPayload, TxnId>> ops;
  for (NodeId n = 0; n < machine_->num_nodes(); ++n) {
    auto visit = [&](const LogRecord& rec) {
      if (rec.type != LogRecordType::kIndexOp) return;
      if (rec.index_op().tree_id != index_id_) return;
      ops.emplace_back(rec.index_op(), rec.txn);
    };
    if (machine_->NodeAlive(n)) {
      log_->ForEachAll(n, visit);
    } else {
      log_->ForEachStable(n, visit);
    }
  }
  std::sort(ops.begin(), ops.end(), [](const auto& a, const auto& b) {
    return a.first.usn < b.first.usn;
  });
  for (const auto& [op, txn] : ops) {
    auto slot_or = FindKeySlot(performer, op.key);
    uint8_t tag = (!op.is_clr && uncommitted.contains(txn))
                      ? static_cast<uint8_t>(TxnNode(txn) + 1)
                      : 0;
    if (op.op == IndexOpPayload::Op::kInsert) {
      uint32_t slot;
      if (slot_or.ok()) {
        SMDB_ASSIGN_OR_RETURN(Entry e, ReadEntry(performer, *slot_or));
        if (e.usn >= op.usn) continue;
        if (e.state == EntryState::kTombstone && e.tag != 0) {
          // Mirror the runtime rule: never overwrite undo information.
          auto fresh = FindFreeSlot(performer, op.key);
          if (!fresh.ok()) return fresh.status();
          slot = *fresh;
        } else {
          slot = *slot_or;
        }
      } else if (slot_or.status().IsNotFound()) {
        auto free = FindFreeSlot(performer, op.key);
        if (!free.ok()) return free.status();
        slot = *free;
      } else {
        return slot_or.status();
      }
      Entry e;
      e.key = op.key;
      e.rid = op.value;
      e.state = EntryState::kLive;
      e.tag = tag;
      e.usn = op.usn;
      SMDB_RETURN_IF_ERROR(WriteEntry(performer, slot, e));
      ++stats_.recovered_redo;
    } else {
      if (!slot_or.ok()) continue;  // nothing to tombstone
      SMDB_ASSIGN_OR_RETURN(Entry e, ReadEntry(performer, *slot_or));
      if (e.usn >= op.usn) continue;
      if (op.is_clr) {
        SMDB_RETURN_IF_ERROR(WriteEntry(performer, *slot_or, Entry{}));
      } else {
        e.state = EntryState::kTombstone;
        e.tag = tag;
        e.usn = op.usn;
        SMDB_RETURN_IF_ERROR(WriteEntry(performer, *slot_or, e));
      }
      ++stats_.recovered_redo;
    }
  }
  // 3. Tag-based undo: entries tagged with crashed nodes whose owners are
  // uncommitted are rolled back (inserts removed, deletes unmarked).
  for (uint32_t slot = 0; slot < capacity_; ++slot) {
    SMDB_ASSIGN_OR_RETURN(Entry e, ReadEntry(performer, slot));
    if (e.state == EntryState::kFree || e.tag == 0) continue;
    NodeId owner = static_cast<NodeId>(e.tag - 1);
    if (!crashed.contains(owner)) continue;
    if (e.state == EntryState::kLive) {
      SMDB_RETURN_IF_ERROR(WriteEntry(performer, slot, Entry{}));
    } else {
      e.state = EntryState::kLive;
      e.tag = 0;
      SMDB_RETURN_IF_ERROR(WriteEntry(performer, slot, e));
    }
    ++stats_.recovered_undo;
  }
  return Status::Ok();
}

Result<std::vector<HashIndex::Entry>> HashIndex::Snapshot() const {
  std::vector<Entry> out;
  std::vector<uint8_t> buf(kEntryBytes);
  for (uint32_t slot = 0; slot < capacity_; ++slot) {
    SMDB_RETURN_IF_ERROR(
        machine_->SnoopRead(SlotAddr(slot), buf.data(), buf.size()));
    Entry e = DecodeEntry(buf.data());
    if (e.state != EntryState::kFree) out.push_back(e);
  }
  return out;
}

}  // namespace smdb
