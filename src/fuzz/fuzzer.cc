#include "fuzz/fuzzer.h"

#include <algorithm>

#include "common/thread_pool.h"
#include "obs/forensics.h"

namespace smdb {

std::vector<RecoveryConfig> CrashScheduleFuzzer::DefaultProtocols() {
  return {
      RecoveryConfig::VolatileSelectiveRedo(),
      RecoveryConfig::VolatileRedoAll(),
      RecoveryConfig::StableEagerRedoAll(),
      RecoveryConfig::StableTriggeredRedoAll(),
      RecoveryConfig::StableTriggeredSelectiveRedo(),
      RecoveryConfig::BaselineRebootAll(),
      RecoveryConfig::BaselineAbortDependents(),
  };
}

CrashScheduleFuzzer::CrashScheduleFuzzer(Options opts)
    : opts_(std::move(opts)) {
  if (opts_.protocols.empty()) opts_.protocols = DefaultProtocols();
}

RecoveryConfig CrashScheduleFuzzer::EffectiveProtocol(
    RecoveryConfig protocol) const {
  protocol.disable_undo_tagging =
      protocol.disable_undo_tagging || opts_.disable_undo_tagging;
  protocol.on_demand = protocol.on_demand || opts_.on_demand;
  if (opts_.group_commit) {
    protocol.group_commit = true;
    if (opts_.group_commit_window_ns != 0) {
      protocol.group_commit_window_ns = opts_.group_commit_window_ns;
    }
    if (opts_.group_commit_max_batch != 0) {
      protocol.group_commit_max_batch = opts_.group_commit_max_batch;
    }
  }
  return protocol;
}

FuzzVerdict CrashScheduleFuzzer::RunCase(const FuzzCase& fuzz_case,
                                         RecoveryConfig protocol) {
  protocol = EffectiveProtocol(std::move(protocol));
  HarnessConfig base = MakeHarnessConfig(fuzz_case, protocol);
  if (opts_.execution_threads > 1) {
    base.exec.execution_threads = opts_.execution_threads;
  }
  base.capture_digests = opts_.recovery_threads > 1;
  if (protocol.on_demand) {
    // Exercise the sweeper alongside first-touch discharge. The parallel
    // differential compares digests taken right after each recovery, so
    // those runs drain immediately instead (collapsing the Recovering
    // window makes lazy and eager runs step-comparable).
    base.pump_recovery_per_step = 2;
    base.drain_recovery_immediately = base.capture_digests;
  }
  Harness h(base);
  auto report = h.Run();
  ++stats_.runs;
  if (!report.ok()) {
    // The harness must complete every schedule; an error here is a harness
    // or recovery-path bug, not a legitimate outcome.
    return {true, "run-error", report.status().ToString()};
  }
  stats_.crashes_fired += report->recoveries.size();
  stats_.crashes_skipped += report->skipped_crashes.size();
  stats_.committed += report->exec.committed;
  for (const RecoveryOutcome& r : report->recoveries) {
    if (r.whole_machine_restart) ++stats_.whole_machine_restarts;
  }

  if (!report->verify_status.ok()) {
    return {true, "ifa-verify", report->verify_status.ToString()};
  }
  if (protocol.ensures_ifa() && report->unnecessary_aborts() > 0) {
    return {true, "unnecessary-aborts",
            protocol.Name() + " forced " +
                std::to_string(report->unnecessary_aborts()) +
                " surviving-node aborts"};
  }
  if (protocol.restart == RestartKind::kRebootAll) {
    for (const RecoveryOutcome& r : report->recoveries) {
      if (!r.whole_machine_restart) {
        return {true, "oracle",
                "RebootAll recovery without a whole-machine restart"};
      }
    }
  }
  if (opts_.recovery_threads > 1 && !report->recoveries.empty()) {
    FuzzVerdict dv = CheckParallelEquivalence(base, *report);
    if (dv.failed) return dv;
  }
  return {};
}

FuzzVerdict CrashScheduleFuzzer::CheckParallelEquivalence(
    const HarnessConfig& base, const HarnessReport& serial) {
  const uint32_t w = opts_.recovery_threads;
  // One differential run per fired recovery: digests taken *after* a
  // parallel recovery are only comparable up to that recovery (CLR log
  // placement is performer-dependent and may legitimately steer later
  // forces and later recoveries differently), so each run parallelises
  // exactly one recovery, with everything before it serial.
  for (size_t k = 0; k < serial.recoveries.size(); ++k) {
    std::string at = "W=" + std::to_string(w) + " recovery #" +
                     std::to_string(k) + " ";
    HarnessConfig cfg = base;
    cfg.recovery_thread_overrides.assign(k + 1, 1);
    cfg.recovery_thread_overrides[k] = w;
    Harness h(cfg);
    auto report = h.Run();
    ++stats_.runs;
    if (!report.ok()) {
      return {true, "parallel-divergence",
              at + "run-error: " + report.status().ToString()};
    }
    if (!report->verify_status.ok()) {
      return {true, "parallel-divergence",
              at + "ifa-verify: " + report->verify_status.ToString()};
    }
    if (report->recoveries.size() <= k || report->digests.size() <= k) {
      return {true, "parallel-divergence", at + "never fired"};
    }
    if (!(report->digests[k] == serial.digests[k])) {
      return {true, "parallel-divergence",
              at + "digest mismatch: serial{" + serial.digests[k].ToString() +
                  "} parallel{" + report->digests[k].ToString() + "}"};
    }
    const RecoveryOutcome& a = serial.recoveries[k];
    const RecoveryOutcome& b = report->recoveries[k];
    if (a.annulled != b.annulled || a.preserved != b.preserved ||
        a.forced_aborts != b.forced_aborts ||
        a.redo_applied != b.redo_applied ||
        a.redo_skipped != b.redo_skipped ||
        a.undo_applied != b.undo_applied || a.tag_undos != b.tag_undos) {
      return {true, "parallel-divergence",
              at + "outcome mismatch: serial{" + a.ToString() +
                  "} parallel{" + b.ToString() + "}"};
    }
  }
  return {};
}

std::optional<FuzzFailure> CrashScheduleFuzzer::RunSeed(uint64_t seed) {
  FuzzCase fuzz_case = SampleFuzzCase(seed);
  ++stats_.cases;
  for (const RecoveryConfig& rc : opts_.protocols) {
    // Stored in the failure pre-applied so Shrink and ReplayJson see the
    // exact config that failed (RunCase's own application is idempotent).
    RecoveryConfig protocol = EffectiveProtocol(rc);
    FuzzVerdict verdict = RunCase(fuzz_case, protocol);
    if (verdict.failed) {
      return FuzzFailure{seed, fuzz_case, protocol, std::move(verdict)};
    }
  }
  return std::nullopt;
}

FuzzCase CrashScheduleFuzzer::Shrink(const FuzzFailure& failure) {
  FuzzCase best = failure.fuzz_case;
  size_t budget = opts_.max_shrink_runs;
  auto still_fails = [&](const FuzzCase& cand) {
    if (budget == 0) return false;  // out of budget: keep what we have
    --budget;
    ++stats_.shrink_runs;
    return RunCase(cand, failure.protocol).failed;
  };
  auto try_reduce = [&](bool* changed, auto mutate) {
    FuzzCase cand = best;
    mutate(cand);
    if (still_fails(cand)) {
      best = std::move(cand);
      *changed = true;
    }
  };

  // Greedy delta debugging to a fixpoint: every reduction below is retried
  // until none applies. Each candidate run is a full deterministic
  // re-execution, so "still fails" is exact, not probabilistic.
  bool changed = true;
  while (changed && budget > 0) {
    changed = false;

    // 1. Drop whole crash plans.
    for (size_t i = 0; i < best.crashes.size();) {
      FuzzCase cand = best;
      cand.crashes.erase(cand.crashes.begin() + i);
      if (still_fails(cand)) {
        best = std::move(cand);
        changed = true;
      } else {
        ++i;
      }
    }
    // 2. Shrink each plan's node set.
    for (size_t p = 0; p < best.crashes.size(); ++p) {
      for (size_t i = 0;
           best.crashes[p].nodes.size() > 1 && i < best.crashes[p].nodes.size();) {
        FuzzCase cand = best;
        cand.crashes[p].nodes.erase(cand.crashes[p].nodes.begin() + i);
        if (still_fails(cand)) {
          best = std::move(cand);
          changed = true;
        } else {
          ++i;
        }
      }
    }
    // 3. Simplify plan attributes: no restart, earlier step.
    for (size_t p = 0; p < best.crashes.size(); ++p) {
      if (best.crashes[p].restart_after) {
        try_reduce(&changed,
                   [p](FuzzCase& c) { c.crashes[p].restart_after = false; });
      }
      if (best.crashes[p].at_step > 1) {
        try_reduce(&changed,
                   [p](FuzzCase& c) { c.crashes[p].at_step /= 2; });
      }
    }
    // 4. Halve the workload.
    if (best.workload.txns_per_node > 1) {
      try_reduce(&changed, [](FuzzCase& c) { c.workload.txns_per_node /= 2; });
    }
    if (best.workload.ops_per_txn > 1) {
      try_reduce(&changed, [](FuzzCase& c) { c.workload.ops_per_txn /= 2; });
    }
    // 5. Zero the noise knobs.
    if (best.steal_flush_prob > 0.0) {
      try_reduce(&changed, [](FuzzCase& c) { c.steal_flush_prob = 0.0; });
    }
    if (best.checkpoint_every_steps > 0) {
      try_reduce(&changed,
                 [](FuzzCase& c) { c.checkpoint_every_steps = 0; });
    }
    if (best.workload.index_op_ratio > 0.0) {
      try_reduce(&changed, [](FuzzCase& c) { c.workload.index_op_ratio = 0.0; });
    }
    if (best.workload.dirty_read_ratio > 0.0) {
      try_reduce(&changed,
                 [](FuzzCase& c) { c.workload.dirty_read_ratio = 0.0; });
    }
    if (best.workload.voluntary_abort_ratio > 0.0) {
      try_reduce(&changed,
                 [](FuzzCase& c) { c.workload.voluntary_abort_ratio = 0.0; });
    }
    if (best.workload.zipf_theta > 0.0) {
      try_reduce(&changed, [](FuzzCase& c) { c.workload.zipf_theta = 0.0; });
    }
  }
  return best;
}

json::Value CrashScheduleFuzzer::CollectForensics(const FuzzFailure& failure,
                                                  const FuzzCase& shrunk) {
  // The re-run is bit-identical to the shrunk failing run (tracing adds no
  // simulated cost), so the recorder holds the event history leading into
  // the violation when the report is built.
  HarnessConfig cfg =
      MakeHarnessConfig(shrunk, EffectiveProtocol(failure.protocol));
  cfg.db.trace.enabled = true;
  cfg.db.trace.capacity_per_node = opts_.trace_capacity;
  Harness h(cfg);
  auto report = h.Run();
  ++stats_.runs;
  const bool failed_again =
      !report.ok() || !report->verify_status.ok();
  json::Value out =
      BuildForensicReport(h.db(), &h.checker(), /*last_n=*/32);
  // "reproduced" is about the *verifiable* failure kinds (run-error,
  // ifa-verify); abort-count and divergence failures verify clean here.
  out.Set("reproduced", json::Value::Bool(failed_again));
  out.Set("verify",
          json::Value::Str(report.ok() ? report->verify_status.ToString()
                                       : report.status().ToString()));
  return out;
}

std::string CrashScheduleFuzzer::ReplayJson(const FuzzFailure& failure,
                                            const FuzzCase& shrunk,
                                            const json::Value* forensics)
    const {
  json::Value doc = json::Value::Object();
  doc.Set("smdb_fuzz_replay", json::Value::Uint(1));
  doc.Set("seed", json::Value::Uint(failure.seed));
  doc.Set("protocol", json::Value::Str(failure.protocol.FlagName()));
  doc.Set("disable_undo_tagging",
          json::Value::Bool(failure.protocol.disable_undo_tagging));
  doc.Set("recovery_threads", json::Value::Uint(opts_.recovery_threads));
  doc.Set("group_commit", json::Value::Bool(failure.protocol.group_commit));
  if (failure.protocol.group_commit) {
    doc.Set("group_commit_window_ns",
            json::Value::Uint(failure.protocol.group_commit_window_ns));
    doc.Set("group_commit_max_batch",
            json::Value::Uint(failure.protocol.group_commit_max_batch));
  }
  doc.Set("on_demand", json::Value::Bool(failure.protocol.on_demand));
  doc.Set("execution_threads", json::Value::Uint(opts_.execution_threads));
  doc.Set("forensics_enabled", json::Value::Bool(opts_.forensics));
  doc.Set("trace_capacity", json::Value::Uint(opts_.trace_capacity));
  doc.Set("case", shrunk.ToJson());
  doc.Set("original_case", failure.fuzz_case.ToJson());
  json::Value fail = json::Value::Object();
  fail.Set("kind", json::Value::Str(failure.verdict.kind));
  fail.Set("detail", json::Value::Str(failure.verdict.detail));
  doc.Set("failure", std::move(fail));
  if (forensics != nullptr) {
    doc.Set("forensics", *forensics);
  }
  return doc.Dump(2);
}

Result<CrashScheduleFuzzer::ReplayDoc> CrashScheduleFuzzer::ParseReplay(
    const std::string& json_text) {
  SMDB_ASSIGN_OR_RETURN(json::Value doc, json::Value::Parse(json_text));
  if (!doc.is_object() || doc.GetUint("smdb_fuzz_replay") != 1) {
    return Status::InvalidArgument("not an smdb_fuzz replay document");
  }
  ReplayDoc out;
  out.seed = doc.GetUint("seed");
  std::string proto = doc.GetString("protocol");
  if (!RecoveryConfig::FromFlagName(proto, &out.protocol)) {
    return Status::InvalidArgument("replay: unknown protocol '" + proto + "'");
  }
  out.protocol.disable_undo_tagging = doc.GetBool("disable_undo_tagging");
  // Absent in documents that predate the parallel pipeline: serial.
  uint64_t threads = doc.GetUint("recovery_threads");
  out.recovery_threads = threads == 0 ? 1 : static_cast<uint32_t>(threads);
  // Absent in documents that predate the group-commit pipeline: off.
  out.group_commit = doc.GetBool("group_commit");
  out.protocol.group_commit = out.group_commit;
  if (out.group_commit) {
    uint64_t window = doc.GetUint("group_commit_window_ns");
    if (window != 0) {
      out.group_commit_window_ns = window;
      out.protocol.group_commit_window_ns = window;
    }
    uint64_t batch = doc.GetUint("group_commit_max_batch");
    if (batch != 0) {
      out.group_commit_max_batch = static_cast<uint32_t>(batch);
      out.protocol.group_commit_max_batch = static_cast<uint32_t>(batch);
    }
  }
  // Absent in documents that predate on-demand recovery: off.
  out.on_demand = doc.GetBool("on_demand");
  out.protocol.on_demand = out.on_demand;
  // Absent in documents that predate execution sharding: serial.
  uint64_t exec_w = doc.GetUint("execution_threads");
  out.execution_threads = exec_w == 0 ? 1 : static_cast<uint32_t>(exec_w);
  // Absent in documents that predate the observability layer: defaults.
  if (doc.Find("forensics_enabled") != nullptr) {
    out.forensics_enabled = doc.GetBool("forensics_enabled");
  }
  uint64_t cap = doc.GetUint("trace_capacity");
  if (cap != 0) out.trace_capacity = static_cast<uint32_t>(cap);
  const json::Value* c = doc.Find("case");
  if (c == nullptr) {
    return Status::InvalidArgument("replay: missing case");
  }
  SMDB_ASSIGN_OR_RETURN(out.fuzz_case, FuzzCase::FromJson(*c));
  const json::Value* fail = doc.Find("failure");
  if (fail != nullptr) {
    out.recorded_kind = fail->GetString("kind");
    out.recorded_detail = fail->GetString("detail");
  }
  return out;
}

json::Value PerSeedAggregateJson(const std::vector<FuzzStats>& per_seed) {
  json::Value obj = json::Value::Object();
  obj.Set("seeds", json::Value::Uint(per_seed.size()));
  if (per_seed.empty()) return obj;
  // Field-parallel fold over the shared visitor, so the aggregate's key
  // set can never drift from FuzzStats.
  std::vector<std::string> names;
  std::vector<uint64_t> mins, maxs, sums;
  bool first = true;
  for (const FuzzStats& s : per_seed) {
    size_t i = 0;
    s.ForEachCounter([&](const char* name, uint64_t value) {
      if (first) {
        names.emplace_back(name);
        mins.push_back(value);
        maxs.push_back(value);
        sums.push_back(value);
      } else {
        mins[i] = std::min(mins[i], value);
        maxs[i] = std::max(maxs[i], value);
        sums[i] += value;
      }
      ++i;
    });
    first = false;
  }
  for (size_t i = 0; i < names.size(); ++i) {
    json::Value agg = json::Value::Object();
    agg.Set("min", json::Value::Uint(mins[i]));
    agg.Set("max", json::Value::Uint(maxs[i]));
    agg.Set("mean",
            json::Value::Double(double(sums[i]) / double(per_seed.size())));
    obj.Set(names[i], agg);
  }
  return obj;
}

FuzzCampaignResult RunFuzzCampaign(const CrashScheduleFuzzer::Options& opts,
                                   uint64_t seed_start, uint64_t seed_count,
                                   unsigned jobs) {
  FuzzCampaignResult out;
  if (jobs <= 1) {
    // One fresh fuzzer per seed (same as the sharded path) so per-seed
    // stats blocks exist; merging them gives the exact totals the old
    // single-fuzzer loop accumulated.
    for (uint64_t i = 0; i < seed_count; ++i) {
      CrashScheduleFuzzer fuzzer(opts);
      out.failure = fuzzer.RunSeed(seed_start + i);
      out.per_seed.push_back(fuzzer.stats());
      out.stats.Merge(fuzzer.stats());
      if (out.failure.has_value()) break;
    }
    return out;
  }
  // Sharded: chunks of jobs*4 seeds, each seed in a fresh fuzzer (a seed's
  // outcome is a pure function of (seed, opts); stats never feed back into
  // sampling or execution). Folding the per-seed slots in seed order up to
  // and including the first failure reproduces the serial result exactly —
  // later seeds in the failing chunk may have run, but their results are
  // discarded, so the verdict and merged stats are independent of `jobs`.
  ThreadPool pool(jobs);
  const uint64_t chunk = static_cast<uint64_t>(jobs) * 4;
  for (uint64_t base = 0; base < seed_count; base += chunk) {
    const uint64_t n = std::min(chunk, seed_count - base);
    std::vector<std::optional<FuzzFailure>> failures(n);
    std::vector<FuzzStats> stats(n);
    pool.ParallelFor(static_cast<size_t>(n), [&](size_t i) {
      CrashScheduleFuzzer fuzzer(opts);
      failures[i] = fuzzer.RunSeed(seed_start + base + i);
      stats[i] = fuzzer.stats();
    });
    for (uint64_t i = 0; i < n; ++i) {
      out.per_seed.push_back(stats[i]);
      out.stats.Merge(stats[i]);
      if (failures[i].has_value()) {
        out.failure = std::move(failures[i]);
        return out;
      }
    }
  }
  return out;
}

}  // namespace smdb
