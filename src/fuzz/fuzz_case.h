#ifndef SMDB_FUZZ_FUZZ_CASE_H_
#define SMDB_FUZZ_FUZZ_CASE_H_

#include <cstdint>
#include <vector>

#include "common/json.h"
#include "workload/harness.h"

namespace smdb {

/// One fully-specified fuzz scenario: machine size, table, workload spec,
/// crash schedule, steal/checkpoint cadences, and the harness seed. A
/// FuzzCase plus a RecoveryConfig determines a run bit-exactly — every
/// source of randomness downstream is derived from the seeds stored here.
struct FuzzCase {
  uint16_t num_nodes = 4;
  uint32_t num_records = 64;
  uint16_t record_data_size = 22;
  WorkloadSpec workload;
  std::vector<CrashPlan> crashes;
  double steal_flush_prob = 0.0;
  uint64_t checkpoint_every_steps = 0;
  uint64_t harness_seed = 0;

  json::Value ToJson() const;
  static Result<FuzzCase> FromJson(const json::Value& v);
};

/// Deterministically samples a scenario from `seed` (equal seeds, equal
/// cases): machine of 2..8 nodes, a small heavily-shared table, a workload
/// from SampleWorkloadSpec, and a crash schedule from SampleCrashPlans —
/// multi-node plans, repeated crashes of one node, crash-with-restart,
/// crash-all, steps past drain, duplicate node ids.
FuzzCase SampleFuzzCase(uint64_t seed);

/// Assembles the HarnessConfig that runs `fuzz_case` under `protocol`.
HarnessConfig MakeHarnessConfig(const FuzzCase& fuzz_case,
                                const RecoveryConfig& protocol);

}  // namespace smdb

#endif  // SMDB_FUZZ_FUZZ_CASE_H_
