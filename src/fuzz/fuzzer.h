#ifndef SMDB_FUZZ_FUZZER_H_
#define SMDB_FUZZ_FUZZER_H_

#include <optional>
#include <string>
#include <vector>

#include "fuzz/fuzz_case.h"

namespace smdb {

/// Outcome of one (case, protocol) run against the failure predicate.
struct FuzzVerdict {
  bool failed = false;
  /// "run-error" (harness returned a Status), "ifa-verify" (oracle caught
  /// a violation), "unnecessary-aborts" (an IFA protocol aborted surviving
  /// work), or "oracle" (a baseline misbehaved against its own contract).
  std::string kind;
  std::string detail;
};

/// A failing (seed, case, protocol) triple.
struct FuzzFailure {
  uint64_t seed = 0;
  FuzzCase fuzz_case;
  RecoveryConfig protocol;
  FuzzVerdict verdict;
};

struct FuzzStats {
  uint64_t cases = 0;
  uint64_t runs = 0;
  uint64_t shrink_runs = 0;
  uint64_t crashes_fired = 0;
  uint64_t crashes_skipped = 0;
  uint64_t whole_machine_restarts = 0;
  uint64_t committed = 0;
};

/// Randomized crash-schedule fuzzer with deterministic replay.
///
/// Each seed samples one scenario (SampleFuzzCase) and runs it through the
/// Harness under every configured protocol; after every recovery and at
/// quiescence the IfaChecker oracle compares the machine-visible state
/// against ground truth. The IFA protocols must show zero violations and
/// zero unnecessary aborts; the baselines act as oracles of expected-abort
/// behavior (RebootAll must always whole-machine-restart). On failure the
/// schedule is shrunk (greedy delta debugging over crash plans, node sets,
/// plan attributes, workload sizes, and cadences) to a minimal reproducer,
/// and a JSON replay document re-executes it bit-identically.
class CrashScheduleFuzzer {
 public:
  struct Options {
    /// Protocols every case runs under; defaults to DefaultProtocols().
    std::vector<RecoveryConfig> protocols;
    /// Fault injection: break undo tagging in every protocol run (see
    /// RecoveryConfig::disable_undo_tagging). Used to prove the fuzzer
    /// catches real violations.
    bool disable_undo_tagging = false;
    /// Upper bound on re-runs the shrinker may spend per failure.
    size_t max_shrink_runs = 400;
    /// When > 1, every case additionally runs the parallel-recovery
    /// differential: a serial baseline captures a StateDigest after each
    /// recovery, then the schedule re-runs once per fired recovery with
    /// exactly that recovery at `recovery_threads` worker streams (all
    /// earlier ones serial), and the digests must match. A mismatch is a
    /// "parallel-divergence" failure, and the shrinker minimises it like
    /// any other (RunCase re-runs the whole differential per candidate).
    uint32_t recovery_threads = 1;
  };

  /// The five IFA protocol variants plus the two baselines-as-oracles.
  static std::vector<RecoveryConfig> DefaultProtocols();

  CrashScheduleFuzzer() : CrashScheduleFuzzer(Options()) {}
  explicit CrashScheduleFuzzer(Options opts);

  /// Samples the seed's scenario and runs it under every protocol.
  /// Returns the first failure, if any.
  std::optional<FuzzFailure> RunSeed(uint64_t seed);

  /// Runs one case under one protocol and applies the failure predicate.
  FuzzVerdict RunCase(const FuzzCase& fuzz_case, RecoveryConfig protocol);

  /// Delta-debugs the failing case to a (locally) minimal reproducer that
  /// still fails under the failure's protocol.
  FuzzCase Shrink(const FuzzFailure& failure);

  /// Serializes a self-contained replay document for `failure` with the
  /// shrunk case as the schedule to re-execute.
  std::string ReplayJson(const FuzzFailure& failure,
                         const FuzzCase& shrunk) const;

  struct ReplayDoc {
    uint64_t seed = 0;
    FuzzCase fuzz_case;
    RecoveryConfig protocol;
    /// Worker streams the failing run used (1 = plain serial run).
    uint32_t recovery_threads = 1;
    std::string recorded_kind;
    std::string recorded_detail;
  };
  static Result<ReplayDoc> ParseReplay(const std::string& json_text);

  const FuzzStats& stats() const { return stats_; }

 private:
  /// The differential leg of RunCase: re-runs `base` once per recovery the
  /// serial run fired, parallelising only that recovery, and compares the
  /// post-recovery digest and the recovery outcome's logical fields.
  FuzzVerdict CheckParallelEquivalence(const HarnessConfig& base,
                                       const HarnessReport& serial);

  Options opts_;
  FuzzStats stats_;
};

}  // namespace smdb

#endif  // SMDB_FUZZ_FUZZER_H_
