#ifndef SMDB_FUZZ_FUZZER_H_
#define SMDB_FUZZ_FUZZER_H_

#include <optional>
#include <string>
#include <vector>

#include "fuzz/fuzz_case.h"

namespace smdb {

/// Outcome of one (case, protocol) run against the failure predicate.
struct FuzzVerdict {
  bool failed = false;
  /// "run-error" (harness returned a Status), "ifa-verify" (oracle caught
  /// a violation), "unnecessary-aborts" (an IFA protocol aborted surviving
  /// work), or "oracle" (a baseline misbehaved against its own contract).
  std::string kind;
  std::string detail;
};

/// A failing (seed, case, protocol) triple.
struct FuzzFailure {
  uint64_t seed = 0;
  FuzzCase fuzz_case;
  RecoveryConfig protocol;
  FuzzVerdict verdict;
};

struct FuzzStats {
  uint64_t cases = 0;
  uint64_t runs = 0;
  uint64_t shrink_runs = 0;
  uint64_t crashes_fired = 0;
  uint64_t crashes_skipped = 0;
  uint64_t whole_machine_restarts = 0;
  uint64_t committed = 0;

  /// Accumulates another (per-seed) stats block; campaign sharding merges
  /// per-seed fuzzer stats in seed order.
  void Merge(const FuzzStats& o) {
    cases += o.cases;
    runs += o.runs;
    shrink_runs += o.shrink_runs;
    crashes_fired += o.crashes_fired;
    crashes_skipped += o.crashes_skipped;
    whole_machine_restarts += o.whole_machine_restarts;
    committed += o.committed;
  }

  /// Visits every field as ("name", value) — keeps Merge, the campaign
  /// summary JSON, and the per-seed aggregates over the same field set.
  template <typename Fn>
  void ForEachCounter(Fn&& fn) const {
    fn("cases", cases);
    fn("runs", runs);
    fn("shrink_runs", shrink_runs);
    fn("crashes_fired", crashes_fired);
    fn("crashes_skipped", crashes_skipped);
    fn("whole_machine_restarts", whole_machine_restarts);
    fn("committed", committed);
  }
};

/// Randomized crash-schedule fuzzer with deterministic replay.
///
/// Each seed samples one scenario (SampleFuzzCase) and runs it through the
/// Harness under every configured protocol; after every recovery and at
/// quiescence the IfaChecker oracle compares the machine-visible state
/// against ground truth. The IFA protocols must show zero violations and
/// zero unnecessary aborts; the baselines act as oracles of expected-abort
/// behavior (RebootAll must always whole-machine-restart). On failure the
/// schedule is shrunk (greedy delta debugging over crash plans, node sets,
/// plan attributes, workload sizes, and cadences) to a minimal reproducer,
/// and a JSON replay document re-executes it bit-identically.
class CrashScheduleFuzzer {
 public:
  struct Options {
    /// Protocols every case runs under; defaults to DefaultProtocols().
    std::vector<RecoveryConfig> protocols;
    /// Fault injection: break undo tagging in every protocol run (see
    /// RecoveryConfig::disable_undo_tagging). Used to prove the fuzzer
    /// catches real violations.
    bool disable_undo_tagging = false;
    /// Upper bound on re-runs the shrinker may spend per failure.
    size_t max_shrink_runs = 400;
    /// When > 1, every case additionally runs the parallel-recovery
    /// differential: a serial baseline captures a StateDigest after each
    /// recovery, then the schedule re-runs once per fired recovery with
    /// exactly that recovery at `recovery_threads` worker streams (all
    /// earlier ones serial), and the digests must match. A mismatch is a
    /// "parallel-divergence" failure, and the shrinker minimises it like
    /// any other (RunCase re-runs the whole differential per candidate).
    uint32_t recovery_threads = 1;
    /// Run every protocol with the group-commit pipeline on (coalesced
    /// commit and LBM forces). Orthogonal to protocol identity: the same
    /// IFA predicates must hold, exercising the acknowledgement-after-
    /// force and crash-time-resolution paths.
    bool group_commit = false;
    /// Pipeline knobs when group_commit is set (0 = keep the defaults).
    uint64_t group_commit_window_ns = 0;
    uint32_t group_commit_max_batch = 0;
    /// Run every protocol with on-demand (instant) recovery: the crash-time
    /// pass only runs the eager prefix, traffic resumes in the Recovering
    /// state, and obligations discharge on first touch / via the harness
    /// sweeper. Orthogonal to protocol identity — the same IFA predicates
    /// must hold.
    bool on_demand = false;
    /// Shard transaction execution across this many ThreadPool workers
    /// (HarnessConfig::exec.execution_threads) in every run. The
    /// schedule-replay batcher keeps results digest-identical to serial,
    /// so this adds no new failure semantics — it is a concurrency matrix
    /// knob for sanitizer builds.
    uint32_t execution_threads = 1;
    /// On failure, re-run the shrunk reproducer with event tracing on and
    /// embed a bounded forensic report (trace tails, the offending
    /// object's log chain, lock state, tag-scan decisions) in the replay
    /// document.
    bool forensics = true;
    /// Per-node trace ring capacity used by the forensic re-run.
    uint32_t trace_capacity = 4096;
  };

  /// The five IFA protocol variants plus the two baselines-as-oracles.
  static std::vector<RecoveryConfig> DefaultProtocols();

  CrashScheduleFuzzer() : CrashScheduleFuzzer(Options()) {}
  explicit CrashScheduleFuzzer(Options opts);

  /// Samples the seed's scenario and runs it under every protocol.
  /// Returns the first failure, if any.
  std::optional<FuzzFailure> RunSeed(uint64_t seed);

  /// Runs one case under one protocol and applies the failure predicate.
  FuzzVerdict RunCase(const FuzzCase& fuzz_case, RecoveryConfig protocol);

  /// Delta-debugs the failing case to a (locally) minimal reproducer that
  /// still fails under the failure's protocol.
  FuzzCase Shrink(const FuzzFailure& failure);

  /// Re-runs the shrunk reproducer with event tracing enabled (the re-run
  /// is deterministic, so the failure reproduces bit-identically) and
  /// builds the crash-forensics document: whether the failure reproduced,
  /// per-node trace tails, and — for IFA violations — the offending
  /// object's log chain, lock state and tag-scan decisions.
  json::Value CollectForensics(const FuzzFailure& failure,
                               const FuzzCase& shrunk);

  /// Serializes a self-contained replay document for `failure` with the
  /// shrunk case as the schedule to re-execute. `forensics` (from
  /// CollectForensics), when non-null, is embedded under "forensics".
  std::string ReplayJson(const FuzzFailure& failure, const FuzzCase& shrunk,
                         const json::Value* forensics = nullptr) const;

  struct ReplayDoc {
    uint64_t seed = 0;
    FuzzCase fuzz_case;
    RecoveryConfig protocol;
    /// Worker streams the failing run used (1 = plain serial run).
    uint32_t recovery_threads = 1;
    /// Group-commit pipeline configuration of the failing run (absent in
    /// older documents: off).
    bool group_commit = false;
    uint64_t group_commit_window_ns = 0;
    uint32_t group_commit_max_batch = 0;
    /// On-demand recovery flag of the failing run (absent in older
    /// documents: off).
    bool on_demand = false;
    /// Execution-sharding width of the producing campaign (absent in
    /// older documents: serial).
    uint32_t execution_threads = 1;
    /// Observability settings of the producing campaign (absent in older
    /// documents: forensics on, default capacity).
    bool forensics_enabled = true;
    uint32_t trace_capacity = 4096;
    std::string recorded_kind;
    std::string recorded_detail;
  };
  static Result<ReplayDoc> ParseReplay(const std::string& json_text);

  const FuzzStats& stats() const { return stats_; }

  /// Applies the option-level overrides (fault injection, group commit) to
  /// a protocol. Every run path funnels through this, so the campaign
  /// runner, the shrinker and replay all agree on the effective config.
  RecoveryConfig EffectiveProtocol(RecoveryConfig protocol) const;

 private:
  /// The differential leg of RunCase: re-runs `base` once per recovery the
  /// serial run fired, parallelising only that recovery, and compares the
  /// post-recovery digest and the recovery outcome's logical fields.
  FuzzVerdict CheckParallelEquivalence(const HarnessConfig& base,
                                       const HarnessReport& serial);

  Options opts_;
  FuzzStats stats_;
};

/// Result of a (possibly sharded) fuzz campaign over a contiguous seed
/// range: the first failure in *seed order* (if any) and the stats
/// accumulated over every seed up to and including the failing one.
struct FuzzCampaignResult {
  std::optional<FuzzFailure> failure;
  FuzzStats stats;
  /// One stats block per completed seed, in seed order up to and including
  /// the failing one. Merging these reproduces `stats` exactly; the
  /// campaign summary aggregates them (per-seed min/max/mean).
  std::vector<FuzzStats> per_seed;
};

/// Per-counter min/max/mean over the campaign's per-seed stats blocks:
/// {"seeds": N, "cases": {"min":..,"max":..,"mean":..}, ...}. Empty object
/// when no seed completed.
json::Value PerSeedAggregateJson(const std::vector<FuzzStats>& per_seed);

/// Runs seeds [seed_start, seed_start + seed_count) under `opts`, sharded
/// across `jobs` worker threads. Each seed runs in a fresh fuzzer instance
/// (a seed's outcome depends only on (seed, opts)), and results are folded
/// in seed order up to and including the first failure — so the verdict,
/// the failing seed, and the merged stats are byte-identical to a serial
/// run regardless of `jobs`.
FuzzCampaignResult RunFuzzCampaign(const CrashScheduleFuzzer::Options& opts,
                                   uint64_t seed_start, uint64_t seed_count,
                                   unsigned jobs);

}  // namespace smdb

#endif  // SMDB_FUZZ_FUZZER_H_
