#include "fuzz/fuzz_case.h"

#include "common/rng.h"
#include "workload/spec_json.h"

namespace smdb {

json::Value FuzzCase::ToJson() const {
  json::Value v = json::Value::Object();
  v.Set("num_nodes", json::Value::Uint(num_nodes));
  v.Set("num_records", json::Value::Uint(num_records));
  v.Set("record_data_size", json::Value::Uint(record_data_size));
  v.Set("workload", smdb::ToJson(workload));
  v.Set("crashes", smdb::ToJson(crashes));
  v.Set("steal_flush_prob", json::Value::Double(steal_flush_prob));
  v.Set("checkpoint_every_steps", json::Value::Uint(checkpoint_every_steps));
  v.Set("harness_seed", json::Value::Uint(harness_seed));
  return v;
}

Result<FuzzCase> FuzzCase::FromJson(const json::Value& v) {
  if (!v.is_object()) {
    return Status::InvalidArgument("fuzz case: expected object");
  }
  FuzzCase c;
  c.num_nodes = static_cast<uint16_t>(v.GetUint("num_nodes", c.num_nodes));
  if (c.num_nodes == 0) {
    return Status::InvalidArgument("fuzz case: num_nodes must be > 0");
  }
  c.num_records =
      static_cast<uint32_t>(v.GetUint("num_records", c.num_records));
  c.record_data_size = static_cast<uint16_t>(
      v.GetUint("record_data_size", c.record_data_size));
  const json::Value* w = v.Find("workload");
  if (w != nullptr) {
    SMDB_ASSIGN_OR_RETURN(c.workload, WorkloadSpecFromJson(*w));
  }
  const json::Value* crashes = v.Find("crashes");
  if (crashes != nullptr) {
    SMDB_ASSIGN_OR_RETURN(c.crashes, CrashPlansFromJson(*crashes));
  }
  c.steal_flush_prob = v.GetDouble("steal_flush_prob", c.steal_flush_prob);
  c.checkpoint_every_steps =
      v.GetUint("checkpoint_every_steps", c.checkpoint_every_steps);
  c.harness_seed = v.GetUint("harness_seed", c.harness_seed);
  return c;
}

FuzzCase SampleFuzzCase(uint64_t seed) {
  // Decorrelate from the many small seeds tests use directly.
  Rng rng(seed * 0x9E3779B97F4A7C15ULL + 0xF1EA5EED);
  FuzzCase c;
  c.num_nodes = static_cast<uint16_t>(rng.Range(2, 8));
  c.num_records = static_cast<uint32_t>(rng.Range(1, 4)) * 32;
  const uint16_t kRecordSizes[] = {16, 22, 30};
  c.record_data_size = kRecordSizes[rng.Uniform(3)];
  c.workload = SampleWorkloadSpec(rng);
  // One executor step is one op; horizon approximates the drain point
  // (each txn runs ops_per_txn ops plus its commit/abort).
  uint64_t horizon = uint64_t(c.num_nodes) * c.workload.txns_per_node *
                     (c.workload.ops_per_txn + 1);
  c.crashes = SampleCrashPlans(rng, c.num_nodes, horizon);
  c.steal_flush_prob = rng.Bernoulli(0.5) ? 0.03 : 0.0;
  c.checkpoint_every_steps = rng.Bernoulli(0.35) ? rng.Range(40, 160) : 0;
  c.harness_seed = rng.Next();
  return c;
}

HarnessConfig MakeHarnessConfig(const FuzzCase& fuzz_case,
                                const RecoveryConfig& protocol) {
  HarnessConfig cfg;
  cfg.db.machine.num_nodes = fuzz_case.num_nodes;
  cfg.db.record_data_size = fuzz_case.record_data_size;
  cfg.db.recovery = protocol;
  cfg.num_records = fuzz_case.num_records;
  cfg.workload = fuzz_case.workload;
  cfg.crashes = fuzz_case.crashes;
  cfg.steal_flush_prob = fuzz_case.steal_flush_prob;
  cfg.checkpoint_every_steps = fuzz_case.checkpoint_every_steps;
  cfg.seed = fuzz_case.harness_seed;
  cfg.verify = true;
  return cfg;
}

}  // namespace smdb
