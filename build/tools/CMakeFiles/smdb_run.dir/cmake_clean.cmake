file(REMOVE_RECURSE
  "CMakeFiles/smdb_run.dir/smdb_run.cc.o"
  "CMakeFiles/smdb_run.dir/smdb_run.cc.o.d"
  "smdb_run"
  "smdb_run.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/smdb_run.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
