# Empty dependencies file for smdb_run.
# This may be replaced when dependencies are built.
