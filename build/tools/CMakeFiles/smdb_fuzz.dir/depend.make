# Empty dependencies file for smdb_fuzz.
# This may be replaced when dependencies are built.
