file(REMOVE_RECURSE
  "CMakeFiles/smdb_fuzz.dir/smdb_fuzz.cc.o"
  "CMakeFiles/smdb_fuzz.dir/smdb_fuzz.cc.o.d"
  "smdb_fuzz"
  "smdb_fuzz.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/smdb_fuzz.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
