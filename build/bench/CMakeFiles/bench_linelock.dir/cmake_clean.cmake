file(REMOVE_RECURSE
  "CMakeFiles/bench_linelock.dir/bench_linelock.cc.o"
  "CMakeFiles/bench_linelock.dir/bench_linelock.cc.o.d"
  "bench_linelock"
  "bench_linelock.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_linelock.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
