# Empty dependencies file for bench_linelock.
# This may be replaced when dependencies are built.
