# Empty compiler generated dependencies file for bench_log_forces.
# This may be replaced when dependencies are built.
