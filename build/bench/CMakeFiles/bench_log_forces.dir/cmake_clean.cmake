file(REMOVE_RECURSE
  "CMakeFiles/bench_log_forces.dir/bench_log_forces.cc.o"
  "CMakeFiles/bench_log_forces.dir/bench_log_forces.cc.o.d"
  "bench_log_forces"
  "bench_log_forces.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_log_forces.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
