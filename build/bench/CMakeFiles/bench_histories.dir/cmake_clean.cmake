file(REMOVE_RECURSE
  "CMakeFiles/bench_histories.dir/bench_histories.cc.o"
  "CMakeFiles/bench_histories.dir/bench_histories.cc.o.d"
  "bench_histories"
  "bench_histories.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_histories.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
