file(REMOVE_RECURSE
  "CMakeFiles/bench_lcb_layout.dir/bench_lcb_layout.cc.o"
  "CMakeFiles/bench_lcb_layout.dir/bench_lcb_layout.cc.o.d"
  "bench_lcb_layout"
  "bench_lcb_layout.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_lcb_layout.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
