# Empty dependencies file for bench_crash_cases.
# This may be replaced when dependencies are built.
