file(REMOVE_RECURSE
  "CMakeFiles/bench_crash_cases.dir/bench_crash_cases.cc.o"
  "CMakeFiles/bench_crash_cases.dir/bench_crash_cases.cc.o.d"
  "bench_crash_cases"
  "bench_crash_cases.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_crash_cases.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
