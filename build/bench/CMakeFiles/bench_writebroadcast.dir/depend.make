# Empty dependencies file for bench_writebroadcast.
# This may be replaced when dependencies are built.
