file(REMOVE_RECURSE
  "CMakeFiles/bench_writebroadcast.dir/bench_writebroadcast.cc.o"
  "CMakeFiles/bench_writebroadcast.dir/bench_writebroadcast.cc.o.d"
  "bench_writebroadcast"
  "bench_writebroadcast.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_writebroadcast.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
