# Empty dependencies file for bench_abort_avoidance.
# This may be replaced when dependencies are built.
