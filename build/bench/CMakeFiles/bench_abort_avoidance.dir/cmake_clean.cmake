file(REMOVE_RECURSE
  "CMakeFiles/bench_abort_avoidance.dir/bench_abort_avoidance.cc.o"
  "CMakeFiles/bench_abort_avoidance.dir/bench_abort_avoidance.cc.o.d"
  "bench_abort_avoidance"
  "bench_abort_avoidance.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_abort_avoidance.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
