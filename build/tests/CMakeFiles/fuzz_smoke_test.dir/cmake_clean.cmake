file(REMOVE_RECURSE
  "CMakeFiles/fuzz_smoke_test.dir/fuzz_smoke_test.cc.o"
  "CMakeFiles/fuzz_smoke_test.dir/fuzz_smoke_test.cc.o.d"
  "fuzz_smoke_test"
  "fuzz_smoke_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fuzz_smoke_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
