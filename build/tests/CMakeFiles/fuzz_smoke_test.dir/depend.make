# Empty dependencies file for fuzz_smoke_test.
# This may be replaced when dependencies are built.
