file(REMOVE_RECURSE
  "CMakeFiles/parallel_txn_test.dir/parallel_txn_test.cc.o"
  "CMakeFiles/parallel_txn_test.dir/parallel_txn_test.cc.o.d"
  "parallel_txn_test"
  "parallel_txn_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/parallel_txn_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
