# Empty dependencies file for ifa_checker_test.
# This may be replaced when dependencies are built.
