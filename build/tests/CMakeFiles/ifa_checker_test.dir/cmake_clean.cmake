file(REMOVE_RECURSE
  "CMakeFiles/ifa_checker_test.dir/ifa_checker_test.cc.o"
  "CMakeFiles/ifa_checker_test.dir/ifa_checker_test.cc.o.d"
  "ifa_checker_test"
  "ifa_checker_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ifa_checker_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
