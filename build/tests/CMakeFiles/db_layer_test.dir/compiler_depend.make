# Empty compiler generated dependencies file for db_layer_test.
# This may be replaced when dependencies are built.
