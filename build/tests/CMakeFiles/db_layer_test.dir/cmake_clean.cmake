file(REMOVE_RECURSE
  "CMakeFiles/db_layer_test.dir/db_layer_test.cc.o"
  "CMakeFiles/db_layer_test.dir/db_layer_test.cc.o.d"
  "db_layer_test"
  "db_layer_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/db_layer_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
