file(REMOVE_RECURSE
  "CMakeFiles/crash_scenarios_test.dir/crash_scenarios_test.cc.o"
  "CMakeFiles/crash_scenarios_test.dir/crash_scenarios_test.cc.o.d"
  "crash_scenarios_test"
  "crash_scenarios_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/crash_scenarios_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
