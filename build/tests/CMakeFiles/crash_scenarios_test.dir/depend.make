# Empty dependencies file for crash_scenarios_test.
# This may be replaced when dependencies are built.
