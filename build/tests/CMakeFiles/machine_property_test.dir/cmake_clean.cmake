file(REMOVE_RECURSE
  "CMakeFiles/machine_property_test.dir/machine_property_test.cc.o"
  "CMakeFiles/machine_property_test.dir/machine_property_test.cc.o.d"
  "machine_property_test"
  "machine_property_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/machine_property_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
