# Empty dependencies file for machine_property_test.
# This may be replaced when dependencies are built.
