file(REMOVE_RECURSE
  "CMakeFiles/disk_map_test.dir/disk_map_test.cc.o"
  "CMakeFiles/disk_map_test.dir/disk_map_test.cc.o.d"
  "disk_map_test"
  "disk_map_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/disk_map_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
