file(REMOVE_RECURSE
  "CMakeFiles/lbm_policy_test.dir/lbm_policy_test.cc.o"
  "CMakeFiles/lbm_policy_test.dir/lbm_policy_test.cc.o.d"
  "lbm_policy_test"
  "lbm_policy_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lbm_policy_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
