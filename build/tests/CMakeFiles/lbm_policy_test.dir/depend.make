# Empty dependencies file for lbm_policy_test.
# This may be replaced when dependencies are built.
