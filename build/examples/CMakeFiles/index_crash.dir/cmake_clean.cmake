file(REMOVE_RECURSE
  "CMakeFiles/index_crash.dir/index_crash.cpp.o"
  "CMakeFiles/index_crash.dir/index_crash.cpp.o.d"
  "index_crash"
  "index_crash.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/index_crash.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
