# Empty compiler generated dependencies file for index_crash.
# This may be replaced when dependencies are built.
