# Empty compiler generated dependencies file for os_structures.
# This may be replaced when dependencies are built.
