file(REMOVE_RECURSE
  "CMakeFiles/os_structures.dir/os_structures.cpp.o"
  "CMakeFiles/os_structures.dir/os_structures.cpp.o.d"
  "os_structures"
  "os_structures.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/os_structures.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
