# Empty compiler generated dependencies file for dsm_powerdown.
# This may be replaced when dependencies are built.
