file(REMOVE_RECURSE
  "CMakeFiles/dsm_powerdown.dir/dsm_powerdown.cpp.o"
  "CMakeFiles/dsm_powerdown.dir/dsm_powerdown.cpp.o.d"
  "dsm_powerdown"
  "dsm_powerdown.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dsm_powerdown.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
