file(REMOVE_RECURSE
  "libsmdb.a"
)
