# Empty dependencies file for smdb.
# This may be replaced when dependencies are built.
