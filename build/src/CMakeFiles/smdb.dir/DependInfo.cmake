
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/btree/btree.cc" "src/CMakeFiles/smdb.dir/btree/btree.cc.o" "gcc" "src/CMakeFiles/smdb.dir/btree/btree.cc.o.d"
  "/root/repo/src/btree/btree_recovery.cc" "src/CMakeFiles/smdb.dir/btree/btree_recovery.cc.o" "gcc" "src/CMakeFiles/smdb.dir/btree/btree_recovery.cc.o.d"
  "/root/repo/src/common/json.cc" "src/CMakeFiles/smdb.dir/common/json.cc.o" "gcc" "src/CMakeFiles/smdb.dir/common/json.cc.o.d"
  "/root/repo/src/common/rng.cc" "src/CMakeFiles/smdb.dir/common/rng.cc.o" "gcc" "src/CMakeFiles/smdb.dir/common/rng.cc.o.d"
  "/root/repo/src/common/status.cc" "src/CMakeFiles/smdb.dir/common/status.cc.o" "gcc" "src/CMakeFiles/smdb.dir/common/status.cc.o.d"
  "/root/repo/src/core/baselines.cc" "src/CMakeFiles/smdb.dir/core/baselines.cc.o" "gcc" "src/CMakeFiles/smdb.dir/core/baselines.cc.o.d"
  "/root/repo/src/core/database.cc" "src/CMakeFiles/smdb.dir/core/database.cc.o" "gcc" "src/CMakeFiles/smdb.dir/core/database.cc.o.d"
  "/root/repo/src/core/dependency_tracker.cc" "src/CMakeFiles/smdb.dir/core/dependency_tracker.cc.o" "gcc" "src/CMakeFiles/smdb.dir/core/dependency_tracker.cc.o.d"
  "/root/repo/src/core/ifa_checker.cc" "src/CMakeFiles/smdb.dir/core/ifa_checker.cc.o" "gcc" "src/CMakeFiles/smdb.dir/core/ifa_checker.cc.o.d"
  "/root/repo/src/core/lbm_policy.cc" "src/CMakeFiles/smdb.dir/core/lbm_policy.cc.o" "gcc" "src/CMakeFiles/smdb.dir/core/lbm_policy.cc.o.d"
  "/root/repo/src/core/recovery_manager.cc" "src/CMakeFiles/smdb.dir/core/recovery_manager.cc.o" "gcc" "src/CMakeFiles/smdb.dir/core/recovery_manager.cc.o.d"
  "/root/repo/src/core/redo_all.cc" "src/CMakeFiles/smdb.dir/core/redo_all.cc.o" "gcc" "src/CMakeFiles/smdb.dir/core/redo_all.cc.o.d"
  "/root/repo/src/core/selective_redo.cc" "src/CMakeFiles/smdb.dir/core/selective_redo.cc.o" "gcc" "src/CMakeFiles/smdb.dir/core/selective_redo.cc.o.d"
  "/root/repo/src/core/stable_state.cc" "src/CMakeFiles/smdb.dir/core/stable_state.cc.o" "gcc" "src/CMakeFiles/smdb.dir/core/stable_state.cc.o.d"
  "/root/repo/src/db/buffer_manager.cc" "src/CMakeFiles/smdb.dir/db/buffer_manager.cc.o" "gcc" "src/CMakeFiles/smdb.dir/db/buffer_manager.cc.o.d"
  "/root/repo/src/db/page_layout.cc" "src/CMakeFiles/smdb.dir/db/page_layout.cc.o" "gcc" "src/CMakeFiles/smdb.dir/db/page_layout.cc.o.d"
  "/root/repo/src/db/record_store.cc" "src/CMakeFiles/smdb.dir/db/record_store.cc.o" "gcc" "src/CMakeFiles/smdb.dir/db/record_store.cc.o.d"
  "/root/repo/src/db/wal_table.cc" "src/CMakeFiles/smdb.dir/db/wal_table.cc.o" "gcc" "src/CMakeFiles/smdb.dir/db/wal_table.cc.o.d"
  "/root/repo/src/fuzz/fuzz_case.cc" "src/CMakeFiles/smdb.dir/fuzz/fuzz_case.cc.o" "gcc" "src/CMakeFiles/smdb.dir/fuzz/fuzz_case.cc.o.d"
  "/root/repo/src/fuzz/fuzzer.cc" "src/CMakeFiles/smdb.dir/fuzz/fuzzer.cc.o" "gcc" "src/CMakeFiles/smdb.dir/fuzz/fuzzer.cc.o.d"
  "/root/repo/src/hash/hash_index.cc" "src/CMakeFiles/smdb.dir/hash/hash_index.cc.o" "gcc" "src/CMakeFiles/smdb.dir/hash/hash_index.cc.o.d"
  "/root/repo/src/lockmgr/lcb.cc" "src/CMakeFiles/smdb.dir/lockmgr/lcb.cc.o" "gcc" "src/CMakeFiles/smdb.dir/lockmgr/lcb.cc.o.d"
  "/root/repo/src/lockmgr/lock_table.cc" "src/CMakeFiles/smdb.dir/lockmgr/lock_table.cc.o" "gcc" "src/CMakeFiles/smdb.dir/lockmgr/lock_table.cc.o.d"
  "/root/repo/src/os/disk_map.cc" "src/CMakeFiles/smdb.dir/os/disk_map.cc.o" "gcc" "src/CMakeFiles/smdb.dir/os/disk_map.cc.o.d"
  "/root/repo/src/sim/cache.cc" "src/CMakeFiles/smdb.dir/sim/cache.cc.o" "gcc" "src/CMakeFiles/smdb.dir/sim/cache.cc.o.d"
  "/root/repo/src/sim/directory.cc" "src/CMakeFiles/smdb.dir/sim/directory.cc.o" "gcc" "src/CMakeFiles/smdb.dir/sim/directory.cc.o.d"
  "/root/repo/src/sim/line_lock.cc" "src/CMakeFiles/smdb.dir/sim/line_lock.cc.o" "gcc" "src/CMakeFiles/smdb.dir/sim/line_lock.cc.o.d"
  "/root/repo/src/sim/machine.cc" "src/CMakeFiles/smdb.dir/sim/machine.cc.o" "gcc" "src/CMakeFiles/smdb.dir/sim/machine.cc.o.d"
  "/root/repo/src/sim/stats.cc" "src/CMakeFiles/smdb.dir/sim/stats.cc.o" "gcc" "src/CMakeFiles/smdb.dir/sim/stats.cc.o.d"
  "/root/repo/src/storage/disk.cc" "src/CMakeFiles/smdb.dir/storage/disk.cc.o" "gcc" "src/CMakeFiles/smdb.dir/storage/disk.cc.o.d"
  "/root/repo/src/storage/stable_db.cc" "src/CMakeFiles/smdb.dir/storage/stable_db.cc.o" "gcc" "src/CMakeFiles/smdb.dir/storage/stable_db.cc.o.d"
  "/root/repo/src/storage/stable_log.cc" "src/CMakeFiles/smdb.dir/storage/stable_log.cc.o" "gcc" "src/CMakeFiles/smdb.dir/storage/stable_log.cc.o.d"
  "/root/repo/src/txn/executor.cc" "src/CMakeFiles/smdb.dir/txn/executor.cc.o" "gcc" "src/CMakeFiles/smdb.dir/txn/executor.cc.o.d"
  "/root/repo/src/txn/transaction.cc" "src/CMakeFiles/smdb.dir/txn/transaction.cc.o" "gcc" "src/CMakeFiles/smdb.dir/txn/transaction.cc.o.d"
  "/root/repo/src/txn/txn_manager.cc" "src/CMakeFiles/smdb.dir/txn/txn_manager.cc.o" "gcc" "src/CMakeFiles/smdb.dir/txn/txn_manager.cc.o.d"
  "/root/repo/src/wal/checkpoint.cc" "src/CMakeFiles/smdb.dir/wal/checkpoint.cc.o" "gcc" "src/CMakeFiles/smdb.dir/wal/checkpoint.cc.o.d"
  "/root/repo/src/wal/log_manager.cc" "src/CMakeFiles/smdb.dir/wal/log_manager.cc.o" "gcc" "src/CMakeFiles/smdb.dir/wal/log_manager.cc.o.d"
  "/root/repo/src/wal/log_record.cc" "src/CMakeFiles/smdb.dir/wal/log_record.cc.o" "gcc" "src/CMakeFiles/smdb.dir/wal/log_record.cc.o.d"
  "/root/repo/src/workload/harness.cc" "src/CMakeFiles/smdb.dir/workload/harness.cc.o" "gcc" "src/CMakeFiles/smdb.dir/workload/harness.cc.o.d"
  "/root/repo/src/workload/spec_json.cc" "src/CMakeFiles/smdb.dir/workload/spec_json.cc.o" "gcc" "src/CMakeFiles/smdb.dir/workload/spec_json.cc.o.d"
  "/root/repo/src/workload/workload.cc" "src/CMakeFiles/smdb.dir/workload/workload.cc.o" "gcc" "src/CMakeFiles/smdb.dir/workload/workload.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
