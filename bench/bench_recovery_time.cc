// Experiment R1 — restart recovery cost: Redo All vs Selective Redo
// (section 4.1.2) vs the whole-machine reboot baseline.
//
// "In general, the Redo All scheme requires more redo operations to be
// performed at recovery time than does Selective Redo. However, Selective
// Redo requires slightly more runtime support [undo tagging]."
//
// Sweep the amount of work performed before the crash and report recovery
// time, redo operations applied/skipped, and pages reloaded from disk.

#include "bench/bench_util.h"

namespace smdb::bench {
namespace {

void Run() {
  Header("Restart recovery cost: Selective Redo vs Redo All vs RebootAll",
         "section 4.1.2 (restart recovery schemes) + section 7 discussion");
  Row({"txns before crash", "protocol", "recovery time", "redo applied",
       "redo skipped", "pages reloaded", "tag undos"},
      20);
  for (uint64_t txns : {5, 15, 30, 60}) {
    for (auto rc : {RecoveryConfig::VolatileSelectiveRedo(),
                    RecoveryConfig::VolatileRedoAll(),
                    RecoveryConfig::BaselineRebootAll()}) {
      HarnessConfig cfg = StandardConfig(rc, /*nodes=*/8, /*seed=*/300 + txns);
      cfg.num_records = 512;
      cfg.workload.txns_per_node = txns;
      cfg.workload.index_op_ratio = 0.1;
      // Crash late so most of the workload's updates are in play.
      cfg.crashes = {
          CrashPlan{txns * 8 * 8 * 3 / 4, {2}, /*restart_after=*/false}};
      Harness h(cfg);
      HarnessReport r = MustRun(h);
      if (r.recoveries.empty()) {
        Row({std::to_string(txns), rc.Name(), "(workload finished early)"},
            20);
        continue;
      }
      const RecoveryOutcome& o = r.recoveries[0];
      Row({std::to_string(txns), rc.Name(), FmtMs(o.recovery_time_ns),
           std::to_string(o.redo_applied), std::to_string(o.redo_skipped),
           std::to_string(o.pages_reloaded), std::to_string(o.tag_undos)},
          20);
    }
    std::printf("\n");
  }
  std::printf(
      "shape check: Selective Redo reloads only lost pages and skips redo"
      " for\nupdates that survived in caches or the stable database, so it"
      " applies fewer\nredos and recovers faster than Redo All; both are far"
      " cheaper than the\nwhole-machine reboot (which also pays the reboot"
      " penalty and re-reads\neverything).\n");
}

}  // namespace
}  // namespace smdb::bench

int main() { smdb::bench::Run(); }
