// Experiment R1 — restart recovery cost: Redo All vs Selective Redo
// (section 4.1.2) vs the whole-machine reboot baseline.
//
// "In general, the Redo All scheme requires more redo operations to be
// performed at recovery time than does Selective Redo. However, Selective
// Redo requires slightly more runtime support [undo tagging]."
//
// Sweep the amount of work performed before the crash and report recovery
// time, redo operations applied/skipped, and pages reloaded from disk.
//
// Experiment R1b — parallel partitioned recovery: sweep the
// recovery_threads knob on a multi-node crash with a redo-heavy history
// and report recovery time per worker-stream count. Partitioning the redo
// pass by page (and undo by key) keeps each stream's line traffic
// disjoint, so the line-lock grant chains and header-line transfers that
// serialise the one-stream pipeline fan out over the survivors' clocks.
// Results (and speedups vs serial) are written to
// BENCH_recovery_parallel.json.

#include <fstream>

#include "bench/bench_util.h"
#include "common/json.h"

namespace smdb::bench {
namespace {

void Run() {
  Header("Restart recovery cost: Selective Redo vs Redo All vs RebootAll",
         "section 4.1.2 (restart recovery schemes) + section 7 discussion");
  Row({"txns before crash", "protocol", "recovery time", "redo applied",
       "redo skipped", "pages reloaded", "tag undos"},
      20);
  for (uint64_t txns : {5, 15, 30, 60}) {
    for (auto rc : {RecoveryConfig::VolatileSelectiveRedo(),
                    RecoveryConfig::VolatileRedoAll(),
                    RecoveryConfig::BaselineRebootAll()}) {
      HarnessConfig cfg = StandardConfig(rc, /*nodes=*/8, /*seed=*/300 + txns);
      cfg.num_records = 512;
      cfg.workload.txns_per_node = txns;
      cfg.workload.index_op_ratio = 0.1;
      // Crash late so most of the workload's updates are in play.
      cfg.crashes = {
          CrashPlan{txns * 8 * 8 * 3 / 4, {2}, /*restart_after=*/false}};
      Harness h(cfg);
      HarnessReport r = MustRun(h);
      if (r.recoveries.empty()) {
        Row({std::to_string(txns), rc.Name(), "(workload finished early)"},
            20);
        continue;
      }
      const RecoveryOutcome& o = r.recoveries[0];
      Row({std::to_string(txns), rc.Name(), FmtMs(o.recovery_time_ns),
           std::to_string(o.redo_applied), std::to_string(o.redo_skipped),
           std::to_string(o.pages_reloaded), std::to_string(o.tag_undos)},
          20);
    }
    std::printf("\n");
  }
  std::printf(
      "shape check: Selective Redo reloads only lost pages and skips redo"
      " for\nupdates that survived in caches or the stable database, so it"
      " applies fewer\nredos and recovers faster than Redo All; both are far"
      " cheaper than the\nwhole-machine reboot (which also pays the reboot"
      " penalty and re-reads\neverything).\n");
}

/// Redo-heavy multi-node crash workload for the threads sweep: a long
/// update-dominated history with no steal flushes, so almost all of it must
/// be redone from the logs, and a two-node crash late in the run.
HarnessConfig ParallelSweepConfig(RecoveryConfig rc, uint32_t threads) {
  HarnessConfig cfg = StandardConfig(rc, /*nodes=*/8, /*seed=*/777);
  cfg.db.recovery.recovery_threads = threads;
  cfg.num_records = 256;
  cfg.workload.txns_per_node = 500;
  cfg.workload.ops_per_txn = 10;
  cfg.workload.write_ratio = 0.9;
  cfg.workload.index_op_ratio = 0.1;
  // No steal flushes: the stable database stays at its checkpoint image,
  // so every committed update must be redone from the logs — recovery is
  // redo-bound, which is the case the partitioned streams target (the page
  // reload cost is a fixed floor that is already survivor-parallel).
  cfg.steal_flush_prob = 0.0;
  // A two-node crash late in a long update-heavy history.
  cfg.crashes = {CrashPlan{500 * 10 * 8 * 3 / 4, {2, 3},
                           /*restart_after=*/false}};
  return cfg;
}

void RunParallelSweep() {
  Header("Parallel partitioned recovery: threads vs recovery time",
         "parallel recovery pipeline (recovery_threads knob), multi-node "
         "crash");
  Row({"protocol", "threads", "recovery time", "speedup", "redo applied",
       "tag undos"},
      20);

  json::Value doc = json::Value::Object();
  doc.Set("bench", json::Value::Str("recovery_parallel"));
  doc.Set("nodes", json::Value::Uint(8));
  doc.Set("crashed_nodes", json::Value::Uint(2));
  json::Value series = json::Value::Array();

  for (auto rc : {RecoveryConfig::VolatileRedoAll(),
                  RecoveryConfig::VolatileSelectiveRedo()}) {
    SimTime serial_ns = 0;
    json::Value sweep = json::Value::Array();
    for (uint32_t threads : {1u, 2u, 4u, 8u}) {
      Harness h(ParallelSweepConfig(rc, threads));
      HarnessReport r = MustRun(h);
      if (r.recoveries.empty()) {
        Row({rc.Name(), std::to_string(threads), "(no recovery fired)"}, 20);
        continue;
      }
      const RecoveryOutcome& o = r.recoveries[0];
      if (threads == 1) serial_ns = o.recovery_time_ns;
      double speedup = o.recovery_time_ns == 0
                           ? 0.0
                           : double(serial_ns) / double(o.recovery_time_ns);
      Row({rc.Name(), std::to_string(threads), FmtMs(o.recovery_time_ns),
           Fmt(speedup) + "x", std::to_string(o.redo_applied),
           std::to_string(o.tag_undos)},
          20);
      json::Value pt = json::Value::Object();
      pt.Set("threads", json::Value::Uint(threads));
      pt.Set("recovery_time_ns", json::Value::Uint(o.recovery_time_ns));
      pt.Set("speedup_vs_serial", json::Value::Double(speedup));
      pt.Set("redo_applied", json::Value::Uint(o.redo_applied));
      pt.Set("redo_skipped", json::Value::Uint(o.redo_skipped));
      pt.Set("undo_applied", json::Value::Uint(o.undo_applied));
      sweep.Append(std::move(pt));
    }
    json::Value entry = json::Value::Object();
    entry.Set("protocol", json::Value::Str(rc.Name()));
    entry.Set("sweep", std::move(sweep));
    series.Append(std::move(entry));
    std::printf("\n");
  }
  doc.Set("series", std::move(series));

  std::ofstream out("BENCH_recovery_parallel.json");
  if (out) {
    out << doc.Dump(2) << "\n";
    std::printf("wrote BENCH_recovery_parallel.json\n");
  }
  std::printf(
      "shape check: same redo/undo counts at every thread count (the work\n"
      "is identical; only its partitioning changes), recovery time falling\n"
      "as streams stop contending on line locks and header lines; the\n"
      "differential test matrix (ctest -L parallel) proves the recovered\n"
      "state is bit-identical across the sweep.\n");
}

}  // namespace
}  // namespace smdb::bench

int main() {
  smdb::bench::Run();
  smdb::bench::RunParallelSweep();
}
