// Experiment X2 — write-broadcast coherence (footnote 2, section 7).
//
// "Under a write-broadcast cache coherency protocol ... the last node to
// update a cache line [does not hold] an exclusive copy — both nodes would
// end up with a copy. In general, a write-broadcast protocol does not
// require redo — only undo would be required at restart recovery. Thus ...
// the Selective Redo scheme would be the best choice."

#include "bench/bench_util.h"

namespace smdb::bench {
namespace {

void RunOne(CoherenceKind kind, RecoveryConfig rc) {
  HarnessConfig cfg = StandardConfig(rc, /*nodes=*/8, /*seed=*/777);
  cfg.db.machine.coherence = kind;
  cfg.workload.txns_per_node = 25;
  cfg.workload.write_ratio = 0.7;
  cfg.crashes = {CrashPlan{600, {2}, false}};
  Harness h(cfg);
  HarnessReport r = MustRun(h);
  uint64_t redo = 0, undo = 0;
  SimTime rt = 0;
  if (!r.recoveries.empty()) {
    redo = r.recoveries[0].redo_applied;
    undo = r.recoveries[0].undo_applied + r.recoveries[0].tag_undos;
    rt = r.recoveries[0].recovery_time_ns;
  }
  Row({kind == CoherenceKind::kWriteInvalidate ? "write-invalidate"
                                               : "write-broadcast",
       rc.Name(), std::to_string(r.machine.migrations),
       std::to_string(r.machine.broadcast_updates),
       std::to_string(r.machine.lines_lost), std::to_string(redo),
       std::to_string(undo), FmtMs(rt)},
      22);
}

void Run() {
  Header("Write-invalidate vs write-broadcast coherence",
         "footnote 2 + section 7 (write-broadcast needs essentially no redo; "
         "Selective Redo is the natural scheme)");
  Row({"coherence", "protocol", "migrations", "bcast updates", "lines lost",
       "redo applied", "undos", "recovery time"},
      22);
  for (auto kind :
       {CoherenceKind::kWriteInvalidate, CoherenceKind::kWriteBroadcast}) {
    RunOne(kind, RecoveryConfig::VolatileSelectiveRedo());
    RunOne(kind, RecoveryConfig::VolatileRedoAll());
    std::printf("\n");
  }
  std::printf(
      "shape check: under write-broadcast, shared lines stay valid at every"
      "\nsharer, so a crash loses far fewer lines and Selective Redo applies"
      "\n(almost) no redo — recovery is undo-dominated, matching the paper's"
      "\nsection-7 argument for pairing write-broadcast with Selective"
      " Redo.\n");
}

}  // namespace
}  // namespace smdb::bench

int main() { smdb::bench::Run(); }
