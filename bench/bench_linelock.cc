// Experiment L1 — section 5.1 line-lock latencies.
//
// The paper reports, from the authors' prototype lock manager on a KSR-1:
//   * mean time to obtain a line lock under low contention: < 10 us
//   * mean time with 32 processors contending for the SAME line: < 40 us
//
// This driver reproduces the measurement on the simulated machine: k nodes
// repeatedly getline/(short critical section)/releaseline the same line,
// interleaved round-robin; the mean acquisition latency (queueing delay +
// transfer + grant) is reported per contention level.

#include "bench/bench_util.h"
#include "sim/machine.h"

namespace smdb::bench {
namespace {

struct Point {
  int contenders;
  double mean_total_us;
  double mean_wait_us;
};

Point RunLevel(int contenders, int rounds) {
  MachineConfig cfg;
  cfg.num_nodes = 32;
  Machine m(cfg);
  Addr a = m.AllocShared(cfg.line_size);
  LineAddr line = m.LineOf(a);
  // Hold time: the critical section is an update plus a volatile log write.
  const SimTime hold_ns =
      cfg.timing.cache_hit_ns + cfg.timing.volatile_log_write_ns;
  for (int r = 0; r < rounds; ++r) {
    for (NodeId n = 0; n < contenders; ++n) {
      Status s = m.GetLine(n, line);
      if (!s.ok()) std::abort();
      m.Tick(n, hold_ns);
      m.ReleaseLine(n, line);
    }
  }
  const MachineStats& st = m.stats();
  return Point{contenders,
               double(st.line_lock_total_ns) / double(st.line_lock_acquires) /
                   1e3,
               double(st.line_lock_wait_ns) / double(st.line_lock_acquires) /
                   1e3};
}

void Run() {
  Header("Line lock acquisition latency vs contention",
         "section 5.1 (KSR-1 measurements: <10us low contention, <40us with "
         "32 processors contending)");
  Row({"contending nodes", "mean acquire (us)", "mean queue wait (us)",
       "paper bound"});
  for (int k : {1, 2, 4, 8, 16, 24, 32}) {
    Point p = RunLevel(k, 200);
    std::string bound = k == 1 ? "<10us" : (k == 32 ? "<40us" : "-");
    Row({std::to_string(p.contenders), Fmt(p.mean_total_us),
         Fmt(p.mean_wait_us), bound});
  }
  std::printf(
      "\nshape check: uncontended acquisition is sub-microsecond-to-a-few-us;"
      "\n32-way contention multiplies mean latency by roughly the queue"
      " depth/2,\nlanding in the paper's <40us band.\n");
}

}  // namespace
}  // namespace smdb::bench

int main() { smdb::bench::Run(); }
