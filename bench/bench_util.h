#ifndef SMDB_BENCH_BENCH_UTIL_H_
#define SMDB_BENCH_BENCH_UTIL_H_

// Shared helpers for the experiment drivers. Each bench binary regenerates
// one table/figure/measurement from the paper (see DESIGN.md's experiment
// index) by running workloads on the simulator and printing the series.

#include <cstdio>
#include <fstream>
#include <string>
#include <vector>

#include "obs/histogram.h"
#include "obs/metrics.h"
#include "workload/harness.h"

namespace smdb::bench {

inline void Header(const std::string& title, const std::string& paper_ref) {
  std::printf("\n=== %s ===\n", title.c_str());
  std::printf("paper artifact: %s\n\n", paper_ref.c_str());
}

inline void Row(const std::vector<std::string>& cells, int width = 22) {
  for (const auto& c : cells) std::printf("%-*s", width, c.c_str());
  std::printf("\n");
}

inline std::string Fmt(double v, int prec = 2) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f", prec, v);
  return buf;
}

// Duration formatting lives with the histogram code; these are the
// historical bench spellings.
inline std::string FmtUs(SimTime ns) { return FormatSimTimeUs(ns); }
inline std::string FmtMs(SimTime ns) { return FormatSimTimeMs(ns); }

/// The three IFA protocols of Table 1, in the paper's column order.
inline std::vector<RecoveryConfig> Table1Protocols() {
  return {RecoveryConfig::StableTriggeredRedoAll(),
          RecoveryConfig::VolatileSelectiveRedo(),
          RecoveryConfig::VolatileRedoAll()};
}

/// Standard mixed workload used across experiments (override fields after).
inline HarnessConfig StandardConfig(RecoveryConfig rc, uint16_t nodes = 8,
                                    uint64_t seed = 42) {
  HarnessConfig cfg;
  cfg.db.machine.num_nodes = nodes;
  cfg.db.recovery = rc;
  cfg.num_records = 256;
  cfg.workload.txns_per_node = 25;
  cfg.workload.ops_per_txn = 8;
  cfg.workload.write_ratio = 0.5;
  cfg.workload.index_op_ratio = 0.15;
  cfg.workload.seed = seed;
  cfg.seed = seed ^ 0xBEEF;
  cfg.steal_flush_prob = 0.01;
  return cfg;
}

/// The run's unified metrics snapshot (same shape --stats-json writes), so
/// bench output is machine-comparable against smdb_run sessions.
inline json::Value MetricsJson(const HarnessReport& report) {
  return MetricsRegistry::FromReport(report).ToJson();
}

/// Writes a {series-name: metrics-snapshot} document next to the bench's
/// BENCH_*.json series file.
inline void WriteMetricsSnapshots(
    const std::string& path,
    const std::vector<std::pair<std::string, json::Value>>& snapshots) {
  json::Value doc = json::Value::Object();
  for (const auto& [name, snap] : snapshots) doc.Set(name, snap);
  std::ofstream out(path);
  if (out) {
    out << doc.Dump(1) << "\n";
    std::printf("wrote %s\n", path.c_str());
  } else {
    std::fprintf(stderr, "cannot write %s\n", path.c_str());
  }
}

inline HarnessReport MustRun(Harness& h) {
  auto r = h.Run();
  if (!r.ok()) {
    std::fprintf(stderr, "harness failed: %s\n", r.status().ToString().c_str());
    std::abort();
  }
  if (!r->verify_status.ok()) {
    std::fprintf(stderr, "IFA verification failed: %s\n",
                 r->verify_status.ToString().c_str());
  }
  return *r;
}

}  // namespace smdb::bench

#endif  // SMDB_BENCH_BENCH_UTIL_H_
