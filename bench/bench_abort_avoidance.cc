// Experiment A1 — unnecessary transaction aborts (sections 1, 3.3, 9).
//
// The paper's motivating claim: without IFA, the crash of ONE node aborts
// (or loses) every active transaction in the machine — catastrophic on a
// large multiprocessor (the KSR-1 scales to 1,088 nodes). This driver
// crashes one node mid-workload and counts surviving-node transactions
// aborted by each recovery discipline, sweeping machine size.

#include "bench/bench_util.h"

namespace smdb::bench {
namespace {

struct Point {
  uint64_t active_at_crash;
  uint64_t unnecessary_aborts;
  bool whole_machine;
};

Point RunOne(RecoveryConfig rc, uint16_t nodes, uint64_t seed) {
  HarnessConfig cfg = StandardConfig(rc, nodes, seed);
  cfg.num_records = 64 * nodes;  // keep per-node contention comparable
  cfg.workload.txns_per_node = 12;
  cfg.workload.write_ratio = 0.7;
  cfg.crashes = {CrashPlan{uint64_t(nodes) * 20, {0}, false}};
  Harness h(cfg);
  HarnessReport r = MustRun(h);
  Point p{};
  if (!r.recoveries.empty()) {
    const RecoveryOutcome& o = r.recoveries[0];
    p.active_at_crash = o.annulled.size() + o.preserved.size() +
                        o.forced_aborts.size();
    p.unnecessary_aborts = o.forced_aborts.size();
    p.whole_machine = o.whole_machine_restart;
  }
  return p;
}

void Run() {
  Header("Unnecessary aborts after a single node crash vs machine size",
         "sections 1/3.3/9 (motivation: without IFA one crash aborts ALL "
         "active transactions; IFA aborts none)");
  Row({"nodes", "protocol", "active@crash", "unnecessary aborts",
       "whole reboot"});
  for (uint16_t nodes : {4, 8, 16, 32, 64}) {
    for (auto rc : {RecoveryConfig::BaselineRebootAll(),
                    RecoveryConfig::BaselineAbortDependents(),
                    RecoveryConfig::VolatileSelectiveRedo(),
                    RecoveryConfig::VolatileRedoAll()}) {
      Point p = RunOne(rc, nodes, 1000 + nodes);
      Row({std::to_string(nodes), rc.Name(), std::to_string(p.active_at_crash),
           std::to_string(p.unnecessary_aborts), p.whole_machine ? "YES" : "no"});
    }
    std::printf("\n");
  }
  std::printf(
      "shape check: RebootAll's unnecessary aborts grow linearly with the"
      " node count\n(everything active dies); AbortDependents aborts the"
      " sharing subset; the IFA\nprotocols abort exactly zero surviving"
      " transactions at every scale.\n");
}

}  // namespace
}  // namespace smdb::bench

int main() { smdb::bench::Run(); }
