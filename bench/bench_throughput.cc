// Experiment W1 — normal-operation (failure-free) throughput under each
// protocol (section 7's overall overhead summary), plus the
// execution-sharding sweep (ROADMAP item 2): the same seeded schedule
// replayed across 1..N ThreadPool workers.
//
// Runs the same workload, with no crashes, under: plain FA (no IFA
// provisions), Volatile LBM + Redo All, Volatile LBM + Selective Redo, and
// both Stable LBM enforcements. Reports throughput and slowdown vs FA.
// The sweep section then runs a heavier single-protocol workload at each
// width in --exec-threads (default 1,2,4,8), reporting *host* wall-clock,
// batch occupancy, and the final StateDigest — which must be bit-identical
// at every width. Simulated throughput is width-invariant by construction;
// the wall-clock column is what sharding buys, and it is only honest on a
// multi-core host (host_cpus is recorded in the JSON for exactly that
// reason: on a 1-CPU container the sweep can demonstrate correctness and
// occupancy, not speedup).

#include <chrono>
#include <cstdlib>
#include <cstring>
#include <string>
#include <thread>
#include <vector>

#include "bench/bench_util.h"
#include "common/json.h"
#include "core/state_digest.h"

namespace smdb::bench {
namespace {

std::vector<uint32_t> g_widths = {1, 2, 4, 8};

HarnessConfig SweepConfig(uint32_t width) {
  HarnessConfig cfg =
      StandardConfig(RecoveryConfig::VolatileSelectiveRedo(), /*nodes=*/8,
                     /*seed=*/9090);
  cfg.exec.execution_threads = width;
  cfg.workload.txns_per_node = 200;
  cfg.workload.index_op_ratio = 0.15;
  // Steal-flush timing is batch-granular at W > 1; keep the sweep in the
  // provably width-invariant regime so the digest row is a hard check.
  cfg.steal_flush_prob = 0.0;
  cfg.capture_digests = true;  // one end-of-run digest (no crashes)
  // Profile every width: planning then runs at the canonical width, so the
  // reject-reason histogram is width-invariant (asserted below) and the
  // sweep doubles as the BENCH_exec_profile baseline generator.
  cfg.db.profiler.enabled = true;
  return cfg;
}

void Run() {
  Header("Failure-free throughput: the price of IFA during normal operation",
         "section 7 (overheads summary); related-work positioning of SM "
         "performance");

  struct Res {
    std::string name;
    double tps;
    uint64_t forces;
  };
  std::vector<Res> results;
  std::vector<std::pair<std::string, json::Value>> snapshots;
  for (auto rc : {RecoveryConfig::BaselineRebootAll(),  // plain FA
                  RecoveryConfig::VolatileRedoAll(),
                  RecoveryConfig::VolatileSelectiveRedo(),
                  RecoveryConfig::StableTriggeredRedoAll(),
                  RecoveryConfig::StableEagerRedoAll()}) {
    HarnessConfig cfg = StandardConfig(rc, /*nodes=*/8, /*seed=*/9090);
    cfg.workload.txns_per_node = 50;
    cfg.workload.index_op_ratio = 0.2;
    Harness h(cfg);
    HarnessReport r = MustRun(h);
    results.push_back(
        {rc.Name() + (rc.ensures_ifa() ? "" : " (FA-only)"),
         r.throughput_tps(), r.logs.forces});
    snapshots.emplace_back(rc.Name(), MetricsJson(r));
  }
  double base = results[0].tps;
  Row({"protocol", "txn/sim-s", "slowdown vs FA", "log forces"}, 34);
  for (const auto& res : results) {
    Row({res.name, Fmt(res.tps, 1),
         Fmt((base / res.tps - 1.0) * 100.0, 1) + "%",
         std::to_string(res.forces)},
        34);
  }
  std::printf(
      "\nshape check: Volatile LBM protocols cost a few percent (tag writes,"
      "\nread-lock logging, early commits); Stable LBM eager is dominated by"
      "\nper-update disk forces; triggered Stable LBM sits between.\n\n");

  // ---- Execution-sharding sweep (--exec-threads) ----------------------
  const unsigned host_cpus = std::thread::hardware_concurrency();
  Header("Execution sharding: the same schedule at 1..N pool workers",
         "ROADMAP item 2; cf. multicore main-memory recovery, arXiv "
         "1604.03226");
  std::printf("host cpus: %u%s\n\n", host_cpus,
              host_cpus <= 1 ? "  (single-core host: wall-clock speedup "
                               "cannot manifest here)"
                             : "");
  Row({"exec threads", "txn/sim-s", "host wall ms", "speedup", "batches",
       "batched steps", "solo steps", "digest"},
      14);

  json::Value sweep = json::Value::Object();
  sweep.Set("host_cpus", json::Value::Uint(host_cpus));
  json::Value rows = json::Value::Array();
  std::vector<std::pair<std::string, json::Value>> profiles;
  std::string widest_collapsed;
  ProfilerReport serial_profile;
  double serial_wall_ms = 0.0;
  StateDigest serial_digest;
  for (uint32_t w : g_widths) {
    Harness h(SweepConfig(w));
    if (auto s = h.Setup(); !s.ok()) {
      std::fprintf(stderr, "setup failed: %s\n", s.ToString().c_str());
      std::abort();
    }
    auto t0 = std::chrono::steady_clock::now();
    HarnessReport r = MustRun(h);
    auto t1 = std::chrono::steady_clock::now();
    double wall_ms =
        std::chrono::duration<double, std::milli>(t1 - t0).count();
    if (w == g_widths.front()) serial_wall_ms = wall_ms;
    const auto& shard = h.executor().shard_stats();

    bool digest_ok = true;
    if (!r.digests.empty()) {
      if (w == g_widths.front()) {
        serial_digest = r.digests.back();
      } else {
        digest_ok = r.digests.back() == serial_digest;
      }
    }
    if (!digest_ok) {
      std::fprintf(stderr,
                   "execution sharding diverged from serial at W=%u\n", w);
      std::abort();
    }

    // Reject attribution is planned at the canonical width, so the counts
    // must be width-invariant — same hard-check spirit as the digest row.
    if (w == g_widths.front()) {
      serial_profile = r.profile;
    } else if (r.profile.reject != serial_profile.reject ||
               r.profile.sweeper_solo != serial_profile.sweeper_solo) {
      std::fprintf(stderr,
                   "profiler reject attribution diverged at W=%u\n", w);
      std::abort();
    }
    profiles.emplace_back("w" + std::to_string(w), ProfileJsonFromReport(r));
    widest_collapsed = r.profile.ToCollapsed();

    Row({std::to_string(w), Fmt(r.throughput_tps(), 1), Fmt(wall_ms, 1),
         Fmt(serial_wall_ms / wall_ms, 2) + "x",
         std::to_string(shard.batches), std::to_string(shard.batched_steps),
         std::to_string(shard.solo_steps), digest_ok ? "match" : "DIVERGED"},
        14);

    json::Value row = json::Value::Object();
    row.Set("threads", json::Value::Uint(w));
    row.Set("throughput_tps", json::Value::Double(r.throughput_tps()));
    row.Set("wall_ms", json::Value::Double(wall_ms));
    row.Set("speedup_vs_serial", json::Value::Double(serial_wall_ms / wall_ms));
    row.Set("batches", json::Value::Uint(shard.batches));
    row.Set("batched_steps", json::Value::Uint(shard.batched_steps));
    row.Set("solo_steps", json::Value::Uint(shard.solo_steps));
    row.Set("committed", json::Value::Uint(r.exec.committed));
    rows.Append(std::move(row));
  }
  sweep.Set("widths", std::move(rows));
  snapshots.emplace_back("exec_sweep", std::move(sweep));
  WriteMetricsSnapshots("BENCH_throughput_metrics.json", snapshots);
  WriteMetricsSnapshots("BENCH_exec_profile.json", profiles);
  {
    std::ofstream out("BENCH_exec_profile.collapsed");
    if (out) {
      out << widest_collapsed;
      std::printf("wrote BENCH_exec_profile.collapsed\n");
    } else {
      std::fprintf(stderr, "cannot write BENCH_exec_profile.collapsed\n");
    }
  }
  std::printf(
      "\nshape check: simulated throughput is identical at every width (the\n"
      "sharded executor replays the serial schedule); wall-clock drops with\n"
      "width on a multi-core host, bounded by the batched/solo step ratio.\n");
}

}  // namespace
}  // namespace smdb::bench

int main(int argc, char** argv) {
  const char* list = std::getenv("SMDB_BENCH_EXEC_THREADS");
  for (int i = 1; i < argc; ++i) {  // explicit flag beats the environment
    if (std::strncmp(argv[i], "--exec-threads=", 15) == 0) list = argv[i] + 15;
  }
  if (list != nullptr && *list != '\0') {
    smdb::bench::g_widths.clear();
    for (const char* p = list; *p != '\0';) {
      char* end = nullptr;
      unsigned long v = std::strtoul(p, &end, 10);
      if (end == p) break;
      if (v >= 1) smdb::bench::g_widths.push_back(static_cast<uint32_t>(v));
      p = (*end == ',') ? end + 1 : end;
    }
    if (smdb::bench::g_widths.empty()) smdb::bench::g_widths = {1};
  }
  smdb::bench::Run();
}
