// Experiment W1 — normal-operation (failure-free) throughput under each
// protocol (section 7's overall overhead summary).
//
// Runs the same workload, with no crashes, under: plain FA (no IFA
// provisions), Volatile LBM + Redo All, Volatile LBM + Selective Redo, and
// both Stable LBM enforcements. Reports throughput and slowdown vs FA.

#include "bench/bench_util.h"

namespace smdb::bench {
namespace {

void Run() {
  Header("Failure-free throughput: the price of IFA during normal operation",
         "section 7 (overheads summary); related-work positioning of SM "
         "performance");

  struct Res {
    std::string name;
    double tps;
    uint64_t forces;
  };
  std::vector<Res> results;
  std::vector<std::pair<std::string, json::Value>> snapshots;
  for (auto rc : {RecoveryConfig::BaselineRebootAll(),  // plain FA
                  RecoveryConfig::VolatileRedoAll(),
                  RecoveryConfig::VolatileSelectiveRedo(),
                  RecoveryConfig::StableTriggeredRedoAll(),
                  RecoveryConfig::StableEagerRedoAll()}) {
    HarnessConfig cfg = StandardConfig(rc, /*nodes=*/8, /*seed=*/9090);
    cfg.workload.txns_per_node = 50;
    cfg.workload.index_op_ratio = 0.2;
    Harness h(cfg);
    HarnessReport r = MustRun(h);
    results.push_back(
        {rc.Name() + (rc.ensures_ifa() ? "" : " (FA-only)"),
         r.throughput_tps(), r.logs.forces});
    snapshots.emplace_back(rc.Name(), MetricsJson(r));
  }
  WriteMetricsSnapshots("BENCH_throughput_metrics.json", snapshots);
  double base = results[0].tps;
  Row({"protocol", "txn/sim-s", "slowdown vs FA", "log forces"}, 34);
  for (const auto& res : results) {
    Row({res.name, Fmt(res.tps, 1),
         Fmt((base / res.tps - 1.0) * 100.0, 1) + "%",
         std::to_string(res.forces)},
        34);
  }
  std::printf(
      "\nshape check: Volatile LBM protocols cost a few percent (tag writes,"
      "\nread-lock logging, early commits); Stable LBM eager is dominated by"
      "\nper-update disk forces; triggered Stable LBM sits between.\n");
}

}  // namespace
}  // namespace smdb::bench

int main() { smdb::bench::Run(); }
