// Experiment T1 — Table 1: "Overheads of Protocols which Ensure IFA".
//
// The paper's table is qualitative: which incremental overheads (beyond
// plain failure atomicity) each protocol pays during normal operation.
// This driver reproduces the check-mark matrix *and* quantifies each cell by
// running an identical workload under every protocol and measuring:
//   * early commits of structural changes (forces + page flushes at splits),
//   * logical logging of read locks,
//   * undo tag writes,
//   * LBM-attributable log forces (the Stable LBM "higher frequency").

#include "bench/bench_util.h"

namespace smdb::bench {
namespace {

struct Measured {
  std::string name;
  uint64_t early_commits = 0;
  uint64_t read_lock_records = 0;
  uint64_t tag_writes = 0;
  uint64_t lbm_forces = 0;
  uint64_t commits = 0;
  double tps = 0;
};

Measured RunOne(RecoveryConfig rc) {
  HarnessConfig cfg = StandardConfig(rc, /*nodes=*/8, /*seed=*/77);
  cfg.workload.index_op_ratio = 0.3;  // exercise structural changes
  cfg.workload.txns_per_node = 40;
  Harness h(cfg);
  HarnessReport r = MustRun(h);

  Measured m;
  m.name = rc.Name();
  m.early_commits = r.btree.early_commits;
  m.tag_writes = r.txns.undo_tag_writes;
  m.lbm_forces = r.logs.lbm_forces;
  m.commits = r.exec.committed;
  m.tps = r.throughput_tps();
  // Count logical *read*-lock (shared acquire) records across all logs.
  for (NodeId n = 0; n < cfg.db.machine.num_nodes; ++n) {
    h.db().log().ForEachAll(n, [&](const LogRecord& rec) {
      if (rec.type == LogRecordType::kLockOp &&
          rec.lock_op().mode == LockMode::kShared &&
          rec.lock_op().op == LockOpPayload::Op::kAcquire) {
        ++m.read_lock_records;
      }
    });
  }
  return m;
}

std::string Check(uint64_t v) {
  return v > 0 ? ("YES (" + std::to_string(v) + ")") : "no (0)";
}

void Run() {
  Header("Table 1: incremental overheads of the IFA protocols",
         "Table 1 (rows: early commit of structural changes, logging of "
         "read locks, undo tagging, higher frequency of log forces)");

  std::vector<Measured> results;
  // Paper columns: Stable LBM | Volatile LBM w/Selective Redo |
  // Volatile LBM w/Redo All. A no-IFA baseline anchors the comparison.
  for (auto rc :
       {RecoveryConfig::StableTriggeredRedoAll(),
        RecoveryConfig::VolatileSelectiveRedo(),
        RecoveryConfig::VolatileRedoAll(),
        RecoveryConfig::BaselineRebootAll()}) {
    results.push_back(RunOne(rc));
  }

  Row({"overhead \\ protocol", results[0].name, results[1].name,
       results[2].name, results[3].name + " (FA-only)"},
      30);
  Row({"early commit structural", Check(results[0].early_commits),
       Check(results[1].early_commits), Check(results[2].early_commits),
       Check(results[3].early_commits)},
      30);
  Row({"read-lock logging", Check(results[0].read_lock_records),
       Check(results[1].read_lock_records),
       Check(results[2].read_lock_records),
       Check(results[3].read_lock_records)},
      30);
  Row({"undo tagging", Check(results[0].tag_writes),
       Check(results[1].tag_writes), Check(results[2].tag_writes),
       Check(results[3].tag_writes)},
      30);
  Row({"extra (LBM) log forces", Check(results[0].lbm_forces),
       Check(results[1].lbm_forces), Check(results[2].lbm_forces),
       Check(results[3].lbm_forces)},
      30);
  Row({"committed txns", std::to_string(results[0].commits),
       std::to_string(results[1].commits), std::to_string(results[2].commits),
       std::to_string(results[3].commits)},
      30);
  Row({"throughput (txn/sim-s)", Fmt(results[0].tps), Fmt(results[1].tps),
       Fmt(results[2].tps), Fmt(results[3].tps)},
      30);

  std::printf(
      "\npaper's matrix: all three IFA protocols pay early-commit +"
      " read-lock logging;\nonly Selective Redo pays undo tagging; only"
      " Stable LBM pays extra log forces.\nThe FA-only baseline pays none"
      " of them (and provides no IFA).\n");
}

}  // namespace
}  // namespace smdb::bench

int main() { smdb::bench::Run(); }
