// Experiment X1 — records per cache line vs sharing-induced failure
// exposure (section 3.1's motivation).
//
// "Due to typical cache line sizes ... it is likely (unless a lot of space
// is wasted) that multiple records will be stored in a cache line." This
// driver sweeps the packing density (records per 128-byte line) and
// measures line migrations, replications, and what a single node crash
// costs recovery — quantifying the space/recovery-exposure trade-off.

#include "bench/bench_util.h"

namespace smdb::bench {
namespace {

void Run() {
  Header("Packing density: records per cache line vs failure exposure",
         "section 3.1 (multiple records per line cause the failure effects)");
  Row({"rec bytes", "slots/line", "migrations", "replications", "lost lines",
       "redo applied", "tag undos", "space eff."},
      16);
  // record_data_size + 10-byte slot header, 128-byte lines.
  for (uint16_t data_size : {118, 54, 22, 6}) {
    HarnessConfig cfg =
        StandardConfig(RecoveryConfig::VolatileSelectiveRedo(), 8, 4242);
    cfg.db.record_data_size = data_size;
    cfg.num_records = 248;
    cfg.workload.txns_per_node = 25;
    cfg.workload.write_ratio = 0.8;
    cfg.workload.index_op_ratio = 0.0;
    cfg.crashes = {CrashPlan{900, {3}, false}};
    Harness h(cfg);
    HarnessReport r = MustRun(h);
    uint32_t slots_per_line = 128u / (10u + data_size);
    double space_eff = double(data_size) * slots_per_line / 128.0;
    uint64_t redo = 0, tag_undos = 0, lost = r.machine.lines_lost;
    if (!r.recoveries.empty()) {
      redo = r.recoveries[0].redo_applied;
      tag_undos = r.recoveries[0].tag_undos;
    }
    Row({std::to_string(data_size), std::to_string(slots_per_line),
         std::to_string(r.machine.migrations),
         std::to_string(r.machine.replications), std::to_string(lost),
         std::to_string(redo), std::to_string(tag_undos),
         Fmt(space_eff * 100, 0) + "%"},
        16);
  }
  std::printf(
      "\nshape check: the tag-undo column is the tell — crashed-node"
      " updates stranded\non surviving nodes appear only once records"
      " cohabit cache lines, and grow\nwith packing density; padding to one"
      " record per line buys that safety at\n~38%%->92%% space efficiency"
      " loss. Raw migration counts stay high at every\ndensity because"
      " database *support structures* (Page-LSN header lines, the\nshared"
      " lock table) still share lines — the paper's section 4.2 point that"
      "\npadding records alone cannot ensure IFA (nor can it, at all, if"
      " dirty reads\nare allowed).\n");
}

}  // namespace
}  // namespace smdb::bench

int main() { smdb::bench::Run(); }
