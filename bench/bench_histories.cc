// Experiment H1 — section 3.2 cache line histories.
//
// Drives the coherence protocol directly with the three history classes the
// paper analyses (H_ww1 direct migration, H_ww2 migration with intermediate
// shared readers, H_wr write/read replication) and reports the resulting
// coherence actions and failure exposure (lines whose loss would strand or
// destroy uncommitted data).

#include "bench/bench_util.h"
#include "sim/machine.h"

namespace smdb::bench {
namespace {

struct Counts {
  uint64_t migrations, replications, downgrades, invalidations, lost;
};

Counts RunPattern(const char* which, int iterations) {
  MachineConfig cfg;
  cfg.num_nodes = 8;
  Machine m(cfg);
  std::vector<Addr> lines;
  for (int i = 0; i < iterations; ++i) lines.push_back(m.AllocShared(128));

  for (int i = 0; i < iterations; ++i) {
    Addr a = lines[i];
    uint32_t v = i;
    if (std::string(which) == "H_ww1") {
      // w_x[l]; w_y[l]
      (void)m.WriteValue(0, a, v);
      (void)m.WriteValue(1, a, v + 1);
    } else if (std::string(which) == "H_ww2") {
      // w_x[l]; r_x[l]; r_z[l]*; w_y[l]
      (void)m.WriteValue(0, a, v);
      (void)m.ReadValue<uint32_t>(0, a);
      (void)m.ReadValue<uint32_t>(2, a);
      (void)m.ReadValue<uint32_t>(3, a);
      (void)m.WriteValue(1, a, v + 1);
    } else {  // H_wr
      // w_x[l]; r_y[l]
      (void)m.WriteValue(0, a, v);
      (void)m.ReadValue<uint32_t>(1, a);
    }
  }
  // Failure exposure: crash the last writer and count lost lines.
  NodeId last_writer = std::string(which) == "H_wr" ? 0 : 1;
  m.CrashNode(last_writer);
  const MachineStats& st = m.stats();
  return Counts{st.migrations, st.replications, st.downgrades,
                st.invalidations, st.lines_lost};
}

void Run() {
  Header("Coherence actions and failure exposure per history class",
         "section 3.2 (H_ww1, H_ww2, H_wr) and section 3's failure effects");
  const int n = 1000;
  Row({"history", "migrations", "replications", "downgrades", "invalidations",
       "lines lost on crash"},
      22);
  for (const char* which : {"H_ww1", "H_ww2", "H_wr"}) {
    Counts c = RunPattern(which, n);
    Row({which, std::to_string(c.migrations), std::to_string(c.replications),
         std::to_string(c.downgrades), std::to_string(c.invalidations),
         std::to_string(c.lost)},
        22);
  }
  std::printf(
      "\nshape check (per %d lines): H_ww1/H_ww2 migrate every line (lost"
      " when the\nlast writer crashes); H_wr replicates every line (crash of"
      " the writer\nstrands the uncommitted update on the reader instead)."
      " H_ww2's intermediate\nreads add downgrades + extra invalidations.\n",
      n);
}

}  // namespace
}  // namespace smdb::bench

int main() { smdb::bench::Run(); }
