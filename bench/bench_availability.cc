// Experiment AV1 — availability through a crash: what do users experience
// when a node dies?
//
// The recovery protocols exist to bound the outage a node failure causes.
// This bench measures that outage directly with the latency observatory:
// for a fixed crash schedule (one single-node crash with restart, then a
// two-node crash with restart), it reports per crash
//   - time-to-first-commit after the crash (TTFC, ROADMAP item 1's
//     headline metric for instant recovery),
//   - the depth and duration of the throughput trough, and
//   - steady-state vs through-crash p99 commit latency,
// for each recovery protocol, and writes the series to
// BENCH_availability.json (the baseline tools/bench_compare diffs against).

#include <fstream>

#include "bench/bench_util.h"
#include "common/json.h"

namespace smdb::bench {
namespace {

// 50 txns/node keeps the workload clear of a latent RebootAll-baseline
// defect (see ROADMAP.md): with early_commit_structural=false, B+-tree
// splits are never durable, so at >=60 txns/node the reboot-reload phase
// restores torn split routing and the redo descent hits a non-tree page.
constexpr uint64_t kTxnsPerNode = 50;
constexpr uint64_t kOpsPerTxn = 8;
constexpr uint16_t kNodes = 8;
// Total executor steps ~ txns * ops * nodes; crash mid-run and at 3/4.
constexpr uint64_t kStepsTotal = kTxnsPerNode * kOpsPerTxn * kNodes;

HarnessConfig AvailabilityConfig(RecoveryConfig rc) {
  HarnessConfig cfg = StandardConfig(rc, kNodes, /*seed=*/42);
  cfg.workload.txns_per_node = kTxnsPerNode;
  cfg.workload.ops_per_txn = kOpsPerTxn;
  cfg.db.obs.enabled = true;
  // Commits held up by a synchronous recovery land a little after the
  // recovery span ends; widen the through-crash attribution window so the
  // split p99 captures them instead of reporting an empty histogram.
  cfg.db.obs.crash_influence_ns = 2'000'000;
  cfg.crashes = {
      CrashPlan{kStepsTotal / 2, {2}, /*restart_after=*/true},
      CrashPlan{kStepsTotal * 3 / 4, {4, 5}, /*restart_after=*/true},
  };
  return cfg;
}

json::Value CrashJson(const CrashAvailability& c) {
  json::Value o = json::Value::Object();
  o.Set("ttfc_ns", json::Value::Uint(c.ttfc_ns()));
  o.Set("trough_depth_pct", json::Value::Double(c.depth_pct));
  o.Set("trough_duration_ns", json::Value::Uint(c.trough_duration_ns));
  o.Set("steady_tps", json::Value::Double(c.steady_tps));
  o.Set("recovery_span_ns",
        json::Value::Uint(c.recovery_end_ts >= c.crash_ts
                              ? c.recovery_end_ts - c.crash_ts
                              : 0));
  return o;
}

void Run() {
  Header("Availability through a crash: TTFC, trough, split p99",
         "ROADMAP item 1 scoreboard (cf. instant-recovery evaluations, "
         "arXiv 1409.3682 / 1404.7548)");
  Row({"protocol", "crash", "ttfc", "trough depth", "trough width",
       "p99 steady", "p99 thru-crash"},
      17);

  json::Value doc = json::Value::Object();
  doc.Set("bench", json::Value::Str("availability"));
  doc.Set("nodes", json::Value::Uint(kNodes));
  doc.Set("txns_per_node", json::Value::Uint(kTxnsPerNode));
  json::Value series = json::Value::Array();

  for (auto rc : {RecoveryConfig::VolatileSelectiveRedo(),
                  RecoveryConfig::VolatileRedoAll(),
                  RecoveryConfig::BaselineRebootAll()}) {
    Harness h(AvailabilityConfig(rc));
    HarnessReport r = MustRun(h);
    const LatencyReport& lat = r.latency;

    json::Value entry = json::Value::Object();
    entry.Set("protocol", json::Value::Str(rc.Name()));
    entry.Set("committed", json::Value::Uint(r.exec.committed));
    entry.Set("throughput_tps", json::Value::Double(r.throughput_tps()));
    entry.Set("commit_latency", lat.commit_latency.SummaryJson());
    entry.Set("lock_wait", lat.lock_wait.SummaryJson());
    entry.Set("commit_steady_p99_ns",
              json::Value::Uint(lat.commit_steady.P99()));
    entry.Set("commit_through_crash_p99_ns",
              json::Value::Uint(lat.commit_through_crash.P99()));

    json::Value crashes = json::Value::Array();
    for (size_t i = 0; i < lat.availability.crashes.size(); ++i) {
      const CrashAvailability& c = lat.availability.crashes[i];
      Row({rc.Name(), std::to_string(i), FmtUs(c.ttfc_ns()),
           Fmt(c.depth_pct, 0) + "%", FmtUs(c.trough_duration_ns),
           FmtUs(lat.commit_steady.P99()),
           FmtUs(lat.commit_through_crash.P99())},
          17);
      crashes.Append(CrashJson(c));
    }
    entry.Set("crashes", std::move(crashes));
    series.Append(std::move(entry));
    std::printf("\n");
  }
  doc.Set("series", std::move(series));

  std::ofstream out("BENCH_availability.json");
  if (out) {
    out << doc.Dump(2) << "\n";
    std::printf("wrote BENCH_availability.json\n");
  }
  std::printf(
      "shape check: the reboot-all baseline pays a machine-wide outage on\n"
      "every crash (deep trough, large TTFC on all nodes); the IFA\n"
      "protocols confine the trough to the synchronous recovery pass, and\n"
      "through-crash p99 exceeds steady-state p99 by roughly the recovery\n"
      "span (commits in flight at the crash wait it out).\n");
}

}  // namespace
}  // namespace smdb::bench

int main() { smdb::bench::Run(); }
