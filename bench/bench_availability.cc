// Experiment AV1/AV2 — availability through a crash: what do users
// experience when a node dies?
//
// The recovery protocols exist to bound the outage a node failure causes.
// This bench measures that outage directly with the latency observatory:
// for a fixed crash schedule (one single-node crash with restart, then a
// two-node crash with restart), it reports per crash
//   - time-to-first-commit after the crash (TTFC, ROADMAP item 1's
//     headline metric for instant recovery),
//   - the depth and duration of the throughput trough,
//   - steady-state vs through-crash p99 commit latency, and
//   - for the on-demand rows, the Recovering serving span: how long the
//     database served traffic while lazy obligations were still pending
//     (drain_end - recovery_end; the eager rows have no such window),
// for each recovery protocol — the IFA protocols both eagerly and in
// on-demand mode (§AV2) — and writes the series to
// BENCH_availability.json (the baseline tools/bench_compare diffs against).

#include <cstdlib>
#include <cstring>
#include <fstream>

#include "bench/bench_util.h"
#include "common/json.h"

namespace smdb::bench {
namespace {

// Raised twice as recovery defects were root-caused: 50 -> 70 with the
// RebootAll split-durability fix (ROADMAP item 5), 70 -> 100 with the
// eager-SelectiveRedo spliced-page fix (ROADMAP item 5b: a partially lost
// split leaf resurrected moved keys as duplicate live entries at >= 75
// txns/node). The split-heavy tail is now verification-clean.
constexpr uint64_t kDefaultTxnsPerNode = 100;
constexpr uint64_t kOpsPerTxn = 8;
constexpr uint16_t kNodes = 8;

// Overridable (--txns-per-node=N / SMDB_BENCH_TXNS_PER_NODE) so soak runs
// can push the split-heavy tail without recompiling; the checked-in
// baseline uses the default.
uint64_t g_txns_per_node = kDefaultTxnsPerNode;

uint64_t StepsTotal() { return g_txns_per_node * kOpsPerTxn * kNodes; }

HarnessConfig AvailabilityConfig(RecoveryConfig rc, bool on_demand) {
  rc.on_demand = on_demand;
  HarnessConfig cfg = StandardConfig(rc, kNodes, /*seed=*/42);
  cfg.workload.txns_per_node = g_txns_per_node;
  cfg.workload.ops_per_txn = kOpsPerTxn;
  cfg.db.obs.enabled = true;
  // Commits held up by a synchronous recovery land a little after the
  // recovery span ends; widen the through-crash attribution window so the
  // split p99 captures them instead of reporting an empty histogram.
  cfg.db.obs.crash_influence_ns = 2'000'000;
  // A modest sweeper budget: first touch does the urgent work, the sweeper
  // drains the cold tail without monopolising the serving path.
  if (on_demand) cfg.pump_recovery_per_step = 1;
  cfg.crashes = {
      CrashPlan{StepsTotal() / 2, {2}, /*restart_after=*/true},
      CrashPlan{StepsTotal() * 3 / 4, {4, 5}, /*restart_after=*/true},
  };
  return cfg;
}

json::Value CrashJson(const CrashAvailability& c) {
  json::Value o = json::Value::Object();
  o.Set("ttfc_ns", json::Value::Uint(c.ttfc_ns()));
  o.Set("trough_depth_pct", json::Value::Double(c.depth_pct));
  o.Set("trough_duration_ns", json::Value::Uint(c.trough_duration_ns));
  o.Set("steady_tps", json::Value::Double(c.steady_tps));
  // For on-demand rows this is just the eager crash-time prefix — the
  // blocking part of the outage; eager rows block for the whole thing.
  o.Set("recovery_span_ns",
        json::Value::Uint(c.recovery_end_ts >= c.crash_ts
                              ? c.recovery_end_ts - c.crash_ts
                              : 0));
  o.Set("recovering_serving_span_ns",
        json::Value::Uint(c.drain_end_ts > c.recovery_end_ts
                              ? c.drain_end_ts - c.recovery_end_ts
                              : 0));
  return o;
}

void Run() {
  Header("Availability through a crash: TTFC, trough, split p99",
         "ROADMAP item 1 scoreboard (cf. instant-recovery evaluations, "
         "arXiv 1409.3682 / 1404.7548)");
  Row({"protocol", "crash", "ttfc", "trough depth", "trough width",
       "blocking span", "serving span"},
      17);

  json::Value doc = json::Value::Object();
  doc.Set("bench", json::Value::Str("availability"));
  doc.Set("nodes", json::Value::Uint(kNodes));
  doc.Set("txns_per_node", json::Value::Uint(g_txns_per_node));
  json::Value series = json::Value::Array();

  struct Variant {
    RecoveryConfig rc;
    bool on_demand;
  };
  // The baselines have no lazy scheme (the knob is a no-op there), so only
  // the IFA protocols get an on-demand row.
  const Variant variants[] = {
      {RecoveryConfig::VolatileSelectiveRedo(), false},
      {RecoveryConfig::VolatileSelectiveRedo(), true},
      {RecoveryConfig::VolatileRedoAll(), false},
      {RecoveryConfig::VolatileRedoAll(), true},
      {RecoveryConfig::BaselineRebootAll(), false},
  };
  for (const Variant& v : variants) {
    std::string name = v.rc.Name() + (v.on_demand ? " (on-demand)" : "");
    Harness h(AvailabilityConfig(v.rc, v.on_demand));
    HarnessReport r = MustRun(h);
    const LatencyReport& lat = r.latency;

    json::Value entry = json::Value::Object();
    entry.Set("protocol", json::Value::Str(name));
    entry.Set("on_demand", json::Value::Bool(v.on_demand));
    entry.Set("committed", json::Value::Uint(r.exec.committed));
    entry.Set("throughput_tps", json::Value::Double(r.throughput_tps()));
    entry.Set("commit_latency", lat.commit_latency.SummaryJson());
    entry.Set("lock_wait", lat.lock_wait.SummaryJson());
    entry.Set("commit_steady_p99_ns",
              json::Value::Uint(lat.commit_steady.P99()));
    entry.Set("commit_through_crash_p99_ns",
              json::Value::Uint(lat.commit_through_crash.P99()));

    json::Value crashes = json::Value::Array();
    for (size_t i = 0; i < lat.availability.crashes.size(); ++i) {
      const CrashAvailability& c = lat.availability.crashes[i];
      SimTime blocking = c.recovery_end_ts >= c.crash_ts
                             ? c.recovery_end_ts - c.crash_ts
                             : 0;
      SimTime serving = c.drain_end_ts > c.recovery_end_ts
                            ? c.drain_end_ts - c.recovery_end_ts
                            : 0;
      Row({name, std::to_string(i), FmtUs(c.ttfc_ns()),
           Fmt(c.depth_pct, 0) + "%", FmtUs(c.trough_duration_ns),
           FmtUs(blocking), FmtUs(serving)},
          17);
      crashes.Append(CrashJson(c));
    }
    entry.Set("crashes", std::move(crashes));
    series.Append(std::move(entry));
    std::printf("\n");
  }
  doc.Set("series", std::move(series));

  std::ofstream out("BENCH_availability.json");
  if (out) {
    out << doc.Dump(2) << "\n";
    std::printf("wrote BENCH_availability.json\n");
  }
  std::printf(
      "shape check: the reboot-all baseline pays a machine-wide outage on\n"
      "every crash (deep trough, large TTFC on all nodes); the eager IFA\n"
      "protocols confine the trough to the synchronous recovery pass; the\n"
      "on-demand rows shrink the blocking span to the crash-time prefix and\n"
      "serve traffic through the Recovering window (nonzero serving span),\n"
      "so their TTFC no longer waits for total recovery.\n");
}

}  // namespace
}  // namespace smdb::bench

int main(int argc, char** argv) {
  if (const char* env = std::getenv("SMDB_BENCH_TXNS_PER_NODE")) {
    smdb::bench::g_txns_per_node = std::strtoull(env, nullptr, 10);
  }
  for (int i = 1; i < argc; ++i) {  // explicit flag beats the environment
    if (std::strncmp(argv[i], "--txns-per-node=", 16) == 0) {
      smdb::bench::g_txns_per_node = std::strtoull(argv[i] + 16, nullptr, 10);
    }
  }
  smdb::bench::Run();
}
