// Experiment S1 — log force frequency under the LBM enforcement points
// (section 5.2).
//
// Stable LBM enforced naively forces the log on EVERY update; the paper's
// proposed coherence-triggered enforcement forces only when an active line
// actually departs (downgrade/invalidate); Volatile LBM forces only at
// commit. The gap between the three — and its sensitivity to inter-node
// sharing — is the quantitative argument of section 5. Also reproduces the
// section-7 note that NVRAM logs would rehabilitate Stable LBM.

#include "bench/bench_util.h"

namespace smdb::bench {
namespace {

void RunOne(RecoveryConfig rc, double shared_fraction, bool nvram) {
  HarnessConfig cfg = StandardConfig(rc, /*nodes=*/8, /*seed=*/555);
  cfg.db.machine.nvram_log = nvram;
  cfg.workload.txns_per_node = 30;
  cfg.workload.shared_fraction = shared_fraction;
  cfg.workload.index_op_ratio = 0.0;
  // One heap page per node (124 slots each): the partitioned fraction of
  // the workload then shares neither record lines nor Page-LSN lines, so
  // the migration-triggered force count isolates true inter-node sharing.
  cfg.num_records = 124 * 8;
  Harness h(cfg);
  HarnessReport r = MustRun(h);
  double per_kupdate =
      r.txns.updates == 0
          ? 0.0
          : double(r.logs.lbm_forces) * 1000.0 / double(r.txns.updates);
  Row({rc.Name() + (nvram ? " +NVRAM" : ""), Fmt(shared_fraction, 1),
       std::to_string(r.logs.forces), std::to_string(r.logs.lbm_forces),
       Fmt(per_kupdate, 1), Fmt(r.throughput_tps(), 1)},
      26);
}

void Run() {
  Header("Log force frequency by LBM enforcement point",
         "section 5.2 (latest force points: downgrade/invalidation of active "
         "lines) and section 7 (NVRAM note)");
  Row({"protocol", "shared frac", "total forces", "LBM forces",
       "LBM forces/1k upd", "txn/sim-s"},
      26);
  for (double shared : {0.1, 0.5, 1.0}) {
    RunOne(RecoveryConfig::VolatileSelectiveRedo(), shared, false);
    RunOne(RecoveryConfig::StableTriggeredRedoAll(), shared, false);
    RunOne(RecoveryConfig::StableEagerRedoAll(), shared, false);
    std::printf("\n");
  }
  std::printf("NVRAM log device (section 7: cheap forces):\n");
  RunOne(RecoveryConfig::StableEagerRedoAll(), 1.0, true);
  RunOne(RecoveryConfig::StableTriggeredRedoAll(), 1.0, true);
  std::printf(
      "\nshape check: eager Stable LBM forces once per update; triggered"
      " Stable LBM\nforces only on actual migrations (growing with the"
      " shared fraction);\nVolatile LBM adds zero forces beyond commits."
      " With NVRAM the Stable LBM\npenalty collapses, as the paper"
      " anticipates.\n");
}

}  // namespace
}  // namespace smdb::bench

int main() { smdb::bench::Run(); }
