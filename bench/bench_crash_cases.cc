// Experiment F2 — figure 2's two crash cases, replayed under every
// protocol.
//
// Setup (sections 3.1/4.1.1): records r1, r2 share a cache line l; t_x on
// node x updates r1; t_y on node y updates r2; l's only copy now lives on
// y. Case 1: x crashes (t_x's migrated update must be undone). Case 2: y
// crashes (t_x's update must be redone, t_y's undone). The driver reports
// what each recovery scheme did.

#include "bench/bench_util.h"
#include "core/ifa_checker.h"

namespace smdb::bench {
namespace {

void RunCase(RecoveryConfig rc, int which_case) {
  DatabaseConfig dc;
  dc.machine.num_nodes = 4;
  dc.recovery = rc;
  Database db(dc);
  IfaChecker checker(&db);
  db.txn().AddObserver(&checker);
  auto table = db.CreateTable(8);
  if (!table.ok()) std::abort();
  checker.RegisterTable(*table);
  (void)db.Checkpoint(0);

  std::vector<uint8_t> va(22, 0xAA), vb(22, 0xBB);
  Transaction* tx = db.txn().Begin(0);
  Transaction* ty = db.txn().Begin(1);
  (void)db.txn().Update(tx, (*table)[0], va);
  (void)db.txn().Update(ty, (*table)[1], vb);

  NodeId victim = which_case == 1 ? 0 : 1;
  auto outcome = db.Crash({victim});
  if (!outcome.ok()) std::abort();
  Status ok = checker.VerifyAll();
  Row({"case " + std::to_string(which_case), rc.Name(),
       std::to_string(outcome->redo_applied),
       std::to_string(outcome->undo_applied),
       std::to_string(outcome->tag_undos), FmtUs(outcome->recovery_time_ns),
       ok.ok() ? "IFA OK" : ok.ToString()},
      24);
}

void Run() {
  Header("Figure 2 crash cases under each recovery protocol",
         "figure 2 + section 4.1.1 (case 1: updater node crashes; case 2: "
         "holder node crashes)");
  Row({"case", "protocol", "redo", "undo", "tag undos", "recovery time",
       "verdict"},
      24);
  std::vector<RecoveryConfig> all = {
      RecoveryConfig::VolatileSelectiveRedo(),
      RecoveryConfig::VolatileRedoAll(),
      RecoveryConfig::StableEagerRedoAll(),
      RecoveryConfig::StableTriggeredRedoAll(),
      RecoveryConfig::StableTriggeredSelectiveRedo(),
      RecoveryConfig::BaselineRebootAll(),
      RecoveryConfig::BaselineAbortDependents(),
  };
  for (int c : {1, 2}) {
    for (const auto& rc : all) RunCase(rc, c);
    std::printf("\n");
  }
  std::printf(
      "shape check: every IFA protocol reports 'IFA OK' in both cases —"
      " case 1\nvia undo (tag scan or stable undo records), case 2 via redo"
      " from the\nsurvivor's log. The baselines also restore consistency but"
      " by aborting\nsurviving work (AbortDependents) or rebooting the"
      " machine (RebootAll).\n");
}

}  // namespace
}  // namespace smdb::bench

int main() { smdb::bench::Run(); }
