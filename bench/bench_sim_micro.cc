// Host-level microbenchmarks (google-benchmark) of the simulator and
// database primitives: how fast the reproduction itself executes. These
// measure wall-clock ns/op of the simulation, complementing the
// simulated-time experiment drivers.

#include <benchmark/benchmark.h>

#include "core/database.h"

namespace smdb {
namespace {

void BM_MachineLocalWrite(benchmark::State& state) {
  MachineConfig cfg;
  cfg.num_nodes = 4;
  Machine m(cfg);
  Addr a = m.AllocShared(128);
  uint64_t v = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(m.WriteValue(0, a, ++v));
  }
}
BENCHMARK(BM_MachineLocalWrite);

void BM_MachineRemotePingPong(benchmark::State& state) {
  MachineConfig cfg;
  cfg.num_nodes = 4;
  Machine m(cfg);
  Addr a = m.AllocShared(128);
  uint64_t v = 0;
  NodeId n = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(m.WriteValue(n, a, ++v));
    n = (n + 1) % 2;  // alternate writers: every write migrates the line
  }
}
BENCHMARK(BM_MachineRemotePingPong);

void BM_LineLockAcquireRelease(benchmark::State& state) {
  MachineConfig cfg;
  cfg.num_nodes = 4;
  Machine m(cfg);
  LineAddr line = m.LineOf(m.AllocShared(128));
  for (auto _ : state) {
    benchmark::DoNotOptimize(m.GetLine(0, line));
    m.ReleaseLine(0, line);
  }
}
BENCHMARK(BM_LineLockAcquireRelease);

void BM_LockTableAcquireRelease(benchmark::State& state) {
  DatabaseConfig dc;
  dc.machine.num_nodes = 4;
  Database db(dc);
  TxnId t = MakeTxnId(0, 1);
  uint64_t name = 0;
  for (auto _ : state) {
    ++name;
    benchmark::DoNotOptimize(
        db.locks().Acquire(0, t, name % 500 + 1, LockMode::kExclusive,
                           nullptr));
    benchmark::DoNotOptimize(db.locks().Release(0, t, name % 500 + 1,
                                                nullptr));
  }
}
BENCHMARK(BM_LockTableAcquireRelease);

void BM_BTreeInsert(benchmark::State& state) {
  DatabaseConfig dc;
  dc.machine.num_nodes = 4;
  Database db(dc);
  Lsn chain = kInvalidLsn;
  uint64_t key = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(db.index().Insert(
        0, MakeTxnId(0, 1), ++key, RecordId{1, 0}, kTagNone, &chain));
  }
}
BENCHMARK(BM_BTreeInsert);

void BM_TxnUpdateCommit(benchmark::State& state) {
  DatabaseConfig dc;
  dc.machine.num_nodes = 4;
  Database db(dc);
  auto table = db.CreateTable(128);
  std::vector<uint8_t> value(22, 7);
  uint64_t i = 0;
  for (auto _ : state) {
    Transaction* t = db.txn().Begin(i % 4);
    benchmark::DoNotOptimize(db.txn().Update(t, (*table)[i % 128], value));
    benchmark::DoNotOptimize(db.txn().Commit(t));
    ++i;
  }
}
BENCHMARK(BM_TxnUpdateCommit);

void BM_CrashRecoverySelectiveRedo(benchmark::State& state) {
  std::vector<uint8_t> value(22, 7);
  for (auto _ : state) {
    state.PauseTiming();
    DatabaseConfig dc;
    dc.machine.num_nodes = 4;
    dc.recovery = RecoveryConfig::VolatileSelectiveRedo();
    Database db(dc);
    auto table = db.CreateTable(128);
    (void)db.Checkpoint(0);
    for (int i = 0; i < 32; ++i) {
      Transaction* t = db.txn().Begin(i % 4);
      (void)db.txn().Update(t, (*table)[i], value);
      (void)db.txn().Commit(t);
    }
    Transaction* active = db.txn().Begin(1);
    (void)db.txn().Update(active, (*table)[0], value);
    state.ResumeTiming();
    benchmark::DoNotOptimize(db.Crash({1}));
  }
}
BENCHMARK(BM_CrashRecoverySelectiveRedo);

}  // namespace
}  // namespace smdb

BENCHMARK_MAIN();
