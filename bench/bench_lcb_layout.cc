// Design-choice ablation — LCB layout (section 4.2.2).
//
// "It may be feasible to ensure that an LCB spans at most one cache line
// ... a node crash will either destroy all or none of a specific LCB. In
// this case, only those LCB's which were destroyed need be reconstructed.
// A more difficult recovery scenario can occur if LCB queues ... span
// multiple cache lines ... it would be much easier to reconstruct the
// entire LCB based on the log records on all surviving nodes."
//
// This driver runs a lock-heavy workload under both layouts, crashes a
// node, and reports lock-space damage and rebuild work.

#include "bench/bench_util.h"

namespace smdb::bench {
namespace {

void RunOne(bool two_line, uint64_t seed) {
  HarnessConfig cfg =
      StandardConfig(RecoveryConfig::VolatileSelectiveRedo(), 8, seed);
  cfg.db.lock_table.two_line_lcb = two_line;
  cfg.num_records = 128;  // heavy lock-name collisions across nodes
  cfg.workload.txns_per_node = 25;
  cfg.workload.write_ratio = 0.4;  // plenty of shared read locks
  cfg.crashes = {CrashPlan{700, {3}, false}};
  Harness h(cfg);
  HarnessReport r = MustRun(h);
  const RecoveryOutcome& o = r.recoveries.empty() ? RecoveryOutcome{}
                                                  : r.recoveries[0];
  Row({two_line ? "two-line (split)" : "single-line",
       std::to_string(o.lcb_lines_cleared), std::to_string(o.locks_dropped),
       std::to_string(o.lcbs_rebuilt), FmtMs(o.recovery_time_ns),
       r.verify_status.ok() ? "IFA OK" : r.verify_status.ToString()},
      22);
}

void Run() {
  Header("LCB layout ablation: single-line vs two-line lock control blocks",
         "section 4.2.2 (all-or-nothing loss vs partial loss + full rebuild "
         "from surviving logs)");
  Row({"LCB layout", "lost LCB lines", "locks dropped", "LCBs rebuilt",
       "recovery time", "verdict"},
      22);
  for (uint64_t seed : {501, 502, 503}) {
    RunOne(false, seed);
    RunOne(true, seed);
    std::printf("\n");
  }
  std::printf(
      "shape check: the two-line layout roughly doubles the lock table's"
      " line\nfootprint (more lost lines per crash) and can lose half an"
      " LCB, but the\nlog-based rebuild restores both layouts to an"
      " IFA-consistent lock space;\nthe single-line layout's all-or-nothing"
      " loss keeps rebuild work smaller,\nmatching the paper's"
      " recommendation.\n");
}

}  // namespace
}  // namespace smdb::bench

int main() { smdb::bench::Run(); }
