// Experiment R2 — group commit: coalescing commit and Stable-LBM forces.
//
// The group-commit pipeline defers eager Stable-LBM per-update force
// intents and pending commit forces, merging everything that lands within
// a bounded window (size- and time-bounded) into one batched append. Two
// sweeps, mirroring the experiments the pipeline targets:
//
//   A. The bench_log_forces workload (partitioned heap pages, sharing
//      fraction swept): forces per committed transaction for eager Stable
//      LBM, off vs on. Coalescing collapses the per-update forces down to
//      the migration floor — the forces a line departure demands before
//      the window expires (durability-before-migration is correctness, so
//      those cannot be deferred).
//
//   B. The bench_throughput workload (fully shared, contended): slowdown
//      vs plain FA as the window grows. Pending commits hold their locks
//      until the covering force lands, so on a contended workload the
//      window directly extends lock hold times — small windows win, large
//      ones give the savings back. Protocols without deferred intents
//      (triggered, volatile) have nothing to coalesce on a single-stream
//      node and only pay the acknowledgement latency.
//
// window=0 is the pipeline off (exact prior behavior). Writes
// BENCH_group_commit.json.

#include <fstream>

#include "bench/bench_util.h"
#include "common/json.h"

namespace smdb::bench {
namespace {

struct Point {
  LogStats logs;
  uint64_t committed;
  uint64_t commit_waits;
  double tps;
};

RecoveryConfig WithGroupCommit(RecoveryConfig rc, uint64_t window_ns) {
  if (window_ns > 0) {
    rc.group_commit = true;
    rc.group_commit_window_ns = window_ns;
    rc.group_commit_max_batch = 64;
  }
  return rc;
}

Point RunForceWorkload(RecoveryConfig rc, double shared_fraction) {
  // The bench_log_forces configuration: one heap page per node so the
  // partitioned fraction shares neither record lines nor Page-LSN lines.
  HarnessConfig cfg = StandardConfig(rc, /*nodes=*/8, /*seed=*/555);
  cfg.workload.txns_per_node = 30;
  cfg.workload.shared_fraction = shared_fraction;
  cfg.workload.index_op_ratio = 0.0;
  cfg.num_records = 124 * 8;
  Harness h(cfg);
  HarnessReport r = MustRun(h);
  return {r.logs, r.exec.committed, r.exec.commit_waits, r.throughput_tps()};
}

Point RunThroughputWorkload(RecoveryConfig rc) {
  // The bench_throughput configuration: fully shared record pool.
  HarnessConfig cfg = StandardConfig(rc, /*nodes=*/8, /*seed=*/9090);
  cfg.workload.txns_per_node = 50;
  cfg.workload.index_op_ratio = 0.2;
  Harness h(cfg);
  HarnessReport r = MustRun(h);
  return {r.logs, r.exec.committed, r.exec.commit_waits, r.throughput_tps()};
}

double ForcesPerCommit(const Point& p) {
  return p.committed == 0 ? 0.0 : double(p.logs.forces) / double(p.committed);
}

json::Value PointJson(const Point& p) {
  json::Value pt = json::Value::Object();
  pt.Set("forces", json::Value::Uint(p.logs.forces));
  pt.Set("forced_records", json::Value::Uint(p.logs.forced_records));
  pt.Set("lbm_forces", json::Value::Uint(p.logs.lbm_forces));
  pt.Set("committed", json::Value::Uint(p.committed));
  pt.Set("forces_per_committed_txn", json::Value::Double(ForcesPerCommit(p)));
  pt.Set("commit_waits", json::Value::Uint(p.commit_waits));
  pt.Set("tps", json::Value::Double(p.tps));
  pt.Set("max_force_batch", json::Value::Uint(p.logs.max_force_batch()));
  json::Value hist = json::Value::Object();
  for (size_t b = 0; b < LogStats::kBatchBuckets; ++b) {
    hist.Set(LogStats::BatchBucketLabel(b),
             json::Value::Uint(p.logs.force_batch_bucket(b)));
  }
  pt.Set("force_batch_hist", std::move(hist));
  return pt;
}

void Run() {
  Header("Group commit: coalesced log forces",
         "section 5/7 follow-on: amortising the per-commit (and eager "
         "Stable-LBM per-update) force");

  json::Value doc = json::Value::Object();
  doc.Set("bench", json::Value::Str("group_commit"));
  doc.Set("nodes", json::Value::Uint(8));

  // --- Part A: forces per committed txn (bench_log_forces workload). ---
  std::printf("A. eager Stable LBM, forces per committed txn (window 50us, "
              "max batch 64):\n");
  Row({"shared frac", "forces off", "forces on", "f/txn off", "f/txn on",
       "coalescing", "max batch on"},
      16);
  const uint64_t kForceWindow = 50'000;
  json::Value part_a = json::Value::Array();
  for (double shared : {0.1, 0.5, 1.0}) {
    RecoveryConfig eager = RecoveryConfig::StableEagerRedoAll();
    Point off = RunForceWorkload(eager, shared);
    Point on = RunForceWorkload(WithGroupCommit(eager, kForceWindow), shared);
    double factor = ForcesPerCommit(on) == 0.0
                        ? 0.0
                        : ForcesPerCommit(off) / ForcesPerCommit(on);
    Row({Fmt(shared, 1), std::to_string(off.logs.forces),
         std::to_string(on.logs.forces), Fmt(ForcesPerCommit(off), 2),
         Fmt(ForcesPerCommit(on), 2), Fmt(factor, 1) + "x",
         std::to_string(on.logs.max_force_batch())},
        16);
    json::Value entry = json::Value::Object();
    entry.Set("shared_fraction", json::Value::Double(shared));
    entry.Set("window_ns", json::Value::Uint(kForceWindow));
    entry.Set("off", PointJson(off));
    entry.Set("on", PointJson(on));
    entry.Set("coalescing_factor", json::Value::Double(factor));
    part_a.Append(std::move(entry));
  }
  doc.Set("force_workload", std::move(part_a));

  // --- Part B: slowdown vs FA (bench_throughput workload). ---
  Point fa = RunThroughputWorkload(RecoveryConfig::BaselineRebootAll());
  doc.Set("fa_tps", json::Value::Double(fa.tps));
  std::printf("\nB. slowdown vs FA on the contended throughput workload:\n");
  Row({"protocol", "window", "forces", "f/txn", "txn/sim-s",
       "slowdown vs FA"},
      22);
  const std::vector<uint64_t> windows = {0, 2'000, 5'000, 10'000, 25'000};
  json::Value part_b = json::Value::Array();
  for (const RecoveryConfig& rc : {RecoveryConfig::StableEagerRedoAll(),
                                   RecoveryConfig::StableTriggeredRedoAll(),
                                   RecoveryConfig::VolatileSelectiveRedo()}) {
    json::Value sweep = json::Value::Array();
    for (uint64_t w : windows) {
      Point p = RunThroughputWorkload(WithGroupCommit(rc, w));
      double slowdown = (fa.tps / p.tps - 1.0) * 100.0;
      Row({rc.Name(), w == 0 ? "off" : FmtUs(w),
           std::to_string(p.logs.forces), Fmt(ForcesPerCommit(p), 2),
           Fmt(p.tps, 1), Fmt(slowdown, 1) + "%"},
          22);
      json::Value pt = PointJson(p);
      pt.Set("window_ns", json::Value::Uint(w));
      pt.Set("slowdown_vs_fa_pct", json::Value::Double(slowdown));
      sweep.Append(std::move(pt));
    }
    std::printf("\n");
    json::Value entry = json::Value::Object();
    entry.Set("protocol", json::Value::Str(rc.Name()));
    entry.Set("sweep", std::move(sweep));
    part_b.Append(std::move(entry));
  }
  doc.Set("throughput_workload", std::move(part_b));

  std::ofstream out("BENCH_group_commit.json");
  if (out) {
    out << doc.Dump(2) << "\n";
    std::printf("wrote BENCH_group_commit.json\n");
  }
  std::printf(
      "\nshape check: with partitioned pages the eager per-update forces\n"
      "coalesce down to the migration floor (large factors at low sharing);\n"
      "under full contention small windows still help eager (its in-txn\n"
      "forces vanish) while large windows extend lock hold times and give\n"
      "the savings back. Triggered/volatile protocols have no deferred\n"
      "intents to coalesce on a single-stream node, so group commit only\n"
      "adds acknowledgement latency there.\n");
}

}  // namespace
}  // namespace smdb::bench

int main() { smdb::bench::Run(); }
