// smdb_profile_check — validates a profiler export produced by
// `smdb_run --profile-out=...` (or bench_throughput's BENCH_exec_profile
// snapshots).
//
// Structural checks: the document parses, carries profiler/executor/sweeper
// sections, every reject and sweeper-solo reason name is one this build
// knows (and every known name is present, zeros included), and every phase
// path is rooted at step/sweep/recovery. Semantic checks: the taxonomy is
// exhaustive — sum(executor.reject.*) == reject_total == executor.solo_steps
// and sum(sweeper.solo.*) == sweeper_solo_total — and the occupancy
// histogram's population is consistent with the batch counters.
//
// Accepts either a single profile document (smdb_run) or a snapshot map of
// them keyed by series name (bench_throughput's BENCH_exec_profile.json:
// {"w1": {...}, "w2": {...}}); every member is validated.
//
// With a second argument, also validates a collapsed-stack file (the
// `--profile-out` sibling PATH.collapsed): every line is "<stack> <uint>"
// with ';'-separated non-empty frames rooted at a known phase root.
//
// Exits 0 on success, 1 on any violation — a CI smoke step, like
// smdb_trace_check.
//
// Usage: smdb_profile_check PROFILE.json [PROFILE.json.collapsed]

#include <cstdio>
#include <fstream>
#include <set>
#include <sstream>
#include <string>

#include "common/json.h"
#include "obs/profiler.h"

namespace smdb {
namespace {

bool ReadAll(const std::string& path, std::string* out) {
  std::ifstream in(path);
  if (!in) {
    std::fprintf(stderr, "cannot read %s\n", path.c_str());
    return false;
  }
  std::ostringstream buf;
  buf << in.rdbuf();
  *out = buf.str();
  return true;
}

/// Checks one reason table: every key known, every known name present,
/// values sum to `total_key`'s value. Returns the sum via *sum.
bool CheckReasons(const std::string& path, const json::Value& doc,
                  const char* table_key, const char* total_key,
                  const std::set<std::string>& known, uint64_t* sum) {
  const json::Value* table = doc.Find(table_key);
  if (table == nullptr || !table->is_object()) {
    std::fprintf(stderr, "%s: missing %s object\n", path.c_str(), table_key);
    return false;
  }
  *sum = 0;
  std::set<std::string> seen;
  for (const auto& [name, count] : table->members()) {
    if (known.find(name) == known.end()) {
      std::fprintf(stderr, "%s: %s has unknown reason \"%s\"\n", path.c_str(),
                   table_key, name.c_str());
      return false;
    }
    seen.insert(name);
    *sum += count.AsUint();
  }
  for (const std::string& name : known) {
    if (seen.find(name) == seen.end()) {
      std::fprintf(stderr, "%s: %s lacks reason \"%s\" (zeros are exported "
                   "too)\n", path.c_str(), table_key, name.c_str());
      return false;
    }
  }
  const uint64_t total = doc.GetUint(total_key);
  if (total != *sum) {
    std::fprintf(stderr,
                 "%s: %s = %llu but %s sums to %llu\n", path.c_str(),
                 total_key, static_cast<unsigned long long>(total), table_key,
                 static_cast<unsigned long long>(*sum));
    return false;
  }
  return true;
}

bool IsPhaseRoot(const std::string& frame) {
  return frame == ProfPhaseName(ProfPhase::kStep) ||
         frame == ProfPhaseName(ProfPhase::kSweep) ||
         frame == ProfPhaseName(ProfPhase::kRecovery);
}

int CheckProfileDoc(const std::string& path, const json::Value& doc) {
  const json::Value* prof = doc.Find("profiler");
  const json::Value* exec = doc.Find("executor");
  const json::Value* sweeper = doc.Find("sweeper");
  if (prof == nullptr || !prof->is_object() || exec == nullptr ||
      !exec->is_object() || sweeper == nullptr || !sweeper->is_object()) {
    std::fprintf(stderr,
                 "%s: missing profiler/executor/sweeper sections\n",
                 path.c_str());
    return 1;
  }
  if (!prof->GetBool("enabled")) {
    // A run without the profiler (or a build with it compiled out) exports
    // an empty report; there is nothing to cross-check.
    std::printf("%s: ok — profiler disabled, nothing to validate\n",
                path.c_str());
    return 0;
  }

  std::set<std::string> reject_names;
  for (size_t i = 0; i < kNumBatchRejectReasons; ++i) {
    reject_names.insert(
        BatchRejectReasonName(static_cast<BatchRejectReason>(i)));
  }
  std::set<std::string> solo_names;
  for (size_t i = 0; i < kNumSweeperSoloReasons; ++i) {
    solo_names.insert(
        SweeperSoloReasonName(static_cast<SweeperSoloReason>(i)));
  }
  uint64_t reject_sum = 0;
  uint64_t solo_sum = 0;
  if (!CheckReasons(path, *prof, "reject", "reject_total", reject_names,
                    &reject_sum) ||
      !CheckReasons(path, *prof, "sweeper_solo", "sweeper_solo_total",
                    solo_names, &solo_sum)) {
    return 1;
  }

  // The load-bearing invariant: every solo step carries exactly one typed
  // reason. A counter missed at a rejection point breaks this equality.
  const uint64_t solo_steps = exec->GetUint("solo_steps");
  if (reject_sum != solo_steps) {
    std::fprintf(stderr,
                 "%s: reject reasons sum to %llu but executor.solo_steps is "
                 "%llu — a rejection point is not attributed\n",
                 path.c_str(), static_cast<unsigned long long>(reject_sum),
                 static_cast<unsigned long long>(solo_steps));
    return 1;
  }

  const json::Value* occupancy = prof->Find("batch_occupancy");
  const json::Value* footprint = prof->Find("batch_footprint_lines");
  if (occupancy == nullptr || !occupancy->is_object() || footprint == nullptr ||
      !footprint->is_object()) {
    std::fprintf(stderr, "%s: missing occupancy/footprint histograms\n",
                 path.c_str());
    return 1;
  }
  // Each dispatched batch (solo or multi) on the planned path records one
  // occupancy sample; serial-gated solo steps don't (there is no batch).
  const uint64_t batches = exec->GetUint("batches");
  const uint64_t occ_count = occupancy->GetUint("count");
  if (occ_count < batches || occ_count > batches + solo_steps) {
    std::fprintf(stderr,
                 "%s: batch_occupancy.count %llu outside [batches %llu, "
                 "batches + solo_steps %llu]\n",
                 path.c_str(), static_cast<unsigned long long>(occ_count),
                 static_cast<unsigned long long>(batches),
                 static_cast<unsigned long long>(batches + solo_steps));
    return 1;
  }

  const json::Value* phases = prof->Find("phases");
  if (phases == nullptr || !phases->is_object()) {
    std::fprintf(stderr, "%s: missing phases object\n", path.c_str());
    return 1;
  }
  for (const auto& [stack, cell] : phases->members()) {
    const std::string root = stack.substr(0, stack.find(';'));
    if (!IsPhaseRoot(root)) {
      std::fprintf(stderr, "%s: phase path \"%s\" has unknown root \"%s\"\n",
                   path.c_str(), stack.c_str(), root.c_str());
      return 1;
    }
    if (!cell.is_object() || cell.Find("ns") == nullptr ||
        cell.Find("ticks") == nullptr || cell.Find("samples") == nullptr) {
      std::fprintf(stderr, "%s: phase \"%s\" lacks ns/ticks/samples\n",
                   path.c_str(), stack.c_str());
      return 1;
    }
  }

  std::printf(
      "%s: ok — %llu solo steps fully attributed, %llu batches, "
      "%zu phase cells\n",
      path.c_str(), static_cast<unsigned long long>(solo_steps),
      static_cast<unsigned long long>(batches), phases->members().size());
  return 0;
}

int CheckProfile(const std::string& path) {
  std::string text;
  if (!ReadAll(path, &text)) return 1;
  auto parsed = json::Value::Parse(text);
  if (!parsed.ok()) {
    std::fprintf(stderr, "%s: JSON parse failed: %s\n", path.c_str(),
                 parsed.status().ToString().c_str());
    return 1;
  }
  if (!parsed->is_object()) {
    std::fprintf(stderr, "%s: top level is not an object\n", path.c_str());
    return 1;
  }
  if (parsed->Find("profiler") != nullptr) {
    return CheckProfileDoc(path, *parsed);
  }
  // Snapshot map: every member is a profile document.
  if (parsed->members().empty()) {
    std::fprintf(stderr, "%s: no profile documents\n", path.c_str());
    return 1;
  }
  for (const auto& [name, doc] : parsed->members()) {
    int rc = CheckProfileDoc(path + "#" + name, doc);
    if (rc != 0) return rc;
  }
  return 0;
}

int CheckCollapsed(const std::string& path) {
  std::string text;
  if (!ReadAll(path, &text)) return 1;
  std::istringstream in(text);
  std::string line;
  size_t lineno = 0;
  size_t stacks = 0;
  while (std::getline(in, line)) {
    ++lineno;
    if (line.empty()) continue;
    const size_t space = line.rfind(' ');
    if (space == std::string::npos || space == 0 ||
        space == line.size() - 1) {
      std::fprintf(stderr, "%s:%zu: not \"<stack> <value>\": %s\n",
                   path.c_str(), lineno, line.c_str());
      return 1;
    }
    const std::string value = line.substr(space + 1);
    if (value.find_first_not_of("0123456789") != std::string::npos) {
      std::fprintf(stderr, "%s:%zu: value \"%s\" is not a non-negative "
                   "integer\n", path.c_str(), lineno, value.c_str());
      return 1;
    }
    const std::string stack = line.substr(0, space);
    size_t start = 0;
    bool first = true;
    while (start <= stack.size()) {
      size_t semi = stack.find(';', start);
      if (semi == std::string::npos) semi = stack.size();
      const std::string frame = stack.substr(start, semi - start);
      if (frame.empty()) {
        std::fprintf(stderr, "%s:%zu: empty frame in stack \"%s\"\n",
                     path.c_str(), lineno, stack.c_str());
        return 1;
      }
      if (first && !IsPhaseRoot(frame)) {
        std::fprintf(stderr, "%s:%zu: unknown stack root \"%s\"\n",
                     path.c_str(), lineno, frame.c_str());
        return 1;
      }
      first = false;
      start = semi + 1;
    }
    ++stacks;
  }
  std::printf("%s: ok — %zu collapsed stacks\n", path.c_str(), stacks);
  return 0;
}

}  // namespace
}  // namespace smdb

int main(int argc, char** argv) {
  if (argc != 2 && argc != 3) {
    std::fprintf(stderr,
                 "usage: smdb_profile_check PROFILE.json "
                 "[PROFILE.json.collapsed]\n");
    return 1;
  }
  int rc = smdb::CheckProfile(argv[1]);
  if (rc != 0) return rc;
  if (argc == 3) rc = smdb::CheckCollapsed(argv[2]);
  return rc;
}
