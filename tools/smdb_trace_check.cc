// smdb_trace_check — validates a Chrome trace-event file produced by
// `smdb_run --trace-out=...` (or the fuzzer's forensic re-run).
//
// Checks that the file parses as JSON, has a non-empty "traceEvents" array,
// that every event carries the fields chrome://tracing needs (name, ph,
// pid, tid; ts for everything but metadata), and that every non-metadata
// event's "cat" is a TraceEventKind this build knows (so a new event kind
// that forgets its name — or a stale checker — fails loudly). Prints a
// one-line summary and exits 0 on success, 1 on any structural problem —
// small enough to run as a CI smoke step.
//
// Usage: smdb_trace_check TRACE.json

#include <cstdio>
#include <fstream>
#include <set>
#include <sstream>
#include <string>

#include "obs/trace.h"

#include "common/json.h"

namespace smdb {
namespace {

int Check(const std::string& path) {
  std::ifstream in(path);
  if (!in) {
    std::fprintf(stderr, "cannot read %s\n", path.c_str());
    return 1;
  }
  std::ostringstream buf;
  buf << in.rdbuf();
  auto parsed = json::Value::Parse(buf.str());
  if (!parsed.ok()) {
    std::fprintf(stderr, "%s: JSON parse failed: %s\n", path.c_str(),
                 parsed.status().ToString().c_str());
    return 1;
  }
  const json::Value& doc = *parsed;
  if (!doc.is_object()) {
    std::fprintf(stderr, "%s: top level is not an object\n", path.c_str());
    return 1;
  }
  const json::Value* events = doc.Find("traceEvents");
  if (events == nullptr || !events->is_array()) {
    std::fprintf(stderr, "%s: missing traceEvents array\n", path.c_str());
    return 1;
  }
  if (events->array().empty()) {
    std::fprintf(stderr, "%s: traceEvents is empty\n", path.c_str());
    return 1;
  }
  // Every non-metadata event names its kind in "cat" (the "name" field can
  // carry a phase label or a "kind:label" composite, so it is not the thing
  // to validate). Build the known set from the enum this binary compiled
  // against: a trace from a newer build with an unknown kind fails here.
  std::set<std::string> known_kinds;
  for (size_t k = 0; k < kNumTraceEventKinds; ++k) {
    known_kinds.insert(TraceEventKindName(static_cast<TraceEventKind>(k)));
  }
  size_t spans = 0;
  size_t instants = 0;
  size_t metadata = 0;
  for (size_t i = 0; i < events->array().size(); ++i) {
    const json::Value& ev = events->array()[i];
    if (!ev.is_object()) {
      std::fprintf(stderr, "%s: event %zu is not an object\n", path.c_str(),
                   i);
      return 1;
    }
    const std::string ph = ev.GetString("ph");
    if (ev.Find("name") == nullptr || ph.empty() ||
        ev.Find("pid") == nullptr || ev.Find("tid") == nullptr) {
      std::fprintf(stderr,
                   "%s: event %zu lacks a required field "
                   "(name/ph/pid/tid)\n",
                   path.c_str(), i);
      return 1;
    }
    if (ph != "M" && ev.Find("ts") == nullptr) {
      std::fprintf(stderr, "%s: event %zu (ph=%s) has no ts\n", path.c_str(),
                   i, ph.c_str());
      return 1;
    }
    if (ph == "M") {
      const std::string name = ev.GetString("name");
      if (name != "thread_name" && name != "process_name") {
        std::fprintf(stderr, "%s: metadata event %zu has unknown name %s\n",
                     path.c_str(), i, name.c_str());
        return 1;
      }
      ++metadata;
      continue;
    }
    const std::string cat = ev.GetString("cat");
    if (cat.empty() || known_kinds.find(cat) == known_kinds.end()) {
      std::fprintf(stderr, "%s: event %zu has unknown event kind \"%s\"\n",
                   path.c_str(), i, cat.c_str());
      return 1;
    }
    if (ph == "X") {
      ++spans;
      if (ev.Find("dur") == nullptr) {
        std::fprintf(stderr, "%s: span event %zu has no dur\n", path.c_str(),
                     i);
        return 1;
      }
    } else if (ph == "i") {
      ++instants;
    }
  }
  std::printf("%s: ok — %zu events (%zu spans, %zu instants, %zu metadata)\n",
              path.c_str(), events->array().size(), spans, instants,
              metadata);
  return 0;
}

}  // namespace
}  // namespace smdb

int main(int argc, char** argv) {
  if (argc != 2) {
    std::fprintf(stderr, "usage: smdb_trace_check TRACE.json\n");
    return 1;
  }
  return smdb::Check(argv[1]);
}
