// bench_compare — diff two BENCH_*.json files and flag regressions.
//
// Flattens every numeric leaf of both documents to a dotted path
// ("series.0.crashes.1.ttfc_ns"), compares them pairwise, and exits
// non-zero when any value moved by more than the threshold (symmetric
// relative delta, so a 0 -> small change doesn't divide by zero).
//
// Usage:
//   bench_compare baseline.json current.json [--threshold=0.25]
//                 [--report-only] [--match=SUBSTR]
//
//   --threshold=F   relative-delta tolerance (default 0.25 = 25%)
//   --report-only   print the comparison but always exit 0 (CI soak mode)
//   --match=SUBSTR[,SUBSTR...]
//                   only compare paths containing one of the substrings
//                   (repeatable; each occurrence may list several,
//                   comma-separated)

#include <cmath>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <map>
#include <sstream>
#include <string>
#include <vector>

#include "common/json.h"

namespace smdb {
namespace {

/// path -> numeric value, depth-first over objects and arrays.
void Flatten(const json::Value& v, const std::string& path,
             std::map<std::string, double>* out) {
  switch (v.type()) {
    case json::Value::Type::kUint:
    case json::Value::Type::kDouble:
      (*out)[path] = v.AsDouble();
      return;
    case json::Value::Type::kObject:
      for (const auto& [key, member] : v.members()) {
        Flatten(member, path.empty() ? key : path + "." + key, out);
      }
      return;
    case json::Value::Type::kArray:
      for (size_t i = 0; i < v.array().size(); ++i) {
        Flatten(v.array()[i], path + "." + std::to_string(i), out);
      }
      return;
    default:
      return;  // strings/bools/nulls are labels, not measurements
  }
}

/// Symmetric relative delta: |a-b| / max(|a|, |b|); 0 when both are 0.
double RelDelta(double a, double b) {
  const double mag = std::max(std::fabs(a), std::fabs(b));
  return mag == 0.0 ? 0.0 : std::fabs(a - b) / mag;
}

bool ReadDoc(const char* path, json::Value* out) {
  std::ifstream in(path);
  if (!in) {
    std::fprintf(stderr, "bench_compare: cannot read %s\n", path);
    return false;
  }
  std::ostringstream buf;
  buf << in.rdbuf();
  auto parsed = json::Value::Parse(buf.str());
  if (!parsed.ok()) {
    std::fprintf(stderr, "bench_compare: %s: %s\n", path,
                 parsed.status().ToString().c_str());
    return false;
  }
  *out = *parsed;
  return true;
}

int Run(int argc, char** argv) {
  const char* baseline_path = nullptr;
  const char* current_path = nullptr;
  double threshold = 0.25;
  bool report_only = false;
  std::vector<std::string> matches;
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg.rfind("--threshold=", 0) == 0) {
      threshold = std::stod(arg.substr(strlen("--threshold=")));
    } else if (arg == "--report-only") {
      report_only = true;
    } else if (arg.rfind("--match=", 0) == 0) {
      std::string list = arg.substr(strlen("--match="));
      size_t start = 0;
      while (start <= list.size()) {
        size_t comma = list.find(',', start);
        if (comma == std::string::npos) comma = list.size();
        if (comma > start) matches.push_back(list.substr(start, comma - start));
        start = comma + 1;
      }
    } else if (baseline_path == nullptr) {
      baseline_path = argv[i];
    } else if (current_path == nullptr) {
      current_path = argv[i];
    } else {
      std::fprintf(stderr, "bench_compare: unexpected argument %s\n",
                   argv[i]);
      return 2;
    }
  }
  if (baseline_path == nullptr || current_path == nullptr) {
    std::fprintf(stderr,
                 "usage: bench_compare baseline.json current.json "
                 "[--threshold=F] [--report-only] [--match=SUBSTR[,...]]\n");
    return 2;
  }

  json::Value baseline, current;
  if (!ReadDoc(baseline_path, &baseline) || !ReadDoc(current_path, &current)) {
    return 2;
  }
  std::map<std::string, double> base_vals, cur_vals;
  Flatten(baseline, "", &base_vals);
  Flatten(current, "", &cur_vals);

  auto matched = [&matches](const std::string& path) {
    if (matches.empty()) return true;
    for (const std::string& m : matches) {
      if (path.find(m) != std::string::npos) return true;
    }
    return false;
  };

  size_t compared = 0;
  size_t regressions = 0;
  for (const auto& [path, base] : base_vals) {
    if (!matched(path)) continue;
    auto it = cur_vals.find(path);
    if (it == cur_vals.end()) {
      std::printf("MISSING  %-60s (baseline %.6g)\n", path.c_str(), base);
      ++regressions;
      continue;
    }
    ++compared;
    const double delta = RelDelta(base, it->second);
    if (delta > threshold) {
      if (base == 0.0) {
        std::printf("DELTA    %-60s %.6g -> %.6g\n", path.c_str(), base,
                    it->second);
      } else {
        std::printf("DELTA    %-60s %.6g -> %.6g (%+.1f%%)\n", path.c_str(),
                    base, it->second, (it->second - base) / base * 100.0);
      }
      ++regressions;
    }
  }
  for (const auto& [path, cur] : cur_vals) {
    if (matched(path) && base_vals.find(path) == base_vals.end()) {
      std::printf("NEW      %-60s (current %.6g)\n", path.c_str(), cur);
    }
  }

  std::printf("bench_compare: %zu values compared, %zu past %.0f%% threshold%s\n",
              compared, regressions, threshold * 100.0,
              report_only && regressions > 0 ? " (report-only)" : "");
  return regressions > 0 && !report_only ? 1 : 0;
}

}  // namespace
}  // namespace smdb

int main(int argc, char** argv) { return smdb::Run(argc, argv); }
