// smdb_run — command-line experiment runner: assemble any workload/crash
// configuration from flags, run it on the simulator, and print the report.
//
// Examples:
//   smdb_run --nodes=8 --protocol=volatile-selective --txns=50
//   smdb_run --nodes=16 --protocol=reboot-all --crash=200:3 --crash=500:7
//   smdb_run --nodes=8 --coherence=broadcast --zipf=0.9 --write-ratio=0.8

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <string>
#include <vector>

#include "obs/metrics.h"
#include "workload/harness.h"

namespace smdb {
namespace {

struct Flags {
  HarnessConfig cfg;
  bool verbose = false;
  std::string trace_out;    // Chrome trace-event file ("" = no trace)
  std::string stats_json;   // unified metrics snapshot ("" = none)
  std::string latency_json; // observatory export ("" = none)
  std::string profile_out;  // profiler JSON (+ .collapsed) ("" = none)
};

void Usage() {
  std::printf(
      "usage: smdb_run [flags]\n"
      "  --nodes=N                machine size (default 8, max 64)\n"
      "  --protocol=P             volatile-selective | volatile-redoall |\n"
      "                           stable-eager | stable-triggered |\n"
      "                           stable-triggered-selective | reboot-all |\n"
      "                           abort-dependents\n"
      "  --coherence=K            invalidate (default) | broadcast\n"
      "  --records=N              heap table size (default 256)\n"
      "  --record-bytes=N         record payload size (default 22)\n"
      "  --txns=N                 transactions per node (default 25)\n"
      "  --ops=N                  operations per transaction (default 8)\n"
      "  --write-ratio=F          update fraction of record ops (default .5)\n"
      "  --index-ratio=F          index-op fraction (default 0)\n"
      "  --dirty-read-ratio=F     browse-mode read fraction (default 0)\n"
      "  --zipf=F                 record skew theta (default 0)\n"
      "  --shared=F               shared (vs partitioned) fraction "
      "(default 1)\n"
      "  --abort-ratio=F          voluntary abort fraction (default 0)\n"
      "  --crash=STEP:NODE[:r]    inject a crash (repeatable; ':r' "
      "restarts)\n"
      "  --steal=F                per-step steal flush probability\n"
      "  --checkpoint-every=N     steps between checkpoints (default 0)\n"
      "  --recovery-threads=N     worker streams for restart recovery\n"
      "                           (default 1 = serial)\n"
      "  --exec-threads=N         shard transaction execution across N\n"
      "                           ThreadPool workers; digest-identical to\n"
      "                           serial (default 1)\n"
      "  --on-demand-recovery     instant recovery: run only the eager\n"
      "                           crash-time prefix, serve traffic in the\n"
      "                           Recovering state, discharge obligations\n"
      "                           on first touch / via the sweeper\n"
      "  --pump-recovery=N        sweeper budget: discharge up to N pending\n"
      "                           objects per workload step (default 1\n"
      "                           when --on-demand-recovery is set)\n"
      "  --group-commit           coalesce commit + eager-LBM forces into\n"
      "                           batched appends (ack after the force)\n"
      "  --group-commit-window=NS coalescing window in sim-ns\n"
      "  --group-commit-max-batch=N  batch size bound\n"
      "  --nvram                  NVRAM log device (cheap forces)\n"
      "  --two-line-lcb           split LCBs over two cache lines\n"
      "  --seed=N                 workload seed (default 42)\n"
      "  --trace-out=PATH         record event traces and write a Chrome\n"
      "                           trace-event file (chrome://tracing)\n"
      "  --trace-capacity=N       per-node trace ring capacity (default "
      "4096)\n"
      "  --stats-json=PATH        write the unified metrics snapshot\n"
      "  --latency-json=PATH      enable the latency observatory and write\n"
      "                           its full export (histograms, windowed\n"
      "                           series, availability timeline)\n"
      "  --obs                    enable the observatory without the JSON\n"
      "                           export (percentiles land in --stats-json)\n"
      "  --obs-window=NS          time-series window in sim-ns (default "
      "50000)\n"
      "  --obs-influence=NS       post-recovery span still counted as\n"
      "                           through-crash (default 200000)\n"
      "  --obs-top-contended=N    lock-contention profile size (default 8)\n"
      "  --profile-out=PATH       enable the execution/recovery profiler\n"
      "                           and write its JSON export (reject-reason\n"
      "                           attribution, occupancy histograms, phase\n"
      "                           costs) plus PATH.collapsed, a\n"
      "                           flamegraph.pl-compatible collapsed stack\n"
      "  --verbose                dump per-subsystem statistics\n");
}

bool ParseFlag(Flags& f, const std::string& arg) {
  auto eq = arg.find('=');
  std::string key = arg.substr(0, eq);
  std::string val = eq == std::string::npos ? "" : arg.substr(eq + 1);
  HarnessConfig& cfg = f.cfg;
  if (key == "--nodes") {
    cfg.db.machine.num_nodes = static_cast<uint16_t>(std::stoul(val));
  } else if (key == "--protocol") {
    if (!RecoveryConfig::FromFlagName(val, &cfg.db.recovery)) return false;
  } else if (key == "--coherence") {
    if (val == "broadcast") {
      cfg.db.machine.coherence = CoherenceKind::kWriteBroadcast;
    } else if (val != "invalidate") {
      return false;
    }
  } else if (key == "--records") {
    cfg.num_records = std::stoul(val);
  } else if (key == "--record-bytes") {
    cfg.db.record_data_size = static_cast<uint16_t>(std::stoul(val));
  } else if (key == "--txns") {
    cfg.workload.txns_per_node = std::stoul(val);
  } else if (key == "--ops") {
    cfg.workload.ops_per_txn = std::stoul(val);
  } else if (key == "--write-ratio") {
    cfg.workload.write_ratio = std::stod(val);
  } else if (key == "--index-ratio") {
    cfg.workload.index_op_ratio = std::stod(val);
  } else if (key == "--dirty-read-ratio") {
    cfg.workload.dirty_read_ratio = std::stod(val);
  } else if (key == "--zipf") {
    cfg.workload.zipf_theta = std::stod(val);
  } else if (key == "--shared") {
    cfg.workload.shared_fraction = std::stod(val);
  } else if (key == "--abort-ratio") {
    cfg.workload.voluntary_abort_ratio = std::stod(val);
  } else if (key == "--crash") {
    CrashPlan plan;
    size_t colon = val.find(':');
    if (colon == std::string::npos) return false;
    plan.at_step = std::stoull(val.substr(0, colon));
    std::string rest = val.substr(colon + 1);
    size_t colon2 = rest.find(':');
    plan.nodes = {static_cast<NodeId>(std::stoul(rest.substr(0, colon2)))};
    plan.restart_after =
        colon2 != std::string::npos && rest.substr(colon2 + 1) == "r";
    cfg.crashes.push_back(plan);
  } else if (key == "--steal") {
    cfg.steal_flush_prob = std::stod(val);
  } else if (key == "--checkpoint-every") {
    cfg.checkpoint_every_steps = std::stoull(val);
  } else if (key == "--recovery-threads") {
    unsigned long threads = std::stoul(val);
    if (threads == 0) return false;
    cfg.db.recovery.recovery_threads = static_cast<uint32_t>(threads);
  } else if (key == "--exec-threads") {
    unsigned long threads = std::stoul(val);
    if (threads == 0) return false;
    cfg.exec.execution_threads = static_cast<uint32_t>(threads);
  } else if (key == "--on-demand-recovery") {
    cfg.db.recovery.on_demand = true;
    if (cfg.pump_recovery_per_step == 0) cfg.pump_recovery_per_step = 1;
  } else if (key == "--pump-recovery") {
    cfg.pump_recovery_per_step = static_cast<int>(std::stoul(val));
  } else if (key == "--group-commit") {
    cfg.db.recovery.group_commit = true;
  } else if (key == "--group-commit-window") {
    cfg.db.recovery.group_commit = true;
    cfg.db.recovery.group_commit_window_ns = std::stoull(val);
  } else if (key == "--group-commit-max-batch") {
    cfg.db.recovery.group_commit = true;
    cfg.db.recovery.group_commit_max_batch =
        static_cast<uint32_t>(std::stoul(val));
  } else if (key == "--nvram") {
    cfg.db.machine.nvram_log = true;
  } else if (key == "--two-line-lcb") {
    cfg.db.lock_table.two_line_lcb = true;
  } else if (key == "--seed") {
    cfg.workload.seed = std::stoull(val);
    cfg.seed = cfg.workload.seed ^ 0xBEEF;
  } else if (key == "--trace-out") {
    if (val.empty()) return false;
    f.trace_out = val;
    cfg.db.trace.enabled = true;
  } else if (key == "--trace-capacity") {
    cfg.db.trace.capacity_per_node = static_cast<uint32_t>(std::stoul(val));
  } else if (key == "--stats-json") {
    if (val.empty()) return false;
    f.stats_json = val;
  } else if (key == "--latency-json") {
    if (val.empty()) return false;
    f.latency_json = val;
    cfg.db.obs.enabled = true;
  } else if (key == "--obs") {
    cfg.db.obs.enabled = true;
  } else if (key == "--obs-window") {
    cfg.db.obs.enabled = true;
    cfg.db.obs.window_ns = std::stoull(val);
  } else if (key == "--obs-influence") {
    cfg.db.obs.enabled = true;
    cfg.db.obs.crash_influence_ns = std::stoull(val);
  } else if (key == "--obs-top-contended") {
    cfg.db.obs.enabled = true;
    cfg.db.obs.top_contended = static_cast<uint32_t>(std::stoul(val));
  } else if (key == "--profile-out") {
    if (val.empty()) return false;
    f.profile_out = val;
    cfg.db.profiler.enabled = true;
  } else if (key == "--verbose") {
    f.verbose = true;
  } else {
    return false;
  }
  return true;
}

bool WriteFile(const std::string& path, const std::string& content) {
  std::ofstream out(path);
  if (!out) {
    std::fprintf(stderr, "cannot write %s\n", path.c_str());
    return false;
  }
  out << content << "\n";
  return true;
}

int Run(const Flags& flags) {
  Harness h(flags.cfg);
  auto report = h.Run();
  // The trace is written even for a failed run — the event history leading
  // into the failure is exactly what it is for.
  if (!flags.trace_out.empty()) {
    if (!WriteFile(flags.trace_out, h.db().tracer().ToChromeTrace())) {
      return 1;
    }
    std::fprintf(stderr, "trace: %s (%llu events, %llu dropped)\n",
                 flags.trace_out.c_str(),
                 static_cast<unsigned long long>(
                     h.db().tracer().total_recorded()),
                 static_cast<unsigned long long>(
                     h.db().tracer().total_dropped()));
  }
  if (!report.ok()) {
    std::fprintf(stderr, "run failed: %s\n",
                 report.status().ToString().c_str());
    return 1;
  }
  if (!flags.stats_json.empty()) {
    MetricsRegistry reg = MetricsRegistry::FromReport(*report);
    reg.AddTrace(h.db().tracer());
    if (!WriteFile(flags.stats_json, reg.ToJson().Dump(1))) return 1;
  }
  if (!flags.latency_json.empty()) {
    if (!WriteFile(flags.latency_json,
                   report->latency.ToJson().Dump(1))) {
      return 1;
    }
  }
  if (!flags.profile_out.empty()) {
    if (!WriteFile(flags.profile_out,
                   ProfileJsonFromReport(*report).Dump(1))) {
      return 1;
    }
    if (!WriteFile(flags.profile_out + ".collapsed",
                   report->profile.ToCollapsed())) {
      return 1;
    }
    std::fprintf(stderr, "profile: %s (+ .collapsed)\n",
                 flags.profile_out.c_str());
  }
  const HarnessReport& r = *report;
  std::printf("protocol            %s\n",
              flags.cfg.db.recovery.Name().c_str());
  std::printf("committed           %llu\n",
              static_cast<unsigned long long>(r.exec.committed));
  std::printf("aborted (deadlock)  %llu\n",
              static_cast<unsigned long long>(r.exec.aborted_deadlock));
  std::printf("aborted (other)     %llu\n",
              static_cast<unsigned long long>(r.exec.aborted_other));
  std::printf("sim time            %.3f ms\n", r.total_time_ns / 1e6);
  std::printf("throughput          %.1f txn/sim-s\n", r.throughput_tps());
  std::printf("log forces          %llu (LBM: %llu)\n",
              static_cast<unsigned long long>(r.logs.forces),
              static_cast<unsigned long long>(r.logs.lbm_forces));
  std::printf("migrations          %llu\n",
              static_cast<unsigned long long>(r.machine.migrations));
  std::printf("replications        %llu\n",
              static_cast<unsigned long long>(r.machine.replications));
  for (size_t i = 0; i < r.recoveries.size(); ++i) {
    std::printf("recovery[%zu]         %s\n", i,
                r.recoveries[i].ToString().c_str());
  }
  if (r.latency.enabled) {
    std::printf("commit latency      p50 %s  p99 %s  p99.9 %s (n=%llu)\n",
                FormatSimTime(r.latency.commit_latency.P50()).c_str(),
                FormatSimTime(r.latency.commit_latency.P99()).c_str(),
                FormatSimTime(r.latency.commit_latency.P999()).c_str(),
                static_cast<unsigned long long>(
                    r.latency.commit_latency.count()));
    for (size_t i = 0; i < r.latency.availability.crashes.size(); ++i) {
      const CrashAvailability& c = r.latency.availability.crashes[i];
      std::printf(
          "availability[%zu]     ttfc %s  trough %.0f%% for %s  "
          "p99 steady %s vs through-crash %s\n",
          i, FormatSimTime(c.ttfc_ns()).c_str(), c.depth_pct,
          FormatSimTime(c.trough_duration_ns).c_str(),
          FormatSimTime(r.latency.commit_steady.P99()).c_str(),
          FormatSimTime(r.latency.commit_through_crash.P99()).c_str());
    }
  }
  std::printf("unnecessary aborts  %llu\n",
              static_cast<unsigned long long>(r.unnecessary_aborts()));
  std::printf("IFA verification    %s\n", r.verify_status.ToString().c_str());
  if (flags.verbose) {
    std::printf("\nmachine stats:\n%s\n", r.machine.ToString().c_str());
    std::printf("disk reads/writes   %llu / %llu\n",
                static_cast<unsigned long long>(r.disk_reads),
                static_cast<unsigned long long>(r.disk_writes));
    std::printf("undo tag writes     %llu\n",
                static_cast<unsigned long long>(r.txns.undo_tag_writes));
    std::printf("lock log records    %llu\n",
                static_cast<unsigned long long>(r.locks.lock_log_records));
    std::printf("btree splits        %llu (early commits %llu)\n",
                static_cast<unsigned long long>(r.btree.splits),
                static_cast<unsigned long long>(r.btree.early_commits));
  }
  return r.verify_status.ok() ? 0 : 2;
}

}  // namespace
}  // namespace smdb

int main(int argc, char** argv) {
  smdb::Flags flags;
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg == "--help" || arg == "-h") {
      smdb::Usage();
      return 0;
    }
    if (!smdb::ParseFlag(flags, arg)) {
      std::fprintf(stderr, "bad flag: %s\n\n", arg.c_str());
      smdb::Usage();
      return 1;
    }
  }
  return smdb::Run(flags);
}
