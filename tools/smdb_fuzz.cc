// smdb_fuzz — randomized crash-schedule fuzzer with deterministic replay.
//
// Samples workload/crash-schedule scenarios from sequential seeds, runs
// each through the harness under every protocol, and checks the IFA oracle
// after every recovery. On failure it shrinks the schedule to a minimal
// reproducer and writes a JSON replay file.
//
// Examples:
//   smdb_fuzz --seeds=200
//   smdb_fuzz --seeds=50 --protocol=volatile-selective --break=no-undo-tags
//   smdb_fuzz --replay=smdb_fuzz_failure.json
//
// Exit codes: 0 clean · 1 usage/IO error · 2 failure found (replay file
// written) · in --replay mode: 0 the recorded failure reproduces, 3 it
// does not (determinism broken).

#include <cerrno>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "fuzz/fuzzer.h"

namespace smdb {
namespace {

struct Flags {
  uint64_t seeds = 100;
  uint64_t seed_start = 0;
  std::vector<RecoveryConfig> protocols;
  bool break_undo_tags = false;
  bool shrink = true;
  bool verbose = false;
  uint64_t recovery_threads = 1;
  uint64_t jobs = 1;
  bool group_commit = false;
  uint64_t group_commit_window = 0;
  uint64_t group_commit_max_batch = 0;
  bool on_demand = false;
  uint64_t exec_threads = 1;
  bool forensics = true;
  uint64_t trace_capacity = 0;  // 0 = keep the option default
  std::string stats_json;       // campaign summary path ("" = none)
  std::string out_path = "smdb_fuzz_failure.json";
  std::string replay_path;
};

void Usage() {
  std::printf(
      "usage: smdb_fuzz [flags]\n"
      "  --seeds=N             number of sequential seeds to run (default "
      "100)\n"
      "  --seed-start=N        first seed (default 0)\n"
      "  --protocol=P          restrict to one protocol (repeatable):\n"
      "                        volatile-selective | volatile-redoall |\n"
      "                        stable-eager | stable-triggered |\n"
      "                        stable-triggered-selective | reboot-all |\n"
      "                        abort-dependents   (default: all)\n"
      "  --break=no-undo-tags  fault injection: disable undo tagging\n"
      "  --recovery-threads=N  also run the parallel-recovery differential:\n"
      "                        every recovery re-runs at N worker streams\n"
      "                        and must produce the serial run's state\n"
      "                        digest (default 1 = off)\n"
      "  --jobs=N              shard seeds across N worker threads; the\n"
      "                        verdict, stats, and replay file are\n"
      "                        byte-identical to --jobs=1 (default 1)\n"
      "  --group-commit        run every protocol with the group-commit\n"
      "                        log-force pipeline on\n"
      "  --group-commit-window=NS   coalescing window in sim-ns (0 = keep\n"
      "                        the protocol default)\n"
      "  --group-commit-max-batch=N size bound on a coalesced batch (0 =\n"
      "                        keep the protocol default)\n"
      "  --on-demand-recovery  run every protocol with on-demand (instant)\n"
      "                        recovery: traffic resumes in the Recovering\n"
      "                        state and obligations discharge lazily\n"
      "  --exec-threads=N      shard transaction execution across N pool\n"
      "                        workers in every run (default 1 = serial)\n"
      "  --no-shrink           keep the original failing schedule\n"
      "  --no-forensics        skip the traced forensic re-run of a shrunk\n"
      "                        failure (replay files omit \"forensics\")\n"
      "  --trace-capacity=N    per-node trace ring capacity for the\n"
      "                        forensic re-run (default 4096)\n"
      "  --stats-json=FILE     write the campaign summary (totals plus\n"
      "                        per-seed min/max/mean) as JSON\n"
      "  --out=FILE            replay file path (default "
      "smdb_fuzz_failure.json)\n"
      "  --replay=FILE         re-execute a replay file instead of fuzzing\n"
      "  --verbose             per-seed progress\n");
}

bool TakesValue(const std::string& key) {
  return key == "--seeds" || key == "--seed-start" || key == "--protocol" ||
         key == "--break" || key == "--out" || key == "--replay" ||
         key == "--recovery-threads" || key == "--jobs" ||
         key == "--exec-threads" ||
         key == "--group-commit-window" ||
         key == "--group-commit-max-batch" || key == "--trace-capacity" ||
         key == "--stats-json";
}

bool ParseUint(const std::string& val, uint64_t* out) {
  // strtoull accepts "-3" (wrapping to 2^64-3) and leading whitespace;
  // insist on a plain digit string.
  if (val.empty() || val[0] < '0' || val[0] > '9') return false;
  char* end = nullptr;
  errno = 0;
  uint64_t v = std::strtoull(val.c_str(), &end, 10);
  if (errno != 0 || end != val.c_str() + val.size()) return false;
  *out = v;
  return true;
}

bool ParseFlag(Flags& f, const std::string& key, const std::string& val) {
  if (key == "--seeds") {
    if (!ParseUint(val, &f.seeds)) return false;
  } else if (key == "--seed-start") {
    if (!ParseUint(val, &f.seed_start)) return false;
  } else if (key == "--protocol") {
    RecoveryConfig rc;
    if (!RecoveryConfig::FromFlagName(val, &rc)) return false;
    f.protocols.push_back(rc);
  } else if (key == "--break") {
    if (val != "no-undo-tags") return false;
    f.break_undo_tags = true;
  } else if (key == "--recovery-threads") {
    if (!ParseUint(val, &f.recovery_threads) || f.recovery_threads == 0) {
      return false;
    }
  } else if (key == "--jobs") {
    if (!ParseUint(val, &f.jobs) || f.jobs == 0) return false;
  } else if (key == "--exec-threads") {
    if (!ParseUint(val, &f.exec_threads) || f.exec_threads == 0) return false;
  } else if (key == "--group-commit") {
    f.group_commit = true;
  } else if (key == "--group-commit-window") {
    if (!ParseUint(val, &f.group_commit_window)) return false;
    f.group_commit = true;
  } else if (key == "--group-commit-max-batch") {
    if (!ParseUint(val, &f.group_commit_max_batch)) return false;
    f.group_commit = true;
  } else if (key == "--on-demand-recovery") {
    f.on_demand = true;
  } else if (key == "--no-shrink") {
    f.shrink = false;
  } else if (key == "--no-forensics") {
    f.forensics = false;
  } else if (key == "--trace-capacity") {
    if (!ParseUint(val, &f.trace_capacity) || f.trace_capacity == 0) {
      return false;
    }
  } else if (key == "--stats-json") {
    if (val.empty()) return false;
    f.stats_json = val;
  } else if (key == "--out") {
    f.out_path = val;
  } else if (key == "--replay") {
    f.replay_path = val;
  } else if (key == "--verbose") {
    f.verbose = true;
  } else {
    return false;
  }
  return true;
}

void PrintStats(const FuzzStats& s) {
  std::printf(
      "cases %llu · runs %llu (+%llu shrink) · crashes fired %llu, "
      "skipped %llu · whole-machine restarts %llu · txns committed %llu\n",
      static_cast<unsigned long long>(s.cases),
      static_cast<unsigned long long>(s.runs),
      static_cast<unsigned long long>(s.shrink_runs),
      static_cast<unsigned long long>(s.crashes_fired),
      static_cast<unsigned long long>(s.crashes_skipped),
      static_cast<unsigned long long>(s.whole_machine_restarts),
      static_cast<unsigned long long>(s.committed));
}

/// Campaign summary: run parameters, merged totals, per-seed min/max/mean
/// aggregates, and the failure triple (null when clean).
bool WriteCampaignSummary(const Flags& flags,
                          const FuzzCampaignResult& result,
                          const FuzzStats& totals) {
  json::Value doc = json::Value::Object();
  doc.Set("smdb_fuzz_stats", json::Value::Uint(1));
  doc.Set("seed_start", json::Value::Uint(flags.seed_start));
  doc.Set("seeds", json::Value::Uint(flags.seeds));
  doc.Set("jobs", json::Value::Uint(flags.jobs));
  json::Value t = json::Value::Object();
  totals.ForEachCounter([&](const char* name, uint64_t value) {
    t.Set(name, json::Value::Uint(value));
  });
  doc.Set("totals", t);
  doc.Set("per_seed", PerSeedAggregateJson(result.per_seed));
  if (result.failure.has_value()) {
    json::Value fail = json::Value::Object();
    fail.Set("seed", json::Value::Uint(result.failure->seed));
    fail.Set("protocol",
             json::Value::Str(result.failure->protocol.FlagName()));
    fail.Set("kind", json::Value::Str(result.failure->verdict.kind));
    fail.Set("detail", json::Value::Str(result.failure->verdict.detail));
    doc.Set("failure", fail);
  } else {
    doc.Set("failure", json::Value::Null());
  }
  std::ofstream out(flags.stats_json);
  if (!out) {
    std::fprintf(stderr, "cannot write %s\n", flags.stats_json.c_str());
    return false;
  }
  out << doc.Dump(1) << "\n";
  return true;
}

int Replay(const Flags& flags) {
  std::ifstream in(flags.replay_path);
  if (!in) {
    std::fprintf(stderr, "cannot open %s\n", flags.replay_path.c_str());
    return 1;
  }
  std::ostringstream buf;
  buf << in.rdbuf();
  auto doc = CrashScheduleFuzzer::ParseReplay(buf.str());
  if (!doc.ok()) {
    std::fprintf(stderr, "bad replay file: %s\n",
                 doc.status().ToString().c_str());
    return 1;
  }
  std::printf("replaying seed %llu under %s%s\n",
              static_cast<unsigned long long>(doc->seed),
              doc->protocol.Name().c_str(),
              doc->recorded_kind.empty()
                  ? ""
                  : (" (recorded: " + doc->recorded_kind + ")").c_str());
  if (flags.verbose) {
    // Re-run through the harness directly to show what each recovery did.
    Harness h(MakeHarnessConfig(doc->fuzz_case, doc->protocol));
    auto report = h.Run();
    if (report.ok()) {
      for (const auto& rec : report->recoveries) {
        std::printf("  recovery: %s\n", rec.ToString().c_str());
      }
      std::printf("  verify: %s\n", report->verify_status.ToString().c_str());
      std::printf("  committed=%llu aborted=%llu unnecessary=%llu\n",
                  static_cast<unsigned long long>(report->exec.committed),
                  static_cast<unsigned long long>(report->exec.aborted_deadlock +
                                                  report->exec.aborted_other),
                  static_cast<unsigned long long>(report->unnecessary_aborts()));
    } else {
      std::printf("  run error: %s\n", report.status().ToString().c_str());
    }
  }
  CrashScheduleFuzzer::Options opts;
  // A --recovery-threads flag overrides the value recorded in the file, so
  // a serial failure can be probed at other widths (and vice versa).
  opts.recovery_threads = flags.recovery_threads > 1
                              ? static_cast<uint32_t>(flags.recovery_threads)
                              : doc->recovery_threads;
  opts.execution_threads = flags.exec_threads > 1
                               ? static_cast<uint32_t>(flags.exec_threads)
                               : doc->execution_threads;
  CrashScheduleFuzzer fuzzer(opts);
  FuzzVerdict verdict = fuzzer.RunCase(doc->fuzz_case, doc->protocol);
  if (verdict.failed) {
    std::printf("reproduced: [%s] %s\n", verdict.kind.c_str(),
                verdict.detail.c_str());
    return 0;
  }
  std::printf("did NOT reproduce — run was clean\n");
  return 3;
}

int Fuzz(const Flags& flags) {
  CrashScheduleFuzzer::Options opts;
  opts.protocols = flags.protocols;  // empty = defaults
  opts.disable_undo_tagging = flags.break_undo_tags;
  opts.recovery_threads = static_cast<uint32_t>(flags.recovery_threads);
  opts.group_commit = flags.group_commit;
  opts.group_commit_window_ns = flags.group_commit_window;
  opts.group_commit_max_batch =
      static_cast<uint32_t>(flags.group_commit_max_batch);
  opts.on_demand = flags.on_demand;
  opts.execution_threads = static_cast<uint32_t>(flags.exec_threads);
  opts.forensics = flags.forensics;
  if (flags.trace_capacity != 0) {
    opts.trace_capacity = static_cast<uint32_t>(flags.trace_capacity);
  }

  FuzzCampaignResult result;
  if (flags.jobs <= 1 && flags.verbose) {
    // Per-seed progress needs the loop inline; one fresh fuzzer per seed,
    // like the campaign paths, so per-seed stats blocks exist.
    for (uint64_t seed = flags.seed_start;
         seed < flags.seed_start + flags.seeds; ++seed) {
      CrashScheduleFuzzer fuzzer(opts);
      result.failure = fuzzer.RunSeed(seed);
      result.per_seed.push_back(fuzzer.stats());
      result.stats.Merge(fuzzer.stats());
      if (result.failure.has_value()) break;
      std::printf("seed %llu ok\n", static_cast<unsigned long long>(seed));
    }
  } else {
    result = RunFuzzCampaign(opts, flags.seed_start, flags.seeds,
                             static_cast<unsigned>(flags.jobs));
  }
  FuzzStats stats = result.stats;

  if (result.failure.has_value()) {
    const FuzzFailure& failure = *result.failure;
    std::printf("seed %llu FAILED under %s: [%s] %s\n",
                static_cast<unsigned long long>(failure.seed),
                failure.protocol.Name().c_str(),
                failure.verdict.kind.c_str(),
                failure.verdict.detail.c_str());
    // Shrinking is serial regardless of --jobs: it re-runs one failure.
    CrashScheduleFuzzer fuzzer(opts);
    FuzzCase shrunk = failure.fuzz_case;
    if (flags.shrink) {
      shrunk = fuzzer.Shrink(failure);
      std::printf("shrunk: %zu crash plan(s), %zu txns/node x %zu ops\n",
                  shrunk.crashes.size(), shrunk.workload.txns_per_node,
                  shrunk.workload.ops_per_txn);
    }
    json::Value forensics;
    bool have_forensics = false;
    if (opts.forensics) {
      forensics = fuzzer.CollectForensics(failure, shrunk);
      have_forensics = true;
      std::printf("forensics: traced re-run %s\n",
                  forensics.GetBool("reproduced")
                      ? "reproduced the failure"
                      : "was clean (non-state failure kind)");
    }
    std::string replay = fuzzer.ReplayJson(
        failure, shrunk, have_forensics ? &forensics : nullptr);
    std::ofstream out(flags.out_path);
    if (!out) {
      std::fprintf(stderr, "cannot write %s\n", flags.out_path.c_str());
      return 1;
    }
    out << replay;
    out.close();
    std::printf("replay file written to %s — re-run with --replay=%s\n",
                flags.out_path.c_str(), flags.out_path.c_str());
    stats.Merge(fuzzer.stats());
    PrintStats(stats);
    if (!flags.stats_json.empty() &&
        !WriteCampaignSummary(flags, result, stats)) {
      return 1;
    }
    return 2;
  }
  std::printf("all %llu seeds clean under %zu protocol(s)\n",
              static_cast<unsigned long long>(flags.seeds),
              opts.protocols.empty()
                  ? CrashScheduleFuzzer::DefaultProtocols().size()
                  : opts.protocols.size());
  PrintStats(stats);
  if (!flags.stats_json.empty() &&
      !WriteCampaignSummary(flags, result, stats)) {
    return 1;
  }
  return 0;
}

}  // namespace
}  // namespace smdb

int main(int argc, char** argv) {
  smdb::Flags flags;
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg == "--help" || arg == "-h") {
      smdb::Usage();
      return 0;
    }
    // Both --flag=value and --flag value spellings are accepted.
    auto eq = arg.find('=');
    std::string key = arg.substr(0, eq);
    std::string val = eq == std::string::npos ? "" : arg.substr(eq + 1);
    if (eq == std::string::npos && smdb::TakesValue(key) && i + 1 < argc) {
      val = argv[++i];
    }
    if (!smdb::ParseFlag(flags, key, val)) {
      std::fprintf(stderr, "bad flag: %s\n\n", arg.c_str());
      smdb::Usage();
      return 1;
    }
  }
  if (!flags.replay_path.empty()) return smdb::Replay(flags);
  return smdb::Fuzz(flags);
}
