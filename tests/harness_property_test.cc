// Randomized end-to-end property tests: run generated multi-node workloads
// with crash injection under every protocol and check the IFA invariants
// via the oracle after each recovery and at quiescence.

#include <gtest/gtest.h>

#include "workload/harness.h"

namespace smdb {
namespace {

struct PropertyParam {
  RecoveryConfig rc;
  uint64_t seed;
  double index_ratio;
  double steal_prob;
  bool write_broadcast = false;
};

class IfaPropertyTest : public ::testing::TestWithParam<PropertyParam> {};

std::vector<PropertyParam> MakeParams() {
  std::vector<PropertyParam> out;
  std::vector<RecoveryConfig> protocols = {
      RecoveryConfig::VolatileSelectiveRedo(),
      RecoveryConfig::VolatileRedoAll(),
      RecoveryConfig::StableEagerRedoAll(),
      RecoveryConfig::StableTriggeredSelectiveRedo(),
  };
  uint64_t seeds[] = {7, 1234, 987654321};
  for (const auto& rc : protocols) {
    for (uint64_t seed : seeds) {
      out.push_back({rc, seed, 0.0, 0.0});
      out.push_back({rc, seed, 0.25, 0.02});
    }
  }
  // Write-broadcast coherence (section 7): Selective Redo is the natural
  // fit (undo-only), but both must preserve IFA.
  out.push_back({RecoveryConfig::VolatileSelectiveRedo(), 42, 0.2, 0.01,
                 /*write_broadcast=*/true});
  out.push_back({RecoveryConfig::VolatileRedoAll(), 42, 0.2, 0.01,
                 /*write_broadcast=*/true});
  return out;
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, IfaPropertyTest, ::testing::ValuesIn(MakeParams()),
    [](const ::testing::TestParamInfo<PropertyParam>& info) {
      const PropertyParam& p = info.param;
      std::string name = p.rc.Name() + "_s" + std::to_string(p.seed) + "_i" +
                         std::to_string(int(p.index_ratio * 100)) +
                         (p.write_broadcast ? "_wb" : "");
      for (char& c : name) {
        if (!isalnum(static_cast<unsigned char>(c))) c = '_';
      }
      return name;
    });

TEST_P(IfaPropertyTest, CrashMidWorkloadPreservesIfa) {
  const PropertyParam& p = GetParam();
  HarnessConfig cfg;
  cfg.db.machine.num_nodes = 6;
  if (p.write_broadcast) {
    cfg.db.machine.coherence = CoherenceKind::kWriteBroadcast;
  }
  cfg.db.recovery = p.rc;
  cfg.num_records = 96;  // small table => heavy line sharing
  cfg.workload.txns_per_node = 12;
  cfg.workload.ops_per_txn = 6;
  cfg.workload.write_ratio = 0.6;
  cfg.workload.index_op_ratio = p.index_ratio;
  cfg.workload.dirty_read_ratio = 0.05;
  cfg.workload.voluntary_abort_ratio = 0.1;
  cfg.workload.seed = p.seed;
  cfg.seed = p.seed ^ 0xABCD;
  cfg.steal_flush_prob = p.steal_prob;
  cfg.crashes = {
      CrashPlan{60, {1}, /*restart_after=*/false},
      CrashPlan{140, {3}, /*restart_after=*/false},
  };
  Harness h(cfg);
  auto report = h.Run();
  ASSERT_TRUE(report.ok()) << report.status().ToString();
  EXPECT_TRUE(report->verify_status.ok()) << report->verify_status.ToString();
  ASSERT_EQ(report->recoveries.size(), 2u);
  // IFA: zero unnecessary aborts.
  EXPECT_EQ(report->unnecessary_aborts(), 0u);
  // Some work completed despite the crashes.
  EXPECT_GT(report->exec.committed, 0u);
  // The index is structurally sound at the end.
  NodeId probe = h.db().machine().AliveNodes()[0];
  EXPECT_TRUE(h.db().index().CheckStructure(probe).ok());
}

TEST(IfaPropertyTestExtras, CrashWithRestartAndSecondCrash) {
  HarnessConfig cfg;
  cfg.db.machine.num_nodes = 4;
  cfg.db.recovery = RecoveryConfig::VolatileSelectiveRedo();
  cfg.num_records = 64;
  cfg.workload.txns_per_node = 15;
  cfg.workload.ops_per_txn = 5;
  cfg.workload.seed = 31337;
  cfg.steal_flush_prob = 0.05;
  cfg.checkpoint_every_steps = 120;
  cfg.crashes = {
      CrashPlan{50, {2}, /*restart_after=*/true},
      CrashPlan{150, {2}, /*restart_after=*/true},  // crash it again
      CrashPlan{220, {0}, /*restart_after=*/false},
  };
  Harness h(cfg);
  auto report = h.Run();
  ASSERT_TRUE(report.ok()) << report.status().ToString();
  EXPECT_TRUE(report->verify_status.ok()) << report->verify_status.ToString();
  EXPECT_EQ(report->unnecessary_aborts(), 0u);
}

TEST(IfaPropertyTestExtras, BaselineRebootAbortsEverything) {
  HarnessConfig cfg;
  cfg.db.machine.num_nodes = 6;
  cfg.db.recovery = RecoveryConfig::BaselineRebootAll();
  cfg.num_records = 96;
  cfg.workload.txns_per_node = 10;
  cfg.workload.seed = 5;
  cfg.crashes = {CrashPlan{80, {1}, /*restart_after=*/true}};
  Harness h(cfg);
  auto report = h.Run();
  ASSERT_TRUE(report.ok()) << report.status().ToString();
  EXPECT_TRUE(report->verify_status.ok()) << report->verify_status.ToString();
  ASSERT_EQ(report->recoveries.size(), 1u);
  EXPECT_TRUE(report->recoveries[0].whole_machine_restart);
  // The whole point: surviving-node transactions were aborted unnecessarily.
  EXPECT_GT(report->unnecessary_aborts(), 0u);
  // But the committed state is still consistent (FA holds, IFA does not).
  EXPECT_GT(report->exec.committed, 0u);
}

TEST(IfaPropertyTestExtras, BaselineAbortDependentsAbortsSharers) {
  HarnessConfig cfg;
  cfg.db.machine.num_nodes = 6;
  cfg.db.recovery = RecoveryConfig::BaselineAbortDependents();
  cfg.num_records = 32;  // tiny table => everyone shares lines
  cfg.workload.txns_per_node = 12;
  cfg.workload.ops_per_txn = 8;
  cfg.workload.write_ratio = 0.8;
  cfg.workload.seed = 11;
  cfg.crashes = {CrashPlan{100, {2}, /*restart_after=*/false}};
  Harness h(cfg);
  auto report = h.Run();
  ASSERT_TRUE(report.ok()) << report.status().ToString();
  EXPECT_TRUE(report->verify_status.ok()) << report->verify_status.ToString();
}

// Regression: a crash plan that kills every node used to be rejected with
// "no surviving nodes" (and, had it survived that, indexing the empty alive
// set in the steal daemon / checkpoint branch was UB). It now runs as a
// whole-machine restart, with the steal/checkpoint cadences active around
// the crash.
TEST(IfaPropertyTestExtras, CrashAllNodesIsWholeMachineRestart) {
  for (auto rc : {RecoveryConfig::VolatileSelectiveRedo(),
                  RecoveryConfig::VolatileRedoAll(),
                  RecoveryConfig::BaselineRebootAll()}) {
    HarnessConfig cfg;
    cfg.db.machine.num_nodes = 4;
    cfg.db.recovery = rc;
    cfg.num_records = 64;
    cfg.workload.txns_per_node = 10;
    cfg.workload.ops_per_txn = 5;
    cfg.workload.seed = 77;
    cfg.steal_flush_prob = 0.05;
    cfg.checkpoint_every_steps = 30;
    cfg.crashes = {CrashPlan{40, {0, 1, 2, 3}, /*restart_after=*/false}};
    Harness h(cfg);
    auto report = h.Run();
    ASSERT_TRUE(report.ok()) << rc.Name() << ": "
                             << report.status().ToString();
    EXPECT_TRUE(report->verify_status.ok())
        << rc.Name() << ": " << report->verify_status.ToString();
    ASSERT_EQ(report->recoveries.size(), 1u);
    EXPECT_TRUE(report->recoveries[0].whole_machine_restart);
    // Every active transaction was on a crashed node: annulled, never
    // "unnecessarily aborted".
    EXPECT_EQ(report->unnecessary_aborts(), 0u);
    // The rebooted machine finishes the remaining workload.
    EXPECT_GT(report->exec.committed, 0u);
  }
}

// Regression: Harness::Run used to early-return an empty report when
// post-recovery IFA verification failed, destroying exactly the
// diagnostics a failing run needs. Poison the oracle so verification must
// fail, then check the report still carries execution state.
TEST(IfaPropertyTestExtras, VerifyFailureStillFillsReport) {
  HarnessConfig cfg;
  cfg.db.machine.num_nodes = 4;
  cfg.db.recovery = RecoveryConfig::VolatileSelectiveRedo();
  cfg.num_records = 64;
  cfg.workload.txns_per_node = 10;
  cfg.workload.ops_per_txn = 6;
  cfg.workload.seed = 99;
  cfg.crashes = {CrashPlan{30, {1}, /*restart_after=*/false}};
  Harness h(cfg);
  ASSERT_TRUE(h.Setup().ok());
  // A fabricated committed value the database never wrote: the first
  // post-recovery VerifyAll must report an IFA violation.
  const TxnId fake_txn = 0xFA4E;
  h.checker().OnUpdate(fake_txn, h.table()[0],
                       std::vector<uint8_t>(cfg.db.record_data_size, 0xEE));
  h.checker().OnCommit(fake_txn);
  auto report = h.Run();
  ASSERT_TRUE(report.ok()) << report.status().ToString();
  EXPECT_FALSE(report->verify_status.ok());
  ASSERT_EQ(report->recoveries.size(), 1u);
  // The report must carry diagnostics despite the failed verification.
  EXPECT_GE(report->steps, 30u);
  EXPECT_GT(report->exec.ops_executed, 0u);
  EXPECT_GT(report->machine.node_crashes, 0u);
  EXPECT_GT(report->total_time_ns, 0u);
}

// Regression: plans aimed at already-dead nodes or scheduled past workload
// drain used to vanish silently; the report now records them, so a fuzzer
// can tell "survived the crash" from "the crash never happened".
TEST(IfaPropertyTestExtras, SkippedPlansAreRecorded) {
  HarnessConfig cfg;
  cfg.db.machine.num_nodes = 4;
  cfg.db.recovery = RecoveryConfig::VolatileSelectiveRedo();
  cfg.num_records = 64;
  cfg.workload.txns_per_node = 10;
  cfg.workload.ops_per_txn = 5;
  cfg.workload.seed = 123;
  cfg.crashes = {
      CrashPlan{30, {1}, /*restart_after=*/false},
      CrashPlan{60, {1}, /*restart_after=*/false},       // node 1 already dead
      CrashPlan{1'000'000, {0}, /*restart_after=*/false},  // beyond drain
  };
  Harness h(cfg);
  auto report = h.Run();
  ASSERT_TRUE(report.ok()) << report.status().ToString();
  EXPECT_TRUE(report->verify_status.ok()) << report->verify_status.ToString();
  ASSERT_EQ(report->recoveries.size(), 1u);
  ASSERT_EQ(report->skipped_crashes.size(), 2u);
  EXPECT_EQ(report->skipped_crashes[0].plan_index, 1u);
  EXPECT_EQ(report->skipped_crashes[0].reason,
            SkippedCrash::Reason::kTargetsAlreadyDead);
  EXPECT_EQ(report->skipped_crashes[1].plan_index, 2u);
  EXPECT_EQ(report->skipped_crashes[1].reason,
            SkippedCrash::Reason::kNeverReached);
  EXPECT_EQ(report->skipped_crashes[1].plan.at_step, 1'000'000u);
}

// Regression: duplicate node ids in one plan used to reach OnCrash and
// Database::Crash once per duplicate.
TEST(IfaPropertyTestExtras, DuplicateCrashNodesAreDeduped) {
  HarnessConfig cfg;
  cfg.db.machine.num_nodes = 4;
  cfg.db.recovery = RecoveryConfig::VolatileSelectiveRedo();
  cfg.num_records = 64;
  cfg.workload.txns_per_node = 10;
  cfg.workload.ops_per_txn = 5;
  cfg.workload.seed = 321;
  cfg.crashes = {CrashPlan{50, {2, 2, 2}, /*restart_after=*/false}};
  Harness h(cfg);
  auto report = h.Run();
  ASSERT_TRUE(report.ok()) << report.status().ToString();
  EXPECT_TRUE(report->verify_status.ok()) << report->verify_status.ToString();
  ASSERT_EQ(report->recoveries.size(), 1u);
  EXPECT_EQ(report->recoveries[0].crashed_nodes, std::vector<NodeId>{2});
  EXPECT_EQ(report->machine.node_crashes, 1u);
}

TEST(IfaPropertyTestExtras, NoCrashRunIsClean) {
  for (auto rc : {RecoveryConfig::VolatileSelectiveRedo(),
                  RecoveryConfig::StableEagerRedoAll()}) {
    HarnessConfig cfg;
    cfg.db.machine.num_nodes = 4;
    cfg.db.recovery = rc;
    cfg.num_records = 64;
    cfg.workload.txns_per_node = 10;
    cfg.workload.index_op_ratio = 0.3;
    cfg.workload.seed = 2024;
    Harness h(cfg);
    auto report = h.Run();
    ASSERT_TRUE(report.ok()) << report.status().ToString();
    EXPECT_TRUE(report->verify_status.ok())
        << rc.Name() << ": " << report->verify_status.ToString();
    // Every script terminates in a commit or a voluntary abort.
    EXPECT_EQ(report->exec.committed + report->exec.aborted_other, 4u * 10u);
  }
}

}  // namespace
}  // namespace smdb
