// Tests for the shared-memory hash index (section 4.2's "hash tables"),
// including crash recovery via the standard recipe.

#include <gtest/gtest.h>

#include <map>

#include "common/rng.h"
#include "hash/hash_index.h"
#include "sim/machine.h"
#include "storage/stable_log.h"

namespace smdb {
namespace {

struct Fx {
  Fx() : machine(MakeCfg()), stable(4), log(&machine, &stable),
         lbm(LbmKind::kVolatile),
         index(&machine, &log, &usn, &lbm, /*index_id=*/7,
               /*capacity=*/512) {}
  static MachineConfig MakeCfg() {
    MachineConfig c;
    c.num_nodes = 4;
    return c;
  }
  Machine machine;
  StableLogStore stable;
  LogManager log;
  UsnSource usn;
  VolatileLbm lbm;
  HashIndex index;
};

TEST(HashIndexTest, InsertLookupDelete) {
  Fx f;
  Lsn chain = kInvalidLsn;
  TxnId t = MakeTxnId(0, 1);
  ASSERT_TRUE(f.index.Insert(0, t, 42, {3, 9}, 0, &chain).ok());
  auto r = f.index.Lookup(1, 42);
  ASSERT_TRUE(r.ok());
  ASSERT_TRUE(r->has_value());
  EXPECT_EQ(**r, (RecordId{3, 9}));
  ASSERT_TRUE(f.index.Delete(1, t, 42, 0, &chain).ok());
  r = f.index.Lookup(2, 42);
  ASSERT_TRUE(r.ok());
  EXPECT_FALSE(r->has_value());
}

TEST(HashIndexTest, DuplicateRejectedTombstoneReused) {
  Fx f;
  Lsn chain = kInvalidLsn;
  TxnId t = MakeTxnId(0, 1);
  ASSERT_TRUE(f.index.Insert(0, t, 5, {1, 1}, 0, &chain).ok());
  EXPECT_EQ(f.index.Insert(0, t, 5, {2, 2}, 0, &chain).code(),
            Status::Code::kInvalidArgument);
  ASSERT_TRUE(f.index.Delete(0, t, 5, 0, &chain).ok());
  ASSERT_TRUE(f.index.Insert(0, t, 5, {2, 2}, 0, &chain).ok());
  auto r = f.index.Lookup(0, 5);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(**r, (RecordId{2, 2}));
}

TEST(HashIndexTest, ManyKeysAndCollisions) {
  Fx f;
  Lsn chain = kInvalidLsn;
  TxnId t = MakeTxnId(0, 1);
  for (uint64_t k = 1; k <= 200; ++k) {
    ASSERT_TRUE(
        f.index.Insert(0, t, k, {1, uint16_t(k)}, 0, &chain).ok())
        << k;
  }
  for (uint64_t k = 1; k <= 200; ++k) {
    auto r = f.index.Lookup(1, k);
    ASSERT_TRUE(r.ok());
    ASSERT_TRUE(r->has_value()) << k;
    EXPECT_EQ((*r)->slot, uint16_t(k));
  }
  auto snap = f.index.Snapshot();
  ASSERT_TRUE(snap.ok());
  EXPECT_EQ(snap->size(), 200u);
}

TEST(HashIndexTest, CommittedTombstonePurgeUnderPressure) {
  Fx f;
  Lsn chain = kInvalidLsn;
  TxnId t = MakeTxnId(0, 1);
  // Fill and delete (committed: tag 0) repeatedly; reuse must keep
  // succeeding thanks to tombstone purging.
  for (int round = 0; round < 6; ++round) {
    for (uint64_t k = 1; k <= 200; ++k) {
      ASSERT_TRUE(f.index.Insert(0, t, round * 1000 + k, {1, 1}, 0, &chain)
                      .ok())
          << "round " << round << " key " << k;
    }
    for (uint64_t k = 1; k <= 200; ++k) {
      ASSERT_TRUE(f.index.Delete(0, t, round * 1000 + k, 0, &chain).ok());
    }
  }
  EXPECT_GT(f.index.stats().purged_tombstones, 0u);
}

TEST(HashIndexTest, UncommittedTombstoneNotReclaimed) {
  Fx f;
  Lsn chain = kInvalidLsn;
  TxnId t = MakeTxnId(2, 1);
  ASSERT_TRUE(f.index.Insert(0, t, 9, {1, 1}, 0, &chain).ok());
  // Tagged (uncommitted) delete: space must not be purged.
  ASSERT_TRUE(f.index.Delete(2, t, 9, /*tag=*/3, &chain).ok());
  auto snap = f.index.Snapshot();
  ASSERT_TRUE(snap.ok());
  ASSERT_EQ(snap->size(), 1u);
  EXPECT_EQ((*snap)[0].state, HashIndex::EntryState::kTombstone);
  EXPECT_EQ((*snap)[0].tag, 3);
}

TEST(HashIndexTest, CrashRecoveryRedoAndUndo) {
  Fx f;
  Lsn chain = kInvalidLsn;
  // Committed groundwork by a node-3 txn, snapshot taken afterwards? No:
  // snapshot FIRST, so recovery must redo from logs.
  ASSERT_TRUE(f.index.CheckpointToStable(0).ok());
  TxnId tc = MakeTxnId(3, 1);
  ASSERT_TRUE(f.index.Insert(3, tc, 100, {5, 5}, 0, &chain).ok());
  ASSERT_TRUE(f.log.Force(3, 3).ok());  // committed: records stable

  // Active txn on node 1: insert + logical delete, tagged.
  TxnId ta = MakeTxnId(1, 2);
  ASSERT_TRUE(f.index.Insert(1, ta, 200, {6, 6}, /*tag=*/2, &chain).ok());
  ASSERT_TRUE(f.index.Delete(1, ta, 100, /*tag=*/2, &chain).ok());

  // Survivor's active insert on node 0.
  TxnId ts = MakeTxnId(0, 3);
  ASSERT_TRUE(f.index.Insert(0, ts, 300, {7, 7}, /*tag=*/1, &chain).ok());

  f.machine.CrashNode(1);
  ASSERT_TRUE(f.index.RecoverAfterCrash(0, {1}, {ta, ts}).ok());

  // Crashed txn's insert removed, its delete unmarked; committed and
  // surviving entries intact.
  auto l100 = f.index.Lookup(0, 100);
  ASSERT_TRUE(l100.ok());
  EXPECT_TRUE(l100->has_value()) << "crashed delete not unmarked";
  auto l200 = f.index.Lookup(0, 200);
  ASSERT_TRUE(l200.ok());
  EXPECT_FALSE(l200->has_value()) << "crashed insert not removed";
  auto l300 = f.index.Lookup(0, 300);
  ASSERT_TRUE(l300.ok());
  EXPECT_TRUE(l300->has_value()) << "survivor's insert lost";
}

TEST(HashIndexTest, RandomizedCrashAgainstShadow) {
  Rng rng(314159);
  for (int round = 0; round < 4; ++round) {
    Fx f;
    ASSERT_TRUE(f.index.CheckpointToStable(0).ok());
    Lsn chain = kInvalidLsn;
    // Shadow of committed state; per-node one active txn with its own ops.
    std::map<uint64_t, RecordId> committed;
    std::map<uint64_t, std::pair<bool, RecordId>> active;  // by node 1
    TxnId active_txn = MakeTxnId(1, 900 + round);

    for (int op = 0; op < 300; ++op) {
      uint64_t key = rng.Range(1, 120);
      NodeId node = static_cast<NodeId>(rng.Uniform(4));
      bool is_active_txn = node == 1;
      TxnId txn = is_active_txn ? active_txn
                                : MakeTxnId(node, 1000 + op);
      uint8_t tag = is_active_txn ? 2 : 0;
      if (active.contains(key) && !is_active_txn) continue;  // "locked"
      if (rng.Bernoulli(0.6)) {
        RecordId rid{uint32_t(op + 1), uint16_t(key)};
        Status s = f.index.Insert(node, txn, key, rid, tag, &chain);
        if (s.ok()) {
          if (is_active_txn) {
            active[key] = {true, rid};
          } else {
            committed[key] = rid;
            (void)f.log.Force(node, node);  // "commit"
          }
        }
      } else {
        Status s = f.index.Delete(node, txn, key, tag, &chain);
        if (s.ok()) {
          if (is_active_txn) {
            active[key] = {false, {}};
          } else {
            committed.erase(key);
            (void)f.log.Force(node, node);
          }
        }
      }
    }
    f.machine.CrashNode(1);
    ASSERT_TRUE(f.index.RecoverAfterCrash(0, {1}, {active_txn}).ok());
    // Post-recovery visible state must equal the committed shadow.
    for (uint64_t key = 1; key <= 120; ++key) {
      auto r = f.index.Lookup(0, key);
      ASSERT_TRUE(r.ok());
      auto it = committed.find(key);
      if (it == committed.end()) {
        EXPECT_FALSE(r->has_value()) << "round " << round << " key " << key;
      } else {
        ASSERT_TRUE(r->has_value()) << "round " << round << " key " << key;
        EXPECT_EQ(**r, it->second) << "round " << round << " key " << key;
      }
    }
  }
}

}  // namespace
}  // namespace smdb
