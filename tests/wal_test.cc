// Unit tests for the WAL layer: per-node logs with volatile tails, forces,
// crash destruction, checkpoints, and the log record taxonomy.

#include <gtest/gtest.h>

#include "core/database.h"
#include "core/ifa_checker.h"
#include "core/recovery_manager.h"
#include "wal/checkpoint.h"

namespace smdb {
namespace {

struct WalFixture {
  WalFixture() : machine(MakeCfg()), stable(4), log(&machine, &stable) {}
  static MachineConfig MakeCfg() {
    MachineConfig c;
    c.num_nodes = 4;
    return c;
  }
  LogRecord Update(TxnId txn, RecordId rid, uint64_t usn) {
    LogRecord rec;
    rec.type = LogRecordType::kUpdate;
    rec.txn = txn;
    UpdatePayload u;
    u.rid = rid;
    u.usn = usn;
    u.before.assign(4, 0);
    u.after.assign(4, 1);
    rec.payload = std::move(u);
    return rec;
  }
  Machine machine;
  StableLogStore stable;
  LogManager log;
};

TEST(LogManagerTest, AppendAssignsMonotonicLsns) {
  WalFixture f;
  TxnId t = MakeTxnId(0, 1);
  EXPECT_EQ(f.log.Append(0, f.Update(t, {1, 0}, 1)), 1u);
  EXPECT_EQ(f.log.Append(0, f.Update(t, {1, 1}, 2)), 2u);
  EXPECT_EQ(f.log.Append(1, f.Update(t, {1, 2}, 3)), 1u);  // per-node LSNs
  EXPECT_EQ(f.log.TailSize(0), 2u);
  EXPECT_EQ(f.log.stable_lsn(0), kInvalidLsn);
}

TEST(LogManagerTest, ForceMovesTailToStable) {
  WalFixture f;
  TxnId t = MakeTxnId(0, 1);
  f.log.Append(0, f.Update(t, {1, 0}, 1));
  f.log.Append(0, f.Update(t, {1, 1}, 2));
  ASSERT_TRUE(f.log.Force(0, 0).ok());
  EXPECT_EQ(f.log.TailSize(0), 0u);
  EXPECT_EQ(f.log.stable_lsn(0), 2u);
  EXPECT_TRUE(f.log.IsStable(0, 2));
  EXPECT_FALSE(f.log.IsStable(0, 3));
  EXPECT_EQ(f.stable.Records(0).size(), 2u);
}

TEST(LogManagerTest, ForceChargesRequestor) {
  WalFixture f;
  f.log.Append(2, f.Update(MakeTxnId(2, 1), {1, 0}, 1));
  SimTime t0 = f.machine.NodeClock(0);
  ASSERT_TRUE(f.log.Force(0, 2).ok());
  EXPECT_EQ(f.machine.NodeClock(0),
            t0 + f.machine.config().timing.log_force_ns);
}

TEST(LogManagerTest, NvramForceIsCheap) {
  MachineConfig c;
  c.num_nodes = 2;
  c.nvram_log = true;
  Machine m(c);
  StableLogStore stable(2);
  LogManager log(&m, &stable);
  LogRecord rec;
  rec.type = LogRecordType::kBegin;
  rec.txn = MakeTxnId(0, 1);
  rec.payload = BeginPayload{};
  log.Append(0, std::move(rec));
  SimTime t0 = m.NodeClock(0);
  ASSERT_TRUE(log.Force(0, 0).ok());
  EXPECT_EQ(m.NodeClock(0), t0 + c.timing.nvram_force_ns);
}

TEST(LogManagerTest, EmptyForceIsFreeButCounted) {
  WalFixture f;
  SimTime t0 = f.machine.NodeClock(0);
  ASSERT_TRUE(f.log.Force(0, 0).ok());
  // No records moved: no I/O time charged, no force counted.
  EXPECT_EQ(f.machine.NodeClock(0), t0);
  EXPECT_EQ(f.log.stats().forces, 0u);
  EXPECT_EQ(f.log.stats().forced_records, 0u);
}

TEST(LogManagerTest, ForceBatchAccounting) {
  WalFixture f;
  TxnId t = MakeTxnId(0, 1);
  f.log.Append(0, f.Update(t, {1, 0}, 1));
  ASSERT_TRUE(f.log.Force(0, 0).ok());
  for (uint64_t u = 2; u <= 6; ++u) {
    f.log.Append(0, f.Update(t, {1, 0}, u));
  }
  ASSERT_TRUE(f.log.Force(0, 0).ok());
  const LogStats& s = f.log.stats();
  EXPECT_EQ(s.forces, 2u);
  EXPECT_EQ(s.forced_records, 6u);
  // Every force makes at least one record durable.
  EXPECT_LE(s.forces, s.forced_records);
  EXPECT_EQ(s.max_force_batch(), 5u);
  EXPECT_EQ(s.force_batch_bucket(LogStats::BatchBucket(1)), 1u);
  EXPECT_EQ(s.force_batch_bucket(LogStats::BatchBucket(5)), 1u);
}

TEST(LogManagerTest, BatchBucketsCoverPowersOfTwo) {
  EXPECT_EQ(LogStats::BatchBucket(1), 0u);
  EXPECT_EQ(LogStats::BatchBucket(2), 1u);
  EXPECT_EQ(LogStats::BatchBucket(3), 2u);
  EXPECT_EQ(LogStats::BatchBucket(4), 2u);
  EXPECT_EQ(LogStats::BatchBucket(5), 3u);
  EXPECT_EQ(LogStats::BatchBucket(8), 3u);
  EXPECT_EQ(LogStats::BatchBucket(64), 6u);
  EXPECT_EQ(LogStats::BatchBucket(65), 7u);
  EXPECT_EQ(LogStats::BatchBucket(100000), 7u);
  EXPECT_STREQ(LogStats::BatchBucketLabel(0), "1");
  EXPECT_STREQ(LogStats::BatchBucketLabel(7), "65+");
}

TEST(LogManagerTest, CrashDestroysVolatileTailOnly) {
  WalFixture f;
  TxnId t = MakeTxnId(1, 1);
  f.log.Append(1, f.Update(t, {1, 0}, 1));
  ASSERT_TRUE(f.log.Force(1, 1).ok());
  f.log.Append(1, f.Update(t, {1, 1}, 2));
  f.log.OnNodeCrash(1);
  EXPECT_EQ(f.log.TailSize(1), 0u);
  EXPECT_EQ(f.log.stable_lsn(1), 1u);  // durable prefix survives
  int stable_count = 0;
  f.log.ForEachStable(1, [&](const LogRecord&) { ++stable_count; });
  EXPECT_EQ(stable_count, 1);
}

TEST(LogManagerTest, CannotForceCrashedNodesLog) {
  WalFixture f;
  f.machine.CrashNode(2);
  EXPECT_TRUE(f.log.Force(0, 2).IsNodeFailed());
}

TEST(LogManagerTest, ForceHooksFire) {
  WalFixture f;
  NodeId forced = kInvalidNode;
  f.log.AddForceHook([&](NodeId n) { forced = n; });
  ASSERT_TRUE(f.log.Force(0, 3).ok());
  EXPECT_EQ(forced, 3);
}

TEST(LogManagerTest, ForEachAllCoversStableAndVolatile) {
  WalFixture f;
  TxnId t = MakeTxnId(0, 1);
  f.log.Append(0, f.Update(t, {1, 0}, 1));
  ASSERT_TRUE(f.log.Force(0, 0).ok());
  f.log.Append(0, f.Update(t, {1, 1}, 2));
  std::vector<Lsn> seen;
  f.log.ForEachAll(0, [&](const LogRecord& r) { seen.push_back(r.lsn); });
  EXPECT_EQ(seen, (std::vector<Lsn>{1, 2}));
}

TEST(LogRecordTest, ToStringVariants) {
  LogRecord rec;
  rec.type = LogRecordType::kUpdate;
  rec.txn = MakeTxnId(2, 9);
  rec.node = 2;
  rec.lsn = 4;
  UpdatePayload u;
  u.rid = {3, 7};
  u.usn = 12;
  u.is_clr = true;
  rec.payload = std::move(u);
  std::string s = rec.ToString();
  EXPECT_NE(s.find("UPDATE"), std::string::npos);
  EXPECT_NE(s.find("CLR"), std::string::npos);
  EXPECT_NE(s.find("p3.s7"), std::string::npos);

  LogRecord lk;
  lk.type = LogRecordType::kLockOp;
  lk.txn = MakeTxnId(0, 1);
  lk.payload = LockOpPayload{42, LockMode::kShared, LockOpPayload::Op::kQueue};
  EXPECT_NE(lk.ToString().find("LOCKOP"), std::string::npos);
}

TEST(LockModeTest, CompatibilityMatrix) {
  EXPECT_TRUE(Compatible(LockMode::kNone, LockMode::kExclusive));
  EXPECT_TRUE(Compatible(LockMode::kShared, LockMode::kShared));
  EXPECT_FALSE(Compatible(LockMode::kShared, LockMode::kExclusive));
  EXPECT_FALSE(Compatible(LockMode::kExclusive, LockMode::kShared));
  EXPECT_FALSE(Compatible(LockMode::kExclusive, LockMode::kExclusive));
}

TEST(CheckpointTest, AdvancesReplayStartAndFlushes) {
  DatabaseConfig c;
  c.machine.num_nodes = 3;
  Database db(c);
  auto table = db.CreateTable(8);
  ASSERT_TRUE(table.ok());

  Transaction* t = db.txn().Begin(1);
  ASSERT_TRUE(db.txn().Update(t, (*table)[0],
                              std::vector<uint8_t>(22, 3)).ok());
  ASSERT_TRUE(db.txn().Commit(t).ok());
  EXPECT_TRUE(db.buffers().IsDirty((*table)[0].page));  // no-force!

  ASSERT_TRUE(db.Checkpoint(0).ok());
  EXPECT_FALSE(db.buffers().IsDirty((*table)[0].page));
  for (NodeId n = 0; n < 3; ++n) {
    EXPECT_NE(db.log().checkpoint_lsn(n), kInvalidLsn);
    EXPECT_EQ(db.log().TailSize(n), 0u);
  }
  // The stable database now reflects the committed update.
  std::vector<uint8_t> img;
  ASSERT_TRUE(db.buffers().ReadStableImage(0, (*table)[0].page, &img).ok());
  EXPECT_EQ(db.records().DecodeStableSlot(img, 0).data,
            std::vector<uint8_t>(22, 3));
}

TEST(LogTruncationTest, DropsPrefixKeepsLsnNumbering) {
  WalFixture f;
  TxnId t = MakeTxnId(0, 1);
  for (int i = 0; i < 5; ++i) {
    f.log.Append(0, f.Update(t, {1, uint16_t(i)}, i + 1));
  }
  ASSERT_TRUE(f.log.Force(0, 0).ok());
  EXPECT_EQ(f.log.TruncateThrough(0, 3), 3u);
  std::vector<Lsn> kept;
  f.log.ForEachStable(0, [&](const LogRecord& r) { kept.push_back(r.lsn); });
  EXPECT_EQ(kept, (std::vector<Lsn>{4, 5}));
  // Appends continue with the old numbering.
  EXPECT_EQ(f.log.Append(0, f.Update(t, {1, 9}, 9)), 6u);
}

TEST(LogTruncationTest, CheckpointTruncatesBehindOldestActive) {
  DatabaseConfig c;
  c.machine.num_nodes = 2;
  Database db(c);
  auto table = db.CreateTable(8);
  ASSERT_TRUE(table.ok());

  // A long-running transaction pins the truncation point.
  Transaction* old_txn = db.txn().Begin(0);
  ASSERT_TRUE(db.txn().Update(old_txn, (*table)[0],
                              std::vector<uint8_t>(22, 1)).ok());
  for (int i = 0; i < 5; ++i) {
    Transaction* t = db.txn().Begin(0);
    ASSERT_TRUE(db.txn().Update(t, (*table)[1 + i],
                                std::vector<uint8_t>(22, 2)).ok());
    ASSERT_TRUE(db.txn().Commit(t).ok());
  }
  ASSERT_TRUE(db.Checkpoint(0).ok());
  // old_txn's records (its Begin onward) must survive the truncation so a
  // voluntary abort still works.
  ASSERT_TRUE(db.txn().Abort(old_txn).ok());
  auto slot = db.records().SnoopSlot((*table)[0]);
  ASSERT_TRUE(slot.ok());
  EXPECT_EQ(slot->data, std::vector<uint8_t>(22, 0));

  // Without active transactions the checkpoint reclaims the whole prefix.
  uint64_t before = db.log().stats().truncated_records;
  ASSERT_TRUE(db.Checkpoint(0).ok());
  EXPECT_GT(db.log().stats().truncated_records, before);
}

TEST(LogTruncationTest, RecoveryWorksAfterTruncation) {
  DatabaseConfig c;
  c.machine.num_nodes = 4;
  c.recovery = RecoveryConfig::VolatileSelectiveRedo();
  Database db(c);
  IfaChecker checker(&db);
  db.txn().AddObserver(&checker);
  auto table = db.CreateTable(16);
  ASSERT_TRUE(table.ok());
  checker.RegisterTable(*table);
  // Several generations of work + checkpoints (each truncates), then a
  // crash with in-flight work.
  for (int gen = 0; gen < 3; ++gen) {
    for (int i = 0; i < 4; ++i) {
      Transaction* t = db.txn().Begin(static_cast<NodeId>(i));
      ASSERT_TRUE(db.txn()
                      .Update(t, (*table)[gen * 4 + i],
                              std::vector<uint8_t>(22, uint8_t(gen + 1)))
                      .ok());
      ASSERT_TRUE(db.txn().Commit(t).ok());
    }
    ASSERT_TRUE(db.Checkpoint(0).ok());
  }
  EXPECT_GT(db.log().stats().truncated_records, 0u);
  Transaction* active = db.txn().Begin(1);
  ASSERT_TRUE(db.txn()
                  .Update(active, (*table)[15], std::vector<uint8_t>(22, 9))
                  .ok());
  auto outcome = db.Crash({1});
  ASSERT_TRUE(outcome.ok()) << outcome.status().ToString();
  EXPECT_TRUE(checker.VerifyAll().ok()) << checker.VerifyAll().ToString();
}

TEST(StableLogStoreTest, PerNodeStreams) {
  StableLogStore s(3);
  LogRecord r;
  r.lsn = 1;
  s.Append(1, {r});
  EXPECT_EQ(s.Records(0).size(), 0u);
  EXPECT_EQ(s.Records(1).size(), 1u);
  EXPECT_EQ(s.LastLsn(1), 1u);
  EXPECT_EQ(s.LastLsn(2), kInvalidLsn);
}

}  // namespace
}  // namespace smdb
