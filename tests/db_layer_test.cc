// Unit tests for the db layer: page layout, record store addressing,
// buffer manager (steal flushes, WAL gate, lost-line reinstall), WAL table.

#include <gtest/gtest.h>

#include "core/database.h"

namespace smdb {
namespace {

TEST(PageLayoutTest, Geometry) {
  PageLayout l(4096, 128, 22);
  EXPECT_EQ(l.slot_bytes(), 32u);
  EXPECT_EQ(l.slots_per_line(), 4u);
  EXPECT_EQ(l.lines_per_page(), 32u);
  EXPECT_EQ(l.slots_per_page(), 31u * 4u);
}

TEST(PageLayoutTest, SlotsNeverSpanLines) {
  PageLayout l(4096, 128, 30);  // 40-byte slots: 3 per line
  EXPECT_EQ(l.slots_per_line(), 3u);
  for (uint16_t s = 0; s < l.slots_per_page(); ++s) {
    uint32_t off = l.SlotOffset(s);
    EXPECT_EQ(off / 128, (off + l.slot_bytes() - 1) / 128)
        << "slot " << s << " spans lines";
    EXPECT_GE(off, 128u) << "slot in header line";
  }
}

TEST(PageLayoutTest, OneRecordPerLineConfig) {
  PageLayout l(4096, 128, 118);  // 128-byte slots: exactly 1 per line
  EXPECT_EQ(l.slots_per_line(), 1u);
  EXPECT_EQ(l.slots_per_page(), 31u);
}

TEST(PageLayoutTest, EncodeDecodeRoundTrip) {
  PageLayout l(4096, 128, 22);
  SlotImage img;
  img.usn = 0x123456789ABCDEF0;
  img.tag = TagForNode(5);
  img.data.assign(22, 0x5A);
  std::vector<uint8_t> buf(l.slot_bytes());
  l.EncodeSlot(img, buf.data());
  SlotImage out = l.DecodeSlotBuf(buf.data());
  EXPECT_EQ(out.usn, img.usn);
  EXPECT_EQ(out.tag, img.tag);
  EXPECT_EQ(out.data, img.data);
  EXPECT_EQ(NodeOfTag(out.tag), 5);
}

TEST(PageLayoutTest, FormatPageHeader) {
  PageLayout l(4096, 128, 22);
  auto img = l.FormatPage(77);
  EXPECT_EQ(PageLayout::PageLsnOf(img), 0u);
  uint32_t magic;
  memcpy(&magic, img.data(), 4);
  EXPECT_EQ(magic, PageLayout::kMagic);
  SlotImage s = l.DecodeSlot(img, 0);
  EXPECT_EQ(s.usn, 0u);
  EXPECT_EQ(s.tag, kTagNone);
}

struct DbFixture {
  DbFixture() : db(MakeCfg()) {
    auto t = db.CreateTable(200);
    EXPECT_TRUE(t.ok());
    table = *t;
  }
  static DatabaseConfig MakeCfg() {
    DatabaseConfig c;
    c.machine.num_nodes = 4;
    return c;
  }
  Database db;
  std::vector<RecordId> table;
};

TEST(RecordStoreTest, TableSpansPages) {
  DbFixture f;
  EXPECT_EQ(f.table.size(), 200u);
  // 124 slots per page -> two pages.
  EXPECT_EQ(f.db.records().pages().size(), 2u);
  EXPECT_NE(f.table.front().page, f.table.back().page);
}

TEST(RecordStoreTest, SlotLineResolution) {
  DbFixture f;
  RecordId r0 = f.table[0];
  RecordId r3 = f.table[3];
  RecordId r4 = f.table[4];
  // 4 slots per line: slots 0..3 share a line, slot 4 starts the next.
  EXPECT_EQ(f.db.records().SlotLine(r0), f.db.records().SlotLine(r3));
  EXPECT_NE(f.db.records().SlotLine(r0), f.db.records().SlotLine(r4));
  // Header line is distinct from all slot lines.
  EXPECT_NE(f.db.records().HeaderLine(r0.page), f.db.records().SlotLine(r0));
}

TEST(RecordStoreTest, SlotsInLineInverse) {
  DbFixture f;
  for (uint16_t s : {0, 3, 4, 100, 123}) {
    RecordId rid{f.table[0].page, s};
    auto rids = f.db.records().SlotsInLine(f.db.records().SlotLine(rid));
    EXPECT_EQ(rids.size(), 4u);
    EXPECT_NE(std::find(rids.begin(), rids.end(), rid), rids.end());
  }
  // A non-table line resolves to nothing.
  EXPECT_TRUE(f.db.records().SlotsInLine(1u << 30).empty());
}

TEST(RecordStoreTest, WriteReadSlot) {
  DbFixture f;
  SlotImage img;
  img.usn = 9;
  img.tag = TagForNode(2);
  img.data.assign(22, 0xCD);
  ASSERT_TRUE(f.db.records().WriteSlot(1, f.table[10], img).ok());
  auto out = f.db.records().ReadSlot(3, f.table[10]);
  ASSERT_TRUE(out.ok());
  EXPECT_EQ(out->usn, 9u);
  EXPECT_EQ(out->tag, TagForNode(2));
  EXPECT_EQ(out->data, img.data);
  // WriteTag updates only the tag.
  ASSERT_TRUE(f.db.records().WriteTag(0, f.table[10], kTagNone).ok());
  auto out2 = f.db.records().ReadSlot(0, f.table[10]);
  ASSERT_TRUE(out2.ok());
  EXPECT_EQ(out2->tag, kTagNone);
  EXPECT_EQ(out2->data, img.data);
}

TEST(BufferManagerTest, FlushAndStableImage) {
  DbFixture f;
  SlotImage img;
  img.usn = 5;
  img.tag = kTagNone;
  img.data.assign(22, 0xEE);
  ASSERT_TRUE(f.db.records().WriteSlot(0, f.table[0], img).ok());
  f.db.buffers().MarkDirty(f.table[0].page);
  ASSERT_TRUE(f.db.buffers().FlushPage(0, f.table[0].page).ok());
  std::vector<uint8_t> stable;
  ASSERT_TRUE(
      f.db.buffers().ReadStableImage(0, f.table[0].page, &stable).ok());
  SlotImage s = f.db.records().DecodeStableSlot(stable, 0);
  EXPECT_EQ(s.data, img.data);
  EXPECT_FALSE(f.db.buffers().IsDirty(f.table[0].page));
}

TEST(BufferManagerTest, WalGateForcesUpdaterLogs) {
  DbFixture f;
  // A transactional update notes (page, node, lsn) in the WAL table; the
  // flush must force node 1's log first.
  Transaction* t = f.db.txn().Begin(1);
  ASSERT_TRUE(f.db.txn().Update(t, f.table[0],
                                std::vector<uint8_t>(22, 1)).ok());
  Lsn before = f.db.log().stable_lsn(1);
  ASSERT_TRUE(f.db.buffers().FlushPage(3, f.table[0].page).ok());
  EXPECT_GT(f.db.log().stable_lsn(1), before);
  EXPECT_GE(f.db.buffers().wal_gate_forces(), 1u);
  ASSERT_TRUE(f.db.txn().Commit(t).ok());
}

TEST(BufferManagerTest, ReinstallLostLinesOnlyTouchesLost) {
  DbFixture f;
  // Flush a known value, then overwrite in memory without flushing, crash
  // nothing: ReinstallLostLines must be a no-op (no lost lines).
  auto res = f.db.buffers().ReinstallLostLines(0, f.table[0].page);
  ASSERT_TRUE(res.ok());
  EXPECT_EQ(*res, 0);
}

TEST(BufferManagerTest, ResolveAddr) {
  DbFixture f;
  auto base = f.db.buffers().BaseOf(f.table[0].page);
  ASSERT_TRUE(base.ok());
  EXPECT_EQ(f.db.buffers().ResolveAddr(*base + 100),
            std::optional<PageId>(f.table[0].page));
  EXPECT_EQ(f.db.buffers().ResolveAddr(*base + 4096),
            std::optional<PageId>(f.table[0].page + 1));
  EXPECT_FALSE(f.db.buffers().ResolveAddr(1ull << 40).has_value());
}

TEST(WalTableTest, RequirementsTrackPerNodeMax) {
  WalTable wt(4);
  wt.NoteUpdate(7, 0, 5);
  wt.NoteUpdate(7, 0, 9);
  wt.NoteUpdate(7, 2, 3);
  auto req = wt.Requirements(7);
  ASSERT_EQ(req.size(), 2u);
  EXPECT_EQ(req[0], (std::pair<NodeId, Lsn>{0, 9}));
  EXPECT_EQ(req[1], (std::pair<NodeId, Lsn>{2, 3}));
  wt.OnNodeCrash(0);
  req = wt.Requirements(7);
  ASSERT_EQ(req.size(), 1u);
  EXPECT_EQ(req[0].first, 2);
  wt.ClearPage(7);
  EXPECT_TRUE(wt.Requirements(7).empty());
}

TEST(DiskTest, ReadWriteAndCosts) {
  MachineConfig mc;
  mc.num_nodes = 2;
  Machine m(mc);
  Disk d(&m, 4096);
  std::vector<uint8_t> page(4096, 0xAB);
  SimTime t0 = m.NodeClock(0);
  ASSERT_TRUE(d.WritePage(0, 1, page).ok());
  EXPECT_EQ(m.NodeClock(0), t0 + mc.timing.disk_write_ns);
  std::vector<uint8_t> out;
  ASSERT_TRUE(d.ReadPage(1, 1, &out).ok());
  EXPECT_EQ(out, page);
  EXPECT_TRUE(d.ReadPage(0, 99, &out).IsNotFound());
  EXPECT_TRUE(d.WritePage(0, 2, std::vector<uint8_t>(100)).code() ==
              Status::Code::kInvalidArgument);
}

}  // namespace
}  // namespace smdb
