// Differential test matrix for the parallel partitioned recovery pipeline:
// N-thread recovery must be *machine-state equivalent* to serial recovery.
//
// For every sampled fuzz scenario and every protocol preset, a serial run
// (recovery_threads = 1) captures a StateDigest — stable DB bytes, coherent
// heap/index pages, lock table, transaction verdicts — right after each
// recovery. Then, per fired recovery k and per thread count W ∈ {2, 4, 8},
// the schedule re-runs with exactly recovery k at W worker streams (all
// earlier recoveries serial) and the k-th digest must match the serial
// run's bit for bit, along with the recovery outcome's logical counters.
// Digests past the parallelised recovery are not compared: CLR log
// placement is performer-dependent (performance state, like timing) and
// may legitimately steer later log forces differently.
//
// W = 1 re-runs double as a determinism check: the whole digest sequence,
// including the end-of-run digest, must be bit-identical.
//
// The matrix is sharded into four seed ranges so `ctest -j` runs them
// concurrently; together they cover 200 fuzz-style seeds x 7 protocols.

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "fuzz/fuzzer.h"

namespace smdb {
namespace {

/// Logical outcome fields that must be thread-count-invariant (everything
/// in RecoveryOutcome except recovery_time_ns, which is performance).
void ExpectSameOutcome(const RecoveryOutcome& serial,
                       const RecoveryOutcome& parallel,
                       const std::string& where) {
  EXPECT_EQ(serial.annulled, parallel.annulled) << where;
  EXPECT_EQ(serial.preserved, parallel.preserved) << where;
  EXPECT_EQ(serial.forced_aborts, parallel.forced_aborts) << where;
  EXPECT_EQ(serial.redo_applied, parallel.redo_applied) << where;
  EXPECT_EQ(serial.redo_skipped, parallel.redo_skipped) << where;
  EXPECT_EQ(serial.undo_applied, parallel.undo_applied) << where;
  EXPECT_EQ(serial.tag_undos, parallel.tag_undos) << where;
  EXPECT_EQ(serial.pages_reloaded, parallel.pages_reloaded) << where;
  EXPECT_EQ(serial.lines_reinstalled, parallel.lines_reinstalled) << where;
  EXPECT_EQ(serial.lcbs_rebuilt, parallel.lcbs_rebuilt) << where;
  EXPECT_EQ(serial.locks_dropped, parallel.locks_dropped) << where;
  EXPECT_EQ(serial.whole_machine_restart, parallel.whole_machine_restart)
      << where;
}

void RunSeedRange(uint64_t begin, uint64_t end) {
  const std::vector<RecoveryConfig> protocols =
      CrashScheduleFuzzer::DefaultProtocols();
  size_t parallel_runs = 0;
  for (uint64_t seed = begin; seed < end; ++seed) {
    FuzzCase fc = SampleFuzzCase(seed);
    for (const RecoveryConfig& rc : protocols) {
      std::string ctx_base =
          "seed " + std::to_string(seed) + " protocol " + rc.Name();
      HarnessConfig base = MakeHarnessConfig(fc, rc);
      base.capture_digests = true;

      Harness hs(base);
      auto serial = hs.Run();
      ASSERT_TRUE(serial.ok()) << ctx_base << ": " << serial.status().ToString();
      ASSERT_TRUE(serial->verify_status.ok())
          << ctx_base << ": " << serial->verify_status.ToString();

      // W = 1: full determinism — every digest, including the final one.
      {
        Harness h1(base);
        auto rerun = h1.Run();
        ASSERT_TRUE(rerun.ok()) << ctx_base;
        ASSERT_EQ(rerun->digests.size(), serial->digests.size()) << ctx_base;
        for (size_t i = 0; i < serial->digests.size(); ++i) {
          ASSERT_EQ(rerun->digests[i], serial->digests[i])
              << ctx_base << " digest " << i << " not deterministic";
        }
      }

      for (uint32_t w : {2u, 4u, 8u}) {
        for (size_t k = 0; k < serial->recoveries.size(); ++k) {
          std::string where = ctx_base + " W=" + std::to_string(w) +
                              " recovery #" + std::to_string(k);
          HarnessConfig cfg = base;
          cfg.recovery_thread_overrides.assign(k + 1, 1u);
          cfg.recovery_thread_overrides[k] = w;
          Harness hp(cfg);
          auto report = hp.Run();
          ASSERT_TRUE(report.ok())
              << where << ": " << report.status().ToString();
          EXPECT_TRUE(report->verify_status.ok())
              << where << ": " << report->verify_status.ToString();
          ASSERT_GT(report->recoveries.size(), k) << where;
          ASSERT_GT(report->digests.size(), k) << where;
          ASSERT_EQ(report->digests[k], serial->digests[k])
              << where << "\n  serial:   " << serial->digests[k].ToString()
              << "\n  parallel: " << report->digests[k].ToString();
          ExpectSameOutcome(serial->recoveries[k], report->recoveries[k],
                            where);
          ++parallel_runs;
        }
      }
    }
  }
  // The shard must actually exercise parallel recoveries — a sampler
  // regression that stops firing crashes would otherwise pass vacuously.
  EXPECT_GT(parallel_runs, 0u);
}

TEST(RecoveryEquivalence, SeedsShard0) { RunSeedRange(0, 50); }
TEST(RecoveryEquivalence, SeedsShard1) { RunSeedRange(50, 100); }
TEST(RecoveryEquivalence, SeedsShard2) { RunSeedRange(100, 150); }
TEST(RecoveryEquivalence, SeedsShard3) { RunSeedRange(150, 200); }

// The fuzzer-integrated differential (Options::recovery_threads) must see
// the same clean matrix — this is the path `smdb_fuzz --recovery-threads`
// and its shrinker use.
TEST(RecoveryEquivalence, FuzzerDifferentialPathIsClean) {
  CrashScheduleFuzzer::Options opts;
  opts.recovery_threads = 4;
  CrashScheduleFuzzer fuzzer(opts);
  for (uint64_t seed = 200; seed < 212; ++seed) {
    auto failure = fuzzer.RunSeed(seed);
    ASSERT_FALSE(failure.has_value())
        << "seed " << seed << " under " << failure->protocol.Name() << ": ["
        << failure->verdict.kind << "] " << failure->verdict.detail;
  }
}

// Sweeping more worker streams than the machine has survivors (or nodes)
// must degrade gracefully to sharing performers, never crash or diverge.
TEST(RecoveryEquivalence, MoreThreadsThanSurvivors) {
  FuzzCase fc = SampleFuzzCase(3);
  RecoveryConfig rc = RecoveryConfig::VolatileRedoAll();
  HarnessConfig base = MakeHarnessConfig(fc, rc);
  base.capture_digests = true;
  Harness hs(base);
  auto serial = hs.Run();
  ASSERT_TRUE(serial.ok());
  for (size_t k = 0; k < serial->recoveries.size(); ++k) {
    HarnessConfig cfg = base;
    cfg.recovery_thread_overrides.assign(k + 1, 1u);
    cfg.recovery_thread_overrides[k] = 32;  // >> num_nodes
    Harness hp(cfg);
    auto report = hp.Run();
    ASSERT_TRUE(report.ok()) << report.status().ToString();
    ASSERT_GT(report->digests.size(), k);
    EXPECT_EQ(report->digests[k], serial->digests[k]);
  }
}

}  // namespace
}  // namespace smdb
