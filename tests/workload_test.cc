// Tests for the workload generator and the harness plumbing.

#include <gtest/gtest.h>

#include "workload/harness.h"

namespace smdb {
namespace {

std::vector<RecordId> FakeTable(size_t n) {
  std::vector<RecordId> t;
  for (size_t i = 0; i < n; ++i) {
    t.push_back(RecordId{PageId(2 + i / 124), uint16_t(i % 124)});
  }
  return t;
}

TEST(WorkloadTest, DeterministicForSeed) {
  WorkloadSpec spec;
  spec.txns_per_node = 5;
  spec.ops_per_txn = 4;
  spec.seed = 99;
  auto table = FakeTable(64);
  WorkloadGenerator g1(spec, table, 4, 22);
  WorkloadGenerator g2(spec, table, 4, 22);
  auto a = g1.Generate();
  auto b = g2.Generate();
  ASSERT_EQ(a.size(), b.size());
  for (size_t n = 0; n < a.size(); ++n) {
    ASSERT_EQ(a[n].size(), b[n].size());
    for (size_t t = 0; t < a[n].size(); ++t) {
      ASSERT_EQ(a[n][t].ops.size(), b[n][t].ops.size());
      for (size_t o = 0; o < a[n][t].ops.size(); ++o) {
        EXPECT_EQ(a[n][t].ops[o].kind, b[n][t].ops[o].kind);
        EXPECT_EQ(a[n][t].ops[o].rid, b[n][t].ops[o].rid);
        EXPECT_EQ(a[n][t].ops[o].key, b[n][t].ops[o].key);
        EXPECT_EQ(a[n][t].ops[o].value, b[n][t].ops[o].value);
      }
    }
  }
}

TEST(WorkloadTest, ShapeMatchesSpec) {
  WorkloadSpec spec;
  spec.txns_per_node = 7;
  spec.ops_per_txn = 5;
  spec.write_ratio = 1.0;
  spec.index_op_ratio = 0.0;
  spec.dirty_read_ratio = 0.0;
  spec.voluntary_abort_ratio = 0.0;
  WorkloadGenerator gen(spec, FakeTable(32), 3, 22);
  auto scripts = gen.Generate();
  ASSERT_EQ(scripts.size(), 3u);
  for (const auto& node_scripts : scripts) {
    ASSERT_EQ(node_scripts.size(), 7u);
    for (const auto& s : node_scripts) {
      ASSERT_EQ(s.ops.size(), 6u);  // 5 ops + commit
      for (size_t i = 0; i < 5; ++i) {
        EXPECT_EQ(s.ops[i].kind, Op::Kind::kUpdate);
        EXPECT_EQ(s.ops[i].value.size(), 22u);
      }
      EXPECT_EQ(s.ops.back().kind, Op::Kind::kCommit);
    }
  }
}

TEST(WorkloadTest, VoluntaryAbortRatio) {
  WorkloadSpec spec;
  spec.txns_per_node = 200;
  spec.ops_per_txn = 1;
  spec.voluntary_abort_ratio = 0.5;
  WorkloadGenerator gen(spec, FakeTable(8), 1, 22);
  auto scripts = gen.Generate();
  int aborts = 0;
  for (const auto& s : scripts[0]) {
    if (s.ops.back().kind == Op::Kind::kAbort) ++aborts;
  }
  EXPECT_GT(aborts, 60);
  EXPECT_LT(aborts, 140);
}

TEST(WorkloadTest, PartitionedPicksStayInPartition) {
  WorkloadSpec spec;
  spec.txns_per_node = 20;
  spec.ops_per_txn = 8;
  spec.write_ratio = 1.0;
  spec.shared_fraction = 0.0;  // fully partitioned
  auto table = FakeTable(40);  // 10 records per node
  WorkloadGenerator gen(spec, table, 4, 22);
  auto scripts = gen.Generate();
  for (NodeId n = 0; n < 4; ++n) {
    for (const auto& s : scripts[n]) {
      for (const auto& op : s.ops) {
        if (op.kind != Op::Kind::kUpdate) continue;
        // Record must come from node n's slice [10n, 10n+10).
        size_t idx = 0;
        for (; idx < table.size(); ++idx) {
          if (table[idx] == op.rid) break;
        }
        EXPECT_GE(idx, size_t(n) * 10);
        EXPECT_LT(idx, size_t(n + 1) * 10);
      }
    }
  }
}

TEST(HarnessTest, ReportAccounting) {
  HarnessConfig cfg;
  cfg.db.machine.num_nodes = 3;
  cfg.db.recovery = RecoveryConfig::VolatileSelectiveRedo();
  cfg.num_records = 48;
  cfg.workload.txns_per_node = 6;
  cfg.workload.ops_per_txn = 4;
  cfg.workload.seed = 5;
  Harness h(cfg);
  auto r = h.Run();
  ASSERT_TRUE(r.ok());
  EXPECT_TRUE(r->verify_status.ok());
  EXPECT_EQ(r->exec.committed + r->exec.aborted_other, 18u);
  EXPECT_GT(r->steps, 18u * 4u);
  EXPECT_GT(r->total_time_ns, 0u);
  EXPECT_GT(r->throughput_tps(), 0.0);
  EXPECT_EQ(r->recoveries.size(), 0u);
  EXPECT_EQ(r->unnecessary_aborts(), 0u);
}

TEST(HarnessTest, CrashPlanSkipsDeadNodes) {
  HarnessConfig cfg;
  cfg.db.machine.num_nodes = 3;
  cfg.db.recovery = RecoveryConfig::VolatileSelectiveRedo();
  cfg.num_records = 48;
  cfg.workload.txns_per_node = 20;
  cfg.workload.seed = 6;
  // Crash node 1 twice without restarting: second plan is a no-op.
  cfg.crashes = {CrashPlan{20, {1}, false}, CrashPlan{60, {1}, false}};
  Harness h(cfg);
  auto r = h.Run();
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  EXPECT_TRUE(r->verify_status.ok()) << r->verify_status.ToString();
  EXPECT_EQ(r->recoveries.size(), 1u);
}

// Regression: extreme hot-spot contention overflowing LCB waiter lists
// must degrade gracefully (retry) rather than livelock the executors.
TEST(HarnessTest, HotspotContentionTerminates) {
  HarnessConfig cfg;
  cfg.db.machine.num_nodes = 16;
  cfg.db.recovery = RecoveryConfig::VolatileSelectiveRedo();
  cfg.num_records = 512;
  cfg.workload.txns_per_node = 8;
  cfg.workload.ops_per_txn = 6;
  cfg.workload.write_ratio = 0.6;
  cfg.workload.zipf_theta = 0.9;  // few records take all the traffic
  cfg.workload.seed = 20260704;
  cfg.seed = 1337;
  cfg.max_steps = 300000;
  Harness h(cfg);
  auto r = h.Run();
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  EXPECT_TRUE(r->verify_status.ok()) << r->verify_status.ToString();
  EXPECT_LT(r->steps, cfg.max_steps) << "executors did not quiesce";
  EXPECT_GT(r->exec.committed, 0u);
}

TEST(HarnessTest, StealAndCheckpointKeepConsistency) {
  HarnessConfig cfg;
  cfg.db.machine.num_nodes = 4;
  cfg.db.recovery = RecoveryConfig::VolatileRedoAll();
  cfg.num_records = 64;
  cfg.workload.txns_per_node = 20;
  cfg.workload.seed = 8;
  cfg.steal_flush_prob = 0.2;  // aggressive stealing
  cfg.checkpoint_every_steps = 50;
  cfg.crashes = {CrashPlan{120, {2}, false}};
  Harness h(cfg);
  auto r = h.Run();
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  EXPECT_TRUE(r->verify_status.ok()) << r->verify_status.ToString();
  EXPECT_GT(h.db().buffers().steal_flushes(), 0u);
}

}  // namespace
}  // namespace smdb
