// Soak test: many randomized configurations (protocol, machine size,
// record geometry, workload mix, crash schedule) each run end to end and
// verified against the IFA oracle. Catches interaction bugs that the
// targeted tests do not enumerate.

#include <gtest/gtest.h>

#include "common/rng.h"
#include "workload/harness.h"

namespace smdb {
namespace {

RecoveryConfig PickProtocol(Rng& rng) {
  switch (rng.Uniform(6)) {
    case 0: return RecoveryConfig::VolatileSelectiveRedo();
    case 1: return RecoveryConfig::VolatileRedoAll();
    case 2: return RecoveryConfig::StableEagerRedoAll();
    case 3: return RecoveryConfig::StableTriggeredSelectiveRedo();
    case 4: return RecoveryConfig::BaselineAbortDependents();
    default: return RecoveryConfig::BaselineRebootAll();
  }
}

void RunRandomRounds(Rng& meta, int rounds, uint32_t execution_threads) {
  for (int round = 0; round < rounds; ++round) {
    HarnessConfig cfg;
    cfg.exec.execution_threads = execution_threads;
    RecoveryConfig rc = PickProtocol(meta);
    cfg.db.recovery = rc;
    cfg.db.machine.num_nodes = static_cast<uint16_t>(meta.Range(2, 12));
    if (meta.Bernoulli(0.2)) {
      cfg.db.machine.coherence = CoherenceKind::kWriteBroadcast;
    }
    // Record geometry: 1, 2, 4 or 8 records per 128-byte line.
    uint16_t sizes[] = {118, 54, 22, 6};
    cfg.db.record_data_size = sizes[meta.Uniform(4)];
    cfg.db.lock_table.two_line_lcb = meta.Bernoulli(0.3);
    cfg.num_records = 32 + meta.Uniform(200);
    cfg.workload.txns_per_node = 4 + meta.Uniform(12);
    cfg.workload.ops_per_txn = 2 + meta.Uniform(8);
    cfg.workload.write_ratio = meta.NextDouble();
    cfg.workload.index_op_ratio = meta.Bernoulli(0.5) ? 0.2 : 0.0;
    cfg.workload.dirty_read_ratio = meta.Bernoulli(0.3) ? 0.1 : 0.0;
    cfg.workload.zipf_theta = meta.Bernoulli(0.3) ? 0.7 : 0.0;
    cfg.workload.voluntary_abort_ratio = meta.Bernoulli(0.5) ? 0.1 : 0.0;
    cfg.workload.seed = meta.Next();
    cfg.seed = meta.Next();
    cfg.steal_flush_prob = meta.Bernoulli(0.5) ? 0.02 : 0.0;
    cfg.checkpoint_every_steps = meta.Bernoulli(0.3) ? 150 : 0;
    cfg.max_steps = 400000;

    int crashes = static_cast<int>(meta.Uniform(3));
    uint64_t when = 40;
    for (int c = 0; c < crashes; ++c) {
      NodeId victim =
          static_cast<NodeId>(meta.Uniform(cfg.db.machine.num_nodes));
      cfg.crashes.push_back(
          CrashPlan{when, {victim}, meta.Bernoulli(0.5)});
      when += 60 + meta.Uniform(100);
    }

    SCOPED_TRACE("round " + std::to_string(round) + " protocol " +
                 rc.Name() + " nodes " +
                 std::to_string(cfg.db.machine.num_nodes) + " recsz " +
                 std::to_string(cfg.db.record_data_size) + " crashes " +
                 std::to_string(crashes) + " W=" +
                 std::to_string(execution_threads));
    Harness h(cfg);
    auto report = h.Run();
    ASSERT_TRUE(report.ok()) << report.status().ToString();
    EXPECT_TRUE(report->verify_status.ok())
        << report->verify_status.ToString();
    EXPECT_LT(report->steps, cfg.max_steps) << "did not quiesce";
    if (rc.ensures_ifa()) {
      EXPECT_EQ(report->unnecessary_aborts(), 0u);
    }
    auto alive = h.db().machine().AliveNodes();
    if (!alive.empty() && cfg.workload.index_op_ratio > 0) {
      EXPECT_TRUE(h.db().index().CheckStructure(alive[0]).ok());
    }
    if (::testing::Test::HasFatalFailure()) return;
  }
}

TEST(SoakTest, RandomConfigurations) {
  Rng meta(0xC0FFEE);
  RunRandomRounds(meta, 24, /*execution_threads=*/1);
}

// The same randomized soup with execution sharded across 8 pool workers —
// the schedule-replay batcher must keep IFA through every protocol, crash
// schedule, and geometry it meets. Run under TSan (label "parallel") this
// is the concurrency soak for the execution hot path.
TEST(SoakTest, RandomConfigurationsExecutionThreads8) {
  Rng meta(0x8EED);
  RunRandomRounds(meta, 12, /*execution_threads=*/8);
}

}  // namespace
}  // namespace smdb
