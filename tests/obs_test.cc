// Coverage for the observability layer (src/obs/): event tracing, the
// unified metrics snapshot, and crash forensics.
//
//   1. Trace determinism: for a fixed config + seed the recorded event
//      sequence (kinds, nodes, payloads, timestamps, global order) is
//      bit-identical run to run — at recovery_threads = 1 and at 4. That
//      is what makes traces embedded in fuzzer replay documents evidence
//      rather than noise.
//   2. Ring accounting: fixed-capacity drop-oldest overflow keeps exactly
//      the newest events and counts every drop; out-of-range nodes clamp
//      to ring 0 instead of vanishing.
//   3. Chrome-trace export: well-formed JSON, one named track per node,
//      recovery phases as "X" complete spans.
//   4. Stats parity: MachineStats/LogStats::ToString and the ForEachCounter
//      visitors cover the same field set, so the human dump and the JSON
//      snapshot can never drift apart.
//   5. Metrics snapshot: FromReport unifies every subsystem prefix and the
//      per-recovery phase durations into one parseable object.
//   6. Forensics: a fuzz-caught IFA violation yields a non-empty forensic
//      report (violation, trace tails, log chain, tag decisions) that
//      rides inside the replay document and round-trips through ParseReplay.

#include <gtest/gtest.h>

#include <optional>
#include <set>
#include <string>
#include <vector>

#include "fuzz/fuzzer.h"
#include "obs/forensics.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "workload/harness.h"

namespace smdb {
namespace {

// Under -DSMDB_DISABLE_TRACING the emission sites are compiled out, so the
// tests that rely on recorded events skip (the ring/metrics mechanics are
// still exercised).
#ifdef SMDB_TRACE_DISABLED
constexpr bool kTraceCompiledOut = true;
#else
constexpr bool kTraceCompiledOut = false;
#endif

#define SMDB_SKIP_IF_TRACING_COMPILED_OUT()                             \
  if (kTraceCompiledOut) {                                              \
    GTEST_SKIP() << "emission sites compiled out (SMDB_TRACE_DISABLED)"; \
  }

HarnessConfig TracedConfig(uint32_t recovery_threads) {
  HarnessConfig cfg;
  cfg.db.machine.num_nodes = 6;
  cfg.db.recovery = RecoveryConfig::VolatileSelectiveRedo();
  cfg.db.recovery.recovery_threads = recovery_threads;
  cfg.db.trace.enabled = true;
  cfg.workload.txns_per_node = 12;
  cfg.workload.ops_per_txn = 6;
  cfg.workload.write_ratio = 0.6;
  cfg.workload.index_op_ratio = 0.2;
  cfg.workload.seed = 4242;
  cfg.crashes.push_back(CrashPlan{120, {2}, /*restart_after=*/true});
  cfg.crashes.push_back(CrashPlan{260, {4}, /*restart_after=*/false});
  return cfg;
}

std::vector<TraceEvent> RunAndCollect(uint32_t recovery_threads) {
  Harness h(TracedConfig(recovery_threads));
  auto report = h.Run();
  EXPECT_TRUE(report.ok()) << report.status().ToString();
  EXPECT_TRUE(report->verify_status.ok())
      << report->verify_status.ToString();
  return h.db().tracer().AllEvents();
}

void ExpectIdenticalTraces(const std::vector<TraceEvent>& a,
                           const std::vector<TraceEvent>& b) {
  ASSERT_EQ(a.size(), b.size());
  for (size_t i = 0; i < a.size(); ++i) {
    SCOPED_TRACE("event " + std::to_string(i));
    EXPECT_EQ(a[i].kind, b[i].kind);
    EXPECT_EQ(a[i].node, b[i].node);
    EXPECT_EQ(a[i].peer, b[i].peer);
    EXPECT_EQ(a[i].txn, b[i].txn);
    EXPECT_EQ(a[i].ts, b[i].ts);
    EXPECT_EQ(a[i].dur, b[i].dur);
    EXPECT_EQ(a[i].a, b[i].a);
    EXPECT_EQ(a[i].b, b[i].b);
    EXPECT_EQ(a[i].seq, b[i].seq);
    EXPECT_EQ(std::string(a[i].label == nullptr ? "" : a[i].label),
              std::string(b[i].label == nullptr ? "" : b[i].label));
  }
}

TEST(TraceDeterminism, SameSeedSameEventsSerial) {
  SMDB_SKIP_IF_TRACING_COMPILED_OUT();
  std::vector<TraceEvent> first = RunAndCollect(1);
  std::vector<TraceEvent> second = RunAndCollect(1);
  ASSERT_FALSE(first.empty());
  ExpectIdenticalTraces(first, second);
}

TEST(TraceDeterminism, SameSeedSameEventsParallelRecovery) {
  SMDB_SKIP_IF_TRACING_COMPILED_OUT();
  // Trace emission happens only on the coordinator path, so the recorded
  // sequence is deterministic even with 4 recovery worker streams.
  std::vector<TraceEvent> first = RunAndCollect(4);
  std::vector<TraceEvent> second = RunAndCollect(4);
  ASSERT_FALSE(first.empty());
  ExpectIdenticalTraces(first, second);
}

TEST(TraceDeterminism, RunCoversTheInstrumentedSubsystems) {
  SMDB_SKIP_IF_TRACING_COMPILED_OUT();
  std::vector<TraceEvent> events = RunAndCollect(1);
  std::set<TraceEventKind> kinds;
  for (const TraceEvent& ev : events) kinds.insert(ev.kind);
  // A crashing update-heavy workload must cross all the major families:
  // coherence traffic, WAL appends + forces, txn lifecycle, locks, the
  // crash itself, and recovery-phase spans with tag-scan decisions.
  EXPECT_TRUE(kinds.contains(TraceEventKind::kLogAppend));
  EXPECT_TRUE(kinds.contains(TraceEventKind::kLogForce));
  EXPECT_TRUE(kinds.contains(TraceEventKind::kTxnBegin));
  EXPECT_TRUE(kinds.contains(TraceEventKind::kTxnCommit));
  EXPECT_TRUE(kinds.contains(TraceEventKind::kLockAcquire));
  EXPECT_TRUE(kinds.contains(TraceEventKind::kLockRelease));
  EXPECT_TRUE(kinds.contains(TraceEventKind::kCrash));
  EXPECT_TRUE(kinds.contains(TraceEventKind::kRecoveryPhase));
  bool coherence = kinds.contains(TraceEventKind::kMigration) ||
                   kinds.contains(TraceEventKind::kReplication) ||
                   kinds.contains(TraceEventKind::kInvalidation);
  EXPECT_TRUE(coherence) << "no coherence events on a shared workload";
}

TEST(TraceRecorderRing, DropOldestKeepsTheNewestAndCounts) {
  TraceRecorder rec(/*num_nodes=*/2, /*capacity_per_node=*/8);
  rec.set_enabled(true);
  for (uint64_t i = 0; i < 20; ++i) {
    rec.Record({.kind = TraceEventKind::kLogAppend, .node = 0, .a = i});
  }
  std::vector<TraceEvent> kept = rec.Events(0);
  ASSERT_EQ(kept.size(), 8u);
  for (size_t i = 0; i < kept.size(); ++i) {
    EXPECT_EQ(kept[i].a, 12 + i) << "ring must keep the newest 8";
  }
  EXPECT_EQ(rec.dropped(0), 12u);
  EXPECT_EQ(rec.dropped(1), 0u);
  EXPECT_EQ(rec.total_dropped(), 12u);
  EXPECT_EQ(rec.total_recorded(), 20u);
  // Tail returns the last n, oldest first.
  std::vector<TraceEvent> tail = rec.Tail(0, 3);
  ASSERT_EQ(tail.size(), 3u);
  EXPECT_EQ(tail[0].a, 17u);
  EXPECT_EQ(tail[2].a, 19u);
}

TEST(TraceRecorderRing, OutOfRangeNodeClampsToRingZero) {
  TraceRecorder rec(/*num_nodes=*/2, /*capacity_per_node=*/8);
  rec.set_enabled(true);
  rec.Record({.kind = TraceEventKind::kCrash, .node = 77});
  std::vector<TraceEvent> ring0 = rec.Events(0);
  ASSERT_EQ(ring0.size(), 1u);
  EXPECT_EQ(ring0[0].node, 77);  // original node id preserved in the event
  EXPECT_EQ(rec.total_recorded(), 1u);
}

TEST(TraceRecorderRing, DisabledRecorderRecordsNothing) {
  TraceRecorder rec(/*num_nodes=*/1, /*capacity_per_node=*/8);
  SMDB_TRACE(&rec, {.kind = TraceEventKind::kCrash, .node = 0});
  EXPECT_EQ(rec.total_recorded(), 0u);
  SMDB_TRACE(static_cast<TraceRecorder*>(nullptr),
             {.kind = TraceEventKind::kCrash, .node = 0});  // must not crash
}

TEST(ChromeTrace, ExportIsWellFormedWithPerNodeTracks) {
  SMDB_SKIP_IF_TRACING_COMPILED_OUT();
  Harness h(TracedConfig(1));
  auto report = h.Run();
  ASSERT_TRUE(report.ok()) << report.status().ToString();
  auto parsed = json::Value::Parse(h.db().tracer().ToChromeTrace());
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  const json::Value* events = parsed->Find("traceEvents");
  ASSERT_NE(events, nullptr);
  ASSERT_TRUE(events->is_array());
  ASSERT_FALSE(events->array().empty());

  size_t thread_names = 0;
  size_t recovery_spans = 0;
  for (const json::Value& ev : events->array()) {
    ASSERT_TRUE(ev.is_object());
    const std::string ph = ev.GetString("ph");
    ASSERT_FALSE(ph.empty());
    ASSERT_NE(ev.Find("name"), nullptr);
    ASSERT_NE(ev.Find("pid"), nullptr);
    ASSERT_NE(ev.Find("tid"), nullptr);
    if (ph != "M") ASSERT_NE(ev.Find("ts"), nullptr);
    if (ph == "M" && ev.GetString("name") == "thread_name") ++thread_names;
    if (ph == "X") {
      ASSERT_NE(ev.Find("dur"), nullptr);
      const std::string name = ev.GetString("name");
      if (name == "recovery" || name == "redo" || name == "undo" ||
          name == "tag_scan" || name == "reload" || name == "reboot" ||
          name == "lock_rebuild" || name == "log_analysis") {
        ++recovery_spans;
      }
    }
  }
  EXPECT_EQ(thread_names, 6u) << "one metadata track per node";
  EXPECT_GT(recovery_spans, 0u) << "no recovery-phase spans in the export";
}

TEST(StatsParity, MachineStatsToStringCoversTheVisitorFieldSet) {
  MachineStats s;
  std::string dump = s.ToString();
  size_t visited = 0;
  ForEachCounter(s, [&](const char* name, uint64_t) {
    ++visited;
    EXPECT_NE(dump.find(std::string(name) + "="), std::string::npos)
        << "field " << name << " missing from MachineStats::ToString";
  });
  // Every name=value token in the dump corresponds to a visited field.
  size_t tokens = 0;
  for (size_t pos = dump.find('='); pos != std::string::npos;
       pos = dump.find('=', pos + 1)) {
    ++tokens;
  }
  EXPECT_EQ(tokens, visited);
  EXPECT_GE(visited, 10u);
}

TEST(StatsParity, LogStatsToStringCoversTheVisitorFieldSet) {
  LogStats s;
  std::string dump = s.ToString();
  size_t visited = 0;
  ForEachCounter(s, [&](const auto& name, uint64_t) {
    ++visited;
    EXPECT_NE(dump.find(std::string(name) + "="), std::string::npos)
        << "field " << std::string(name)
        << " missing from LogStats::ToString";
  });
  size_t tokens = 0;
  for (size_t pos = dump.find('='); pos != std::string::npos;
       pos = dump.find('=', pos + 1)) {
    ++tokens;
  }
  EXPECT_EQ(tokens, visited);
  // 6 scalars + 8 histogram buckets.
  EXPECT_EQ(visited, 6u + LogStats::kBatchBuckets);
}

TEST(Metrics, SnapshotUnifiesEverySubsystemAndRecoveryPhases) {
  SMDB_SKIP_IF_TRACING_COMPILED_OUT();
  Harness h(TracedConfig(1));
  auto report = h.Run();
  ASSERT_TRUE(report.ok()) << report.status().ToString();
  ASSERT_FALSE(report->recoveries.empty());

  MetricsRegistry reg = MetricsRegistry::FromReport(*report);
  reg.AddTrace(h.db().tracer());
  json::Value snap = reg.ToJson();
  ASSERT_TRUE(snap.is_object());

  // One representative key per subsystem prefix.
  for (const char* key :
       {"machine.reads", "machine.migrations", "wal.appends", "wal.forces",
        "txn.undo_tag_writes", "locks.acquires", "btree.splits",
        "exec.committed", "disk.reads", "run.steps", "run.total_time_ns",
        "recovery.count", "trace.recorded", "trace.dropped"}) {
    EXPECT_NE(snap.Find(key), nullptr) << "missing " << key;
  }
  // The per-recovery phase gauges exist for every phase name.
  for (const char* phase : {"log_analysis", "reboot", "reload", "redo",
                            "undo", "tag_scan", "lock_rebuild"}) {
    std::string key = std::string("recovery.0.phase.") + phase + "_ns";
    EXPECT_NE(snap.Find(key), nullptr) << "missing " << key;
  }
  EXPECT_EQ(snap.GetUint("recovery.count"), report->recoveries.size());
  EXPECT_EQ(snap.GetUint("exec.committed"), report->exec.committed);
  EXPECT_GT(snap.GetUint("trace.recorded"), 0u);

  // The snapshot serializes and parses back.
  auto reparsed = json::Value::Parse(snap.Dump(1));
  ASSERT_TRUE(reparsed.ok()) << reparsed.status().ToString();
  EXPECT_EQ(reparsed->members().size(), snap.members().size());
}

TEST(Metrics, PhaseDurationsSumIntoRecoveryTime) {
  Harness h(TracedConfig(1));
  auto report = h.Run();
  ASSERT_TRUE(report.ok()) << report.status().ToString();
  ASSERT_FALSE(report->recoveries.empty());
  for (const RecoveryOutcome& out : report->recoveries) {
    SimTime phase_total = 0;
    for (SimTime ns : out.phase_ns) phase_total += ns;
    EXPECT_GT(phase_total, 0u);
    EXPECT_LE(phase_total, out.recovery_time_ns)
        << "phase spans exceed the recovery envelope";
    // The ToString dump now carries the nonzero phases.
    std::string dump = out.ToString();
    EXPECT_NE(dump.find("_ns="), std::string::npos) << dump;
  }
}

TEST(Forensics, IfaViolationYieldsABoundedReportInsideTheReplay) {
  SMDB_SKIP_IF_TRACING_COMPILED_OUT();
  CrashScheduleFuzzer::Options opts;
  opts.protocols = {RecoveryConfig::VolatileSelectiveRedo()};
  opts.disable_undo_tagging = true;
  opts.trace_capacity = 512;
  CrashScheduleFuzzer fuzzer(opts);

  std::optional<FuzzFailure> failure;
  for (uint64_t seed = 0; seed < 60 && !failure.has_value(); ++seed) {
    failure = fuzzer.RunSeed(seed);
  }
  ASSERT_TRUE(failure.has_value())
      << "disabled undo tagging was not detected within 60 seeds";
  ASSERT_EQ(failure->verdict.kind, "ifa-verify") << failure->verdict.detail;

  FuzzCase shrunk = fuzzer.Shrink(*failure);
  json::Value forensics = fuzzer.CollectForensics(*failure, shrunk);
  EXPECT_TRUE(forensics.GetBool("reproduced"));
  const json::Value* violation = forensics.Find("violation");
  ASSERT_NE(violation, nullptr);
  ASSERT_TRUE(violation->is_object()) << "violation not captured";
  EXPECT_FALSE(violation->GetString("detail").empty());

  const json::Value* tails = forensics.Find("trace_tails");
  ASSERT_NE(tails, nullptr);
  ASSERT_TRUE(tails->is_array());
  size_t tail_events = 0;
  for (const json::Value& node : tails->array()) {
    tail_events += node.Find("events")->array().size();
  }
  EXPECT_GT(tail_events, 0u) << "forensic report has empty trace tails";

  // The log chain may legitimately be empty — the offending update's log
  // record can die in the crashed node's volatile tail (the paper's
  // failure mode itself) — but the object's lock history comes from the
  // trace, which a simulated crash cannot destroy: a record violation
  // implies somebody locked and updated it.
  const json::Value* chain = forensics.Find("log_chain");
  ASSERT_NE(chain, nullptr);
  ASSERT_NE(chain->Find("total"), nullptr);
  const json::Value* object_events = forensics.Find("object_events");
  ASSERT_NE(object_events, nullptr);
  EXPECT_FALSE(object_events->array().empty())
      << "no lock history for the violated object in the trace";
  ASSERT_NE(forensics.Find("locks"), nullptr);
  ASSERT_NE(forensics.Find("tag_decisions"), nullptr);

  // The report is embedded in the replay document, and the observability
  // settings round-trip through ParseReplay.
  std::string replay = fuzzer.ReplayJson(*failure, shrunk, &forensics);
  auto raw = json::Value::Parse(replay);
  ASSERT_TRUE(raw.ok()) << raw.status().ToString();
  const json::Value* embedded = raw->Find("forensics");
  ASSERT_NE(embedded, nullptr);
  EXPECT_TRUE(embedded->GetBool("reproduced"));
  auto doc = CrashScheduleFuzzer::ParseReplay(replay);
  ASSERT_TRUE(doc.ok()) << doc.status().ToString();
  EXPECT_TRUE(doc->forensics_enabled);
  EXPECT_EQ(doc->trace_capacity, 512u);
}

TEST(Forensics, PerSeedCampaignAggregatesCoverEveryCounter) {
  CrashScheduleFuzzer::Options opts;
  FuzzCampaignResult result = RunFuzzCampaign(opts, 0, 6, 2);
  ASSERT_FALSE(result.failure.has_value());
  ASSERT_EQ(result.per_seed.size(), 6u);

  // Merging the per-seed blocks reproduces the campaign totals.
  FuzzStats remerged;
  for (const FuzzStats& s : result.per_seed) remerged.Merge(s);
  EXPECT_EQ(remerged.runs, result.stats.runs);
  EXPECT_EQ(remerged.committed, result.stats.committed);

  json::Value agg = PerSeedAggregateJson(result.per_seed);
  EXPECT_EQ(agg.GetUint("seeds"), 6u);
  FuzzStats probe;
  probe.ForEachCounter([&](const char* name, uint64_t) {
    const json::Value* entry = agg.Find(name);
    ASSERT_NE(entry, nullptr) << "aggregate missing " << name;
    EXPECT_NE(entry->Find("min"), nullptr);
    EXPECT_NE(entry->Find("max"), nullptr);
    EXPECT_NE(entry->Find("mean"), nullptr);
  });
  // min <= mean <= max on a counter that definitely varies.
  const json::Value* runs = agg.Find("runs");
  ASSERT_NE(runs, nullptr);
  EXPECT_LE(runs->GetUint("min"), runs->GetUint("max"));
  EXPECT_GE(runs->GetDouble("mean"),
            static_cast<double>(runs->GetUint("min")));
  EXPECT_LE(runs->GetDouble("mean"),
            static_cast<double>(runs->GetUint("max")));
}

}  // namespace
}  // namespace smdb
