// Coverage for the observability layer (src/obs/): event tracing, the
// unified metrics snapshot, and crash forensics.
//
//   1. Trace determinism: for a fixed config + seed the recorded event
//      sequence (kinds, nodes, payloads, timestamps, global order) is
//      bit-identical run to run — at recovery_threads = 1 and at 4. That
//      is what makes traces embedded in fuzzer replay documents evidence
//      rather than noise.
//   2. Ring accounting: fixed-capacity drop-oldest overflow keeps exactly
//      the newest events and counts every drop; out-of-range nodes clamp
//      to ring 0 instead of vanishing.
//   3. Chrome-trace export: well-formed JSON, one named track per node,
//      recovery phases as "X" complete spans.
//   4. Stats parity: MachineStats/LogStats::ToString and the ForEachCounter
//      visitors cover the same field set, so the human dump and the JSON
//      snapshot can never drift apart.
//   5. Metrics snapshot: FromReport unifies every subsystem prefix and the
//      per-recovery phase durations into one parseable object.
//   6. Forensics: a fuzz-caught IFA violation yields a non-empty forensic
//      report (violation, trace tails, log chain, tag decisions) that
//      rides inside the replay document and round-trips through ParseReplay.
//   7. Histogram algebra: the fixed bucket layout makes Merge partition-
//      and order-invariant, so per-shard recording at any width yields
//      bit-identical percentiles.
//   8. Time series + availability: window-edge events land in the next
//      window, quiet stretches are explicit zero windows, and the derived
//      TTFC / trough numbers match a hand-built crash schedule.
//   9. Observatory neutrality: enabling the latency observatory changes no
//      StateDigest (it makes zero machine operations), and its histograms
//      are identical across recovery thread widths for a fixed seed.
//  10. LogStats now stores force batches in a Histogram; the classic
//      bucket counters derived from it match the old classification.
//  11. Profiler determinism matrix: reject-reason counts are identical at
//      every execution width (planning runs at the canonical width), they
//      sum exactly to solo_steps, the StateDigest is bit-identical with
//      the profiler on vs off, serial gates attribute every step, the
//      sweeper's solo discharges are typed, and the collapsed-stack /
//      JSON exports are well-formed.

#include <gtest/gtest.h>

#include <optional>
#include <set>
#include <string>
#include <vector>

#include "fuzz/fuzzer.h"
#include "obs/forensics.h"
#include "obs/histogram.h"
#include "obs/metrics.h"
#include "obs/observatory.h"
#include "obs/timeseries.h"
#include "obs/trace.h"
#include "workload/harness.h"

namespace smdb {
namespace {

// Under -DSMDB_DISABLE_TRACING the emission sites are compiled out, so the
// tests that rely on recorded events skip (the ring/metrics mechanics are
// still exercised).
#ifdef SMDB_TRACE_DISABLED
constexpr bool kTraceCompiledOut = true;
#else
constexpr bool kTraceCompiledOut = false;
#endif

#define SMDB_SKIP_IF_TRACING_COMPILED_OUT()                             \
  if (kTraceCompiledOut) {                                              \
    GTEST_SKIP() << "emission sites compiled out (SMDB_TRACE_DISABLED)"; \
  }

HarnessConfig TracedConfig(uint32_t recovery_threads) {
  HarnessConfig cfg;
  cfg.db.machine.num_nodes = 6;
  cfg.db.recovery = RecoveryConfig::VolatileSelectiveRedo();
  cfg.db.recovery.recovery_threads = recovery_threads;
  cfg.db.trace.enabled = true;
  cfg.workload.txns_per_node = 12;
  cfg.workload.ops_per_txn = 6;
  cfg.workload.write_ratio = 0.6;
  cfg.workload.index_op_ratio = 0.2;
  cfg.workload.seed = 4242;
  cfg.crashes.push_back(CrashPlan{120, {2}, /*restart_after=*/true});
  cfg.crashes.push_back(CrashPlan{260, {4}, /*restart_after=*/false});
  return cfg;
}

std::vector<TraceEvent> RunAndCollect(uint32_t recovery_threads) {
  Harness h(TracedConfig(recovery_threads));
  auto report = h.Run();
  EXPECT_TRUE(report.ok()) << report.status().ToString();
  EXPECT_TRUE(report->verify_status.ok())
      << report->verify_status.ToString();
  return h.db().tracer().AllEvents();
}

void ExpectIdenticalTraces(const std::vector<TraceEvent>& a,
                           const std::vector<TraceEvent>& b) {
  ASSERT_EQ(a.size(), b.size());
  for (size_t i = 0; i < a.size(); ++i) {
    SCOPED_TRACE("event " + std::to_string(i));
    EXPECT_EQ(a[i].kind, b[i].kind);
    EXPECT_EQ(a[i].node, b[i].node);
    EXPECT_EQ(a[i].peer, b[i].peer);
    EXPECT_EQ(a[i].txn, b[i].txn);
    EXPECT_EQ(a[i].ts, b[i].ts);
    EXPECT_EQ(a[i].dur, b[i].dur);
    EXPECT_EQ(a[i].a, b[i].a);
    EXPECT_EQ(a[i].b, b[i].b);
    EXPECT_EQ(a[i].seq, b[i].seq);
    EXPECT_EQ(std::string(a[i].label == nullptr ? "" : a[i].label),
              std::string(b[i].label == nullptr ? "" : b[i].label));
  }
}

TEST(TraceDeterminism, SameSeedSameEventsSerial) {
  SMDB_SKIP_IF_TRACING_COMPILED_OUT();
  std::vector<TraceEvent> first = RunAndCollect(1);
  std::vector<TraceEvent> second = RunAndCollect(1);
  ASSERT_FALSE(first.empty());
  ExpectIdenticalTraces(first, second);
}

TEST(TraceDeterminism, SameSeedSameEventsParallelRecovery) {
  SMDB_SKIP_IF_TRACING_COMPILED_OUT();
  // Trace emission happens only on the coordinator path, so the recorded
  // sequence is deterministic even with 4 recovery worker streams.
  std::vector<TraceEvent> first = RunAndCollect(4);
  std::vector<TraceEvent> second = RunAndCollect(4);
  ASSERT_FALSE(first.empty());
  ExpectIdenticalTraces(first, second);
}

TEST(TraceDeterminism, RunCoversTheInstrumentedSubsystems) {
  SMDB_SKIP_IF_TRACING_COMPILED_OUT();
  std::vector<TraceEvent> events = RunAndCollect(1);
  std::set<TraceEventKind> kinds;
  for (const TraceEvent& ev : events) kinds.insert(ev.kind);
  // A crashing update-heavy workload must cross all the major families:
  // coherence traffic, WAL appends + forces, txn lifecycle, locks, the
  // crash itself, and recovery-phase spans with tag-scan decisions.
  EXPECT_TRUE(kinds.contains(TraceEventKind::kLogAppend));
  EXPECT_TRUE(kinds.contains(TraceEventKind::kLogForce));
  EXPECT_TRUE(kinds.contains(TraceEventKind::kTxnBegin));
  EXPECT_TRUE(kinds.contains(TraceEventKind::kTxnCommit));
  EXPECT_TRUE(kinds.contains(TraceEventKind::kLockAcquire));
  EXPECT_TRUE(kinds.contains(TraceEventKind::kLockRelease));
  EXPECT_TRUE(kinds.contains(TraceEventKind::kCrash));
  EXPECT_TRUE(kinds.contains(TraceEventKind::kRecoveryPhase));
  bool coherence = kinds.contains(TraceEventKind::kMigration) ||
                   kinds.contains(TraceEventKind::kReplication) ||
                   kinds.contains(TraceEventKind::kInvalidation);
  EXPECT_TRUE(coherence) << "no coherence events on a shared workload";
}

TEST(TraceRecorderRing, DropOldestKeepsTheNewestAndCounts) {
  TraceRecorder rec(/*num_nodes=*/2, /*capacity_per_node=*/8);
  rec.set_enabled(true);
  for (uint64_t i = 0; i < 20; ++i) {
    rec.Record({.kind = TraceEventKind::kLogAppend, .node = 0, .a = i});
  }
  std::vector<TraceEvent> kept = rec.Events(0);
  ASSERT_EQ(kept.size(), 8u);
  for (size_t i = 0; i < kept.size(); ++i) {
    EXPECT_EQ(kept[i].a, 12 + i) << "ring must keep the newest 8";
  }
  EXPECT_EQ(rec.dropped(0), 12u);
  EXPECT_EQ(rec.dropped(1), 0u);
  EXPECT_EQ(rec.total_dropped(), 12u);
  EXPECT_EQ(rec.total_recorded(), 20u);
  // Tail returns the last n, oldest first.
  std::vector<TraceEvent> tail = rec.Tail(0, 3);
  ASSERT_EQ(tail.size(), 3u);
  EXPECT_EQ(tail[0].a, 17u);
  EXPECT_EQ(tail[2].a, 19u);
}

TEST(TraceRecorderRing, OutOfRangeNodeClampsToRingZero) {
  TraceRecorder rec(/*num_nodes=*/2, /*capacity_per_node=*/8);
  rec.set_enabled(true);
  rec.Record({.kind = TraceEventKind::kCrash, .node = 77});
  std::vector<TraceEvent> ring0 = rec.Events(0);
  ASSERT_EQ(ring0.size(), 1u);
  EXPECT_EQ(ring0[0].node, 77);  // original node id preserved in the event
  EXPECT_EQ(rec.total_recorded(), 1u);
}

TEST(TraceRecorderRing, DisabledRecorderRecordsNothing) {
  TraceRecorder rec(/*num_nodes=*/1, /*capacity_per_node=*/8);
  SMDB_TRACE(&rec, {.kind = TraceEventKind::kCrash, .node = 0});
  EXPECT_EQ(rec.total_recorded(), 0u);
  SMDB_TRACE(static_cast<TraceRecorder*>(nullptr),
             {.kind = TraceEventKind::kCrash, .node = 0});  // must not crash
}

TEST(ChromeTrace, ExportIsWellFormedWithPerNodeTracks) {
  SMDB_SKIP_IF_TRACING_COMPILED_OUT();
  Harness h(TracedConfig(1));
  auto report = h.Run();
  ASSERT_TRUE(report.ok()) << report.status().ToString();
  auto parsed = json::Value::Parse(h.db().tracer().ToChromeTrace());
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  const json::Value* events = parsed->Find("traceEvents");
  ASSERT_NE(events, nullptr);
  ASSERT_TRUE(events->is_array());
  ASSERT_FALSE(events->array().empty());

  size_t thread_names = 0;
  size_t recovery_spans = 0;
  for (const json::Value& ev : events->array()) {
    ASSERT_TRUE(ev.is_object());
    const std::string ph = ev.GetString("ph");
    ASSERT_FALSE(ph.empty());
    ASSERT_NE(ev.Find("name"), nullptr);
    ASSERT_NE(ev.Find("pid"), nullptr);
    ASSERT_NE(ev.Find("tid"), nullptr);
    if (ph != "M") ASSERT_NE(ev.Find("ts"), nullptr);
    if (ph == "M" && ev.GetString("name") == "thread_name") ++thread_names;
    if (ph == "X") {
      ASSERT_NE(ev.Find("dur"), nullptr);
      const std::string name = ev.GetString("name");
      if (name == "recovery" || name == "redo" || name == "undo" ||
          name == "tag_scan" || name == "reload" || name == "reboot" ||
          name == "lock_rebuild" || name == "log_analysis") {
        ++recovery_spans;
      }
    }
  }
  EXPECT_EQ(thread_names, 6u) << "one metadata track per node";
  EXPECT_GT(recovery_spans, 0u) << "no recovery-phase spans in the export";
}

TEST(StatsParity, MachineStatsToStringCoversTheVisitorFieldSet) {
  MachineStats s;
  std::string dump = s.ToString();
  size_t visited = 0;
  ForEachCounter(s, [&](const char* name, uint64_t) {
    ++visited;
    EXPECT_NE(dump.find(std::string(name) + "="), std::string::npos)
        << "field " << name << " missing from MachineStats::ToString";
  });
  // Every name=value token in the dump corresponds to a visited field.
  size_t tokens = 0;
  for (size_t pos = dump.find('='); pos != std::string::npos;
       pos = dump.find('=', pos + 1)) {
    ++tokens;
  }
  EXPECT_EQ(tokens, visited);
  EXPECT_GE(visited, 10u);
}

TEST(StatsParity, LogStatsToStringCoversTheVisitorFieldSet) {
  LogStats s;
  std::string dump = s.ToString();
  size_t visited = 0;
  ForEachCounter(s, [&](const auto& name, uint64_t) {
    ++visited;
    EXPECT_NE(dump.find(std::string(name) + "="), std::string::npos)
        << "field " << std::string(name)
        << " missing from LogStats::ToString";
  });
  size_t tokens = 0;
  for (size_t pos = dump.find('='); pos != std::string::npos;
       pos = dump.find('=', pos + 1)) {
    ++tokens;
  }
  EXPECT_EQ(tokens, visited);
  // 6 scalars + 8 histogram buckets.
  EXPECT_EQ(visited, 6u + LogStats::kBatchBuckets);
}

TEST(Metrics, SnapshotUnifiesEverySubsystemAndRecoveryPhases) {
  SMDB_SKIP_IF_TRACING_COMPILED_OUT();
  Harness h(TracedConfig(1));
  auto report = h.Run();
  ASSERT_TRUE(report.ok()) << report.status().ToString();
  ASSERT_FALSE(report->recoveries.empty());

  MetricsRegistry reg = MetricsRegistry::FromReport(*report);
  reg.AddTrace(h.db().tracer());
  json::Value snap = reg.ToJson();
  ASSERT_TRUE(snap.is_object());

  // One representative key per subsystem prefix.
  for (const char* key :
       {"machine.reads", "machine.migrations", "wal.appends", "wal.forces",
        "txn.undo_tag_writes", "locks.acquires", "btree.splits",
        "exec.committed", "disk.reads", "run.steps", "run.total_time_ns",
        "recovery.count", "trace.recorded", "trace.dropped"}) {
    EXPECT_NE(snap.Find(key), nullptr) << "missing " << key;
  }
  // The per-recovery phase gauges exist for every phase name.
  for (const char* phase : {"log_analysis", "reboot", "reload", "redo",
                            "undo", "tag_scan", "lock_rebuild"}) {
    std::string key = std::string("recovery.0.phase.") + phase + "_ns";
    EXPECT_NE(snap.Find(key), nullptr) << "missing " << key;
  }
  EXPECT_EQ(snap.GetUint("recovery.count"), report->recoveries.size());
  EXPECT_EQ(snap.GetUint("exec.committed"), report->exec.committed);
  EXPECT_GT(snap.GetUint("trace.recorded"), 0u);

  // The snapshot serializes and parses back.
  auto reparsed = json::Value::Parse(snap.Dump(1));
  ASSERT_TRUE(reparsed.ok()) << reparsed.status().ToString();
  EXPECT_EQ(reparsed->members().size(), snap.members().size());
}

TEST(Metrics, PhaseDurationsSumIntoRecoveryTime) {
  Harness h(TracedConfig(1));
  auto report = h.Run();
  ASSERT_TRUE(report.ok()) << report.status().ToString();
  ASSERT_FALSE(report->recoveries.empty());
  for (const RecoveryOutcome& out : report->recoveries) {
    SimTime phase_total = 0;
    for (SimTime ns : out.phase_ns) phase_total += ns;
    EXPECT_GT(phase_total, 0u);
    EXPECT_LE(phase_total, out.recovery_time_ns)
        << "phase spans exceed the recovery envelope";
    // The ToString dump now carries the nonzero phases.
    std::string dump = out.ToString();
    EXPECT_NE(dump.find("_ns="), std::string::npos) << dump;
  }
}

TEST(Forensics, IfaViolationYieldsABoundedReportInsideTheReplay) {
  SMDB_SKIP_IF_TRACING_COMPILED_OUT();
  CrashScheduleFuzzer::Options opts;
  opts.protocols = {RecoveryConfig::VolatileSelectiveRedo()};
  opts.disable_undo_tagging = true;
  opts.trace_capacity = 512;
  CrashScheduleFuzzer fuzzer(opts);

  std::optional<FuzzFailure> failure;
  for (uint64_t seed = 0; seed < 60 && !failure.has_value(); ++seed) {
    failure = fuzzer.RunSeed(seed);
  }
  ASSERT_TRUE(failure.has_value())
      << "disabled undo tagging was not detected within 60 seeds";
  ASSERT_EQ(failure->verdict.kind, "ifa-verify") << failure->verdict.detail;

  FuzzCase shrunk = fuzzer.Shrink(*failure);
  json::Value forensics = fuzzer.CollectForensics(*failure, shrunk);
  EXPECT_TRUE(forensics.GetBool("reproduced"));
  const json::Value* violation = forensics.Find("violation");
  ASSERT_NE(violation, nullptr);
  ASSERT_TRUE(violation->is_object()) << "violation not captured";
  EXPECT_FALSE(violation->GetString("detail").empty());

  const json::Value* tails = forensics.Find("trace_tails");
  ASSERT_NE(tails, nullptr);
  ASSERT_TRUE(tails->is_array());
  size_t tail_events = 0;
  for (const json::Value& node : tails->array()) {
    tail_events += node.Find("events")->array().size();
  }
  EXPECT_GT(tail_events, 0u) << "forensic report has empty trace tails";

  // The log chain may legitimately be empty — the offending update's log
  // record can die in the crashed node's volatile tail (the paper's
  // failure mode itself) — but the object's lock history comes from the
  // trace, which a simulated crash cannot destroy: a record violation
  // implies somebody locked and updated it.
  const json::Value* chain = forensics.Find("log_chain");
  ASSERT_NE(chain, nullptr);
  ASSERT_NE(chain->Find("total"), nullptr);
  const json::Value* object_events = forensics.Find("object_events");
  ASSERT_NE(object_events, nullptr);
  EXPECT_FALSE(object_events->array().empty())
      << "no lock history for the violated object in the trace";
  ASSERT_NE(forensics.Find("locks"), nullptr);
  ASSERT_NE(forensics.Find("tag_decisions"), nullptr);

  // The report is embedded in the replay document, and the observability
  // settings round-trip through ParseReplay.
  std::string replay = fuzzer.ReplayJson(*failure, shrunk, &forensics);
  auto raw = json::Value::Parse(replay);
  ASSERT_TRUE(raw.ok()) << raw.status().ToString();
  const json::Value* embedded = raw->Find("forensics");
  ASSERT_NE(embedded, nullptr);
  EXPECT_TRUE(embedded->GetBool("reproduced"));
  auto doc = CrashScheduleFuzzer::ParseReplay(replay);
  ASSERT_TRUE(doc.ok()) << doc.status().ToString();
  EXPECT_TRUE(doc->forensics_enabled);
  EXPECT_EQ(doc->trace_capacity, 512u);
}

TEST(Forensics, PerSeedCampaignAggregatesCoverEveryCounter) {
  CrashScheduleFuzzer::Options opts;
  FuzzCampaignResult result = RunFuzzCampaign(opts, 0, 6, 2);
  ASSERT_FALSE(result.failure.has_value());
  ASSERT_EQ(result.per_seed.size(), 6u);

  // Merging the per-seed blocks reproduces the campaign totals.
  FuzzStats remerged;
  for (const FuzzStats& s : result.per_seed) remerged.Merge(s);
  EXPECT_EQ(remerged.runs, result.stats.runs);
  EXPECT_EQ(remerged.committed, result.stats.committed);

  json::Value agg = PerSeedAggregateJson(result.per_seed);
  EXPECT_EQ(agg.GetUint("seeds"), 6u);
  FuzzStats probe;
  probe.ForEachCounter([&](const char* name, uint64_t) {
    const json::Value* entry = agg.Find(name);
    ASSERT_NE(entry, nullptr) << "aggregate missing " << name;
    EXPECT_NE(entry->Find("min"), nullptr);
    EXPECT_NE(entry->Find("max"), nullptr);
    EXPECT_NE(entry->Find("mean"), nullptr);
  });
  // min <= mean <= max on a counter that definitely varies.
  const json::Value* runs = agg.Find("runs");
  ASSERT_NE(runs, nullptr);
  EXPECT_LE(runs->GetUint("min"), runs->GetUint("max"));
  EXPECT_GE(runs->GetDouble("mean"),
            static_cast<double>(runs->GetUint("min")));
  EXPECT_LE(runs->GetDouble("mean"),
            static_cast<double>(runs->GetUint("max")));
}

// ---- Latency observatory (histograms, time series, availability) -------

HarnessConfig ObservedConfig(uint32_t recovery_threads, bool obs_on) {
  HarnessConfig cfg = TracedConfig(recovery_threads);
  cfg.db.trace.enabled = false;
  cfg.db.obs.enabled = obs_on;
  return cfg;
}

TEST(LatencyHistogram, MergeIsPartitionAndOrderInvariant) {
  // Deterministic value stream spanning both the exact (<128) and the
  // log-bucketed range.
  std::vector<uint64_t> values;
  uint64_t x = 0x9E3779B97F4A7C15ULL;
  for (int i = 0; i < 20'000; ++i) {
    x ^= x << 13;
    x ^= x >> 7;
    x ^= x << 17;
    values.push_back(x % (i % 3 == 0 ? 100 : 10'000'000));
  }
  Histogram whole;
  for (uint64_t v : values) whole.Record(v);

  for (size_t width : {size_t{1}, size_t{4}, size_t{8}}) {
    SCOPED_TRACE("width " + std::to_string(width));
    // Round-robin partitioning, the shape per-thread recording produces.
    std::vector<Histogram> shards(width);
    for (size_t i = 0; i < values.size(); ++i) {
      shards[i % width].Record(values[i]);
    }
    Histogram forward;
    for (const Histogram& s : shards) forward.Merge(s);
    Histogram reverse;
    for (size_t i = shards.size(); i-- > 0;) reverse.Merge(shards[i]);

    EXPECT_TRUE(forward == whole) << "merge order changed the counts";
    EXPECT_TRUE(reverse == whole);
    EXPECT_EQ(forward.count(), values.size());
    EXPECT_EQ(forward.P50(), whole.P50());
    EXPECT_EQ(forward.P90(), whole.P90());
    EXPECT_EQ(forward.P99(), whole.P99());
    EXPECT_EQ(forward.P999(), whole.P999());
    EXPECT_EQ(forward.min(), whole.min());
    EXPECT_EQ(forward.max(), whole.max());
    EXPECT_EQ(forward.sum(), whole.sum());
  }
}

TEST(LatencyHistogram, ExactBelowSubBucketsBoundedErrorAbove) {
  Histogram h;
  for (uint64_t v = 0; v < Histogram::kSubBuckets; ++v) {
    size_t idx = Histogram::CountsIndex(v);
    EXPECT_EQ(Histogram::LowestEquivalent(idx), v) << "unit bucket expected";
    EXPECT_EQ(Histogram::HighestEquivalent(idx), v);
    h.Record(v);
  }
  EXPECT_EQ(h.CountInRange(0, Histogram::kSubBuckets - 1),
            uint64_t{Histogram::kSubBuckets});
  // Above the exact range the representative overshoots by at most 1/64.
  for (uint64_t v : {1'000ULL, 123'456ULL, 7'000'000'000ULL}) {
    size_t idx = Histogram::CountsIndex(v);
    uint64_t lo = Histogram::LowestEquivalent(idx);
    uint64_t hi = Histogram::HighestEquivalent(idx);
    EXPECT_LE(lo, v);
    EXPECT_GE(hi, v);
    EXPECT_LE(double(hi - lo), double(lo) / 64.0 + 1.0);
  }
  // Percentiles report the max exactly (the representative is clamped).
  h.Record(999);
  EXPECT_EQ(h.ValueAtPercentile(100.0), 999u);
  EXPECT_EQ(Histogram().P99(), 0u) << "empty histogram percentile";
}

TEST(TimeSeriesWindows, EdgeEventsAndEmptyWindowsAreExplicit) {
  TimeSeries ts(/*window_ns=*/100);
  ts.OnCommit(99);    // window 0
  ts.OnCommit(100);   // exactly on the edge -> window 1, not 0
  ts.OnCommit(950);   // window 9
  ts.OnBegin(950);
  ts.NoteInflight(950, 3);
  ASSERT_EQ(ts.windows().size(), 10u) << "windows are dense from t=0";
  EXPECT_EQ(ts.windows()[0].commits, 1u);
  EXPECT_EQ(ts.windows()[1].commits, 1u);
  for (size_t w = 2; w <= 8; ++w) {
    EXPECT_EQ(ts.windows()[w].commits, 0u) << "window " << w
                                           << " must be an explicit zero";
  }
  EXPECT_EQ(ts.windows()[9].commits, 1u);
  EXPECT_EQ(ts.windows()[9].max_inflight, 3u);
  EXPECT_EQ(ts.WindowIndex(200), 2u);
  EXPECT_EQ(ts.WindowStart(9), 900u);
  EXPECT_DOUBLE_EQ(ts.Tps(0), 1e9 / 100.0);
  EXPECT_DOUBLE_EQ(ts.Tps(5), 0.0);
}

TEST(TimeSeriesWindows, TroughWithCrashExactlyOnAWindowEdge) {
  TimeSeries s(/*window_ns=*/100);
  // Steady state: 4 commits per window for windows 0..4.
  for (SimTime w = 0; w < 5; ++w) {
    for (SimTime off : {10, 30, 50, 70}) s.OnCommit(w * 100 + off);
  }
  // Post-crash: two stragglers during the outage, then a recovered burst.
  s.OnCommit(760);
  s.OnCommit(900);
  for (SimTime t : {1500, 1520, 1540, 1560}) s.OnCommit(t);

  CrashAvailability ca;
  ca.crash_ts = 500;  // exactly on the window 4|5 boundary
  ComputeThroughputTrough(s, &ca);
  // Steady rate comes from windows strictly before the crash window: 4
  // commits / 100ns window.
  EXPECT_DOUBLE_EQ(ca.steady_tps, 4e7);
  // Trough: windows 5..14 all stay below half of steady (the straggler
  // windows hold 1 < 2); the burst window 15 ends it.
  EXPECT_EQ(ca.trough_windows, 10u);
  EXPECT_EQ(ca.trough_duration_ns, 1000u);
  EXPECT_DOUBLE_EQ(ca.trough_tps, 0.0);
  EXPECT_DOUBLE_EQ(ca.depth_pct, 100.0);

  // Crash at t=0: no pre-crash windows, steady falls back to the
  // whole-series mean and the busy first window means no trough at all.
  CrashAvailability at_zero;
  at_zero.crash_ts = 0;
  ComputeThroughputTrough(s, &at_zero);
  EXPECT_DOUBLE_EQ(at_zero.steady_tps, 26.0 / 16.0 * 1e7);
  EXPECT_EQ(at_zero.trough_windows, 0u);
}

TEST(Availability, HandBuiltCrashScheduleYieldsKnownTtfc) {
  ObsConfig oc;
  oc.enabled = true;
  oc.window_ns = 100;
  oc.crash_influence_ns = 500;
  Observatory obs(/*num_nodes=*/4, oc);

  // Steady phase: 4 commits per window for windows 0..4, latency 40 each.
  TxnId next = 1;
  for (SimTime w = 0; w < 5; ++w) {
    for (SimTime off : {10, 30, 50, 70}) {
      TxnId t = next++;
      obs.OnTxnBegin(0, t, w * 100 + off);
      obs.OnCommit(0, t, w * 100 + off, /*latency=*/40);
    }
  }
  // Node 1 crashes at t=500; recovery runs 500..700; the node restarts at
  // 650 (mid-pass, as RestartNodes does).
  obs.OnNodeDown(1, 500);
  obs.OnRecoveryStart({1}, 500);
  obs.OnNodeUp(1, 650);
  obs.OnRecoveryEnd(700);
  // First commit anywhere after the crash: node 2 at t=760.
  obs.OnTxnBegin(2, next, 720);
  obs.OnCommit(2, next++, 760, 40);
  // First commit on the restarted node: t=900.
  obs.OnTxnBegin(1, next, 800);
  obs.OnCommit(1, next++, 900, 100);
  // Recovered burst well past the crash shadow (ends 700 + 500 = 1200).
  for (SimTime t : {1500, 1520, 1540, 1560}) {
    obs.OnTxnBegin(0, next, t - 40);
    obs.OnCommit(0, next++, t, 40);
  }

  LatencyReport rep = obs.Snapshot();
  ASSERT_TRUE(rep.enabled);
  ASSERT_EQ(rep.availability.crashes.size(), 1u);
  const CrashAvailability& c = rep.availability.crashes[0];
  EXPECT_EQ(c.crash_ts, 500u);
  EXPECT_EQ(c.recovery_end_ts, 700u);
  EXPECT_TRUE(c.saw_commit_after);
  EXPECT_EQ(c.ttfc_ns(), 260u) << "first commit at 760, crash at 500";
  ASSERT_EQ(c.node_ttfc.size(), 1u);
  EXPECT_EQ(c.node_ttfc[0].node, 1u);
  EXPECT_TRUE(c.node_ttfc[0].committed);
  EXPECT_EQ(c.node_ttfc[0].ttfc_ns(), 250u) << "restart 650, commit 900";
  EXPECT_EQ(c.trough_windows, 10u);
  EXPECT_DOUBLE_EQ(c.depth_pct, 100.0);

  // Latency split: the 2 commits inside the crash shadow vs 24 steady.
  EXPECT_EQ(rep.commit_latency.count(), 26u);
  EXPECT_EQ(rep.commit_through_crash.count(), 2u);
  EXPECT_EQ(rep.commit_steady.count(), 24u);
  EXPECT_EQ(rep.commit_steady.P50(), 40u);
  EXPECT_EQ(rep.commit_through_crash.max(), 100u);

  // Node-state timeline: down@500(n1), survivors recovering@500 (n0,2,3),
  // restarted node recovering@650, everyone serving@700.
  ASSERT_EQ(rep.node_states.size(), 9u);
  EXPECT_EQ(rep.node_states[0].node, 1u);
  EXPECT_EQ(rep.node_states[0].state, NodeServiceState::kDown);
  EXPECT_EQ(rep.node_states[0].ts, 500u);
  EXPECT_EQ(rep.node_states[4].node, 1u);
  EXPECT_EQ(rep.node_states[4].state, NodeServiceState::kRecovering);
  EXPECT_EQ(rep.node_states[4].ts, 650u);
  for (size_t i = 5; i < 9; ++i) {
    EXPECT_EQ(rep.node_states[i].state, NodeServiceState::kServing);
    EXPECT_EQ(rep.node_states[i].ts, 700u);
  }
}

TEST(Availability, RestartedNodeThatNeverCommitsIsReportedUncommitted) {
  ObsConfig oc;
  oc.enabled = true;
  Observatory obs(/*num_nodes=*/2, oc);
  obs.OnTxnBegin(0, 1, 10);
  obs.OnCommit(0, 1, 50, 40);
  obs.OnNodeDown(1, 100);
  obs.OnRecoveryStart({1}, 100);
  obs.OnNodeUp(1, 150);
  obs.OnRecoveryEnd(200);
  // No commits after the crash at all.
  LatencyReport rep = obs.Snapshot();
  ASSERT_EQ(rep.availability.crashes.size(), 1u);
  const CrashAvailability& c = rep.availability.crashes[0];
  EXPECT_FALSE(c.saw_commit_after);
  EXPECT_EQ(c.ttfc_ns(), 0u);
  ASSERT_EQ(c.node_ttfc.size(), 1u);
  EXPECT_EQ(c.node_ttfc[0].node, 1u);
  EXPECT_FALSE(c.node_ttfc[0].committed);
  EXPECT_EQ(c.node_ttfc[0].ttfc_ns(), 0u);
}

TEST(Availability, LockContentionProfileRanksAndClearsPendingWaits) {
  ObsConfig oc;
  oc.enabled = true;
  oc.top_contended = 2;
  Observatory obs(/*num_nodes=*/1, oc);
  obs.OnTxnBegin(0, 1, 0);
  obs.OnTxnBegin(0, 2, 0);
  // Lock 777: two waits totalling 180ns; lock 888: one wait of 130ns.
  obs.OnLockQueued(1, 777, 10);
  obs.OnLockGranted(1, 777, 60);  // wait 50
  obs.OnLockQueued(2, 777, 70);
  obs.OnLockGranted(2, 777, 200);  // wait 130
  obs.OnLockQueued(1, 888, 70);
  obs.OnLockGranted(1, 888, 200);  // wait 130
  // A grant that was never queued is ignored.
  obs.OnLockGranted(9, 123, 10);
  // A wait still pending when the txn ends must not dangle: the later
  // grant no longer matches anything.
  obs.OnLockQueued(1, 999, 300);
  obs.OnCommit(0, 1, 400, 400);
  obs.OnLockGranted(1, 999, 900);

  LatencyReport rep = obs.Snapshot();
  EXPECT_EQ(rep.lock_wait.count(), 3u);
  EXPECT_EQ(rep.lock_wait.max(), 130u);
  ASSERT_EQ(rep.top_contended.size(), 2u);
  EXPECT_EQ(rep.top_contended[0].name, 777u);
  EXPECT_EQ(rep.top_contended[0].waits, 2u);
  EXPECT_EQ(rep.top_contended[0].total_wait_ns, 180u);
  EXPECT_EQ(rep.top_contended[0].max_wait_ns, 130u);
  EXPECT_DOUBLE_EQ(rep.top_contended[0].mean_wait_ns(), 90.0);
  EXPECT_EQ(rep.top_contended[1].name, 888u);
  EXPECT_EQ(rep.top_contended[1].total_wait_ns, 130u);

  // Duplicate completion of an already-finished txn is a no-op.
  obs.OnCommit(0, 1, 500, 500);
  EXPECT_EQ(obs.Snapshot().commit_latency.count(), 1u);
}

TEST(Metrics, LatencyAvailabilityAndContentionKeysAreStable) {
  Harness h(ObservedConfig(1, /*obs_on=*/true));
  auto report = h.Run();
  ASSERT_TRUE(report.ok()) << report.status().ToString();
  ASSERT_TRUE(report->latency.enabled);
  ASSERT_FALSE(report->recoveries.empty());

  json::Value snap = MetricsRegistry::FromReport(*report).ToJson();
  for (const char* hist : {"commit", "abort", "lock_wait", "gc_residency",
                           "commit_steady", "commit_through_crash"}) {
    for (const char* stat : {"count", "mean_ns", "p50_ns", "p90_ns",
                             "p99_ns", "p999_ns", "max_ns"}) {
      std::string key = std::string("latency.") + hist + "." + stat;
      EXPECT_NE(snap.Find(key), nullptr) << "missing " << key;
    }
  }
  EXPECT_GT(snap.GetUint("latency.commit.count"), 0u);
  ASSERT_NE(snap.Find("availability.crashes"), nullptr);
  EXPECT_EQ(snap.GetUint("availability.crashes"),
            report->recoveries.size());
  for (size_t i = 0; i < report->recoveries.size(); ++i) {
    const std::string p = "availability." + std::to_string(i) + ".";
    for (const char* leaf : {"crash_ts_ns", "recovery_end_ts_ns", "ttfc_ns",
                             "steady_tps", "trough_depth_pct",
                             "trough_duration_ns"}) {
      EXPECT_NE(snap.Find(p + leaf), nullptr) << "missing " << p << leaf;
    }
  }
  ASSERT_NE(snap.Find("locks.contention.count"), nullptr);

  // The full latency report serializes and exposes its stable sections.
  auto parsed = json::Value::Parse(report->latency.ToJson().Dump(1));
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  for (const char* key : {"latency", "series", "availability",
                          "node_state_transitions", "lock_contention"}) {
    EXPECT_NE(parsed->Find(key), nullptr) << "missing section " << key;
  }

  // With the observatory off the latency keys vanish rather than showing
  // up zeroed — downstream dashboards can key off presence.
  Harness off(ObservedConfig(1, /*obs_on=*/false));
  auto off_report = off.Run();
  ASSERT_TRUE(off_report.ok()) << off_report.status().ToString();
  EXPECT_FALSE(off_report->latency.enabled);
  json::Value off_snap = MetricsRegistry::FromReport(*off_report).ToJson();
  EXPECT_EQ(off_snap.Find("latency.commit.count"), nullptr);
  EXPECT_EQ(off_snap.Find("availability.crashes"), nullptr);
}

TEST(ObservatoryDeterminism, DigestsBitIdenticalObservatoryOnVsOff) {
  auto run = [](bool obs_on) {
    HarnessConfig cfg = ObservedConfig(1, obs_on);
    cfg.capture_digests = true;
    Harness h(cfg);
    auto report = h.Run();
    EXPECT_TRUE(report.ok()) << report.status().ToString();
    return report->digests;
  };
  std::vector<StateDigest> off = run(false);
  std::vector<StateDigest> on = run(true);
  ASSERT_FALSE(off.empty());
  ASSERT_EQ(off.size(), on.size());
  for (size_t i = 0; i < off.size(); ++i) {
    EXPECT_TRUE(off[i] == on[i])
        << "digest " << i << " diverged:\n  off " << off[i].ToString()
        << "\n  on  " << on[i].ToString();
  }
}

TEST(ObservatoryDeterminism, HistogramsInvariantAcrossRecoveryThreadWidths) {
  auto run = [](uint32_t threads) {
    Harness h(ObservedConfig(threads, /*obs_on=*/true));
    auto report = h.Run();
    EXPECT_TRUE(report.ok()) << report.status().ToString();
    return report->latency;
  };
  // Host thread-pool scheduling must never leak into the measurements: at
  // every width, a repeated run yields a bit-identical report — every
  // histogram, the availability timeline, and the contention ranking.
  // (recovery_threads also models *simulated* parallel recovery, which by
  // design shortens the recovery envelope; cross-width, the quantities
  // derived from the identical pre-crash execution must agree exactly.)
  LatencyReport w1 = run(1);
  std::vector<LatencyReport> reports;
  for (uint32_t threads : {1u, 4u, 8u}) {
    SCOPED_TRACE("width " + std::to_string(threads));
    LatencyReport a = run(threads);
    LatencyReport b = run(threads);
    ASSERT_GT(a.commit_latency.count(), 0u);
    EXPECT_TRUE(a.commit_latency == b.commit_latency);
    EXPECT_TRUE(a.abort_latency == b.abort_latency);
    EXPECT_TRUE(a.lock_wait == b.lock_wait);
    EXPECT_TRUE(a.gc_residency == b.gc_residency);
    EXPECT_TRUE(a.commit_steady == b.commit_steady);
    EXPECT_TRUE(a.commit_through_crash == b.commit_through_crash);
    EXPECT_EQ(a.commit_latency.P99(), b.commit_latency.P99());
    EXPECT_EQ(a.commit_latency.P999(), b.commit_latency.P999());
    ASSERT_EQ(a.availability.crashes.size(), b.availability.crashes.size());
    for (size_t i = 0; i < a.availability.crashes.size(); ++i) {
      EXPECT_EQ(a.availability.crashes[i].ttfc_ns(),
                b.availability.crashes[i].ttfc_ns());
      EXPECT_EQ(a.availability.crashes[i].trough_windows,
                b.availability.crashes[i].trough_windows);
    }
    ASSERT_EQ(a.top_contended.size(), b.top_contended.size());
    for (size_t i = 0; i < a.top_contended.size(); ++i) {
      EXPECT_EQ(a.top_contended[i].name, b.top_contended[i].name);
      EXPECT_EQ(a.top_contended[i].total_wait_ns,
                b.top_contended[i].total_wait_ns);
    }
    reports.push_back(std::move(a));
  }
  // Cross-width: the same transactions commit (state equivalence across
  // recovery widths, per the differential oracle), and everything anchored
  // before the first crash is timing-identical — the crash instant and the
  // steady throughput derived from the pre-crash windows.
  for (size_t i = 1; i < reports.size(); ++i) {
    SCOPED_TRACE("cross-width report " + std::to_string(i));
    EXPECT_EQ(reports[i].commit_latency.count(),
              w1.commit_latency.count());
    EXPECT_EQ(reports[i].abort_latency.count(), w1.abort_latency.count());
    ASSERT_EQ(reports[i].availability.crashes.size(),
              w1.availability.crashes.size());
    ASSERT_FALSE(w1.availability.crashes.empty());
    EXPECT_EQ(reports[i].availability.crashes[0].crash_ts,
              w1.availability.crashes[0].crash_ts);
    EXPECT_DOUBLE_EQ(reports[i].availability.crashes[0].steady_tps,
                     w1.availability.crashes[0].steady_tps);
  }
}

TEST(StatsParity, ForceBatchHistogramMatchesTheClassicBuckets) {
  LogStats s;
  uint64_t manual[LogStats::kBatchBuckets] = {};
  for (uint64_t n = 1; n <= 200; ++n) {
    s.force_batches.Record(n);
    size_t b = LogStats::BatchBucket(n);
    ++manual[b];
    auto [lo, hi] = LogStats::BatchBucketRange(b);
    EXPECT_GE(n, lo) << "bucket range excludes its own member";
    EXPECT_LE(n, hi);
  }
  uint64_t total = 0;
  for (size_t b = 0; b < LogStats::kBatchBuckets; ++b) {
    EXPECT_EQ(s.force_batch_bucket(b), manual[b]) << "bucket " << b << " ("
                                                  << LogStats::BatchBucketLabel(b)
                                                  << ")";
    total += s.force_batch_bucket(b);
  }
  EXPECT_EQ(total, 200u) << "derived buckets must partition the recordings";
  EXPECT_EQ(s.max_force_batch(), 200u);
}

// ---- Execution/recovery profiler ---------------------------------------

// Under -DSMDB_DISABLE_PROFILER the emission sites (and the runtime
// enable) are compiled out; the attribution tests skip.
#ifdef SMDB_PROFILER_DISABLED
constexpr bool kProfilerCompiledOut = true;
#else
constexpr bool kProfilerCompiledOut = false;
#endif

#define SMDB_SKIP_IF_PROFILER_COMPILED_OUT()               \
  if (kProfilerCompiledOut) {                              \
    GTEST_SKIP() << "profiler compiled out (SMDB_PROFILER_DISABLED)"; \
  }

HarnessConfig ProfiledConfig(uint32_t exec_threads, bool prof_on = true) {
  HarnessConfig cfg = TracedConfig(/*recovery_threads=*/1);
  cfg.db.trace.enabled = false;
  cfg.db.profiler.enabled = prof_on;
  cfg.exec.execution_threads = exec_threads;
  cfg.capture_digests = true;
  return cfg;
}

uint64_t RejectSum(const ProfilerReport& p) {
  uint64_t sum = 0;
  for (uint64_t c : p.reject) sum += c;
  return sum;
}

TEST(ProfilerDeterminism, ReasonCountsInvariantAcrossWidthsAndSumToSolo) {
  SMDB_SKIP_IF_PROFILER_COMPILED_OUT();
  std::optional<HarnessReport> w1;
  for (uint32_t w : {1u, 2u, 4u, 8u}) {
    SCOPED_TRACE("exec width " + std::to_string(w));
    Harness h(ProfiledConfig(w));
    auto report = h.Run();
    ASSERT_TRUE(report.ok()) << report.status().ToString();
    ASSERT_TRUE(report->verify_status.ok())
        << report->verify_status.ToString();
    ASSERT_TRUE(report->profile.enabled);

    // The load-bearing invariant: every solo step carries exactly one
    // typed reason.
    EXPECT_EQ(RejectSum(report->profile), report->shard.solo_steps);
    EXPECT_EQ(report->profile.reject_total(), report->shard.solo_steps);
    EXPECT_GT(report->shard.solo_steps, 0u);
    EXPECT_GT(report->shard.batches, 0u)
        << "canonical planning width must form multi-pick batches";
    // The fallback bucket must stay empty — it would mean a rejection
    // point the taxonomy does not cover.
    EXPECT_EQ(report->profile.reject[static_cast<size_t>(
                  BatchRejectReason::kUnclassified)],
              0u);

    if (w == 1) {
      w1 = *report;
      continue;
    }
    // Planning runs at the canonical width regardless of the execution
    // width, so attribution — and the occupancy/footprint histograms —
    // are width-invariant, as is the final state.
    EXPECT_EQ(report->profile.reject, w1->profile.reject);
    EXPECT_EQ(report->profile.sweeper_solo, w1->profile.sweeper_solo);
    EXPECT_TRUE(report->profile.batch_occupancy ==
                w1->profile.batch_occupancy);
    EXPECT_TRUE(report->profile.batch_footprint_lines ==
                w1->profile.batch_footprint_lines);
    EXPECT_EQ(report->shard.batches, w1->shard.batches);
    EXPECT_EQ(report->shard.batched_steps, w1->shard.batched_steps);
    EXPECT_EQ(report->shard.solo_steps, w1->shard.solo_steps);
    ASSERT_EQ(report->digests.size(), w1->digests.size());
    for (size_t i = 0; i < report->digests.size(); ++i) {
      EXPECT_TRUE(report->digests[i] == w1->digests[i])
          << "digest " << i << " diverged at width " << w;
    }
  }
}

TEST(ProfilerDeterminism, DigestsBitIdenticalProfilerOnVsOff) {
  SMDB_SKIP_IF_PROFILER_COMPILED_OUT();
  for (uint32_t w : {1u, 4u}) {
    SCOPED_TRACE("exec width " + std::to_string(w));
    Harness off(ProfiledConfig(w, /*prof_on=*/false));
    auto off_report = off.Run();
    ASSERT_TRUE(off_report.ok()) << off_report.status().ToString();
    Harness on(ProfiledConfig(w, /*prof_on=*/true));
    auto on_report = on.Run();
    ASSERT_TRUE(on_report.ok()) << on_report.status().ToString();

    EXPECT_FALSE(off_report->profile.enabled);
    ASSERT_TRUE(on_report->profile.enabled);
    ASSERT_FALSE(off_report->digests.empty());
    ASSERT_EQ(off_report->digests.size(), on_report->digests.size());
    for (size_t i = 0; i < off_report->digests.size(); ++i) {
      EXPECT_TRUE(off_report->digests[i] == on_report->digests[i])
          << "digest " << i << " diverged:\n  off "
          << off_report->digests[i].ToString() << "\n  on  "
          << on_report->digests[i].ToString();
    }
    EXPECT_EQ(off_report->exec.committed, on_report->exec.committed);
    EXPECT_EQ(off_report->total_time_ns, on_report->total_time_ns);
  }
}

TEST(ProfilerAttribution, SerialGatesAttributeEveryStep) {
  SMDB_SKIP_IF_PROFILER_COMPILED_OUT();
  // Group commit serial-gates the whole run: every step is a gated solo
  // step, nothing batches, and all the mass lands on the one gate reason.
  {
    HarnessConfig cfg = ProfiledConfig(/*exec_threads=*/4);
    cfg.crashes.clear();
    cfg.db.recovery.group_commit = true;
    Harness h(cfg);
    auto report = h.Run();
    ASSERT_TRUE(report.ok()) << report.status().ToString();
    EXPECT_EQ(report->shard.batches, 0u);
    EXPECT_GT(report->shard.solo_steps, 0u);
    EXPECT_EQ(report->profile.reject[static_cast<size_t>(
                  BatchRejectReason::kSerialGatedGroupCommit)],
              report->shard.solo_steps);
    EXPECT_EQ(RejectSum(report->profile), report->shard.solo_steps);
  }
  // On-demand recovery installs first-touch hooks with unknowable
  // footprints: same shape, different gate.
  {
    HarnessConfig cfg = ProfiledConfig(/*exec_threads=*/4);
    cfg.crashes.clear();
    cfg.db.recovery.on_demand = true;
    Harness h(cfg);
    auto report = h.Run();
    ASSERT_TRUE(report.ok()) << report.status().ToString();
    EXPECT_EQ(report->shard.batches, 0u);
    EXPECT_GT(report->shard.solo_steps, 0u);
    EXPECT_EQ(report->profile.reject[static_cast<size_t>(
                  BatchRejectReason::kSerialGatedOnDemand)],
              report->shard.solo_steps);
    EXPECT_EQ(RejectSum(report->profile), report->shard.solo_steps);
  }
}

TEST(ProfilerAttribution, SweeperSoloDischargesAreTypedAndDeterministic) {
  SMDB_SKIP_IF_PROFILER_COMPILED_OUT();
  auto run = [] {
    HarnessConfig cfg = ProfiledConfig(/*exec_threads=*/1);
    cfg.db.recovery.on_demand = true;
    cfg.pump_recovery_per_step = 1;
    Harness h(cfg);
    auto report = h.Run();
    EXPECT_TRUE(report.ok()) << report.status().ToString();
    EXPECT_TRUE(report->verify_status.ok())
        << report->verify_status.ToString();
    return report->profile;
  };
  ProfilerReport a = run();
  ProfilerReport b = run();
  // The crashing on-demand run must exercise the sweeper's solo path, with
  // recovery_threads = 1 the whole sweep is serial, and two identical
  // configs attribute identically.
  EXPECT_GT(a.sweeper_solo_total(), 0u);
  EXPECT_GT(a.sweeper_solo[static_cast<size_t>(
                SweeperSoloReason::kSerialSweep)],
            0u);
  EXPECT_EQ(a.sweeper_solo, b.sweeper_solo);
  EXPECT_EQ(a.reject, b.reject);
  // Sweep discharges attribute their coherence/WAL costs under the sweep
  // root.
  bool saw_sweep_root = false;
  for (const auto& [path, cell] : a.phases) {
    if (path.rfind("sweep", 0) == 0) saw_sweep_root = true;
  }
  EXPECT_TRUE(saw_sweep_root) << "no sweep-rooted phase cells";
}

TEST(ProfilerExport, CollapsedStackAndJsonAreWellFormed) {
  SMDB_SKIP_IF_PROFILER_COMPILED_OUT();
  Harness h(ProfiledConfig(/*exec_threads=*/4));
  auto report = h.Run();
  ASSERT_TRUE(report.ok()) << report.status().ToString();
  const ProfilerReport& p = report->profile;
  ASSERT_FALSE(p.phases.empty());

  // Every phase path is rooted at a coordinator unit of work, and a
  // crashing run covers both the step and the recovery trees.
  std::set<std::string> roots;
  for (const auto& [path, cell] : p.phases) {
    roots.insert(path.substr(0, path.find(';')));
  }
  for (const std::string& root : roots) {
    EXPECT_TRUE(root == "step" || root == "sweep" || root == "recovery")
        << "unknown root " << root;
  }
  EXPECT_TRUE(roots.contains("step"));
  EXPECT_TRUE(roots.contains("recovery"));

  // Collapsed stacks: "<stack> <uint>" per line, one line per cell.
  std::string collapsed = p.ToCollapsed();
  size_t lines = 0;
  size_t start = 0;
  while (start < collapsed.size()) {
    size_t nl = collapsed.find('\n', start);
    ASSERT_NE(nl, std::string::npos) << "unterminated collapsed line";
    std::string line = collapsed.substr(start, nl - start);
    start = nl + 1;
    ++lines;
    size_t space = line.rfind(' ');
    ASSERT_NE(space, std::string::npos) << line;
    EXPECT_EQ(line.substr(space + 1).find_first_not_of("0123456789"),
              std::string::npos)
        << line;
    EXPECT_NE(p.phases.find(line.substr(0, space)), p.phases.end()) << line;
  }
  EXPECT_EQ(lines, p.phases.size());

  // The standalone profile document parses back and cross-checks.
  json::Value doc = ProfileJsonFromReport(*report);
  auto reparsed = json::Value::Parse(doc.Dump(1));
  ASSERT_TRUE(reparsed.ok()) << reparsed.status().ToString();
  const json::Value* prof = reparsed->Find("profiler");
  ASSERT_NE(prof, nullptr);
  EXPECT_TRUE(prof->GetBool("enabled"));
  EXPECT_EQ(prof->GetUint("reject_total"),
            reparsed->Find("executor")->GetUint("solo_steps"));
  const json::Value* reject = prof->Find("reject");
  ASSERT_NE(reject, nullptr);
  EXPECT_EQ(reject->members().size(), kNumBatchRejectReasons)
      << "zeros are exported too";
  ASSERT_NE(prof->Find("sweeper_solo"), nullptr);
  ASSERT_NE(prof->Find("batch_occupancy"), nullptr);
  ASSERT_NE(prof->Find("phases"), nullptr);
  ASSERT_NE(reparsed->Find("sweeper"), nullptr);
}

TEST(Metrics, ProfilerKeysPresentWhenEnabledAbsentWhenOff) {
  Harness on(ProfiledConfig(/*exec_threads=*/2, /*prof_on=*/true));
  auto on_report = on.Run();
  ASSERT_TRUE(on_report.ok()) << on_report.status().ToString();
  json::Value snap = MetricsRegistry::FromReport(*on_report).ToJson();
  // The occupancy counters are unconditional...
  for (const char* key :
       {"executor.batches", "executor.batched_steps", "executor.solo_steps",
        "sweeper.batches", "sweeper.batched_records"}) {
    EXPECT_NE(snap.Find(key), nullptr) << "missing " << key;
  }
  if (!kProfilerCompiledOut) {
    // ...and the full reason taxonomy appears when profiling, zeros
    // included, plus the occupancy summaries.
    for (size_t i = 0; i < kNumBatchRejectReasons; ++i) {
      std::string key =
          std::string("executor.reject.") +
          BatchRejectReasonName(static_cast<BatchRejectReason>(i));
      EXPECT_NE(snap.Find(key), nullptr) << "missing " << key;
    }
    for (size_t i = 0; i < kNumSweeperSoloReasons; ++i) {
      std::string key =
          std::string("sweeper.solo.") +
          SweeperSoloReasonName(static_cast<SweeperSoloReason>(i));
      EXPECT_NE(snap.Find(key), nullptr) << "missing " << key;
    }
    for (const char* key :
         {"executor.occupancy.count", "executor.occupancy.mean",
          "executor.occupancy.p50", "executor.occupancy.p99",
          "executor.occupancy.max", "executor.footprint_lines.count"}) {
      EXPECT_NE(snap.Find(key), nullptr) << "missing " << key;
    }
  }

  Harness off(ProfiledConfig(/*exec_threads=*/2, /*prof_on=*/false));
  auto off_report = off.Run();
  ASSERT_TRUE(off_report.ok()) << off_report.status().ToString();
  json::Value off_snap = MetricsRegistry::FromReport(*off_report).ToJson();
  EXPECT_NE(off_snap.Find("executor.batches"), nullptr);
  EXPECT_EQ(off_snap.Find("executor.reject.poll-lock"), nullptr)
      << "reason keys must vanish, not zero out, when not profiling";
  EXPECT_EQ(off_snap.Find("executor.occupancy.count"), nullptr);
}

}  // namespace
}  // namespace smdb
