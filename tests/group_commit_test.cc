// Unit tests for the group-commit log-force pipeline: commit coalescing,
// the deadline and size bounds, acknowledgement-after-durability, and the
// withdraw path for aborts of pending commits.

#include <gtest/gtest.h>

#include "core/database.h"
#include "core/ifa_checker.h"
#include "wal/group_commit.h"

namespace smdb {
namespace {

std::vector<uint8_t> Value(uint8_t fill) {
  return std::vector<uint8_t>(22, fill);
}

struct GcFx {
  explicit GcFx(RecoveryConfig rc, uint16_t nodes = 4)
      : db(MakeCfg(rc, nodes)), checker(&db) {
    db.txn().AddObserver(&checker);
    auto t = db.CreateTable(16);
    EXPECT_TRUE(t.ok());
    table = *t;
    checker.RegisterTable(table);
    EXPECT_TRUE(db.Checkpoint(0).ok());
  }
  static DatabaseConfig MakeCfg(RecoveryConfig rc, uint16_t nodes) {
    DatabaseConfig c;
    c.machine.num_nodes = nodes;
    c.recovery = rc;
    return c;
  }
  static RecoveryConfig GroupedVolatile() {
    RecoveryConfig rc = RecoveryConfig::VolatileSelectiveRedo();
    rc.group_commit = true;
    rc.group_commit_window_ns = 100'000;
    rc.group_commit_max_batch = 64;
    return rc;
  }
  Database db;
  IfaChecker checker;
  std::vector<RecordId> table;
};

TEST(GroupCommitTest, OffByDefaultAndSynchronousWithoutPipeline) {
  RecoveryConfig rc;
  EXPECT_FALSE(rc.group_commit);
  EXPECT_EQ(rc.group_commit_window_ns, 100'000u);
  EXPECT_EQ(rc.group_commit_max_batch, 64u);
  GcFx fx(RecoveryConfig::VolatileSelectiveRedo());
  EXPECT_EQ(fx.db.group_commit(), nullptr);
  Transaction* t = fx.db.txn().Begin(1);
  ASSERT_TRUE(fx.db.txn().Update(t, fx.table[0], Value(1)).ok());
  // Classic behavior: the commit forces synchronously and acknowledges.
  ASSERT_TRUE(fx.db.txn().Commit(t).ok());
  EXPECT_EQ(t->state, TxnState::kCommitted);
  EXPECT_TRUE(fx.db.txn().PollCommit(t).code() == Status::Code::kInvalidArgument);
}

TEST(GroupCommitTest, DeadlineFlushAcksWholeBatchWithOneForce) {
  GcFx fx(GcFx::GroupedVolatile());
  Transaction* t1 = fx.db.txn().Begin(1);
  Transaction* t2 = fx.db.txn().Begin(1);
  ASSERT_TRUE(fx.db.txn().Update(t1, fx.table[0], Value(0xA1)).ok());
  ASSERT_TRUE(fx.db.txn().Update(t2, fx.table[1], Value(0xA2)).ok());
  uint64_t forces_before = fx.db.log().stats().forces;
  ASSERT_TRUE(fx.db.txn().Commit(t1).IsBusy());
  ASSERT_TRUE(fx.db.txn().Commit(t2).IsBusy());
  EXPECT_EQ(fx.db.group_commit()->PendingCount(1), 2u);

  // Poll until the coalescing window expires; each poll advances the
  // node's clock, so completion is bounded.
  int polls = 0;
  Status s1 = Status::Busy("");
  while (s1.IsBusy()) {
    s1 = fx.db.txn().PollCommit(t1);
    ASSERT_LT(++polls, 1000);
  }
  ASSERT_TRUE(s1.ok()) << s1.ToString();
  // t2's batch rode along: its record is durable, one poll acknowledges.
  ASSERT_TRUE(fx.db.txn().PollCommit(t2).ok());
  EXPECT_EQ(t1->state, TxnState::kCommitted);
  EXPECT_EQ(t2->state, TxnState::kCommitted);

  // The whole batch (two transactions' records) went out in ONE force.
  EXPECT_EQ(fx.db.log().stats().forces, forces_before + 1);
  EXPECT_EQ(fx.db.group_commit()->stats().enqueued_commits, 2u);
  EXPECT_EQ(fx.db.group_commit()->stats().deadline_flushes, 1u);
  EXPECT_GE(fx.db.log().stats().max_force_batch(), 2u);
  EXPECT_EQ(fx.db.group_commit()->PendingCount(1), 0u);
  EXPECT_TRUE(fx.checker.VerifyAll().ok());
}

TEST(GroupCommitTest, DeadlineHonoursTheWindow) {
  GcFx fx(GcFx::GroupedVolatile());
  Transaction* t = fx.db.txn().Begin(1);
  ASSERT_TRUE(fx.db.txn().Update(t, fx.table[0], Value(0xB1)).ok());
  SimTime enqueued_at = fx.db.machine().NodeClock(1);
  ASSERT_TRUE(fx.db.txn().Commit(t).IsBusy());
  while (fx.db.txn().PollCommit(t).IsBusy()) {
  }
  EXPECT_EQ(t->state, TxnState::kCommitted);
  // The force must not land before the window elapsed (no premature
  // flushes under the size bound).
  EXPECT_GE(fx.db.machine().NodeClock(1),
            enqueued_at + fx.db.config().recovery.group_commit_window_ns);
}

TEST(GroupCommitTest, SizeBoundFlushesImmediately) {
  RecoveryConfig rc = GcFx::GroupedVolatile();
  rc.group_commit_max_batch = 1;
  GcFx fx(rc);
  Transaction* t = fx.db.txn().Begin(1);
  ASSERT_TRUE(fx.db.txn().Update(t, fx.table[0], Value(0xC1)).ok());
  // max_batch=1: the enqueue itself trips the size bound, so the commit
  // degenerates to the synchronous path.
  ASSERT_TRUE(fx.db.txn().Commit(t).ok());
  EXPECT_EQ(t->state, TxnState::kCommitted);
  EXPECT_GE(fx.db.group_commit()->stats().size_flushes, 1u);
}

TEST(GroupCommitTest, AbortWithdrawsVolatilePendingCommit) {
  GcFx fx(GcFx::GroupedVolatile());
  RecordId r = fx.table[0];
  Transaction* t = fx.db.txn().Begin(1);
  ASSERT_TRUE(fx.db.txn().Update(t, r, Value(0xD1)).ok());
  ASSERT_TRUE(fx.db.txn().Commit(t).IsBusy());
  Lsn commit_lsn = t->last_lsn;
  ASSERT_TRUE(fx.db.txn().Abort(t).ok());
  EXPECT_EQ(t->state, TxnState::kAborted);
  EXPECT_EQ(fx.db.group_commit()->PendingCount(1), 0u);
  // The withdrawn commit record must never reach stable storage: force
  // everything and check the stable stream.
  ASSERT_TRUE(fx.db.log().Force(1, 1).ok());
  bool saw_commit = false;
  fx.db.log().ForEachStable(1, [&](const LogRecord& rec) {
    if (rec.lsn == commit_lsn && rec.type == LogRecordType::kCommit) {
      saw_commit = true;
    }
  });
  EXPECT_FALSE(saw_commit);
  auto slot = fx.db.records().SnoopSlot(r);
  ASSERT_TRUE(slot.ok());
  EXPECT_EQ(slot->data, Value(0));  // rolled back
  EXPECT_TRUE(fx.checker.VerifyAll().ok());
}

TEST(GroupCommitTest, AbortRefusedOnceCommitIsDurable) {
  GcFx fx(GcFx::GroupedVolatile());
  Transaction* t = fx.db.txn().Begin(1);
  ASSERT_TRUE(fx.db.txn().Update(t, fx.table[0], Value(0xE1)).ok());
  ASSERT_TRUE(fx.db.txn().Commit(t).IsBusy());
  // An unrelated force covers the pending commit record.
  ASSERT_TRUE(fx.db.log().Force(1, 1).ok());
  EXPECT_TRUE(fx.db.txn().Abort(t).code() == Status::Code::kInvalidArgument);
  // The transaction completes on the next poll instead.
  ASSERT_TRUE(fx.db.txn().PollCommit(t).ok());
  EXPECT_EQ(t->state, TxnState::kCommitted);
  EXPECT_TRUE(fx.checker.VerifyAll().ok());
}

TEST(GroupCommitTest, PipelineIsPerNode) {
  GcFx fx(GcFx::GroupedVolatile());
  Transaction* t1 = fx.db.txn().Begin(1);
  Transaction* t2 = fx.db.txn().Begin(2);
  ASSERT_TRUE(fx.db.txn().Update(t1, fx.table[0], Value(0xF1)).ok());
  ASSERT_TRUE(fx.db.txn().Update(t2, fx.table[1], Value(0xF2)).ok());
  ASSERT_TRUE(fx.db.txn().Commit(t1).IsBusy());
  ASSERT_TRUE(fx.db.txn().Commit(t2).IsBusy());
  EXPECT_EQ(fx.db.group_commit()->PendingCount(1), 1u);
  EXPECT_EQ(fx.db.group_commit()->PendingCount(2), 1u);
  // Node 1's flush must not acknowledge node 2's pending commit.
  while (fx.db.txn().PollCommit(t1).IsBusy()) {
  }
  EXPECT_EQ(t1->state, TxnState::kCommitted);
  EXPECT_EQ(t2->state, TxnState::kActive);
  while (fx.db.txn().PollCommit(t2).IsBusy()) {
  }
  EXPECT_EQ(t2->state, TxnState::kCommitted);
  EXPECT_TRUE(fx.checker.VerifyAll().ok());
}

}  // namespace
}  // namespace smdb
