// Unit tests for the LBM policies (section 5), the dependency tracker, and
// the stable-state reconstructor.

#include <gtest/gtest.h>

#include "core/database.h"
#include "core/stable_state.h"

namespace smdb {
namespace {

std::vector<uint8_t> Value(uint8_t fill) {
  return std::vector<uint8_t>(22, fill);
}

DatabaseConfig Cfg(RecoveryConfig rc) {
  DatabaseConfig c;
  c.machine.num_nodes = 4;
  c.recovery = rc;
  return c;
}

TEST(LbmPolicyTest, VolatileLbmNeverForces) {
  Database db(Cfg(RecoveryConfig::VolatileSelectiveRedo()));
  auto table = db.CreateTable(8);
  ASSERT_TRUE(table.ok());
  uint64_t forces0 = db.log().stats().forces;
  Transaction* t = db.txn().Begin(0);
  ASSERT_TRUE(db.txn().Update(t, (*table)[0], Value(1)).ok());
  ASSERT_TRUE(db.txn().Update(t, (*table)[1], Value(2)).ok());
  EXPECT_EQ(db.log().stats().forces, forces0);  // updates force nothing
  EXPECT_EQ(db.log().stats().lbm_forces, 0u);
  ASSERT_TRUE(db.txn().Commit(t).ok());
  EXPECT_EQ(db.log().stats().forces, forces0 + 1);  // only the commit force
}

TEST(LbmPolicyTest, StableEagerForcesEveryUpdate) {
  Database db(Cfg(RecoveryConfig::StableEagerRedoAll()));
  auto table = db.CreateTable(8);
  ASSERT_TRUE(table.ok());
  uint64_t lbm0 = db.log().stats().lbm_forces;
  Transaction* t = db.txn().Begin(0);
  ASSERT_TRUE(db.txn().Update(t, (*table)[0], Value(1)).ok());
  ASSERT_TRUE(db.txn().Update(t, (*table)[1], Value(2)).ok());
  EXPECT_EQ(db.log().stats().lbm_forces, lbm0 + 2);
  // Everything is already stable at commit time.
  EXPECT_EQ(db.log().TailSize(0), 0u);
  ASSERT_TRUE(db.txn().Commit(t).ok());
}

TEST(LbmPolicyTest, StableTriggeredForcesOnMigrationOnly) {
  Database db(Cfg(RecoveryConfig::StableTriggeredSelectiveRedo()));
  auto table = db.CreateTable(8);
  ASSERT_TRUE(table.ok());
  Transaction* t0 = db.txn().Begin(0);
  ASSERT_TRUE(db.txn().Update(t0, (*table)[0], Value(1)).ok());
  uint64_t lbm_before = db.log().stats().lbm_forces;
  EXPECT_EQ(lbm_before, 0u);  // no migration yet: no forces

  // A transaction on node 1 updates the cohabiting record: the active line
  // departs node 0, triggering a force of node 0's log.
  Transaction* t1 = db.txn().Begin(1);
  ASSERT_TRUE(db.txn().Update(t1, (*table)[1], Value(2)).ok());
  EXPECT_GE(db.log().stats().lbm_forces, 1u);
  // Node 0's update record is now stable even though it never committed.
  bool update_stable = false;
  db.log().ForEachStable(0, [&](const LogRecord& rec) {
    if (rec.type == LogRecordType::kUpdate && rec.txn == t0->id) {
      update_stable = true;
    }
  });
  EXPECT_TRUE(update_stable);
  ASSERT_TRUE(db.txn().Commit(t0).ok());
  ASSERT_TRUE(db.txn().Commit(t1).ok());
}

TEST(LbmPolicyTest, StableTriggeredDirtyReadTriggersUndoForce) {
  // H_wr: the downgrade caused by a remote (dirty) read must also force
  // the updater's log (the undo information must be stable before the line
  // replicates — section 5.2).
  Database db(Cfg(RecoveryConfig::StableTriggeredSelectiveRedo()));
  auto table = db.CreateTable(8);
  ASSERT_TRUE(table.ok());
  Transaction* t0 = db.txn().Begin(0);
  ASSERT_TRUE(db.txn().Update(t0, (*table)[0], Value(1)).ok());
  EXPECT_EQ(db.log().stats().lbm_forces, 0u);
  ASSERT_TRUE(db.txn().DirtyRead(2, (*table)[0]).ok());
  EXPECT_GE(db.log().stats().lbm_forces, 1u);
  ASSERT_TRUE(db.txn().Commit(t0).ok());
}

TEST(LbmPolicyTest, TriggeredForceClearsActiveBitsNoRepeat) {
  Database db(Cfg(RecoveryConfig::StableTriggeredSelectiveRedo()));
  auto table = db.CreateTable(8);
  ASSERT_TRUE(table.ok());
  Transaction* t0 = db.txn().Begin(0);
  ASSERT_TRUE(db.txn().Update(t0, (*table)[0], Value(1)).ok());
  ASSERT_TRUE(db.txn().DirtyRead(1, (*table)[0]).ok());
  uint64_t after_first = db.log().stats().lbm_forces;
  EXPECT_GE(after_first, 1u);
  // Another read of the (now inactive) line must not force again.
  ASSERT_TRUE(db.txn().DirtyRead(2, (*table)[0]).ok());
  EXPECT_EQ(db.log().stats().lbm_forces, after_first);
  ASSERT_TRUE(db.txn().Commit(t0).ok());
}

TEST(DependencyTrackerTest, CohabitationMakesBothDependent) {
  Database db(Cfg(RecoveryConfig::BaselineAbortDependents()));
  auto table = db.CreateTable(8);
  ASSERT_TRUE(table.ok());
  ASSERT_NE(db.deps(), nullptr);
  Transaction* t0 = db.txn().Begin(0);
  Transaction* t1 = db.txn().Begin(1);
  ASSERT_TRUE(db.txn().Update(t0, (*table)[0], Value(1)).ok());
  EXPECT_FALSE(db.deps()->IsDependent(t0->id));
  ASSERT_TRUE(db.txn().Update(t1, (*table)[1], Value(2)).ok());
  EXPECT_TRUE(db.deps()->IsDependent(t0->id));
  EXPECT_TRUE(db.deps()->IsDependent(t1->id));
  ASSERT_TRUE(db.txn().Commit(t0).ok());
  EXPECT_FALSE(db.deps()->IsDependent(t0->id));
  ASSERT_TRUE(db.txn().Commit(t1).ok());
}

TEST(DependencyTrackerTest, IsolatedTxnStaysIndependent) {
  Database db(Cfg(RecoveryConfig::BaselineAbortDependents()));
  auto table = db.CreateTable(64);
  ASSERT_TRUE(table.ok());
  Transaction* t0 = db.txn().Begin(0);
  // Records 0..3 share a line; 0 and 32 are on different lines.
  ASSERT_TRUE(db.txn().Update(t0, (*table)[0], Value(1)).ok());
  Transaction* t1 = db.txn().Begin(1);
  ASSERT_TRUE(db.txn().Update(t1, (*table)[32], Value(2)).ok());
  EXPECT_FALSE(db.deps()->IsDependent(t0->id));
  EXPECT_FALSE(db.deps()->IsDependent(t1->id));
  ASSERT_TRUE(db.txn().Commit(t0).ok());
  ASSERT_TRUE(db.txn().Commit(t1).ok());
}

TEST(StableStateTest, ReconstructsCommittedValueFromStableLog) {
  Database db(Cfg(RecoveryConfig::VolatileSelectiveRedo()));
  auto table = db.CreateTable(8);
  ASSERT_TRUE(table.ok());
  RecordId rid = (*table)[0];
  // Commit value 5 (stable log), then an active txn writes 6.
  Transaction* t0 = db.txn().Begin(0);
  ASSERT_TRUE(db.txn().Update(t0, rid, Value(5)).ok());
  ASSERT_TRUE(db.txn().Commit(t0).ok());
  Transaction* t1 = db.txn().Begin(1);
  ASSERT_TRUE(db.txn().Update(t1, rid, Value(6)).ok());

  StableStateReconstructor rec(&db.machine(), &db.log(), &db.buffers(),
                               &db.records(), {t1->id});
  auto v = rec.CommittedValue(2, rid);
  ASSERT_TRUE(v.ok());
  EXPECT_EQ(v->data, Value(5));
  ASSERT_TRUE(db.txn().Abort(t1).ok());
}

TEST(StableStateTest, RewindsStolenUncommittedStableImage) {
  Database db(Cfg(RecoveryConfig::VolatileSelectiveRedo()));
  auto table = db.CreateTable(8);
  ASSERT_TRUE(table.ok());
  RecordId rid = (*table)[0];
  Transaction* t0 = db.txn().Begin(0);
  ASSERT_TRUE(db.txn().Update(t0, rid, Value(5)).ok());
  ASSERT_TRUE(db.txn().Commit(t0).ok());
  Transaction* t1 = db.txn().Begin(1);
  ASSERT_TRUE(db.txn().Update(t1, rid, Value(6)).ok());
  // Steal: the uncommitted 6 reaches the stable database (WAL forces the
  // undo information first).
  ASSERT_TRUE(db.buffers().FlushPage(2, rid.page).ok());

  StableStateReconstructor rec(&db.machine(), &db.log(), &db.buffers(),
                               &db.records(), {t1->id});
  auto v = rec.CommittedValue(2, rid);
  ASSERT_TRUE(v.ok());
  EXPECT_EQ(v->data, Value(5)) << "reconstructor must rewind stolen value";
  ASSERT_TRUE(db.txn().Abort(t1).ok());
}

TEST(StableStateTest, InitialValueWhenNoLogRecords) {
  Database db(Cfg(RecoveryConfig::VolatileSelectiveRedo()));
  auto table = db.CreateTable(8);
  ASSERT_TRUE(table.ok());
  StableStateReconstructor rec(&db.machine(), &db.log(), &db.buffers(),
                               &db.records(), {});
  auto v = rec.CommittedValue(0, (*table)[3]);
  ASSERT_TRUE(v.ok());
  EXPECT_EQ(v->data, Value(0));
}

TEST(RecoveryConfigTest, PresetsAndNames) {
  EXPECT_TRUE(RecoveryConfig::VolatileSelectiveRedo().ensures_ifa());
  EXPECT_TRUE(RecoveryConfig::VolatileSelectiveRedo().undo_tagging());
  EXPECT_FALSE(RecoveryConfig::VolatileRedoAll().undo_tagging());
  EXPECT_FALSE(RecoveryConfig::BaselineRebootAll().ensures_ifa());
  EXPECT_FALSE(RecoveryConfig::BaselineAbortDependents().ensures_ifa());
  EXPECT_EQ(RecoveryConfig::VolatileSelectiveRedo().Name(),
            "VolatileLBM+SelectiveRedo");
  EXPECT_EQ(RecoveryConfig::StableEagerRedoAll().Name(),
            "StableLBM(eager)+RedoAll");
  EXPECT_EQ(RecoveryConfig::BaselineRebootAll().Name(), "NoLBM+RebootAll");
}

}  // namespace
}  // namespace smdb
