// Smoke coverage for the crash-schedule fuzzer (src/fuzz/).
//
// Three properties are pinned down here:
//   1. A batch of fixed seeds runs clean under every default protocol —
//      the IFA variants show zero violations and zero unnecessary aborts,
//      and the baselines honor their own contracts.
//   2. The fuzzer is deterministic: equal seeds produce bit-identical
//      cases and verdicts, which is what makes replay files trustworthy.
//   3. Fault injection is actually detectable: disabling undo tagging
//      under SelectiveRedo is caught within a small seed budget, shrinks
//      to a tiny crash schedule, and the emitted replay document
//      round-trips and reproduces the failure.
//   4. The parallel-recovery differential (Options::recovery_threads > 1)
//      composes with all of the above: clean seeds stay clean, replay
//      documents record the thread count, and the shrinker minimises
//      failures through the differential predicate.

#include <gtest/gtest.h>

#include <optional>
#include <string>

#include "fuzz/fuzzer.h"

namespace smdb {
namespace {

TEST(FuzzSmoke, FixedSeedsRunCleanUnderAllProtocols) {
  CrashScheduleFuzzer fuzzer;
  for (uint64_t seed = 0; seed < 50; ++seed) {
    auto failure = fuzzer.RunSeed(seed);
    ASSERT_FALSE(failure.has_value())
        << "seed " << seed << " failed under "
        << failure->protocol.Name() << ": [" << failure->verdict.kind
        << "] " << failure->verdict.detail;
  }
  const FuzzStats& stats = fuzzer.stats();
  EXPECT_EQ(stats.cases, 50u);
  // 50 cases x 7 protocols.
  EXPECT_EQ(stats.runs, 350u);
  // The schedule sampler must actually exercise the failure model: crashes
  // that fire, crashes that get skipped, and at least one crash-all.
  EXPECT_GT(stats.crashes_fired, 0u);
  EXPECT_GT(stats.crashes_skipped, 0u);
  EXPECT_GT(stats.whole_machine_restarts, 0u);
  EXPECT_GT(stats.committed, 0u);
}

TEST(FuzzSmoke, EqualSeedsAreBitIdentical) {
  FuzzCase a = SampleFuzzCase(7);
  FuzzCase b = SampleFuzzCase(7);
  EXPECT_EQ(a.ToJson().Dump(), b.ToJson().Dump());

  CrashScheduleFuzzer f1;
  CrashScheduleFuzzer f2;
  FuzzVerdict v1 = f1.RunCase(a, RecoveryConfig::VolatileSelectiveRedo());
  FuzzVerdict v2 = f2.RunCase(b, RecoveryConfig::VolatileSelectiveRedo());
  EXPECT_EQ(v1.failed, v2.failed);
  EXPECT_EQ(v1.kind, v2.kind);
  EXPECT_EQ(v1.detail, v2.detail);
}

TEST(FuzzSmoke, CaseJsonRoundTrips) {
  FuzzCase original = SampleFuzzCase(12345);
  auto parsed_doc = json::Value::Parse(original.ToJson().Dump(2));
  ASSERT_TRUE(parsed_doc.ok()) << parsed_doc.status().ToString();
  auto restored = FuzzCase::FromJson(*parsed_doc);
  ASSERT_TRUE(restored.ok()) << restored.status().ToString();
  EXPECT_EQ(restored->ToJson().Dump(), original.ToJson().Dump());
}

TEST(FuzzSmoke, BrokenUndoTaggingIsCaughtShrunkAndReplayable) {
  CrashScheduleFuzzer::Options opts;
  opts.protocols = {RecoveryConfig::VolatileSelectiveRedo()};
  opts.disable_undo_tagging = true;
  CrashScheduleFuzzer fuzzer(opts);

  std::optional<FuzzFailure> failure;
  for (uint64_t seed = 0; seed < 60 && !failure.has_value(); ++seed) {
    failure = fuzzer.RunSeed(seed);
  }
  ASSERT_TRUE(failure.has_value())
      << "disabled undo tagging was not detected within 60 seeds";
  EXPECT_EQ(failure->verdict.kind, "ifa-verify") << failure->verdict.detail;

  FuzzCase shrunk = fuzzer.Shrink(*failure);
  EXPECT_LE(shrunk.crashes.size(), 2u);
  FuzzVerdict direct = fuzzer.RunCase(shrunk, failure->protocol);
  EXPECT_TRUE(direct.failed) << "shrunk case no longer fails";

  std::string replay_text = fuzzer.ReplayJson(*failure, shrunk);
  auto doc = CrashScheduleFuzzer::ParseReplay(replay_text);
  ASSERT_TRUE(doc.ok()) << doc.status().ToString();
  EXPECT_EQ(doc->seed, failure->seed);
  EXPECT_TRUE(doc->protocol.disable_undo_tagging);
  EXPECT_EQ(doc->fuzz_case.ToJson().Dump(), shrunk.ToJson().Dump());

  // Replaying the parsed document reproduces the direct run exactly.
  FuzzVerdict replayed = fuzzer.RunCase(doc->fuzz_case, doc->protocol);
  EXPECT_TRUE(replayed.failed);
  EXPECT_EQ(replayed.kind, direct.kind);
  EXPECT_EQ(replayed.detail, direct.detail);
}

TEST(FuzzSmoke, ParallelDifferentialIsCleanAndRecordedInReplays) {
  CrashScheduleFuzzer::Options opts;
  opts.protocols = {RecoveryConfig::VolatileSelectiveRedo(),
                    RecoveryConfig::StableEagerRedoAll()};
  opts.recovery_threads = 2;
  CrashScheduleFuzzer fuzzer(opts);
  for (uint64_t seed = 0; seed < 10; ++seed) {
    auto failure = fuzzer.RunSeed(seed);
    ASSERT_FALSE(failure.has_value())
        << "seed " << seed << " diverged under "
        << failure->protocol.Name() << ": [" << failure->verdict.kind
        << "] " << failure->verdict.detail;
  }
  // The differential actually ran: more harness runs than cases x protocols.
  EXPECT_GT(fuzzer.stats().runs, 20u);

  // Replay documents carry the thread count so a parallel-only divergence
  // re-executes at the width that exposed it.
  FuzzFailure failure;
  failure.seed = 7;
  failure.fuzz_case = SampleFuzzCase(7);
  failure.protocol = RecoveryConfig::VolatileSelectiveRedo();
  failure.verdict = {true, "parallel-divergence", "digest mismatch"};
  std::string text = fuzzer.ReplayJson(failure, failure.fuzz_case);
  auto doc = CrashScheduleFuzzer::ParseReplay(text);
  ASSERT_TRUE(doc.ok()) << doc.status().ToString();
  EXPECT_EQ(doc->recovery_threads, 2u);
  EXPECT_EQ(doc->recorded_kind, "parallel-divergence");
}

TEST(FuzzSmoke, ShrinkerMinimisesThroughTheDifferentialPredicate) {
  // With recovery_threads set, every still-fails probe of the shrinker
  // re-runs the serial leg *and* the per-recovery differential leg, so a
  // minimised schedule is guaranteed to still fail under the combined
  // predicate — the property that makes shrunk parallel-divergence
  // reproducers trustworthy. Forced here with the undo-tagging fault,
  // which the serial leg catches.
  CrashScheduleFuzzer::Options opts;
  opts.protocols = {RecoveryConfig::VolatileSelectiveRedo()};
  opts.disable_undo_tagging = true;
  opts.recovery_threads = 2;
  opts.max_shrink_runs = 120;
  CrashScheduleFuzzer fuzzer(opts);

  std::optional<FuzzFailure> failure;
  for (uint64_t seed = 0; seed < 60 && !failure.has_value(); ++seed) {
    failure = fuzzer.RunSeed(seed);
  }
  ASSERT_TRUE(failure.has_value());
  FuzzCase shrunk = fuzzer.Shrink(*failure);
  FuzzVerdict direct = fuzzer.RunCase(shrunk, failure->protocol);
  EXPECT_TRUE(direct.failed) << "shrunk case no longer fails differentially";
}

}  // namespace
}  // namespace smdb
